file(REMOVE_RECURSE
  "CMakeFiles/ecc_protection.dir/ecc_protection.cpp.o"
  "CMakeFiles/ecc_protection.dir/ecc_protection.cpp.o.d"
  "ecc_protection"
  "ecc_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
