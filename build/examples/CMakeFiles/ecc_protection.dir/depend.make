# Empty dependencies file for ecc_protection.
# This may be replaced when dependencies are built.
