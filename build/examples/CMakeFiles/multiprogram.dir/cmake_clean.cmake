file(REMOVE_RECURSE
  "CMakeFiles/multiprogram.dir/multiprogram.cpp.o"
  "CMakeFiles/multiprogram.dir/multiprogram.cpp.o.d"
  "multiprogram"
  "multiprogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
