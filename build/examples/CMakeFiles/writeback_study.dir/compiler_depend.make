# Empty compiler generated dependencies file for writeback_study.
# This may be replaced when dependencies are built.
