file(REMOVE_RECURSE
  "CMakeFiles/writeback_study.dir/writeback_study.cpp.o"
  "CMakeFiles/writeback_study.dir/writeback_study.cpp.o.d"
  "writeback_study"
  "writeback_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/writeback_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
