# Empty compiler generated dependencies file for dbsim_coherence.
# This may be replaced when dependencies are built.
