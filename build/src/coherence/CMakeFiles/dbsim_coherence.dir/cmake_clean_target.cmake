file(REMOVE_RECURSE
  "libdbsim_coherence.a"
)
