file(REMOVE_RECURSE
  "CMakeFiles/dbsim_coherence.dir/split_directory.cc.o"
  "CMakeFiles/dbsim_coherence.dir/split_directory.cc.o.d"
  "CMakeFiles/dbsim_coherence.dir/state_split.cc.o"
  "CMakeFiles/dbsim_coherence.dir/state_split.cc.o.d"
  "libdbsim_coherence.a"
  "libdbsim_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
