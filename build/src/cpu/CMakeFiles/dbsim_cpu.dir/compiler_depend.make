# Empty compiler generated dependencies file for dbsim_cpu.
# This may be replaced when dependencies are built.
