file(REMOVE_RECURSE
  "libdbsim_cpu.a"
)
