file(REMOVE_RECURSE
  "CMakeFiles/dbsim_cpu.dir/core.cc.o"
  "CMakeFiles/dbsim_cpu.dir/core.cc.o.d"
  "CMakeFiles/dbsim_cpu.dir/core_memory.cc.o"
  "CMakeFiles/dbsim_cpu.dir/core_memory.cc.o.d"
  "libdbsim_cpu.a"
  "libdbsim_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
