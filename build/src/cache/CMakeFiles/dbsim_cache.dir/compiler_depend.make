# Empty compiler generated dependencies file for dbsim_cache.
# This may be replaced when dependencies are built.
