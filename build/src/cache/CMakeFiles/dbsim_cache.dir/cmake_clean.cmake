file(REMOVE_RECURSE
  "CMakeFiles/dbsim_cache.dir/tag_store.cc.o"
  "CMakeFiles/dbsim_cache.dir/tag_store.cc.o.d"
  "libdbsim_cache.a"
  "libdbsim_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
