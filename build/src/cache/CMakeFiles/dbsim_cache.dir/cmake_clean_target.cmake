file(REMOVE_RECURSE
  "libdbsim_cache.a"
)
