file(REMOVE_RECURSE
  "libdbsim_dbi.a"
)
