# Empty compiler generated dependencies file for dbsim_dbi.
# This may be replaced when dependencies are built.
