file(REMOVE_RECURSE
  "CMakeFiles/dbsim_dbi.dir/dbi.cc.o"
  "CMakeFiles/dbsim_dbi.dir/dbi.cc.o.d"
  "libdbsim_dbi.a"
  "libdbsim_dbi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_dbi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
