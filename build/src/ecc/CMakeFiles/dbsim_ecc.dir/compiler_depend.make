# Empty compiler generated dependencies file for dbsim_ecc.
# This may be replaced when dependencies are built.
