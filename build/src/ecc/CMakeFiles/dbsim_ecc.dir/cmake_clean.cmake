file(REMOVE_RECURSE
  "CMakeFiles/dbsim_ecc.dir/hetero_ecc.cc.o"
  "CMakeFiles/dbsim_ecc.dir/hetero_ecc.cc.o.d"
  "CMakeFiles/dbsim_ecc.dir/secded.cc.o"
  "CMakeFiles/dbsim_ecc.dir/secded.cc.o.d"
  "libdbsim_ecc.a"
  "libdbsim_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
