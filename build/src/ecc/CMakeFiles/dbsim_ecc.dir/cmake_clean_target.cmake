file(REMOVE_RECURSE
  "libdbsim_ecc.a"
)
