file(REMOVE_RECURSE
  "libdbsim_pred.a"
)
