file(REMOVE_RECURSE
  "CMakeFiles/dbsim_pred.dir/miss_predictor.cc.o"
  "CMakeFiles/dbsim_pred.dir/miss_predictor.cc.o.d"
  "libdbsim_pred.a"
  "libdbsim_pred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
