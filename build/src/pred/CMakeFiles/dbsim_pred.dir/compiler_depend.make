# Empty compiler generated dependencies file for dbsim_pred.
# This may be replaced when dependencies are built.
