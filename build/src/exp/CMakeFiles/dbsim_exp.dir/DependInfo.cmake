
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exp/alone_cache.cc" "src/exp/CMakeFiles/dbsim_exp.dir/alone_cache.cc.o" "gcc" "src/exp/CMakeFiles/dbsim_exp.dir/alone_cache.cc.o.d"
  "/root/repo/src/exp/json.cc" "src/exp/CMakeFiles/dbsim_exp.dir/json.cc.o" "gcc" "src/exp/CMakeFiles/dbsim_exp.dir/json.cc.o.d"
  "/root/repo/src/exp/record.cc" "src/exp/CMakeFiles/dbsim_exp.dir/record.cc.o" "gcc" "src/exp/CMakeFiles/dbsim_exp.dir/record.cc.o.d"
  "/root/repo/src/exp/runner.cc" "src/exp/CMakeFiles/dbsim_exp.dir/runner.cc.o" "gcc" "src/exp/CMakeFiles/dbsim_exp.dir/runner.cc.o.d"
  "/root/repo/src/exp/sweep.cc" "src/exp/CMakeFiles/dbsim_exp.dir/sweep.cc.o" "gcc" "src/exp/CMakeFiles/dbsim_exp.dir/sweep.cc.o.d"
  "/root/repo/src/exp/thread_pool.cc" "src/exp/CMakeFiles/dbsim_exp.dir/thread_pool.cc.o" "gcc" "src/exp/CMakeFiles/dbsim_exp.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dbsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dbsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dbsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/llc/CMakeFiles/dbsim_llc.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dbsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dbsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/dbi/CMakeFiles/dbsim_dbi.dir/DependInfo.cmake"
  "/root/repo/build/src/pred/CMakeFiles/dbsim_pred.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
