file(REMOVE_RECURSE
  "CMakeFiles/dbsim_exp.dir/alone_cache.cc.o"
  "CMakeFiles/dbsim_exp.dir/alone_cache.cc.o.d"
  "CMakeFiles/dbsim_exp.dir/json.cc.o"
  "CMakeFiles/dbsim_exp.dir/json.cc.o.d"
  "CMakeFiles/dbsim_exp.dir/record.cc.o"
  "CMakeFiles/dbsim_exp.dir/record.cc.o.d"
  "CMakeFiles/dbsim_exp.dir/runner.cc.o"
  "CMakeFiles/dbsim_exp.dir/runner.cc.o.d"
  "CMakeFiles/dbsim_exp.dir/sweep.cc.o"
  "CMakeFiles/dbsim_exp.dir/sweep.cc.o.d"
  "CMakeFiles/dbsim_exp.dir/thread_pool.cc.o"
  "CMakeFiles/dbsim_exp.dir/thread_pool.cc.o.d"
  "libdbsim_exp.a"
  "libdbsim_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
