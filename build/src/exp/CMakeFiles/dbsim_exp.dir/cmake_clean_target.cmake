file(REMOVE_RECURSE
  "libdbsim_exp.a"
)
