# Empty dependencies file for dbsim_exp.
# This may be replaced when dependencies are built.
