# Empty compiler generated dependencies file for dbsim_dram.
# This may be replaced when dependencies are built.
