file(REMOVE_RECURSE
  "libdbsim_dram.a"
)
