file(REMOVE_RECURSE
  "CMakeFiles/dbsim_dram.dir/dram_controller.cc.o"
  "CMakeFiles/dbsim_dram.dir/dram_controller.cc.o.d"
  "libdbsim_dram.a"
  "libdbsim_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
