# Empty dependencies file for dbsim_sim.
# This may be replaced when dependencies are built.
