file(REMOVE_RECURSE
  "CMakeFiles/dbsim_sim.dir/mechanism.cc.o"
  "CMakeFiles/dbsim_sim.dir/mechanism.cc.o.d"
  "CMakeFiles/dbsim_sim.dir/metrics.cc.o"
  "CMakeFiles/dbsim_sim.dir/metrics.cc.o.d"
  "CMakeFiles/dbsim_sim.dir/runner.cc.o"
  "CMakeFiles/dbsim_sim.dir/runner.cc.o.d"
  "CMakeFiles/dbsim_sim.dir/system.cc.o"
  "CMakeFiles/dbsim_sim.dir/system.cc.o.d"
  "libdbsim_sim.a"
  "libdbsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
