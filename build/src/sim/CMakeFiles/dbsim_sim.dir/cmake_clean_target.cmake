file(REMOVE_RECURSE
  "libdbsim_sim.a"
)
