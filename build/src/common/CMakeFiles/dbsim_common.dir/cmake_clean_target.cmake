file(REMOVE_RECURSE
  "libdbsim_common.a"
)
