# Empty compiler generated dependencies file for dbsim_common.
# This may be replaced when dependencies are built.
