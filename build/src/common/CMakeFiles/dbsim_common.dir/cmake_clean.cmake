file(REMOVE_RECURSE
  "CMakeFiles/dbsim_common.dir/logging.cc.o"
  "CMakeFiles/dbsim_common.dir/logging.cc.o.d"
  "libdbsim_common.a"
  "libdbsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
