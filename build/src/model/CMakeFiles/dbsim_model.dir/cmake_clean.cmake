file(REMOVE_RECURSE
  "CMakeFiles/dbsim_model.dir/cacti_lite.cc.o"
  "CMakeFiles/dbsim_model.dir/cacti_lite.cc.o.d"
  "CMakeFiles/dbsim_model.dir/storage_model.cc.o"
  "CMakeFiles/dbsim_model.dir/storage_model.cc.o.d"
  "libdbsim_model.a"
  "libdbsim_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
