file(REMOVE_RECURSE
  "libdbsim_model.a"
)
