# Empty dependencies file for dbsim_model.
# This may be replaced when dependencies are built.
