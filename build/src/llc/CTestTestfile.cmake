# CMake generated Testfile for 
# Source directory: /root/repo/src/llc
# Build directory: /root/repo/build/src/llc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
