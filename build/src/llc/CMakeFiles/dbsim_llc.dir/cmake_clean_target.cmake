file(REMOVE_RECURSE
  "libdbsim_llc.a"
)
