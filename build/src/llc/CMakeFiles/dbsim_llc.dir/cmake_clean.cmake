file(REMOVE_RECURSE
  "CMakeFiles/dbsim_llc.dir/llc.cc.o"
  "CMakeFiles/dbsim_llc.dir/llc.cc.o.d"
  "CMakeFiles/dbsim_llc.dir/llc_variants.cc.o"
  "CMakeFiles/dbsim_llc.dir/llc_variants.cc.o.d"
  "libdbsim_llc.a"
  "libdbsim_llc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
