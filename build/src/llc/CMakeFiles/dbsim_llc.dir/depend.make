# Empty dependencies file for dbsim_llc.
# This may be replaced when dependencies are built.
