file(REMOVE_RECURSE
  "CMakeFiles/dbsim_workload.dir/file_trace.cc.o"
  "CMakeFiles/dbsim_workload.dir/file_trace.cc.o.d"
  "CMakeFiles/dbsim_workload.dir/mixes.cc.o"
  "CMakeFiles/dbsim_workload.dir/mixes.cc.o.d"
  "CMakeFiles/dbsim_workload.dir/profiles.cc.o"
  "CMakeFiles/dbsim_workload.dir/profiles.cc.o.d"
  "CMakeFiles/dbsim_workload.dir/synthetic_trace.cc.o"
  "CMakeFiles/dbsim_workload.dir/synthetic_trace.cc.o.d"
  "libdbsim_workload.a"
  "libdbsim_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
