# Empty dependencies file for dbsim_workload.
# This may be replaced when dependencies are built.
