file(REMOVE_RECURSE
  "libdbsim_workload.a"
)
