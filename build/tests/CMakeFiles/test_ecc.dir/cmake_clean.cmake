file(REMOVE_RECURSE
  "CMakeFiles/test_ecc.dir/ecc/test_hetero_ecc.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_hetero_ecc.cc.o.d"
  "CMakeFiles/test_ecc.dir/ecc/test_secded.cc.o"
  "CMakeFiles/test_ecc.dir/ecc/test_secded.cc.o.d"
  "test_ecc"
  "test_ecc.pdb"
  "test_ecc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
