file(REMOVE_RECURSE
  "CMakeFiles/test_coherence.dir/coherence/test_state_split.cc.o"
  "CMakeFiles/test_coherence.dir/coherence/test_state_split.cc.o.d"
  "test_coherence"
  "test_coherence.pdb"
  "test_coherence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
