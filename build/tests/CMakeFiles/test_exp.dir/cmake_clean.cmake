file(REMOVE_RECURSE
  "CMakeFiles/test_exp.dir/exp/test_alone_cache.cc.o"
  "CMakeFiles/test_exp.dir/exp/test_alone_cache.cc.o.d"
  "CMakeFiles/test_exp.dir/exp/test_runner.cc.o"
  "CMakeFiles/test_exp.dir/exp/test_runner.cc.o.d"
  "CMakeFiles/test_exp.dir/exp/test_sweep.cc.o"
  "CMakeFiles/test_exp.dir/exp/test_sweep.cc.o.d"
  "CMakeFiles/test_exp.dir/exp/test_thread_pool.cc.o"
  "CMakeFiles/test_exp.dir/exp/test_thread_pool.cc.o.d"
  "test_exp"
  "test_exp.pdb"
  "test_exp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
