file(REMOVE_RECURSE
  "CMakeFiles/test_pred.dir/pred/test_predictor.cc.o"
  "CMakeFiles/test_pred.dir/pred/test_predictor.cc.o.d"
  "test_pred"
  "test_pred.pdb"
  "test_pred[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
