# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_ecc[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_dbi[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_pred[1]_include.cmake")
include("/root/repo/build/tests/test_llc[1]_include.cmake")
include("/root/repo/build/tests/test_cpu[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_coherence[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_exp[1]_include.cmake")
