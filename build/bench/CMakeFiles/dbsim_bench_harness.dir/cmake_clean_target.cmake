file(REMOVE_RECURSE
  "libdbsim_bench_harness.a"
)
