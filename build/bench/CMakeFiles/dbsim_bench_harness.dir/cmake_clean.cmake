file(REMOVE_RECURSE
  "CMakeFiles/dbsim_bench_harness.dir/harness.cc.o"
  "CMakeFiles/dbsim_bench_harness.dir/harness.cc.o.d"
  "libdbsim_bench_harness.a"
  "libdbsim_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsim_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
