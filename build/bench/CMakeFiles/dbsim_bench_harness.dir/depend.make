# Empty dependencies file for dbsim_bench_harness.
# This may be replaced when dependencies are built.
