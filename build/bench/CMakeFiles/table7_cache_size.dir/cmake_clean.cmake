file(REMOVE_RECURSE
  "CMakeFiles/table7_cache_size.dir/table7_cache_size.cpp.o"
  "CMakeFiles/table7_cache_size.dir/table7_cache_size.cpp.o.d"
  "table7_cache_size"
  "table7_cache_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_cache_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
