# Empty compiler generated dependencies file for table7_cache_size.
# This may be replaced when dependencies are built.
