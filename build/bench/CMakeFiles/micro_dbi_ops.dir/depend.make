# Empty dependencies file for micro_dbi_ops.
# This may be replaced when dependencies are built.
