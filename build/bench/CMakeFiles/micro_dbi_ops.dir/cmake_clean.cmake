file(REMOVE_RECURSE
  "CMakeFiles/micro_dbi_ops.dir/micro_dbi_ops.cpp.o"
  "CMakeFiles/micro_dbi_ops.dir/micro_dbi_ops.cpp.o.d"
  "micro_dbi_ops"
  "micro_dbi_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_dbi_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
