# Empty compiler generated dependencies file for ablation_clb.
# This may be replaced when dependencies are built.
