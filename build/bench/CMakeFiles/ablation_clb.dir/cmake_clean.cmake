file(REMOVE_RECURSE
  "CMakeFiles/ablation_clb.dir/ablation_clb.cpp.o"
  "CMakeFiles/ablation_clb.dir/ablation_clb.cpp.o.d"
  "ablation_clb"
  "ablation_clb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
