# Empty dependencies file for table3_fairness.
# This may be replaced when dependencies are built.
