file(REMOVE_RECURSE
  "CMakeFiles/table3_fairness.dir/table3_fairness.cpp.o"
  "CMakeFiles/table3_fairness.dir/table3_fairness.cpp.o.d"
  "table3_fairness"
  "table3_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
