file(REMOVE_RECURSE
  "CMakeFiles/ablation_drrip.dir/ablation_drrip.cpp.o"
  "CMakeFiles/ablation_drrip.dir/ablation_drrip.cpp.o.d"
  "ablation_drrip"
  "ablation_drrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_drrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
