# Empty compiler generated dependencies file for fig6_single_core.
# This may be replaced when dependencies are built.
