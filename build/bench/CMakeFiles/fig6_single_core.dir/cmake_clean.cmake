file(REMOVE_RECURSE
  "CMakeFiles/fig6_single_core.dir/fig6_single_core.cpp.o"
  "CMakeFiles/fig6_single_core.dir/fig6_single_core.cpp.o.d"
  "fig6_single_core"
  "fig6_single_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_single_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
