file(REMOVE_RECURSE
  "CMakeFiles/ablation_dbi_repl.dir/ablation_dbi_repl.cpp.o"
  "CMakeFiles/ablation_dbi_repl.dir/ablation_dbi_repl.cpp.o.d"
  "ablation_dbi_repl"
  "ablation_dbi_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dbi_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
