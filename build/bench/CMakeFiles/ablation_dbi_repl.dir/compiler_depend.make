# Empty compiler generated dependencies file for ablation_dbi_repl.
# This may be replaced when dependencies are built.
