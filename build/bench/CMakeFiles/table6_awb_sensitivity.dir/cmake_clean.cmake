file(REMOVE_RECURSE
  "CMakeFiles/table6_awb_sensitivity.dir/table6_awb_sensitivity.cpp.o"
  "CMakeFiles/table6_awb_sensitivity.dir/table6_awb_sensitivity.cpp.o.d"
  "table6_awb_sensitivity"
  "table6_awb_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_awb_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
