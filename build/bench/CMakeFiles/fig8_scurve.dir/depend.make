# Empty dependencies file for fig8_scurve.
# This may be replaced when dependencies are built.
