file(REMOVE_RECURSE
  "CMakeFiles/fig8_scurve.dir/fig8_scurve.cpp.o"
  "CMakeFiles/fig8_scurve.dir/fig8_scurve.cpp.o.d"
  "fig8_scurve"
  "fig8_scurve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_scurve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
