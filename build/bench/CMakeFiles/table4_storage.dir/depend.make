# Empty dependencies file for table4_storage.
# This may be replaced when dependencies are built.
