file(REMOVE_RECURSE
  "CMakeFiles/table4_storage.dir/table4_storage.cpp.o"
  "CMakeFiles/table4_storage.dir/table4_storage.cpp.o.d"
  "table4_storage"
  "table4_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
