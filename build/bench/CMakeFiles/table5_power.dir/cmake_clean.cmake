file(REMOVE_RECURSE
  "CMakeFiles/table5_power.dir/table5_power.cpp.o"
  "CMakeFiles/table5_power.dir/table5_power.cpp.o.d"
  "table5_power"
  "table5_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
