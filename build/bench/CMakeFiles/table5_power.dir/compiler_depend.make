# Empty compiler generated dependencies file for table5_power.
# This may be replaced when dependencies are built.
