
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/diag_run.cpp" "bench/CMakeFiles/diag_run.dir/diag_run.cpp.o" "gcc" "bench/CMakeFiles/diag_run.dir/diag_run.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/dbsim_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dbsim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/llc/CMakeFiles/dbsim_llc.dir/DependInfo.cmake"
  "/root/repo/build/src/dbi/CMakeFiles/dbsim_dbi.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/dbsim_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/dbsim_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dbsim_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dbsim_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/pred/CMakeFiles/dbsim_pred.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/dbsim_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dbsim_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dbsim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/exp/CMakeFiles/dbsim_exp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
