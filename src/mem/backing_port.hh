/**
 * @file
 * The composable memory-hierarchy seam: everything below a cache level
 * is a BackingPort. A port accepts block reads (completing through a
 * callback with the completion cycle) and fire-and-forget block writes,
 * exposes the machine-wide DRAM address map, and reports write-drain
 * pressure for observers.
 *
 * Implementations form a chain:
 *
 *   Llc slice --> [DramCache] --> [ShardMemRouter] --> DramController
 *
 * DramController is the terminal level (backing DDR). ShardMemRouter
 * (sim/system.cc) dispatches each block to the channel owning it,
 * crossing shards through the fabric. DramCache (src/dcache) is an
 * interposed die-stacked level that filters traffic before it reaches
 * the router/controller. The LLC neither knows nor cares which chain it
 * sits on: every composition goes through this interface, so interposing
 * a level is pure wiring in System's constructor.
 */

#ifndef DBSIM_MEM_BACKING_PORT_HH
#define DBSIM_MEM_BACKING_PORT_HH

#include <cstddef>
#include <functional>

#include "common/addr_map.hh"
#include "common/types.hh"

namespace dbsim {

class BackingPort
{
  public:
    using ReadCallback = std::function<void(Cycle)>;

    virtual ~BackingPort() = default;

    /** Block read arriving at cycle `when`; cb fires at completion. */
    virtual void read(Addr block_addr, Cycle when, ReadCallback cb) = 0;

    /** Block write (writeback) arriving at cycle `when`. */
    virtual void write(Addr block_addr, Cycle when) = 0;

    /**
     * Zero-time functional access for fast-forward warming. Stateful
     * interposed levels (the DRAM cache) mirror the state change the
     * timed path would make, quietly; stateless levels (controllers,
     * routers — DRAM rows carry no warmable state worth modeling) keep
     * this default no-op.
     */
    virtual void functionalAccess(Addr block_addr, bool is_write)
    {
        (void)block_addr;
        (void)is_write;
    }

    /**
     * The machine's DRAM address map. The map is machine-wide (identical
     * for every channel), so any level of the chain can answer with its
     * terminal controller's copy.
     */
    virtual const DramAddrMap &addrMap() const = 0;

    // -- Drain hooks: write-pressure observability for telemetry and
    //    policies. Interposed levels report their own buffering; pure
    //    routers report nothing (per-channel state stays per-channel).

    /** Buffered (unserviced) writes held at this level. */
    virtual std::size_t pendingWrites() const { return 0; }

    /** True while this level is draining its write buffer. */
    virtual bool draining() const { return false; }
};

} // namespace dbsim

#endif // DBSIM_MEM_BACKING_PORT_HH
