#include "dbi.hh"

#include "common/logging.hh"

namespace dbsim {

Dbi::Dbi(const DbiConfig &config, std::uint64_t cache_blocks)
    : cfg(config), regionMap(config.granularity), rng(config.seed)
{
    fatal_if(cfg.alpha <= 0.0 || cfg.alpha > 1.0,
             "DBI alpha must be in (0, 1]");
    std::uint64_t tracked =
        static_cast<std::uint64_t>(cfg.alpha *
                                   static_cast<double>(cache_blocks));
    nEntries = tracked / cfg.granularity;
    fatal_if(nEntries == 0, "DBI too small: no entries");
    if (nEntries < cfg.assoc) {
        // Degenerate small configurations become fully associative.
        cfg.assoc = static_cast<std::uint32_t>(nEntries);
    }
    nEntries -= nEntries % cfg.assoc;
    std::uint64_t sets = nEntries / cfg.assoc;
    // Round the set count down to a power of two so tag bits are exact.
    while (!isPowerOf2(sets)) {
        sets &= sets - 1;
    }
    nSets = static_cast<std::uint32_t>(sets);
    nEntries = static_cast<std::uint64_t>(nSets) * cfg.assoc;
    entries.resize(nEntries);
    for (auto &e : entries) {
        e.dirty = BitVec(cfg.granularity);
    }
    tagMirror.assign(entries.size(), kInvalidAddr);
}

void
Dbi::registerStats(StatSet &set)
{
    set.add("dbi.lookups", statLookups);
    set.add("dbi.updates", statUpdates);
    set.add("dbi.inserts", statInserts);
    set.add("dbi.evictions", statEvictions);
    set.add("dbi.evictionWbs", statEvictionWbs);
}

std::uint32_t
Dbi::setIndexOf(std::uint64_t region_tag) const
{
    return static_cast<std::uint32_t>(region_tag & (nSets - 1));
}

Dbi::Entry &
Dbi::at(std::uint32_t set, std::uint32_t way)
{
    return entries[static_cast<std::size_t>(set) * cfg.assoc + way];
}

const Dbi::Entry &
Dbi::at(std::uint32_t set, std::uint32_t way) const
{
    return entries[static_cast<std::size_t>(set) * cfg.assoc + way];
}

Dbi::Entry *
Dbi::findEntry(std::uint64_t region_tag)
{
    std::size_t base =
        static_cast<std::size_t>(setIndexOf(region_tag)) * cfg.assoc;
    const std::uint64_t *set_tags = tagMirror.data() + base;
    for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
        if (set_tags[w] == region_tag) {
            return &entries[base + w];
        }
    }
    return nullptr;
}

const Dbi::Entry *
Dbi::findEntry(std::uint64_t region_tag) const
{
    return const_cast<Dbi *>(this)->findEntry(region_tag);
}

bool
Dbi::isDirty(Addr block_addr) const
{
    ++const_cast<Dbi *>(this)->statLookups;
    const Entry *e = findEntry(regionMap.regionTag(block_addr));
    return e && e->dirty.test(regionMap.blockIndex(block_addr));
}

bool
Dbi::probeDirty(Addr block_addr) const
{
    const Entry *e = findEntry(regionMap.regionTag(block_addr));
    return e && e->dirty.test(regionMap.blockIndex(block_addr));
}

bool
Dbi::hasEntryFor(Addr block_addr) const
{
    return findEntry(regionMap.regionTag(block_addr)) != nullptr;
}

std::uint32_t
Dbi::victimWay(std::uint32_t set)
{
    switch (cfg.repl) {
      case DbiReplPolicy::MaxDirty:
      case DbiReplPolicy::MinDirty: {
        bool want_max = cfg.repl == DbiReplPolicy::MaxDirty;
        std::uint32_t best = 0;
        std::uint32_t best_count = at(set, 0).dirty.count();
        for (std::uint32_t w = 1; w < cfg.assoc; ++w) {
            std::uint32_t c = at(set, w).dirty.count();
            bool better = want_max ? (c > best_count) : (c < best_count);
            if (better) {
                best = w;
                best_count = c;
            }
        }
        return best;
      }
      case DbiReplPolicy::Rrip: {
        for (;;) {
            for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
                if (at(set, w).rrpv >= kRrpvMax) {
                    return w;
                }
            }
            for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
                ++at(set, w).rrpv;
            }
        }
      }
      case DbiReplPolicy::Lrw:
      case DbiReplPolicy::LrwBip:
      default: {
        std::uint32_t victim = 0;
        std::uint64_t oldest = kCycleMax;
        for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
            if (at(set, w).lastWrite < oldest) {
                oldest = at(set, w).lastWrite;
                victim = w;
            }
        }
        return victim;
      }
    }
}

std::vector<Addr>
Dbi::drainEntry(const Entry &entry) const
{
    std::vector<Addr> wbs;
    wbs.reserve(entry.dirty.count());
    entry.dirty.forEachSet([&](std::uint32_t idx) {
        wbs.push_back(regionMap.blockAddr(entry.regionTag, idx));
    });
    return wbs;
}

std::vector<Addr>
Dbi::setDirty(Addr block_addr, bool account)
{
    if (account) {
        ++statUpdates;
    }
    std::uint64_t tag = regionMap.regionTag(block_addr);
    std::uint32_t bit = regionMap.blockIndex(block_addr);

    Entry *e = findEntry(tag);
    if (e) {
        if (!e->dirty.test(bit)) {
            e->dirty.set(bit);
            ++dirtyBits;
        }
        e->lastWrite = writeClock++;
        e->rrpv = 0;
        return {};
    }

    // Allocate a new entry; find a free way or evict.
    std::uint32_t set = setIndexOf(tag);
    std::uint32_t way = cfg.assoc;
    for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
        if (!at(set, w).valid) {
            way = w;
            break;
        }
    }

    std::vector<Addr> evicted_wbs;
    if (way == cfg.assoc) {
        way = victimWay(set);
        Entry &victim = at(set, way);
        evicted_wbs = drainEntry(victim);
        if (account) {
            ++statEvictions;
            statEvictionWbs += evicted_wbs.size();
        }
        dirtyBits -= evicted_wbs.size();
    }

    Entry &ne = at(set, way);
    ne.valid = true;
    ne.regionTag = tag;
    ne.dirty.clear();
    ne.dirty.set(bit);
    ne.rrpv = kRrpvMax - 1;
    ++dirtyBits;
    tagMirror[static_cast<std::size_t>(set) * cfg.assoc + way] = tag;
    if (account) {
        ++statInserts;
    }

    if (cfg.repl == DbiReplPolicy::LrwBip && !rng.chance(kBipEpsilon)) {
        ne.lastWrite = 0;  // insert at LRW position
    } else {
        ne.lastWrite = writeClock++;
    }
    return evicted_wbs;
}

void
Dbi::clearDirty(Addr block_addr, bool account)
{
    if (account) {
        ++statUpdates;
    }
    Entry *e = findEntry(regionMap.regionTag(block_addr));
    if (!e) {
        return;
    }
    std::uint32_t bit = regionMap.blockIndex(block_addr);
    if (!e->dirty.test(bit)) {
        return;
    }
    e->dirty.reset(bit);
    --dirtyBits;
    if (e->dirty.none()) {
        e->valid = false;  // free the entry for another DRAM row
        tagMirror[static_cast<std::size_t>(e - entries.data())] =
            kInvalidAddr;
    }
}

std::vector<Addr>
Dbi::dirtyBlocksInRegion(Addr block_addr) const
{
    ++const_cast<Dbi *>(this)->statLookups;
    const Entry *e = findEntry(regionMap.regionTag(block_addr));
    if (!e) {
        return {};
    }
    return drainEntry(*e);
}

bool
Dbi::rowHasDirty(Addr row_base_addr, const DramAddrMap &map) const
{
    ++const_cast<Dbi *>(this)->statLookups;
    // A DRAM row spans one or more DBI regions (granularity <= blocks
    // per row); check each region's entry.
    Addr base = map.rowBase(row_base_addr);
    for (std::uint32_t i = 0; i < map.blocksPerRow();
         i += cfg.granularity) {
        const Entry *e =
            findEntry(regionMap.regionTag(base +
                                          static_cast<Addr>(i) *
                                              kBlockBytes));
        if (e && e->dirty.any()) {
            return true;
        }
    }
    return false;
}

bool
Dbi::bankHasDirty(std::uint32_t bank, const DramAddrMap &map) const
{
    ++const_cast<Dbi *>(this)->statLookups;
    for (const auto &e : entries) {
        if (!e.valid || e.dirty.none()) {
            continue;
        }
        // Reconstruct each dirty block's address and ask the DRAM map
        // which bank it lives in. A region never has to fit inside one
        // DRAM row (granularity can exceed blocksPerRow), so per-block
        // translation is the only mapping that cannot drift from the
        // controller's own DramAddrMap::bank().
        bool hit = false;
        e.dirty.forEachSet([&](std::uint32_t idx) {
            if (!hit &&
                map.bank(regionMap.blockAddr(e.regionTag, idx)) == bank) {
                hit = true;
            }
        });
        if (hit) {
            return true;
        }
    }
    return false;
}

std::uint64_t
Dbi::countDirtyInRange(Addr base, std::uint64_t bytes) const
{
    if (bytes == 0) {
        return 0;
    }
    std::uint64_t region_bytes =
        static_cast<std::uint64_t>(cfg.granularity) * kBlockBytes;
    Addr start = base - base % region_bytes;
    std::uint64_t n = 0;
    for (Addr r = start; r < base + bytes; r += region_bytes) {
        const Entry *e = findEntry(regionMap.regionTag(r));
        if (!e) {
            continue;
        }
        e->dirty.forEachSet([&](std::uint32_t idx) {
            Addr b = regionMap.blockAddr(e->regionTag, idx);
            if (b >= base && b < base + bytes) {
                ++n;
            }
        });
    }
    return n;
}

std::uint64_t
Dbi::countDirtyBlocks() const
{
    return dirtyBits;
}

std::uint64_t
Dbi::countValidEntries() const
{
    std::uint64_t n = 0;
    for (const auto &e : entries) {
        if (e.valid) {
            ++n;
        }
    }
    return n;
}

} // namespace dbsim
