/**
 * @file
 * The Dirty-Block Index (Section 2) — the paper's primary contribution.
 *
 * The DBI removes dirty bits from the cache tag store and organizes them
 * in a small set-associative structure whose entries each track one
 * granularity-sized group of blocks within a DRAM row: a valid bit, a
 * row tag, and a dirty-bit vector. The DBI semantics are authoritative:
 *
 *   a cache block is dirty <=> the DBI holds a valid entry for the
 *   block's region AND the block's bit in that entry's vector is set.
 *
 * Inserting a new entry may evict an existing one (a "DBI eviction",
 * Section 2.2.4): every block the victim entry marks dirty must then be
 * written back to memory (the blocks themselves stay cached, transitioning
 * dirty -> clean). setDirty() therefore returns the list of block
 * addresses the caller must write back.
 *
 * Five replacement policies from Section 4.3 are provided; the paper
 * finds LRW (least-recently-written) comparable or better than the rest.
 */

#ifndef DBSIM_DBI_DBI_HH
#define DBSIM_DBI_DBI_HH

#include <cstdint>
#include <vector>

#include "common/addr_map.hh"
#include "common/bitvec.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dbsim {

/** DBI replacement policies (Section 4.3). */
enum class DbiReplPolicy : std::uint8_t
{
    Lrw,       ///< least recently written (the paper's default)
    LrwBip,    ///< LRW with bimodal insertion
    Rrip,      ///< rewrite-interval prediction (RRIP-like)
    MaxDirty,  ///< evict the entry with the most dirty blocks
    MinDirty,  ///< evict the entry with the fewest dirty blocks
};

/** DBI design parameters (Section 4, Table 1). */
struct DbiConfig
{
    /** Size alpha: blocks trackable by the DBI / blocks in the cache. */
    double alpha = 0.25;
    /** Blocks tracked per entry (<= blocks per DRAM row). */
    std::uint32_t granularity = 64;
    std::uint32_t assoc = 16;
    DbiReplPolicy repl = DbiReplPolicy::Lrw;
    /** Access latency in cycles (Table 1: 4). */
    std::uint32_t latency = 4;
    std::uint64_t seed = 7;
};

/**
 * The Dirty-Block Index structure. Standalone and cache-agnostic: the
 * owning cache keeps the resident/dirty invariant (every block the DBI
 * marks dirty is resident in the cache).
 */
class Dbi
{
  public:
    /**
     * @param config design parameters.
     * @param cache_blocks number of blocks in the cache the DBI serves;
     *        together with alpha this fixes the entry count.
     */
    Dbi(const DbiConfig &config, std::uint64_t cache_blocks);

    const DbiConfig &config() const { return cfg; }
    std::uint64_t numEntries() const { return nEntries; }
    std::uint32_t numSets() const { return nSets; }
    std::uint32_t granularity() const { return cfg.granularity; }
    std::uint32_t latency() const { return cfg.latency; }

    /** Cumulative number of blocks the DBI can track. */
    std::uint64_t
    trackableBlocks() const
    {
        return nEntries * cfg.granularity;
    }

    /** Is this block dirty? (the authoritative query) */
    bool isDirty(Addr block_addr) const;

    /**
     * Same answer as isDirty() but bumps no counters — for policy
     * filters and passive observers that must leave the DBI's stats
     * exactly as a run without them would (cf. countDirtyInRange()).
     */
    bool probeDirty(Addr block_addr) const;

    /**
     * Mark a block dirty (on a writeback request into the cache,
     * Section 2.2.2). May trigger a DBI eviction. With `account` false
     * the state change is identical but no counters move — the
     * functional-warming variant, so fast-forwarded ops never leak into
     * registered statistics.
     * @return block addresses the caller must write back to memory
     *         because their entry was evicted (usually empty).
     */
    std::vector<Addr> setDirty(Addr block_addr, bool account = true);

    /**
     * Mark a block clean (after its writeback, Section 2.2.3). If it was
     * the last dirty block of its entry, the entry is invalidated.
     * No-op if the block is not marked dirty. `account` as in
     * setDirty().
     */
    void clearDirty(Addr block_addr, bool account = true);

    /**
     * All blocks currently marked dirty in the region containing
     * block_addr — the single-query row listing that enables AWB
     * (Section 3.1).
     */
    std::vector<Addr> dirtyBlocksInRegion(Addr block_addr) const;

    /** Number of blocks currently marked dirty across the DBI. */
    std::uint64_t countDirtyBlocks() const;

    /**
     * Dirty blocks in [base, base+bytes). Unlike the access-path queries
     * above this bumps no counters — it exists for passive observers
     * (telemetry's dirty-blocks-per-row histogram), which must leave the
     * DBI's stats exactly as a run without them would.
     */
    std::uint64_t countDirtyInRange(Addr base, std::uint64_t bytes) const;

    /**
     * Invoke fn(block_addr) for every block marked dirty anywhere in the
     * DBI (used for flush operations and invariant checks).
     */
    template <typename Fn>
    void
    forEachDirtyBlock(Fn &&fn) const
    {
        for (const auto &e : entries) {
            if (!e.valid) {
                continue;
            }
            e.dirty.forEachSet([&](std::uint32_t idx) {
                fn(regionMap.blockAddr(e.regionTag, idx));
            });
        }
    }

    /** Number of valid entries. */
    std::uint64_t countValidEntries() const;

    /** True if the region containing block_addr has a valid entry. */
    bool hasEntryFor(Addr block_addr) const;

    /**
     * Fast dirty-status queries (Section 7): "does DRAM row R have any
     * dirty blocks?" — answered from the row's entries alone.
     */
    bool rowHasDirty(Addr row_base_addr, const DramAddrMap &map) const;

    /**
     * "Does DRAM bank X have any dirty blocks?" (Section 7) — used by
     * rank/bank-idle writeback schedulers. One pass over the (small)
     * DBI instead of the whole tag store.
     */
    bool bankHasDirty(std::uint32_t bank, const DramAddrMap &map) const;

    /** Register counters for snapshotting. */
    void registerStats(StatSet &set);

    Counter statLookups;     ///< isDirty / region queries
    Counter statUpdates;     ///< setDirty / clearDirty
    Counter statInserts;     ///< new entries allocated
    Counter statEvictions;   ///< DBI evictions (entry displaced)
    Counter statEvictionWbs; ///< writebacks generated by DBI evictions

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t regionTag = 0;
        BitVec dirty{128};
        std::uint64_t lastWrite = 0;  ///< LRW timestamp
        std::uint8_t rrpv = 0;
    };

    std::uint32_t setIndexOf(std::uint64_t region_tag) const;
    Entry *findEntry(std::uint64_t region_tag);
    const Entry *findEntry(std::uint64_t region_tag) const;
    std::uint32_t victimWay(std::uint32_t set);

    /** Collect the victim's dirty blocks as writeback addresses. */
    std::vector<Addr> drainEntry(const Entry &entry) const;

    Entry &at(std::uint32_t set, std::uint32_t way);
    const Entry &at(std::uint32_t set, std::uint32_t way) const;

    DbiConfig cfg;
    DbiRegionMap regionMap;
    std::uint64_t nEntries;
    std::uint32_t nSets;
    std::vector<Entry> entries;

    /**
     * Dense region-tag mirror of entries[] (kInvalidAddr = invalid), so
     * findEntry — the access-path lookup — scans a flat array instead
     * of striding Entry structs that each drag a BitVec along.
     */
    std::vector<std::uint64_t> tagMirror;

    /** Total dirty bits set across valid entries (kept incrementally). */
    std::uint64_t dirtyBits = 0;

    std::uint64_t writeClock = 1;
    Rng rng;

    static constexpr std::uint8_t kRrpvMax = 3;
    static constexpr double kBipEpsilon = 1.0 / 64.0;
};

} // namespace dbsim

#endif // DBSIM_DBI_DBI_HH
