#include "secded.hh"

#include "common/logging.hh"

namespace dbsim {

namespace {

// The code works over 72 positions. We lay the codeword out in the
// classical extended-Hamming arrangement: positions 1..71 (1-indexed)
// hold the Hamming code, with parity bits at power-of-two positions
// (1,2,4,8,16,32,64) and data bits filling the remaining 64 positions
// in ascending order; position 0 holds the overall parity bit.

/// Map data bit d (0..63) to its Hamming position (1..71, non power of 2).
constexpr std::array<std::uint8_t, 64>
buildDataPos()
{
    std::array<std::uint8_t, 64> pos{};
    std::uint32_t d = 0;
    for (std::uint32_t p = 1; p <= 71 && d < 64; ++p) {
        if ((p & (p - 1)) != 0) {
            pos[d++] = static_cast<std::uint8_t>(p);
        }
    }
    return pos;
}

constexpr std::array<std::uint8_t, 64> kDataPos = buildDataPos();

/// Inverse map: Hamming position -> data bit index + 1 (0 = parity pos).
constexpr std::array<std::uint8_t, 72>
buildPosToData()
{
    std::array<std::uint8_t, 72> inv{};
    for (std::uint32_t d = 0; d < 64; ++d) {
        inv[kDataPos[d]] = static_cast<std::uint8_t>(d + 1);
    }
    return inv;
}

constexpr std::array<std::uint8_t, 72> kPosToData = buildPosToData();

/// Compute the 7 Hamming parity bits over the data bits.
std::uint8_t
hammingParities(std::uint64_t data)
{
    std::uint8_t parities = 0;
    for (std::uint32_t c = 0; c < 7; ++c) {
        std::uint32_t mask = 1u << c;
        std::uint32_t p = 0;
        for (std::uint32_t d = 0; d < 64; ++d) {
            if ((kDataPos[d] & mask) && ((data >> d) & 1)) {
                p ^= 1;
            }
        }
        parities |= static_cast<std::uint8_t>(p << c);
    }
    return parities;
}

/// Overall parity of the 71-position Hamming codeword.
std::uint8_t
overallParity(std::uint64_t data, std::uint8_t hamming)
{
    std::uint32_t p = __builtin_popcountll(data) & 1;
    p ^= __builtin_popcount(hamming & 0x7f) & 1;
    return static_cast<std::uint8_t>(p);
}

} // namespace

SecdedWord
Secded::encode(std::uint64_t data)
{
    std::uint8_t hamming = hammingParities(data);
    std::uint8_t overall = overallParity(data, hamming);
    SecdedWord w;
    w.data = data;
    w.check = static_cast<std::uint8_t>(hamming | (overall << 7));
    return w;
}

EccStatus
Secded::decode(SecdedWord &word)
{
    std::uint8_t stored_hamming = word.check & 0x7f;
    std::uint8_t stored_overall = (word.check >> 7) & 1;

    std::uint8_t calc_hamming = hammingParities(word.data);
    std::uint8_t syndrome = stored_hamming ^ calc_hamming;
    std::uint8_t parity_err =
        overallParity(word.data, stored_hamming) ^ stored_overall;

    if (syndrome == 0 && parity_err == 0) {
        return EccStatus::Clean;
    }

    if (parity_err) {
        // Odd number of flipped bits: assume single, correctable.
        if (syndrome == 0) {
            // The overall parity bit itself flipped.
            word.check ^= 0x80;
            return EccStatus::Corrected;
        }
        if (syndrome < 72) {
            std::uint8_t d = kPosToData[syndrome];
            if (d != 0) {
                word.data ^= std::uint64_t{1} << (d - 1);
            } else {
                // A Hamming parity bit flipped; syndrome is its position,
                // which is a power of two = 1 << c.
                std::uint32_t c = floorLog2(syndrome);
                word.check ^= static_cast<std::uint8_t>(1u << c);
            }
            return EccStatus::Corrected;
        }
        return EccStatus::Uncorrectable;
    }

    // Even number of errors with a non-zero syndrome: double-bit error.
    return EccStatus::Uncorrectable;
}

void
Secded::injectError(SecdedWord &word, std::uint32_t bit_pos)
{
    panic_if(bit_pos >= 72, "SECDED inject position %u out of range",
             bit_pos);
    if (bit_pos < 64) {
        word.data ^= std::uint64_t{1} << bit_pos;
    } else {
        word.check ^= static_cast<std::uint8_t>(1u << (bit_pos - 64));
    }
}

std::uint8_t
ParityEdc::encode(const std::array<std::uint64_t, 8> &block)
{
    std::uint8_t parity = 0;
    for (std::uint32_t i = 0; i < 8; ++i) {
        parity |= static_cast<std::uint8_t>(
            (__builtin_popcountll(block[i]) & 1) << i);
    }
    return parity;
}

bool
ParityEdc::check(const std::array<std::uint64_t, 8> &block,
                 std::uint8_t parity)
{
    return encode(block) == parity;
}

} // namespace dbsim
