/**
 * @file
 * Heterogeneous ECC store (Section 3.3): every cached block carries a
 * cheap parity EDC, while full SECDED correction codes are kept only for
 * dirty blocks — which, in a DBI cache, are exactly the blocks the DBI
 * tracks. Clean blocks that fail their EDC are refetched from the next
 * level; dirty blocks are corrected with SECDED.
 *
 * This is a functional model over real 64-byte data blocks so the scheme
 * can be validated with fault injection.
 */

#ifndef DBSIM_ECC_HETERO_ECC_HH
#define DBSIM_ECC_HETERO_ECC_HH

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "common/stats.hh"
#include "common/types.hh"
#include "ecc/secded.hh"

namespace dbsim {

/** A 64-byte cache block as eight 64-bit words. */
using BlockData = std::array<std::uint64_t, 8>;

/** Result of a protected read. */
enum class EccReadStatus : std::uint8_t
{
    Clean,        ///< EDC passed, data returned as stored
    Corrected,    ///< SECDED corrected a dirty block
    Refetched,    ///< clean block failed EDC; caller's refetch used
    DataLost,     ///< dirty block had an uncorrectable error
};

/**
 * Storage for blocks under the heterogeneous clean/dirty protection
 * scheme. The caller (a DBI cache) tells the store when blocks become
 * dirty or clean; the store maintains SECDED words only while dirty.
 */
class HeteroEccStore
{
  public:
    /** Fetch callback: re-reads a clean block from the next level. */
    using RefetchFn = std::function<BlockData(Addr)>;

    /**
     * @param max_ecc_entries capacity of the SECDED side table — the
     *        number of blocks the DBI can track (alpha * cache blocks).
     * @param refetch used to recover clean blocks that fail their EDC.
     */
    HeteroEccStore(std::uint64_t max_ecc_entries, RefetchFn refetch);

    /** Install a block (clean). Overwrites any previous contents. */
    void fill(Addr block_addr, const BlockData &data);

    /**
     * Write a block, marking it dirty. Allocates a SECDED entry.
     * @pre the SECDED table has a free entry (the DBI enforces this by
     *      cleaning blocks when entries are evicted).
     */
    void writeDirty(Addr block_addr, const BlockData &data);

    /**
     * Transition a dirty block to clean (after its writeback), releasing
     * its SECDED entry.
     */
    void markClean(Addr block_addr);

    /** Remove a block entirely. */
    void evict(Addr block_addr);

    /** True if the block is resident. */
    bool contains(Addr block_addr) const;

    /** True if the block currently holds SECDED protection. */
    bool hasEcc(Addr block_addr) const;

    /** Number of live SECDED entries. */
    std::uint64_t eccEntries() const { return eccTable.size(); }

    /**
     * Read a block through the protection scheme.
     * @param[out] data the recovered block contents.
     * @return what the protection logic had to do.
     */
    EccReadStatus read(Addr block_addr, BlockData &data);

    /** Flip a bit of the stored copy (fault injection). */
    void corrupt(Addr block_addr, std::uint32_t bit_pos);

    Counter statEdcFails;
    Counter statCorrected;
    Counter statRefetched;
    Counter statLost;

  private:
    struct Line
    {
        BlockData data;
        std::uint8_t edc;
        bool dirty;
    };

    std::uint64_t maxEcc;
    RefetchFn refetchFn;
    std::unordered_map<Addr, Line> lines;
    std::unordered_map<Addr, std::array<SecdedWord, 8>> eccTable;
};

} // namespace dbsim

#endif // DBSIM_ECC_HETERO_ECC_HH
