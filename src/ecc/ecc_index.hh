/**
 * @file
 * MetadataIndex adapter driving the heterogeneous-ECC store (Section
 * 3.3) from a real simulation: every cached block carries a parity EDC,
 * while SECDED correction codes exist only for the blocks the cache's
 * DBI currently tracks as dirty. The adapter mirrors the LLC's block
 * lifecycle into a HeteroEccStore over deterministic synthetic block
 * contents, injects a deterministic trickle of single-bit faults on the
 * demand-read path to exercise both recovery paths (refetch for clean
 * blocks, SECDED correction for dirty ones), and reports the scheme's
 * protection outcomes plus the Table 4 storage and CACTI-lite
 * area/energy accounting as per-run metrics.
 *
 * Like all MetadataIndex implementations it is strictly passive: it
 * never touches the LLC's timing, stats, or replacement state.
 */

#ifndef DBSIM_ECC_ECC_INDEX_HH
#define DBSIM_ECC_ECC_INDEX_HH

#include <cstdint>

#include "ecc/hetero_ecc.hh"
#include "llc/metadata_index.hh"
#include "model/storage_model.hh"

namespace dbsim {

class HeteroEccIndex final : public MetadataIndex
{
  public:
    /**
     * @param max_ecc_entries SECDED side-table capacity — the number of
     *        blocks the cache's DBI can track (Dbi::trackableBlocks()).
     * @param storage_params the design point for the Table 4 storage
     *        and CACTI-lite area/energy accounting.
     */
    HeteroEccIndex(std::uint64_t max_ecc_entries,
                   const StorageParams &storage_params);

    const char *name() const override { return "ecc"; }
    void onFill(Addr block_addr, std::uint32_t core, bool dirty,
                Cycle when) override;
    void onRead(Addr block_addr, std::uint32_t core, bool hit,
                Cycle when) override;
    void onDirty(Addr block_addr, std::uint32_t core,
                 Cycle when) override;
    void onCleaned(Addr block_addr, Cycle when) override;
    void onEviction(Addr block_addr, Cycle when) override;
    void reportMetrics(std::map<std::string, double> &out) const override;
    void registerStats(StatSet &set) override;

    const HeteroEccStore &store() const { return ecc; }

  private:
    /** Inject a single-bit fault every kFaultPeriod protected reads. */
    static constexpr std::uint64_t kFaultPeriod = 7919;

    HeteroEccStore ecc;
    StorageParams storageParams;

    Counter statProtectedReads; ///< demand hits read through the scheme
    Counter statFaultsInjected; ///< single-bit flips injected
    std::uint64_t peakEccEntries = 0;
};

} // namespace dbsim

#endif // DBSIM_ECC_ECC_INDEX_HH
