/**
 * @file
 * Functional SECDED (Single Error Correction, Double Error Detection)
 * code over 64-bit words — the Hamming(72,64) code with an overall parity
 * bit — plus the simple parity EDC the paper keeps for clean blocks.
 *
 * The paper's third optimization (Section 3.3) stores only an error
 * *detection* code for clean blocks (they can be refetched from the next
 * level) and a full SECDED ECC only for dirty blocks, which in the DBI
 * organization are exactly the blocks the DBI tracks. This module provides
 * working codecs so the scheme can be exercised end-to-end with fault
 * injection, and so tests can verify the correction/detection guarantees.
 */

#ifndef DBSIM_ECC_SECDED_HH
#define DBSIM_ECC_SECDED_HH

#include <array>
#include <cstdint>

#include "common/types.hh"

namespace dbsim {

/** Outcome of a SECDED decode. */
enum class EccStatus : std::uint8_t
{
    Clean,          ///< no error detected
    Corrected,      ///< single-bit error detected and corrected
    Uncorrectable,  ///< double-bit error detected (not correctable)
};

/** A 72-bit SECDED codeword: 64 data bits + 8 check bits. */
struct SecdedWord
{
    std::uint64_t data;
    std::uint8_t check;
};

/**
 * Hamming(72,64) SECDED codec. Check bits are the 7 Hamming parities of
 * the extended (positional) code plus one overall parity bit.
 */
class Secded
{
  public:
    /** Number of check bits per 64-bit word. */
    static constexpr std::uint32_t kCheckBits = 8;

    /** Encode a 64-bit word into a codeword. */
    static SecdedWord encode(std::uint64_t data);

    /**
     * Decode (and correct in place if possible) a codeword.
     * @param word the possibly-corrupted codeword; corrected in place on
     *             a single-bit error.
     * @return decode status.
     */
    static EccStatus decode(SecdedWord &word);

    /**
     * Flip one bit of the codeword for fault injection.
     * @param bit_pos 0..63 flips a data bit, 64..71 flips a check bit.
     */
    static void injectError(SecdedWord &word, std::uint32_t bit_pos);
};

/**
 * Parity EDC over a 64-byte cache block: one even-parity bit per 64-bit
 * word (8 bits per block, the paper's ~1.5% overhead detection code).
 */
class ParityEdc
{
  public:
    /** Parity bits per cache block. */
    static constexpr std::uint32_t kBitsPerBlock = 8;

    /** Compute the 8 parity bits of a 64-byte block. */
    static std::uint8_t encode(const std::array<std::uint64_t, 8> &block);

    /**
     * Check a block against its parity bits.
     * @return true if no error is detected.
     */
    static bool check(const std::array<std::uint64_t, 8> &block,
                      std::uint8_t parity);
};

} // namespace dbsim

#endif // DBSIM_ECC_SECDED_HH
