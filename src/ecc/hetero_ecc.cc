#include "hetero_ecc.hh"

#include "common/logging.hh"

namespace dbsim {

HeteroEccStore::HeteroEccStore(std::uint64_t max_ecc_entries,
                               RefetchFn refetch)
    : maxEcc(max_ecc_entries), refetchFn(std::move(refetch))
{
    fatal_if(max_ecc_entries == 0, "ECC table must have capacity");
}

void
HeteroEccStore::fill(Addr block_addr, const BlockData &data)
{
    Addr a = blockAlign(block_addr);
    Line line;
    line.data = data;
    line.edc = ParityEdc::encode(data);
    line.dirty = false;
    // Filling over a dirty block drops its ECC entry (new clean contents).
    eccTable.erase(a);
    lines[a] = line;
}

void
HeteroEccStore::writeDirty(Addr block_addr, const BlockData &data)
{
    Addr a = blockAlign(block_addr);
    panic_if(eccTable.size() >= maxEcc && !eccTable.count(a),
             "ECC table overflow: DBI must clean blocks before reuse");
    Line line;
    line.data = data;
    line.edc = ParityEdc::encode(data);
    line.dirty = true;
    lines[a] = line;

    std::array<SecdedWord, 8> ecc;
    for (std::uint32_t i = 0; i < 8; ++i) {
        ecc[i] = Secded::encode(data[i]);
    }
    eccTable[a] = ecc;
}

void
HeteroEccStore::markClean(Addr block_addr)
{
    Addr a = blockAlign(block_addr);
    auto it = lines.find(a);
    panic_if(it == lines.end(), "markClean on non-resident block");
    it->second.dirty = false;
    eccTable.erase(a);
}

void
HeteroEccStore::evict(Addr block_addr)
{
    Addr a = blockAlign(block_addr);
    lines.erase(a);
    eccTable.erase(a);
}

bool
HeteroEccStore::contains(Addr block_addr) const
{
    return lines.count(blockAlign(block_addr)) != 0;
}

bool
HeteroEccStore::hasEcc(Addr block_addr) const
{
    return eccTable.count(blockAlign(block_addr)) != 0;
}

EccReadStatus
HeteroEccStore::read(Addr block_addr, BlockData &data)
{
    Addr a = blockAlign(block_addr);
    auto it = lines.find(a);
    panic_if(it == lines.end(), "read of non-resident block");
    Line &line = it->second;

    if (ParityEdc::check(line.data, line.edc)) {
        data = line.data;
        return EccReadStatus::Clean;
    }
    ++statEdcFails;

    if (!line.dirty) {
        // Clean block: the next level has a good copy; refetch it.
        line.data = refetchFn(a);
        line.edc = ParityEdc::encode(line.data);
        data = line.data;
        ++statRefetched;
        return EccReadStatus::Refetched;
    }

    // Dirty block: this is the only copy; correct with SECDED.
    auto ecc_it = eccTable.find(a);
    panic_if(ecc_it == eccTable.end(), "dirty block without ECC entry");
    bool lost = false;
    for (std::uint32_t i = 0; i < 8; ++i) {
        SecdedWord w = ecc_it->second[i];
        w.data = line.data[i];
        EccStatus st = Secded::decode(w);
        if (st == EccStatus::Uncorrectable) {
            lost = true;
        }
        line.data[i] = w.data;
    }
    line.edc = ParityEdc::encode(line.data);
    data = line.data;
    if (lost) {
        ++statLost;
        return EccReadStatus::DataLost;
    }
    ++statCorrected;
    return EccReadStatus::Corrected;
}

void
HeteroEccStore::corrupt(Addr block_addr, std::uint32_t bit_pos)
{
    Addr a = blockAlign(block_addr);
    auto it = lines.find(a);
    panic_if(it == lines.end(), "corrupt of non-resident block");
    panic_if(bit_pos >= 512, "bit position %u out of block", bit_pos);
    it->second.data[bit_pos >> 6] ^= std::uint64_t{1} << (bit_pos & 63);
}

} // namespace dbsim
