#include "ecc/ecc_index.hh"

#include "model/cacti_lite.hh"

namespace dbsim {

namespace {

/** Deterministic synthetic contents for a block (splitmix spread). */
BlockData
blockContents(Addr block_addr)
{
    BlockData b;
    std::uint64_t tag = block_addr >> kBlockShift;
    for (std::uint32_t i = 0; i < 8; ++i) {
        b[i] = tag * 0x9e3779b97f4a7c15ull + i;
    }
    return b;
}

} // namespace

HeteroEccIndex::HeteroEccIndex(std::uint64_t max_ecc_entries,
                               const StorageParams &storage_params)
    : ecc(max_ecc_entries, [](Addr a) { return blockContents(a); }),
      storageParams(storage_params)
{
}

void
HeteroEccIndex::onFill(Addr block_addr, std::uint32_t core, bool dirty,
                       Cycle when)
{
    (void)core;
    (void)when;
    if (!ecc.contains(block_addr)) {
        ecc.fill(block_addr, blockContents(block_addr));
    }
    if (dirty) {
        ecc.writeDirty(block_addr, blockContents(block_addr));
    }
}

void
HeteroEccIndex::onDirty(Addr block_addr, std::uint32_t core, Cycle when)
{
    (void)core;
    (void)when;
    // The fill always precedes the dirty transition (writeback-allocate
    // fills first), but stay robust to attachment mid-run.
    ecc.writeDirty(block_addr, blockContents(block_addr));
    if (ecc.eccEntries() > peakEccEntries) {
        peakEccEntries = ecc.eccEntries();
    }
}

void
HeteroEccIndex::onCleaned(Addr block_addr, Cycle when)
{
    (void)when;
    if (ecc.contains(block_addr)) {
        ecc.markClean(block_addr);
    }
}

void
HeteroEccIndex::onEviction(Addr block_addr, Cycle when)
{
    (void)when;
    ecc.evict(block_addr);
}

void
HeteroEccIndex::onRead(Addr block_addr, std::uint32_t core, bool hit,
                       Cycle when)
{
    (void)core;
    (void)when;
    if (!hit || !ecc.contains(block_addr)) {
        return;
    }
    ++statProtectedReads;
    if (statProtectedReads.value() % kFaultPeriod == 0) {
        // Deterministic single-bit fault: clean blocks must come back
        // via refetch, dirty blocks via SECDED correction.
        ecc.corrupt(block_addr,
                    static_cast<std::uint32_t>(
                        (statProtectedReads.value() * 31) % 512));
        ++statFaultsInjected;
    }
    BlockData data;
    ecc.read(block_addr, data);
}

void
HeteroEccIndex::registerStats(StatSet &set)
{
    set.add("ecc.protectedReads", statProtectedReads);
    set.add("ecc.faultsInjected", statFaultsInjected);
    set.add("ecc.edcFails", ecc.statEdcFails);
    set.add("ecc.corrected", ecc.statCorrected);
    set.add("ecc.refetched", ecc.statRefetched);
    set.add("ecc.lost", ecc.statLost);
}

void
HeteroEccIndex::reportMetrics(std::map<std::string, double> &out) const
{
    out["ecc.protectedReads"] = double(statProtectedReads.value());
    out["ecc.faultsInjected"] = double(statFaultsInjected.value());
    out["ecc.corrected"] = double(ecc.statCorrected.value());
    out["ecc.refetched"] = double(ecc.statRefetched.value());
    out["ecc.lost"] = double(ecc.statLost.value());
    out["ecc.entriesPeak"] = double(peakEccEntries);

    // Table 4 storage accounting at this run's design point.
    StorageModel model(storageParams);
    StorageBreakdown base = model.baseline();
    StorageBreakdown dbi = model.withDbi();
    out["ecc.storage.baselineMetaBits"] = double(base.metadataBits());
    out["ecc.storage.dbiMetaBits"] = double(dbi.metadataBits());
    out["ecc.storage.tagReductionPct"] = model.tagStoreReduction() * 100.0;
    out["ecc.storage.cacheReductionPct"] = model.cacheReduction() * 100.0;

    // CACTI-lite area/energy for the metadata arrays (Section 6.3).
    CactiLite cacti;
    ArrayEstimate base_est = cacti.estimate(base.metadataBits());
    ArrayEstimate dbi_est = cacti.estimate(dbi.metadataBits());
    out["ecc.area.baselineMetaMm2"] = base_est.areaMm2;
    out["ecc.area.dbiMetaMm2"] = dbi_est.areaMm2;
    out["ecc.energy.baselineMetaReadPj"] = base_est.readEnergyPj;
    out["ecc.energy.dbiMetaReadPj"] = dbi_est.readEnergyPj;
    out["ecc.leakage.baselineMetaMw"] = base_est.leakageMw;
    out["ecc.leakage.dbiMetaMw"] = dbi_est.leakageMw;
}

} // namespace dbsim
