#include "core.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dbsim {

Core::Core(std::uint32_t core_id, const CoreConfig &config,
           TraceSource &trace_source, CoreMemory &memory,
           ShardContext context)
    : coreId(core_id), cfg(config), trace(trace_source), mem(memory),
      eq(context.queue())
{
    fatal_if(cfg.robSize == 0 || cfg.mshrs == 0, "bad core configuration");
    fatal_if(cfg.warmupInstrs == 0, "need at least one warmup instruction");
    completion.assign(cfg.robSize, 0);
    retireTime.assign(cfg.robSize, 0);
    doneTarget = cfg.warmupInstrs + cfg.measureInstrs;
    haltTarget = cfg.maxOverrun != 0 ? doneTarget * cfg.maxOverrun : 0;

    // Resume after an MSHR-full stall.
    mem.onMshrFreed([this] {
        if (blocked && !halted) {
            blocked = false;
            lastIssueCycle = std::max(lastIssueCycle, eq.now());
            runAhead();
        }
    });
}

void
Core::start()
{
    panic_if(started, "core started twice");
    started = true;
    eq.schedule(eq.now(), [this] { runAhead(); }, prof::Core);
}

double
Core::ipc() const
{
    panic_if(!done(), "IPC queried before the core finished");
    return static_cast<double>(cfg.measureInstrs) /
           static_cast<double>(doneAt - warmedAt);
}

void
Core::advanceResolution()
{
    while (resolvedUpTo < nextIssue) {
        std::uint32_t slot = resolvedSlot;
        Cycle c = completion[slot];
        if (c == kCycleMax) {
            break;  // oldest unresolved instruction still pending
        }
        Cycle retire = std::max(c, lastRetireCycle + 1);
        retireTime[slot] = retire;
        lastRetireCycle = retire;
        ++resolvedUpTo;
        if (++resolvedSlot == cfg.robSize) {
            resolvedSlot = 0;
        }

        if (resolvedUpTo == cfg.warmupInstrs) {
            warmedAt = retire;
            if (warmedFn) {
                warmedFn(coreId);
            }
        }
        if (resolvedUpTo == doneTarget) {
            doneAt = retire;
            if (doneFn) {
                doneFn(coreId);
            }
        }
        if (resolvedUpTo == haltTarget) {
            halted = true;  // stop contending; see CoreConfig::maxOverrun
        }
    }
}

void
Core::memoryDone(std::uint64_t instr_idx, Cycle c)
{
    std::uint32_t slot = static_cast<std::uint32_t>(instr_idx % cfg.robSize);
    panic_if(completion[slot] != kCycleMax,
             "memory completion for a resolved instruction");
    completion[slot] = c;
    if (instr_idx == lastMemIdx) {
        lastMemCompletion = c;  // dependent successors may now issue
    }
    advanceResolution();
    if (blocked && !halted) {
        blocked = false;
        // The block resolved now; nothing can issue earlier than this.
        lastIssueCycle = std::max(lastIssueCycle, eq.now());
        runAhead();
    }
}

void
Core::runAhead()
{
    if (halted) {
        return;
    }
    for (;;) {
        // Bounded run-ahead: yield once we are `slack` cycles past
        // global time so other cores' events interleave.
        if (lastIssueCycle > eq.now() + cfg.slack) {
            yielded = true;
            eq.schedule(lastIssueCycle, [this] {
                yielded = false;
                runAhead();
            }, prof::Core);
            return;
        }

        if (gapLeft == 0 && !opPending) {
            curOp = trace.next();
            gapLeft = curOp.gap;
            opPending = true;
        }

        // Window constraint: instruction i needs slot i-ROB retired.
        // (A genuine deadlock here is impossible: the head of the
        // window is a pending load whose completion callback resumes
        // us; System::run's maxCycles guard backstops real bugs.)
        if (nextIssue >= cfg.robSize &&
            nextIssue - cfg.robSize >= resolvedUpTo) {
            blocked = true;
            return;
        }

        Cycle min_issue = lastIssueCycle + 1;
        if (nextIssue >= cfg.robSize) {
            // (nextIssue - robSize) and nextIssue share a ring slot.
            min_issue =
                std::max(min_issue, retireTime[nextIssueSlot] + 1);
        }

        Cycle issue = min_issue;
        Cycle comp;
        std::uint64_t idx = nextIssue;

        if (gapLeft > 0) {
            // Non-memory instruction: single-cycle execute.
            --gapLeft;
            comp = issue + 1;
        } else {
            // The memory access of the current record.
            if (mem.mshrsInUse() >= cfg.mshrs) {
                blocked = true;  // wait for an MSHR to free
                return;
            }
            // Pointer-chasing dependence: wait for the previous memory
            // op's value before issuing.
            if (curOp.dependent) {
                if (lastMemCompletion == kCycleMax) {
                    blocked = true;
                    return;
                }
                issue = std::max(issue, lastMemCompletion);
            }
            if (curOp.isWrite) {
                // Stores retire promptly (store buffer); store-miss
                // fills still occupy an MSHR until they return.
                comp = issue + 1;
                mem.store(curOp.addr, issue, [](Cycle) {});
                lastMemCompletion = comp;
            } else {
                auto res = mem.load(curOp.addr, issue,
                                    [this, idx](Cycle c) {
                                        memoryDone(idx, c);
                                    });
                if (res.pending) {
                    comp = kCycleMax;
                } else {
                    comp = issue + res.latency;
                }
                lastMemCompletion = comp;
                lastMemIdx = idx;
            }
            opPending = false;
        }

        completion[nextIssueSlot] = comp;
        lastIssueCycle = issue;
        ++nextIssue;
        if (++nextIssueSlot == cfg.robSize) {
            nextIssueSlot = 0;
        }
        advanceResolution();

        if (halted) {
            return;  // a milestone callback may have halted us
        }
    }
}

} // namespace dbsim
