/**
 * @file
 * Trace-driven out-of-order core model (Table 1: single issue, 128-entry
 * instruction window, 32 MSHRs). The model tracks per-instruction issue
 * and retire times with a ROB-occupancy ring buffer: instruction i can
 * issue only once instruction i-ROB has retired, loads complete when the
 * memory hierarchy answers, and retirement is in-order at one
 * instruction per cycle. This exposes exactly the stall behaviour the
 * paper's memory-system optimizations act on — the window filling up
 * behind long-latency misses — at event-driven speed.
 *
 * Cores run ahead of global simulated time by at most a slack window and
 * then yield to the event queue, so multi-core contention at the shared
 * LLC and DRAM is observed in near time order.
 */

#ifndef DBSIM_CPU_CORE_HH
#define DBSIM_CPU_CORE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/event_queue.hh"
#include "common/shard.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/core_memory.hh"
#include "cpu/trace.hh"

namespace dbsim {

/** Core model parameters. */
struct CoreConfig
{
    std::uint32_t robSize = 128;
    std::uint32_t mshrs = 32;
    Cycle slack = 2000;          ///< max run-ahead beyond global time
    std::uint64_t warmupInstrs = 500'000;
    std::uint64_t measureInstrs = 2'000'000;

    /**
     * A core that finishes its measurement window keeps executing (to
     * keep contending for shared resources) until it has retired this
     * multiple of its target, then idles. 0 = run forever (exact
     * methodology, but slow when per-core IPCs differ widely).
     */
    std::uint32_t maxOverrun = 3;
};

/**
 * One simulated core. Drives its trace through the memory hierarchy and
 * reports IPC over the measurement window.
 */
class Core
{
  public:
    /** (core_id, warmed: crossed warmup / done: finished measuring) */
    using MilestoneFn = std::function<void(std::uint32_t)>;

    /**
     * @param context the shard the core executes on (implicitly a bare
     *        EventQueue& for unsharded use); its private hierarchy's
     *        LlcPort decides where accesses actually go.
     */
    Core(std::uint32_t core_id, const CoreConfig &config,
         TraceSource &trace_source, CoreMemory &memory,
         ShardContext context);

    /** Schedule the core's first work at cycle 0. */
    void start();

    /** Invoked once when the core crosses its warmup boundary. */
    void onWarmed(MilestoneFn fn) { warmedFn = std::move(fn); }

    /** Invoked once when the core finishes its measurement window. */
    void onDone(MilestoneFn fn) { doneFn = std::move(fn); }

    /** Stop issuing new instructions (simulation shutdown). */
    void halt() { halted = true; }

    bool done() const { return doneAt != kCycleMax; }

    /** Measured IPC; valid once done(). */
    double ipc() const;

    /** Retired instructions in the measurement window. */
    std::uint64_t measuredInstrs() const { return cfg.measureInstrs; }

    /** Cycles spent in the measurement window; valid once done(). */
    Cycle measuredCycles() const { return doneAt - warmedAt; }

    std::uint32_t id() const { return coreId; }

  private:
    /** Issue instructions until blocked, out of slack, or halted. */
    void runAhead();

    /** Resolve retire times for instructions whose completion arrived. */
    void advanceResolution();

    /** A pending memory access completed at cycle c. */
    void memoryDone(std::uint64_t instr_idx, Cycle c);

    std::uint32_t coreId;
    CoreConfig cfg;
    TraceSource &trace;
    CoreMemory &mem;
    EventQueue &eq;

    // Ring buffers indexed by instruction number % robSize.
    std::vector<Cycle> completion;  ///< kCycleMax while pending
    std::vector<Cycle> retireTime;

    std::uint64_t nextIssue = 0;     ///< next instruction number to issue
    std::uint64_t resolvedUpTo = 0;  ///< all earlier retire times final
    std::uint32_t nextIssueSlot = 0;    ///< nextIssue % robSize
    std::uint32_t resolvedSlot = 0;     ///< resolvedUpTo % robSize
    std::uint64_t doneTarget = 0;       ///< warmupInstrs + measureInstrs
    std::uint64_t haltTarget = 0;       ///< overrun bound; 0 = none
    Cycle lastIssueCycle = 0;
    Cycle lastRetireCycle = 0;

    /** Completion of the most recent memory op (kCycleMax = pending). */
    Cycle lastMemCompletion = 0;
    std::uint64_t lastMemIdx = 0;

    // Current trace record being expanded.
    TraceOp curOp{0, false, false, 0};
    std::uint32_t gapLeft = 0;
    bool opPending = false;  ///< curOp's memory access not yet issued

    bool blocked = false;    ///< waiting on a memory completion
    bool yielded = false;    ///< continuation event is scheduled
    bool halted = false;
    bool started = false;

    Cycle warmedAt = kCycleMax;
    Cycle doneAt = kCycleMax;
    MilestoneFn warmedFn;
    MilestoneFn doneFn;
};

} // namespace dbsim

#endif // DBSIM_CPU_CORE_HH
