/**
 * @file
 * Instruction trace interface consumed by the core model. A trace is an
 * infinite stream of "ops": a count of non-memory instructions followed
 * by one memory access. Concrete generators live in src/workload.
 */

#ifndef DBSIM_CPU_TRACE_HH
#define DBSIM_CPU_TRACE_HH

#include <cstdint>

#include "common/types.hh"

namespace dbsim {

/** One trace record: `gap` non-memory instructions, then a memory op. */
struct TraceOp
{
    std::uint32_t gap;  ///< non-memory instructions preceding the access
    bool isWrite;
    /**
     * True if this access depends on the previous memory access's value
     * (pointer chasing): it cannot issue until that access completes.
     * This is what makes low-MLP benchmarks like mcf slow.
     */
    bool dependent;
    Addr addr;
};

/** Infinite instruction trace source. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next record. Traces never end. */
    virtual TraceOp next() = 0;

    /**
     * Ops handed out so far, for ingest-throughput accounting. Sources
     * that don't track it (synthetic generators) report 0.
     */
    virtual std::uint64_t opsEmitted() const { return 0; }
};

} // namespace dbsim

#endif // DBSIM_CPU_TRACE_HH
