#include "core_memory.hh"

#include "common/logging.hh"

namespace dbsim {

CoreMemory::CoreMemory(const CoreMemoryConfig &config, Llc &shared_llc,
                       std::uint32_t core_id, std::uint64_t seed)
    : cfg(config), llc(shared_llc), coreId(core_id),
      l1(CacheGeometry{config.l1.sizeBytes, config.l1.assoc,
                       ReplPolicy::Lru, 1, seed}),
      l2(CacheGeometry{config.l2.sizeBytes, config.l2.assoc,
                       ReplPolicy::Lru, 1, seed + 1})
{
}

void
CoreMemory::registerStats(StatSet &set)
{
    set.add("core.loads", statLoads);
    set.add("core.stores", statStores);
    set.add("core.l1Hits", statL1Hits);
    set.add("core.l2Hits", statL2Hits);
    set.add("core.llcAccesses", statLlcAccesses);
    set.add("core.mshrMerges", statMshrMerges);
}

void
CoreMemory::fillL1(Addr block_addr, bool dirty, Cycle when)
{
    if (l1.contains(block_addr)) {
        l1.touch(block_addr, 0);
        if (dirty) {
            l1.markDirty(block_addr);
        }
        return;
    }
    TagStore::Eviction ev = l1.insert(block_addr, 0, dirty);
    if (ev.valid && ev.dirty) {
        // L1 dirty victim spills into L2.
        fillL2(ev.block, true, when);
    }
}

void
CoreMemory::fillL2(Addr block_addr, bool dirty, Cycle when)
{
    if (l2.contains(block_addr)) {
        l2.touch(block_addr, 0);
        if (dirty) {
            l2.markDirty(block_addr);
        }
        return;
    }
    TagStore::Eviction ev = l2.insert(block_addr, 0, dirty);
    if (ev.valid && ev.dirty) {
        // L2 dirty victim becomes a writeback request to the LLC
        // (Section 2.2.2).
        llc.writeback(ev.block, coreId, when);
    }
}

Cycle
CoreMemory::llcAccessTime(Cycle when) const
{
    return when + cfg.l1.latency + cfg.l2.latency;
}

CoreMemory::Result
CoreMemory::accessBelowL2(Addr block_addr, bool is_write, Cycle when,
                          Callback on_done)
{
    // MSHR merge: a secondary miss to a block already being filled
    // waits for that fill instead of issuing another LLC access.
    auto it = inflight.find(block_addr);
    if (it != inflight.end()) {
        ++statMshrMerges;
        it->second.push_back(Waiter{is_write, std::move(on_done)});
        return Result{true, 0};
    }

    inflight[block_addr].push_back(Waiter{is_write, std::move(on_done)});
    ++statLlcAccesses;
    Cycle at = llcAccessTime(when);
    llc.read(block_addr, coreId, at, [this, block_addr](Cycle done) {
        auto node = inflight.extract(block_addr);
        panic_if(node.empty(), "fill completion without MSHR entry");
        std::vector<Waiter> waiters = std::move(node.mapped());

        bool any_write = false;
        for (const auto &w : waiters) {
            any_write |= w.isWrite;
        }
        fillL2(block_addr, false, done);
        fillL1(block_addr, any_write, done);
        for (auto &w : waiters) {
            w.onDone(done);
        }
        if (mshrFreedFn) {
            mshrFreedFn();
        }
    });
    return Result{true, 0};
}

CoreMemory::Result
CoreMemory::load(Addr addr, Cycle when, Callback on_done)
{
    ++statLoads;
    Addr a = blockAlign(addr);

    if (l1.contains(a)) {
        ++statL1Hits;
        l1.touch(a, 0);
        return Result{false, cfg.l1.latency};
    }
    if (l2.contains(a)) {
        ++statL2Hits;
        l2.touch(a, 0);
        bool dirty = l2.isDirty(a);
        // Move the block up; L2 keeps its copy clean once L1 owns the
        // dirty state (exclusive dirty ownership avoids double
        // writebacks).
        if (dirty) {
            l2.markClean(a);
        }
        fillL1(a, dirty, when);
        return Result{false, cfg.l1.latency + cfg.l2.latency};
    }
    return accessBelowL2(a, false, when, std::move(on_done));
}

CoreMemory::Result
CoreMemory::store(Addr addr, Cycle when, Callback on_done)
{
    ++statStores;
    Addr a = blockAlign(addr);

    if (l1.contains(a)) {
        ++statL1Hits;
        l1.touch(a, 0);
        l1.markDirty(a);
        return Result{false, 1};
    }
    if (l2.contains(a)) {
        ++statL2Hits;
        l2.touch(a, 0);
        l2.markClean(a);
        fillL1(a, true, when);
        return Result{false, 1};
    }
    // Write-allocate: fetch the block, then dirty it in L1 on arrival.
    return accessBelowL2(a, true, when, std::move(on_done));
}

} // namespace dbsim
