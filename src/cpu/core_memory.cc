#include "core_memory.hh"

#include "common/logging.hh"

namespace dbsim {

CoreMemory::CoreMemory(const CoreMemoryConfig &config, LlcPort &shared_llc,
                       std::uint32_t core_id, std::uint64_t seed)
    : cfg(config), llc(shared_llc), coreId(core_id),
      l1(CacheGeometry{config.l1.sizeBytes, config.l1.assoc,
                       ReplPolicy::Lru, 1, seed}),
      l2(CacheGeometry{config.l2.sizeBytes, config.l2.assoc,
                       ReplPolicy::Lru, 1, seed + 1})
{
}

void
CoreMemory::registerStats(StatSet &set)
{
    set.add("core.loads", statLoads);
    set.add("core.stores", statStores);
    set.add("core.l1Hits", statL1Hits);
    set.add("core.l2Hits", statL2Hits);
    set.add("core.llcAccesses", statLlcAccesses);
    set.add("core.mshrMerges", statMshrMerges);
}

void
CoreMemory::fillL1(Addr block_addr, bool dirty, Cycle when)
{
    if (TagStore::Entry *e = l1.find(block_addr)) {
        l1.touchEntry(*e);
        if (dirty) {
            l1.setEntryDirty(*e, true);
        }
        return;
    }
    TagStore::Eviction ev = l1.insert(block_addr, 0, dirty);
    if (ev.valid && ev.dirty) {
        // L1 dirty victim spills into L2.
        fillL2(ev.block, true, when);
    }
}

void
CoreMemory::fillL2(Addr block_addr, bool dirty, Cycle when)
{
    if (TagStore::Entry *e = l2.find(block_addr)) {
        l2.touchEntry(*e);
        if (dirty) {
            l2.setEntryDirty(*e, true);
        }
        return;
    }
    TagStore::Eviction ev = l2.insert(block_addr, 0, dirty);
    if (ev.valid && ev.dirty) {
        // L2 dirty victim becomes a writeback request to the LLC
        // (Section 2.2.2).
        llc.writeback(ev.block, coreId, when);
    }
}

void
CoreMemory::functionalAccess(Addr addr, bool is_write)
{
    // Long-history structures only: every warmed op reaches the LLC's
    // functional port unfiltered. The L1/L2 filter would thin the
    // stream the LLC sees, but on fast-forward spans (millions of ops)
    // the LLC recency and DBI dirty state it converges to is the same,
    // and skipping two private-tag-store updates per op is most of the
    // fast-forward speedup.
    llc.functionalAccess(blockAlign(addr), coreId, is_write);
}

Cycle
CoreMemory::llcAccessTime(Cycle when) const
{
    return when + cfg.l1.latency + cfg.l2.latency;
}

CoreMemory::Result
CoreMemory::accessBelowL2(Addr block_addr, bool is_write, Cycle when,
                          Callback on_done)
{
    // MSHR merge: a secondary miss to a block already being filled
    // waits for that fill instead of issuing another LLC access.
    auto it = inflight.find(block_addr);
    if (it != inflight.end()) {
        ++statMshrMerges;
        it->second.push_back(Waiter{is_write, std::move(on_done)});
        return Result{true, 0};
    }

    // Recycle retired waiter vectors: their capacity survives the round
    // trip through the pool, so the steady state allocates nothing.
    std::vector<Waiter> fresh;
    if (!waiterPool.empty()) {
        fresh = std::move(waiterPool.back());
        waiterPool.pop_back();
    }
    fresh.push_back(Waiter{is_write, std::move(on_done)});
    inflight.emplace(block_addr, std::move(fresh));

    ++statLlcAccesses;
    Cycle at = llcAccessTime(when);
    llc.read(block_addr, coreId, at, [this, block_addr](Cycle done) {
        auto node = inflight.find(block_addr);
        panic_if(node == inflight.end(),
                 "fill completion without MSHR entry");
        std::vector<Waiter> waiters = std::move(node->second);
        inflight.erase(node);

        bool any_write = false;
        for (const auto &w : waiters) {
            any_write |= w.isWrite;
        }
        fillL2(block_addr, false, done);
        fillL1(block_addr, any_write, done);
        for (auto &w : waiters) {
            w.onDone(done);
        }
        waiters.clear();
        waiterPool.push_back(std::move(waiters));
        if (mshrFreedFn) {
            mshrFreedFn();
        }
    });
    return Result{true, 0};
}

CoreMemory::Result
CoreMemory::load(Addr addr, Cycle when, Callback on_done)
{
    ++statLoads;
    Addr a = blockAlign(addr);

    if (TagStore::Entry *e = l1.find(a)) {
        ++statL1Hits;
        l1.touchEntry(*e);
        return Result{false, cfg.l1.latency};
    }
    if (TagStore::Entry *e = l2.find(a)) {
        ++statL2Hits;
        l2.touchEntry(*e);
        bool dirty = e->dirty;
        // Move the block up; L2 keeps its copy clean once L1 owns the
        // dirty state (exclusive dirty ownership avoids double
        // writebacks).
        l2.setEntryDirty(*e, false);
        fillL1(a, dirty, when);
        return Result{false, cfg.l1.latency + cfg.l2.latency};
    }
    return accessBelowL2(a, false, when, std::move(on_done));
}

CoreMemory::Result
CoreMemory::store(Addr addr, Cycle when, Callback on_done)
{
    ++statStores;
    Addr a = blockAlign(addr);

    if (TagStore::Entry *e = l1.find(a)) {
        ++statL1Hits;
        l1.touchEntry(*e);
        l1.setEntryDirty(*e, true);
        return Result{false, 1};
    }
    if (TagStore::Entry *e = l2.find(a)) {
        ++statL2Hits;
        l2.touchEntry(*e);
        l2.setEntryDirty(*e, false);
        fillL1(a, true, when);
        return Result{false, 1};
    }
    // Write-allocate: fetch the block, then dirty it in L1 on arrival.
    return accessBelowL2(a, true, when, std::move(on_done));
}

} // namespace dbsim
