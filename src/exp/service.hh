/**
 * @file
 * The experiment-farm service: one warm process multiplexing sweep
 * requests from many clients over a single shared result cache, so a
 * team's (or a script loop's) repeated sweeps pay simulation cost only
 * for content nobody has computed yet.
 *
 * Transport is a unix-domain stream socket speaking JSON lines, one
 * request per line:
 *
 *   {"op":"ping"}
 *   {"op":"stats"}
 *   {"op":"metrics"}
 *   {"op":"sweep","mechs":["Baseline","dbi+awb"],
 *    "mixes":[["milc","lbm"],["mcf","gcc"]],
 *    "kind":"mix",              // "sim" | "mix" (default "sim")
 *    "warmup":30000,"measure":20000,"seed":1,   // optional
 *    "slices":0,"channels":0,"hop":0,"shards":0, // optional topology
 *    "jobs":4,"experiment":"farm"}               // optional execution
 *   {"op":"shutdown"}
 *
 * and streams JSON-line responses back: {"type":"progress",...} after
 * every completed point, {"type":"record","data":{...}} per record
 * (data is the exact JSONL record object the bench binaries emit),
 * then one {"type":"done",...} carrying cache traffic counters. Bad
 * requests get {"type":"error","message":...} and the connection —
 * and the server — keep going: request validation goes through the
 * non-fatal seams (tryMechanismByName, findBenchmark, the topology
 * rules) precisely so a typo cannot take down the warm process.
 *
 * Observability: "stats" reports, besides the cache counters it always
 * carried, the service uptime, per-verb request counts (including
 * errors), and sweep traffic (in-flight, completed, wall-time p50/p95
 * over completed sweeps). "metrics" returns the same counters in
 * Prometheus text exposition format (version 0.0.4), wrapped as
 * {"type":"metrics","contentType":...,"body":...} so a scraper
 * sidecar only has to unwrap one JSON field. All counters are updated
 * race-free from the per-connection threads.
 */

#ifndef DBSIM_EXP_SERVICE_HH
#define DBSIM_EXP_SERVICE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/result_cache.hh"
#include "telemetry/histogram.hh"

namespace dbsim::exp {

struct JsonValue;

/** Farm-server settings. */
struct ServiceConfig
{
    /** Unix-socket path to listen on (serve() unlinks + binds it). */
    std::string socketPath;

    /** Result-cache directory; "" serves without a persistent cache. */
    std::string cacheDir;

    /** Default worker threads per sweep (requests may override). */
    std::uint32_t jobs = 1;
};

class FarmService
{
  public:
    explicit FarmService(ServiceConfig config);
    ~FarmService();

    /**
     * Bind the socket and serve until a client sends {"op":"shutdown"}
     * or stop() is called from another thread. Each connection is
     * handled on its own thread; sweeps from different clients share
     * the one warm cache.
     */
    void serve();

    /**
     * Handle one already-connected stream socket until EOF (the unit
     * tests drive this directly over a socketpair; serve() calls it
     * per accepted connection).
     */
    void handleConnection(int fd);

    /** Make serve() return; safe from signal-adjacent contexts. */
    void stop();

    /** The warm cache (nullptr when cacheDir was empty). */
    ResultCache *cache() { return store.get(); }

  private:
    /**
     * Live service observability, shared by every connection thread.
     * The counters are atomics, bumped straight from the connection
     * threads; the sweep wall-time histogram sits behind its own mutex
     * because Histogram is not thread-safe (percentile() lazily sorts
     * even through const).
     */
    struct Metrics
    {
        std::chrono::steady_clock::time_point start =
            std::chrono::steady_clock::now();
        std::atomic<std::uint64_t> pings{0};
        std::atomic<std::uint64_t> statsRequests{0};
        std::atomic<std::uint64_t> metricsRequests{0};
        std::atomic<std::uint64_t> sweepRequests{0};
        std::atomic<std::uint64_t> shutdowns{0};
        std::atomic<std::uint64_t> errors{0};
        std::atomic<std::uint64_t> sweepsInFlight{0};
        std::atomic<std::uint64_t> sweepsCompleted{0};
        mutable std::mutex histMu;
        telemetry::Histogram sweepWallMs{"sweepWallMs"};
    };

    bool handleLine(const std::string &line, int fd);
    bool runSweep(const JsonValue &req, int fd);

    /** sendError + the error counter; use for every request error. */
    bool err(int fd, const std::string &message);

    /** Body of the "stats" response (counters + cache). */
    std::string statsBody() const;

    /** Prometheus text exposition of the same counters. */
    std::string prometheusText() const;

    ServiceConfig cfg;
    std::unique_ptr<ResultCache> store;
    Metrics live;
    std::atomic<bool> stopping{false};
    int listenFd = -1;
};

} // namespace dbsim::exp

#endif // DBSIM_EXP_SERVICE_HH
