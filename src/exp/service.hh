/**
 * @file
 * The experiment-farm service: one warm process multiplexing sweep
 * requests from many clients over a single shared result cache, so a
 * team's (or a script loop's) repeated sweeps pay simulation cost only
 * for content nobody has computed yet.
 *
 * Transport is a unix-domain stream socket speaking JSON lines, one
 * request per line:
 *
 *   {"op":"ping"}
 *   {"op":"stats"}
 *   {"op":"sweep","mechs":["Baseline","dbi+awb"],
 *    "mixes":[["milc","lbm"],["mcf","gcc"]],
 *    "kind":"mix",              // "sim" | "mix" (default "sim")
 *    "warmup":30000,"measure":20000,"seed":1,   // optional
 *    "slices":0,"channels":0,"hop":0,"shards":0, // optional topology
 *    "jobs":4,"experiment":"farm"}               // optional execution
 *   {"op":"shutdown"}
 *
 * and streams JSON-line responses back: {"type":"progress",...} after
 * every completed point, {"type":"record","data":{...}} per record
 * (data is the exact JSONL record object the bench binaries emit),
 * then one {"type":"done",...} carrying cache traffic counters. Bad
 * requests get {"type":"error","message":...} and the connection —
 * and the server — keep going: request validation goes through the
 * non-fatal seams (tryMechanismByName, findBenchmark, the topology
 * rules) precisely so a typo cannot take down the warm process.
 */

#ifndef DBSIM_EXP_SERVICE_HH
#define DBSIM_EXP_SERVICE_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "exp/result_cache.hh"

namespace dbsim::exp {

struct JsonValue;

/** Farm-server settings. */
struct ServiceConfig
{
    /** Unix-socket path to listen on (serve() unlinks + binds it). */
    std::string socketPath;

    /** Result-cache directory; "" serves without a persistent cache. */
    std::string cacheDir;

    /** Default worker threads per sweep (requests may override). */
    std::uint32_t jobs = 1;
};

class FarmService
{
  public:
    explicit FarmService(ServiceConfig config);
    ~FarmService();

    /**
     * Bind the socket and serve until a client sends {"op":"shutdown"}
     * or stop() is called from another thread. Each connection is
     * handled on its own thread; sweeps from different clients share
     * the one warm cache.
     */
    void serve();

    /**
     * Handle one already-connected stream socket until EOF (the unit
     * tests drive this directly over a socketpair; serve() calls it
     * per accepted connection).
     */
    void handleConnection(int fd);

    /** Make serve() return; safe from signal-adjacent contexts. */
    void stop();

    /** The warm cache (nullptr when cacheDir was empty). */
    ResultCache *cache() { return store.get(); }

  private:
    bool handleLine(const std::string &line, int fd);
    bool runSweep(const JsonValue &req, int fd);

    ServiceConfig cfg;
    std::unique_ptr<ResultCache> store;
    std::atomic<bool> stopping{false};
    int listenFd = -1;
};

} // namespace dbsim::exp

#endif // DBSIM_EXP_SERVICE_HH
