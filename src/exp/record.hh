/**
 * @file
 * The structured result of one sweep point. Every (mechanism, mix,
 * config) simulation — or analytic/custom evaluation — produces exactly
 * one PointRecord; formatters turn ordered record sets back into the
 * paper's human-readable tables, and `--json` streams each record as
 * one JSON Lines row.
 *
 * Records deliberately contain only deterministic fields (no wall-clock
 * timings), so the same SweepSpec and seed yield bit-identical JSONL
 * regardless of `--jobs` (modulo completion order).
 */

#ifndef DBSIM_EXP_RECORD_HH
#define DBSIM_EXP_RECORD_HH

#include <cstdint>
#include <map>
#include <string>

namespace dbsim::exp {

/** One structured result row. */
struct PointRecord
{
    /** Position of the point in its SweepSpec (stable sort key). */
    std::size_t index = 0;

    /** Experiment (bench binary) that produced the record. */
    std::string experiment;

    /** Mechanism label (mechanismName), or a custom label. */
    std::string mechanism;

    /** Workload label ("a+b+c" via mixLabel), or a custom label. */
    std::string mix;

    /** Config-axis coordinates of the point ("alpha" -> "0.25", ...). */
    std::map<std::string, std::string> tags;

    /** Derived results (IPCs, rates, speedups, model outputs). */
    std::map<std::string, double> metrics;

    /** Raw counters from the measurement window. */
    std::map<std::string, std::uint64_t> stats;

    /**
     * Host-side wall-clock phase timings in milliseconds (build / run /
     * collect), filled only when RunOptions::hostTimers is on. Kept out
     * of `metrics` and serialized under a separate "host" key (omitted
     * when empty) because wall-clock values are non-deterministic: the
     * default record stays bit-identical across --jobs and machines.
     */
    std::map<std::string, double> host;

    /** Metric value; fatal() when the key was never filled. */
    double metric(const std::string &key) const;

    /** Stat value; fatal() when the key was never filled. */
    std::uint64_t stat(const std::string &key) const;

    /** The record as a single JSON object (no trailing newline). */
    std::string toJsonLine() const;
};

} // namespace dbsim::exp

#endif // DBSIM_EXP_RECORD_HH
