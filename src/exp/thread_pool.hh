/**
 * @file
 * Fixed-size thread pool for the experiment runner. Each simulation
 * point owns its own System and EventQueue, so tasks are fully
 * independent; the pool only provides fan-out and a drain barrier.
 *
 * Exception safety: a task that throws does not kill the process and
 * cannot deadlock wait() — the active count is decremented by an RAII
 * guard on every exit path, the first exception is captured, and
 * wait() rethrows it once the queue has drained.
 */

#ifndef DBSIM_EXP_THREAD_POOL_HH
#define DBSIM_EXP_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbsim::exp {

class ThreadPool
{
  public:
    /** Spawns `num_threads` workers (at least one). */
    explicit ThreadPool(std::uint32_t num_threads);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a task. Callable from any thread. */
    void submit(std::function<void()> task);

    /**
     * Block until the queue is empty and no task is running. If any
     * task threw since the last wait(), rethrows the first such
     * exception (later ones are dropped); the pool remains usable.
     */
    void wait();

    std::uint32_t threadCount() const
    {
        return static_cast<std::uint32_t>(workers.size());
    }

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mu;
    std::condition_variable taskCv;  ///< workers: work available / stop
    std::condition_variable idleCv;  ///< wait(): queue drained
    std::size_t active = 0;          ///< tasks currently executing
    std::exception_ptr firstError;   ///< first task exception since wait
    bool stopping = false;
};

} // namespace dbsim::exp

#endif // DBSIM_EXP_THREAD_POOL_HH
