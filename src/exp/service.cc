#include "service.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>

#include "common/logging.hh"
#include "exp/json.hh"
#include "exp/runner.hh"
#include "sim/mechanism.hh"
#include "workload/profiles.hh"

namespace dbsim::exp {

namespace {

/**
 * Send one response line; false when the peer is gone (EPIPE & co).
 * MSG_NOSIGNAL: a dead client must surface as an error return, not a
 * SIGPIPE that kills the warm server.
 */
bool
sendLine(int fd, const std::string &line)
{
    std::string out = line;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
        ssize_t n = ::send(fd, out.data() + sent, out.size() - sent,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) {
                continue;
            }
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
sendError(int fd, const std::string &message)
{
    return sendLine(fd, "{\"type\":\"error\",\"message\":" +
                            jsonString(message) + "}");
}

bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Optional unsigned field; false (with an error sent) on bad type. */
bool
optU64(const JsonValue &req, const char *key, std::uint64_t &out,
       int fd, bool *sent_error)
{
    const JsonValue *v = req.find(key);
    if (!v) {
        return true;
    }
    if (!v->asU64(out)) {
        *sent_error = true;
        sendError(fd, std::string("field '") + key +
                          "' must be an unsigned integer");
        return false;
    }
    return true;
}

std::string
cacheStatsJson(const CacheStats &cs)
{
    return "{\"hits\":" + jsonNumber(cs.hits) +
           ",\"misses\":" + jsonNumber(cs.misses) +
           ",\"bypasses\":" + jsonNumber(cs.bypasses) + "}";
}

/** One Prometheus sample line: `name{labels} value` (labels optional). */
std::string
promLine(const std::string &name, const std::string &labels,
         const std::string &value)
{
    std::string line = name;
    if (!labels.empty()) {
        line += "{" + labels + "}";
    }
    line += " " + value + "\n";
    return line;
}

} // namespace

FarmService::FarmService(ServiceConfig config) : cfg(std::move(config))
{
    if (!cfg.cacheDir.empty()) {
        store = std::make_unique<ResultCache>(cfg.cacheDir);
    }
}

FarmService::~FarmService()
{
    if (listenFd >= 0) {
        ::close(listenFd);
    }
}

void
FarmService::stop()
{
    stopping.store(true);
    if (listenFd >= 0) {
        // Break the blocking accept().
        ::shutdown(listenFd, SHUT_RDWR);
    }
}

void
FarmService::serve()
{
    fatal_if(cfg.socketPath.empty(), "farm service needs a socket path");
    fatal_if(cfg.socketPath.size() >= sizeof(sockaddr_un{}.sun_path),
             "socket path '%s' is too long", cfg.socketPath.c_str());

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatal_if(listenFd < 0, "socket: %s", std::strerror(errno));

    ::unlink(cfg.socketPath.c_str());
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, cfg.socketPath.c_str(),
                 sizeof(addr.sun_path) - 1);
    fatal_if(::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) != 0,
             "bind '%s': %s", cfg.socketPath.c_str(),
             std::strerror(errno));
    fatal_if(::listen(listenFd, 8) != 0, "listen: %s",
             std::strerror(errno));
    inform("farm server listening on %s (cache: %s)",
           cfg.socketPath.c_str(),
           store ? store->directory().c_str() : "off");

    std::vector<std::thread> clients;
    while (!stopping.load()) {
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR && !stopping.load()) {
                continue;
            }
            break;
        }
        clients.emplace_back([this, fd] {
            handleConnection(fd);
            ::close(fd);
        });
    }
    for (auto &t : clients) {
        t.join();
    }
    ::close(listenFd);
    listenFd = -1;
    ::unlink(cfg.socketPath.c_str());
}

void
FarmService::handleConnection(int fd)
{
    std::string buf;
    char chunk[4096];
    while (true) {
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (!line.empty() && line.back() == '\r') {
                line.pop_back();
            }
            if (line.empty()) {
                continue;
            }
            if (!handleLine(line, fd)) {
                return;
            }
        }
        ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR) {
            continue;
        }
        if (n <= 0) {
            return;  // EOF or error: client is done
        }
        buf.append(chunk, static_cast<std::size_t>(n));
    }
}

bool
FarmService::err(int fd, const std::string &message)
{
    live.errors.fetch_add(1, std::memory_order_relaxed);
    return sendError(fd, message);
}

std::string
FarmService::statsBody() const
{
    double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      live.start)
            .count();
    std::string body = "{\"type\":\"stats\",\"cache\":";
    if (store) {
        body += cacheStatsJson(store->stats()) + ",\"entries\":" +
                jsonNumber(std::uint64_t(store->entryCount()));
    } else {
        body += "null";
    }
    body += ",\"uptimeSec\":" + jsonNumber(uptime);
    body += ",\"requests\":{\"ping\":" +
            jsonNumber(live.pings.load()) +
            ",\"stats\":" + jsonNumber(live.statsRequests.load()) +
            ",\"metrics\":" + jsonNumber(live.metricsRequests.load()) +
            ",\"sweep\":" + jsonNumber(live.sweepRequests.load()) +
            ",\"shutdown\":" + jsonNumber(live.shutdowns.load()) +
            ",\"errors\":" + jsonNumber(live.errors.load()) + "}";
    std::uint64_t count, p50, p95;
    {
        std::lock_guard<std::mutex> lock(live.histMu);
        count = live.sweepWallMs.count();
        p50 = live.sweepWallMs.percentile(50);
        p95 = live.sweepWallMs.percentile(95);
    }
    body += ",\"sweeps\":{\"inFlight\":" +
            jsonNumber(live.sweepsInFlight.load()) +
            ",\"completed\":" + jsonNumber(live.sweepsCompleted.load()) +
            ",\"count\":" + jsonNumber(count) +
            ",\"wallMsP50\":" + jsonNumber(p50) +
            ",\"wallMsP95\":" + jsonNumber(p95) + "}";
    body += "}";
    return body;
}

std::string
FarmService::prometheusText() const
{
    double uptime =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      live.start)
            .count();
    std::string t;
    t += "# HELP dbsim_farm_uptime_seconds Time since the farm service "
         "started.\n";
    t += "# TYPE dbsim_farm_uptime_seconds gauge\n";
    t += promLine("dbsim_farm_uptime_seconds", "", jsonNumber(uptime));

    t += "# HELP dbsim_farm_requests_total Requests handled, by verb.\n";
    t += "# TYPE dbsim_farm_requests_total counter\n";
    t += promLine("dbsim_farm_requests_total", "op=\"ping\"",
                  jsonNumber(live.pings.load()));
    t += promLine("dbsim_farm_requests_total", "op=\"stats\"",
                  jsonNumber(live.statsRequests.load()));
    t += promLine("dbsim_farm_requests_total", "op=\"metrics\"",
                  jsonNumber(live.metricsRequests.load()));
    t += promLine("dbsim_farm_requests_total", "op=\"sweep\"",
                  jsonNumber(live.sweepRequests.load()));
    t += promLine("dbsim_farm_requests_total", "op=\"shutdown\"",
                  jsonNumber(live.shutdowns.load()));

    t += "# HELP dbsim_farm_errors_total Requests rejected with an "
         "error response.\n";
    t += "# TYPE dbsim_farm_errors_total counter\n";
    t += promLine("dbsim_farm_errors_total", "",
                  jsonNumber(live.errors.load()));

    t += "# HELP dbsim_farm_sweeps_in_flight Sweeps currently "
         "running.\n";
    t += "# TYPE dbsim_farm_sweeps_in_flight gauge\n";
    t += promLine("dbsim_farm_sweeps_in_flight", "",
                  jsonNumber(live.sweepsInFlight.load()));
    t += "# HELP dbsim_farm_sweeps_completed_total Sweeps run to "
         "completion.\n";
    t += "# TYPE dbsim_farm_sweeps_completed_total counter\n";
    t += promLine("dbsim_farm_sweeps_completed_total", "",
                  jsonNumber(live.sweepsCompleted.load()));

    std::uint64_t count, p50, p95, maxv;
    {
        std::lock_guard<std::mutex> lock(live.histMu);
        count = live.sweepWallMs.count();
        p50 = live.sweepWallMs.percentile(50);
        p95 = live.sweepWallMs.percentile(95);
        maxv = live.sweepWallMs.max();
    }
    t += "# HELP dbsim_farm_sweep_wall_ms Wall time per completed "
         "sweep, milliseconds (nearest-rank percentiles).\n";
    t += "# TYPE dbsim_farm_sweep_wall_ms summary\n";
    t += promLine("dbsim_farm_sweep_wall_ms", "quantile=\"0.5\"",
                  jsonNumber(p50));
    t += promLine("dbsim_farm_sweep_wall_ms", "quantile=\"0.95\"",
                  jsonNumber(p95));
    t += promLine("dbsim_farm_sweep_wall_ms", "quantile=\"1\"",
                  jsonNumber(maxv));
    t += promLine("dbsim_farm_sweep_wall_ms_count", "",
                  jsonNumber(count));

    if (store) {
        CacheStats cs = store->stats();
        t += "# HELP dbsim_farm_cache_requests_total Result-cache "
             "traffic, by outcome.\n";
        t += "# TYPE dbsim_farm_cache_requests_total counter\n";
        t += promLine("dbsim_farm_cache_requests_total",
                      "outcome=\"hit\"", jsonNumber(cs.hits));
        t += promLine("dbsim_farm_cache_requests_total",
                      "outcome=\"miss\"", jsonNumber(cs.misses));
        t += promLine("dbsim_farm_cache_requests_total",
                      "outcome=\"bypass\"", jsonNumber(cs.bypasses));
        t += "# HELP dbsim_farm_cache_entries Entries in the result "
             "cache.\n";
        t += "# TYPE dbsim_farm_cache_entries gauge\n";
        t += promLine("dbsim_farm_cache_entries", "",
                      jsonNumber(std::uint64_t(store->entryCount())));
    }
    return t;
}

bool
FarmService::handleLine(const std::string &line, int fd)
{
    JsonValue req;
    std::string parse_error;
    if (!parseJson(line, req, &parse_error) || !req.isObject()) {
        err(fd, "bad request: " + parse_error);
        return true;
    }
    const JsonValue *op = req.find("op");
    if (!op || !op->isString()) {
        err(fd, "request needs a string 'op'");
        return true;
    }

    if (op->text == "ping") {
        live.pings.fetch_add(1, std::memory_order_relaxed);
        return sendLine(fd, "{\"type\":\"pong\",\"version\":" +
                                jsonString(ResultCache::kVersion) + "}");
    }
    if (op->text == "stats") {
        live.statsRequests.fetch_add(1, std::memory_order_relaxed);
        return sendLine(fd, statsBody());
    }
    if (op->text == "metrics") {
        live.metricsRequests.fetch_add(1, std::memory_order_relaxed);
        // The text exposition travels inside the JSON-lines transport;
        // a scraper sidecar unwraps "body" and serves it over HTTP.
        return sendLine(
            fd,
            "{\"type\":\"metrics\",\"contentType\":"
            "\"text/plain; version=0.0.4\",\"body\":" +
                jsonString(prometheusText()) + "}");
    }
    if (op->text == "shutdown") {
        live.shutdowns.fetch_add(1, std::memory_order_relaxed);
        sendLine(fd, "{\"type\":\"bye\"}");
        stop();
        return false;
    }
    if (op->text == "sweep") {
        live.sweepRequests.fetch_add(1, std::memory_order_relaxed);
        return runSweep(req, fd);
    }
    err(fd, "unknown op '" + op->text + "'");
    return true;
}

bool
FarmService::runSweep(const JsonValue &req, int fd)
{
    // -- Validate everything before building anything. ----------------
    const JsonValue *mechs = req.find("mechs");
    const JsonValue *mixes = req.find("mixes");
    if (!mechs || !mechs->isArray() || mechs->elements.empty()) {
        return err(fd, "'mechs' must be a non-empty array of "
                             "mechanism specs");
    }
    if (!mixes || !mixes->isArray() || mixes->elements.empty()) {
        return err(fd, "'mixes' must be a non-empty array of "
                             "benchmark-name arrays");
    }

    std::vector<MechanismSpec> mech_specs;
    for (const JsonValue &m : mechs->elements) {
        if (!m.isString()) {
            return err(fd, "'mechs' entries must be strings");
        }
        std::string why;
        auto spec = tryMechanismByName(m.text, &why);
        if (!spec) {
            return err(fd, why);
        }
        mech_specs.push_back(*spec);
    }

    std::vector<WorkloadMix> mix_list;
    for (const JsonValue &mx : mixes->elements) {
        if (!mx.isArray() || mx.elements.empty() ||
            mx.elements.size() > 64) {
            return err(fd, "each mix must be an array of 1-64 "
                                 "benchmark names");
        }
        WorkloadMix mix;
        for (const JsonValue &b : mx.elements) {
            if (!b.isString()) {
                return err(fd, "mix entries must be strings");
            }
            // File traces ("@path") would let clients read arbitrary
            // host files through the server; only named profiles are
            // accepted.
            if (!findBenchmark(b.text)) {
                return err(fd,
                                 "unknown benchmark '" + b.text + "'");
            }
            mix.push_back(b.text);
        }
        mix_list.push_back(std::move(mix));
    }

    PointKind kind = PointKind::Sim;
    if (const JsonValue *k = req.find("kind")) {
        if (!k->isString() ||
            (k->text != "sim" && k->text != "mix")) {
            return err(fd, "'kind' must be \"sim\" or \"mix\"");
        }
        kind = k->text == "mix" ? PointKind::MixSim : PointKind::Sim;
    }

    bool sent = false;
    std::uint64_t warmup = 0, measure = 0, seed = 0;
    std::uint64_t slices = 0, channels = 0, hop = 0, shards = 0;
    std::uint64_t jobs = cfg.jobs;
    if (!optU64(req, "warmup", warmup, fd, &sent) ||
        !optU64(req, "measure", measure, fd, &sent) ||
        !optU64(req, "seed", seed, fd, &sent) ||
        !optU64(req, "slices", slices, fd, &sent) ||
        !optU64(req, "channels", channels, fd, &sent) ||
        !optU64(req, "hop", hop, fd, &sent) ||
        !optU64(req, "shards", shards, fd, &sent) ||
        !optU64(req, "jobs", jobs, fd, &sent)) {
        if (sent) {
            // optU64 sent the error itself; count it here so every
            // error response increments the metric exactly once.
            live.errors.fetch_add(1, std::memory_order_relaxed);
        }
        return sent;  // error already reported; keep the connection
    }

    // The cheap topology rules resolveTopology() enforces with fatal():
    // checked here non-fatally so a bad machine shape is a request
    // error, not a dead server.
    if (slices && (!isPow2(slices) || slices > 64)) {
        return err(fd, "'slices' must be a power of two in "
                             "[1,64]");
    }
    if (channels && (!isPow2(channels) || channels > 64)) {
        return err(fd, "'channels' must be a power of two in "
                             "[1,64]");
    }
    if (hop != 0) {
        // Replicates the slice/channel derivation of resolveTopology()
        // per mix (core count = mix size): hop on a machine that
        // resolves to one slice and one channel is a config error.
        for (const WorkloadMix &mix : mix_list) {
            std::uint64_t derived = 1;
            while (derived * 2 <= std::max<std::uint64_t>(
                                      1, mix.size() / 16)) {
                derived *= 2;
            }
            std::uint64_t s = slices ? slices
                                     : (mix.size() <= 8 ? 1 : derived);
            std::uint64_t c = channels ? channels : s;
            if (s == 1 && c == 1) {
                return err(
                    fd, "'hop' is set but a mix of " +
                            jsonNumber(std::uint64_t(mix.size())) +
                            " cores resolves to one slice and one "
                            "channel");
            }
        }
    }

    std::string experiment = "farm";
    if (const JsonValue *e = req.find("experiment")) {
        if (!e->isString()) {
            return err(fd, "'experiment' must be a string");
        }
        experiment = e->text;
    }

    // -- Build the sweep. ---------------------------------------------
    SweepSpec spec;
    spec.base().seed = seed ? seed : spec.base().seed;
    if (warmup) {
        spec.base().core.warmupInstrs = warmup;
    }
    if (measure) {
        spec.base().core.measureInstrs = measure;
    }
    spec.base().llcSlices = static_cast<std::uint32_t>(slices);
    spec.base().dram.channels = static_cast<std::uint32_t>(channels);
    spec.base().shardHopLatency = hop;
    spec.base().numShards = static_cast<std::uint32_t>(shards);
    spec.base().auditEvery = 0;
    spec.setAloneBase(spec.base());

    for (const MechanismSpec &m : mech_specs) {
        for (const WorkloadMix &mix : mix_list) {
            SweepPoint &p = kind == PointKind::MixSim
                                ? spec.addMixSim(m, mix)
                                : spec.addSim(m, mix);
            p.cfg.numCores = static_cast<std::uint32_t>(mix.size());
        }
    }

    RunOptions run_opts;
    run_opts.jobs = static_cast<std::uint32_t>(jobs ? jobs : 1);
    run_opts.progress = false;
    run_opts.experiment = experiment;
    run_opts.cache = store.get();

    std::size_t total = spec.points().size();
    std::size_t streamed = 0;
    std::mutex sendMu;
    bool peer_alive = true;
    run_opts.onRecord = [&](const PointRecord &rec) {
        // Called under the runner's sink lock, but from whichever
        // worker finished the point; the send itself needs no extra
        // lock beyond being serialized, which the sink lock provides.
        std::lock_guard<std::mutex> lock(sendMu);
        if (!peer_alive) {
            return;
        }
        ++streamed;
        if (!sendLine(fd, "{\"type\":\"record\",\"data\":" +
                              rec.toJsonLine() + "}") ||
            !sendLine(fd,
                      "{\"type\":\"progress\",\"completed\":" +
                          jsonNumber(std::uint64_t(streamed)) +
                          ",\"total\":" +
                          jsonNumber(std::uint64_t(total)) + "}")) {
            // Client went away mid-sweep. Finish the sweep anyway:
            // the results land in the shared cache, so the retry the
            // client is about to make will be all hits.
            peer_alive = false;
        }
    };

    live.sweepsInFlight.fetch_add(1, std::memory_order_relaxed);
    auto sweep_begin = std::chrono::steady_clock::now();
    ExperimentRunner runner(run_opts);
    runner.run(spec);
    double wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - sweep_begin)
                         .count();
    live.sweepsInFlight.fetch_sub(1, std::memory_order_relaxed);
    live.sweepsCompleted.fetch_add(1, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(live.histMu);
        live.sweepWallMs.record(
            static_cast<std::uint64_t>(wall_ms + 0.5));
    }
    const RunStats &rs = runner.lastRun();

    std::string done = "{\"type\":\"done\",\"points\":" +
                       jsonNumber(std::uint64_t(total)) + ",\"cache\":";
    done += store ? cacheStatsJson(rs.cache) : std::string("null");
    done += "}";
    std::lock_guard<std::mutex> lock(sendMu);
    return peer_alive && sendLine(fd, done);
}

} // namespace dbsim::exp
