#include "checkpoint.hh"

#include <cstdio>

#include "common/logging.hh"
#include "exp/json.hh"
#include "exp/jsonl_read.hh"
#include "exp/result_cache.hh"

namespace dbsim::exp {

std::string
sweepSpecHash(const SweepSpec &spec)
{
    std::string all = buildStamp();
    all += '\n';
    for (const SweepPoint &p : spec.points()) {
        all += canonicalPoint(p, spec.aloneBase());
        all += '\n';
    }
    return keyHex(fnv1a64(all));
}

namespace {

std::string
manifestHeader(const std::string &spec_hash)
{
    return "{\"farm\":" +
           jsonString(ResultCache::kVersion) +
           ",\"spec\":" + jsonString(spec_hash) + "}";
}

std::string
manifestEntry(std::size_t index, const std::string &raw)
{
    return "{\"index\":" + jsonNumber(std::uint64_t(index)) +
           ",\"line\":" + jsonString(keyHex(fnv1a64(raw))) + "}";
}

} // namespace

CheckpointSink::CheckpointSink(const std::string &jsonl_path,
                               const std::string &spec_hash,
                               bool resume)
    : jsonlPath(jsonl_path), manifestPath(jsonl_path + ".manifest")
{
    if (resume) {
        loadForResume(spec_hash);
    }
    // Rewrite both files to exactly the trusted completed set (empty
    // when not resuming), then reopen for appending. The temp+rename
    // dance keeps a kill during the rewrite from losing the originals.
    rewrite(spec_hash);

    jsonlOut.open(jsonlPath, std::ios::out | std::ios::app);
    fatal_if(!jsonlOut, "cannot open JSONL output '%s'",
             jsonlPath.c_str());
    manifestOut.open(manifestPath, std::ios::out | std::ios::app);
    fatal_if(!manifestOut, "cannot open manifest '%s'",
             manifestPath.c_str());
}

void
CheckpointSink::loadForResume(const std::string &spec_hash)
{
    JsonlFile manifest = readJsonl(manifestPath);
    if (!manifest.exists || manifest.rows.empty()) {
        return;
    }
    {
        const JsonValue &hdr = manifest.rows.front().value;
        const JsonValue *farm = hdr.find("farm");
        const JsonValue *spec = hdr.find("spec");
        if (!farm || !farm->isString() ||
            farm->text != ResultCache::kVersion || !spec ||
            !spec->isString() || spec->text != spec_hash) {
            // Different sweep, different build, or not ours: the
            // checkpoint cannot be trusted for this run.
            return;
        }
    }

    // Index the JSONL lines actually on disk (first occurrence wins).
    std::map<std::size_t, const JsonlRow *> on_disk;
    JsonlFile jsonl = readJsonl(jsonlPath);
    for (const JsonlRow &row : jsonl.rows) {
        const JsonValue *idx = row.value.find("index");
        std::uint64_t i = 0;
        if (!idx || !idx->asU64(i)) {
            continue;
        }
        on_disk.emplace(static_cast<std::size_t>(i), &row);
    }

    // A point is complete iff its manifest entry's line hash matches
    // the raw bytes on disk.
    for (std::size_t r = 1; r < manifest.rows.size(); ++r) {
        const JsonValue &e = manifest.rows[r].value;
        const JsonValue *idx = e.find("index");
        const JsonValue *line = e.find("line");
        std::uint64_t i = 0;
        if (!idx || !idx->asU64(i) || !line || !line->isString()) {
            continue;
        }
        auto it = on_disk.find(static_cast<std::size_t>(i));
        if (it == on_disk.end() ||
            keyHex(fnv1a64(it->second->raw)) != line->text) {
            continue;
        }
        // Trust nothing that does not parse back into a full record:
        // a schema drift or hash-preserving corruption must lead to
        // recomputation, not a half-restored point.
        PointRecord rec;
        if (!pointRecordFromJson(it->second->value, rec) ||
            rec.index != static_cast<std::size_t>(i)) {
            continue;
        }
        done[static_cast<std::size_t>(i)] = it->second->raw;
        recs[static_cast<std::size_t>(i)] = std::move(rec);
    }
}

void
CheckpointSink::rewrite(const std::string &spec_hash)
{
    const std::string jsonl_tmp = jsonlPath + ".tmp";
    const std::string manifest_tmp = manifestPath + ".tmp";
    {
        std::ofstream j(jsonl_tmp, std::ios::out | std::ios::trunc);
        fatal_if(!j, "cannot open '%s'", jsonl_tmp.c_str());
        std::ofstream m(manifest_tmp, std::ios::out | std::ios::trunc);
        fatal_if(!m, "cannot open '%s'", manifest_tmp.c_str());
        m << manifestHeader(spec_hash) << '\n';
        for (const auto &[index, raw] : done) {
            j << raw << '\n';
            m << manifestEntry(index, raw) << '\n';
        }
    }
    fatal_if(std::rename(jsonl_tmp.c_str(), jsonlPath.c_str()) != 0,
             "cannot replace '%s'", jsonlPath.c_str());
    fatal_if(std::rename(manifest_tmp.c_str(),
                         manifestPath.c_str()) != 0,
             "cannot replace '%s'", manifestPath.c_str());
}

const std::string *
CheckpointSink::rawLine(std::size_t index) const
{
    auto it = done.find(index);
    return it == done.end() ? nullptr : &it->second;
}

const PointRecord *
CheckpointSink::record(std::size_t index) const
{
    auto it = recs.find(index);
    return it == recs.end() ? nullptr : &it->second;
}

void
CheckpointSink::append(std::size_t index, const std::string &raw)
{
    // JSONL first, manifest second: a kill between the two leaves a
    // record line the next resume will not trust (no manifest entry)
    // and will drop during its rewrite — recomputed, never duplicated.
    jsonlOut << raw << '\n';
    jsonlOut.flush();
    manifestOut << manifestEntry(index, raw) << '\n';
    manifestOut.flush();
}

} // namespace dbsim::exp
