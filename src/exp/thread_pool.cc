#include "thread_pool.hh"

namespace dbsim::exp {

ThreadPool::ThreadPool(std::uint32_t num_threads)
{
    if (num_threads == 0) {
        num_threads = 1;
    }
    workers.reserve(num_threads);
    for (std::uint32_t i = 0; i < num_threads; ++i) {
        workers.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu);
        stopping = true;
    }
    taskCv.notify_all();
    for (auto &w : workers) {
        w.join();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mu);
        queue.push_back(std::move(task));
    }
    taskCv.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    idleCv.wait(lock, [this] { return queue.empty() && active == 0; });
}

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            taskCv.wait(lock,
                        [this] { return stopping || !queue.empty(); });
            if (queue.empty()) {
                // stopping: drain finished, exit. (Destructor joins
                // only after outstanding tasks have completed.)
                return;
            }
            task = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mu);
            --active;
            if (queue.empty() && active == 0) {
                idleCv.notify_all();
            }
        }
    }
}

} // namespace dbsim::exp
