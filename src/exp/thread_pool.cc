#include "thread_pool.hh"

namespace dbsim::exp {

ThreadPool::ThreadPool(std::uint32_t num_threads)
{
    if (num_threads == 0) {
        num_threads = 1;
    }
    workers.reserve(num_threads);
    for (std::uint32_t i = 0; i < num_threads; ++i) {
        workers.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu);
        stopping = true;
    }
    taskCv.notify_all();
    for (auto &w : workers) {
        w.join();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mu);
        queue.push_back(std::move(task));
    }
    taskCv.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lock(mu);
        idleCv.wait(lock,
                    [this] { return queue.empty() && active == 0; });
        err = firstError;
        firstError = nullptr;
    }
    if (err) {
        std::rethrow_exception(err);
    }
}

namespace {

/**
 * Decrements the pool's active count on every exit path of a task —
 * normal return or throw — so wait() can never hang on a task that
 * escaped via an exception.
 */
class ActiveGuard
{
  public:
    ActiveGuard(std::mutex &mu, std::size_t &active,
                std::deque<std::function<void()>> &queue,
                std::condition_variable &idle_cv)
        : mu(mu), active(active), queue(queue), idleCv(idle_cv)
    {}

    ~ActiveGuard()
    {
        std::unique_lock<std::mutex> lock(mu);
        --active;
        if (queue.empty() && active == 0) {
            idleCv.notify_all();
        }
    }

  private:
    std::mutex &mu;
    std::size_t &active;
    std::deque<std::function<void()>> &queue;
    std::condition_variable &idleCv;
};

} // namespace

void
ThreadPool::workerLoop()
{
    while (true) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu);
            taskCv.wait(lock,
                        [this] { return stopping || !queue.empty(); });
            if (queue.empty()) {
                // stopping: drain finished, exit. (Destructor joins
                // only after outstanding tasks have completed.)
                return;
            }
            task = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        ActiveGuard guard(mu, active, queue, idleCv);
        try {
            task();
        } catch (...) {
            // Before this catch, the exception propagated out of the
            // worker thread (std::terminate) and skipped --active, so
            // a surviving wait() would have hung forever.
            std::lock_guard<std::mutex> lock(mu);
            if (!firstError) {
                firstError = std::current_exception();
            }
        }
    }
}

} // namespace dbsim::exp
