/**
 * @file
 * ExperimentRunner: evaluates every point of a SweepSpec on a
 * fixed-size thread pool. Each point is an independent System with its
 * own EventQueue, so isolation is per-run; the only cross-point state
 * is the thread-safe AloneIpcCache (baseline IPCs computed once and
 * shared) and the result sink, which streams one JSON Lines record per
 * completed point and keeps a progress/ETA line on stderr.
 *
 * Results are deterministic in the spec and seed: `jobs` changes only
 * wall-clock time and completion order, never any record's content.
 */

#ifndef DBSIM_EXP_RUNNER_HH
#define DBSIM_EXP_RUNNER_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "exp/alone_cache.hh"
#include "exp/record.hh"
#include "exp/result_cache.hh"
#include "exp/sweep.hh"
#include "telemetry/telemetry.hh"

namespace dbsim::exp {

/** Execution knobs for one sweep. */
struct RunOptions
{
    /** Worker threads; 0 or 1 means serial. */
    std::uint32_t jobs = 1;

    /** When non-empty, append one JSONL record per point here. */
    std::string jsonlPath;

    /** Progress/ETA line on stderr. */
    bool progress = true;

    /** Stamped into every record's `experiment` field. */
    std::string experiment;

    /**
     * When set, overrides SystemConfig::auditEvery on every point (and
     * on the alone-IPC baseline runs). The bench harness passes 0 here
     * so measurement runs never audit; tests can force auditing on.
     */
    std::optional<std::uint64_t> auditEvery;

    /**
     * Telemetry applied to every simulated point (sampler / histograms
     * / trace; see telemetry::TelemetryConfig). In sweeps with more
     * than one point, output file names get a ".pt<index>" suffix so
     * points never clobber each other. Alone-IPC baseline runs are
     * never telemetered. Histogram summaries land in each record's
     * metrics ("hist.*"); they are deterministic, so the --jobs
     * bit-identity guarantee still holds.
     */
    telemetry::TelemetryConfig telemetry;

    /**
     * Measure wall-clock build/run/collect phases per point and attach
     * them to the record's `host` map ("host" key in the JSONL). Off by
     * default: host timings are non-deterministic and would break
     * record bit-identity across machines and runs.
     */
    bool hostTimers = false;

    /**
     * Run every simulated point with the host profiler attached
     * (SystemConfig::profile) and surface its attribution in the
     * record's `host` map under "profile.*" keys. Like telemetry,
     * profiling is an observer, never a cache key: profiled sweeps
     * bypass the result cache (a hit would skip producing the profile,
     * and profiled wall times must never be served as cached "facts").
     */
    bool profile = false;

    /**
     * Directory of the persistent content-hash result cache; "" (the
     * default) disables caching. Sim/MixSim points whose canonical
     * content was computed before — in any previous run of any bench
     * under the same build — are filled from the store without
     * building a System. Custom points and telemetry-enabled sweeps
     * bypass the cache (counted in RunStats::cache.bypasses).
     */
    std::string cacheDir;

    /**
     * A shared, already-open cache (the farm service's warm instance).
     * Not owned; overrides cacheDir when set.
     */
    ResultCache *cache = nullptr;

    /**
     * Resume an interrupted sweep: when jsonlPath's `.manifest`
     * sidecar matches this sweep's content hash, completed points are
     * restored from their original bytes and skipped. On by default —
     * a fresh sweep simply finds no matching manifest.
     */
    bool resume = true;

    /**
     * Streaming sink: called under the runner's sink lock for every
     * record as it becomes available (resumed, cache-hit, or freshly
     * computed). The farm service uses this to stream results to
     * clients; completion order is nondeterministic with jobs > 1.
     */
    std::function<void(const PointRecord &)> onRecord;
};

/** What one ExperimentRunner::run() did, beyond the records. */
struct RunStats
{
    CacheStats cache;                ///< zeros when caching is off
    std::size_t resumedPoints = 0;   ///< restored from the checkpoint
    std::size_t evaluatedPoints = 0; ///< hits + simulated + custom
};

class ExperimentRunner
{
  public:
    explicit ExperimentRunner(RunOptions options) : opts(std::move(options))
    {}

    /**
     * Evaluate all points; blocks until done. The returned records are
     * ordered by point index (i.e. spec order), independent of the
     * order in which worker threads finished them.
     */
    std::vector<PointRecord> run(const SweepSpec &spec);

    /** Statistics of the most recent run(). */
    const RunStats &lastRun() const { return last; }

  private:
    RunOptions opts;
    RunStats last;
};

} // namespace dbsim::exp

#endif // DBSIM_EXP_RUNNER_HH
