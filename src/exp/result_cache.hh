/**
 * @file
 * Content-hash result cache: identical (config, mechanism, mix, seed,
 * instruction counts) sweep points are simulated exactly once, ever.
 *
 * Every Sim/MixSim point has a canonical serialization — a stable,
 * locale-independent key/value string covering each semantic field of
 * the SystemConfig (execution-only knobs like numShards and passive
 * observers like the auditor and telemetry are excluded: they never
 * change results). The FNV-1a/64 hash of that string keys a persistent
 * on-disk store: a directory of JSONL shard files plus an index.json
 * carrying the store version and a build stamp. A new build stamp
 * wipes the store (invalidation-on-code-change); a hash hit is only
 * trusted after the stored canonical string compares equal, so
 * collisions and stale entries degrade to misses, never wrong results.
 * Corrupted or truncated shard lines are skipped and recomputed.
 *
 * The cache is thread-safe and shareable: the ExperimentRunner opens
 * one per run (--cache-dir), while the farm service keeps a single
 * warm instance across every client and sweep.
 */

#ifndef DBSIM_EXP_RESULT_CACHE_HH
#define DBSIM_EXP_RESULT_CACHE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "exp/record.hh"
#include "exp/sweep.hh"

namespace dbsim::exp {

/** FNV-1a/64 of `s`. */
std::uint64_t fnv1a64(const std::string &s);

/**
 * FNV-1a/64 over the raw bytes of the file at `path`, streamed in
 * chunks (never materialized). Folds a trace file's *content* into a
 * point's cache identity: rewriting the file in place must flip the
 * key even when the path is unchanged. Fatal if the file can't be read.
 */
std::uint64_t fnv1a64File(const std::string &path);

/** 16-digit lowercase hex form of a key. */
std::string keyHex(std::uint64_t key);

/**
 * Canonical serialization of every semantic field of `cfg` (the
 * fields that can change simulated results). Deliberately excluded:
 * numShards (execution-only), auditEvery and telemetry (passive
 * observers), progress/host plumbing.
 */
std::string canonicalConfig(const SystemConfig &cfg);

/**
 * Canonical serialization of one sweep point: kind, mix, full config,
 * and — for MixSim points — the pinned alone-run config derived from
 * `alone_base`, since the fairness metrics depend on it. Custom
 * points have no content identity (their evaluator is opaque code);
 * they serialize as kind/index/tags and are never cached.
 */
std::string canonicalPoint(const SweepPoint &p,
                           const SystemConfig &alone_base);

/**
 * The store-invalidation stamp: cache schema version plus the build
 * timestamp of the experiment library. Entries written under another
 * stamp are wiped on open — simulator code changes must not serve
 * stale results. Overridable via $DBSIM_CACHE_STAMP (tests).
 */
std::string buildStamp();

/** Cumulative cache traffic counters. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t bypasses = 0;  ///< points not eligible for caching
};

class ResultCache
{
  public:
    /** Shard files per store directory (low 4 bits of the key). */
    static constexpr std::uint32_t kNumShards = 16;

    /** Store format version (index.json and entry prefix). */
    static constexpr const char *kVersion = "farm-v1";

    /**
     * Open (creating if needed) the store at `dir` and load every
     * valid entry. A version or build-stamp mismatch, or a corrupt
     * index, wipes the shard files: recompute, never trust.
     */
    explicit ResultCache(const std::string &dir);

    /**
     * Look `key` up; a hit requires the stored canonical string to
     * equal `canon` byte-for-byte. On a hit, fills the content-derived
     * record fields (mechanism, mix, metrics, stats) — presentation
     * fields (index, experiment, tags, host) are the caller's.
     */
    bool lookup(std::uint64_t key, const std::string &canon,
                PointRecord &out);

    /** Persist a computed record under (key, canon). */
    void insert(std::uint64_t key, const std::string &canon,
                const PointRecord &rec);

    /** Count a point that was not eligible for caching. */
    void noteBypass();

    CacheStats stats() const;

    std::size_t entryCount() const;

    const std::string &directory() const { return dir; }

  private:
    struct Entry
    {
        std::string canon;
        PointRecord payload;  ///< mechanism/mix/metrics/stats only
    };

    void load();
    void wipeShards();
    void writeIndex();
    std::string shardPath(std::uint64_t key) const;

    std::string dir;
    std::string stamp;
    mutable std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> entries;
    CacheStats ctr;
};

} // namespace dbsim::exp

#endif // DBSIM_EXP_RESULT_CACHE_HH
