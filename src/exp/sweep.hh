/**
 * @file
 * SweepSpec: the declarative description of one experiment — a set of
 * independent (mechanism, mix, config) points, typically built as a
 * cartesian product of mechanisms x workload mixes x config overrides.
 * The ExperimentRunner evaluates every point (in parallel when asked)
 * and produces one PointRecord per point.
 */

#ifndef DBSIM_EXP_SWEEP_HH
#define DBSIM_EXP_SWEEP_HH

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "exp/record.hh"
#include "sim/system.hh"
#include "workload/mixes.hh"

namespace dbsim::exp {

/** How the runner evaluates a point. */
enum class PointKind
{
    Sim,     ///< runWorkload; standard per-run metrics
    MixSim,  ///< Sim plus multi-core metrics against alone IPCs
    Custom,  ///< the point's own callback fills the record
};

/** One independent experiment point. */
struct SweepPoint
{
    std::size_t index = 0;
    PointKind kind = PointKind::Sim;

    /** Full system config for Sim/MixSim points (mechanism included). */
    SystemConfig cfg;

    /** One benchmark per core for Sim/MixSim points. */
    WorkloadMix mix;

    /** Config-axis coordinates, copied into the record. */
    std::map<std::string, std::string> tags;

    /** Evaluator for Custom points. */
    std::function<void(PointRecord &)> custom;
};

/**
 * One value on a config axis: a tag ("granularity" -> "64") plus the
 * edit it applies to the system config.
 */
struct ConfigOverride
{
    std::string axis;
    std::string value;
    std::function<void(SystemConfig &)> apply;
};

/** An ordered list of sweep points plus the configs they derive from. */
class SweepSpec
{
  public:
    explicit SweepSpec(SystemConfig base_cfg = {})
        : baseCfg(base_cfg), aloneCfg(base_cfg)
    {}

    /** Config that addSim/addMixSim/addGrid points start from. */
    SystemConfig &base() { return baseCfg; }
    const SystemConfig &base() const { return baseCfg; }

    /**
     * Config the alone-IPC runs of MixSim points inherit (core count
     * and mechanism are overridden per run). Defaults to base() as it
     * was at construction; set explicitly after editing base().
     */
    void setAloneBase(const SystemConfig &cfg) { aloneCfg = cfg; }
    const SystemConfig &aloneBase() const { return aloneCfg; }

    /** Add one single-run point; returns it for cfg/tag edits. */
    SweepPoint &addSim(const MechanismSpec &mech, WorkloadMix mix);

    /** Add one multi-core-metrics point; returns it for edits. */
    SweepPoint &addMixSim(const MechanismSpec &mech, WorkloadMix mix);

    /** Add a point evaluated by `fn`; returns it for tag edits. */
    SweepPoint &addCustom(std::function<void(PointRecord &)> fn);

    /**
     * Cartesian product: one point per (override per axis) x mechanism
     * x mix, in that nesting order (axes outermost, mixes innermost).
     * Each point's tags carry the axis coordinates.
     */
    void addGrid(const std::vector<MechanismSpec> &mechs,
                 const std::vector<WorkloadMix> &mixes,
                 PointKind kind = PointKind::Sim,
                 const std::vector<std::vector<ConfigOverride>> &axes = {});

    const std::vector<SweepPoint> &points() const { return pts; }

    /**
     * Apply `fn` to every config the spec embeds: base, alone-base,
     * and each already-added point's. The harness's machine-shape
     * flags (--shards/--slices/--channels/--hop) go through here so
     * every experiment honors them without per-bench plumbing.
     */
    void overrideConfigs(const std::function<void(SystemConfig &)> &fn);

    /** True when any point needs alone-IPC normalization. */
    bool hasMixSim() const;

  private:
    SweepPoint &append(SweepPoint p);

    SystemConfig baseCfg;
    SystemConfig aloneCfg;
    std::vector<SweepPoint> pts;
};

} // namespace dbsim::exp

#endif // DBSIM_EXP_SWEEP_HH
