#include "jsonl_read.hh"

#include <cmath>
#include <fstream>

namespace dbsim::exp {

JsonlFile
readJsonl(const std::string &path)
{
    JsonlFile out;
    std::ifstream in(path);
    if (!in) {
        return out;
    }
    out.exists = true;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r') {
            line.pop_back();
        }
        if (line.empty()) {
            continue;
        }
        JsonlRow row;
        if (!parseJson(line, row.value)) {
            ++out.corruptLines;
            continue;
        }
        row.raw = line;
        out.rows.push_back(std::move(row));
    }
    return out;
}

namespace {

/** Object of strings -> map; false on type mismatch. */
bool
stringMap(const JsonValue &v, std::map<std::string, std::string> &out)
{
    if (!v.isObject()) {
        return false;
    }
    for (const auto &[k, m] : v.members) {
        if (!m.isString()) {
            return false;
        }
        out[k] = m.text;
    }
    return true;
}

/** Object of numbers (null = NaN) -> map; false on type mismatch. */
bool
doubleMap(const JsonValue &v, std::map<std::string, double> &out)
{
    if (!v.isObject()) {
        return false;
    }
    for (const auto &[k, m] : v.members) {
        if (m.kind == JsonValue::Kind::Null) {
            out[k] = std::nan("");
        } else if (m.isNumber()) {
            out[k] = m.number;
        } else {
            return false;
        }
    }
    return true;
}

/** Object of exact u64 counters -> map; false on type mismatch. */
bool
u64Map(const JsonValue &v, std::map<std::string, std::uint64_t> &out)
{
    if (!v.isObject()) {
        return false;
    }
    for (const auto &[k, m] : v.members) {
        std::uint64_t x = 0;
        if (!m.asU64(x)) {
            return false;
        }
        out[k] = x;
    }
    return true;
}

} // namespace

bool
pointRecordFromJson(const JsonValue &v, PointRecord &out)
{
    if (!v.isObject()) {
        return false;
    }
    const JsonValue *index = v.find("index");
    const JsonValue *experiment = v.find("experiment");
    const JsonValue *mechanism = v.find("mechanism");
    const JsonValue *mix = v.find("mix");
    const JsonValue *tags = v.find("tags");
    const JsonValue *metrics = v.find("metrics");
    const JsonValue *stats = v.find("stats");
    std::uint64_t idx = 0;
    if (!index || !index->asU64(idx) || !experiment ||
        !experiment->isString() || !mechanism || !mechanism->isString() ||
        !mix || !mix->isString() || !tags || !metrics || !stats) {
        return false;
    }
    PointRecord rec;
    rec.index = static_cast<std::size_t>(idx);
    rec.experiment = experiment->text;
    rec.mechanism = mechanism->text;
    rec.mix = mix->text;
    if (!stringMap(*tags, rec.tags) || !doubleMap(*metrics, rec.metrics) ||
        !u64Map(*stats, rec.stats)) {
        return false;
    }
    if (const JsonValue *host = v.find("host")) {
        if (!doubleMap(*host, rec.host)) {
            return false;
        }
    }
    out = std::move(rec);
    return true;
}

} // namespace dbsim::exp
