#include "alone_cache.hh"

namespace dbsim::exp {

SystemConfig
aloneRunConfig(const SystemConfig &base)
{
    SystemConfig cfg = base;
    cfg.numCores = 1;
    cfg.mech = Mechanism::Baseline;
    // Alone runs keep per-core LLC capacity, matching the shared
    // system (same convention as the legacy cache), but the machine
    // topology is pinned: inheriting llcSlices/dram.channels/
    // shardHopLatency from a sharded base would make --slices 4
    // silently change the fairness-metric denominators.
    cfg.llcSlices = 1;
    cfg.dram.channels = 1;
    cfg.shardHopLatency = 0;
    cfg.numShards = 0;
    return cfg;
}

AloneIpcCache::AloneIpcCache(const SystemConfig &base)
    : baseCfg(base)
{
    compute = [this](const std::string &bench) {
        return runWorkload(aloneRunConfig(baseCfg),
                           WorkloadMix{bench})
            .ipc[0];
    };
}

AloneIpcCache::AloneIpcCache(const SystemConfig &base, ComputeFn fn)
    : baseCfg(base), compute(std::move(fn))
{
}

double
AloneIpcCache::get(const std::string &bench)
{
    std::shared_future<double> fut;
    std::packaged_task<double()> task;
    bool mine = false;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto it = futures.find(bench);
        if (it != futures.end()) {
            fut = it->second;
        } else {
            task = std::packaged_task<double()>([this, bench] {
                ++computes;
                return compute(bench);
            });
            fut = task.get_future().share();
            futures.emplace(bench, fut);
            mine = true;
        }
    }
    if (mine) {
        // Run outside the lock so other benchmarks can be computed
        // concurrently; waiters block on the shared future only.
        task();
    }
    return fut.get();
}

std::vector<double>
AloneIpcCache::forMix(const WorkloadMix &mix)
{
    std::vector<double> alone;
    alone.reserve(mix.size());
    for (const auto &bench : mix) {
        alone.push_back(get(bench));
    }
    return alone;
}

} // namespace dbsim::exp
