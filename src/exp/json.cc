#include "json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace dbsim::exp {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    // std::to_chars emits the shortest decimal that round-trips and is
    // locale-independent by definition. The previous %g/sscanf loop
    // honored LC_NUMERIC: under a comma-decimal locale it produced
    // "0,25" (invalid JSON), and the unchecked sscanf accepted the
    // garbage, so the bug was silent.
    char buf[40];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    return std::string(buf, res.ptr);
}

std::string
jsonNumber(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &[k, v] : members) {
        if (k == key) {
            return &v;
        }
    }
    return nullptr;
}

bool
JsonValue::asU64(std::uint64_t &out) const
{
    if (kind != Kind::Number || text.empty() || text[0] == '-') {
        return false;
    }
    std::uint64_t v = 0;
    auto res = std::from_chars(text.data(), text.data() + text.size(), v);
    if (res.ec != std::errc() || res.ptr != text.data() + text.size()) {
        return false;
    }
    out = v;
    return true;
}

namespace {

/** Strict recursive-descent JSON parser over a string. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *error)
        : s(text), err(error)
    {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!value(out, 0)) {
            return false;
        }
        skipWs();
        if (pos != s.size()) {
            return fail("trailing characters after JSON value");
        }
        return true;
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    fail(const char *why)
    {
        if (err) {
            *err = std::string(why) + " at offset " + std::to_string(pos);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r')) {
            ++pos;
        }
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::char_traits<char>::length(word);
        if (s.compare(pos, n, word) != 0) {
            return fail("invalid literal");
        }
        pos += n;
        return true;
    }

    bool
    value(JsonValue &out, int depth)
    {
        if (depth > kMaxDepth) {
            return fail("nesting too deep");
        }
        if (pos >= s.size()) {
            return fail("unexpected end of input");
        }
        switch (s[pos]) {
          case '{':
            return object(out, depth);
          case '[':
            return array(out, depth);
          case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.text);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true");
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false");
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null");
          default:
            return numberValue(out);
        }
    }

    bool
    object(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Object;
        ++pos; // '{'
        skipWs();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            if (pos >= s.size() || s[pos] != '"') {
                return fail("expected object key");
            }
            std::string key;
            if (!string(key)) {
                return false;
            }
            skipWs();
            if (pos >= s.size() || s[pos] != ':') {
                return fail("expected ':' after object key");
            }
            ++pos;
            skipWs();
            JsonValue v;
            if (!value(v, depth + 1)) {
                return false;
            }
            out.members.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos >= s.size()) {
                return fail("unterminated object");
            }
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue &out, int depth)
    {
        out.kind = JsonValue::Kind::Array;
        ++pos; // '['
        skipWs();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (!value(v, depth + 1)) {
                return false;
            }
            out.elements.push_back(std::move(v));
            skipWs();
            if (pos >= s.size()) {
                return fail("unterminated array");
            }
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            if (s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    /** Append the UTF-8 encoding of `cp` to `out`. */
    static void
    appendUtf8(std::string &out, std::uint32_t cp)
    {
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xc0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xe0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        } else {
            out += static_cast<char>(0xf0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (cp & 0x3f));
        }
    }

    bool
    hex4(std::uint32_t &out)
    {
        if (pos + 4 > s.size()) {
            return fail("truncated \\u escape");
        }
        out = 0;
        for (int i = 0; i < 4; ++i) {
            char c = s[pos + i];
            out <<= 4;
            if (c >= '0' && c <= '9') {
                out |= static_cast<std::uint32_t>(c - '0');
            } else if (c >= 'a' && c <= 'f') {
                out |= static_cast<std::uint32_t>(c - 'a' + 10);
            } else if (c >= 'A' && c <= 'F') {
                out |= static_cast<std::uint32_t>(c - 'A' + 10);
            } else {
                return fail("invalid \\u escape");
            }
        }
        pos += 4;
        return true;
    }

    bool
    string(std::string &out)
    {
        ++pos; // opening '"'
        while (true) {
            if (pos >= s.size()) {
                return fail("unterminated string");
            }
            unsigned char c = static_cast<unsigned char>(s[pos]);
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c < 0x20) {
                return fail("raw control character in string");
            }
            if (c != '\\') {
                out += static_cast<char>(c);
                ++pos;
                continue;
            }
            ++pos;
            if (pos >= s.size()) {
                return fail("truncated escape");
            }
            char e = s[pos++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                std::uint32_t cp = 0;
                if (!hex4(cp)) {
                    return false;
                }
                if (cp >= 0xd800 && cp <= 0xdbff &&
                    s.compare(pos, 2, "\\u") == 0) {
                    // Surrogate pair.
                    pos += 2;
                    std::uint32_t lo = 0;
                    if (!hex4(lo)) {
                        return false;
                    }
                    if (lo < 0xdc00 || lo > 0xdfff) {
                        return fail("invalid low surrogate");
                    }
                    cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape");
            }
        }
    }

    bool
    numberValue(JsonValue &out)
    {
        std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-') {
            ++pos;
        }
        // Integer part: 0, or [1-9][0-9]*.
        if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') {
            return fail("invalid number");
        }
        if (s[pos] == '0') {
            ++pos;
        } else {
            while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
                ++pos;
            }
        }
        if (pos < s.size() && s[pos] == '.') {
            ++pos;
            if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') {
                return fail("invalid number fraction");
            }
            while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
                ++pos;
            }
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-')) {
                ++pos;
            }
            if (pos >= s.size() || s[pos] < '0' || s[pos] > '9') {
                return fail("invalid number exponent");
            }
            while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
                ++pos;
            }
        }
        out.kind = JsonValue::Kind::Number;
        out.text.assign(s, start, pos - start);
        double v = 0.0;
        auto res = std::from_chars(out.text.data(),
                                   out.text.data() + out.text.size(), v);
        if (res.ec == std::errc::result_out_of_range) {
            // Legal JSON beyond double range: clamp like strtod —
            // tiny magnitudes to 0, huge ones to +-HUGE_VAL (a
            // negative decimal exponent marks the tiny case).
            bool tiny = out.text.find_first_of("eE") !=
                            std::string::npos &&
                        out.text.find('-', 1) != std::string::npos;
            double mag = tiny ? 0.0 : HUGE_VAL;
            v = out.text[0] == '-' ? -mag : mag;
        } else if (res.ec != std::errc()) {
            return fail("unparseable number");
        }
        out.number = v;
        return true;
    }

    const std::string &s;
    std::size_t pos = 0;
    std::string *err;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue &out, std::string *error)
{
    out = JsonValue{};
    Parser p(text, error);
    return p.parse(out);
}

} // namespace dbsim::exp
