#include "json.hh"

#include <cmath>
#include <cstdio>

namespace dbsim::exp {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonString(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

std::string
jsonNumber(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    char buf[40];
    // Try successively longer precisions; the first that round-trips
    // keeps the output short for "nice" values like 0.25.
    for (int prec = 1; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
        double back = 0.0;
        std::sscanf(buf, "%lf", &back);
        if (back == v) {
            break;
        }
    }
    return buf;
}

std::string
jsonNumber(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace dbsim::exp
