/**
 * @file
 * JSON Lines re-reading for the experiment farm: load a JSONL file
 * into parsed rows (keeping the raw line bytes, so checkpoint resume
 * can rewrite files without re-serializing), and rebuild a PointRecord
 * from its serialized form. Corrupted or truncated lines are counted
 * and skipped, never trusted: a consumer that needs a record which
 * fails to load simply recomputes it.
 */

#ifndef DBSIM_EXP_JSONL_READ_HH
#define DBSIM_EXP_JSONL_READ_HH

#include <cstdint>
#include <string>
#include <vector>

#include "exp/json.hh"
#include "exp/record.hh"

namespace dbsim::exp {

/** One successfully parsed JSONL row. */
struct JsonlRow
{
    std::string raw;  ///< the line exactly as stored (no newline)
    JsonValue value;  ///< its parse
};

/** A loaded JSONL file. */
struct JsonlFile
{
    std::vector<JsonlRow> rows;   ///< parseable lines, in file order
    std::size_t corruptLines = 0; ///< unparseable/truncated lines
    bool exists = false;          ///< false: file absent/unreadable
};

/**
 * Read `path` line by line, parsing each as one JSON value. Blank
 * lines are ignored; lines that fail to parse (including a truncated
 * final line from a killed writer) bump `corruptLines` and are
 * dropped.
 */
JsonlFile readJsonl(const std::string &path);

/**
 * Rebuild a PointRecord from the object toJsonLine() wrote. Strict:
 * false when required fields are missing or mistyped (the caller
 * recomputes the point). Metric values serialized as null (non-finite
 * doubles) come back as NaN.
 */
bool pointRecordFromJson(const JsonValue &v, PointRecord &out);

} // namespace dbsim::exp

#endif // DBSIM_EXP_JSONL_READ_HH
