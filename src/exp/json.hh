/**
 * @file
 * Minimal JSON support for the experiment runner's JSON Lines files.
 * Emission: string escaping and round-trippable, locale-independent
 * number formatting. Parsing: a strict recursive-descent parser (no
 * extensions, whole-text single value) used by the result cache, the
 * checkpoint manifests, and the farm service — everything that must
 * re-read what the sink wrote. No DOM beyond JsonValue.
 */

#ifndef DBSIM_EXP_JSON_HH
#define DBSIM_EXP_JSON_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dbsim::exp {

/** `s` with JSON string escapes applied (no surrounding quotes). */
std::string jsonEscape(const std::string &s);

/** `"s"` quoted and escaped. */
std::string jsonString(const std::string &s);

/**
 * Shortest decimal that round-trips the double (std::to_chars, so the
 * output never honors LC_NUMERIC — "0.25" under every locale).
 * Non-finite values become null, which JSON has no number for.
 */
std::string jsonNumber(double v);

/** Decimal form of an unsigned integer. */
std::string jsonNumber(std::uint64_t v);

/**
 * One parsed JSON value. Numbers keep their raw literal (in `text`)
 * alongside the double, so 64-bit stat counters survive re-reading
 * with full fidelity (a double only holds integers up to 2^53).
 */
struct JsonValue
{
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    Kind kind = Kind::Null;
    bool boolean = false;

    /** Numeric value (Kind::Number). */
    double number = 0.0;

    /** String: decoded contents. Number: the raw literal. */
    std::string text;

    /** Object members, in file order. */
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Array elements. */
    std::vector<JsonValue> elements;

    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** First member named `key`, or nullptr. */
    const JsonValue *find(const std::string &key) const;

    /**
     * The raw literal re-parsed as an exact unsigned 64-bit integer.
     * False when the value is not a number, not integral, or out of
     * range.
     */
    bool asU64(std::uint64_t &out) const;
};

/**
 * Parse `text` as exactly one JSON value (leading/trailing whitespace
 * allowed, nothing else). Strict: no comments, no trailing commas, no
 * bare NaN/Infinity, nesting capped at 64 levels. On failure returns
 * false and, when `error` is given, a one-line reason.
 */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *error = nullptr);

} // namespace dbsim::exp

#endif // DBSIM_EXP_JSON_HH
