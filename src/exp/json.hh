/**
 * @file
 * Minimal JSON emission helpers for the experiment runner's JSON Lines
 * output. Only what records need: string escaping and round-trippable
 * number formatting. No parser, no DOM.
 */

#ifndef DBSIM_EXP_JSON_HH
#define DBSIM_EXP_JSON_HH

#include <cstdint>
#include <string>

namespace dbsim::exp {

/** `s` with JSON string escapes applied (no surrounding quotes). */
std::string jsonEscape(const std::string &s);

/** `"s"` quoted and escaped. */
std::string jsonString(const std::string &s);

/**
 * Shortest decimal that round-trips the double (%.17g, trimmed).
 * Non-finite values become null, which JSON has no number for.
 */
std::string jsonNumber(double v);

/** Decimal form of an unsigned integer. */
std::string jsonNumber(std::uint64_t v);

} // namespace dbsim::exp

#endif // DBSIM_EXP_JSON_HH
