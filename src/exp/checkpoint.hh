/**
 * @file
 * Checkpoint/resume for JSONL sweeps. The sink writes every completed
 * point twice: the record line into the JSONL file, then a completion
 * entry into a sidecar manifest (`<jsonl>.manifest`), each flushed in
 * that order. A point counts as complete only when both are present
 * and consistent, so a kill between the two writes means recompute,
 * never a duplicate or a half-trusted line.
 *
 * On resume the sink loads both files, intersects them (manifest entry
 * + parseable JSONL line whose hash matches), rewrites both files to
 * exactly that completed set — preserving each record's original raw
 * bytes, so no value is ever re-serialized — and reopens them in
 * append mode. The manifest header pins the sweep-spec hash (which
 * folds in the build stamp): a different spec or binary never resumes,
 * it starts fresh.
 */

#ifndef DBSIM_EXP_CHECKPOINT_HH
#define DBSIM_EXP_CHECKPOINT_HH

#include <cstdint>
#include <fstream>
#include <map>
#include <string>

#include "exp/sweep.hh"

namespace dbsim::exp {

/**
 * Content hash (16-digit hex) of a whole sweep: every point's canonical
 * serialization (see canonicalPoint) plus the build stamp. Two sweeps
 * with the same hash would evaluate the same points with the same
 * simulator — the precondition for resuming one from the other's
 * checkpoint.
 */
std::string sweepSpecHash(const SweepSpec &spec);

/**
 * JSONL sink with a completion manifest. Not internally synchronized:
 * the runner already serializes sink access under its own mutex.
 */
class CheckpointSink
{
  public:
    /**
     * Open `jsonl_path` (and its `.manifest` sidecar) for a sweep with
     * hash `spec_hash`. With `resume` set and a matching manifest on
     * disk, previously completed points are loaded and both files are
     * rewritten to that consistent prefix; otherwise both start empty.
     */
    CheckpointSink(const std::string &jsonl_path,
                   const std::string &spec_hash, bool resume);

    /** True when `index` was completed by a previous run. */
    bool isDone(std::size_t index) const
    {
        return done.count(index) != 0;
    }

    /** The original raw JSONL line of a completed point (no '\n'). */
    const std::string *rawLine(std::size_t index) const;

    /** The parsed record of a completed point. */
    const PointRecord *record(std::size_t index) const;

    /** Points restored from the previous run. */
    std::size_t resumedCount() const { return done.size(); }

    /**
     * Record one newly completed point: append `raw` to the JSONL,
     * flush, then append the manifest entry, flush.
     */
    void append(std::size_t index, const std::string &raw);

  private:
    void loadForResume(const std::string &spec_hash);
    void rewrite(const std::string &spec_hash);

    std::string jsonlPath;
    std::string manifestPath;
    std::map<std::size_t, std::string> done;  ///< index -> raw line
    std::map<std::size_t, PointRecord> recs;  ///< index -> parsed
    std::ofstream jsonlOut;
    std::ofstream manifestOut;
};

} // namespace dbsim::exp

#endif // DBSIM_EXP_CHECKPOINT_HH
