#include "record.hh"

#include "common/logging.hh"
#include "exp/json.hh"

namespace dbsim::exp {

double
PointRecord::metric(const std::string &key) const
{
    auto it = metrics.find(key);
    fatal_if(it == metrics.end(), "record %zu (%s/%s) has no metric '%s'",
             index, mechanism.c_str(), mix.c_str(), key.c_str());
    return it->second;
}

std::uint64_t
PointRecord::stat(const std::string &key) const
{
    auto it = stats.find(key);
    fatal_if(it == stats.end(), "record %zu (%s/%s) has no stat '%s'",
             index, mechanism.c_str(), mix.c_str(), key.c_str());
    return it->second;
}

std::string
PointRecord::toJsonLine() const
{
    std::string out = "{";
    out += "\"index\":" + jsonNumber(static_cast<std::uint64_t>(index));
    out += ",\"experiment\":" + jsonString(experiment);
    out += ",\"mechanism\":" + jsonString(mechanism);
    out += ",\"mix\":" + jsonString(mix);

    out += ",\"tags\":{";
    bool first = true;
    for (const auto &[k, v] : tags) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += jsonString(k) + ":" + jsonString(v);
    }
    out += "},\"metrics\":{";
    first = true;
    for (const auto &[k, v] : metrics) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += jsonString(k) + ":" + jsonNumber(v);
    }
    out += "},\"stats\":{";
    first = true;
    for (const auto &[k, v] : stats) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += jsonString(k) + ":" + jsonNumber(v);
    }
    out += "}";
    if (!host.empty()) {
        out += ",\"host\":{";
        first = true;
        for (const auto &[k, v] : host) {
            if (!first) {
                out += ",";
            }
            first = false;
            out += jsonString(k) + ":" + jsonNumber(v);
        }
        out += "}";
    }
    out += "}";
    return out;
}

} // namespace dbsim::exp
