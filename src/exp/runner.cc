#include "runner.hh"

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>

#include "common/logging.hh"
#include "exp/checkpoint.hh"
#include "exp/thread_pool.hh"
#include "sim/metrics.hh"

namespace dbsim::exp {

namespace {

/** Fill the standard per-run metrics from a SimResult. */
void
fillSimMetrics(PointRecord &rec, const SimResult &r)
{
    for (std::size_t c = 0; c < r.ipc.size(); ++c) {
        rec.metrics["ipc" + std::to_string(c)] = r.ipc[c];
    }
    rec.metrics["readRowHitRate"] = r.readRowHitRate;
    rec.metrics["writeRowHitRate"] = r.writeRowHitRate;
    rec.metrics["tagLookupsPki"] = r.tagLookupsPki;
    rec.metrics["wpki"] = r.wpki;
    rec.metrics["mpki"] = r.mpki;
    rec.metrics["dramEnergyPj"] = r.dramEnergyPj;
    rec.metrics["totalInstrs"] = static_cast<double>(r.totalInstrs);
    rec.metrics["windowCycles"] = static_cast<double>(r.windowCycles);
    rec.stats = r.stats;
}

using HostClock = std::chrono::steady_clock;

double
msSince(HostClock::time_point from, HostClock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

/** Evaluate one point into a record. */
PointRecord
evalPoint(const SweepPoint &p, const RunOptions &opts,
          std::size_t total_points, AloneIpcCache *alone)
{
    PointRecord rec;
    rec.index = p.index;
    rec.experiment = opts.experiment;
    rec.tags = p.tags;

    switch (p.kind) {
      case PointKind::Custom: {
        auto t0 = HostClock::now();
        p.custom(rec);
        if (opts.hostTimers) {
            rec.host["evalMs"] = msSince(t0, HostClock::now());
        }
        break;
      }
      case PointKind::Sim:
      case PointKind::MixSim: {
        rec.mechanism = p.cfg.mech.label;
        rec.mix = mixLabel(p.mix);
        SystemConfig cfg = p.cfg;
        if (opts.auditEvery) {
            cfg.auditEvery = *opts.auditEvery;
        }
        if (opts.telemetry.enabled()) {
            cfg.telemetry = total_points > 1
                                ? opts.telemetry.withPointSuffix(p.index)
                                : opts.telemetry;
        }
        if (opts.profile) {
            cfg.profile = true;
        }
        auto t0 = HostClock::now();
        System sys(cfg, p.mix);
        auto t_built = HostClock::now();
        SimResult r = sys.run();
        auto t_ran = HostClock::now();
        fillSimMetrics(rec, r);
        for (const auto &[k, v] : r.telemetry) {
            rec.metrics[k] = v;
        }
        for (const auto &[k, v] : r.metadata) {
            rec.metrics[k] = v;
        }
        if (p.kind == PointKind::MixSim) {
            panic_if(!alone, "MixSim point without an alone-IPC cache");
            std::vector<double> alone_ipcs = alone->forMix(p.mix);
            for (std::size_t c = 0; c < alone_ipcs.size(); ++c) {
                rec.metrics["aloneIpc" + std::to_string(c)] =
                    alone_ipcs[c];
            }
            rec.metrics["weightedSpeedup"] =
                weightedSpeedup(r.ipc, alone_ipcs);
            rec.metrics["instructionThroughput"] =
                instructionThroughput(r.ipc);
            rec.metrics["harmonicSpeedup"] =
                harmonicSpeedup(r.ipc, alone_ipcs);
            rec.metrics["maxSlowdown"] = maxSlowdown(r.ipc, alone_ipcs);
        }
        if (opts.hostTimers) {
            rec.host["buildMs"] = msSince(t0, t_built);
            rec.host["runMs"] = msSince(t_built, t_ran);
            rec.host["collectMs"] = msSince(t_ran, HostClock::now());
        }
        // Host-profiler attribution rides in the host map: wall-clock
        // derived, so it must stay out of the deterministic metrics.
        for (const auto &[k, v] : r.hostProfile) {
            rec.host["profile." + k] = v;
        }
        break;
      }
    }
    return rec;
}

} // namespace

std::vector<PointRecord>
ExperimentRunner::run(const SweepSpec &spec)
{
    const auto &points = spec.points();
    std::vector<PointRecord> records(points.size());
    last = RunStats{};
    if (points.empty()) {
        return records;
    }

    std::unique_ptr<AloneIpcCache> alone;
    if (spec.hasMixSim()) {
        SystemConfig alone_base = spec.aloneBase();
        if (opts.auditEvery) {
            alone_base.auditEvery = *opts.auditEvery;
        }
        alone = std::make_unique<AloneIpcCache>(alone_base);
    }

    // The content cache: a shared warm instance (the farm service) or
    // one owned by this run. Telemetry-enabled sweeps bypass entirely —
    // a cache hit would skip producing the side artifacts.
    std::unique_ptr<ResultCache> ownedCache;
    ResultCache *cache = opts.cache;
    if (!cache && !opts.cacheDir.empty()) {
        ownedCache = std::make_unique<ResultCache>(opts.cacheDir);
        cache = ownedCache.get();
    }
    const SystemConfig aloneCanonBase = spec.aloneBase();
    auto cacheable = [&](const SweepPoint &p) {
        // Observers (telemetry, profiling) bypass: a hit would skip
        // producing their side artifacts, and profiled host times must
        // always be fresh measurements.
        return cache != nullptr && p.kind != PointKind::Custom &&
               !opts.telemetry.enabled() && !opts.profile;
    };

    std::optional<CheckpointSink> ckpt;
    if (!opts.jsonlPath.empty()) {
        ckpt.emplace(opts.jsonlPath, sweepSpecHash(spec), opts.resume);
    }

    // Sink state shared by the workers.
    std::mutex sinkMu;
    std::size_t completed = 0;
    std::size_t timed = 0;
    double pointSecondsSum = 0.0;
    auto t0 = HostClock::now();

    auto progressLine = [&] {
        // Caller holds sinkMu.
        double elapsed =
            std::chrono::duration<double>(HostClock::now() - t0)
                .count();
        std::size_t remaining = points.size() - completed;
        // ETA from the measured mean point cost spread over the
        // worker pool, not elapsed/completed: the latter overshoots
        // while the pool is still ramping up its first batch.
        double per_point = timed ? pointSecondsSum / timed : 0.0;
        std::size_t lanes = opts.jobs > 1 ? opts.jobs : 1;
        double eta = per_point * remaining / lanes;
        std::fprintf(stderr,
                     "\r[%zu/%zu] %5.1f%%  elapsed %.0fs  eta %.0fs ",
                     completed, points.size(),
                     100.0 * completed / points.size(), elapsed, eta);
        if (cache) {
            CacheStats cs = cache->stats();
            std::fprintf(stderr, " cache %llu hit / %llu miss / %llu byp ",
                         static_cast<unsigned long long>(cs.hits),
                         static_cast<unsigned long long>(cs.misses),
                         static_cast<unsigned long long>(cs.bypasses));
        }
        if (completed == points.size()) {
            std::fprintf(stderr, "\n");
        }
    };

    auto sink = [&](const PointRecord &rec, double point_seconds) {
        std::lock_guard<std::mutex> lock(sinkMu);
        if (ckpt) {
            ckpt->append(rec.index, rec.toJsonLine());
        }
        ++completed;
        ++timed;
        pointSecondsSum += point_seconds;
        if (opts.onRecord) {
            opts.onRecord(rec);
        }
        if (opts.progress) {
            progressLine();
        }
    };

    // Restore checkpointed points: their lines are already on disk in
    // their original bytes, so they are counted, streamed, and used to
    // warm the content cache, but never re-appended.
    std::vector<const SweepPoint *> todo;
    todo.reserve(points.size());
    for (const auto &p : points) {
        const PointRecord *prev =
            ckpt ? ckpt->record(p.index) : nullptr;
        if (!prev) {
            todo.push_back(&p);
            continue;
        }
        records[p.index] = *prev;
        ++last.resumedPoints;
        if (cacheable(p)) {
            std::string canon = canonicalPoint(p, aloneCanonBase);
            cache->insert(fnv1a64(canon), canon, *prev);
        }
        std::lock_guard<std::mutex> lock(sinkMu);
        ++completed;
        if (opts.onRecord) {
            opts.onRecord(records[p.index]);
        }
    }
    if (opts.progress && last.resumedPoints > 0) {
        inform("resumed %zu/%zu points from %s", last.resumedPoints,
               points.size(), opts.jsonlPath.c_str());
    }

    auto evalOne = [&](const SweepPoint &p) {
        auto t_point = HostClock::now();
        PointRecord rec;
        bool hit = false;
        std::string canon;
        std::uint64_t key = 0;
        if (cacheable(p)) {
            canon = canonicalPoint(p, aloneCanonBase);
            key = fnv1a64(canon);
            PointRecord payload;
            if (cache->lookup(key, canon, payload)) {
                rec = std::move(payload);
                rec.index = p.index;
                rec.experiment = opts.experiment;
                rec.tags = p.tags;
                hit = true;
            }
        } else if (cache) {
            cache->noteBypass();
        }
        if (!hit) {
            rec = evalPoint(p, opts, points.size(), alone.get());
            if (cacheable(p)) {
                cache->insert(key, canon, rec);
            }
        }
        double secs = std::chrono::duration<double>(HostClock::now() -
                                                    t_point)
                          .count();
        records[p.index] = std::move(rec);
        sink(records[p.index], secs);
    };

    if (opts.jobs <= 1) {
        for (const SweepPoint *p : todo) {
            evalOne(*p);
        }
    } else {
        ThreadPool pool(opts.jobs);
        for (const SweepPoint *p : todo) {
            pool.submit([&evalOne, p] { evalOne(*p); });
        }
        pool.wait();
    }
    last.evaluatedPoints = todo.size();
    if (cache) {
        last.cache = cache->stats();
        if (opts.progress) {
            inform("result cache (%s): %llu hits, %llu misses, "
                   "%llu bypasses",
                   cache->directory().c_str(),
                   static_cast<unsigned long long>(last.cache.hits),
                   static_cast<unsigned long long>(last.cache.misses),
                   static_cast<unsigned long long>(last.cache.bypasses));
        }
    }
    return records;
}

} // namespace dbsim::exp
