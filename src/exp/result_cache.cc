#include "result_cache.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/logging.hh"
#include "exp/alone_cache.hh"
#include "exp/json.hh"
#include "exp/jsonl_read.hh"
#include "workload/mixes.hh"

namespace dbsim::exp {

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
fnv1a64File(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    fatal_if(!f, "cannot read trace file '%s' for cache hashing",
             path.c_str());
    std::uint64_t h = 0xcbf29ce484222325ull;
    unsigned char buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        for (std::size_t i = 0; i < got; ++i) {
            h ^= buf[i];
            h *= 0x100000001b3ull;
        }
    }
    fatal_if(std::ferror(f), "read error hashing trace file '%s'",
             path.c_str());
    std::fclose(f);
    return h;
}

std::string
keyHex(std::uint64_t key)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

namespace {

void
kv(std::string &out, const char *key, const std::string &value)
{
    out += key;
    out += '=';
    out += value;
    out += ';';
}

void
kv(std::string &out, const char *key, std::uint64_t value)
{
    kv(out, key, jsonNumber(value));
}

void
kv(std::string &out, const char *key, double value)
{
    kv(out, key, jsonNumber(value));
}

void
kv(std::string &out, const char *key, bool value)
{
    kv(out, key, std::string(value ? "1" : "0"));
}

} // namespace

std::string
canonicalConfig(const SystemConfig &cfg)
{
    std::string s;
    s.reserve(640);
    kv(s, "mech", mechanismSpecString(cfg.mech));
    kv(s, "cores", std::uint64_t(cfg.numCores));
    kv(s, "llc.bytesPerCore", cfg.llcBytesPerCore);
    kv(s, "llc.assoc", std::uint64_t(cfg.llcAssoc));
    kv(s, "llc.tagLat", std::uint64_t(cfg.llcTagLatency));
    kv(s, "llc.dataLat", std::uint64_t(cfg.llcDataLatency));
    kv(s, "drrip", cfg.useDrrip);
    kv(s, "slices", std::uint64_t(cfg.llcSlices));
    kv(s, "hop", std::uint64_t(cfg.shardHopLatency));
    kv(s, "seed", cfg.seed);
    kv(s, "maxCycles", cfg.maxCycles);

    // The dcache block is serialized only when the tier is enabled:
    // dcache.enable=false configs keep byte-identical canonical strings
    // (and therefore content keys) to records written before the tier
    // existed, so no stored sweep result is invalidated by the refactor.
    if (cfg.dcache.enable) {
        kv(s, "dcache.enable", cfg.dcache.enable);
        kv(s, "dcache.bytes", cfg.dcache.sizeBytes);
        kv(s, "dcache.pageBytes", std::uint64_t(cfg.dcache.pageBytes));
        kv(s, "dcache.assoc", std::uint64_t(cfg.dcache.assoc));
        kv(s, "dcache.dirtyInTags", cfg.dcache.dirtyInTags);
        kv(s, "dcache.indexEntries",
           std::uint64_t(cfg.dcache.indexEntries));
        kv(s, "dcache.indexAssoc", std::uint64_t(cfg.dcache.indexAssoc));
        kv(s, "dcache.tagLat", std::uint64_t(cfg.dcache.tagLatency));
        kv(s, "dcache.dataLat", std::uint64_t(cfg.dcache.dataLatency));
        kv(s, "dcache.seed", cfg.dcache.seed);
    }

    kv(s, "dbi.alpha", cfg.dbi.alpha);
    kv(s, "dbi.gran", std::uint64_t(cfg.dbi.granularity));
    kv(s, "dbi.assoc", std::uint64_t(cfg.dbi.assoc));
    kv(s, "dbi.repl", std::uint64_t(cfg.dbi.repl));
    kv(s, "dbi.lat", std::uint64_t(cfg.dbi.latency));
    kv(s, "dbi.seed", cfg.dbi.seed);

    const DramConfig &d = cfg.dram;
    kv(s, "dram.banks", std::uint64_t(d.numBanks));
    kv(s, "dram.rowBytes", d.rowBytes);
    kv(s, "dram.channels", std::uint64_t(d.channels));
    kv(s, "dram.tCkCpu", std::uint64_t(d.tCkCpu));
    kv(s, "dram.tCas", std::uint64_t(d.tCas));
    kv(s, "dram.tRcd", std::uint64_t(d.tRcd));
    kv(s, "dram.tRp", std::uint64_t(d.tRp));
    kv(s, "dram.tRas", std::uint64_t(d.tRas));
    kv(s, "dram.tWr", std::uint64_t(d.tWr));
    kv(s, "dram.tBurst", std::uint64_t(d.tBurst));
    kv(s, "dram.tRtw", std::uint64_t(d.tRtw));
    kv(s, "dram.tWtr", std::uint64_t(d.tWtr));
    kv(s, "dram.tRrd", std::uint64_t(d.tRrd));
    kv(s, "dram.tFaw", std::uint64_t(d.tFaw));
    kv(s, "dram.ioLat", std::uint64_t(d.ioLatency));
    kv(s, "dram.wbuf", std::uint64_t(d.writeBufEntries));
    kv(s, "dram.drainLow", std::uint64_t(d.drainLowWatermark));
    kv(s, "dram.writeIdle", d.writeWhenIdle);
    kv(s, "dram.eAct", d.eActivatePj);
    kv(s, "dram.eRead", d.eReadPj);
    kv(s, "dram.eWrite", d.eWritePj);
    kv(s, "dram.bgMw", d.backgroundMw);

    kv(s, "core.rob", std::uint64_t(cfg.core.robSize));
    kv(s, "core.mshrs", std::uint64_t(cfg.core.mshrs));
    kv(s, "core.slack", cfg.core.slack);
    kv(s, "core.warmup", cfg.core.warmupInstrs);
    kv(s, "core.measure", cfg.core.measureInstrs);
    kv(s, "core.overrun", std::uint64_t(cfg.core.maxOverrun));

    kv(s, "l1.bytes", cfg.mem.l1.sizeBytes);
    kv(s, "l1.assoc", std::uint64_t(cfg.mem.l1.assoc));
    kv(s, "l1.lat", std::uint64_t(cfg.mem.l1.latency));
    kv(s, "l2.bytes", cfg.mem.l2.sizeBytes);
    kv(s, "l2.assoc", std::uint64_t(cfg.mem.l2.assoc));
    kv(s, "l2.lat", std::uint64_t(cfg.mem.l2.latency));

    kv(s, "pred.thresh", cfg.pred.missThreshold);
    kv(s, "pred.epoch", cfg.pred.epochCycles);
    kv(s, "pred.sample", std::uint64_t(cfg.pred.sampleInterval));
    kv(s, "pred.threads", std::uint64_t(cfg.pred.numThreads));

    // Trace input and sampling serialize only when in use, keeping
    // synthetic-workload configs byte-identical (same keys) to records
    // written before trace ingest existed. The trace participates by
    // *content* hash: rewriting the file in place flips the key even
    // though the path is unchanged, so a changed trace can never be
    // served a stale result.
    if (!cfg.traceFile.empty()) {
        kv(s, "trace.file", cfg.traceFile);
        kv(s, "trace.hash", keyHex(fnv1a64File(cfg.traceFile)));
    }
    if (cfg.sampling.enabled()) {
        kv(s, "sample.ff", cfg.sampling.ffOps);
        kv(s, "sample.ops", cfg.sampling.sampleOps);
        kv(s, "sample.period", cfg.sampling.periodOps);
    }
    return s;
}

std::string
canonicalPoint(const SweepPoint &p, const SystemConfig &alone_base)
{
    std::string s = "v1;";
    switch (p.kind) {
      case PointKind::Custom: {
        kv(s, "kind", std::string("custom"));
        kv(s, "index", std::uint64_t(p.index));
        for (const auto &[k, v] : p.tags) {
            kv(s, ("tag." + k).c_str(), v);
        }
        return s;
      }
      case PointKind::Sim:
        kv(s, "kind", std::string("sim"));
        break;
      case PointKind::MixSim:
        kv(s, "kind", std::string("mix"));
        break;
    }
    kv(s, "mix", mixLabel(p.mix));
    // "@<path>" mix entries replay trace files: fold their content in
    // so an edited per-core trace is a miss, not a stale hit.
    for (const std::string &entry : p.mix) {
        if (!entry.empty() && entry[0] == '@') {
            kv(s, ("mix.hash." + entry.substr(1)).c_str(),
               keyHex(fnv1a64File(entry.substr(1))));
        }
    }
    s += canonicalConfig(p.cfg);
    if (p.kind == PointKind::MixSim) {
        s += "alone{";
        s += canonicalConfig(aloneRunConfig(alone_base));
        s += "}";
    }
    return s;
}

std::string
buildStamp()
{
    if (const char *env = std::getenv("DBSIM_CACHE_STAMP")) {
        return env;
    }
    return std::string(ResultCache::kVersion) + " " __DATE__ " " __TIME__;
}

ResultCache::ResultCache(const std::string &directory)
    : dir(directory), stamp(buildStamp())
{
    fatal_if(dir.empty(), "result cache needs a directory");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    fatal_if(static_cast<bool>(ec), "cannot create cache dir '%s': %s",
             dir.c_str(), ec.message().c_str());
    load();
}

std::string
ResultCache::shardPath(std::uint64_t key) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "shard_%02x.jsonl",
                  static_cast<unsigned>(key % kNumShards));
    return dir + "/" + name;
}

void
ResultCache::writeIndex()
{
    std::ofstream out(dir + "/index.json", std::ios::trunc);
    out << "{\"version\":" << jsonString(kVersion)
        << ",\"stamp\":" << jsonString(stamp)
        << ",\"shards\":" << kNumShards << "}\n";
}

void
ResultCache::wipeShards()
{
    for (std::uint32_t i = 0; i < kNumShards; ++i) {
        std::remove(shardPath(i).c_str());
    }
}

void
ResultCache::load()
{
    // Trust the stored entries only when index.json matches this
    // build exactly; any mismatch or corruption wipes the store —
    // entries are recomputable by definition, stale ones are not.
    bool valid = false;
    {
        std::ifstream in(dir + "/index.json");
        if (in) {
            std::string text((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
            JsonValue idx;
            if (parseJson(text, idx) && idx.isObject()) {
                const JsonValue *version = idx.find("version");
                const JsonValue *st = idx.find("stamp");
                const JsonValue *shards = idx.find("shards");
                std::uint64_t n = 0;
                valid = version && version->isString() &&
                        version->text == kVersion && st &&
                        st->isString() && st->text == stamp && shards &&
                        shards->asU64(n) && n == kNumShards;
            }
        }
    }
    if (!valid) {
        wipeShards();
        writeIndex();
        return;
    }

    for (std::uint32_t i = 0; i < kNumShards; ++i) {
        JsonlFile file = readJsonl(shardPath(i));
        for (const JsonlRow &row : file.rows) {
            const JsonValue *key = row.value.find("key");
            const JsonValue *canon = row.value.find("canon");
            if (!key || !key->isString() || !canon ||
                !canon->isString()) {
                continue;
            }
            std::uint64_t k = 0;
            {
                char *end = nullptr;
                k = std::strtoull(key->text.c_str(), &end, 16);
                if (end == key->text.c_str() || *end != '\0') {
                    continue;
                }
            }
            // The key must be the hash of the stored canonical string
            // and must map to this shard file — anything else is a
            // corrupt or misplaced entry.
            if (k != fnv1a64(canon->text) || k % kNumShards != i) {
                continue;
            }
            PointRecord payload;
            const JsonValue *mechanism = row.value.find("mechanism");
            const JsonValue *mix = row.value.find("mix");
            const JsonValue *metrics = row.value.find("metrics");
            const JsonValue *stats = row.value.find("stats");
            if (!mechanism || !mechanism->isString() || !mix ||
                !mix->isString() || !metrics || !stats) {
                continue;
            }
            // Reuse the record-object loader by wrapping the payload
            // fields in the record shape it expects.
            JsonValue wrapper;
            wrapper.kind = JsonValue::Kind::Object;
            JsonValue zero;
            zero.kind = JsonValue::Kind::Number;
            zero.text = "0";
            JsonValue empty_str;
            empty_str.kind = JsonValue::Kind::String;
            JsonValue empty_obj;
            empty_obj.kind = JsonValue::Kind::Object;
            wrapper.members.emplace_back("index", zero);
            wrapper.members.emplace_back("experiment", empty_str);
            wrapper.members.emplace_back("mechanism", *mechanism);
            wrapper.members.emplace_back("mix", *mix);
            wrapper.members.emplace_back("tags", empty_obj);
            wrapper.members.emplace_back("metrics", *metrics);
            wrapper.members.emplace_back("stats", *stats);
            if (!pointRecordFromJson(wrapper, payload)) {
                continue;
            }
            payload.experiment.clear();
            payload.tags.clear();
            Entry e;
            e.canon = canon->text;
            e.payload = std::move(payload);
            entries[k] = std::move(e);  // last write wins
        }
    }
}

bool
ResultCache::lookup(std::uint64_t key, const std::string &canon,
                    PointRecord &out)
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = entries.find(key);
    if (it == entries.end() || it->second.canon != canon) {
        ++ctr.misses;
        return false;
    }
    const PointRecord &p = it->second.payload;
    out.mechanism = p.mechanism;
    out.mix = p.mix;
    out.metrics = p.metrics;
    out.stats = p.stats;
    ++ctr.hits;
    return true;
}

void
ResultCache::insert(std::uint64_t key, const std::string &canon,
                    const PointRecord &rec)
{
    std::lock_guard<std::mutex> lock(mu);
    if (entries.count(key)) {
        return;  // racing workers computed the same point
    }
    Entry e;
    e.canon = canon;
    e.payload.mechanism = rec.mechanism;
    e.payload.mix = rec.mix;
    e.payload.metrics = rec.metrics;
    e.payload.stats = rec.stats;

    std::string line = "{\"key\":" + jsonString(keyHex(key)) +
                       ",\"canon\":" + jsonString(canon) +
                       ",\"mechanism\":" + jsonString(rec.mechanism) +
                       ",\"mix\":" + jsonString(rec.mix) +
                       ",\"metrics\":{";
    bool first = true;
    for (const auto &[k, v] : rec.metrics) {
        if (!first) {
            line += ",";
        }
        first = false;
        line += jsonString(k) + ":" + jsonNumber(v);
    }
    line += "},\"stats\":{";
    first = true;
    for (const auto &[k, v] : rec.stats) {
        if (!first) {
            line += ",";
        }
        first = false;
        line += jsonString(k) + ":" + jsonNumber(v);
    }
    line += "}}";

    std::ofstream out(shardPath(key), std::ios::app);
    if (out) {
        out << line << '\n';
        out.flush();
    } else {
        warn("cannot append to cache shard '%s'",
             shardPath(key).c_str());
    }
    entries[key] = std::move(e);
}

void
ResultCache::noteBypass()
{
    std::lock_guard<std::mutex> lock(mu);
    ++ctr.bypasses;
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu);
    return ctr;
}

std::size_t
ResultCache::entryCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return entries.size();
}

} // namespace dbsim::exp
