/**
 * @file
 * Thread-safe alone-IPC cache. Weighted speedup and the other fairness
 * metrics normalize each benchmark against its IPC when running alone
 * on the 1-core baseline system; those baseline runs are shared across
 * every concurrent mix evaluation, so each benchmark is simulated
 * exactly once no matter how many worker threads ask for it (latecomers
 * block on the first requester's result).
 */

#ifndef DBSIM_EXP_ALONE_CACHE_HH
#define DBSIM_EXP_ALONE_CACHE_HH

#include <atomic>
#include <functional>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "workload/mixes.hh"

namespace dbsim::exp {

/**
 * The configuration an alone-IPC baseline run actually uses: `base`
 * with the core count, mechanism, and machine topology pinned to the
 * canonical 1-core/1-slice/1-channel shape. Alone IPCs are the
 * denominators of every fairness metric, so they must not drift when
 * the shared machine is swept (--slices 4 must not change them); only
 * scalar parameters (seed, instruction counts, DRAM timings, cache
 * geometry per core) are inherited. Exposed so the result cache can
 * canonicalize exactly what would run.
 */
SystemConfig aloneRunConfig(const SystemConfig &base);

class AloneIpcCache
{
  public:
    /** Computes the alone IPC of one benchmark (test seam). */
    using ComputeFn = std::function<double(const std::string &)>;

    /**
     * @param base config whose scalar parameters (seed, instruction
     *        counts, DRAM, ...) the alone runs inherit; core count and
     *        mechanism are overridden to 1-core Baseline.
     */
    explicit AloneIpcCache(const SystemConfig &base);

    /** Like above but with an injected compute function (for tests). */
    AloneIpcCache(const SystemConfig &base, ComputeFn fn);

    /**
     * Alone IPC of `bench`. Computes on first request (in the calling
     * thread); concurrent requests for the same benchmark wait for
     * that computation instead of duplicating it.
     */
    double get(const std::string &bench);

    /** Alone IPCs for each slot of a mix. */
    std::vector<double> forMix(const WorkloadMix &mix);

    /** Number of computations actually performed (not cache hits). */
    std::size_t computeCount() const { return computes.load(); }

  private:
    SystemConfig baseCfg;
    ComputeFn compute;
    std::mutex mu;
    std::map<std::string, std::shared_future<double>> futures;
    std::atomic<std::size_t> computes{0};
};

} // namespace dbsim::exp

#endif // DBSIM_EXP_ALONE_CACHE_HH
