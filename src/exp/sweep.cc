#include "sweep.hh"

namespace dbsim::exp {

SweepPoint &
SweepSpec::append(SweepPoint p)
{
    p.index = pts.size();
    pts.push_back(std::move(p));
    return pts.back();
}

SweepPoint &
SweepSpec::addSim(const MechanismSpec &mech, WorkloadMix mix)
{
    SweepPoint p;
    p.kind = PointKind::Sim;
    p.cfg = baseCfg;
    p.cfg.mech = mech;
    p.mix = std::move(mix);
    return append(std::move(p));
}

SweepPoint &
SweepSpec::addMixSim(const MechanismSpec &mech, WorkloadMix mix)
{
    SweepPoint &p = addSim(mech, std::move(mix));
    p.kind = PointKind::MixSim;
    return p;
}

SweepPoint &
SweepSpec::addCustom(std::function<void(PointRecord &)> fn)
{
    SweepPoint p;
    p.kind = PointKind::Custom;
    p.custom = std::move(fn);
    return append(std::move(p));
}

void
SweepSpec::addGrid(const std::vector<MechanismSpec> &mechs,
                   const std::vector<WorkloadMix> &mixes, PointKind kind,
                   const std::vector<std::vector<ConfigOverride>> &axes)
{
    // Odometer over the override axes; an empty axis list yields the
    // single empty combination.
    std::vector<std::size_t> pos(axes.size(), 0);
    while (true) {
        SystemConfig cfg = baseCfg;
        std::map<std::string, std::string> tags;
        for (std::size_t a = 0; a < axes.size(); ++a) {
            const ConfigOverride &o = axes[a][pos[a]];
            tags[o.axis] = o.value;
            if (o.apply) {
                o.apply(cfg);
            }
        }
        for (const MechanismSpec &m : mechs) {
            for (const auto &mix : mixes) {
                SweepPoint p;
                p.kind = kind;
                p.cfg = cfg;
                p.cfg.mech = m;
                p.mix = mix;
                p.tags = tags;
                append(std::move(p));
            }
        }
        // Advance the odometer (last axis fastest).
        std::size_t a = axes.size();
        while (a > 0) {
            --a;
            if (++pos[a] < axes[a].size()) {
                break;
            }
            pos[a] = 0;
            if (a == 0) {
                return;
            }
        }
        if (axes.empty()) {
            return;
        }
    }
}

void
SweepSpec::overrideConfigs(const std::function<void(SystemConfig &)> &fn)
{
    fn(baseCfg);
    fn(aloneCfg);
    for (SweepPoint &p : pts) {
        if (p.kind != PointKind::Custom) {
            fn(p.cfg);
        }
    }
}

bool
SweepSpec::hasMixSim() const
{
    for (const auto &p : pts) {
        if (p.kind == PointKind::MixSim) {
            return true;
        }
    }
    return false;
}

} // namespace dbsim::exp
