/**
 * @file
 * CACTI-lite: an analytical SRAM array model standing in for CACTI 6.0
 * (which the paper uses for cache/DBI area, latency, and power). The model
 * estimates area, access latency, per-access energy, and leakage from the
 * array's bit count using standard scaling shapes:
 *
 *  - area grows linearly in bits plus a sqrt-shaped periphery term
 *    (decoders/sense amps dominate small arrays);
 *  - latency grows logarithmically in bits (H-tree depth);
 *  - dynamic energy grows as sqrt(bits) (bitline/wordline lengths);
 *  - leakage grows linearly in bits plus periphery.
 *
 * Coefficients are calibrated so the Table 1 design points emerge: a 2MB
 * LLC tag store reads in ~10 cycles, a 16MB one in ~14, data stores in
 * 24-33, and a quarter-size DBI in ~4. Absolute numbers are approximate;
 * the benches report relative deltas, which is what the paper's claims
 * (8% area, ~0.2% static power, 1-4% dynamic power) are about.
 */

#ifndef DBSIM_MODEL_CACTI_LITE_HH
#define DBSIM_MODEL_CACTI_LITE_HH

#include <cstdint>

namespace dbsim {

/** Estimated physical characteristics of one SRAM array. */
struct ArrayEstimate
{
    double areaMm2 = 0.0;        ///< silicon area
    double latencyCycles = 0.0;  ///< access latency at 2.67 GHz
    double readEnergyPj = 0.0;   ///< energy per read access
    double writeEnergyPj = 0.0;  ///< energy per write access
    double leakageMw = 0.0;      ///< static power
};

/**
 * Analytical SRAM array model. Stateless: construct with technology
 * constants (defaults model a 32nm process) and query per array.
 */
class CactiLite
{
  public:
    struct Tech
    {
        double mm2PerMbit = 0.30;      ///< dense array area per Mbit
        double peripheryMm2 = 0.005;   ///< fixed periphery per subarray
        double peripheryScale = 4e-5;  ///< sqrt-term coefficient (mm2)
        double latBase = -16.4;        ///< latency = base + slope*log2(bits)
        double latSlope = 1.33;
        double latMin = 2.0;           ///< floor (pipeline depth)
        double energyScale = 0.012;    ///< pJ per sqrt(bit)
        double writeFactor = 1.1;      ///< write vs read energy
        double leakPerMbit = 1.1;      ///< mW per Mbit
    };

    CactiLite() : tech() {}
    explicit CactiLite(const Tech &t) : tech(t) {}

    /** Estimate an array of the given size. */
    ArrayEstimate estimate(std::uint64_t bits) const;

  private:
    Tech tech;
};

} // namespace dbsim

#endif // DBSIM_MODEL_CACTI_LITE_HH
