#include "cacti_lite.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace dbsim {

ArrayEstimate
CactiLite::estimate(std::uint64_t bits) const
{
    panic_if(bits == 0, "cannot estimate a zero-bit array");
    double b = static_cast<double>(bits);
    double mbits = b / (1024.0 * 1024.0);
    double log2b = std::log2(b);
    double sqrtb = std::sqrt(b);

    ArrayEstimate e;
    e.areaMm2 = mbits * tech.mm2PerMbit + tech.peripheryMm2 +
                tech.peripheryScale * sqrtb;
    e.latencyCycles =
        std::max(tech.latMin, tech.latBase + tech.latSlope * log2b);
    e.readEnergyPj = tech.energyScale * sqrtb;
    e.writeEnergyPj = e.readEnergyPj * tech.writeFactor;
    e.leakageMw = mbits * tech.leakPerMbit +
                  tech.peripheryScale * sqrtb * 20.0;
    return e;
}

} // namespace dbsim
