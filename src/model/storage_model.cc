#include "storage_model.hh"

#include "common/logging.hh"

namespace dbsim {

namespace {

/// SECDED bits for a 64-byte block (8 bits per 64-bit word).
constexpr std::uint64_t kEccBitsPerBlock = 64;

/// Parity EDC bits for a 64-byte block.
constexpr std::uint64_t kEdcBitsPerBlock = 8;

/// Data bits per block.
constexpr std::uint64_t kDataBitsPerBlock = kBlockBytes * 8;

} // namespace

StorageModel::StorageModel(const StorageParams &params) : p(params)
{
    fatal_if(p.cacheBytes % kBlockBytes != 0, "cache size not block aligned");
    nBlocks = p.cacheBytes / kBlockBytes;
    fatal_if(nBlocks % p.assoc != 0, "blocks not divisible by assoc");
    nSets = nBlocks / p.assoc;
    fatal_if(!isPowerOf2(nSets), "cache set count must be a power of two");

    double tracked = p.alpha * static_cast<double>(nBlocks);
    nDbiEntries = static_cast<std::uint64_t>(tracked) / p.granularity;
    fatal_if(nDbiEntries == 0, "DBI too small: zero entries");
    fatal_if(nDbiEntries % p.dbiAssoc != 0,
             "DBI entries not divisible by DBI associativity");
    nDbiSets = nDbiEntries / p.dbiAssoc;
    fatal_if(!isPowerOf2(nDbiSets), "DBI set count must be a power of two");
}

std::uint64_t
StorageModel::baselineTagEntryBits() const
{
    std::uint64_t set_bits = floorLog2(nSets);
    std::uint64_t tag = p.physAddrBits - set_bits - kBlockShift;
    std::uint64_t repl = floorLog2(p.assoc);
    std::uint64_t bits = tag + 1 /*valid*/ + 1 /*dirty*/ + repl;
    if (p.withEcc) {
        bits += kEccBitsPerBlock;
    }
    return bits;
}

std::uint64_t
StorageModel::dbiTagEntryBits() const
{
    std::uint64_t set_bits = floorLog2(nSets);
    std::uint64_t tag = p.physAddrBits - set_bits - kBlockShift;
    std::uint64_t repl = floorLog2(p.assoc);
    // No dirty bit; EDC parity for every block when ECC is modeled.
    std::uint64_t bits = tag + 1 /*valid*/ + repl;
    if (p.withEcc) {
        bits += kEdcBitsPerBlock;
    }
    return bits;
}

std::uint64_t
StorageModel::dbiEntryBits() const
{
    std::uint64_t region_offset_bits =
        floorLog2(static_cast<std::uint64_t>(p.granularity) * kBlockBytes);
    std::uint64_t set_bits = floorLog2(nDbiSets);
    std::uint64_t row_tag = p.physAddrBits - region_offset_bits - set_bits;
    std::uint64_t repl = floorLog2(p.dbiAssoc);
    std::uint64_t bits = 1 /*valid*/ + row_tag + p.granularity + repl;
    if (p.withEcc) {
        // SECDED for every block the entry can mark dirty.
        bits += static_cast<std::uint64_t>(p.granularity) * kEccBitsPerBlock;
    }
    return bits;
}

StorageBreakdown
StorageModel::baseline() const
{
    StorageBreakdown b;
    b.tagStoreBits = nBlocks * baselineTagEntryBits();
    b.dbiBits = 0;
    b.dataStoreBits = nBlocks * kDataBitsPerBlock;
    return b;
}

StorageBreakdown
StorageModel::withDbi() const
{
    StorageBreakdown b;
    b.tagStoreBits = nBlocks * dbiTagEntryBits();
    b.dbiBits = nDbiEntries * dbiEntryBits();
    b.dataStoreBits = nBlocks * kDataBitsPerBlock;
    return b;
}

double
StorageModel::tagStoreReduction() const
{
    auto base = baseline();
    auto dbi = withDbi();
    return 1.0 - static_cast<double>(dbi.metadataBits()) /
                     static_cast<double>(base.metadataBits());
}

double
StorageModel::cacheReduction() const
{
    auto base = baseline();
    auto dbi = withDbi();
    return 1.0 - static_cast<double>(dbi.totalBits()) /
                     static_cast<double>(base.totalBits());
}

DCacheMetaBits
dcacheMetaBits(const DCacheMetaParams &params)
{
    const DCacheMetaParams &p = params;
    fatal_if(p.pageBytes < kBlockBytes || !isPowerOf2(p.pageBytes),
             "dcache page size must be a power of two >= one block");
    fatal_if(p.sliceBytes % p.pageBytes != 0,
             "dcache slice capacity not page aligned");
    DCacheMetaBits m;
    m.slicePages = p.sliceBytes / p.pageBytes;
    m.indexPages = p.indexEntries;

    const std::uint64_t blocks_per_page = p.pageBytes / kBlockBytes;
    const std::uint64_t page_offset_bits = floorLog2(p.pageBytes);
    const std::uint64_t index_sets =
        std::uint64_t(p.indexEntries) / p.indexAssoc;
    const std::uint64_t set_bits = floorLog2(index_sets);
    const std::uint64_t page_tag =
        p.physAddrBits - page_offset_bits - set_bits;
    const std::uint64_t repl = floorLog2(p.indexAssoc);
    m.indexSramBits = std::uint64_t(p.indexEntries) *
                      (1 /*valid*/ + page_tag + blocks_per_page + repl);

    // The ablation keeps one dirty bit with each page frame's in-DRAM
    // tag: no SRAM at all, but a tag bit per frame in stacked DRAM and
    // whole-page writebacks on dirty eviction (the traffic cost the
    // simulator measures).
    m.tagDirtyBits = m.slicePages;
    return m;
}

} // namespace dbsim
