/**
 * @file
 * Bit-exact storage accounting for the conventional cache organization
 * versus the DBI organization (Table 4 and the Section 6.3 area analysis).
 *
 * Layout assumptions (calibrated to reproduce Table 4):
 *  - 40-bit physical addresses;
 *  - per-tag-entry replacement state of log2(associativity) bits;
 *  - SECDED ECC of 64 bits per 64-byte block (12.5% of data, stored in
 *    the tag store in the baseline and alongside the DBI entry in the
 *    DBI organization);
 *  - parity EDC of 8 bits per block (~1.5%) for all blocks in the DBI
 *    organization;
 *  - a DBI entry holds: valid bit, row tag, dirty bit vector
 *    (granularity bits), and log2(dbiAssoc) bits of LRW state.
 */

#ifndef DBSIM_MODEL_STORAGE_MODEL_HH
#define DBSIM_MODEL_STORAGE_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace dbsim {

/** Parameters describing one cache + DBI design point. */
struct StorageParams
{
    std::uint64_t cacheBytes = 16ull << 20;  ///< total data capacity
    std::uint32_t assoc = 32;                ///< cache associativity
    std::uint32_t physAddrBits = 40;         ///< physical address width
    double alpha = 0.25;       ///< DBI size: tracked blocks / cache blocks
    std::uint32_t granularity = 64;  ///< blocks per DBI entry
    std::uint32_t dbiAssoc = 16;     ///< DBI associativity
    bool withEcc = true;             ///< include ECC/EDC in the layout
};

/** Bit counts for one organization. */
struct StorageBreakdown
{
    std::uint64_t tagStoreBits = 0;  ///< main tag store (incl. ECC if any)
    std::uint64_t dbiBits = 0;       ///< DBI array (incl. its ECC if any)
    std::uint64_t dataStoreBits = 0; ///< data array

    std::uint64_t metadataBits() const { return tagStoreBits + dbiBits; }
    std::uint64_t totalBits() const { return metadataBits() + dataStoreBits; }
};

/**
 * Computes the storage cost of the conventional and DBI organizations
 * and the Table 4 reduction percentages.
 */
class StorageModel
{
  public:
    explicit StorageModel(const StorageParams &params);

    /** Conventional organization: dirty bit + (ECC) in each tag entry. */
    StorageBreakdown baseline() const;

    /** DBI organization: no dirty bits in tags; EDC + DBI (+ECC). */
    StorageBreakdown withDbi() const;

    /** Table 4 "Tag Store" column: metadata bit reduction (fraction). */
    double tagStoreReduction() const;

    /** Table 4 "Cache" column: total cache bit reduction (fraction). */
    double cacheReduction() const;

    /** Number of blocks in the cache. */
    std::uint64_t numBlocks() const { return nBlocks; }

    /** Number of DBI entries at this design point. */
    std::uint64_t numDbiEntries() const { return nDbiEntries; }

    /** Bits in one main tag entry under the given organization. */
    std::uint64_t baselineTagEntryBits() const;
    std::uint64_t dbiTagEntryBits() const;

    /** Bits in one DBI entry (including per-entry ECC if enabled). */
    std::uint64_t dbiEntryBits() const;

  private:
    StorageParams p;
    std::uint64_t nBlocks;
    std::uint64_t nSets;
    std::uint64_t nDbiEntries;
    std::uint64_t nDbiSets;
};

/** One DRAM-cache slice's dirty-metadata design point. */
struct DCacheMetaParams
{
    std::uint64_t sliceBytes = 64ull << 20;  ///< per-slice data capacity
    std::uint32_t pageBytes = 2048;
    std::uint32_t indexEntries = 2048;       ///< SRAM dirty-index rows
    std::uint32_t indexAssoc = 16;
    std::uint32_t physAddrBits = 40;
};

/**
 * Metadata bit accounting for the DRAM-cache dirty-tracking ablation
 * (the dcache analog of Table 4): the SRAM row-granular dirty index
 * versus one dirty bit per page kept with the in-DRAM tags.
 */
struct DCacheMetaBits
{
    /** SRAM bits of the dirty index (index mode): per entry a valid
     *  bit, page tag, per-block dirty vector, and LRW state. */
    std::uint64_t indexSramBits = 0;

    /** Stacked-DRAM tag bits spent on per-page dirty flags (tags
     *  mode): one bit per page frame. */
    std::uint64_t tagDirtyBits = 0;

    /** Pages the index can track concurrently vs pages in the slice. */
    std::uint64_t indexPages = 0;
    std::uint64_t slicePages = 0;
};

/** Compute both organizations' metadata costs for one design point. */
DCacheMetaBits dcacheMetaBits(const DCacheMetaParams &params);

} // namespace dbsim

#endif // DBSIM_MODEL_STORAGE_MODEL_HH
