/**
 * @file
 * Cache-coherence state splitting for the DBI (Section 2.3).
 *
 * Many protocols encode dirtiness implicitly in the coherence state:
 * MESI's M, and MOESI's M and O, mean "this copy differs from memory".
 * To move the dirty information into the DBI, the paper proposes
 * splitting the state space into pairs — each pair holding a state that
 * implies dirty and its non-dirty counterpart — so a single bit (stored
 * in the DBI) distinguishes the two:
 *
 *   MOESI: (M, E), (O, S), (I)     MESI: (M, E), (S), (I)
 *
 * The tag store then keeps only the pair identifier; the full state is
 * reconstructed as decode(pair, dbi.isDirty(block)). A DBI eviction
 * (which writes the block back) cleanly demotes M->E and O->S without
 * touching the tag store — exactly the dirty->clean transition of
 * Section 2.2.4.
 */

#ifndef DBSIM_COHERENCE_STATE_SPLIT_HH
#define DBSIM_COHERENCE_STATE_SPLIT_HH

#include <cstdint>

namespace dbsim {

/** MOESI stable states [52]. */
enum class MoesiState : std::uint8_t { M, O, E, S, I };

/** MESI stable states [37]. */
enum class MesiState : std::uint8_t { M, E, S, I };

/**
 * The split representation: what remains in the tag store once the
 * dirty bit moves to the DBI. Exclusive = (M,E) pair, Shared = (O,S)
 * pair, Invalid stands alone.
 */
enum class SplitPair : std::uint8_t { Exclusive, Shared, Invalid };

/** MOESI <-> (pair, dirty) conversions. */
struct MoesiSplit
{
    /** Pair component of a state. */
    static SplitPair pairOf(MoesiState s);

    /** Does the state imply the block is dirty? */
    static bool dirtyOf(MoesiState s);

    /**
     * Reconstruct the full state.
     * @pre pair != Invalid || !dirty (an invalid block cannot be dirty).
     */
    static MoesiState decode(SplitPair pair, bool dirty);

    /**
     * The state after the DBI cleans the block (writeback on DBI
     * eviction): dirty states demote to their clean twins.
     */
    static MoesiState cleaned(MoesiState s);
};

/** MESI <-> (pair, dirty) conversions. MESI has no owned state. */
struct MesiSplit
{
    static SplitPair pairOf(MesiState s);
    static bool dirtyOf(MesiState s);

    /**
     * Reconstruct the full state. In MESI the Shared pair has no dirty
     * member.
     * @pre !(pair == Shared && dirty) and !(pair == Invalid && dirty).
     */
    static MesiState decode(SplitPair pair, bool dirty);

    static MesiState cleaned(MesiState s);
};

const char *toString(MoesiState s);
const char *toString(MesiState s);
const char *toString(SplitPair p);

} // namespace dbsim

#endif // DBSIM_COHERENCE_STATE_SPLIT_HH
