#include "state_split.hh"

#include "common/logging.hh"

namespace dbsim {

SplitPair
MoesiSplit::pairOf(MoesiState s)
{
    switch (s) {
      case MoesiState::M:
      case MoesiState::E:
        return SplitPair::Exclusive;
      case MoesiState::O:
      case MoesiState::S:
        return SplitPair::Shared;
      case MoesiState::I:
        return SplitPair::Invalid;
    }
    panic("bad MOESI state");
}

bool
MoesiSplit::dirtyOf(MoesiState s)
{
    return s == MoesiState::M || s == MoesiState::O;
}

MoesiState
MoesiSplit::decode(SplitPair pair, bool dirty)
{
    switch (pair) {
      case SplitPair::Exclusive:
        return dirty ? MoesiState::M : MoesiState::E;
      case SplitPair::Shared:
        return dirty ? MoesiState::O : MoesiState::S;
      case SplitPair::Invalid:
        panic_if(dirty, "invalid block cannot be dirty");
        return MoesiState::I;
    }
    panic("bad split pair");
}

MoesiState
MoesiSplit::cleaned(MoesiState s)
{
    switch (s) {
      case MoesiState::M:
        return MoesiState::E;
      case MoesiState::O:
        return MoesiState::S;
      default:
        return s;
    }
}

SplitPair
MesiSplit::pairOf(MesiState s)
{
    switch (s) {
      case MesiState::M:
      case MesiState::E:
        return SplitPair::Exclusive;
      case MesiState::S:
        return SplitPair::Shared;
      case MesiState::I:
        return SplitPair::Invalid;
    }
    panic("bad MESI state");
}

bool
MesiSplit::dirtyOf(MesiState s)
{
    return s == MesiState::M;
}

MesiState
MesiSplit::decode(SplitPair pair, bool dirty)
{
    switch (pair) {
      case SplitPair::Exclusive:
        return dirty ? MesiState::M : MesiState::E;
      case SplitPair::Shared:
        panic_if(dirty, "MESI shared blocks are never dirty");
        return MesiState::S;
      case SplitPair::Invalid:
        panic_if(dirty, "invalid block cannot be dirty");
        return MesiState::I;
    }
    panic("bad split pair");
}

MesiState
MesiSplit::cleaned(MesiState s)
{
    return s == MesiState::M ? MesiState::E : s;
}

const char *
toString(MoesiState s)
{
    switch (s) {
      case MoesiState::M:
        return "M";
      case MoesiState::O:
        return "O";
      case MoesiState::E:
        return "E";
      case MoesiState::S:
        return "S";
      case MoesiState::I:
        return "I";
    }
    return "?";
}

const char *
toString(MesiState s)
{
    switch (s) {
      case MesiState::M:
        return "M";
      case MesiState::E:
        return "E";
      case MesiState::S:
        return "S";
      case MesiState::I:
        return "I";
    }
    return "?";
}

const char *
toString(SplitPair p)
{
    switch (p) {
      case SplitPair::Exclusive:
        return "Exclusive";
      case SplitPair::Shared:
        return "Shared";
      case SplitPair::Invalid:
        return "Invalid";
    }
    return "?";
}

} // namespace dbsim
