#include "coherence/directory_index.hh"

namespace dbsim {

SplitDirectoryIndex::SplitDirectoryIndex(const DbiConfig &dbi_config,
                                         std::uint64_t capacity_blocks)
    : dir(dbi_config, capacity_blocks,
          [this](Addr) { ++statDrainWbs; })
{
}

void
SplitDirectoryIndex::onFill(Addr block_addr, std::uint32_t core,
                            bool dirty, Cycle when)
{
    (void)dirty;
    (void)when;
    if (dir.state(block_addr) == MoesiState::I) {
        // First copy in the shared level: exclusive unless another core
        // held it recently (its record would not be invalid then).
        dir.fetchExclusive(block_addr);
        ++statFetches;
    } else if (auto it = owner.find(block_addr);
               it != owner.end() && it->second != core) {
        // A different core pulls in a block someone else owns.
        dir.snoopShared(block_addr);
        ++statSnoops;
    }
    owner[block_addr] = core;
}

void
SplitDirectoryIndex::onRead(Addr block_addr, std::uint32_t core, bool hit,
                            Cycle when)
{
    (void)when;
    if (!hit) {
        return;  // the fill completing this miss reports separately
    }
    auto it = owner.find(block_addr);
    if (it != owner.end() && it->second != core &&
        dir.state(block_addr) != MoesiState::I) {
        dir.snoopShared(block_addr);
        ++statSnoops;
    }
}

void
SplitDirectoryIndex::onDirty(Addr block_addr, std::uint32_t core,
                             Cycle when)
{
    (void)when;
    if (dir.state(block_addr) == MoesiState::I) {
        dir.fetchExclusive(block_addr);
        ++statFetches;
    }
    dir.write(block_addr);
    ++statWrites;
    owner[block_addr] = core;
}

void
SplitDirectoryIndex::onCleaned(Addr block_addr, Cycle when)
{
    // The LLC wrote the block back on its own schedule; the directory's
    // DBI cleans (and demotes) on its own capacity pressure instead —
    // that independence is the Section 2.3 point. Nothing to do.
    (void)block_addr;
    (void)when;
}

void
SplitDirectoryIndex::onEviction(Addr block_addr, Cycle when)
{
    (void)when;
    if (dir.state(block_addr) != MoesiState::I) {
        dir.invalidate(block_addr);
    }
    owner.erase(block_addr);
}

void
SplitDirectoryIndex::registerStats(StatSet &set)
{
    set.add("dir.fetches", statFetches);
    set.add("dir.snoops", statSnoops);
    set.add("dir.writes", statWrites);
    set.add("dir.drainWritebacks", statDrainWbs);
    set.add("dir.writebacks", dir.statWritebacks);
    set.add("dir.demotions", dir.statDemotions);
}

void
SplitDirectoryIndex::reportMetrics(std::map<std::string, double> &out) const
{
    out["dir.fetches"] = double(statFetches.value());
    out["dir.snoops"] = double(statSnoops.value());
    out["dir.writes"] = double(statWrites.value());
    out["dir.writebacks"] = double(dir.statWritebacks.value());
    out["dir.demotions"] = double(dir.statDemotions.value());
    out["dir.dbiLookups"] = double(dir.dbi().statLookups.value());
    out["dir.dbiEvictions"] = double(dir.dbi().statEvictions.value());
}

} // namespace dbsim
