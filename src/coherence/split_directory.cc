#include "split_directory.hh"

#include "common/logging.hh"

namespace dbsim {

SplitMoesiDirectory::SplitMoesiDirectory(const DbiConfig &dbi_config,
                                         std::uint64_t capacity_blocks,
                                         WritebackFn writeback)
    : index(dbi_config, capacity_blocks), writebackFn(std::move(writeback))
{
    fatal_if(!writebackFn, "directory needs a writeback sink");
}

MoesiState
SplitMoesiDirectory::state(Addr block_addr) const
{
    Addr a = blockAlign(block_addr);
    auto it = records.find(a);
    if (it == records.end() || it->second == SplitPair::Invalid) {
        return MoesiState::I;
    }
    return MoesiSplit::decode(it->second, index.isDirty(a));
}

void
SplitMoesiDirectory::fetchExclusive(Addr block_addr)
{
    Addr a = blockAlign(block_addr);
    panic_if(state(a) != MoesiState::I, "fetch of a valid block");
    records[a] = SplitPair::Exclusive;
}

void
SplitMoesiDirectory::fetchShared(Addr block_addr)
{
    Addr a = blockAlign(block_addr);
    panic_if(state(a) != MoesiState::I, "fetch of a valid block");
    records[a] = SplitPair::Shared;
}

void
SplitMoesiDirectory::drain(const std::vector<Addr> &blocks)
{
    for (Addr b : blocks) {
        // The data goes to memory; the block's protocol state demotes
        // to the clean twin *implicitly* — its record never changes.
        writebackFn(b);
        ++statWritebacks;
        ++statDemotions;
    }
}

void
SplitMoesiDirectory::write(Addr block_addr)
{
    Addr a = blockAlign(block_addr);
    MoesiState s = state(a);
    panic_if(s == MoesiState::I, "write to an invalid block");
    // A write makes us the exclusive modified owner.
    records[a] = SplitPair::Exclusive;
    drain(index.setDirty(a));
}

void
SplitMoesiDirectory::snoopShared(Addr block_addr)
{
    Addr a = blockAlign(block_addr);
    MoesiState s = state(a);
    panic_if(s == MoesiState::I, "snoop of an invalid block");
    // M -> O and E -> S are both just Exclusive -> Shared in the split
    // representation; the dirty bit (if any) rides along in the DBI.
    records[a] = SplitPair::Shared;
}

void
SplitMoesiDirectory::invalidate(Addr block_addr)
{
    Addr a = blockAlign(block_addr);
    if (state(a) == MoesiState::I) {
        return;
    }
    if (index.isDirty(a)) {
        writebackFn(a);
        ++statWritebacks;
        index.clearDirty(a);
    }
    records[a] = SplitPair::Invalid;
}

} // namespace dbsim
