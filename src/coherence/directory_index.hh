/**
 * @file
 * MetadataIndex adapter driving the split-state MOESI directory
 * (Section 2.3) from a real simulation. The directory keeps only the
 * SplitPair per block; dirtiness lives in its own DBI, so a MOESI
 * protocol runs unmodified on top of the DBI organization — including
 * DBI evictions silently demoting M -> E and O -> S.
 *
 * The adapter maps the shared LLC's block lifecycle onto protocol
 * events: a fill is the requesting core's fetch (exclusive if the
 * block is new, shared if another core brought it in), a demand hit
 * from a non-owning core is a snoop, a writeback into the LLC is the
 * owning core's write, and an LLC eviction invalidates the record.
 * Strictly passive with respect to the LLC's timing and statistics.
 */

#ifndef DBSIM_COHERENCE_DIRECTORY_INDEX_HH
#define DBSIM_COHERENCE_DIRECTORY_INDEX_HH

#include <cstdint>
#include <unordered_map>

#include "coherence/split_directory.hh"
#include "llc/metadata_index.hh"

namespace dbsim {

class SplitDirectoryIndex final : public MetadataIndex
{
  public:
    /**
     * @param dbi_config sizing of the directory's embedded DBI.
     * @param capacity_blocks blocks the observed cache can hold.
     */
    SplitDirectoryIndex(const DbiConfig &dbi_config,
                        std::uint64_t capacity_blocks);

    const char *name() const override { return "dir"; }
    void onFill(Addr block_addr, std::uint32_t core, bool dirty,
                Cycle when) override;
    void onRead(Addr block_addr, std::uint32_t core, bool hit,
                Cycle when) override;
    void onDirty(Addr block_addr, std::uint32_t core,
                 Cycle when) override;
    void onCleaned(Addr block_addr, Cycle when) override;
    void onEviction(Addr block_addr, Cycle when) override;
    void reportMetrics(std::map<std::string, double> &out) const override;
    void registerStats(StatSet &set) override;

    const SplitMoesiDirectory &directory() const { return dir; }

  private:
    SplitMoesiDirectory dir;
    std::unordered_map<Addr, std::uint32_t> owner;  ///< last writer/filler

    Counter statFetches;   ///< I -> E/S transitions from LLC fills
    Counter statSnoops;    ///< cross-core reads of a held block
    Counter statWrites;    ///< writebacks mapped to protocol writes
    Counter statDrainWbs;  ///< writebacks the directory's DBI issued
};

} // namespace dbsim

#endif // DBSIM_COHERENCE_DIRECTORY_INDEX_HH
