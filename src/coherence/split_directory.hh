/**
 * @file
 * A coherence directory using the Section 2.3 split-state organization:
 * the per-block record holds only the SplitPair; dirtiness lives in a
 * Dirty-Block Index. Demonstrates that a MOESI protocol operates
 * unmodified on top of the DBI — including the subtle case where a DBI
 * eviction writes blocks back and silently demotes their states
 * (M -> E, O -> S) without touching the per-block records.
 */

#ifndef DBSIM_COHERENCE_SPLIT_DIRECTORY_HH
#define DBSIM_COHERENCE_SPLIT_DIRECTORY_HH

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "coherence/state_split.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dbi/dbi.hh"

namespace dbsim {

/**
 * MOESI directory over (pair-in-record, dirty-in-DBI) state. The
 * protocol-visible state of a block is always
 * decode(record.pair, dbi.isDirty(block)).
 */
class SplitMoesiDirectory
{
  public:
    /** Callback for writebacks the directory must issue. */
    using WritebackFn = std::function<void(Addr)>;

    /**
     * @param dbi_config sizing of the embedded DBI.
     * @param capacity_blocks blocks the owning cache can hold (sizes
     *        the DBI through its alpha parameter).
     * @param writeback invoked for every block whose dirty data is
     *        pushed to memory.
     */
    SplitMoesiDirectory(const DbiConfig &dbi_config,
                        std::uint64_t capacity_blocks,
                        WritebackFn writeback);

    /** Protocol-visible state of a block. */
    MoesiState state(Addr block_addr) const;

    /** Read miss with no other sharers: I -> E. */
    void fetchExclusive(Addr block_addr);

    /** Read miss with other sharers: I -> S. */
    void fetchShared(Addr block_addr);

    /**
     * Local write: any valid state -> M. May trigger a DBI eviction,
     * which writes back and demotes the affected blocks.
     */
    void write(Addr block_addr);

    /**
     * Another cache reads our copy: M -> O, E -> S (dirty data is NOT
     * written back in MOESI; the owner keeps supplying it).
     */
    void snoopShared(Addr block_addr);

    /**
     * Invalidate (another cache writes, or eviction): dirty data is
     * written back first; state -> I.
     */
    void invalidate(Addr block_addr);

    const Dbi &dbi() const { return index; }

    Counter statWritebacks;
    Counter statDemotions;  ///< M->E / O->S caused by DBI evictions

  private:
    /** Apply a DBI-eviction drain list: write back, states demote. */
    void drain(const std::vector<Addr> &blocks);

    Dbi index;
    WritebackFn writebackFn;
    std::unordered_map<Addr, SplitPair> records;
};

} // namespace dbsim

#endif // DBSIM_COHERENCE_SPLIT_DIRECTORY_HH
