#include "trace_writer.hh"

#include <cinttypes>
#include <cmath>

#include "common/logging.hh"

namespace dbsim::telemetry {

namespace {

/** JSON string escaping (telemetry carries no exp dependency). */
std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
argsJson(const TraceArgs &args)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[k, v] : args) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += "\"" + escape(k) + "\":" + v;
    }
    out += "}";
    return out;
}

} // namespace

std::string
traceArgNumber(double v)
{
    if (!std::isfinite(v)) {
        return "null";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
traceArgNumber(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

std::string
traceArgString(const std::string &s)
{
    return "\"" + escape(s) + "\"";
}

std::string
traceArgHex(Addr addr)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\"0x%" PRIx64 "\"", addr);
    return buf;
}

TraceWriter::TraceWriter(const std::string &path, int pid) : pid_(pid)
{
    out = std::fopen(path.c_str(), "w");
    fatal_if(!out, "cannot open trace output '%s'", path.c_str());
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", out);
    threadName(kTidDram, "dram");
    threadName(kTidLlc, "llc");
    threadName(kTidDbi, "dbi");
    threadName(kTidClb, "clb");
    threadName(kTidFabric, "fabric");
}

TraceWriter::~TraceWriter()
{
    finish();
}

void
TraceWriter::emit(const std::string &event_json)
{
    panic_if(finished, "trace event emitted after finish()");
    if (!firstEvent) {
        std::fputs(",\n", out);
    }
    firstEvent = false;
    std::fputs(event_json.c_str(), out);
    ++events;
}

void
TraceWriter::threadName(int tid, const std::string &name)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                  pid_, tid, escape(name).c_str());
    emit(buf);
}

void
TraceWriter::processName(const std::string &name)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":%d,"
                  "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                  pid_, escape(name).c_str());
    emit(buf);
}

void
TraceWriter::complete(const std::string &cat, const std::string &name,
                      int tid, Cycle start, Cycle end,
                      const TraceArgs &args)
{
    Cycle dur = end > start ? end - start : 0;
    std::string ev = "{\"ph\":\"X\",\"cat\":\"" + escape(cat) +
                     "\",\"name\":\"" + escape(name) +
                     "\",\"pid\":" + std::to_string(pid_) +
                     ",\"tid\":" + std::to_string(tid) +
                     ",\"ts\":" + std::to_string(start) +
                     ",\"dur\":" + std::to_string(dur) +
                     ",\"args\":" + argsJson(args) + "}";
    emit(ev);
}

void
TraceWriter::instant(const std::string &cat, const std::string &name,
                     int tid, Cycle ts, const TraceArgs &args)
{
    std::string ev = "{\"ph\":\"i\",\"s\":\"t\",\"cat\":\"" +
                     escape(cat) + "\",\"name\":\"" + escape(name) +
                     "\",\"pid\":" + std::to_string(pid_) +
                     ",\"tid\":" + std::to_string(tid) +
                     ",\"ts\":" + std::to_string(ts) +
                     ",\"args\":" + argsJson(args) + "}";
    emit(ev);
}

void
TraceWriter::counter(const std::string &name, Cycle ts,
                     const TraceArgs &series)
{
    std::string ev = "{\"ph\":\"C\",\"name\":\"" + escape(name) +
                     "\",\"pid\":" + std::to_string(pid_) +
                     ",\"ts\":" + std::to_string(ts) +
                     ",\"args\":" + argsJson(series) + "}";
    emit(ev);
}

void
TraceWriter::flowBegin(const std::string &cat, const std::string &name,
                       int tid, Cycle ts, std::uint64_t id)
{
    std::string ev = "{\"ph\":\"s\",\"cat\":\"" + escape(cat) +
                     "\",\"name\":\"" + escape(name) +
                     "\",\"id\":" + std::to_string(id) +
                     ",\"pid\":" + std::to_string(pid_) +
                     ",\"tid\":" + std::to_string(tid) +
                     ",\"ts\":" + std::to_string(ts) + "}";
    emit(ev);
}

void
TraceWriter::flowEnd(const std::string &cat, const std::string &name,
                     int tid, Cycle ts, std::uint64_t id)
{
    std::string ev = "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"" +
                     escape(cat) + "\",\"name\":\"" + escape(name) +
                     "\",\"id\":" + std::to_string(id) +
                     ",\"pid\":" + std::to_string(pid_) +
                     ",\"tid\":" + std::to_string(tid) +
                     ",\"ts\":" + std::to_string(ts) + "}";
    emit(ev);
}

void
TraceWriter::setTotal(const std::string &key, std::uint64_t value)
{
    totals[key] = value;
}

void
TraceWriter::finish()
{
    if (finished || !out) {
        return;
    }
    finished = true;
    std::fputs("\n],\"otherData\":{", out);
    bool first = true;
    for (const auto &[k, v] : totals) {
        if (!first) {
            std::fputs(",", out);
        }
        first = false;
        std::fprintf(out, "\"%s\":%" PRIu64, escape(k).c_str(), v);
    }
    std::fputs("}}\n", out);
    std::fclose(out);
    out = nullptr;
}

} // namespace dbsim::telemetry
