#include "profiler.hh"

#include <cstdio>

#include "common/logging.hh"

namespace dbsim::telemetry {

namespace {

double
ms(std::uint64_t ns)
{
    return static_cast<double>(ns) / 1e6;
}

double
get(const std::map<std::string, double> &m, const std::string &key)
{
    auto it = m.find(key);
    return it == m.end() ? 0.0 : it->second;
}

} // namespace

HostProfiler::HostProfiler(std::uint32_t num_shards)
    : numShards_(num_shards), lanes(num_shards)
{
    fatal_if(num_shards < 1, "profiler needs at least one shard");
}

prof::QueueProfile *
HostProfiler::queueProfile(std::uint32_t s)
{
    return &lanes.at(s).qp;
}

void
HostProfiler::beginRun()
{
    runStartNs = prof::nowNs();
}

void
HostProfiler::endRun()
{
    runNs = prof::nowNs() - runStartNs;
}

void
HostProfiler::recordEpoch(std::uint32_t s, std::uint64_t work_ns,
                          std::uint64_t events)
{
    Lane &lane = lanes.at(s);
    lane.workNs += work_ns;
    ++lane.epochs;
    if (events == 0) {
        ++lane.idleEpochs;
    }
    lane.events += events;
    lane.eventsPerEpoch.record(events);
}

void
HostProfiler::recordStall(std::uint32_t s, std::uint64_t stall_ns)
{
    lanes.at(s).stallNs += stall_ns;
}

void
HostProfiler::addFabricDrain(std::uint64_t ns)
{
    fabricDrainNs += ns;
}

std::map<std::string, double>
HostProfiler::metrics() const
{
    std::map<std::string, double> out;
    out["runMs"] = ms(runNs);
    out["fabricDrainMs"] = ms(fabricDrainNs);
    out["shards"] = static_cast<double>(numShards_);
    for (std::uint32_t s = 0; s < numShards_; ++s) {
        const Lane &lane = lanes[s];
        const std::string p = "s" + std::to_string(s) + ".";
        out[p + "workMs"] = ms(lane.workNs);
        out[p + "stallMs"] = ms(lane.stallNs);
        out[p + "epochs"] = static_cast<double>(lane.epochs);
        out[p + "idleEpochs"] = static_cast<double>(lane.idleEpochs);
        out[p + "events"] = static_cast<double>(lane.events);
        if (!lane.eventsPerEpoch.empty()) {
            out[p + "evPerEpoch.p50"] =
                static_cast<double>(lane.eventsPerEpoch.percentile(50));
            out[p + "evPerEpoch.p95"] =
                static_cast<double>(lane.eventsPerEpoch.percentile(95));
            out[p + "evPerEpoch.max"] =
                static_cast<double>(lane.eventsPerEpoch.max());
        }
        std::uint64_t dispatchNs = 0;
        for (std::size_t c = 0; c < prof::kNumComps; ++c) {
            dispatchNs += lane.qp.ns[c];
            if (lane.qp.events[c] == 0) {
                continue;
            }
            const std::string cp =
                p + "comp." + prof::compName(c) + ".";
            out[cp + "ms"] = ms(lane.qp.ns[c]);
            out[cp + "events"] =
                static_cast<double>(lane.qp.events[c]);
        }
        out[p + "dispatchMs"] = ms(dispatchNs);
    }
    return out;
}

std::string
HostProfiler::formatTable(const std::map<std::string, double> &m)
{
    const auto shards = static_cast<std::uint32_t>(get(m, "shards"));
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "host profile: run %.3f ms, fabric drain %.3f ms, "
                  "%u shard%s\n",
                  get(m, "runMs"), get(m, "fabricDrainMs"), shards,
                  shards == 1 ? "" : "s");
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  %-6s %10s %10s %12s %8s %12s  %s\n", "shard",
                  "work ms", "stall ms", "events", "epochs",
                  "ev/ep p95", "dispatch by comp (ms)");
    out += buf;
    for (std::uint32_t s = 0; s < shards; ++s) {
        const std::string p = "s" + std::to_string(s) + ".";
        std::string comps;
        for (std::size_t c = 0; c < prof::kNumComps; ++c) {
            const std::string key =
                p + "comp." + prof::compName(c) + ".ms";
            auto it = m.find(key);
            if (it == m.end()) {
                continue;
            }
            char cb[64];
            std::snprintf(cb, sizeof(cb), "%s%s %.3f",
                          comps.empty() ? "" : "  ",
                          prof::compName(c), it->second);
            comps += cb;
        }
        std::snprintf(buf, sizeof(buf),
                      "  s%-5u %10.3f %10.3f %12.0f %8.0f %12.0f  %s\n",
                      s, get(m, p + "workMs"), get(m, p + "stallMs"),
                      get(m, p + "events"), get(m, p + "epochs"),
                      get(m, p + "evPerEpoch.p95"), comps.c_str());
        out += buf;
    }
    return out;
}

} // namespace dbsim::telemetry
