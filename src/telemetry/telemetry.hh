/**
 * @file
 * SimTelemetry: the per-System telemetry sink tying the primitives
 * together — an epoch StatSampler (time-series JSONL + trace counter
 * tracks), request-class latency / drain-burst / dirty-blocks-per-row
 * Histograms (the paper's Fig. 2 distribution), and a Chrome-trace
 * TraceWriter with duration events for DRAM drain windows, DBI
 * eviction drains, AWB bursts, and CLB bypass decisions.
 *
 * Observation is non-perturbing by construction: hooks read state and
 * record into telemetry-private structures only; no Counter, no
 * simulated cycle, and no replacement state is ever touched. A run
 * with telemetry attached is cycle- and stat-identical to one without.
 *
 * Compile-time no-op path: building with -DDBSIM_TELEMETRY=OFF sets
 * telemetry::kEnabled to false and every hook site (guarded by
 * `if constexpr (telemetry::kEnabled)`) is discarded entirely, like
 * DBSIM_AUDIT for the invariant auditor.
 */

#ifndef DBSIM_TELEMETRY_TELEMETRY_HH
#define DBSIM_TELEMETRY_TELEMETRY_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/types.hh"
#include "dram/dram_controller.hh"
#include "telemetry/histogram.hh"
#include "telemetry/sampler.hh"
#include "telemetry/trace_writer.hh"

namespace dbsim::telemetry {

/** True when the build carries the telemetry hooks (DBSIM_TELEMETRY). */
#ifdef DBSIM_TELEMETRY
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/**
 * Telemetry knobs for one System run. Plain data with no behaviour, so
 * it is always compiled (SystemConfig embeds one) regardless of
 * DBSIM_TELEMETRY; a non-default config in a telemetry-free build
 * draws a warning from System and is otherwise ignored.
 */
struct TelemetryConfig
{
    /** Epoch length in simulated cycles; 0 disables the sampler. */
    Cycle sampleEvery = 0;

    /** Epochs retained in the in-memory ring. */
    std::size_t ringCapacity = 4096;

    /** Per-epoch time-series JSONL path (empty: ring only). */
    std::string timeseriesPath;

    /** Chrome trace-event JSON path (empty: tracing off). */
    std::string tracePath;

    /** Collect latency/drain/dirty-row histograms. */
    bool histograms = false;

    /** Trace-level process id; withShardSuffix sets it to the shard. */
    int tracePid = TraceWriter::kPid;

    /** Trace process_name metadata (empty: none emitted). */
    std::string traceProcessName;

    bool
    enabled() const
    {
        return sampleEvery > 0 || !tracePath.empty() || histograms;
    }

    /**
     * Copy with ".pt<index>" spliced into the output file names (before
     * the last extension), so every point of a multi-point sweep writes
     * distinct files.
     */
    TelemetryConfig withPointSuffix(std::size_t index) const;

    /**
     * Copy with ".s<shard>" spliced into the output file names: on
     * sharded runs every shard writes its own time-series/trace stream
     * (merged logically at epoch barriers by construction — a shard's
     * samples are final when its epoch ends).
     */
    TelemetryConfig withShardSuffix(std::uint32_t shard) const;
};

/**
 * "dir/base.ext" -> "dir/base<tag>.ext" (tag before the last
 * extension; no-ext names get it appended). Shared by the
 * point/shard-suffix helpers above and the shard-trace merger.
 */
std::string suffixedPath(const std::string &path, const std::string &tag);

/** Request classes the LLC read path distinguishes (latency hists). */
enum class ReadClass : std::uint8_t
{
    Hit,     ///< demand read that hit in the LLC
    Miss,    ///< demand read served by DRAM through the tag store
    Bypass,  ///< predicted miss forwarded around the tag store (CLB/Skip)
};

/**
 * The telemetry sink for one System. Components hold a raw pointer
 * (nullptr when telemetry is off) and invoke hooks under
 * `if constexpr (telemetry::kEnabled)`.
 */
class SimTelemetry : public DramObserver
{
  public:
    explicit SimTelemetry(const TelemetryConfig &config);
    ~SimTelemetry() override;

    SimTelemetry(const SimTelemetry &) = delete;
    SimTelemetry &operator=(const SimTelemetry &) = delete;

    const TelemetryConfig &config() const { return cfg; }

    /** The epoch sampler, when sampleEvery > 0 (nullptr otherwise). */
    StatSampler *sampler() { return sampler_.get(); }

    /** The trace writer, when a trace path was given (else nullptr). */
    TraceWriter *trace() { return trace_.get(); }

    bool histogramsEnabled() const { return cfg.histograms; }

    // ---- LLC hooks ------------------------------------------------

    /** A demand read of class `cls` completed after `cycles`. */
    void readLatency(ReadClass cls, Cycle cycles);

    /**
     * A dirty eviction wrote its victim back; `dirty_in_row` is the
     * number of dirty blocks resident in the victim's DRAM row at that
     * moment, victim included (the paper's Fig. 2 distribution).
     */
    void dirtyRowWriteback(std::uint64_t dirty_in_row);

    /** A DBI eviction drained `blocks` writebacks over [start, end]. */
    void dbiEvictionDrain(Cycle start, Cycle end, std::uint64_t blocks);

    /** An AWB row burst wrote `blocks` extra blocks over [start, end]. */
    void awbBurst(Cycle start, Cycle end, std::uint64_t blocks);

    /**
     * A CLB bypass decision: predicted-miss read checked the DBI.
     * `dbi_dirty` true means the dirty block forced the normal path.
     */
    void clbDecision(Addr block_addr, Cycle when, bool dbi_dirty);

    // ---- fabric hooks (sharded runs; see FlowObserver contract) ----

    /**
     * A cross-shard message left this shard at `send_time`, bound for
     * `dst` at `deliver_time`. Emits a transit slice on the fabric
     * lane plus a flow-begin carrying `flow_id`; the matching
     * fabricDeliver on dst's sink closes the arrow.
     */
    void fabricSend(const char *kind, std::uint32_t src,
                    std::uint32_t dst, Cycle send_time,
                    Cycle deliver_time, std::uint64_t flow_id);

    /** The matching delivery on the destination shard's sink. */
    void fabricDeliver(const char *kind, std::uint32_t src,
                       std::uint32_t dst, Cycle deliver_time,
                       std::uint64_t flow_id);

    // ---- DramObserver ---------------------------------------------

    void onDrainStart(Cycle when) override;
    void onDrainEnd(Cycle start, Cycle end,
                    std::uint64_t writes) override;

    // ---- lifecycle ------------------------------------------------

    /** Whole-run total surfaced in the trace footer (otherData). */
    void setTotal(const std::string &key, std::uint64_t value);

    /** Close the sampler epoch and the trace document. */
    void finish(Cycle now);

    /**
     * Histogram summaries as flat metrics ("hist.<name>.<stat>"),
     * empty unless histograms are enabled. Deterministic in the
     * simulation, so safe to merge into PointRecord metrics.
     */
    std::map<std::string, double> summaryMetrics() const;

    // ---- introspection (tests, reports) ---------------------------

    const Histogram &latReadHit() const { return histReadHit; }
    const Histogram &latReadMiss() const { return histReadMiss; }
    const Histogram &latBypass() const { return histBypass; }
    const Histogram &drainBurstWrites() const { return histDrainWrites; }
    const Histogram &drainWindowCycles() const { return histDrainCycles; }
    const Histogram &dirtyPerRowWb() const { return histDirtyPerRow; }
    const Histogram &dbiDrainBlocks() const { return histDbiDrain; }

    /** Sum of traced drain-window durations (== dram.drainCycles). */
    std::uint64_t drainCyclesTraced() const { return drainCycleSum; }
    std::uint64_t drainWindowsTraced() const { return drainWindows; }

    /** Fabric flows traced from / delivered to this shard's sink. */
    std::uint64_t fabricFlowsBegun() const { return fabricSends; }
    std::uint64_t fabricFlowsBound() const { return fabricDelivers; }

  private:
    TelemetryConfig cfg;
    std::unique_ptr<StatSampler> sampler_;
    std::unique_ptr<TraceWriter> trace_;

    Histogram histReadHit{"lat.readHit"};
    Histogram histReadMiss{"lat.readMiss"};
    Histogram histBypass{"lat.bypass"};
    Histogram histDrainWrites{"drain.burstWrites"};
    Histogram histDrainCycles{"drain.windowCycles"};
    Histogram histDirtyPerRow{"wb.dirtyBlocksPerRow"};
    Histogram histDbiDrain{"dbi.drainBlocks"};

    std::uint64_t drainCycleSum = 0;
    std::uint64_t drainWindows = 0;
    std::uint64_t fabricSends = 0;
    std::uint64_t fabricDelivers = 0;
    bool finished = false;
};

} // namespace dbsim::telemetry

#endif // DBSIM_TELEMETRY_TELEMETRY_HH
