#include "sampler.hh"

#include <cinttypes>

#include "common/logging.hh"

namespace dbsim::telemetry {

StatSampler::StatSampler(Cycle sample_every, std::size_t ring_capacity)
    : every(sample_every), capacity(ring_capacity), nextBoundary(sample_every)
{
    fatal_if(every == 0, "sampler epoch length must be > 0");
    fatal_if(capacity == 0, "sampler ring needs capacity");
}

StatSampler::~StatSampler()
{
    if (jsonl) {
        std::fclose(jsonl);
    }
}

void
StatSampler::addGauge(std::string name, std::function<double()> fn)
{
    Channel c;
    c.name = std::move(name);
    c.gauge = std::move(fn);
    channels.push_back(std::move(c));
}

void
StatSampler::addCounter(std::string name, const Counter &counter)
{
    Channel c;
    c.name = std::move(name);
    c.num = &counter;
    c.lastNum = counter.value();
    channels.push_back(std::move(c));
}

void
StatSampler::addRate(std::string name, const Counter &num,
                     const Counter &den)
{
    Channel c;
    c.name = std::move(name);
    c.num = &num;
    c.den = &den;
    c.lastNum = num.value();
    c.lastDen = den.value();
    channels.push_back(std::move(c));
}

void
StatSampler::openJsonl(const std::string &path)
{
    panic_if(jsonl != nullptr, "sampler JSONL already open");
    jsonl = std::fopen(path.c_str(), "w");
    fatal_if(!jsonl, "cannot open time-series output '%s'", path.c_str());
    jsonlPath = path;
}

std::vector<std::string>
StatSampler::channelNames() const
{
    std::vector<std::string> names;
    names.reserve(channels.size());
    for (const auto &c : channels) {
        names.push_back(c.name);
    }
    return names;
}

double
StatSampler::channelValue(Channel &c)
{
    if (c.gauge) {
        return c.gauge();
    }
    std::uint64_t num_now = c.num->value();
    std::uint64_t dnum = num_now - c.lastNum;
    c.lastNum = num_now;
    if (!c.den) {
        return static_cast<double>(dnum);
    }
    std::uint64_t den_now = c.den->value();
    std::uint64_t dden = den_now - c.lastDen;
    c.lastDen = den_now;
    return dden ? static_cast<double>(dnum) / static_cast<double>(dden)
                : 0.0;
}

void
StatSampler::closeEpoch(Cycle now)
{
    EpochSample s;
    s.epoch = nextEpochIdx++;
    s.start = epochStart;
    s.end = now;
    s.values.reserve(channels.size());
    for (auto &c : channels) {
        s.values.push_back(channelValue(c));
    }

    if (jsonl) {
        std::fprintf(jsonl,
                     "{\"epoch\":%" PRIu64 ",\"start\":%" PRIu64
                     ",\"end\":%" PRIu64 ",\"values\":{",
                     s.epoch, s.start, s.end);
        for (std::size_t i = 0; i < channels.size(); ++i) {
            std::fprintf(jsonl, "%s\"%s\":%s", i ? "," : "",
                         channels[i].name.c_str(),
                         traceArgNumber(s.values[i]).c_str());
        }
        std::fputs("}}\n", jsonl);
    }

    if (trace) {
        // One counter track per channel keeps Perfetto lanes separate.
        for (std::size_t i = 0; i < channels.size(); ++i) {
            trace->counter(channels[i].name, now,
                           {{channels[i].name,
                             traceArgNumber(s.values[i])}});
        }
    }

    samples.push_back(std::move(s));
    if (samples.size() > capacity) {
        samples.pop_front();
    }

    epochStart = now;
    nextBoundary = (now / every + 1) * every;
}

void
StatSampler::finish(Cycle now)
{
    if (now > epochStart || nextEpochIdx == 0) {
        closeEpoch(now);
    }
    if (jsonl) {
        std::fclose(jsonl);
        jsonl = nullptr;
    }
}

} // namespace dbsim::telemetry
