/**
 * @file
 * Streaming writer for the Chrome trace-event JSON format (the "JSON
 * object format" with a `traceEvents` array), viewable in Perfetto
 * (ui.perfetto.dev) or chrome://tracing. Simulated cycles are emitted
 * directly as the `ts`/`dur` microsecond fields, so 1 displayed "us"
 * == 1 CPU cycle.
 *
 * Events are streamed to disk as they are emitted (no in-memory event
 * list), so arbitrarily long runs trace in O(1) memory. finish() —
 * called automatically from the destructor — closes the traceEvents
 * array and appends an `otherData` object carrying whole-run totals
 * that checkers (tools/check_trace.py) validate the event stream
 * against.
 */

#ifndef DBSIM_TELEMETRY_TRACE_WRITER_HH
#define DBSIM_TELEMETRY_TRACE_WRITER_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hh"

namespace dbsim::telemetry {

/** Argument list attached to one trace event ("args" object). */
using TraceArgs = std::vector<std::pair<std::string, std::string>>;

/** Format helpers for TraceArgs values. */
std::string traceArgNumber(double v);
std::string traceArgNumber(std::uint64_t v);
std::string traceArgString(const std::string &s);
std::string traceArgHex(Addr addr);

class TraceWriter
{
  public:
    /**
     * Opens `path` and writes the stream prefix; fatal() on failure.
     * `pid` is the trace-level process id every event carries — one
     * process per shard in sharded runs (pid == shard id), so the
     * post-run merger can concatenate shard streams into one document
     * with per-shard track groups.
     */
    explicit TraceWriter(const std::string &path, int pid = kPid);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Track identifiers: default pid, one tid per subsystem lane. */
    static constexpr int kPid = 1;
    static constexpr int kTidDram = 1;
    static constexpr int kTidLlc = 2;
    static constexpr int kTidDbi = 3;
    static constexpr int kTidClb = 4;
    static constexpr int kTidFabric = 5;

    int pid() const { return pid_; }

    /** Name a thread lane (ph "M" thread_name metadata). */
    void threadName(int tid, const std::string &name);

    /** Name this writer's process track group (process_name metadata). */
    void processName(const std::string &name);

    /** Complete ("X") duration event spanning [start, end]. */
    void complete(const std::string &cat, const std::string &name,
                  int tid, Cycle start, Cycle end,
                  const TraceArgs &args = {});

    /** Instant ("i") event at `ts`, thread scope. */
    void instant(const std::string &cat, const std::string &name,
                 int tid, Cycle ts, const TraceArgs &args = {});

    /**
     * Counter ("C") event: one track per `name`, one series per args
     * key. Values must be numbers (use traceArgNumber).
     */
    void counter(const std::string &name, Cycle ts,
                 const TraceArgs &series);

    /**
     * Flow events ("s"/"f"): a directed arrow between two slices that
     * share `id`, possibly across processes (shards). Emit each right
     * after a slice at the same (pid, tid, ts) so viewers bind the
     * arrow to that slice; the end uses "bp":"e" (bind to enclosing
     * slice) per the trace-event spec.
     */
    void flowBegin(const std::string &cat, const std::string &name,
                   int tid, Cycle ts, std::uint64_t id);
    void flowEnd(const std::string &cat, const std::string &name,
                 int tid, Cycle ts, std::uint64_t id);

    /** Whole-run total surfaced in the trailing otherData object. */
    void setTotal(const std::string &key, std::uint64_t value);

    /** Close the JSON document; idempotent. */
    void finish();

    std::uint64_t eventsWritten() const { return events; }

  private:
    void emit(const std::string &event_json);

    std::FILE *out = nullptr;
    int pid_ = kPid;
    bool firstEvent = true;
    bool finished = false;
    std::uint64_t events = 0;
    std::map<std::string, std::uint64_t> totals;
};

} // namespace dbsim::telemetry

#endif // DBSIM_TELEMETRY_TRACE_WRITER_HH
