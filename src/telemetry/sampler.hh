/**
 * @file
 * Epoch-based statistics sampler. The owning System polls the sampler
 * after every dispatched event; when simulated time crosses the next
 * epoch boundary (a multiple of `sampleEvery` cycles), the sampler
 * snapshots every registered channel into an in-memory ring and
 * optionally emits the epoch as one JSON Lines row and as Chrome-trace
 * counter tracks.
 *
 * Sampling is strictly passive: channels read component state through
 * const accessors and the sampler keeps its own last-value bookkeeping
 * for counter deltas — it never calls Counter::snapshot(), so the
 * measurement-window math of StatSet is untouched and a sampled run is
 * stat-identical to an unsampled one.
 *
 * Because the simulation is event-driven, an epoch closes at the first
 * event at-or-after its grid boundary; if no event lands inside a grid
 * epoch, that epoch is subsumed by the next sample (`start`/`end`
 * record the actual span covered).
 */

#ifndef DBSIM_TELEMETRY_SAMPLER_HH
#define DBSIM_TELEMETRY_SAMPLER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "telemetry/trace_writer.hh"

namespace dbsim::telemetry {

/** One closed epoch: the channel values over [start, end]. */
struct EpochSample
{
    std::uint64_t epoch = 0;  ///< running index
    Cycle start = 0;          ///< first cycle covered
    Cycle end = 0;            ///< cycle the epoch closed at
    std::vector<double> values;  ///< parallel to channelNames()
};

class StatSampler
{
  public:
    /**
     * @param sample_every epoch length in simulated cycles (> 0).
     * @param ring_capacity epochs retained in memory (oldest dropped).
     */
    StatSampler(Cycle sample_every, std::size_t ring_capacity = 4096);
    ~StatSampler();

    StatSampler(const StatSampler &) = delete;
    StatSampler &operator=(const StatSampler &) = delete;

    /** Sampled instantaneous value (queue depth, occupancy, flag). */
    void addGauge(std::string name, std::function<double()> fn);

    /** Per-epoch delta of a monotonically increasing counter. */
    void addCounter(std::string name, const Counter &c);

    /**
     * Per-epoch delta ratio num/den (e.g. row hits / accesses); 0 when
     * the denominator did not move this epoch.
     */
    void addRate(std::string name, const Counter &num, const Counter &den);

    /** Stream each closed epoch as one JSONL row; fatal() on failure. */
    void openJsonl(const std::string &path);

    /** Also emit each epoch as Chrome-trace counter tracks. */
    void attachTrace(TraceWriter *writer) { trace = writer; }

    /**
     * Called after every dispatched event; closes epochs as boundaries
     * are crossed. The fast path is one comparison.
     */
    void
    poll(Cycle now)
    {
        if (now < nextBoundary) {
            return;
        }
        closeEpoch(now);
    }

    /** Close the final (partial) epoch, if it saw any cycles. */
    void finish(Cycle now);

    Cycle sampleEvery() const { return every; }
    const std::deque<EpochSample> &ring() const { return samples; }
    std::uint64_t epochsClosed() const { return nextEpochIdx; }
    std::vector<std::string> channelNames() const;

  private:
    struct Channel
    {
        std::string name;
        std::function<double()> gauge;   ///< set for gauge channels
        const Counter *num = nullptr;    ///< set for counter/rate
        const Counter *den = nullptr;    ///< set for rate
        std::uint64_t lastNum = 0;       ///< sampler-private bookkeeping
        std::uint64_t lastDen = 0;
    };

    void closeEpoch(Cycle now);
    double channelValue(Channel &c);

    Cycle every;
    std::size_t capacity;
    Cycle epochStart = 0;
    Cycle nextBoundary;
    std::uint64_t nextEpochIdx = 0;
    std::vector<Channel> channels;
    std::deque<EpochSample> samples;
    std::FILE *jsonl = nullptr;
    std::string jsonlPath;
    TraceWriter *trace = nullptr;
};

} // namespace dbsim::telemetry

#endif // DBSIM_TELEMETRY_SAMPLER_HH
