#include "histogram.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dbsim::telemetry {

std::uint64_t
Histogram::percentile(double p) const
{
    if (samples_.empty()) {
        return 0;
    }
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    if (p <= 0.0) {
        return samples_.front();
    }
    if (p >= 100.0) {
        return samples_.back();
    }
    // Nearest rank: ceil(p/100 * N), 1-based.
    double n = static_cast<double>(samples_.size());
    auto rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
    if (rank == 0) {
        rank = 1;
    }
    return samples_[rank - 1];
}

std::string
Histogram::summaryLine() const
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "count=%llu mean=%.2f p50=%llu p95=%llu p99=%llu "
                  "max=%llu",
                  static_cast<unsigned long long>(count()), mean(),
                  static_cast<unsigned long long>(percentile(50)),
                  static_cast<unsigned long long>(percentile(95)),
                  static_cast<unsigned long long>(percentile(99)),
                  static_cast<unsigned long long>(max()));
    return buf;
}

std::string
Histogram::report() const
{
    std::string out;
    out += (name_.empty() ? std::string("histogram") : name_) + ": " +
           summaryLine() + "\n";
    if (empty()) {
        return out;
    }
    std::uint64_t peak = 0;
    for (std::uint64_t c : buckets_) {
        peak = std::max(peak, c);
    }
    for (std::uint32_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0) {
            continue;
        }
        static constexpr int kBarWidth = 40;
        int bar = static_cast<int>(
            static_cast<double>(buckets_[i]) /
            static_cast<double>(peak) * kBarWidth);
        if (bar == 0) {
            bar = 1;
        }
        char line[160];
        std::snprintf(line, sizeof(line), "  [%8llu, %8llu) %10llu |",
                      static_cast<unsigned long long>(bucketLow(i)),
                      static_cast<unsigned long long>(bucketHigh(i)),
                      static_cast<unsigned long long>(buckets_[i]));
        out += line;
        out.append(static_cast<std::size_t>(bar), '#');
        out += '\n';
    }
    return out;
}

} // namespace dbsim::telemetry
