/**
 * @file
 * Distribution-tracking primitive for the telemetry layer. A Histogram
 * keeps (1) power-of-two ("log2") bucket counts, cheap enough to update
 * on every event and compact to print, and (2) the raw sample values,
 * so percentiles (p50/p95/p99) are exact rather than bucket-resolution
 * estimates. Recording is purely observational: it touches no Counter,
 * no simulation state, and costs no simulated cycles.
 */

#ifndef DBSIM_TELEMETRY_HISTOGRAM_HH
#define DBSIM_TELEMETRY_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dbsim::telemetry {

/**
 * Log2-bucketed histogram with exact on-demand percentiles.
 *
 * Bucket i counts samples v with bucketIndex(v) == i:
 *   bucket 0   <- v == 0
 *   bucket i   <- 2^(i-1) <= v < 2^i   (i >= 1)
 */
class Histogram
{
  public:
    explicit Histogram(std::string hist_name = "")
        : name_(std::move(hist_name))
    {
    }

    /** Bucket a value falls into (see class comment). */
    static std::uint32_t
    bucketIndex(std::uint64_t v)
    {
        return v == 0 ? 0 : floorLog2(v) + 1;
    }

    /** Inclusive lower bound of bucket i. */
    static std::uint64_t
    bucketLow(std::uint32_t i)
    {
        return i == 0 ? 0 : 1ull << (i - 1);
    }

    /** Exclusive upper bound of bucket i (0 -> [0,0]). */
    static std::uint64_t
    bucketHigh(std::uint32_t i)
    {
        return i == 0 ? 1 : 1ull << i;
    }

    void
    record(std::uint64_t v)
    {
        std::uint32_t b = bucketIndex(v);
        if (b >= buckets_.size()) {
            buckets_.resize(b + 1, 0);
        }
        ++buckets_[b];
        sum_ += v;
        if (samples_.empty() || v < min_) {
            min_ = v;
        }
        if (samples_.empty() || v > max_) {
            max_ = v;
        }
        samples_.push_back(v);
        sorted_ = false;
    }

    const std::string &name() const { return name_; }
    std::uint64_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }
    std::uint64_t min() const { return empty() ? 0 : min_; }
    std::uint64_t max() const { return empty() ? 0 : max_; }
    std::uint64_t sum() const { return sum_; }

    double
    mean() const
    {
        return empty() ? 0.0
                       : static_cast<double>(sum_) /
                             static_cast<double>(samples_.size());
    }

    /**
     * Exact percentile by the nearest-rank method: the smallest sample
     * v such that at least p% of samples are <= v. p in [0, 100];
     * returns 0 on an empty histogram.
     */
    std::uint64_t percentile(double p) const;

    /** Per-bucket counts; index is the log2 bucket. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /**
     * Human-readable multi-line report: count/mean/percentiles plus one
     * row per non-empty bucket with a proportional bar.
     */
    std::string report() const;

    /** One-line "count=N mean=M p50=... p95=... p99=... max=..." form. */
    std::string summaryLine() const;

  private:
    std::string name_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;

    /** Raw samples, lazily sorted for exact percentile queries. */
    mutable std::vector<std::uint64_t> samples_;
    mutable bool sorted_ = true;
};

} // namespace dbsim::telemetry

#endif // DBSIM_TELEMETRY_HISTOGRAM_HH
