/**
 * @file
 * HostProfiler: wall-clock attribution for one System run. Answers
 * "where does host time go?" per shard: event dispatch split by
 * component (via the prof::QueueProfile tag bits in the kernel),
 * epoch-barrier stall (the wait for the slowest shard of each epoch),
 * and barrier-time fabric drain — plus per-epoch occupancy counters
 * (events dispatched per shard per epoch, as a Histogram).
 *
 * Clock discipline: all measurements use the host steady clock and are
 * recorded either by the thread that owns the measured queue (dispatch
 * times, epoch work spans) or by the main thread at the epoch barrier
 * (stall, fabric drain, occupancy) — never concurrently on shared
 * state. Nothing here reads or writes simulated state, so profiling
 * cannot perturb the simulation; it only adds host time, which is why
 * profiled runs bypass the result cache and are never used for
 * perf-gate timing.
 *
 * The accounting identity the checker validates: for every shard,
 *   workNs + stallNs  ≈  engine loop wall time  ≈  runNs
 * holds by measurement (work and stall are measured against the same
 * per-iteration span), not by construction from the parts.
 */

#ifndef DBSIM_TELEMETRY_PROFILER_HH
#define DBSIM_TELEMETRY_PROFILER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/prof.hh"
#include "telemetry/histogram.hh"

namespace dbsim::telemetry {

class HostProfiler
{
  public:
    explicit HostProfiler(std::uint32_t num_shards);

    std::uint32_t numShards() const { return numShards_; }

    /** The kernel-facing accumulation slab for shard `s`'s queue. */
    prof::QueueProfile *queueProfile(std::uint32_t s);

    /** Bracket the whole engine run (wall time). */
    void beginRun();
    void endRun();

    /**
     * One epoch (or, for the single-queue engine, the whole run) of
     * shard `s`: the measured work span and the events dispatched in
     * it. Called at the barrier, no epoch executing.
     */
    void recordEpoch(std::uint32_t s, std::uint64_t work_ns,
                     std::uint64_t events);

    /** Barrier stall charged to shard `s` for the current epoch. */
    void recordStall(std::uint32_t s, std::uint64_t stall_ns);

    /** Barrier-time fabric delivery (single-threaded, not per shard). */
    void addFabricDrain(std::uint64_t ns);

    /**
     * The flat metrics block surfaced as SimResult::hostProfile /
     * JSONL "host" entries ("profile." prefix added by the callers).
     * Host wall-clock derived, therefore non-deterministic.
     */
    std::map<std::string, double> metrics() const;

    /**
     * Render a metrics block (as produced by metrics(), without any
     * added prefix) as a fixed-width table for terminal output.
     */
    static std::string formatTable(const std::map<std::string, double> &m);

  private:
    struct Lane
    {
        prof::QueueProfile qp;
        std::uint64_t workNs = 0;
        std::uint64_t stallNs = 0;
        std::uint64_t epochs = 0;
        std::uint64_t idleEpochs = 0;  ///< epochs with zero dispatches
        std::uint64_t events = 0;
        Histogram eventsPerEpoch{"eventsPerEpoch"};
    };

    std::uint32_t numShards_;
    std::vector<Lane> lanes;
    std::uint64_t fabricDrainNs = 0;
    std::uint64_t runStartNs = 0;
    std::uint64_t runNs = 0;
};

} // namespace dbsim::telemetry

#endif // DBSIM_TELEMETRY_PROFILER_HH
