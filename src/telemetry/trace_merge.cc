#include "trace_merge.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "telemetry/telemetry.hh"

namespace dbsim::telemetry {

namespace {

constexpr const char *kPrefix =
    "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
constexpr const char *kFooterMark = "\n],\"otherData\":{";

struct ShardDoc
{
    std::string events;     ///< event lines, no trailing separator
    std::string otherData;  ///< inner "k":v list, no braces
};

bool
readShardDoc(const std::string &path, ShardDoc &doc)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        warn("trace merge: cannot open '%s'", path.c_str());
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    const std::string prefix = kPrefix;
    if (text.rfind(prefix, 0) != 0) {
        warn("trace merge: '%s' lacks the TraceWriter prefix",
             path.c_str());
        return false;
    }
    const std::size_t footer = text.rfind(kFooterMark);
    if (footer == std::string::npos || footer < prefix.size()) {
        warn("trace merge: '%s' lacks the TraceWriter footer",
             path.c_str());
        return false;
    }
    doc.events = text.substr(prefix.size(), footer - prefix.size());

    const std::size_t od = footer + std::string(kFooterMark).size();
    const std::size_t odEnd = text.find("}}", od);
    if (odEnd == std::string::npos) {
        warn("trace merge: '%s' has an unterminated otherData",
             path.c_str());
        return false;
    }
    doc.otherData = text.substr(od, odEnd - od);
    return true;
}

} // namespace

bool
mergeShardTraces(const std::string &base_path, std::uint32_t num_shards)
{
    std::string events;
    std::string otherData;
    for (std::uint32_t s = 0; s < num_shards; ++s) {
        const std::string path =
            suffixedPath(base_path, ".s" + std::to_string(s));
        ShardDoc doc;
        if (!readShardDoc(path, doc)) {
            return false;
        }
        if (!doc.events.empty()) {
            if (!events.empty()) {
                events += ",\n";
            }
            events += doc.events;
        }
        // Re-key the shard's totals as "s<k>.<key>": the values stay
        // per-shard (summing across shards is the checker's job).
        std::size_t pos = 0;
        const std::string tag = "s" + std::to_string(s) + ".";
        while (pos < doc.otherData.size()) {
            std::size_t next = doc.otherData.find(",\"", pos);
            std::string item =
                next == std::string::npos
                    ? doc.otherData.substr(pos)
                    : doc.otherData.substr(pos, next - pos);
            if (!item.empty()) {
                if (!otherData.empty()) {
                    otherData += ",";
                }
                otherData += "\"" + tag + item.substr(1);
            }
            if (next == std::string::npos) {
                break;
            }
            pos = next + 1;
        }
    }

    std::FILE *out = std::fopen(base_path.c_str(), "w");
    if (!out) {
        warn("trace merge: cannot open output '%s'", base_path.c_str());
        return false;
    }
    std::fputs(kPrefix, out);
    std::fputs(events.c_str(), out);
    std::fputs(kFooterMark, out);
    std::fputs(otherData.c_str(), out);
    std::fputs("}}\n", out);
    std::fclose(out);
    return true;
}

} // namespace dbsim::telemetry
