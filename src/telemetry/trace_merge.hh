/**
 * @file
 * Post-run merger for sharded Chrome traces: folds the per-shard
 * `.s<k>` streams written by TraceWriter into one trace document at
 * the un-suffixed path, so a `--shards N --trace` run ends with a
 * single file whose track groups are the shards (pid == shard id) and
 * whose fabric flow arrows connect them.
 *
 * This is deliberately not a JSON parser: every input is produced by
 * our own TraceWriter, whose layout is fixed (prefix line, one event
 * per line joined by ",\n", then a `],"otherData":{...}` footer), so a
 * line-oriented text transform is exact. Event timestamps need no
 * sorting — the trace-event format does not require time order, and
 * each shard's stream is already monotonic per track by epoch
 * construction.
 */

#ifndef DBSIM_TELEMETRY_TRACE_MERGE_HH
#define DBSIM_TELEMETRY_TRACE_MERGE_HH

#include <cstdint>
#include <string>

namespace dbsim::telemetry {

/**
 * Merge `base_path`.s0 .. .s<num_shards-1> (suffix spliced before the
 * extension, as withShardSuffix does) into one document at
 * `base_path`. Per-shard otherData totals are carried over under
 * "s<k>."-prefixed keys. The inputs are left in place.
 *
 * @return true on success; false (with a warning) if any shard file
 *         is missing or does not look like a TraceWriter document.
 */
bool mergeShardTraces(const std::string &base_path,
                      std::uint32_t num_shards);

} // namespace dbsim::telemetry

#endif // DBSIM_TELEMETRY_TRACE_MERGE_HH
