#include "telemetry.hh"

#include "common/logging.hh"

namespace dbsim::telemetry {

std::string
suffixedPath(const std::string &path, const std::string &tag)
{
    if (path.empty()) {
        return path;
    }
    std::size_t slash = path.find_last_of('/');
    std::size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + tag;
    }
    return path.substr(0, dot) + tag + path.substr(dot);
}

namespace {

void
addHistMetrics(std::map<std::string, double> &out, const Histogram &h)
{
    if (h.empty()) {
        return;
    }
    const std::string p = "hist." + h.name() + ".";
    out[p + "count"] = static_cast<double>(h.count());
    out[p + "mean"] = h.mean();
    out[p + "p50"] = static_cast<double>(h.percentile(50));
    out[p + "p95"] = static_cast<double>(h.percentile(95));
    out[p + "p99"] = static_cast<double>(h.percentile(99));
    out[p + "max"] = static_cast<double>(h.max());
}

} // namespace

TelemetryConfig
TelemetryConfig::withPointSuffix(std::size_t index) const
{
    TelemetryConfig c = *this;
    std::string tag = ".pt" + std::to_string(index);
    c.timeseriesPath = suffixedPath(timeseriesPath, tag);
    c.tracePath = suffixedPath(tracePath, tag);
    return c;
}

TelemetryConfig
TelemetryConfig::withShardSuffix(std::uint32_t shard) const
{
    TelemetryConfig c = *this;
    std::string tag = ".s" + std::to_string(shard);
    c.timeseriesPath = suffixedPath(timeseriesPath, tag);
    c.tracePath = suffixedPath(tracePath, tag);
    // The merged document groups tracks by process: pid == shard id.
    c.tracePid = static_cast<int>(shard);
    c.traceProcessName = "shard " + std::to_string(shard);
    return c;
}

SimTelemetry::SimTelemetry(const TelemetryConfig &config) : cfg(config)
{
    if (!cfg.tracePath.empty()) {
        trace_ = std::make_unique<TraceWriter>(cfg.tracePath, cfg.tracePid);
        if (!cfg.traceProcessName.empty()) {
            trace_->processName(cfg.traceProcessName);
        }
    }
    if (cfg.sampleEvery > 0) {
        sampler_ =
            std::make_unique<StatSampler>(cfg.sampleEvery,
                                          cfg.ringCapacity);
        if (!cfg.timeseriesPath.empty()) {
            sampler_->openJsonl(cfg.timeseriesPath);
        }
        if (trace_) {
            sampler_->attachTrace(trace_.get());
        }
    }
}

SimTelemetry::~SimTelemetry() = default;

void
SimTelemetry::readLatency(ReadClass cls, Cycle cycles)
{
    if (!cfg.histograms) {
        return;
    }
    switch (cls) {
      case ReadClass::Hit:
        histReadHit.record(cycles);
        break;
      case ReadClass::Miss:
        histReadMiss.record(cycles);
        break;
      case ReadClass::Bypass:
        histBypass.record(cycles);
        break;
    }
}

void
SimTelemetry::dirtyRowWriteback(std::uint64_t dirty_in_row)
{
    if (cfg.histograms) {
        histDirtyPerRow.record(dirty_in_row);
    }
}

void
SimTelemetry::dbiEvictionDrain(Cycle start, Cycle end,
                               std::uint64_t blocks)
{
    if (cfg.histograms) {
        histDbiDrain.record(blocks);
    }
    if (trace_) {
        trace_->complete("dbi", "dbiEvictionDrain", TraceWriter::kTidDbi,
                         start, end,
                         {{"blocks", traceArgNumber(blocks)}});
    }
}

void
SimTelemetry::awbBurst(Cycle start, Cycle end, std::uint64_t blocks)
{
    if (trace_) {
        trace_->complete("dbi", "awbBurst", TraceWriter::kTidDbi, start,
                         end, {{"blocks", traceArgNumber(blocks)}});
    }
}

void
SimTelemetry::clbDecision(Addr block_addr, Cycle when, bool dbi_dirty)
{
    if (trace_) {
        trace_->instant("clb", dbi_dirty ? "clbDirty" : "clbBypass",
                        TraceWriter::kTidClb, when,
                        {{"block", traceArgHex(block_addr)}});
    }
}

void
SimTelemetry::fabricSend(const char *kind, std::uint32_t src,
                         std::uint32_t dst, Cycle send_time,
                         Cycle deliver_time, std::uint64_t flow_id)
{
    ++fabricSends;
    if (!trace_) {
        return;
    }
    // A transit slice on the source's fabric lane [send, deliver], with
    // the flow-begin at the same (tid, ts) so the arrow binds to it.
    const std::string name =
        std::string(kind) + "→s" + std::to_string(dst);
    trace_->complete("fabric", name, TraceWriter::kTidFabric, send_time,
                     deliver_time,
                     {{"src", traceArgNumber(std::uint64_t(src))},
                      {"dst", traceArgNumber(std::uint64_t(dst))},
                      {"flow", traceArgNumber(flow_id)}});
    trace_->flowBegin("fabric", kind, TraceWriter::kTidFabric, send_time,
                      flow_id);
}

void
SimTelemetry::fabricDeliver(const char *kind, std::uint32_t src,
                            std::uint32_t dst, Cycle deliver_time,
                            std::uint64_t flow_id)
{
    ++fabricDelivers;
    if (!trace_) {
        return;
    }
    const std::string name =
        std::string(kind) + "←s" + std::to_string(src);
    trace_->complete("fabric", name, TraceWriter::kTidFabric,
                     deliver_time, deliver_time,
                     {{"src", traceArgNumber(std::uint64_t(src))},
                      {"dst", traceArgNumber(std::uint64_t(dst))},
                      {"flow", traceArgNumber(flow_id)}});
    trace_->flowEnd("fabric", kind, TraceWriter::kTidFabric, deliver_time,
                    flow_id);
}

void
SimTelemetry::onDrainStart(Cycle)
{
    // The window is recorded on close, when its extent is known.
}

void
SimTelemetry::onDrainEnd(Cycle start, Cycle end, std::uint64_t writes)
{
    Cycle dur = end > start ? end - start : 0;
    drainCycleSum += dur;
    ++drainWindows;
    if (cfg.histograms) {
        histDrainWrites.record(writes);
        histDrainCycles.record(dur);
    }
    if (trace_) {
        trace_->complete("dram", "drain", TraceWriter::kTidDram, start,
                         end, {{"writes", traceArgNumber(writes)}});
    }
}

void
SimTelemetry::setTotal(const std::string &key, std::uint64_t value)
{
    if (trace_) {
        trace_->setTotal(key, value);
    }
}

void
SimTelemetry::finish(Cycle now)
{
    if (finished) {
        return;
    }
    finished = true;
    if (sampler_) {
        sampler_->finish(now);
    }
    if (trace_) {
        trace_->setTotal("telemetry.drainWindows", drainWindows);
        trace_->setTotal("telemetry.drainCyclesTraced", drainCycleSum);
        if (fabricSends || fabricDelivers) {
            trace_->setTotal("telemetry.fabricFlowsBegun", fabricSends);
            trace_->setTotal("telemetry.fabricFlowsBound",
                             fabricDelivers);
        }
        trace_->finish();
    }
}

std::map<std::string, double>
SimTelemetry::summaryMetrics() const
{
    std::map<std::string, double> out;
    if (!cfg.histograms) {
        return out;
    }
    addHistMetrics(out, histReadHit);
    addHistMetrics(out, histReadMiss);
    addHistMetrics(out, histBypass);
    addHistMetrics(out, histDrainWrites);
    addHistMetrics(out, histDrainCycles);
    addHistMetrics(out, histDirtyPerRow);
    addHistMetrics(out, histDbiDrain);
    return out;
}

} // namespace dbsim::telemetry
