/**
 * @file
 * Discrete-event simulation kernel. A single global EventQueue drives the
 * whole system: cores, the shared LLC, and the DRAM controller schedule
 * callbacks at absolute cycle times. Events at the same cycle execute in
 * FIFO (schedule) order, which keeps the simulation deterministic.
 *
 * The kernel is allocation-free on the steady-state path. Callbacks are
 * stored inline in fixed-size event nodes (a context + trampoline pair,
 * never a heap-allocated std::function), nodes and per-cycle buckets are
 * recycled through slab-backed freelists, and same-cycle ties batch into
 * one FIFO bucket so the binary heap holds one entry per distinct
 * pending cycle instead of one per event. See DESIGN.md §11 for the
 * layout and the measured effect.
 */

#ifndef DBSIM_COMMON_EVENT_QUEUE_HH
#define DBSIM_COMMON_EVENT_QUEUE_HH

#include <algorithm>
#include <cinttypes>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "logging.hh"
#include "prof.hh"
#include "types.hh"

namespace dbsim {

/**
 * Global discrete-event queue.
 *
 * Components schedule callables at absolute cycle times. Scheduling an
 * event in the past is a simulator bug (panic); same-cycle ties break
 * by insertion order. Any callable up to kInlineCallbackBytes (with
 * standard alignment) can be scheduled; larger closures are rejected at
 * compile time — pack their state behind a pointer instead.
 */
class EventQueue
{
  public:
    /** Inline storage per event callback (covers a captured
     *  std::function plus a Cycle, the largest closure in the tree). */
    static constexpr std::size_t kInlineCallbackBytes = 48;

    EventQueue() : cache(kCacheSlots) {}

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    ~EventQueue()
    {
        // Destroy the callbacks of any never-dispatched events; the
        // slabs themselves are freed by their owning vector.
        drainBucket(active);
        for (Bucket *b : heap) {
            drainBucket(b);
        }
    }

    /** Current simulation time (time of the last dispatched event). */
    Cycle now() const { return curTime; }

    /** Number of pending events. */
    std::size_t pending() const { return numPending; }

    /** True if no events remain. */
    bool empty() const { return numPending == 0; }

    /**
     * Schedule a callable at absolute time `when`. `comp` names the
     * component the dispatch cost is charged to when a profiler is
     * attached; it has no effect otherwise.
     * @pre when >= now()
     */
    template <typename F>
    void
    schedule(Cycle when, F &&fn, prof::Comp comp = prof::Other)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= kInlineCallbackBytes,
                      "callback exceeds EventQueue inline storage; "
                      "capture a pointer to external state instead");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callback");
        static_assert(alignof(CbOps) > prof::kCompMask,
                      "CbOps alignment must leave the tag bits free");
        panic_if(when < curTime,
                 "event scheduled in the past (%" PRIu64 " < %" PRIu64 ")",
                 when, curTime);

        EventNode *n = allocNode();
        ::new (static_cast<void *>(n->storage)) Fn(std::forward<F>(fn));
        n->ops = &CbOpsFor<Fn>::ops;
#ifdef DBSIM_PROFILE
        // Fold the component tag into the free low bits of the vtable
        // pointer — but only when profiling, so unprofiled runs never
        // carry (or need to strip) a tag.
        if (prof_) {
            n->ops = reinterpret_cast<const CbOps *>(
                reinterpret_cast<std::uintptr_t>(n->ops) |
                static_cast<std::uintptr_t>(comp));
        }
#else
        (void)comp;
#endif
        n->next = nullptr;
        ++numPending;

        // Same-cycle events scheduled while that cycle dispatches join
        // the active bucket's FIFO and run in this very dispatch loop.
        if (active && when == curTime) {
            appendTo(active, n);
            return;
        }
        CacheSlot &slot = cache[cacheIndex(when)];
        if (slot.bucket && slot.when == when) {
            appendTo(slot.bucket, n);
            return;
        }
        // No bucket for this cycle reachable: open one. A cycle whose
        // bucket was displaced from the cache gets a second bucket; the
        // (when, seq) heap order still replays them in FIFO order.
        Bucket *b = allocBucket();
        b->when = when;
        b->seq = ++bucketSeq;
        b->head = b->tail = n;
        heap.push_back(b);
        std::push_heap(heap.begin(), heap.end(), BucketLater{});
        slot.when = when;
        slot.bucket = b;
    }

    /** Time of the earliest pending event; kCycleMax if none. */
    Cycle
    nextTime() const
    {
        if (active) {
            return curTime;  // partially drained bucket at now()
        }
        return heap.empty() ? kCycleMax : heap.front()->when;
    }

    /**
     * Dispatch the earliest event, advancing now().
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        if (!active) {
            if (heap.empty()) {
                return false;
            }
            std::pop_heap(heap.begin(), heap.end(), BucketLater{});
            active = heap.back();
            heap.pop_back();
            curTime = active->when;
        }
        EventNode *n = active->head;
        active->head = n->next;
        --numPending;
        ++numDispatched;
#ifdef DBSIM_PROFILE
        if (prof_) {
            const auto raw = reinterpret_cast<std::uintptr_t>(n->ops);
            const CbOps *ops =
                reinterpret_cast<const CbOps *>(raw & ~prof::kCompMask);
            const std::uint64_t t0 = prof::nowNs();
            ops->invokeAndDestroy(n->storage);
            prof_->record(raw & prof::kCompMask, prof::nowNs() - t0);
        } else {
            n->ops->invokeAndDestroy(n->storage);
        }
#else
        n->ops->invokeAndDestroy(n->storage);
#endif
        freeNode(n);
        // The callback may have appended to the active bucket; only a
        // drained bucket is retired.
        if (!active->head) {
            freeBucket(active);
            active = nullptr;
        }
        return true;
    }

    /** Run events until the queue drains. */
    void
    runAll()
    {
        while (step()) {
        }
    }

    /** Run events with time <= limit; now() may end up past-limit-free. */
    void
    runUntil(Cycle limit)
    {
        while (numPending != 0 && nextTime() <= limit) {
            step();
        }
        if (curTime < limit) {
            curTime = limit;
        }
    }

    // -- Host-side introspection (never affects the simulation) --------

    /** Events dispatched over the queue's lifetime. */
    std::uint64_t dispatched() const { return numDispatched; }

    /**
     * Slab growth events (node or bucket chunk allocations). Constant
     * once the queue reaches its high-water mark: the steady-state
     * schedule/dispatch path recycles freelist memory and never touches
     * the heap (asserted by tests/common/test_event_queue_stress.cc).
     */
    std::uint64_t slabAllocations() const { return numSlabAllocs; }

    /**
     * Attach (or detach, with nullptr) the per-component dispatch
     * profile. Must be called before any event is scheduled and never
     * mid-run: tag bits are written at schedule time based on whether a
     * profile is attached, so toggling with events pending would strip
     * or misread tags. No-op in DBSIM_PROFILE=OFF builds.
     */
    void
    attachProfile(prof::QueueProfile *profile)
    {
#ifdef DBSIM_PROFILE
        panic_if(numPending != 0,
                 "attachProfile with %zu events pending", numPending);
        prof_ = profile;
#else
        (void)profile;
#endif
    }

  private:
    struct CbOps
    {
        void (*invokeAndDestroy)(unsigned char *storage);
        void (*destroy)(unsigned char *storage);
    };

    template <typename Fn>
    struct CbOpsFor
    {
        static void
        invokeAndDestroy(unsigned char *storage)
        {
            Fn *f = std::launder(reinterpret_cast<Fn *>(storage));
            (*f)();
            f->~Fn();
        }
        static void
        destroy(unsigned char *storage)
        {
            std::launder(reinterpret_cast<Fn *>(storage))->~Fn();
        }
        static constexpr CbOps ops = {&invokeAndDestroy, &destroy};
    };

    /** One scheduled event: an intrusive FIFO link plus the callback
     *  stored inline (trampoline table + construction in place). */
    struct EventNode
    {
        EventNode *next;
        const CbOps *ops;
        alignas(std::max_align_t) unsigned char storage[kInlineCallbackBytes];
    };

    /** All events of one cycle, in FIFO order. Exactly one bucket per
     *  distinct pending cycle is reachable for appends at any time. */
    struct Bucket
    {
        Cycle when;
        std::uint64_t seq;  ///< creation order; tie-break for re-opened cycles
        EventNode *head;
        EventNode *tail;
        Bucket *nextFree;
    };

    struct BucketLater
    {
        bool
        operator()(const Bucket *a, const Bucket *b) const
        {
            if (a->when != b->when) {
                return a->when > b->when;
            }
            return a->seq > b->seq;
        }
    };

    /** Direct-mapped cycle -> bucket cache; a displaced entry only costs
     *  a second bucket for that cycle, never correctness. */
    struct CacheSlot
    {
        Cycle when = 0;
        Bucket *bucket = nullptr;
    };

    static constexpr std::size_t kCacheSlots = 2048;  // power of two
    static constexpr std::size_t kNodesPerChunk = 1024;
    static constexpr std::size_t kBucketsPerChunk = 256;

    static std::size_t
    cacheIndex(Cycle when)
    {
        return static_cast<std::size_t>(when) & (kCacheSlots - 1);
    }

    static void
    appendTo(Bucket *b, EventNode *n)
    {
        if (b->head) {
            b->tail->next = n;
        } else {
            b->head = n;
        }
        b->tail = n;
    }

    EventNode *
    allocNode()
    {
        if (!freeNodes) {
            auto chunk = std::make_unique<EventNode[]>(kNodesPerChunk);
            for (std::size_t i = 0; i < kNodesPerChunk; ++i) {
                chunk[i].next = freeNodes;
                freeNodes = &chunk[i];
            }
            nodeSlabs.push_back(std::move(chunk));
            ++numSlabAllocs;
        }
        EventNode *n = freeNodes;
        freeNodes = n->next;
        return n;
    }

    void
    freeNode(EventNode *n)
    {
        n->next = freeNodes;
        freeNodes = n;
    }

    Bucket *
    allocBucket()
    {
        if (!freeBuckets) {
            auto chunk = std::make_unique<Bucket[]>(kBucketsPerChunk);
            for (std::size_t i = 0; i < kBucketsPerChunk; ++i) {
                chunk[i].nextFree = freeBuckets;
                freeBuckets = &chunk[i];
            }
            bucketSlabs.push_back(std::move(chunk));
            ++numSlabAllocs;
        }
        Bucket *b = freeBuckets;
        freeBuckets = b->nextFree;
        return b;
    }

    void
    freeBucket(Bucket *b)
    {
        // Un-cache the retired bucket so a later same-cycle schedule
        // (legal while now() has not advanced past it) cannot append to
        // recycled memory.
        CacheSlot &slot = cache[cacheIndex(b->when)];
        if (slot.bucket == b) {
            slot.bucket = nullptr;
        }
        b->nextFree = freeBuckets;
        freeBuckets = b;
    }

    /** The node's vtable with any profiler tag bits stripped. */
    static const CbOps *
    opsOf(const EventNode *n)
    {
#ifdef DBSIM_PROFILE
        return reinterpret_cast<const CbOps *>(
            reinterpret_cast<std::uintptr_t>(n->ops) & ~prof::kCompMask);
#else
        return n->ops;
#endif
    }

    /** Destroy the callbacks of a bucket's never-run events (dtor). */
    void
    drainBucket(Bucket *b)
    {
        if (!b) {
            return;
        }
        for (EventNode *n = b->head; n; n = n->next) {
            opsOf(n)->destroy(n->storage);
        }
    }

    Cycle curTime = 0;
    std::size_t numPending = 0;
    std::uint64_t numDispatched = 0;
    std::uint64_t numSlabAllocs = 0;
    std::uint64_t bucketSeq = 0;

    std::vector<Bucket *> heap;   ///< min-heap over (when, seq)
    Bucket *active = nullptr;     ///< bucket currently dispatching
    std::vector<CacheSlot> cache;

#ifdef DBSIM_PROFILE
    prof::QueueProfile *prof_ = nullptr;  ///< per-component dispatch times
#endif

    EventNode *freeNodes = nullptr;
    Bucket *freeBuckets = nullptr;
    std::vector<std::unique_ptr<EventNode[]>> nodeSlabs;
    std::vector<std::unique_ptr<Bucket[]>> bucketSlabs;
};

} // namespace dbsim

#endif // DBSIM_COMMON_EVENT_QUEUE_HH
