/**
 * @file
 * Discrete-event simulation kernel. A single global EventQueue drives the
 * whole system: cores, the shared LLC, and the DRAM controller schedule
 * callbacks at absolute cycle times. Events at the same cycle execute in
 * FIFO (schedule) order, which keeps the simulation deterministic.
 */

#ifndef DBSIM_COMMON_EVENT_QUEUE_HH
#define DBSIM_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace dbsim {

/**
 * Global discrete-event queue.
 *
 * Components schedule std::function callbacks at absolute cycle times.
 * Scheduling an event in the past is a simulator bug (panic); same-cycle
 * ties break by insertion order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() : curTime(0), nextSeq(0) {}

    /** Current simulation time (time of the last dispatched event). */
    Cycle now() const { return curTime; }

    /** Number of pending events. */
    std::size_t pending() const { return heap.size(); }

    /** True if no events remain. */
    bool empty() const { return heap.empty(); }

    /**
     * Schedule a callback at absolute time `when`.
     * @pre when >= now()
     */
    void
    schedule(Cycle when, Callback cb)
    {
        panic_if(when < curTime,
                 "event scheduled in the past (%lu < %lu)",
                 static_cast<unsigned long>(when),
                 static_cast<unsigned long>(curTime));
        heap.push(Event{when, nextSeq++, std::move(cb)});
    }

    /** Time of the earliest pending event; kCycleMax if none. */
    Cycle
    nextTime() const
    {
        return heap.empty() ? kCycleMax : heap.top().when;
    }

    /**
     * Dispatch the earliest event, advancing now().
     * @return false if the queue was empty.
     */
    bool
    step()
    {
        if (heap.empty()) {
            return false;
        }
        // The callback may schedule new events; move it out first.
        Event ev = heap.top();
        heap.pop();
        curTime = ev.when;
        ev.cb();
        return true;
    }

    /** Run events until the queue drains. */
    void
    runAll()
    {
        while (step()) {
        }
    }

    /** Run events with time <= limit; now() may end up past-limit-free. */
    void
    runUntil(Cycle limit)
    {
        while (!heap.empty() && heap.top().when <= limit) {
            step();
        }
        if (curTime < limit) {
            curTime = limit;
        }
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when) {
                return a.when > b.when;
            }
            return a.seq > b.seq;
        }
    };

    Cycle curTime;
    std::uint64_t nextSeq;
    std::priority_queue<Event, std::vector<Event>, Later> heap;
};

} // namespace dbsim

#endif // DBSIM_COMMON_EVENT_QUEUE_HH
