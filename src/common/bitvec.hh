/**
 * @file
 * Fixed-capacity dirty-bit vector used by DBI entries and the storage
 * model. Supports up to 128 bits with inline storage (a DRAM row of 8KB
 * holds 128 64-byte blocks, the largest granularity the paper evaluates).
 */

#ifndef DBSIM_COMMON_BITVEC_HH
#define DBSIM_COMMON_BITVEC_HH

#include <array>
#include <cstdint>

#include "logging.hh"
#include "types.hh"

namespace dbsim {

/**
 * A bit vector of up to 128 bits with popcount and iteration support.
 * Used for DBI dirty-bit vectors and the VWQ Set State Vector.
 */
class BitVec
{
  public:
    /** Construct an all-zero vector of the given width (1..128). */
    explicit BitVec(std::uint32_t num_bits = 128)
        : nbits(num_bits), words{0, 0}
    {
        panic_if(num_bits == 0 || num_bits > 128,
                 "BitVec width %u out of range", num_bits);
    }

    /** Number of bits in the vector. */
    std::uint32_t size() const { return nbits; }

    /** Read bit at idx. */
    bool
    test(std::uint32_t idx) const
    {
        panic_if(idx >= nbits, "BitVec::test index %u >= %u", idx, nbits);
        return (words[idx >> 6] >> (idx & 63)) & 1;
    }

    /** Set bit at idx. */
    void
    set(std::uint32_t idx)
    {
        panic_if(idx >= nbits, "BitVec::set index %u >= %u", idx, nbits);
        words[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    }

    /** Clear bit at idx. */
    void
    reset(std::uint32_t idx)
    {
        panic_if(idx >= nbits, "BitVec::reset index %u >= %u", idx, nbits);
        words[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    }

    /** Clear all bits. */
    void
    clear()
    {
        words[0] = 0;
        words[1] = 0;
    }

    /** Number of set bits. */
    std::uint32_t
    count() const
    {
        return static_cast<std::uint32_t>(__builtin_popcountll(words[0]) +
                                          __builtin_popcountll(words[1]));
    }

    /** True if no bit is set. */
    bool none() const { return words[0] == 0 && words[1] == 0; }

    /** True if at least one bit is set. */
    bool any() const { return !none(); }

    /**
     * Invoke fn(idx) for every set bit in ascending order.
     * @param fn callable taking a std::uint32_t bit index.
     */
    template <typename Fn>
    void
    forEachSet(Fn &&fn) const
    {
        for (int w = 0; w < 2; ++w) {
            std::uint64_t bits = words[w];
            while (bits) {
                std::uint32_t b =
                    static_cast<std::uint32_t>(__builtin_ctzll(bits));
                fn(static_cast<std::uint32_t>(w * 64) + b);
                bits &= bits - 1;
            }
        }
    }

    bool
    operator==(const BitVec &other) const
    {
        return nbits == other.nbits && words == other.words;
    }

  private:
    std::uint32_t nbits;
    std::array<std::uint64_t, 2> words;
};

} // namespace dbsim

#endif // DBSIM_COMMON_BITVEC_HH
