/**
 * @file
 * DRAM address mapping. Translates physical block addresses into
 * (row, bank, column) coordinates under the row-interleaved mapping the
 * paper's memory controller uses (Table 1), and provides the DBI's notion
 * of a "DBI row" — a granularity-sized group of consecutive blocks within
 * one DRAM row.
 */

#ifndef DBSIM_COMMON_ADDR_MAP_HH
#define DBSIM_COMMON_ADDR_MAP_HH

#include <cstdint>

#include "logging.hh"
#include "types.hh"

namespace dbsim {

/**
 * Row-interleaved DRAM address map.
 *
 * Physical address layout (low to high):
 *   [block offset | column | channel | bank | row]
 * so one DRAM row occupies rowBytes contiguous physical bytes within a
 * bank, consecutive rows rotate across channels first and then across
 * the banks of each channel. This matches the "open row, row
 * interleaving" controller configuration of Table 1 (one channel) and
 * extends it to multi-channel machines: whole DRAM rows stay within one
 * channel, so DBI rows never straddle channels.
 */
class DramAddrMap
{
  public:
    /**
     * @param row_bytes size of one DRAM row (row buffer), e.g. 8KB.
     * @param num_banks number of banks per rank.
     * @param num_channels channels rows interleave over (default 1,
     *        the Table 1 machine; with 1 the map is unchanged).
     */
    DramAddrMap(std::uint64_t row_bytes, std::uint32_t num_banks,
                std::uint32_t num_channels = 1)
        : rowBytes_(row_bytes), numBanks_(num_banks),
          numChannels_(num_channels),
          blocksPerRow_(static_cast<std::uint32_t>(row_bytes / kBlockBytes))
    {
        fatal_if(!isPowerOf2(row_bytes) || row_bytes < kBlockBytes,
                 "DRAM row size must be a power-of-two multiple of the "
                 "block size");
        fatal_if(!isPowerOf2(num_banks), "bank count must be a power of 2");
        fatal_if(!isPowerOf2(num_channels) || num_channels == 0,
                 "channel count must be a power of 2");
    }

    std::uint64_t rowBytes() const { return rowBytes_; }
    std::uint32_t numBanks() const { return numBanks_; }
    std::uint32_t numChannels() const { return numChannels_; }
    std::uint32_t blocksPerRow() const { return blocksPerRow_; }

    /** Global row identifier (unique across channels and banks). */
    std::uint64_t
    rowId(Addr addr) const
    {
        return addr / rowBytes_;
    }

    /** Channel the address maps to. */
    std::uint32_t
    channel(Addr addr) const
    {
        return static_cast<std::uint32_t>(rowId(addr) % numChannels_);
    }

    /** Bank the address maps to (within its channel). */
    std::uint32_t
    bank(Addr addr) const
    {
        return static_cast<std::uint32_t>((rowId(addr) / numChannels_) %
                                          numBanks_);
    }

    /** Row index within the bank (what the row decoder sees). */
    std::uint64_t
    rowInBank(Addr addr) const
    {
        return rowId(addr) / numChannels_ / numBanks_;
    }

    /** Index of the block within its DRAM row: 0..blocksPerRow-1. */
    std::uint32_t
    blockInRow(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr % rowBytes_) >> kBlockShift);
    }

    /** First byte address of the row containing addr. */
    Addr
    rowBase(Addr addr) const
    {
        return addr - (addr % rowBytes_);
    }

    /** Byte address of block `idx` within the row containing addr. */
    Addr
    blockInRowAddr(Addr addr, std::uint32_t idx) const
    {
        panic_if(idx >= blocksPerRow_, "block index %u out of row", idx);
        return rowBase(addr) + static_cast<Addr>(idx) * kBlockBytes;
    }

  private:
    std::uint64_t rowBytes_;
    std::uint32_t numBanks_;
    std::uint32_t numChannels_;
    std::uint32_t blocksPerRow_;
};

/**
 * The DBI's region map: a "DBI row" is `granularity` consecutive blocks
 * aligned within a DRAM row (granularity == blocksPerRow tracks whole
 * rows; smaller granularities split a row into multiple DBI rows, per
 * Section 4.2).
 */
class DbiRegionMap
{
  public:
    /** @param granularity blocks tracked per DBI entry (power of two). */
    explicit DbiRegionMap(std::uint32_t granularity)
        : gran(granularity),
          regionBytes(static_cast<std::uint64_t>(granularity) * kBlockBytes)
    {
        fatal_if(!isPowerOf2(granularity) || granularity == 0 ||
                 granularity > 128,
                 "DBI granularity %u must be a power of two in [1,128]",
                 granularity);
    }

    std::uint32_t granularity() const { return gran; }

    /** Region tag: identifies the DBI row containing addr. */
    std::uint64_t
    regionTag(Addr addr) const
    {
        return addr / regionBytes;
    }

    /** Bit position of addr's block within its DBI row. */
    std::uint32_t
    blockIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr % regionBytes) >>
                                          kBlockShift);
    }

    /** Byte address of block `idx` within region `tag`. */
    Addr
    blockAddr(std::uint64_t tag, std::uint32_t idx) const
    {
        panic_if(idx >= gran, "block index %u out of region", idx);
        return tag * regionBytes + static_cast<Addr>(idx) * kBlockBytes;
    }

  private:
    std::uint32_t gran;
    std::uint64_t regionBytes;
};

} // namespace dbsim

#endif // DBSIM_COMMON_ADDR_MAP_HH
