/**
 * @file
 * Deterministic pseudo-random number generation. All stochastic behaviour
 * in dbsim (workload generation, BIP coin flips, set sampling) draws from
 * seeded Xorshift64* generators so runs are exactly reproducible.
 */

#ifndef DBSIM_COMMON_RNG_HH
#define DBSIM_COMMON_RNG_HH

#include <cstdint>

namespace dbsim {

/**
 * Xorshift64* generator: tiny, fast, good enough statistical quality for
 * simulation workloads, and fully deterministic given the seed.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 0x9e3779b97f4a7c15ULL)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    std::uint64_t state;
};

} // namespace dbsim

#endif // DBSIM_COMMON_RNG_HH
