/**
 * @file
 * Host-side profiling primitives shared by the simulation kernel and
 * the telemetry-layer HostProfiler.
 *
 * The kernel cannot depend on src/telemetry, so the pieces the
 * EventQueue needs — the component tag an event is attributed to and
 * the per-queue accumulation slab — live here in src/common. The
 * aggregation/reporting half (telemetry::HostProfiler) builds on top.
 *
 * Attribution scheme: CbOps vtables are 8-byte aligned, so the low
 * three bits of EventNode::ops are free. When (and only when) a
 * QueueProfile is attached to a queue, schedule() folds the caller's
 * Comp tag into those bits and step() masks it back out, timing the
 * callback with a steady clock and charging the nanoseconds to the
 * tagged component. With no profile attached the tag bits are never
 * written, so the mask is a no-op and the dispatch path is one
 * predictable branch away from the unprofiled build; with
 * DBSIM_PROFILE off the hooks compile away entirely.
 */

#ifndef DBSIM_COMMON_PROF_HH
#define DBSIM_COMMON_PROF_HH

#include <chrono>
#include <cstddef>
#include <cstdint>

namespace dbsim::prof {

#ifdef DBSIM_PROFILE
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/**
 * Component an event's dispatch time is charged to: the component that
 * *scheduled* the event (so a fabric-delivered callback is charged to
 * Fabric even though it runs LLC or core code — the cost of cross-shard
 * traffic is exactly what the profiler exists to expose).
 */
enum Comp : std::uint8_t {
    Other = 0,
    Core = 1,
    Llc = 2,
    Dram = 3,
    Fabric = 4,
};

inline constexpr std::size_t kNumComps = 5;

/** Low-bit mask carrying the Comp tag inside a CbOps pointer. */
inline constexpr std::uintptr_t kCompMask = 0x7;
static_assert(kNumComps <= kCompMask + 1, "Comp must fit in 3 bits");

inline const char *
compName(std::size_t c)
{
    switch (c) {
      case Core: return "core";
      case Llc: return "llc";
      case Dram: return "dram";
      case Fabric: return "fabric";
      default: return "other";
    }
}

/** Monotonic host time in nanoseconds. */
inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Per-queue dispatch accounting, written only by the thread running
 * that queue's epoch (cache-line padded so neighboring shards never
 * false-share). Slots are sized to the full 3-bit tag space so a
 * masked value can never index out of bounds.
 */
struct alignas(64) QueueProfile
{
    std::uint64_t ns[kCompMask + 1] = {};
    std::uint64_t events[kCompMask + 1] = {};

    void
    record(std::uintptr_t comp, std::uint64_t delta_ns)
    {
        ns[comp] += delta_ns;
        ++events[comp];
    }
};

} // namespace dbsim::prof

#endif // DBSIM_COMMON_PROF_HH
