/**
 * @file
 * Sharded execution layer: the ShardContext handle components schedule
 * through, the time-stamped inter-shard mailbox (ShardFabric), and the
 * epoch worker pool.
 *
 * A shard is one execution partition of the simulated machine: it owns
 * an EventQueue, an LLC slice, and (when the machine has that many) a
 * DRAM channel. Within a shard every interaction is a direct call, as
 * before. Across shards, all traffic goes through the ShardFabric: a
 * message sent at cycle t is delivered at t + hopLatency into the
 * destination shard's queue, and hopLatency doubles as the conservative
 * lookahead of the epoch-barrier synchronization scheme:
 *
 *   - Shards execute epoch k = cycles [k*W, (k+1)*W) independently,
 *     each on its own EventQueue, where W == hopLatency.
 *   - A message sent during epoch k has deliverAt >= (k+1)*W, i.e. it
 *     can only matter in a *later* epoch, so running the shards of one
 *     epoch concurrently cannot miss or reorder any interaction.
 *   - At the barrier between epochs a single thread drains every lane
 *     in a fixed total order — (deliverAt, source shard, per-lane
 *     sequence number) — so delivery order is a pure function of the
 *     simulation, independent of how many worker threads ran the epoch
 *     or how their execution interleaved.
 *
 * That last point is the determinism argument: `--shards 1` and
 * `--shards N` produce bit-identical statistics because thread count
 * only decides which host thread runs a shard's epoch, never what any
 * shard observes.
 */

#ifndef DBSIM_COMMON_SHARD_HH
#define DBSIM_COMMON_SHARD_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "event_queue.hh"
#include "logging.hh"
#include "stats.hh"
#include "types.hh"

namespace dbsim {

class ShardFabric;

/**
 * Observer of cross-shard message lifecycle, for flight-recorder style
 * tracing. Purely passive: it sees (but cannot alter) every fabric
 * message, identified by a deterministic flow id that is unique over a
 * run and encodes (lane sequence, src, dst).
 *
 * Threading contract: onSend runs on the thread currently executing
 * shard `src` (mid-epoch), so it may touch src-shard-owned state only.
 * onDeliver runs single-threaded at the epoch barrier (inside
 * deliverAll), when no shard is executing.
 */
class FlowObserver
{
  public:
    virtual ~FlowObserver() = default;

    virtual void onSend(std::uint32_t src, std::uint32_t dst,
                        Cycle send_time, Cycle deliver_time,
                        std::uint64_t flow_id, const char *kind) = 0;
    virtual void onDeliver(std::uint32_t src, std::uint32_t dst,
                           Cycle deliver_time, std::uint64_t flow_id,
                           const char *kind) = 0;
};

/**
 * The handle through which a component reaches its simulation kernel:
 * which shard it lives on, that shard's EventQueue, and the fabric for
 * cross-shard traffic (nullptr on single-shard machines).
 *
 * Implicitly constructible from a bare EventQueue& so pre-shard code
 * (`Llc llc(cfg, dram, eq)`) keeps compiling: such components live on
 * shard 0 of an unsharded world.
 */
class ShardContext
{
  public:
    ShardContext(EventQueue &event_queue)  // NOLINT: implicit by design
        : q(&event_queue)
    {
    }

    ShardContext(std::uint32_t shard_id, EventQueue &event_queue,
                 ShardFabric *shard_fabric)
        : q(&event_queue), fab(shard_fabric), id(shard_id)
    {
    }

    EventQueue &queue() const { return *q; }
    std::uint32_t shard() const { return id; }

    /** The cross-shard mailbox; nullptr when the world has one shard. */
    ShardFabric *fabric() const { return fab; }
    bool sharded() const { return fab != nullptr; }

  private:
    EventQueue *q;
    ShardFabric *fab = nullptr;
    std::uint32_t id = 0;
};

/**
 * Time-stamped inter-shard mailbox.
 *
 * During an epoch each shard appends messages to its outgoing lanes;
 * a lane (src, dst) is written only by the thread running shard src,
 * so the epoch itself needs no locking. At the epoch barrier a single
 * thread calls deliverAll(), which merges every destination's incoming
 * lanes in (deliverAt, src, seq) order and schedules the callbacks
 * into the destination queues. Messages sent at cycle t deliver at
 * t + hopLatency.
 */
class ShardFabric
{
  public:
    using Handler = std::function<void(Cycle)>;

    ShardFabric(std::uint32_t num_shards, Cycle hop_latency)
        : numShards_(num_shards), hop(hop_latency),
          lanes(std::size_t(num_shards) * num_shards)
    {
        fatal_if(num_shards < 1, "fabric needs at least one shard");
        fatal_if(hop_latency < 1,
                 "cross-shard hop latency must be >= 1 cycle (it is the "
                 "epoch lookahead)");
    }

    std::uint32_t numShards() const { return numShards_; }

    /** The cross-shard latency; also the epoch window W. */
    Cycle hopLatency() const { return hop; }

    /**
     * Send a message from shard `src` to shard `dst` at cycle
     * `send_time`; `fn` runs on shard dst at send_time + hopLatency().
     * `kind` labels the message for tracing (static string; never
     * affects delivery). Called only by the thread currently running
     * shard src.
     */
    void
    send(std::uint32_t src, std::uint32_t dst, Cycle send_time, Handler fn,
         const char *kind = "msg")
    {
        Lane &lane = lanes[std::size_t(src) * numShards_ + dst];
        // Flow id: unique per run and recoverable to (src, dst). The
        // per-lane sequence makes it deterministic regardless of which
        // host thread runs the sending shard's epoch.
        const std::uint64_t id =
            (lane.nextSeq * numShards_ + src) * numShards_ + dst;
        lane.box.push_back(
            Message{send_time + hop, lane.nextSeq++, std::move(fn), id,
                    kind});
        if (observer) {
            observer->onSend(src, dst, send_time, send_time + hop, id,
                             kind);
        }
    }

    /**
     * Attach a passive flow observer (nullptr detaches). Call before
     * the run starts; the fabric never synchronizes observer access
     * beyond the epoch-barrier contract documented on FlowObserver.
     */
    void attachFlowObserver(FlowObserver *obs) { observer = obs; }

    /**
     * Barrier-time delivery: schedule every in-flight message into its
     * destination queue, in (deliverAt, src, seq) order per destination.
     * Single-threaded; no shard may be executing. `queues[s]` is shard
     * s's EventQueue.
     */
    void deliverAll(const std::vector<EventQueue *> &queues);

    /** Messages currently buffered in lanes (barrier-time only). */
    std::uint64_t inFlight() const;

    /** Messages delivered over the fabric's lifetime. */
    Counter statMessages;

    /** Register fabric counters for snapshotting. */
    void
    registerStats(StatSet &set)
    {
        set.add("fabric.messages", statMessages);
    }

  private:
    struct Message
    {
        Cycle deliverAt;
        std::uint64_t seq;
        Handler fn;
        std::uint64_t flowId;
        const char *kind;
    };

    /** One (src, dst) lane. Written only by src's thread mid-epoch;
     *  padded so lanes of different shards never share a cache line. */
    struct alignas(64) Lane
    {
        std::vector<Message> box;
        std::uint64_t nextSeq = 0;
    };

    std::uint32_t numShards_;
    Cycle hop;
    FlowObserver *observer = nullptr;
    std::vector<Lane> lanes;  ///< lane (src, dst) at src*numShards+dst
    std::vector<Message> merged;  ///< deliverAll scratch (reused)
};

/**
 * Persistent worker pool for epoch execution. run(fn) invokes
 * fn(worker_index) once per worker (index 0 runs on the calling
 * thread) and returns when all have finished — one fork/join barrier
 * per epoch without re-spawning threads. With one worker no threads
 * are created at all and run() is a plain call.
 */
class ShardWorkers
{
  public:
    explicit ShardWorkers(std::uint32_t num_workers);
    ~ShardWorkers();

    ShardWorkers(const ShardWorkers &) = delete;
    ShardWorkers &operator=(const ShardWorkers &) = delete;

    std::uint32_t count() const { return numWorkers; }

    /** Run fn(w) for w in [0, count()); blocks until all complete. */
    void run(const std::function<void(std::uint32_t)> &fn);

  private:
    void workerLoop(std::uint32_t index);

    std::uint32_t numWorkers;
    std::vector<std::thread> threads;

    std::mutex m;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    const std::function<void(std::uint32_t)> *work = nullptr;
    std::uint64_t generation = 0;
    std::uint32_t running = 0;
    bool stopping = false;
};

} // namespace dbsim

#endif // DBSIM_COMMON_SHARD_HH
