/**
 * @file
 * Lightweight statistics counters with snapshot support. Every component
 * keeps named counters; a StatSet can be snapshotted at the end of warmup
 * so reported deltas cover only the measurement window, matching the
 * paper's 200M-warmup / 300M-measure methodology (scaled down).
 */

#ifndef DBSIM_COMMON_STATS_HH
#define DBSIM_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dbsim {

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() : total(0), mark(0) {}

    void operator++() { ++total; }
    void operator++(int) { ++total; }
    void operator+=(std::uint64_t n) { total += n; }

    /** Lifetime count. */
    std::uint64_t value() const { return total; }

    /** Record the warmup boundary. */
    void snapshot() { mark = total; }

    /** Count accumulated since the last snapshot. */
    std::uint64_t sinceSnapshot() const { return total - mark; }

  private:
    std::uint64_t total;
    std::uint64_t mark;
};

/**
 * A named registry of counters owned by one component. Registration is
 * by reference: the component owns the Counter objects and registers them
 * for dumping/snapshotting.
 */
class StatSet
{
  public:
    explicit StatSet(std::string owner_name) : name(std::move(owner_name)) {}

    /** Register a counter under `stat_name`. */
    void
    add(const std::string &stat_name, Counter &c)
    {
        entries.push_back({stat_name, &c});
    }

    /** Snapshot every registered counter (warmup boundary). */
    void
    snapshotAll()
    {
        for (auto &e : entries) {
            e.counter->snapshot();
        }
    }

    /**
     * Map of name -> since-snapshot value. Counters registered under
     * the same name (e.g. one per core) are summed, so multi-core
     * collections report system-wide aggregates.
     */
    std::map<std::string, std::uint64_t>
    collect() const
    {
        std::map<std::string, std::uint64_t> out;
        for (const auto &e : entries) {
            out[e.name] += e.counter->sinceSnapshot();
        }
        return out;
    }

    const std::string &ownerName() const { return name; }

  private:
    struct Entry
    {
        std::string name;
        Counter *counter;
    };

    std::string name;
    std::vector<Entry> entries;
};

} // namespace dbsim

#endif // DBSIM_COMMON_STATS_HH
