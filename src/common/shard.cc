#include "shard.hh"

#include <algorithm>

namespace dbsim {

void
ShardFabric::deliverAll(const std::vector<EventQueue *> &queues)
{
    fatal_if(queues.size() != numShards_,
             "fabric has %u shards but %zu queues", numShards_,
             queues.size());
    for (std::uint32_t dst = 0; dst < numShards_; ++dst) {
        merged.clear();
        // Merge the incoming lanes of `dst` into one deterministic
        // stream. Sort keys are unique — seq is per-lane and src breaks
        // inter-lane ties — so the order is a total order independent of
        // which host threads produced the messages.
        for (std::uint32_t src = 0; src < numShards_; ++src) {
            Lane &lane = lanes[std::size_t(src) * numShards_ + dst];
            for (Message &msg : lane.box) {
                merged.push_back(std::move(msg));
                merged.back().seq = merged.back().seq * numShards_ + src;
            }
            lane.box.clear();
        }
        std::sort(merged.begin(), merged.end(),
                  [](const Message &a, const Message &b) {
                      if (a.deliverAt != b.deliverAt) {
                          return a.deliverAt < b.deliverAt;
                      }
                      return a.seq < b.seq;
                  });
        for (Message &msg : merged) {
            statMessages += 1;
            if (observer) {
                // src is recoverable from the flow id; Message does not
                // carry it separately.
                const auto src = static_cast<std::uint32_t>(
                    (msg.flowId / numShards_) % numShards_);
                observer->onDeliver(src, dst, msg.deliverAt, msg.flowId,
                                    msg.kind);
            }
            queues[dst]->schedule(
                msg.deliverAt,
                [fn = std::move(msg.fn), at = msg.deliverAt] { fn(at); },
                prof::Fabric);
        }
    }
    merged.clear();
}

std::uint64_t
ShardFabric::inFlight() const
{
    std::uint64_t n = 0;
    for (const Lane &lane : lanes) {
        n += lane.box.size();
    }
    return n;
}

ShardWorkers::ShardWorkers(std::uint32_t num_workers)
    : numWorkers(num_workers ? num_workers : 1)
{
    threads.reserve(numWorkers - 1);
    for (std::uint32_t w = 1; w < numWorkers; ++w) {
        threads.emplace_back([this, w] { workerLoop(w); });
    }
}

ShardWorkers::~ShardWorkers()
{
    {
        std::lock_guard<std::mutex> lock(m);
        stopping = true;
    }
    cvStart.notify_all();
    for (std::thread &t : threads) {
        t.join();
    }
}

void
ShardWorkers::run(const std::function<void(std::uint32_t)> &fn)
{
    if (numWorkers == 1) {
        fn(0);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(m);
        work = &fn;
        running = numWorkers - 1;
        ++generation;
    }
    cvStart.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lock(m);
    cvDone.wait(lock, [this] { return running == 0; });
    work = nullptr;
}

void
ShardWorkers::workerLoop(std::uint32_t index)
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::uint32_t)> *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(m);
            cvStart.wait(lock, [&] {
                return stopping || generation != seen;
            });
            if (stopping) {
                return;
            }
            seen = generation;
            job = work;
        }
        (*job)(index);
        {
            std::lock_guard<std::mutex> lock(m);
            --running;
        }
        cvDone.notify_one();
    }
}

} // namespace dbsim
