/**
 * @file
 * Error/status reporting helpers in the gem5 tradition: panic() for
 * simulator bugs, fatal() for user/configuration errors, warn()/inform()
 * for status messages.
 */

#ifndef DBSIM_COMMON_LOGGING_HH
#define DBSIM_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace dbsim {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

namespace detail {

/** Minimal printf-style formatter returning std::string. */
std::string vformat(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace dbsim

/** Abort: something happened that indicates a simulator bug. */
#define panic(...) \
    ::dbsim::panicImpl(__FILE__, __LINE__, ::dbsim::detail::vformat(__VA_ARGS__))

/** Exit with error: the simulation cannot continue due to user error. */
#define fatal(...) \
    ::dbsim::fatalImpl(__FILE__, __LINE__, ::dbsim::detail::vformat(__VA_ARGS__))

/** Non-fatal warning to the user. */
#define warn(...) \
    ::dbsim::warnImpl(::dbsim::detail::vformat(__VA_ARGS__))

/** Informational status message. */
#define inform(...) \
    ::dbsim::informImpl(::dbsim::detail::vformat(__VA_ARGS__))

/** panic() unless the condition holds. */
#define panic_if(cond, ...) \
    do { \
        if (cond) { \
            panic(__VA_ARGS__); \
        } \
    } while (0)

/** fatal() unless the condition holds. */
#define fatal_if(cond, ...) \
    do { \
        if (cond) { \
            fatal(__VA_ARGS__); \
        } \
    } while (0)

#endif // DBSIM_COMMON_LOGGING_HH
