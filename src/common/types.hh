/**
 * @file
 * Fundamental scalar types and constants used throughout dbsim.
 */

#ifndef DBSIM_COMMON_TYPES_HH
#define DBSIM_COMMON_TYPES_HH

#include <cstdint>
#include <limits>

namespace dbsim {

/** Physical byte address. */
using Addr = std::uint64_t;

/** Simulation time in CPU cycles. */
using Cycle = std::uint64_t;

/** Sentinel for "no address". */
constexpr Addr kInvalidAddr = std::numeric_limits<Addr>::max();

/** Sentinel for "never" / unknown time. */
constexpr Cycle kCycleMax = std::numeric_limits<Cycle>::max();

/** Cache block size used uniformly across the hierarchy (Table 1). */
constexpr std::uint32_t kBlockBytes = 64;

/** log2(kBlockBytes). */
constexpr std::uint32_t kBlockShift = 6;

/** Strip the block offset from a byte address. */
constexpr Addr
blockAlign(Addr addr)
{
    return addr & ~static_cast<Addr>(kBlockBytes - 1);
}

/** Block number (byte address divided by block size). */
constexpr Addr
blockNumber(Addr addr)
{
    return addr >> kBlockShift;
}

/** Integer log2 for powers of two. */
constexpr std::uint32_t
floorLog2(std::uint64_t x)
{
    std::uint32_t r = 0;
    while (x > 1) {
        x >>= 1;
        ++r;
    }
    return r;
}

/** True if x is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace dbsim

#endif // DBSIM_COMMON_TYPES_HH
