#include "auditor.hh"

#include <unordered_set>

#include "common/logging.hh"
#include "dbi/dbi.hh"
#include "llc/llc.hh"

namespace dbsim::audit {

InvariantAuditor::InvariantAuditor(Llc &llc, const AuditConfig &config)
    : subject(llc), cfg(config), ring(config.traceDepth)
{
    fatal_if(cfg.checkEvery == 0, "auditor checkEvery must be positive");
    subject.attachAuditor(this);
}

InvariantAuditor::~InvariantAuditor()
{
    subject.attachAuditor(nullptr);
}

void
InvariantAuditor::onWritebackIn(Addr block_addr, Cycle when)
{
    ring.push(DirtyEventKind::WritebackIn, block_addr, when);
    ++events;
    ++sinceCheck;
    model.onWritebackIn(block_addr);
}

void
InvariantAuditor::onFill(Addr block_addr, bool dirty, Cycle when)
{
    ring.push(dirty ? DirtyEventKind::FillDirty : DirtyEventKind::Fill,
              block_addr, when);
    ++events;
    ++sinceCheck;
    model.onFill(block_addr, dirty);
}

void
InvariantAuditor::onEviction(Addr block_addr, Cycle when)
{
    ring.push(DirtyEventKind::Eviction, block_addr, when);
    ++events;
    ++sinceCheck;
    if (!model.onEviction(block_addr)) {
        // I4: the mechanism displaced a block whose latest data never
        // reached memory. This is the silent-corruption case the
        // periodic checks could only catch after the fact.
        fail("block evicted while dirty (memory update lost)",
             block_addr);
    }
}

void
InvariantAuditor::onWbToDram(Addr block_addr, Cycle when)
{
    ring.push(DirtyEventKind::WbToDram, block_addr, when);
    ++events;
    ++sinceCheck;
    model.onWbToDram(block_addr);
}

void
InvariantAuditor::onOperationEnd()
{
    if (sinceCheck >= cfg.checkEvery) {
        checkNow();
    }
}

std::vector<Addr>
InvariantAuditor::mechanismDirtyBlocks() const
{
    std::vector<Addr> blocks;
    if (const Dbi *d = subject.dbiIndex()) {
        d->forEachDirtyBlock([&](Addr a) { blocks.push_back(a); });
        return blocks;
    }
    const TagStore &tags = subject.tags();
    for (std::uint32_t s = 0; s < tags.numSets(); ++s) {
        for (std::uint32_t w = 0; w < tags.assoc(); ++w) {
            const TagStore::Entry &e = tags.entryAt(s, w);
            if (e.valid && e.dirty) {
                blocks.push_back(e.block);
            }
        }
    }
    return blocks;
}

void
InvariantAuditor::checkNow()
{
    ++checks;
    sinceCheck = 0;

    const TagStore &tags = subject.tags();
    std::vector<Addr> mech_list = mechanismDirtyBlocks();
    std::unordered_set<Addr> mech(mech_list.begin(), mech_list.end());

    // I1 (mechanism -> shadow) and I2: everything the mechanism calls
    // dirty must be ground-truth dirty and resident.
    for (Addr a : mech_list) {
        if (!model.isDirty(a)) {
            fail("mechanism marks a ground-truth-clean block dirty", a);
        }
        if (!tags.contains(a)) {
            fail("dirty block not resident in the cache", a);
        }
    }

    // I1 (shadow -> mechanism): no dirty block may be forgotten.
    for (Addr a : model.dirtyBlocks()) {
        if (!mech.count(a)) {
            fail("mechanism lost a dirty block (update would be lost)",
                 a);
        }
    }

    if (const Dbi *d = subject.dbiIndex()) {
        // I3: the DBI is the only dirty-state source, and its own
        // aggregate count agrees with ground truth.
        if (tags.countDirty() != 0) {
            fail("tag store of a DBI cache carries dirty bits", 0);
        }
        if (d->countDirtyBlocks() != model.countDirty()) {
            fail("DBI dirty-block count diverges from ground truth", 0);
        }
    }
}

void
InvariantAuditor::fail(const char *what, Addr addr)
{
    ring.dump(stderr);
    panic("dirty-state audit: %s (block %#llx, after %llu events, "
          "%llu checks)",
          what, static_cast<unsigned long long>(addr),
          static_cast<unsigned long long>(events),
          static_cast<unsigned long long>(checks));
}

} // namespace dbsim::audit
