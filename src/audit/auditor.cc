#include "auditor.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "dbi/dbi.hh"
#include "llc/llc.hh"

namespace dbsim::audit {

InvariantAuditor::InvariantAuditor(Llc &llc, const AuditConfig &config)
    : subject(llc), cfg(config), ring(config.traceDepth)
{
    fatal_if(cfg.checkEvery == 0, "auditor checkEvery must be positive");
    subject.attachAuditor(this);
}

InvariantAuditor::~InvariantAuditor()
{
    subject.attachAuditor(nullptr);
}

void
InvariantAuditor::onWritebackIn(Addr block_addr, Cycle when)
{
    ring.push(DirtyEventKind::WritebackIn, block_addr, when);
    ++events;
    ++sinceCheck;
    model.onWritebackIn(block_addr);
}

void
InvariantAuditor::onFill(Addr block_addr, bool dirty, Cycle when)
{
    ring.push(dirty ? DirtyEventKind::FillDirty : DirtyEventKind::Fill,
              block_addr, when);
    ++events;
    ++sinceCheck;
    model.onFill(block_addr, dirty);
}

void
InvariantAuditor::onEviction(Addr block_addr, Cycle when)
{
    ring.push(DirtyEventKind::Eviction, block_addr, when);
    ++events;
    ++sinceCheck;
    if (!model.onEviction(block_addr)) {
        // I4: the mechanism displaced a block whose latest data never
        // reached memory. This is the silent-corruption case the
        // periodic checks could only catch after the fact.
        fail("block evicted while dirty (memory update lost)",
             block_addr);
    }
}

void
InvariantAuditor::onWbToDram(Addr block_addr, Cycle when)
{
    ring.push(DirtyEventKind::WbToDram, block_addr, when);
    ++events;
    ++sinceCheck;
    model.onWbToDram(block_addr);
}

void
InvariantAuditor::onOperationEnd()
{
    if (sinceCheck >= cfg.checkEvery) {
        checkNow();
    }
}

std::vector<Addr>
InvariantAuditor::mechanismDirtyBlocks() const
{
    std::vector<Addr> blocks;
    if (const Dbi *d = subject.dbiIndex()) {
        d->forEachDirtyBlock([&](Addr a) { blocks.push_back(a); });
        return blocks;
    }
    const TagStore &tags = subject.tags();
    for (std::uint32_t s = 0; s < tags.numSets(); ++s) {
        for (std::uint32_t w = 0; w < tags.assoc(); ++w) {
            const TagStore::Entry &e = tags.entryAt(s, w);
            if (e.valid && e.dirty) {
                blocks.push_back(e.block);
            }
        }
    }
    return blocks;
}

void
InvariantAuditor::checkNow()
{
    ++checks;
    sinceCheck = 0;

    const TagStore &tags = subject.tags();
    std::vector<Addr> mech_list = mechanismDirtyBlocks();

    // I1 (mechanism -> shadow) and I2: everything the mechanism calls
    // dirty must be ground-truth dirty and resident.
    for (Addr a : mech_list) {
        if (!model.isDirty(a)) {
            fail("mechanism marks a ground-truth-clean block dirty", a);
        }
        if (!tags.contains(a)) {
            fail("dirty block not resident in the cache", a);
        }
    }

    // I1 (shadow -> mechanism): no dirty block may be forgotten. Both
    // sides hold distinct blocks, so mech ⊆ shadow (checked above) plus
    // equal cardinality proves set equality; the per-block search runs
    // only on the failure path, to name a lost block.
    // The tag store's incremental dirty count must agree with the scan
    // of the authoritative per-entry bits we just did (conventional
    // orgs only; DBI tag stores are checked against zero below).
    if (!subject.dbiIndex() && tags.countDirty() != mech_list.size()) {
        fail("tag store dirty count diverges from its own dirty bits",
             0);
    }

    if (mech_list.size() != model.countDirty()) {
        std::sort(mech_list.begin(), mech_list.end());
        model.forEachDirty([&](Addr a) {
            if (!std::binary_search(mech_list.begin(), mech_list.end(),
                                    a)) {
                fail("mechanism lost a dirty block (update would be "
                     "lost)",
                     a);
            }
        });
        fail("mechanism dirty count diverges from ground truth", 0);
    }

    if (const Dbi *d = subject.dbiIndex()) {
        // I3: the DBI is the only dirty-state source, and its own
        // aggregate count agrees with ground truth. The O(1) count
        // catches any dirty transition routed through the tag store's
        // API; the rotating stripe below re-verifies the per-entry
        // bits themselves across successive checks.
        if (tags.countDirty() != 0) {
            fail("tag store of a DBI cache carries dirty bits", 0);
        }
        std::uint32_t stripe =
            std::max<std::uint32_t>(1, tags.numSets() / 64);
        for (std::uint32_t i = 0; i < stripe; ++i) {
            std::uint32_t s = sweepCursor;
            sweepCursor = (sweepCursor + 1) % tags.numSets();
            for (std::uint32_t w = 0; w < tags.assoc(); ++w) {
                if (tags.entryAt(s, w).dirty) {
                    fail("tag store of a DBI cache carries dirty bits",
                         tags.entryAt(s, w).block);
                }
            }
        }
        if (d->countDirtyBlocks() != model.countDirty()) {
            fail("DBI dirty-block count diverges from ground truth", 0);
        }
    }
}

void
InvariantAuditor::fail(const char *what, Addr addr)
{
    // On sliced machines each slice has its own auditor; the shard id
    // in the dump says which slice's event stream follows.
    std::fprintf(stderr, "[shard %u] dirty-state audit failure, "
                         "event trace:\n",
                 cfg.shardId);
    ring.dump(stderr);
    panic("dirty-state audit [shard %u]: %s (block %#llx, after %llu "
          "events, %llu checks)",
          cfg.shardId, what, static_cast<unsigned long long>(addr),
          static_cast<unsigned long long>(events),
          static_cast<unsigned long long>(checks));
}

} // namespace dbsim::audit
