/**
 * @file
 * DCacheAuditor: the shadow model's second dirty level. The LLC's
 * InvariantAuditor certifies dirty bookkeeping between the private
 * levels and the LLC; with a DRAM cache interposed below, a block's
 * latest data can additionally live in the stacked DRAM without having
 * reached backing DDR. This auditor replays the DramCache's raw event
 * stream into its own shadow sets and cross-checks the mechanism's
 * dirty/residency state at operation boundaries:
 *
 *   D1. a block is dcache-dirty in the mechanism <=> the shadow says
 *       its latest data has not reached backing DDR (exact in index
 *       mode; page-level in the dirty-in-tags ablation, whose per-page
 *       bit cannot distinguish blocks);
 *   D2. every shadow-dirty block is resident in the DRAM cache;
 *   D3. residency agrees in aggregate (valid-block census);
 *   D4. no page is ever evicted while a shadow-dirty block inside it
 *       has not been written back (its update would be lost) — checked
 *       per eviction event;
 *   D5. in index mode, no clean block is ever written back (the exact
 *       index never generates redundant DDR traffic).
 *
 * Like every observer in the codebase it is strictly passive: audited
 * and unaudited runs are cycle- and stat-identical.
 */

#ifndef DBSIM_AUDIT_DCACHE_AUDITOR_HH
#define DBSIM_AUDIT_DCACHE_AUDITOR_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "audit/auditor.hh"
#include "dcache/dcache.hh"

namespace dbsim::audit {

class DCacheAuditor : public DCacheObserver
{
  public:
    /** Attaches itself to `dcache`; detaches on destruction. */
    explicit DCacheAuditor(DramCache &dcache,
                           const AuditConfig &config = {});
    ~DCacheAuditor() override;

    DCacheAuditor(const DCacheAuditor &) = delete;
    DCacheAuditor &operator=(const DCacheAuditor &) = delete;

    // DCacheObserver
    void onFill(Addr block_addr, Cycle when) override;
    void onWritebackIn(Addr block_addr, Cycle when) override;
    void onBlockCleaned(Addr block_addr, Cycle when) override;
    void onPageEvict(Addr page_base, Cycle when) override;
    void onOperationEnd() override;

    /** Run the full cross-check now; panics on divergence. */
    void checkNow();

    /**
     * End-of-run differential: the mechanism's flush set must cover the
     * shadow dirty set exactly (index mode) or as a superset whose
     * dirty-page footprint matches (tags mode). Panics on divergence.
     */
    void checkFinal();

    /** Blocks a full flush would write back, as the mechanism sees it,
     *  sorted. */
    std::vector<Addr> mechanismFlushBlocks() const;

    /** Ground-truth dcache-dirty blocks, sorted. */
    std::vector<Addr> shadowDirtyBlocks() const;

    std::uint64_t eventsObserved() const { return events; }
    std::uint64_t checksRun() const { return checks; }

  private:
    [[noreturn]] void fail(const char *what, Addr addr);

    DramCache &subject;
    AuditConfig cfg;

    /** Blocks whose latest data is in the dcache but not backing DDR. */
    std::unordered_set<Addr> dirty;
    /** Blocks resident (valid) in the dcache. */
    std::unordered_set<Addr> resident;

    std::uint64_t events = 0;
    std::uint64_t sinceCheck = 0;
    std::uint64_t checks = 0;
};

} // namespace dbsim::audit

#endif // DBSIM_AUDIT_DCACHE_AUDITOR_HH
