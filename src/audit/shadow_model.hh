/**
 * @file
 * Ground-truth model of dirty state and memory content. The shadow
 * model replays the same event stream the LLC mechanisms act on —
 * writeback-in, fill, eviction, writeback-to-DRAM — but with the
 * simplest possible bookkeeping, so any divergence between it and a
 * mechanism's own structures (tag-store dirty bits or the DBI) is a
 * mechanism bug, not a model subtlety.
 *
 * Content is modeled as a per-block version counter: every writeback
 * into the LLC bumps the block's version ("new data arrived"), and a
 * writeback to DRAM publishes the current version to memory. A block is
 * dirty exactly while its cached version is ahead of memory's. The
 * "final memory image" is what memory would hold after flushing a given
 * dirty set — mechanisms that track dirtiness correctly produce
 * identical images; a lost dirty bit leaves a stale version behind.
 */

#ifndef DBSIM_AUDIT_SHADOW_MODEL_HH
#define DBSIM_AUDIT_SHADOW_MODEL_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hh"

namespace dbsim::audit {

/** Final memory image: every block ever written -> version held. */
using MemoryImage = std::map<Addr, std::uint64_t>;

class ShadowDirtyModel
{
  public:
    /** A writeback request carried new data for `addr` into the LLC. */
    void
    onWritebackIn(Addr addr)
    {
        ++cacheVersion[addr];
        dirty.insert(addr);
    }

    /** `addr` was filled (insert or resident merge) with `is_dirty`. */
    void
    onFill(Addr addr, bool is_dirty)
    {
        resident.insert(addr);
        if (is_dirty) {
            dirty.insert(addr);
        }
    }

    /**
     * `addr` was displaced from the cache, after the mechanism ran its
     * eviction handling. @return false if the block was still dirty —
     * its latest data never reached memory (a lost update).
     */
    bool
    onEviction(Addr addr)
    {
        resident.erase(addr);
        return dirty.count(addr) == 0;
    }

    /** `addr`'s data was written back: memory now holds the latest. */
    void
    onWbToDram(Addr addr)
    {
        memVersion[addr] = cacheVersion[addr];
        dirty.erase(addr);
    }

    bool isDirty(Addr addr) const { return dirty.count(addr) != 0; }
    bool isResident(Addr addr) const { return resident.count(addr) != 0; }
    std::size_t countDirty() const { return dirty.size(); }

    const std::unordered_set<Addr> &dirtyBlocks() const { return dirty; }

    /**
     * Memory image after flushing `flush_list` (a mechanism's idea of
     * the dirty blocks). Flushing a block publishes its latest cached
     * version; blocks the mechanism wrongly believes clean keep the
     * stale version memory last saw.
     */
    MemoryImage
    finalImage(const std::vector<Addr> &flush_list) const
    {
        MemoryImage img;
        for (const auto &[addr, ver] : memVersion) {
            if (ver != 0) {
                img[addr] = ver;
            }
        }
        for (Addr a : flush_list) {
            auto it = cacheVersion.find(a);
            if (it != cacheVersion.end()) {
                img[a] = it->second;
            }
        }
        return img;
    }

    /** Image after flushing the shadow (ground-truth) dirty set. */
    MemoryImage
    finalImage() const
    {
        return finalImage({dirty.begin(), dirty.end()});
    }

  private:
    std::unordered_set<Addr> dirty;     ///< ground-truth dirty blocks
    std::unordered_set<Addr> resident;  ///< blocks in the cache
    std::unordered_map<Addr, std::uint64_t> cacheVersion;
    std::unordered_map<Addr, std::uint64_t> memVersion;
};

} // namespace dbsim::audit

#endif // DBSIM_AUDIT_SHADOW_MODEL_HH
