/**
 * @file
 * Ground-truth model of dirty state and memory content. The shadow
 * model replays the same event stream the LLC mechanisms act on —
 * writeback-in, fill, eviction, writeback-to-DRAM — but with the
 * simplest possible bookkeeping, so any divergence between it and a
 * mechanism's own structures (tag-store dirty bits or the DBI) is a
 * mechanism bug, not a model subtlety.
 *
 * Content is modeled as a per-block version counter: every writeback
 * into the LLC bumps the block's version ("new data arrived"), and a
 * writeback to DRAM publishes the current version to memory. A block is
 * dirty exactly while its cached version is ahead of memory's. The
 * "final memory image" is what memory would hold after flushing a given
 * dirty set — mechanisms that track dirtiness correctly produce
 * identical images; a lost dirty bit leaves a stale version behind.
 *
 * The model sits on the auditor's per-event path (every writeback/fill/
 * eviction in an audited run), so its state lives in one open-addressed
 * hash table — one probe per event instead of the four node-based
 * std::unordered containers this used to shard into.
 */

#ifndef DBSIM_AUDIT_SHADOW_MODEL_HH
#define DBSIM_AUDIT_SHADOW_MODEL_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.hh"

namespace dbsim::audit {

/** Final memory image: every block ever written -> version held. */
using MemoryImage = std::map<Addr, std::uint64_t>;

class ShadowDirtyModel
{
  public:
    ShadowDirtyModel() : table(kInitialSlots) {}

    /** A writeback request carried new data for `addr` into the LLC. */
    void
    onWritebackIn(Addr addr)
    {
        std::size_t i = fetch(addr);
        Record &r = table[i];
        ++r.cacheVersion;
        r.flags |= kVersioned;
        markDirty(i);
    }

    /** `addr` was filled (insert or resident merge) with `is_dirty`. */
    void
    onFill(Addr addr, bool is_dirty)
    {
        std::size_t i = fetch(addr);
        table[i].flags |= kResident;
        if (is_dirty) {
            markDirty(i);
        }
    }

    /**
     * `addr` was displaced from the cache, after the mechanism ran its
     * eviction handling. @return false if the block was still dirty —
     * its latest data never reached memory (a lost update).
     */
    bool
    onEviction(Addr addr)
    {
        Record *r = find(addr);
        if (!r) {
            return true;
        }
        r->flags &= static_cast<std::uint8_t>(~kResident);
        return !(r->flags & kDirty);
    }

    /** `addr`'s data was written back: memory now holds the latest. */
    void
    onWbToDram(Addr addr)
    {
        Record &r = table[fetch(addr)];
        r.memVersion = r.cacheVersion;
        r.flags |= kVersioned;
        if (r.flags & kDirty) {
            r.flags &= static_cast<std::uint8_t>(~kDirty);
            --dirtyCount;
            maybeCompactDirtyList();
        }
    }

    bool
    isDirty(Addr addr) const
    {
        const Record *r = find(addr);
        return r && (r->flags & kDirty);
    }

    bool
    isResident(Addr addr) const
    {
        const Record *r = find(addr);
        return r && (r->flags & kResident);
    }

    std::size_t countDirty() const { return dirtyCount; }

    /**
     * Invoke fn(addr) for every ground-truth-dirty block. Iterates the
     * dirty-slot list (length <= 2x the dirty count by compaction), not
     * the whole table, so audit checks stay O(dirty blocks).
     */
    template <typename Fn>
    void
    forEachDirty(Fn &&fn) const
    {
        for (std::size_t i : dirtySlots) {
            if (table[i].flags & kDirty) {
                fn(table[i].addr);
            }
        }
    }

    /**
     * Memory image after flushing `flush_list` (a mechanism's idea of
     * the dirty blocks). Flushing a block publishes its latest cached
     * version; blocks the mechanism wrongly believes clean keep the
     * stale version memory last saw.
     */
    MemoryImage
    finalImage(const std::vector<Addr> &flush_list) const
    {
        MemoryImage img;
        for (const Record &r : table) {
            if ((r.flags & kUsed) && r.memVersion != 0) {
                img[r.addr] = r.memVersion;
            }
        }
        for (Addr a : flush_list) {
            // Only blocks with version history (writeback-in or
            // writeback-to-DRAM) carry a cached version to publish.
            const Record *r = find(a);
            if (r && (r->flags & kVersioned)) {
                img[a] = r->cacheVersion;
            }
        }
        return img;
    }

    /** Image after flushing the shadow (ground-truth) dirty set. */
    MemoryImage
    finalImage() const
    {
        std::vector<Addr> dirty;
        dirty.reserve(dirtyCount);
        forEachDirty([&](Addr a) { dirty.push_back(a); });
        return finalImage(dirty);
    }

  private:
    static constexpr std::uint8_t kUsed = 1;
    static constexpr std::uint8_t kDirty = 2;
    static constexpr std::uint8_t kResident = 4;
    /** Block has version history (appeared in a version map). */
    static constexpr std::uint8_t kVersioned = 8;
    /** Record's slot is tracked in dirtySlots. */
    static constexpr std::uint8_t kInList = 16;

    static constexpr std::size_t kInitialSlots = 4096;  // power of two

    struct Record
    {
        Addr addr = 0;
        std::uint64_t cacheVersion = 0;
        std::uint64_t memVersion = 0;
        std::uint8_t flags = 0;
    };

    static std::size_t
    probeStart(Addr addr, std::size_t capacity)
    {
        // Fibonacci hash of the block number; capacity is a power of 2.
        std::uint64_t h =
            (addr >> kBlockShift) * 0x9e3779b97f4a7c15ULL;
        return static_cast<std::size_t>(h & (capacity - 1));
    }

    const Record *
    find(Addr addr) const
    {
        std::size_t mask = table.size() - 1;
        std::size_t i = probeStart(addr, table.size());
        while (table[i].flags & kUsed) {
            if (table[i].addr == addr) {
                return &table[i];
            }
            i = (i + 1) & mask;
        }
        return nullptr;
    }

    Record *
    find(Addr addr)
    {
        return const_cast<Record *>(
            static_cast<const ShadowDirtyModel *>(this)->find(addr));
    }

    /** Find-or-insert; grows the table at 70% load. @return slot. */
    std::size_t
    fetch(Addr addr)
    {
        if (used * 10 >= table.size() * 7) {
            grow();
        }
        std::size_t mask = table.size() - 1;
        std::size_t i = probeStart(addr, table.size());
        while (table[i].flags & kUsed) {
            if (table[i].addr == addr) {
                return i;
            }
            i = (i + 1) & mask;
        }
        table[i].addr = addr;
        table[i].flags = kUsed;
        ++used;
        return i;
    }

    /** Set slot `i` dirty and enlist it for forEachDirty. */
    void
    markDirty(std::size_t i)
    {
        Record &r = table[i];
        if (r.flags & kDirty) {
            return;
        }
        r.flags |= kDirty;
        ++dirtyCount;
        if (!(r.flags & kInList)) {
            r.flags |= kInList;
            dirtySlots.push_back(i);
        }
    }

    /** Drop cleaned slots once they make up half the dirty list. */
    void
    maybeCompactDirtyList()
    {
        if (dirtySlots.size() < 64 ||
            dirtySlots.size() < dirtyCount * 2) {
            return;
        }
        std::size_t out = 0;
        for (std::size_t i : dirtySlots) {
            if (table[i].flags & kDirty) {
                dirtySlots[out++] = i;
            } else {
                table[i].flags &= static_cast<std::uint8_t>(~kInList);
            }
        }
        dirtySlots.resize(out);
    }

    void
    grow()
    {
        // Grow 4x: rehashing touches every record, so total rehash work
        // stays a small fraction of the final table size.
        std::vector<Record> old = std::move(table);
        table.assign(old.size() * 4, Record{});
        dirtySlots.clear();
        std::size_t mask = table.size() - 1;
        for (const Record &r : old) {
            if (!(r.flags & kUsed)) {
                continue;
            }
            std::size_t i = probeStart(r.addr, table.size());
            while (table[i].flags & kUsed) {
                i = (i + 1) & mask;
            }
            table[i] = r;
            if (r.flags & kInList) {
                dirtySlots.push_back(i);
            }
        }
    }

    std::vector<Record> table;
    std::vector<std::size_t> dirtySlots;
    std::size_t used = 0;
    std::size_t dirtyCount = 0;
};

} // namespace dbsim::audit

#endif // DBSIM_AUDIT_SHADOW_MODEL_HH
