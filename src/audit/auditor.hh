/**
 * @file
 * InvariantAuditor: runtime cross-checker of the paper's central
 * contract — the dirty-state source (tag-store dirty bits for
 * conventional LLCs, the DBI for DBI LLCs) must agree with ground
 * truth at every quiescent point:
 *
 *   I1. a block is dirty in the mechanism <=> the shadow model, which
 *       replays the raw event stream, says it is dirty;
 *   I2. every dirty block is resident in the cache;
 *   I3. a DBI cache's tag store carries no dirty bits, and the DBI's
 *       own dirty count matches ground truth;
 *   I4. no block is ever evicted while still dirty (its update would
 *       be lost) — checked per eviction event, not just periodically.
 *
 * The auditor attaches to an Llc as a passive LlcAuditObserver, runs a
 * full cross-check every `checkEvery` events (at operation boundaries
 * only, so mid-operation transients never false-positive), and panics
 * with a dump of the bounded event-trace ring on first divergence.
 */

#ifndef DBSIM_AUDIT_AUDITOR_HH
#define DBSIM_AUDIT_AUDITOR_HH

#include <cstdint>
#include <vector>

#include "audit/event_trace.hh"
#include "audit/shadow_model.hh"
#include "llc/llc.hh"

namespace dbsim::audit {

/** Auditor knobs. */
struct AuditConfig
{
    /** Events between full cross-checks (per-event checks always run). */
    std::uint64_t checkEvery = 4096;
    /** Events kept for the divergence dump. */
    std::size_t traceDepth = 64;
    /** Shard the audited slice lives on; labels the divergence dump so
     *  a panic on a sliced machine names the offending slice. */
    std::uint32_t shardId = 0;
};

class InvariantAuditor : public LlcAuditObserver
{
  public:
    /** Attaches itself to `llc`; detaches on destruction. */
    InvariantAuditor(Llc &llc, const AuditConfig &config = {});
    ~InvariantAuditor() override;

    InvariantAuditor(const InvariantAuditor &) = delete;
    InvariantAuditor &operator=(const InvariantAuditor &) = delete;

    // LlcAuditObserver
    void onWritebackIn(Addr block_addr, Cycle when) override;
    void onFill(Addr block_addr, bool dirty, Cycle when) override;
    void onEviction(Addr block_addr, Cycle when) override;
    void onWbToDram(Addr block_addr, Cycle when) override;
    void onOperationEnd() override;

    /** Run the full cross-check now; panics on divergence. */
    void checkNow();

    /**
     * The dirty blocks as the audited mechanism reports them: the DBI's
     * vectors when the cache has a DBI dirty store, the tag-store
     * dirty bits otherwise.
     */
    std::vector<Addr> mechanismDirtyBlocks() const;

    /**
     * Final memory image the mechanism would produce: memory's current
     * content plus a flush of everything the mechanism believes dirty.
     * Identical across correct mechanisms driven by the same requests.
     */
    MemoryImage finalImage() const { return model.finalImage(mechanismDirtyBlocks()); }

    const ShadowDirtyModel &shadow() const { return model; }
    const EventTraceRing &trace() const { return ring; }
    std::uint64_t eventsObserved() const { return events; }
    std::uint64_t checksRun() const { return checks; }

  private:
    [[noreturn]] void fail(const char *what, Addr addr);

    Llc &subject;
    AuditConfig cfg;
    ShadowDirtyModel model;
    EventTraceRing ring;
    std::uint64_t events = 0;
    std::uint64_t sinceCheck = 0;
    std::uint64_t checks = 0;

    /**
     * Rotating cursor for the I3 per-entry sweep: each check verifies a
     * stripe of tag-store sets, so the whole store is re-verified over
     * successive checks without an O(sets) scan on every one.
     */
    std::uint32_t sweepCursor = 0;
};

} // namespace dbsim::audit

#endif // DBSIM_AUDIT_AUDITOR_HH
