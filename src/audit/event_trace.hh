/**
 * @file
 * Bounded ring buffer of recent dirty-state events. When the invariant
 * auditor detects a divergence it dumps this trace, so the panic
 * message comes with the exact event history that led up to the bug —
 * the difference between "a dirty block is missing" and knowing which
 * writeback dropped it.
 */

#ifndef DBSIM_AUDIT_EVENT_TRACE_HH
#define DBSIM_AUDIT_EVENT_TRACE_HH

#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/types.hh"

namespace dbsim::audit {

/** Kinds of dirty-state transitions the LLC reports. */
enum class DirtyEventKind : std::uint8_t
{
    WritebackIn,  ///< writeback request brought data into the LLC
    Fill,         ///< block filled clean
    FillDirty,    ///< block filled (or merged) dirty
    Eviction,     ///< block displaced from the cache
    WbToDram,     ///< block's data written back to memory
};

const char *dirtyEventKindName(DirtyEventKind kind);

/** One recorded transition. */
struct DirtyEvent
{
    std::uint64_t seq = 0;  ///< global event sequence number
    DirtyEventKind kind = DirtyEventKind::WritebackIn;
    Addr addr = 0;
    Cycle when = 0;
};

/** Fixed-capacity ring holding the most recent events. */
class EventTraceRing
{
  public:
    explicit EventTraceRing(std::size_t capacity)
        : cap(capacity ? capacity : 1)
    {
        events.reserve(cap);
    }

    std::size_t capacity() const { return cap; }
    std::size_t size() const { return events.size(); }
    std::uint64_t totalRecorded() const { return nextSeq; }

    /** Record one event (assigns its sequence number). */
    void
    push(DirtyEventKind kind, Addr addr, Cycle when)
    {
        DirtyEvent ev{nextSeq++, kind, addr, when};
        if (events.size() < cap) {
            events.push_back(ev);
        } else {
            events[head] = ev;
            if (++head == cap) {
                head = 0;
            }
        }
    }

    /** Invoke fn(event) oldest-to-newest. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < events.size(); ++i) {
            fn(events[(head + i) % events.size()]);
        }
    }

    /** Write the trace (oldest first) to `out`. */
    void dump(std::FILE *out) const;

  private:
    std::size_t cap;
    std::size_t head = 0;
    std::uint64_t nextSeq = 0;
    std::vector<DirtyEvent> events;
};

} // namespace dbsim::audit

#endif // DBSIM_AUDIT_EVENT_TRACE_HH
