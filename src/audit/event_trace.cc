#include "event_trace.hh"

namespace dbsim::audit {

const char *
dirtyEventKindName(DirtyEventKind kind)
{
    switch (kind) {
      case DirtyEventKind::WritebackIn:
        return "wb-in";
      case DirtyEventKind::Fill:
        return "fill";
      case DirtyEventKind::FillDirty:
        return "fill-dirty";
      case DirtyEventKind::Eviction:
        return "evict";
      case DirtyEventKind::WbToDram:
        return "wb-to-dram";
    }
    return "?";
}

void
EventTraceRing::dump(std::FILE *out) const
{
    std::fprintf(out,
                 "---- dirty-event trace (last %zu of %llu events) ----\n",
                 size(),
                 static_cast<unsigned long long>(totalRecorded()));
    forEach([out](const DirtyEvent &ev) {
        std::fprintf(out, "  #%-10llu %-10s block %#llx @ cycle %llu\n",
                     static_cast<unsigned long long>(ev.seq),
                     dirtyEventKindName(ev.kind),
                     static_cast<unsigned long long>(ev.addr),
                     static_cast<unsigned long long>(ev.when));
    });
    std::fprintf(out, "----------------------------------------------------\n");
}

} // namespace dbsim::audit
