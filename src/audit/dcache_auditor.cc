#include "dcache_auditor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dbsim::audit {

DCacheAuditor::DCacheAuditor(DramCache &dcache, const AuditConfig &config)
    : subject(dcache), cfg(config)
{
    subject.attachObserver(this);
}

DCacheAuditor::~DCacheAuditor()
{
    subject.attachObserver(nullptr);
}

void
DCacheAuditor::fail(const char *what, Addr addr)
{
    panic("dcache audit divergence on shard %u after %llu events "
          "(%llu checks): %s (block 0x%llx; shadow dirty=%zu "
          "resident=%zu)",
          cfg.shardId, static_cast<unsigned long long>(events),
          static_cast<unsigned long long>(checks), what,
          static_cast<unsigned long long>(addr), dirty.size(),
          resident.size());
}

void
DCacheAuditor::onFill(Addr block_addr, Cycle)
{
    if (dirty.count(block_addr)) {
        // A dirty block is by definition resident; fetching it from
        // DDR means the cache lost track of it.
        fail("dirty block refetched from backing DDR", block_addr);
    }
    resident.insert(block_addr);
}

void
DCacheAuditor::onWritebackIn(Addr block_addr, Cycle)
{
    resident.insert(block_addr);
    dirty.insert(block_addr);
}

void
DCacheAuditor::onBlockCleaned(Addr block_addr, Cycle)
{
    if (subject.dirtyExact() && !dirty.count(block_addr)) {
        // D5: the exact index must never spend DDR bandwidth writing
        // back a block whose data memory already has.
        fail("clean block written back in index mode", block_addr);
    }
    dirty.erase(block_addr);
}

void
DCacheAuditor::onPageEvict(Addr page_base, Cycle)
{
    const std::uint64_t page_bytes = subject.config().pageBytes;
    for (Addr a = page_base; a < page_base + page_bytes;
         a += kBlockBytes) {
        if (dirty.count(a)) {
            // D4: the eviction's writebacks (onBlockCleaned) have
            // already fired, so any dirty survivor is lost data.
            fail("page evicted with an unwritten dirty block", a);
        }
        resident.erase(a);
    }
}

void
DCacheAuditor::onOperationEnd()
{
    ++events;
    if (cfg.checkEvery == 0) {
        return;
    }
    if (++sinceCheck >= cfg.checkEvery) {
        sinceCheck = 0;
        checkNow();
    }
}

void
DCacheAuditor::checkNow()
{
    ++checks;
    for (Addr a : dirty) {
        if (!subject.probeDirty(a)) {
            fail("shadow-dirty block not dirty in the mechanism", a);
        }
        if (!subject.probeResident(a)) {
            fail("shadow-dirty block not resident (D2)", a);
        }
    }
    if (subject.countValidBlocks() != resident.size()) {
        fail("resident-block census disagrees (D3)", 0);
    }
    if (subject.dirtyExact()) {
        if (subject.countDirtyBlocks() != dirty.size()) {
            fail("dirty-block census disagrees (D1)", 0);
        }
    } else {
        // Per-page bit: the mechanism's dirty-page footprint must match
        // the shadow's exactly (the bit is set iff some block of the
        // page was dirtied since install and not yet evicted).
        std::unordered_set<std::uint64_t> shadow_pages;
        const std::uint64_t page_bytes = subject.config().pageBytes;
        for (Addr a : dirty) {
            shadow_pages.insert(a / page_bytes);
        }
        std::uint64_t mech_pages = 0;
        bool extra = false;
        Addr extra_page = 0;
        subject.forEachDirtyPage([&](Addr base) {
            ++mech_pages;
            if (!shadow_pages.count(base / page_bytes)) {
                extra = true;
                extra_page = base;
            }
        });
        if (extra) {
            fail("mechanism dirty page with no shadow-dirty block",
                 extra_page);
        }
        if (mech_pages != shadow_pages.size()) {
            fail("dirty-page census disagrees (D1, tags mode)", 0);
        }
    }
}

void
DCacheAuditor::checkFinal()
{
    checkNow();
    std::vector<Addr> flush = mechanismFlushBlocks();
    std::vector<Addr> truth = shadowDirtyBlocks();
    if (subject.dirtyExact()) {
        if (flush != truth) {
            fail("final flush set diverges from ground truth",
                 flush.size() > truth.size() ? flush.back()
                                             : (truth.empty()
                                                    ? 0
                                                    : truth.back()));
        }
        return;
    }
    // Tags mode: the flush set is an over-approximation (every valid
    // block of each dirty page) but must still contain every truly
    // dirty block.
    for (Addr a : truth) {
        if (!std::binary_search(flush.begin(), flush.end(), a)) {
            fail("final flush set misses a dirty block", a);
        }
    }
}

std::vector<Addr>
DCacheAuditor::mechanismFlushBlocks() const
{
    std::vector<Addr> v;
    subject.forEachFlushBlock([&](Addr a) { v.push_back(a); });
    std::sort(v.begin(), v.end());
    return v;
}

std::vector<Addr>
DCacheAuditor::shadowDirtyBlocks() const
{
    std::vector<Addr> v(dirty.begin(), dirty.end());
    std::sort(v.begin(), v.end());
    return v;
}

} // namespace dbsim::audit
