#include "runner.hh"

// This file implements the deprecated compatibility wrappers; the
// definitions themselves must not warn.
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace dbsim {

double
AloneIpcCache::get(const std::string &bench)
{
    auto it = cache.find(bench);
    if (it != cache.end()) {
        return it->second;
    }
    SystemConfig cfg = baseCfg;
    cfg.numCores = 1;
    cfg.mech = Mechanism::Baseline;
    // Alone runs keep per-core LLC capacity, matching the shared system.
    SimResult r = runWorkload(cfg, WorkloadMix{bench});
    cache[bench] = r.ipc[0];
    return r.ipc[0];
}

std::vector<double>
AloneIpcCache::forMix(const WorkloadMix &mix)
{
    std::vector<double> alone;
    alone.reserve(mix.size());
    for (const auto &bench : mix) {
        alone.push_back(get(bench));
    }
    return alone;
}

MulticoreMetrics
evalMix(const SystemConfig &cfg, const WorkloadMix &mix,
        AloneIpcCache &alone)
{
    SimResult r = runWorkload(cfg, mix);
    std::vector<double> alone_ipcs = alone.forMix(mix);

    MulticoreMetrics m;
    m.weightedSpeedup = weightedSpeedup(r.ipc, alone_ipcs);
    m.instructionThroughput = instructionThroughput(r.ipc);
    m.harmonicSpeedup = harmonicSpeedup(r.ipc, alone_ipcs);
    m.maxSlowdown = maxSlowdown(r.ipc, alone_ipcs);
    return m;
}

} // namespace dbsim
