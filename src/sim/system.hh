/**
 * @file
 * Full-system wiring and the library's primary entry point: build a
 * system configuration (Table 1), pick a mechanism (Table 2) and a
 * workload mix, and run it to obtain per-core IPCs plus the memory-
 * system statistics the paper's figures are made of.
 */

#ifndef DBSIM_SIM_SYSTEM_HH
#define DBSIM_SIM_SYSTEM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "audit/auditor.hh"
#include "common/event_queue.hh"
#include "cpu/core.hh"
#include "cpu/core_memory.hh"
#include "dbi/dbi.hh"
#include "dram/dram_controller.hh"
#include "llc/llc.hh"
#include "pred/miss_predictor.hh"
#include "sim/mechanism.hh"
#include "telemetry/telemetry.hh"
#include "workload/mixes.hh"
#include "workload/file_trace.hh"
#include "workload/synthetic_trace.hh"

namespace dbsim {

/** Whole-system configuration (Table 1 defaults). */
struct SystemConfig
{
    /**
     * The mechanism: a Table 2 preset (`Mechanism::Dbi`, implicitly
     * converted) or any composed policy tuple (see mechanismByName()).
     */
    MechanismSpec mech = Mechanism::TaDip;
    std::uint32_t numCores = 1;

    /** Shared LLC capacity per core (Table 1: 2MB/core). */
    std::uint64_t llcBytesPerCore = 2ull << 20;

    /**
     * LLC associativity and latencies; 0 means "derive from numCores"
     * per Table 1 (16/32-way, tag 10-14, data 24-33).
     */
    std::uint32_t llcAssoc = 0;
    std::uint32_t llcTagLatency = 0;
    std::uint32_t llcDataLatency = 0;

    /** Use DRRIP instead of TA-DIP for non-baseline mechanisms. */
    bool useDrrip = false;

    DbiConfig dbi;
    DramConfig dram;
    CoreConfig core;
    CoreMemoryConfig mem;
    SkipPredictorConfig pred;

    std::uint64_t seed = 1;

    /**
     * Dirty-state invariant auditing (src/audit): cross-check the
     * mechanism's dirty bookkeeping against a shadow ground-truth model
     * every `auditEvery` LLC events; 0 disables the auditor entirely.
     * Builds configured with -DDBSIM_AUDIT=ON (the default, so ctest
     * runs are covered) audit by default; the bench harness overrides
     * this to 0 so measured numbers never carry auditing overhead.
     * The auditor is passive — it changes no timing and no stats.
     */
#ifdef DBSIM_AUDIT
    std::uint64_t auditEvery = 4096;
#else
    std::uint64_t auditEvery = 0;
#endif

    /**
     * Telemetry (src/telemetry): epoch time-series sampling, latency /
     * drain histograms, and Chrome-trace export. Off by default
     * (TelemetryConfig::enabled() is false); requesting it in a build
     * configured with -DDBSIM_TELEMETRY=OFF draws a warning and is
     * ignored. Observation is strictly passive: a run with telemetry on
     * is cycle- and stat-identical to the same run without.
     */
    telemetry::TelemetryConfig telemetry;

    /** Hard simulation cap; exceeded means a deadlock bug. */
    Cycle maxCycles = 20'000'000'000ull;

    /** Resolved LLC config for this core count. */
    LlcConfig resolveLlc() const;
};

/**
 * Result of one simulation.
 *
 * Per-core IPCs are measured over each core's own warmup-to-done
 * window and are exact. The aggregate `stats` window opens when the
 * slowest core finishes warmup; in short runs with extreme per-core IPC
 * ratios, a fast core may hit its overrun cap before that, so
 * system-wide counters can under-represent it (the per-core metrics
 * the paper's multi-core results use are unaffected).
 */
struct SimResult
{
    std::vector<double> ipc;                 ///< per core
    std::map<std::string, std::uint64_t> stats;  ///< measurement window
    std::uint64_t totalInstrs = 0;           ///< across cores (measured)
    Cycle windowCycles = 0;                  ///< global measurement span
    double readRowHitRate = 0.0;
    double writeRowHitRate = 0.0;
    double tagLookupsPki = 0.0;
    double wpki = 0.0;   ///< memory writes per kilo instructions
    double mpki = 0.0;   ///< LLC demand misses per kilo instructions
    double dramEnergyPj = 0.0;

    /**
     * Histogram summaries ("hist.<name>.<stat>") when the run collected
     * telemetry histograms; empty otherwise. Deterministic in the
     * simulation.
     */
    std::map<std::string, double> telemetry;

    /**
     * Metrics reported by attached metadata subsystems ("ecc.*" /
     * "dir.*" — hetero-ECC protection outcomes and storage/energy
     * accounting, coherence-directory activity) when the mechanism spec
     * attaches them; empty otherwise.
     */
    std::map<std::string, double> metadata;
};

/**
 * One simulated machine: cores + private caches + shared LLC (mechanism
 * variant) + DRAM, on a single event queue.
 */
class System
{
  public:
    /**
     * @param mix one entry per core: either a benchmark name from
     *        src/workload/profiles (synthetic trace) or "@<path>" to
     *        replay a trace file (see workload/file_trace.hh).
     */
    System(const SystemConfig &config, const WorkloadMix &mix);
    ~System();

    /** Run warmup + measurement; collect results. */
    SimResult run();

    /** The LLC (for tests and examples). */
    Llc &llc() { return *sharedLlc; }

    /** The DBI, if the mechanism has one (nullptr otherwise). */
    Dbi *dbi();

    /** Attached metadata subsystems (for tests and examples). */
    const std::vector<std::unique_ptr<MetadataIndex>> &
    metadata() const
    {
        return metaIndexes;
    }

    /** The DRAM controller. */
    DramController &dram() { return *dramCtrl; }

    /**
     * Events the simulation kernel has dispatched so far — the
     * denominator of the host-performance metrics (events/sec,
     * ns/event) bench/host_perf.cpp reports. Deterministic: identical
     * configs dispatch identical event counts.
     */
    std::uint64_t eventsDispatched() const { return eq.dispatched(); }

    /** The invariant auditor, when enabled (nullptr otherwise). */
    audit::InvariantAuditor *auditor() { return auditWatch.get(); }

    /** The telemetry sink, when enabled (nullptr otherwise). */
    dbsim::telemetry::SimTelemetry *telemetry() { return telem.get(); }

    /** Per-core private hierarchy (for inspection). */
    CoreMemory &coreMemory(std::uint32_t core) { return *mems.at(core); }

  private:
    void onCoreWarmed(std::uint32_t core_id);
    void onCoreDone(std::uint32_t core_id);
    void setupTelemetry();

    SystemConfig cfg;
    WorkloadMix workload;

    EventQueue eq;
    std::unique_ptr<DramController> dramCtrl;
    std::shared_ptr<MissPredictor> predictor;
    std::unique_ptr<Llc> sharedLlc;
    std::vector<std::unique_ptr<MetadataIndex>> metaIndexes;
    std::unique_ptr<audit::InvariantAuditor> auditWatch;
    std::unique_ptr<dbsim::telemetry::SimTelemetry> telem;
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<std::unique_ptr<CoreMemory>> mems;
    std::vector<std::unique_ptr<Core>> cores;
    StatSet statSet;

    std::uint32_t warmedCount = 0;
    std::uint32_t doneCount = 0;
    Cycle warmTime = 0;
    Cycle doneTime = 0;
};

/** Convenience: build and run in one call. */
SimResult runWorkload(const SystemConfig &config, const WorkloadMix &mix);

} // namespace dbsim

#endif // DBSIM_SIM_SYSTEM_HH
