/**
 * @file
 * Full-system wiring and the library's primary entry point: build a
 * system configuration (Table 1), pick a mechanism (Table 2) and a
 * workload mix, and run it to obtain per-core IPCs plus the memory-
 * system statistics the paper's figures are made of.
 *
 * Machines come in two shapes. The paper's Table 1 machine (the
 * default) has one monolithic LLC and one DRAM channel and runs on a
 * single EventQueue exactly as before. Scaled-up machines
 * (llcSlices/dram.channels > 1) are partitioned into shards — each
 * owning an EventQueue, an LLC slice with its own policy tuple, and a
 * DRAM channel — and executed under epoch-barrier synchronization on
 * `numShards` worker threads. Thread count never changes statistics;
 * see common/shard.hh and sim/topology.hh for the scheme and the
 * determinism argument.
 */

#ifndef DBSIM_SIM_SYSTEM_HH
#define DBSIM_SIM_SYSTEM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "audit/auditor.hh"
#include "audit/dcache_auditor.hh"
#include "common/event_queue.hh"
#include "common/shard.hh"
#include "cpu/core.hh"
#include "cpu/core_memory.hh"
#include "dbi/dbi.hh"
#include "dcache/dcache.hh"
#include "dram/dram_controller.hh"
#include "llc/llc.hh"
#include "pred/miss_predictor.hh"
#include "sim/mechanism.hh"
#include "sim/topology.hh"
#include "telemetry/telemetry.hh"
#include "workload/mixes.hh"
#include "workload/file_trace.hh"
#include "workload/sampled_trace.hh"
#include "workload/synthetic_trace.hh"

namespace dbsim {

/** Whole-system configuration (Table 1 defaults). */
struct SystemConfig
{
    /**
     * The mechanism: a Table 2 preset (`Mechanism::Dbi`, implicitly
     * converted) or any composed policy tuple (see mechanismByName()).
     */
    MechanismSpec mech = Mechanism::TaDip;
    std::uint32_t numCores = 1;

    /** Shared LLC capacity per core (Table 1: 2MB/core). */
    std::uint64_t llcBytesPerCore = 2ull << 20;

    /**
     * LLC associativity and latencies; 0 means "derive from numCores"
     * per Table 1 (16/32-way, tag 10-14, data 24-33).
     */
    std::uint32_t llcAssoc = 0;
    std::uint32_t llcTagLatency = 0;
    std::uint32_t llcDataLatency = 0;

    /** Use DRRIP instead of TA-DIP for non-baseline mechanisms. */
    bool useDrrip = false;

    // -- Sharding knobs (0 = derive; see sim/topology.hh) -------------

    /**
     * Address-interleaved LLC slices, each with its own tag store, DBI,
     * and policy tuple (the paper's multi-bank DBI organization scaled
     * out). 0 derives Table-1 style: 1 slice up to 8 cores, one per 16
     * cores beyond. Part of the simulated machine: changes stats.
     */
    std::uint32_t llcSlices = 0;

    /**
     * Cross-shard hop latency in cycles (NUCA remote-slice / remote-
     * channel penalty), which is also the epoch-barrier lookahead.
     * 0 derives: 64 on sliced machines, none on unsharded ones.
     * Part of the simulated machine: changes stats.
     * DRAM channels are configured via `dram.channels` (0 = one per
     * LLC slice).
     */
    Cycle shardHopLatency = 0;

    /**
     * Worker threads executing the shards. Purely an execution knob:
     * any value produces bit-identical statistics (the new golden
     * invariant). 0 derives min(partitions, host cores).
     */
    std::uint32_t numShards = 0;

    DbiConfig dbi;
    DramConfig dram;

    /**
     * Die-stacked DRAM-cache tier interposed between each LLC slice and
     * its backing DDR path (src/dcache). Off by default; a disabled
     * dcache leaves the machine bit-identical to one without the level
     * wired in at all. Part of the simulated machine: changes stats.
     */
    DCacheConfig dcache;

    CoreConfig core;
    CoreMemoryConfig mem;
    SkipPredictorConfig pred;

    /**
     * When non-empty, every core replays this trace file instead of the
     * mix's synthetic profiles ("--trace" on the bench harness). Format
     * is detected from the file: ".champsim"/".bin" (optionally with a
     * ".gz"/".xz"/".zst" compression suffix) streams ChampSim binary
     * records (workload/champsim_trace.hh); ".trace"/".txt" streams the
     * native text format (workload/file_trace.hh); anything else is
     * sniffed from its first bytes. Traces are streamed with bounded
     * memory and never materialized whole.
     */
    std::string traceFile;

    /**
     * Fast-forward / SMARTS sampling (workload/sampled_trace.hh): warm
     * `ffOps` trace operations functionally before detailed simulation,
     * then alternate `sampleOps` detailed ops with `periodOps -
     * sampleOps` functionally warmed ops. Disabled by default; a
     * disabled config leaves the run bit-identical to one without the
     * sampling layer wired in at all. Sampled runs execute on one
     * worker thread (warming crosses shard boundaries directly, outside
     * the epoch-barrier protocol); worker count never changes
     * statistics, so this is invisible in results.
     */
    SamplingConfig sampling;

    std::uint64_t seed = 1;

    /**
     * Dirty-state invariant auditing (src/audit): cross-check the
     * mechanism's dirty bookkeeping against a shadow ground-truth model
     * every `auditEvery` LLC events; 0 disables the auditor entirely.
     * Builds configured with -DDBSIM_AUDIT=ON (the default, so ctest
     * runs are covered) audit by default; the bench harness overrides
     * this to 0 so measured numbers never carry auditing overhead.
     * The auditor is passive — it changes no timing and no stats.
     * Sliced machines audit per slice (each slice has its own auditor).
     */
#ifdef DBSIM_AUDIT
    std::uint64_t auditEvery = 4096;
#else
    std::uint64_t auditEvery = 0;
#endif

    /**
     * Telemetry (src/telemetry): epoch time-series sampling, latency /
     * drain histograms, and Chrome-trace export. Off by default
     * (TelemetryConfig::enabled() is false); requesting it in a build
     * configured with -DDBSIM_TELEMETRY=OFF draws a warning and is
     * ignored. Observation is strictly passive: a run with telemetry on
     * is cycle- and stat-identical to the same run without. On sharded
     * runs each shard writes its own ".s<k>"-suffixed streams.
     */
    telemetry::TelemetryConfig telemetry;

    /**
     * Host-side profiling (src/telemetry/profiler.hh): attribute wall
     * time per shard to event dispatch by component vs. fabric drain
     * vs. epoch-barrier stall, plus per-epoch occupancy counters.
     * Surfaced as SimResult::hostProfile. Purely an observer of *host*
     * time: simulated state and statistics are bit-identical with it
     * on or off. Requesting it in a build configured with
     * -DDBSIM_PROFILE=OFF draws a warning and is ignored.
     */
    bool profile = false;

    /** Hard simulation cap; exceeded means a deadlock bug. */
    Cycle maxCycles = 20'000'000'000ull;

    /** Resolved LLC config for this core count (machine-wide size;
     *  System divides capacity across slices). */
    LlcConfig resolveLlc() const;

    /** Resolved, validated machine partitioning for these knobs. */
    ShardTopology topology() const;
};

/**
 * Result of one simulation.
 *
 * Per-core IPCs are measured over each core's own warmup-to-done
 * window and are exact. The aggregate `stats` window opens when the
 * slowest core finishes warmup; in short runs with extreme per-core IPC
 * ratios, a fast core may hit its overrun cap before that, so
 * system-wide counters can under-represent it (the per-core metrics
 * the paper's multi-core results use are unaffected).
 */
struct SimResult
{
    std::vector<double> ipc;                 ///< per core
    std::map<std::string, std::uint64_t> stats;  ///< measurement window
    std::uint64_t totalInstrs = 0;           ///< across cores (measured)
    Cycle windowCycles = 0;                  ///< global measurement span
    double readRowHitRate = 0.0;
    double writeRowHitRate = 0.0;
    double tagLookupsPki = 0.0;
    double wpki = 0.0;   ///< memory writes per kilo instructions
    double mpki = 0.0;   ///< LLC demand misses per kilo instructions
    double dramEnergyPj = 0.0;

    /**
     * Histogram summaries ("hist.<name>.<stat>") when the run collected
     * telemetry histograms; empty otherwise. Deterministic in the
     * simulation. Sharded runs prefix each shard's entries "s<k>.".
     */
    std::map<std::string, double> telemetry;

    /**
     * Metrics reported by attached metadata subsystems ("ecc.*" /
     * "dir.*" — hetero-ECC protection outcomes and storage/energy
     * accounting, coherence-directory activity) when the mechanism spec
     * attaches them; empty otherwise. Sliced machines attach one index
     * set per slice and prefix each slice's entries "s<k>.".
     */
    std::map<std::string, double> metadata;

    /**
     * Host-profiler attribution ("runMs", "fabricDrainMs", "shards",
     * "s<k>.workMs" / "s<k>.stallMs" / "s<k>.comp.<name>.ms", ...)
     * when the run was profiled (SystemConfig::profile); empty
     * otherwise. Host wall-clock derived, therefore NON-deterministic —
     * never fold into cached or golden-compared data (the JSONL layer
     * keeps it in the separate "host" object for the same reason).
     */
    std::map<std::string, double> hostProfile;
};

class ShardLlcPort;
class ShardMemRouter;
class ShardFlowTracer;

namespace telemetry {
class HostProfiler;
} // namespace telemetry

/**
 * One simulated machine: cores + private caches + sliced shared LLC
 * (mechanism variant) + DRAM channels, partitioned into shards each
 * driving its own event queue.
 *
 * Compatibility façade: on the default single-shard machine llc(),
 * dram(), dbi(), auditor() and telemetry() mean what they always did;
 * on sliced machines they refer to slice/channel/shard 0, with
 * llcSlice()/dramChannel()/sliceAuditor() for the rest.
 */
class System
{
  public:
    /**
     * @param mix one entry per core: either a benchmark name from
     *        src/workload/profiles (synthetic trace) or "@<path>" to
     *        replay a trace file (see workload/file_trace.hh).
     */
    System(const SystemConfig &config, const WorkloadMix &mix);
    ~System();

    /** Run warmup + measurement; collect results. */
    SimResult run();

    /** The resolved machine partitioning. */
    const ShardTopology &topology() const { return topo; }

    std::uint32_t numSlices() const { return topo.slices; }
    std::uint32_t numChannels() const { return topo.channels; }

    /** Shards the machine is partitioned into (not worker threads). */
    std::uint32_t numPartitions() const { return topo.partitions; }

    /** Worker threads the epoch engine will use. */
    std::uint32_t numWorkers() const { return topo.workers; }

    /** The LLC — slice 0 on sliced machines (for tests and examples). */
    Llc &llc() { return *slices[0]; }

    /** LLC slice `s`. */
    Llc &llcSlice(std::uint32_t s) { return *slices.at(s); }

    /** Slice 0's DBI, if the mechanism has one (nullptr otherwise). */
    Dbi *dbi();

    /** Attached metadata subsystems, all slices in slice order. */
    const std::vector<std::unique_ptr<MetadataIndex>> &
    metadata() const
    {
        return metaIndexes;
    }

    /** The DRAM controller — channel 0 on multi-channel machines. */
    DramController &dram() { return *chans[0]; }

    /** DRAM channel `c`. */
    DramController &dramChannel(std::uint32_t c) { return *chans.at(c); }

    /** The interposed DRAM cache — slice 0's when enabled, nullptr
     *  otherwise. */
    DramCache *dcache() { return dcaches.empty() ? nullptr : dcaches[0].get(); }

    /** Slice `s`'s DRAM cache (nullptr when the tier is disabled). */
    DramCache *
    dcacheSlice(std::uint32_t s)
    {
        return dcaches.empty() ? nullptr : dcaches.at(s).get();
    }

    /** Slice `s`'s DRAM-cache auditor (nullptr when auditing is off or
     *  the tier is disabled). */
    audit::DCacheAuditor *
    dcacheAuditor(std::uint32_t s)
    {
        return dcacheAuditors.empty() ? nullptr
                                      : dcacheAuditors.at(s).get();
    }

    /** The cross-shard mailbox (nullptr on single-shard machines). */
    const ShardFabric *fabric() const { return fab.get(); }

    /**
     * Events the simulation kernel has dispatched so far, summed over
     * every shard's queue — the denominator of the host-performance
     * metrics (events/sec, ns/event) bench/host_perf.cpp reports.
     * Deterministic: identical configs dispatch identical event counts,
     * regardless of numShards.
     */
    std::uint64_t eventsDispatched() const;

    /** Slice 0's invariant auditor, when enabled (nullptr otherwise). */
    audit::InvariantAuditor *auditor()
    {
        return auditors.empty() ? nullptr : auditors[0].get();
    }

    /** Slice `s`'s invariant auditor (nullptr when auditing is off). */
    audit::InvariantAuditor *
    sliceAuditor(std::uint32_t s)
    {
        return auditors.empty() ? nullptr : auditors.at(s).get();
    }

    /** Shard 0's telemetry sink, when enabled (nullptr otherwise). */
    dbsim::telemetry::SimTelemetry *
    telemetry()
    {
        return telems.empty() ? nullptr : telems[0].get();
    }

    /** Per-core private hierarchy (for inspection). */
    CoreMemory &coreMemory(std::uint32_t core) { return *mems.at(core); }

    /**
     * Core `core`'s operation source — the SampledTrace wrapper when
     * sampling is enabled (its opsEmitted()/opsWarmed()/opsMeasured()
     * feed the ingest benchmark), the raw trace otherwise.
     */
    TraceSource &traceSource(std::uint32_t core)
    {
        return *traces.at(core);
    }

  private:
    void onCoreWarmed(std::uint32_t core_id);
    void onCoreDone(std::uint32_t core_id);
    void setupTelemetry(std::uint32_t part);

    /** Legacy engine: the whole machine on one queue, one thread. */
    void runSingle();

    /** Epoch-barrier engine for partitioned machines. */
    void runSharded();

    /** Run shard `part`'s events up to and including `limit`. */
    void runShardEpoch(std::uint32_t part, Cycle limit);

    SimResult assembleResult();

    SystemConfig cfg;
    WorkloadMix workload;
    ShardTopology topo;

    std::vector<std::unique_ptr<EventQueue>> queues;  ///< per shard
    std::vector<EventQueue *> queuePtrs;
    std::unique_ptr<ShardFabric> fab;                 ///< sharded only
    std::vector<std::unique_ptr<DramController>> chans;
    // Backing chain declared bottom-up: each level holds a reference to
    // the one below, so destruction (reverse order) tears the chain
    // down top-first.
    std::vector<std::unique_ptr<ShardMemRouter>> memRouters;  ///< per slice
    std::vector<std::unique_ptr<DramCache>> dcaches;  ///< per slice (opt)
    std::vector<std::shared_ptr<MissPredictor>> predictors;  ///< per slice
    std::vector<std::unique_ptr<Llc>> slices;
    std::vector<std::unique_ptr<audit::DCacheAuditor>> dcacheAuditors;
    std::vector<std::unique_ptr<ShardLlcPort>> corePorts;     ///< per shard
    std::vector<std::unique_ptr<MetadataIndex>> metaIndexes;
    std::vector<std::uint32_t> metaSlices;  ///< owning slice per index
    std::vector<std::unique_ptr<audit::InvariantAuditor>> auditors;
    std::vector<std::unique_ptr<dbsim::telemetry::SimTelemetry>> telems;
    std::unique_ptr<ShardFlowTracer> flowTracer;      ///< sharded traces
    std::unique_ptr<dbsim::telemetry::HostProfiler> profiler;
    std::vector<std::unique_ptr<TraceSource>> traces;
    std::vector<std::unique_ptr<CoreMemory>> mems;
    std::vector<std::unique_ptr<Core>> cores;
    StatSet statSet;

    std::uint32_t warmedCount = 0;
    std::uint32_t doneCount = 0;
    Cycle warmTime = 0;
    Cycle doneTime = 0;

    /**
     * Per-shard milestone tallies for the epoch engine. A shard's entry
     * is written only by the thread running that shard's epoch and read
     * at barriers, so the padding (not locks) is all that's needed.
     */
    struct alignas(64) ShardProgress
    {
        std::uint32_t warmed = 0;
        std::uint32_t done = 0;
    };
    std::vector<ShardProgress> progress;
    bool warmSnapshotTaken = false;
    bool haltIssued = false;
};

/** Convenience: build and run in one call. */
SimResult runWorkload(const SystemConfig &config, const WorkloadMix &mix);

} // namespace dbsim

#endif // DBSIM_SIM_SYSTEM_HH
