#include "metrics.hh"

#include <cmath>

#include "common/logging.hh"

namespace dbsim {

namespace {

void
checkSizes(const std::vector<double> &shared,
           const std::vector<double> &alone)
{
    panic_if(shared.size() != alone.size() || shared.empty(),
             "metric inputs must be equal-sized and non-empty");
}

/**
 * Every speedup/slowdown metric divides by per-core IPCs, so a zero,
 * negative, or non-finite input would silently yield inf/NaN and
 * poison every downstream aggregate (a geomean over a table column,
 * a JSONL record). An IPC that is not a positive finite number means
 * the simulation that produced it is broken — fail loudly instead.
 */
void
checkIpcs(const char *metric, const std::vector<double> &ipcs)
{
    for (double v : ipcs) {
        panic_if(!std::isfinite(v) || v <= 0.0,
                 "%s: IPC inputs must be positive finite, got %f",
                 metric, v);
    }
}

} // namespace

double
weightedSpeedup(const std::vector<double> &shared,
                const std::vector<double> &alone)
{
    checkSizes(shared, alone);
    checkIpcs("weightedSpeedup", shared);
    checkIpcs("weightedSpeedup", alone);
    double ws = 0.0;
    for (std::size_t i = 0; i < shared.size(); ++i) {
        ws += shared[i] / alone[i];
    }
    return ws;
}

double
instructionThroughput(const std::vector<double> &shared)
{
    double it = 0.0;
    for (double v : shared) {
        it += v;
    }
    return it;
}

double
harmonicSpeedup(const std::vector<double> &shared,
                const std::vector<double> &alone)
{
    checkSizes(shared, alone);
    checkIpcs("harmonicSpeedup", shared);
    checkIpcs("harmonicSpeedup", alone);
    double denom = 0.0;
    for (std::size_t i = 0; i < shared.size(); ++i) {
        denom += alone[i] / shared[i];
    }
    return static_cast<double>(shared.size()) / denom;
}

double
maxSlowdown(const std::vector<double> &shared,
            const std::vector<double> &alone)
{
    checkSizes(shared, alone);
    checkIpcs("maxSlowdown", shared);
    checkIpcs("maxSlowdown", alone);
    double worst = 0.0;
    for (std::size_t i = 0; i < shared.size(); ++i) {
        double s = alone[i] / shared[i];
        if (s > worst) {
            worst = s;
        }
    }
    return worst;
}

double
geomean(const std::vector<double> &values)
{
    panic_if(values.empty(), "geomean of empty set");
    double acc = 0.0;
    for (double v : values) {
        panic_if(!std::isfinite(v) || v <= 0.0,
                 "geomean requires positive finite values, got %f", v);
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace dbsim
