#include "metrics.hh"

#include <cmath>

#include "common/logging.hh"

namespace dbsim {

namespace {

void
checkSizes(const std::vector<double> &shared,
           const std::vector<double> &alone)
{
    panic_if(shared.size() != alone.size() || shared.empty(),
             "metric inputs must be equal-sized and non-empty");
}

} // namespace

double
weightedSpeedup(const std::vector<double> &shared,
                const std::vector<double> &alone)
{
    checkSizes(shared, alone);
    double ws = 0.0;
    for (std::size_t i = 0; i < shared.size(); ++i) {
        ws += shared[i] / alone[i];
    }
    return ws;
}

double
instructionThroughput(const std::vector<double> &shared)
{
    double it = 0.0;
    for (double v : shared) {
        it += v;
    }
    return it;
}

double
harmonicSpeedup(const std::vector<double> &shared,
                const std::vector<double> &alone)
{
    checkSizes(shared, alone);
    double denom = 0.0;
    for (std::size_t i = 0; i < shared.size(); ++i) {
        denom += alone[i] / shared[i];
    }
    return static_cast<double>(shared.size()) / denom;
}

double
maxSlowdown(const std::vector<double> &shared,
            const std::vector<double> &alone)
{
    checkSizes(shared, alone);
    double worst = 0.0;
    for (std::size_t i = 0; i < shared.size(); ++i) {
        double s = alone[i] / shared[i];
        if (s > worst) {
            worst = s;
        }
    }
    return worst;
}

double
geomean(const std::vector<double> &values)
{
    panic_if(values.empty(), "geomean of empty set");
    double acc = 0.0;
    for (double v : values) {
        panic_if(v <= 0.0, "geomean requires positive values");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace dbsim
