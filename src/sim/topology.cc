#include "topology.hh"

#include <algorithm>
#include <thread>

#include "common/logging.hh"

namespace dbsim {

namespace {

std::uint32_t
floorPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p * 2 <= v) {
        p *= 2;
    }
    return p;
}

} // namespace

ShardTopology
resolveTopology(const TopologySpec &spec)
{
    fatal_if(spec.numCores == 0, "need at least one core");

    ShardTopology t;
    t.rowBytes = spec.rowBytes;

    // Slices: Table-1-style derivation. Small machines (the paper's
    // 1-8 core configurations) keep the single monolithic LLC; bigger
    // machines get one slice per 16 cores, so the 64-core north-star
    // config resolves to 4 slices.
    t.slices = spec.llcSlices ? spec.llcSlices
                              : (spec.numCores <= 8
                                     ? 1
                                     : floorPow2(std::max(
                                           1u, spec.numCores / 16)));

    // Channels: one per LLC slice unless configured explicitly.
    t.channels = spec.dramChannels ? spec.dramChannels : t.slices;

    t.partitions = std::max(t.slices, t.channels);

    // Hop latency: the NUCA cross-slice / cross-channel interconnect
    // hop, which doubles as the epoch lookahead. Unsharded machines
    // have no hop at all (everything is a direct call).
    t.hopLatency =
        spec.hopLatency ? spec.hopLatency : (t.sharded() ? 64 : 0);

    // -- Cross-axis validation: every combination checked here --------
    fatal_if(!isPowerOf2(t.slices) || t.slices > 64,
             "llcSlices (%u) must be a power of two in [1,64]", t.slices);
    fatal_if(!isPowerOf2(t.channels) || t.channels > 64,
             "dram.channels (%u) must be a power of two in [1,64]",
             t.channels);
    fatal_if(t.slices > 1 && spec.llcTotalBytes % t.slices != 0,
             "LLC capacity %llu is not divisible into %u slices",
             static_cast<unsigned long long>(spec.llcTotalBytes),
             t.slices);
    std::uint64_t slice_bytes = spec.llcTotalBytes / t.slices;
    fatal_if(slice_bytes < std::uint64_t(spec.llcAssoc) * kBlockBytes,
             "an LLC slice of %llu bytes cannot hold one %u-way set",
             static_cast<unsigned long long>(slice_bytes), spec.llcAssoc);
    if (spec.dcachePageBytes != 0) {
        fatal_if(!isPowerOf2(spec.dcachePageBytes) ||
                 spec.dcachePageBytes < kBlockBytes,
                 "dcache.pageBytes (%llu) must be a power of two >= one "
                 "block",
                 static_cast<unsigned long long>(spec.dcachePageBytes));
        fatal_if(spec.dcachePageBytes > spec.rowBytes ||
                 spec.rowBytes % spec.dcachePageBytes != 0,
                 "dcache.pageBytes (%llu) must divide dram.rowBytes "
                 "(%llu): slices and channels interleave at DRAM-row "
                 "granularity, so a coarser page would straddle the "
                 "slice/channel interleave",
                 static_cast<unsigned long long>(spec.dcachePageBytes),
                 static_cast<unsigned long long>(spec.rowBytes));
    }
    fatal_if(t.sharded() && t.hopLatency < 1,
             "a sliced machine needs hopLatency >= 1 (the epoch window)");
    fatal_if(!t.sharded() && spec.hopLatency != 0,
             "hopLatency is set but the machine has one slice and one "
             "channel; nothing ever crosses a shard boundary");

    // Workers: an execution choice, clamped to the useful range. More
    // threads than partitions would idle; the derived default also
    // respects the host's core count.
    std::uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
    t.workers = spec.numShards
                    ? std::min(spec.numShards, t.partitions)
                    : std::min(t.partitions, hw);
    return t;
}

} // namespace dbsim
