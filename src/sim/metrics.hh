/**
 * @file
 * Multi-core performance and fairness metrics (Section 5): weighted
 * speedup [50], instruction throughput, harmonic speedup [32], and
 * maximum slowdown [14, 24]. All take per-core shared-run IPCs and the
 * corresponding alone-run IPCs.
 *
 * All IPC inputs must be positive finite numbers — every metric divides
 * by them, and a zero or NaN would silently poison downstream
 * aggregates. Violations panic() instead of returning inf/NaN.
 */

#ifndef DBSIM_SIM_METRICS_HH
#define DBSIM_SIM_METRICS_HH

#include <vector>

namespace dbsim {

/** Sum of per-core IPC_shared / IPC_alone. */
double weightedSpeedup(const std::vector<double> &shared,
                       const std::vector<double> &alone);

/** Sum of shared IPCs. */
double instructionThroughput(const std::vector<double> &shared);

/** N / sum(IPC_alone / IPC_shared). */
double harmonicSpeedup(const std::vector<double> &shared,
                       const std::vector<double> &alone);

/** max over cores of IPC_alone / IPC_shared. */
double maxSlowdown(const std::vector<double> &shared,
                   const std::vector<double> &alone);

/** Geometric mean. */
double geomean(const std::vector<double> &values);

} // namespace dbsim

#endif // DBSIM_SIM_METRICS_HH
