/**
 * @file
 * Experiment-harness helpers shared by the benches: an alone-IPC cache
 * (weighted speedup normalizes against each benchmark running alone on
 * the baseline system) and a multi-core evaluation routine.
 */

#ifndef DBSIM_SIM_RUNNER_HH
#define DBSIM_SIM_RUNNER_HH

#include <map>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/system.hh"

namespace dbsim {

/**
 * Caches single-core baseline IPCs per benchmark so multi-core metric
 * normalization reuses them across mechanisms and mixes.
 */
class AloneIpcCache
{
  public:
    /**
     * @param base config whose scalar parameters (seed, instruction
     *        counts, DRAM, etc.) the alone runs inherit; core count and
     *        mechanism are overridden.
     */
    explicit AloneIpcCache(const SystemConfig &base) : baseCfg(base) {}

    /** Alone IPC of `bench` on the 1-core baseline system. */
    double get(const std::string &bench);

    /** Alone IPCs for each slot of a mix. */
    std::vector<double> forMix(const WorkloadMix &mix);

  private:
    SystemConfig baseCfg;
    std::map<std::string, double> cache;
};

/** Multi-core metric bundle for one (mechanism, mix) run. */
struct MulticoreMetrics
{
    double weightedSpeedup = 0.0;
    double instructionThroughput = 0.0;
    double harmonicSpeedup = 0.0;
    double maxSlowdown = 0.0;
};

/** Run a mix under `cfg` and compute metrics against alone IPCs. */
MulticoreMetrics evalMix(const SystemConfig &cfg, const WorkloadMix &mix,
                         AloneIpcCache &alone);

} // namespace dbsim

#endif // DBSIM_SIM_RUNNER_HH
