/**
 * @file
 * DEPRECATED experiment-harness helpers. The bench binaries now route
 * everything through the parallel runner subsystem (src/exp/ plus
 * bench/harness.hh); these single-threaded wrappers remain only so
 * out-of-tree code keeps compiling. New code should use
 * dbsim::exp::AloneIpcCache and dbsim::exp::ExperimentRunner.
 */

#ifndef DBSIM_SIM_RUNNER_HH
#define DBSIM_SIM_RUNNER_HH

#include <map>
#include <string>
#include <vector>

#include "sim/metrics.hh"
#include "sim/system.hh"

namespace dbsim {

/**
 * Caches single-core baseline IPCs per benchmark so multi-core metric
 * normalization reuses them across mechanisms and mixes.
 *
 * @deprecated Not safe for concurrent use; superseded by
 *             dbsim::exp::AloneIpcCache (exp/alone_cache.hh).
 */
class [[deprecated(
    "use dbsim::exp::AloneIpcCache (thread-safe)")]] AloneIpcCache
{
  public:
    /**
     * @param base config whose scalar parameters (seed, instruction
     *        counts, DRAM, etc.) the alone runs inherit; core count and
     *        mechanism are overridden.
     */
    explicit AloneIpcCache(const SystemConfig &base) : baseCfg(base) {}

    /** Alone IPC of `bench` on the 1-core baseline system. */
    double get(const std::string &bench);

    /** Alone IPCs for each slot of a mix. */
    std::vector<double> forMix(const WorkloadMix &mix);

  private:
    SystemConfig baseCfg;
    std::map<std::string, double> cache;
};

/** Multi-core metric bundle for one (mechanism, mix) run. */
struct MulticoreMetrics
{
    double weightedSpeedup = 0.0;
    double instructionThroughput = 0.0;
    double harmonicSpeedup = 0.0;
    double maxSlowdown = 0.0;
};

/**
 * Run a mix under `cfg` and compute metrics against alone IPCs.
 *
 * @deprecated Use exp::SweepSpec::addMixSim with an
 *             exp::ExperimentRunner, which computes the same metrics
 *             into PointRecord::metrics and runs points in parallel.
 */
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
[[deprecated("use exp::ExperimentRunner with SweepSpec::addMixSim")]]
MulticoreMetrics evalMix(const SystemConfig &cfg, const WorkloadMix &mix,
                         AloneIpcCache &alone);
#pragma GCC diagnostic pop

} // namespace dbsim

#endif // DBSIM_SIM_RUNNER_HH
