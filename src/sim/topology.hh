/**
 * @file
 * Shard topology: how the simulated machine is partitioned (LLC slices,
 * DRAM channels) and how those partitions are assigned to execution
 * shards, plus the single place every cross-axis combination of the
 * SystemConfig sharding knobs is derived and validated.
 *
 * Two ideas are kept strictly apart:
 *
 *  - *Simulated partitioning* (`llcSlices`, `dram.channels`, the hop
 *    latency) is part of the machine. Changing it changes timing and
 *    statistics, exactly like changing the cache size would.
 *  - *Execution sharding* (`numShards` worker threads) is a host-side
 *    knob. It never changes statistics: `--shards 1` and `--shards N`
 *    are bit-identical (see common/shard.hh for the argument).
 *
 * One shard (partition) p owns LLC slice p (for p < slices), DRAM
 * channel p (for p < channels), and the cores {c : c % partitions == p}.
 * Addresses interleave across slices and channels at DRAM-row
 * granularity so a DBI row never straddles a slice or channel.
 */

#ifndef DBSIM_SIM_TOPOLOGY_HH
#define DBSIM_SIM_TOPOLOGY_HH

#include <cstdint>

#include "common/types.hh"

namespace dbsim {

/** Raw sharding knobs, as configured (0 = derive). */
struct TopologySpec
{
    std::uint32_t numCores = 1;
    std::uint32_t llcSlices = 0;    ///< 0: derive from numCores
    std::uint32_t dramChannels = 0; ///< 0: one per LLC slice
    Cycle hopLatency = 0;           ///< 0: derive (64 when sharded)
    std::uint32_t numShards = 0;    ///< worker threads; 0: derive
    std::uint64_t rowBytes = 8192;
    std::uint64_t llcTotalBytes = 2ull << 20;
    std::uint32_t llcAssoc = 16;

    /**
     * Allocation granularity of an interposed backing level (the
     * DRAM-cache page), 0 when no level is interposed. Must divide
     * rowBytes: addresses interleave across slices and channels at
     * DRAM-row granularity, so any coarser or non-dividing granularity
     * would let one page straddle two slices' address partitions
     * (mirroring the DBI-rows-never-straddle-slices guarantee).
     */
    std::uint64_t dcachePageBytes = 0;
};

/** The resolved, validated machine partitioning. */
struct ShardTopology
{
    std::uint32_t slices = 1;
    std::uint32_t channels = 1;
    std::uint32_t partitions = 1;  ///< max(slices, channels)
    Cycle hopLatency = 0;          ///< cross-shard latency == epoch window
    std::uint32_t workers = 1;     ///< host threads running the epochs
    std::uint64_t rowBytes = 8192;

    bool sharded() const { return partitions > 1; }

    /** LLC slice owning the address (DRAM-row interleaved). */
    std::uint32_t
    sliceOf(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr / rowBytes) % slices);
    }

    /** DRAM channel owning the address (DRAM-row interleaved). */
    std::uint32_t
    channelOf(Addr addr) const
    {
        return static_cast<std::uint32_t>((addr / rowBytes) % channels);
    }

    std::uint32_t partitionOfSlice(std::uint32_t s) const { return s; }
    std::uint32_t partitionOfChannel(std::uint32_t c) const { return c; }

    std::uint32_t
    partitionOfCore(std::uint32_t core) const
    {
        return core % partitions;
    }
};

/**
 * Derive the 0-valued knobs (mirroring the Table-1 "derive from
 * numCores" style of SystemConfig::resolveLlc) and validate every
 * cross-axis combination; fatal() on an invalid machine. This is the
 * only place sharding knobs are interpreted.
 */
ShardTopology resolveTopology(const TopologySpec &spec);

} // namespace dbsim

#endif // DBSIM_SIM_TOPOLOGY_HH
