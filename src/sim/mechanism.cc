#include "mechanism.hh"

#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace dbsim {

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::Baseline:
        return "Baseline";
      case Mechanism::TaDip:
        return "TA-DIP";
      case Mechanism::Dawb:
        return "DAWB";
      case Mechanism::Vwq:
        return "VWQ";
      case Mechanism::SkipCache:
        return "SkipCache";
      case Mechanism::Dbi:
        return "DBI";
      case Mechanism::DbiAwb:
        return "DBI+AWB";
      case Mechanism::DbiClb:
        return "DBI+CLB";
      case Mechanism::DbiAwbClb:
        return "DBI+AWB+CLB";
    }
    return "?";
}

MechanismSpec
mechanismSpec(Mechanism m)
{
    MechanismSpec s;
    s.label = mechanismName(m);
    switch (m) {
      case Mechanism::Baseline:
        s.baselineLru = true;
        break;
      case Mechanism::TaDip:
        break;
      case Mechanism::Dawb:
        s.writeback = WritebackKind::DawbSweep;
        break;
      case Mechanism::Vwq:
        s.writeback = WritebackKind::VwqSweep;
        break;
      case Mechanism::SkipCache:
        s.store = DirtyStoreKind::WriteThrough;
        s.lookup = LookupKind::SkipBypass;
        break;
      case Mechanism::Dbi:
        s.store = DirtyStoreKind::Dbi;
        break;
      case Mechanism::DbiAwb:
        s.store = DirtyStoreKind::Dbi;
        s.writeback = WritebackKind::DbiAwb;
        break;
      case Mechanism::DbiClb:
        s.store = DirtyStoreKind::Dbi;
        s.lookup = LookupKind::ClbBypass;
        break;
      case Mechanism::DbiAwbClb:
        s.store = DirtyStoreKind::Dbi;
        s.writeback = WritebackKind::DbiAwb;
        s.lookup = LookupKind::ClbBypass;
        break;
    }
    return s;
}

MechanismSpec::MechanismSpec(Mechanism m) : MechanismSpec(mechanismSpec(m))
{
}

std::string
mechanismSpecString(const MechanismSpec &spec)
{
    for (Mechanism m : allMechanisms()) {
        if (spec == mechanismSpec(m)) {
            return mechanismName(m);
        }
    }
    std::string out;
    switch (spec.store) {
      case DirtyStoreKind::InTag:
        out = "tag";
        break;
      case DirtyStoreKind::WriteThrough:
        out = "wt";
        break;
      case DirtyStoreKind::Dbi:
        out = "dbi";
        break;
    }
    switch (spec.writeback) {
      case WritebackKind::EvictOrder:
        break;
      case WritebackKind::DawbSweep:
        out += "+dawb";
        break;
      case WritebackKind::VwqSweep:
        out += "+vwq";
        break;
      case WritebackKind::DbiAwb:
        out += "+awb";
        break;
    }
    switch (spec.lookup) {
      case LookupKind::Always:
        break;
      case LookupKind::SkipBypass:
        out += "+skip";
        break;
      case LookupKind::ClbBypass:
        out += "+clb";
        break;
    }
    if (spec.attachEcc) {
        out += "+ecc";
    }
    if (spec.attachDirectory) {
        out += "+dir";
    }
    if (spec.baselineLru) {
        out += "+lru";
    }
    return out;
}

std::ostream &
operator<<(std::ostream &os, const MechanismSpec &spec)
{
    return os << mechanismSpecString(spec);
}

namespace {

/** The help text every mechanism-name fatal() carries (satellite: the
 *  error must teach the full grammar, not just echo the bad name). */
std::string
mechanismHelp()
{
    std::string presets;
    for (Mechanism m : allMechanisms()) {
        if (!presets.empty()) {
            presets += ", ";
        }
        presets += mechanismName(m);
    }
    return "  presets: " + presets +
           "\n"
           "  composed specs: '+'-separated tokens\n"
           "    dirty store:  tag | wt | dbi   (default tag; awb/clb/"
           "ecc/dir imply dbi, skip implies wt)\n"
           "    writeback:    dawb | vwq | awb (default evict-order)\n"
           "    lookup:       skip | clb      (default always-lookup)\n"
           "    metadata:     ecc | dir       (hetero-ECC / coherence "
           "directory; need dbi)\n"
           "    replacement:  lru             (default TA-DIP/DRRIP)\n"
           "  e.g. 'dbi+dawb', 'dawb+clb', 'vwq+clb', 'dbi+awb+ecc', "
           "'dbi+dir'\n"
           "  On sliced machines (--slices N) every LLC slice composes "
           "its own\n"
           "  slice-local policy tuple (DirtyStore x WritebackPolicy x "
           "LookupPolicy)\n"
           "  from this one spec; the mechanism is machine-wide, the "
           "state per-slice.";
}

/**
 * Internal parse-failure signal. Thrown by the parsing helpers and
 * caught at the public API boundary: mechanismByName() turns it into
 * the historical fatal(), tryMechanismByName() into std::nullopt — the
 * farm service must survive a bad spec in a request.
 */
struct BadMechanism
{
    std::string message;
};

[[noreturn]] void
badMechanism(const std::string &name, const std::string &why)
{
    throw BadMechanism{why + " mechanism '" + name + "'\n" +
                       mechanismHelp()};
}

/** Parse a composed '+'-token spec (the name is not a preset). */
MechanismSpec
parseComposedSpec(const std::string &name)
{
    MechanismSpec spec;
    bool store_set = false, wb_set = false, lookup_set = false;

    auto setStore = [&](DirtyStoreKind k) {
        if (store_set && spec.store != k) {
            badMechanism(name, "conflicting dirty-store tokens in");
        }
        spec.store = k;
        store_set = true;
    };
    auto setWb = [&](WritebackKind k) {
        if (wb_set) {
            badMechanism(name, "conflicting writeback tokens in");
        }
        spec.writeback = k;
        wb_set = true;
    };
    auto setLookup = [&](LookupKind k) {
        if (lookup_set) {
            badMechanism(name, "conflicting lookup tokens in");
        }
        spec.lookup = k;
        lookup_set = true;
    };

    std::stringstream ss(name);
    std::string tok;
    bool any = false;
    while (std::getline(ss, tok, '+')) {
        any = true;
        if (tok == "tag") {
            setStore(DirtyStoreKind::InTag);
        } else if (tok == "wt") {
            setStore(DirtyStoreKind::WriteThrough);
        } else if (tok == "dbi") {
            setStore(DirtyStoreKind::Dbi);
        } else if (tok == "dawb") {
            setWb(WritebackKind::DawbSweep);
        } else if (tok == "vwq") {
            setWb(WritebackKind::VwqSweep);
        } else if (tok == "awb") {
            setWb(WritebackKind::DbiAwb);
            if (!store_set) {
                setStore(DirtyStoreKind::Dbi);
            }
        } else if (tok == "skip") {
            setLookup(LookupKind::SkipBypass);
            if (!store_set) {
                setStore(DirtyStoreKind::WriteThrough);
            }
        } else if (tok == "clb") {
            setLookup(LookupKind::ClbBypass);
            if (!store_set) {
                setStore(DirtyStoreKind::Dbi);
            }
        } else if (tok == "ecc") {
            spec.attachEcc = true;
            if (!store_set) {
                setStore(DirtyStoreKind::Dbi);
            }
        } else if (tok == "dir") {
            spec.attachDirectory = true;
            if (!store_set) {
                setStore(DirtyStoreKind::Dbi);
            }
        } else if (tok == "lru") {
            spec.baselineLru = true;
        } else {
            badMechanism(name, "unknown");
        }
    }
    if (!any) {
        badMechanism(name, "unknown");
    }

    // Cross-axis validation: the combinations that cannot work.
    bool is_wt = spec.store == DirtyStoreKind::WriteThrough;
    bool is_dbi = spec.store == DirtyStoreKind::Dbi;
    if (spec.lookup == LookupKind::SkipBypass && !is_wt) {
        badMechanism(name, "'skip' needs a write-through (wt) store in");
    }
    if (spec.lookup == LookupKind::ClbBypass && !is_dbi) {
        badMechanism(name, "'clb' needs a DBI store in");
    }
    if (spec.writeback == WritebackKind::DbiAwb && !is_dbi) {
        badMechanism(name, "'awb' needs a DBI store in");
    }
    if ((spec.attachEcc || spec.attachDirectory) && !is_dbi) {
        badMechanism(name, "'ecc'/'dir' need a DBI store in");
    }
    if (is_wt && spec.writeback != WritebackKind::EvictOrder) {
        badMechanism(name,
                     "writeback sweeps are pointless over 'wt' in");
    }

    spec.label = mechanismSpecString(spec);
    return spec;
}

} // namespace

MechanismSpec
mechanismByName(const std::string &name)
{
    for (Mechanism m : allMechanisms()) {
        if (name == mechanismName(m)) {
            return mechanismSpec(m);
        }
    }
    try {
        return parseComposedSpec(name);
    } catch (const BadMechanism &e) {
        fatal("%s", e.message.c_str());
    }
}

std::optional<MechanismSpec>
tryMechanismByName(const std::string &name, std::string *why)
{
    for (Mechanism m : allMechanisms()) {
        if (name == mechanismName(m)) {
            return mechanismSpec(m);
        }
    }
    try {
        return parseComposedSpec(name);
    } catch (const BadMechanism &e) {
        if (why) {
            *why = e.message;
        }
        return std::nullopt;
    }
}

Mechanism
mechanismPresetByName(const std::string &name)
{
    for (Mechanism m : allMechanisms()) {
        if (name == mechanismName(m)) {
            return m;
        }
    }
    try {
        badMechanism(name, "unknown preset");
    } catch (const BadMechanism &e) {
        fatal("%s", e.message.c_str());
    }
}

const std::vector<Mechanism> &
allMechanisms()
{
    static const std::vector<Mechanism> all = {
        Mechanism::Baseline, Mechanism::TaDip,  Mechanism::Dawb,
        Mechanism::Vwq,      Mechanism::SkipCache, Mechanism::Dbi,
        Mechanism::DbiAwb,   Mechanism::DbiClb, Mechanism::DbiAwbClb,
    };
    return all;
}

std::unique_ptr<Llc>
makeLlc(const MechanismSpec &spec, const LlcConfig &llc_cfg,
        const DbiConfig &dbi_cfg, BackingPort &backing, ShardContext ctx,
        std::shared_ptr<MissPredictor> predictor)
{
    std::unique_ptr<DirtyStore> store;
    switch (spec.store) {
      case DirtyStoreKind::InTag:
        store = std::make_unique<TagDirtyStore>();
        break;
      case DirtyStoreKind::WriteThrough:
        store = std::make_unique<WriteThroughStore>();
        break;
      case DirtyStoreKind::Dbi:
        store = std::make_unique<DbiDirtyStore>(dbi_cfg);
        break;
    }

    std::unique_ptr<WritebackPolicy> wb;
    switch (spec.writeback) {
      case WritebackKind::EvictOrder:
        wb = std::make_unique<EvictOrderPolicy>();
        break;
      case WritebackKind::DawbSweep:
        wb = std::make_unique<DawbSweepPolicy>();
        break;
      case WritebackKind::VwqSweep:
        wb = std::make_unique<VwqSweepPolicy>();
        break;
      case WritebackKind::DbiAwb:
        wb = std::make_unique<DbiAwbPolicy>();
        break;
    }

    std::unique_ptr<LookupPolicy> lookup;
    switch (spec.lookup) {
      case LookupKind::Always:
        lookup = std::make_unique<AlwaysLookup>();
        break;
      case LookupKind::SkipBypass:
        lookup = std::make_unique<SkipBypassLookup>(predictor);
        break;
      case LookupKind::ClbBypass:
        lookup = std::make_unique<ClbBypassLookup>(predictor);
        break;
    }

    return std::make_unique<Llc>(llc_cfg, backing, ctx, std::move(store),
                                 std::move(wb), std::move(lookup));
}

} // namespace dbsim
