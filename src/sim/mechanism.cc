#include "mechanism.hh"

#include "common/logging.hh"

namespace dbsim {

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::Baseline:
        return "Baseline";
      case Mechanism::TaDip:
        return "TA-DIP";
      case Mechanism::Dawb:
        return "DAWB";
      case Mechanism::Vwq:
        return "VWQ";
      case Mechanism::SkipCache:
        return "SkipCache";
      case Mechanism::Dbi:
        return "DBI";
      case Mechanism::DbiAwb:
        return "DBI+AWB";
      case Mechanism::DbiClb:
        return "DBI+CLB";
      case Mechanism::DbiAwbClb:
        return "DBI+AWB+CLB";
    }
    return "?";
}

Mechanism
mechanismByName(const std::string &name)
{
    for (Mechanism m : allMechanisms()) {
        if (name == mechanismName(m)) {
            return m;
        }
    }
    fatal("unknown mechanism '%s'", name.c_str());
}

const std::vector<Mechanism> &
allMechanisms()
{
    static const std::vector<Mechanism> all = {
        Mechanism::Baseline, Mechanism::TaDip,  Mechanism::Dawb,
        Mechanism::Vwq,      Mechanism::SkipCache, Mechanism::Dbi,
        Mechanism::DbiAwb,   Mechanism::DbiClb, Mechanism::DbiAwbClb,
    };
    return all;
}

} // namespace dbsim
