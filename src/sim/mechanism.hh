/**
 * @file
 * The evaluated mechanisms (Table 2), decomposed.
 *
 * A mechanism is not a cache subtype but a tuple over the three policy
 * axes of llc/policies.hh — dirty store x writeback policy x lookup
 * policy — plus optional metadata attachments (hetero-ECC, coherence
 * directory) and the replacement-policy choice. Table 2's names are
 * presets over these tuples; mechanismByName() additionally parses
 * composed specs ("dbi+dawb", "dawb+clb", "dbi+awb+ecc", ...) so
 * experiments can explore the whole cross-product.
 */

#ifndef DBSIM_SIM_MECHANISM_HH
#define DBSIM_SIM_MECHANISM_HH

#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "llc/llc.hh"
#include "pred/miss_predictor.hh"

namespace dbsim {

/** Mechanisms from Table 2 (the preset tuples). */
enum class Mechanism
{
    Baseline,   ///< LRU cache
    TaDip,      ///< thread-aware dynamic insertion policy
    Dawb,       ///< DRAM-aware writeback [27] (+TA-DIP)
    Vwq,        ///< Virtual Write Queue [51] (+TA-DIP)
    SkipCache,  ///< per-application lookup bypass [44] (+TA-DIP)
    Dbi,        ///< plain DBI (+TA-DIP)
    DbiAwb,     ///< DBI + aggressive writeback
    DbiClb,     ///< DBI + cache lookup bypass
    DbiAwbClb,  ///< DBI + both optimizations
};

/** The writeback-policy axis (what a dirty eviction triggers). */
enum class WritebackKind : std::uint8_t
{
    EvictOrder, ///< nothing extra: write back in eviction order
    DawbSweep,  ///< DAWB full-row tag sweep
    VwqSweep,   ///< VWQ SSV-filtered LRU-way sweep
    DbiAwb,     ///< DBI aggressive writeback (row listed by the DBI)
};

/** The lookup-policy axis (may reads bypass the tag lookup?). */
enum class LookupKind : std::uint8_t
{
    Always,     ///< every read performs the tag lookup
    SkipBypass, ///< Skip-Cache predicted-miss bypass
    ClbBypass,  ///< DBI cache lookup bypass
};

/**
 * A fully-specified mechanism: the policy tuple the LLC is composed
 * from, plus metadata attachments and the replacement-policy choice.
 * Implicitly constructible from a Table 2 Mechanism, so preset-based
 * code (`cfg.mech = Mechanism::Dawb`) keeps working unchanged.
 */
struct MechanismSpec
{
    DirtyStoreKind store = DirtyStoreKind::InTag;
    WritebackKind writeback = WritebackKind::EvictOrder;
    LookupKind lookup = LookupKind::Always;

    /** Baseline preset: plain LRU replacement instead of TA-DIP/DRRIP. */
    bool baselineLru = false;

    /** Attach the heterogeneous-ECC tracker (needs a DBI store). */
    bool attachEcc = false;

    /** Attach the split coherence directory (needs a DBI store). */
    bool attachDirectory = false;

    /** Display label: the Table 2 name, or the canonical spec string. */
    std::string label = "TA-DIP";

    MechanismSpec() = default;
    MechanismSpec(Mechanism m);  // NOLINT: implicit by design

    /** Does this composition need a miss predictor? */
    bool needsPredictor() const { return lookup != LookupKind::Always; }

    /** Policy-tuple equality (labels are display-only and ignored). */
    friend bool
    operator==(const MechanismSpec &a, const MechanismSpec &b)
    {
        return a.store == b.store && a.writeback == b.writeback &&
               a.lookup == b.lookup && a.baselineLru == b.baselineLru &&
               a.attachEcc == b.attachEcc &&
               a.attachDirectory == b.attachDirectory;
    }
    friend bool
    operator!=(const MechanismSpec &a, const MechanismSpec &b)
    {
        return !(a == b);
    }
};

/** gtest/diagnostic printing. */
std::ostream &operator<<(std::ostream &os, const MechanismSpec &spec);

/** Display label used in the paper's figures. */
const char *mechanismName(Mechanism m);

/** The policy tuple a Table 2 preset stands for. */
MechanismSpec mechanismSpec(Mechanism m);

/**
 * Canonical composed-spec string for a tuple ("dbi+dawb+clb+lru"); the
 * preset label if the tuple matches a Table 2 preset.
 */
std::string mechanismSpecString(const MechanismSpec &spec);

/**
 * Mechanism from a label: a Table 2 preset name ("DBI+AWB"), or a
 * composed spec of '+'-separated lowercase tokens:
 *
 *   dirty store   tag | wt | dbi     (default tag; inferred dbi for
 *                                     awb/clb/ecc/dir, wt for skip)
 *   writeback     dawb | vwq | awb   (default evict-order)
 *   lookup        skip | clb         (default always-lookup)
 *   metadata      ecc | dir          (hetero-ECC / coherence directory)
 *   replacement   lru                (default TA-DIP or DRRIP)
 *
 * fatal() on unknown names/tokens or invalid combinations, listing the
 * valid presets and this grammar.
 */
MechanismSpec mechanismByName(const std::string &name);

/**
 * Non-fatal mechanismByName: parse failures return std::nullopt and
 * (when given) fill `why` with the same message fatal() would print.
 * For long-lived callers — the farm service must reject a bad request
 * without taking the whole warm process down.
 */
std::optional<MechanismSpec> tryMechanismByName(const std::string &name,
                                                std::string *why = nullptr);

/**
 * Table 2 preset from its exact name; fatal() (with the same help text
 * as mechanismByName) if the name is not a preset. For figure
 * formatters that key off the closed Table 2 set.
 */
Mechanism mechanismPresetByName(const std::string &name);

/** All mechanisms in Table 2 order. */
const std::vector<Mechanism> &allMechanisms();

/**
 * Build an LLC (slice) from a mechanism spec (the one factory every
 * simulation goes through). `predictor` is required iff
 * spec.needsPredictor(); on sliced machines each slice gets its own
 * predictor instance. Metadata attachments are the caller's job (they
 * need the built cache's DBI; see System's constructor).
 */
std::unique_ptr<Llc> makeLlc(const MechanismSpec &spec,
                             const LlcConfig &llc_cfg,
                             const DbiConfig &dbi_cfg,
                             BackingPort &backing, ShardContext ctx,
                             std::shared_ptr<MissPredictor> predictor);

} // namespace dbsim

#endif // DBSIM_SIM_MECHANISM_HH
