/**
 * @file
 * The evaluated mechanisms (Table 2).
 */

#ifndef DBSIM_SIM_MECHANISM_HH
#define DBSIM_SIM_MECHANISM_HH

#include <string>
#include <vector>

namespace dbsim {

/** Mechanisms from Table 2. */
enum class Mechanism
{
    Baseline,   ///< LRU cache
    TaDip,      ///< thread-aware dynamic insertion policy
    Dawb,       ///< DRAM-aware writeback [27] (+TA-DIP)
    Vwq,        ///< Virtual Write Queue [51] (+TA-DIP)
    SkipCache,  ///< per-application lookup bypass [44] (+TA-DIP)
    Dbi,        ///< plain DBI (+TA-DIP)
    DbiAwb,     ///< DBI + aggressive writeback
    DbiClb,     ///< DBI + cache lookup bypass
    DbiAwbClb,  ///< DBI + both optimizations
};

/** Display label used in the paper's figures. */
const char *mechanismName(Mechanism m);

/** Mechanism from label; fatal() on unknown names. */
Mechanism mechanismByName(const std::string &name);

/** All mechanisms in Table 2 order. */
const std::vector<Mechanism> &allMechanisms();

} // namespace dbsim

#endif // DBSIM_SIM_MECHANISM_HH
