#include "system.hh"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>

#include "coherence/directory_index.hh"
#include "common/logging.hh"
#include "ecc/ecc_index.hh"
#include "model/storage_model.hh"
#include "telemetry/profiler.hh"
#include "telemetry/trace_merge.hh"
#include "workload/champsim_trace.hh"
#include "workload/trace_decode.hh"

namespace dbsim {

LlcConfig
SystemConfig::resolveLlc() const
{
    LlcConfig llc;
    llc.sizeBytes = llcBytesPerCore * numCores;
    llc.numCores = numCores;
    llc.seed = seed + 101;

    // Table 1: 16/32/32/32-way, tag 10/12/13/14, data 24/29/31/33 for
    // 1/2/4/8 cores.
    std::uint32_t assoc, tag_lat, data_lat;
    switch (numCores) {
      case 1:
        assoc = 16;
        tag_lat = 10;
        data_lat = 24;
        break;
      case 2:
        assoc = 32;
        tag_lat = 12;
        data_lat = 29;
        break;
      case 4:
        assoc = 32;
        tag_lat = 13;
        data_lat = 31;
        break;
      case 8:
      default:
        assoc = 32;
        tag_lat = 14;
        data_lat = 33;
        break;
    }
    llc.assoc = llcAssoc ? llcAssoc : assoc;
    llc.tagLatency = llcTagLatency ? llcTagLatency : tag_lat;
    llc.dataLatency = llcDataLatency ? llcDataLatency : data_lat;

    ReplPolicy non_base = useDrrip ? ReplPolicy::Drrip : ReplPolicy::TaDip;
    llc.repl = mech.baselineLru ? ReplPolicy::Lru : non_base;
    return llc;
}

ShardTopology
SystemConfig::topology() const
{
    TopologySpec spec;
    spec.numCores = numCores;
    spec.llcSlices = llcSlices;
    spec.dramChannels = dram.channels;
    spec.hopLatency = shardHopLatency;
    spec.numShards = numShards;
    if (sampling.enabled()) {
        // Functional warming reaches remote slices by direct call,
        // outside the epoch-barrier protocol, so sampled runs execute
        // single-threaded. Worker count never changes statistics
        // (the sharding golden invariant), so results are unaffected.
        spec.numShards = 1;
    }
    spec.rowBytes = dram.rowBytes;
    spec.llcTotalBytes = llcBytesPerCore * numCores;
    spec.llcAssoc = resolveLlc().assoc;
    spec.dcachePageBytes = dcache.enable ? dcache.pageBytes : 0;
    return resolveTopology(spec);
}

namespace {

bool
endsWith(const std::string &str, const char *suffix)
{
    const std::size_t n = std::strlen(suffix);
    return str.size() >= n &&
           str.compare(str.size() - n, n, suffix) == 0;
}

/**
 * Open a trace file as the right TraceSource for its format. Extension
 * decides when it can: ".champsim"/".bin" (with an optional
 * ".gz"/".xz"/".zst" compression suffix) is ChampSim binary,
 * ".trace"/".txt" is the native text format. Anything else is sniffed:
 * a compression magic means ChampSim (the only format read compressed),
 * and otherwise the first bytes pick binary vs text.
 */
std::unique_ptr<TraceSource>
openTraceFile(const std::string &path)
{
    std::string base = path;
    bool compressed = false;
    for (const char *ext : {".gz", ".xz", ".zst", ".zstd"}) {
        if (endsWith(base, ext)) {
            compressed = true;
            base.resize(base.size() - std::strlen(ext));
            break;
        }
    }
    if (endsWith(base, ".champsim") || endsWith(base, ".bin")) {
        return std::make_unique<ChampSimTrace>(path);
    }
    if (endsWith(base, ".trace") || endsWith(base, ".txt")) {
        fatal_if(compressed,
                 "trace %s: compressed text traces are not supported; "
                 "decompress it first", path.c_str());
        return std::make_unique<FileTrace>(path);
    }
    if (sniffTraceCodec(path) != TraceCodec::Raw) {
        return std::make_unique<ChampSimTrace>(path);
    }
    // Unknown extension, uncompressed: peek at the head. The text
    // format is pure printable ASCII; ChampSim records are full of NULs
    // and high bytes within their first 64 bytes.
    std::FILE *f = std::fopen(path.c_str(), "rb");
    fatal_if(!f, "cannot open trace file %s", path.c_str());
    unsigned char head[64];
    std::size_t got = std::fread(head, 1, sizeof(head), f);
    std::fclose(f);
    for (std::size_t i = 0; i < got; ++i) {
        if (head[i] != '\t' && head[i] != '\n' && head[i] != '\r' &&
            (head[i] < 0x20 || head[i] > 0x7e)) {
            return std::make_unique<ChampSimTrace>(path);
        }
    }
    return std::make_unique<FileTrace>(path);
}

} // namespace

/**
 * The LlcPort the cores of one shard talk to: forwards each access to
 * the slice owning its address — a direct call when the slice lives on
 * this shard, a fabric round-trip (hop each way) when it does not.
 */
class ShardLlcPort : public LlcPort
{
  public:
    ShardLlcPort(const ShardTopology &topology, ShardFabric &fabric,
                 const std::vector<std::unique_ptr<Llc>> &llc_slices,
                 std::uint32_t shard)
        : topo(topology), fab(fabric), slices(llc_slices), part(shard)
    {
    }

    void
    read(Addr block_addr, std::uint32_t core, Cycle when,
         Callback cb) override
    {
        std::uint32_t s = topo.sliceOf(block_addr);
        std::uint32_t dst = topo.partitionOfSlice(s);
        Llc *llc = slices[s].get();
        if (dst == part) {
            llc->read(block_addr, core, when, std::move(cb));
            return;
        }
        ShardFabric *f = &fab;
        std::uint32_t src = part;
        f->send(src, dst, when,
                [llc, block_addr, core, cb = std::move(cb), f, src,
                 dst](Cycle at) {
                    llc->read(block_addr, core, at,
                              [f, src, dst, cb](Cycle done) {
                                  // Response hop back to the core's
                                  // shard.
                                  f->send(dst, src, done, cb,
                                          "llcReadResp");
                              });
                },
                "llcRead");
    }

    void
    writeback(Addr block_addr, std::uint32_t core, Cycle when) override
    {
        std::uint32_t s = topo.sliceOf(block_addr);
        std::uint32_t dst = topo.partitionOfSlice(s);
        Llc *llc = slices[s].get();
        if (dst == part) {
            llc->writeback(block_addr, core, when);
            return;
        }
        fab.send(part, dst, when, [llc, block_addr, core](Cycle at) {
            llc->writeback(block_addr, core, at);
        }, "llcWriteback");
    }

    void
    functionalAccess(Addr block_addr, std::uint32_t core,
                     bool is_write) override
    {
        // Zero-time warming reaches the owning slice by direct call:
        // the fabric exists to model hop timing, and the functional
        // path has none. Sampled runs execute single-threaded (see
        // SystemConfig::topology), so the cross-shard call is safe.
        slices[topo.sliceOf(block_addr)]->functionalAccess(block_addr,
                                                           core,
                                                           is_write);
    }

  private:
    const ShardTopology &topo;
    ShardFabric &fab;
    const std::vector<std::unique_ptr<Llc>> &slices;
    std::uint32_t part;
};

/**
 * Routes one LLC slice's memory traffic to the channel owning each
 * address: a direct call for the shard-local channel, a fabric
 * round-trip otherwise (slice->channel traffic is the second kind of
 * cross-shard message the tentpole names). A BackingPort like every
 * other level, so anything composed on top of it (the LLC directly, or
 * an interposed DramCache) is oblivious to the routing.
 */
class ShardMemRouter : public BackingPort
{
  public:
    ShardMemRouter(const ShardTopology &topology, ShardFabric &fabric,
                   const std::vector<std::unique_ptr<DramController>> &
                       channels,
                   std::uint32_t shard)
        : topo(topology), fab(fabric), chans(channels), part(shard)
    {
    }

    const DramAddrMap &
    addrMap() const override
    {
        // Machine-wide map: every channel's copy is identical.
        return chans[0]->addrMap();
    }

    void
    read(Addr block_addr, Cycle when, ReadCallback cb) override
    {
        std::uint32_t c = topo.channelOf(block_addr);
        std::uint32_t dst = topo.partitionOfChannel(c);
        DramController *dc = chans[c].get();
        if (dst == part) {
            dc->enqueueRead(block_addr, when, std::move(cb));
            return;
        }
        ShardFabric *f = &fab;
        std::uint32_t src = part;
        f->send(src, dst, when,
                [dc, block_addr, cb = std::move(cb), f, src,
                 dst](Cycle at) {
                    dc->enqueueRead(block_addr, at,
                                    [f, src, dst, cb](Cycle done) {
                                        f->send(dst, src, done, cb,
                                                "dramReadResp");
                                    });
                },
                "dramRead");
    }

    void
    write(Addr block_addr, Cycle when) override
    {
        std::uint32_t c = topo.channelOf(block_addr);
        std::uint32_t dst = topo.partitionOfChannel(c);
        DramController *dc = chans[c].get();
        if (dst == part) {
            dc->enqueueWrite(block_addr, when);
            return;
        }
        fab.send(part, dst, when, [dc, block_addr](Cycle at) {
            dc->enqueueWrite(block_addr, at);
        }, "dramWrite");
    }

  private:
    const ShardTopology &topo;
    ShardFabric &fab;
    const std::vector<std::unique_ptr<DramController>> &chans;
    std::uint32_t part;
};

/**
 * Routes fabric message lifecycle into the per-shard telemetry sinks,
 * turning every cross-shard message into a flow arrow in the merged
 * trace. Threading follows the FlowObserver contract: a send is
 * recorded by the sending shard's sink on the thread running that
 * shard's epoch (each sink is owned by its shard), a delivery by the
 * destination's sink at the single-threaded barrier.
 */
class ShardFlowTracer : public FlowObserver
{
  public:
    explicit ShardFlowTracer(
        std::vector<std::unique_ptr<telemetry::SimTelemetry>> &sinks)
        : telems(sinks)
    {
    }

    void
    onSend(std::uint32_t src, std::uint32_t dst, Cycle send_time,
           Cycle deliver_time, std::uint64_t flow_id,
           const char *kind) override
    {
        if (src < telems.size() && telems[src]) {
            telems[src]->fabricSend(kind, src, dst, send_time,
                                    deliver_time, flow_id);
        }
    }

    void
    onDeliver(std::uint32_t src, std::uint32_t dst, Cycle deliver_time,
              std::uint64_t flow_id, const char *kind) override
    {
        if (dst < telems.size() && telems[dst]) {
            telems[dst]->fabricDeliver(kind, src, dst, deliver_time,
                                       flow_id);
        }
    }

  private:
    std::vector<std::unique_ptr<telemetry::SimTelemetry>> &telems;
};

System::System(const SystemConfig &config, const WorkloadMix &mix)
    : cfg(config), workload(mix), topo(config.topology()),
      statSet("system")
{
    fatal_if(workload.size() != cfg.numCores,
             "workload has %zu entries for %u cores", workload.size(),
             cfg.numCores);

    const std::uint32_t P = topo.partitions;
    for (std::uint32_t p = 0; p < P; ++p) {
        queues.push_back(std::make_unique<EventQueue>());
        queuePtrs.push_back(queues.back().get());
    }
    if (topo.sharded()) {
        fab = std::make_unique<ShardFabric>(P, topo.hopLatency);
    }

    // The profiler attaches before any component exists: schedule()
    // tags events only while a profile is attached, so attaching after
    // the first schedule would mix tagged and untagged nodes.
    if (cfg.profile) {
        if constexpr (!prof::kEnabled) {
            warn("profiling requested but this build has DBSIM_PROFILE "
                 "off; ignoring");
        } else {
            profiler = std::make_unique<telemetry::HostProfiler>(P);
            for (std::uint32_t p = 0; p < P; ++p) {
                queues[p]->attachProfile(profiler->queueProfile(p));
            }
        }
    }

    DramConfig dram_cfg = cfg.dram;
    dram_cfg.channels = topo.channels;
    for (std::uint32_t c = 0; c < topo.channels; ++c) {
        std::uint32_t p = topo.partitionOfChannel(c);
        chans.push_back(std::make_unique<DramController>(
            dram_cfg, ShardContext(p, *queues[p], fab.get())));
    }

    // Machine-wide capacity, divided evenly across slices (validated by
    // resolveTopology); slice 0 keeps the unsliced seeds exactly so the
    // Table-1 machine is bit-identical to the pre-shard simulator.
    LlcConfig llc_cfg = cfg.resolveLlc();
    llc_cfg.sizeBytes /= topo.slices;

    SkipPredictorConfig pc = cfg.pred;
    pc.numThreads = cfg.numCores;

    // Compose each slice's backing chain bottom-up before the slice
    // itself exists, so the final port is injected through the Llc
    // constructor: channel -> [router] -> [dcache] -> slice.
    if (topo.sharded()) {
        for (std::uint32_t s = 0; s < topo.slices; ++s) {
            memRouters.push_back(std::make_unique<ShardMemRouter>(
                topo, *fab, chans, topo.partitionOfSlice(s)));
        }
    }
    if (cfg.dcache.enable) {
        DCacheConfig dc_cfg = cfg.dcache;
        fatal_if(topo.slices > 1 &&
                 dc_cfg.sizeBytes % topo.slices != 0,
                 "dcache capacity %llu is not divisible into %u slices",
                 static_cast<unsigned long long>(dc_cfg.sizeBytes),
                 topo.slices);
        dc_cfg.sizeBytes /= topo.slices;
        for (std::uint32_t s = 0; s < topo.slices; ++s) {
            DCacheConfig slice_dc = dc_cfg;
            slice_dc.seed = cfg.seed + 3023 + 104729ull * s;
            std::uint32_t p = topo.partitionOfSlice(s);
            BackingPort &below =
                topo.sharded()
                    ? static_cast<BackingPort &>(*memRouters[s])
                    : static_cast<BackingPort &>(
                          *chans[s % topo.channels]);
            dcaches.push_back(std::make_unique<DramCache>(
                slice_dc, below,
                ShardContext(p, *queues[p], fab.get())));
        }
    }

    for (std::uint32_t s = 0; s < topo.slices; ++s) {
        LlcConfig slice_cfg = llc_cfg;
        slice_cfg.seed = llc_cfg.seed + 7919ull * s;
        DbiConfig dbi_cfg = cfg.dbi;
        dbi_cfg.seed = cfg.seed + 1009 + 104729ull * s;

        // Slice-local policy tuple: each slice composes its own
        // DirtyStore/WritebackPolicy/LookupPolicy (and predictor —
        // shared predictor state across shards would race).
        std::shared_ptr<MissPredictor> pred;
        if (cfg.mech.needsPredictor()) {
            pred = std::make_shared<SkipPredictor>(pc);
        }
        predictors.push_back(pred);

        std::uint32_t p = topo.partitionOfSlice(s);
        BackingPort &backing =
            cfg.dcache.enable
                ? static_cast<BackingPort &>(*dcaches[s])
                : (topo.sharded()
                       ? static_cast<BackingPort &>(*memRouters[s])
                       : static_cast<BackingPort &>(
                             *chans[s % topo.channels]));
        slices.push_back(makeLlc(cfg.mech, slice_cfg, dbi_cfg, backing,
                                 ShardContext(p, *queues[p], fab.get()),
                                 pred));

        // Metadata subsystems the spec attaches (Sections 2.3 and 3.3):
        // both hang off the slice's DBI organization. They are passive
        // observers, so the simulation's timing and stats are identical
        // with or without them.
        if (cfg.mech.attachEcc) {
            const Dbi *d = slices[s]->dbiIndex();
            fatal_if(!d, "the hetero-ECC attachment requires a DBI store");
            StorageParams sp;
            sp.cacheBytes = slice_cfg.sizeBytes;
            sp.assoc = slice_cfg.assoc;
            sp.alpha = dbi_cfg.alpha;
            sp.granularity = dbi_cfg.granularity;
            sp.dbiAssoc = dbi_cfg.assoc;
            metaIndexes.push_back(std::make_unique<HeteroEccIndex>(
                d->trackableBlocks(), sp));
            metaSlices.push_back(s);
        }
        if (cfg.mech.attachDirectory) {
            fatal_if(!slices[s]->dbiIndex(),
                     "the coherence-directory attachment requires a DBI "
                     "store");
            DbiConfig dir_cfg = dbi_cfg;
            dir_cfg.seed = cfg.seed + 2017 + 104729ull * s;
            metaIndexes.push_back(std::make_unique<SplitDirectoryIndex>(
                dir_cfg, slices[s]->tags().numBlocks()));
            metaSlices.push_back(s);
        }
    }
    for (std::size_t i = 0; i < metaIndexes.size(); ++i) {
        slices[metaSlices[i]]->attachMetadata(metaIndexes[i].get());
    }

    if (cfg.auditEvery > 0) {
        for (std::uint32_t s = 0; s < topo.slices; ++s) {
            audit::AuditConfig ac;
            ac.checkEvery = cfg.auditEvery;
            ac.shardId = topo.partitionOfSlice(s);
            auditors.push_back(std::make_unique<audit::InvariantAuditor>(
                *slices[s], ac));
            if (cfg.dcache.enable) {
                dcacheAuditors.push_back(
                    std::make_unique<audit::DCacheAuditor>(*dcaches[s],
                                                           ac));
            }
        }
    }

    if (topo.sharded()) {
        for (std::uint32_t p = 0; p < P; ++p) {
            corePorts.push_back(std::make_unique<ShardLlcPort>(
                topo, *fab, slices, p));
        }
    }

    if (cfg.telemetry.enabled()) {
        if constexpr (!telemetry::kEnabled) {
            warn("telemetry requested but this build has DBSIM_TELEMETRY "
                 "off; ignoring");
        } else {
            for (std::uint32_t p = 0; p < P; ++p) {
                setupTelemetry(p);
            }
            if (fab && !cfg.telemetry.tracePath.empty()) {
                flowTracer = std::make_unique<ShardFlowTracer>(telems);
                fab->attachFlowObserver(flowTracer.get());
            }
        }
    }

    for (auto &slice : slices) {
        slice->registerStats(statSet);
    }
    for (auto &dc : dcaches) {
        dc->registerStats(statSet);
    }
    for (auto &chan : chans) {
        chan->registerStats(statSet);
    }
    if (fab) {
        fab->registerStats(statSet);
    }

    progress.resize(P);
    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        std::uint32_t p = topo.partitionOfCore(c);
        std::unique_ptr<TraceSource> src;
        if (!cfg.traceFile.empty()) {
            // Trace-driven run: every core streams the same file (each
            // through its own decoder, so cores don't share a cursor).
            src = openTraceFile(cfg.traceFile);
        } else if (!workload[c].empty() && workload[c][0] == '@') {
            src = openTraceFile(workload[c].substr(1));
        } else {
            const BenchProfile &prof = benchmarkByName(workload[c]);
            src = std::make_unique<SyntheticTrace>(prof, c, cfg.seed);
        }
        if (cfg.sampling.enabled()) {
            // Interpose the SMARTS sampler: warmed ops go through the
            // core's private hierarchy functionally (and on down the
            // functional chain); measured ops reach the Core untouched.
            src = std::make_unique<SampledTrace>(
                std::move(src), cfg.sampling,
                [this, c](Addr a, bool w) {
                    mems[c]->functionalAccess(a, w);
                });
        }
        traces.push_back(std::move(src));
        LlcPort &below = topo.sharded()
                             ? static_cast<LlcPort &>(*corePorts[p])
                             : static_cast<LlcPort &>(*slices[0]);
        mems.push_back(std::make_unique<CoreMemory>(cfg.mem, below, c,
                                                    cfg.seed + 31 * c));
        mems.back()->registerStats(statSet);
        cores.push_back(
            std::make_unique<Core>(c, cfg.core, *traces[c], *mems[c],
                                   ShardContext(p, *queues[p], fab.get())));
        if (!topo.sharded()) {
            cores.back()->onWarmed(
                [this](std::uint32_t id) { onCoreWarmed(id); });
            cores.back()->onDone(
                [this](std::uint32_t id) { onCoreDone(id); });
        } else {
            // Milestones fire on whichever thread runs the core's
            // shard; they touch only that shard's tally. The epoch loop
            // acts on them at the next barrier, which keeps warmup
            // snapshots and the halt deterministic in epoch index —
            // independent of thread count.
            cores.back()->onWarmed(
                [this, p](std::uint32_t) { ++progress[p].warmed; });
            cores.back()->onDone(
                [this, p](std::uint32_t) { ++progress[p].done; });
        }
    }
}

System::~System() = default;

void
System::setupTelemetry(std::uint32_t part)
{
    telemetry::TelemetryConfig tc =
        topo.sharded() ? cfg.telemetry.withShardSuffix(part)
                       : cfg.telemetry;
    auto t = std::make_unique<telemetry::SimTelemetry>(tc);
    Llc *llc = part < topo.slices ? slices[part].get() : nullptr;
    DramController *dc = part < topo.channels ? chans[part].get()
                                              : nullptr;
    if (llc) {
        llc->attachTelemetry(t.get());
    }
    if (dc) {
        dc->attachObserver(t.get());
    }

    telemetry::StatSampler *s = t->sampler();
    if (!s) {
        telems.push_back(std::move(t));
        return;
    }
    // Gauges read component state through stat-free const accessors
    // only; counters/rates are tracked with sampler-private last-value
    // bookkeeping. Either way the sampled run's stats stay identical
    // to an unsampled run's.
    if (llc) {
        Dbi *d = llc->dbiIndex();
        if (d) {
            s->addGauge("dirtyBlocks",
                        [d] { return double(d->countDirtyBlocks()); });
            s->addGauge("dbiValidEntries",
                        [d] { return double(d->countValidEntries()); });
        } else {
            const TagStore &ts = llc->tags();
            s->addGauge("dirtyBlocks",
                        [&ts] { return double(ts.countDirty()); });
        }
    }
    if (dc) {
        s->addGauge("writeQueueDepth",
                    [dc] { return double(dc->pendingWrites()); });
        s->addGauge("readQueueDepth",
                    [dc] { return double(dc->pendingReads()); });
        s->addGauge("drainMode",
                    [dc] { return dc->draining() ? 1.0 : 0.0; });
        s->addCounter("dramReads", dc->statReads);
        s->addCounter("dramWrites", dc->statWrites);
        s->addRate("readRowHitRate", dc->statReadRowHits, dc->statReads);
        s->addRate("writeRowHitRate", dc->statWriteRowHits,
                   dc->statWrites);
    }
    if (llc) {
        s->addCounter("llcDemandMisses", llc->statDemandMisses);
        s->addCounter("llcWbToDram", llc->statWbToDram);
    }
    telems.push_back(std::move(t));
}

Dbi *
System::dbi()
{
    return slices[0]->dbiIndex();
}

std::uint64_t
System::eventsDispatched() const
{
    std::uint64_t n = 0;
    for (const EventQueue *q : queuePtrs) {
        n += q->dispatched();
    }
    return n;
}

void
System::onCoreWarmed(std::uint32_t)
{
    ++warmedCount;
    if (warmedCount == cfg.numCores) {
        // All cores crossed their warmup boundary: the measurement
        // window for system-wide stats starts here.
        statSet.snapshotAll();
        warmTime = queues[0]->now();
    }
}

void
System::onCoreDone(std::uint32_t)
{
    ++doneCount;
    if (doneCount == cfg.numCores) {
        doneTime = queues[0]->now();
        for (auto &core : cores) {
            core->halt();
        }
    }
}

void
System::runSingle()
{
    EventQueue &eq = *queues[0];
    // The sampler is polled (one comparison) rather than event-driven:
    // scheduling sampling events would keep the queue alive and perturb
    // same-cycle FIFO ordering, breaking run/no-run identity.
    telemetry::StatSampler *sampler =
        !telems.empty() && telems[0] ? telems[0]->sampler() : nullptr;
    const std::uint64_t prof_begin = profiler ? prof::nowNs() : 0;
    while (eq.step()) {
        if constexpr (telemetry::kEnabled) {
            if (sampler) {
                sampler->poll(eq.now());
            }
        }
        if (eq.now() > cfg.maxCycles) {
            fatal("simulation exceeded %llu cycles: likely deadlock",
                  static_cast<unsigned long long>(cfg.maxCycles));
        }
    }
    if (profiler) {
        // The whole run is one "epoch" of shard 0: all work, no stall.
        profiler->recordEpoch(0, prof::nowNs() - prof_begin,
                              eq.dispatched());
    }
    panic_if(doneCount != cfg.numCores,
             "event queue drained before all cores finished");
}

void
System::runShardEpoch(std::uint32_t part, Cycle limit)
{
    EventQueue &q = *queues[part];
    telemetry::StatSampler *sampler = nullptr;
    if constexpr (telemetry::kEnabled) {
        if (part < telems.size() && telems[part]) {
            sampler = telems[part]->sampler();
        }
    }
    while (q.pending() != 0 && q.nextTime() <= limit) {
        q.step();
        if constexpr (telemetry::kEnabled) {
            if (sampler) {
                sampler->poll(q.now());
            }
        }
    }
    // Advance the shard's clock to the barrier even if it went idle
    // early, so next epoch's deliveries can never be in its past.
    q.runUntil(limit);
}

void
System::runSharded()
{
    const std::uint32_t P = topo.partitions;
    const Cycle W = topo.hopLatency;
    ShardWorkers pool(topo.workers);

    // Per-epoch profiling scratch. A span is written by the worker
    // thread running that shard's epoch and read by the main thread
    // after the pool.run() join (which orders the accesses); padding
    // keeps neighboring shards off each other's cache lines.
    struct alignas(64) EpochSpan
    {
        std::uint64_t beginNs = 0;
        std::uint64_t endNs = 0;
    };
    std::vector<EpochSpan> spans(profiler ? P : 0);
    std::vector<std::uint64_t> dispatchedBase(profiler ? P : 0, 0);

    // Conservative time-window loop. Epoch k runs every shard
    // independently over [epochBase, epochBase+W); messages they send
    // deliver >= one full window later (send time + hop, hop == W), so
    // nothing a concurrent shard does this epoch can affect another
    // until after the barrier. See common/shard.hh.
    Cycle epoch_base = 0;
    for (;;) {
        fatal_if(epoch_base > cfg.maxCycles,
                 "simulation exceeded %llu cycles: likely deadlock",
                 static_cast<unsigned long long>(cfg.maxCycles));
        const Cycle limit = epoch_base + W - 1;
        const std::uint64_t iter_begin = profiler ? prof::nowNs() : 0;
        pool.run([&](std::uint32_t w) {
            // Static shard->worker assignment; any assignment yields
            // the same simulation, this one just balances load.
            for (std::uint32_t p = w; p < P; p += pool.count()) {
                if (profiler) {
                    const std::uint64_t b = prof::nowNs();
                    runShardEpoch(p, limit);
                    spans[p].beginNs = b;
                    spans[p].endNs = prof::nowNs();
                } else {
                    runShardEpoch(p, limit);
                }
            }
        });
        if (profiler) {
            const std::uint64_t d0 = prof::nowNs();
            fab->deliverAll(queuePtrs);
            profiler->addFabricDrain(prof::nowNs() - d0);
        } else {
            fab->deliverAll(queuePtrs);
        }

        // Barrier-time milestone processing (single-threaded, so the
        // cross-shard stat snapshot and the halt are race-free and land
        // at a deterministic epoch boundary).
        std::uint32_t warmed = 0;
        std::uint32_t done = 0;
        for (const ShardProgress &pr : progress) {
            warmed += pr.warmed;
            done += pr.done;
        }
        if (!warmSnapshotTaken && warmed == cfg.numCores) {
            statSet.snapshotAll();
            warmTime = limit + 1;
            warmedCount = warmed;
            warmSnapshotTaken = true;
        }
        if (!haltIssued && done == cfg.numCores) {
            doneTime = limit + 1;
            for (auto &core : cores) {
                core->halt();
            }
            doneCount = done;
            haltIssued = true;
        }

        if (profiler) {
            // Work is each shard's measured epoch span; stall is the
            // rest of the iteration (waiting for the slowest shard,
            // fabric drain, milestones), so work + stall sums to the
            // engine's wall time per shard by measurement.
            const std::uint64_t iter_end = prof::nowNs();
            for (std::uint32_t p = 0; p < P; ++p) {
                const std::uint64_t work =
                    spans[p].endNs - spans[p].beginNs;
                const std::uint64_t disp = queuePtrs[p]->dispatched();
                profiler->recordEpoch(p, work,
                                      disp - dispatchedBase[p]);
                dispatchedBase[p] = disp;
                const std::uint64_t span = iter_end - iter_begin;
                profiler->recordStall(p, span > work ? span - work : 0);
            }
        }

        Cycle min_next = kCycleMax;
        for (const EventQueue *q : queuePtrs) {
            min_next = std::min(min_next, q->nextTime());
        }
        if (min_next == kCycleMax) {
            break;  // every queue drained and no messages in flight
        }
        epoch_base += W;
        if (min_next >= epoch_base + W) {
            // Dead air: no shard has an event this epoch, so jump to
            // the window containing the globally earliest one.
            epoch_base = min_next - (min_next % W);
        }
    }
    panic_if(!haltIssued,
             "event queues drained before all cores finished");
}

SimResult
System::assembleResult()
{
    SimResult res;
    res.windowCycles = doneTime - warmTime;
    for (auto &core : cores) {
        res.ipc.push_back(core->ipc());
        res.totalInstrs += core->measuredInstrs();
    }
    res.stats = statSet.collect();

    std::uint64_t reads = 0, read_hits = 0, writes = 0, write_hits = 0;
    for (auto &chan : chans) {
        reads += chan->statReads.sinceSnapshot();
        read_hits += chan->statReadRowHits.sinceSnapshot();
        writes += chan->statWrites.sinceSnapshot();
        write_hits += chan->statWriteRowHits.sinceSnapshot();
    }
    res.readRowHitRate =
        reads ? static_cast<double>(read_hits) / reads : 0.0;
    res.writeRowHitRate =
        writes ? static_cast<double>(write_hits) / writes : 0.0;

    double kilo_instrs = static_cast<double>(res.totalInstrs) / 1000.0;
    res.tagLookupsPki =
        static_cast<double>(res.stats["llc.tagLookups"]) / kilo_instrs;
    res.wpki = static_cast<double>(res.stats["dram.writes"]) / kilo_instrs;
    res.mpki =
        static_cast<double>(res.stats["llc.demandMisses"]) / kilo_instrs;
    for (auto &chan : chans) {
        res.dramEnergyPj += chan->energySince(res.windowCycles).totalPj();
    }

    if constexpr (telemetry::kEnabled) {
        for (std::uint32_t p = 0; p < telems.size(); ++p) {
            if (!telems[p]) {
                continue;
            }
            if (p < topo.channels) {
                telems[p]->setTotal("dram.drainCycles",
                                    chans[p]->statDrainCycles.value());
                telems[p]->setTotal("dram.drains",
                                    chans[p]->statDrains.value());
            }
            telems[p]->finish(queues[p]->now());
            std::string prefix =
                topo.sharded() ? "s" + std::to_string(p) + "." : "";
            for (const auto &[key, value] :
                 telems[p]->summaryMetrics()) {
                res.telemetry[prefix + key] = value;
            }
        }
        // All per-shard trace documents are closed: fold them into one
        // trace at the un-suffixed path (pid == shard id throughout).
        if (topo.sharded() && !cfg.telemetry.tracePath.empty() &&
            !telems.empty()) {
            telemetry::mergeShardTraces(cfg.telemetry.tracePath,
                                        topo.partitions);
        }
    }

    if (profiler) {
        res.hostProfile = profiler->metrics();
    }

    for (std::size_t i = 0; i < metaIndexes.size(); ++i) {
        if (topo.slices == 1) {
            metaIndexes[i]->reportMetrics(res.metadata);
        } else {
            std::map<std::string, double> m;
            metaIndexes[i]->reportMetrics(m);
            std::string prefix =
                "s" + std::to_string(metaSlices[i]) + ".";
            for (const auto &[key, value] : m) {
                res.metadata[prefix + key] = value;
            }
        }
    }

    if (cfg.dcache.enable && !dcaches.empty()) {
        // Storage accounting for the dirty-tracking ablation: what the
        // SRAM index costs vs the per-page bits the tags-mode keeps in
        // stacked DRAM (machine totals across slices).
        DCacheMetaParams mp;
        mp.sliceBytes = dcaches[0]->config().sizeBytes;
        mp.pageBytes = cfg.dcache.pageBytes;
        mp.indexEntries = cfg.dcache.indexEntries;
        mp.indexAssoc = cfg.dcache.indexAssoc;
        const DCacheMetaBits mb = dcacheMetaBits(mp);
        res.metadata["dcache.indexSramBits"] =
            static_cast<double>(mb.indexSramBits * topo.slices);
        res.metadata["dcache.tagDirtyBits"] =
            static_cast<double>(mb.tagDirtyBits * topo.slices);
        res.metadata["dcache.indexCoverage"] =
            static_cast<double>(mb.indexPages) /
            static_cast<double>(mb.slicePages);
    }

    for (auto &slice : slices) {
        slice->checkInvariants();
    }
    for (auto &watch : auditors) {
        // End-of-run differential: the mechanism's final dirty state
        // must reproduce the ground-truth memory image exactly, slice
        // by slice.
        watch->checkNow();
        panic_if(watch->finalImage() != watch->shadow().finalImage(),
                 "final memory image diverges from ground truth");
    }
    for (auto &watch : dcacheAuditors) {
        // Second dirty level: the DRAM cache's flush set must cover
        // exactly the blocks whose data never reached backing DDR.
        watch->checkFinal();
    }
    return res;
}

SimResult
System::run()
{
    if (profiler) {
        profiler->beginRun();
    }
    for (auto &core : cores) {
        core->start();
    }
    if (topo.sharded()) {
        runSharded();
    } else {
        runSingle();
    }
    if (profiler) {
        profiler->endRun();
    }
    return assembleResult();
}

SimResult
runWorkload(const SystemConfig &config, const WorkloadMix &mix)
{
    System sys(config, mix);
    return sys.run();
}

} // namespace dbsim
