#include "system.hh"

#include "coherence/directory_index.hh"
#include "common/logging.hh"
#include "ecc/ecc_index.hh"
#include "model/storage_model.hh"

namespace dbsim {

LlcConfig
SystemConfig::resolveLlc() const
{
    LlcConfig llc;
    llc.sizeBytes = llcBytesPerCore * numCores;
    llc.numCores = numCores;
    llc.seed = seed + 101;

    // Table 1: 16/32/32/32-way, tag 10/12/13/14, data 24/29/31/33 for
    // 1/2/4/8 cores.
    std::uint32_t assoc, tag_lat, data_lat;
    switch (numCores) {
      case 1:
        assoc = 16;
        tag_lat = 10;
        data_lat = 24;
        break;
      case 2:
        assoc = 32;
        tag_lat = 12;
        data_lat = 29;
        break;
      case 4:
        assoc = 32;
        tag_lat = 13;
        data_lat = 31;
        break;
      case 8:
      default:
        assoc = 32;
        tag_lat = 14;
        data_lat = 33;
        break;
    }
    llc.assoc = llcAssoc ? llcAssoc : assoc;
    llc.tagLatency = llcTagLatency ? llcTagLatency : tag_lat;
    llc.dataLatency = llcDataLatency ? llcDataLatency : data_lat;

    ReplPolicy non_base = useDrrip ? ReplPolicy::Drrip : ReplPolicy::TaDip;
    llc.repl = mech.baselineLru ? ReplPolicy::Lru : non_base;
    return llc;
}

System::System(const SystemConfig &config, const WorkloadMix &mix)
    : cfg(config), workload(mix), statSet("system")
{
    fatal_if(workload.size() != cfg.numCores,
             "workload has %zu entries for %u cores", workload.size(),
             cfg.numCores);

    dramCtrl = std::make_unique<DramController>(cfg.dram, eq);

    LlcConfig llc_cfg = cfg.resolveLlc();

    SkipPredictorConfig pc = cfg.pred;
    pc.numThreads = cfg.numCores;

    DbiConfig dbi_cfg = cfg.dbi;
    dbi_cfg.seed = cfg.seed + 1009;

    if (cfg.mech.needsPredictor()) {
        predictor = std::make_shared<SkipPredictor>(pc);
    }
    sharedLlc =
        makeLlc(cfg.mech, llc_cfg, dbi_cfg, *dramCtrl, eq, predictor);

    // Metadata subsystems the spec attaches (Sections 2.3 and 3.3): both
    // hang off the DBI organization. They are passive observers, so the
    // simulation's timing and stats are identical with or without them.
    if (cfg.mech.attachEcc) {
        const Dbi *d = sharedLlc->dbiIndex();
        fatal_if(!d, "the hetero-ECC attachment requires a DBI store");
        StorageParams sp;
        sp.cacheBytes = llc_cfg.sizeBytes;
        sp.assoc = llc_cfg.assoc;
        sp.alpha = dbi_cfg.alpha;
        sp.granularity = dbi_cfg.granularity;
        sp.dbiAssoc = dbi_cfg.assoc;
        metaIndexes.push_back(std::make_unique<HeteroEccIndex>(
            d->trackableBlocks(), sp));
    }
    if (cfg.mech.attachDirectory) {
        fatal_if(!sharedLlc->dbiIndex(),
                 "the coherence-directory attachment requires a DBI "
                 "store");
        DbiConfig dir_cfg = dbi_cfg;
        dir_cfg.seed = cfg.seed + 2017;
        metaIndexes.push_back(std::make_unique<SplitDirectoryIndex>(
            dir_cfg, sharedLlc->tags().numBlocks()));
    }
    for (auto &m : metaIndexes) {
        sharedLlc->attachMetadata(m.get());
    }

    if (cfg.auditEvery > 0) {
        audit::AuditConfig ac;
        ac.checkEvery = cfg.auditEvery;
        auditWatch =
            std::make_unique<audit::InvariantAuditor>(*sharedLlc, ac);
    }

    setupTelemetry();

    sharedLlc->registerStats(statSet);
    dramCtrl->registerStats(statSet);

    for (std::uint32_t c = 0; c < cfg.numCores; ++c) {
        if (!workload[c].empty() && workload[c][0] == '@') {
            traces.push_back(
                std::make_unique<FileTrace>(workload[c].substr(1)));
        } else {
            const BenchProfile &prof = benchmarkByName(workload[c]);
            traces.push_back(
                std::make_unique<SyntheticTrace>(prof, c, cfg.seed));
        }
        mems.push_back(std::make_unique<CoreMemory>(
            cfg.mem, *sharedLlc, c, cfg.seed + 31 * c));
        mems.back()->registerStats(statSet);
        cores.push_back(std::make_unique<Core>(c, cfg.core, *traces[c],
                                               *mems[c], eq));
        cores.back()->onWarmed(
            [this](std::uint32_t id) { onCoreWarmed(id); });
        cores.back()->onDone([this](std::uint32_t id) { onCoreDone(id); });
    }
}

System::~System() = default;

void
System::setupTelemetry()
{
    if (!cfg.telemetry.enabled()) {
        return;
    }
    if constexpr (!telemetry::kEnabled) {
        warn("telemetry requested but this build has DBSIM_TELEMETRY "
             "off; ignoring");
        return;
    }
    telem = std::make_unique<telemetry::SimTelemetry>(cfg.telemetry);
    sharedLlc->attachTelemetry(telem.get());
    dramCtrl->attachObserver(telem.get());

    telemetry::StatSampler *s = telem->sampler();
    if (!s) {
        return;
    }
    // Gauges read component state through stat-free const accessors
    // only; counters/rates are tracked with sampler-private last-value
    // bookkeeping. Either way the sampled run's stats stay identical
    // to an unsampled run's.
    Dbi *d = dbi();
    if (d) {
        s->addGauge("dirtyBlocks",
                    [d] { return double(d->countDirtyBlocks()); });
        s->addGauge("dbiValidEntries",
                    [d] { return double(d->countValidEntries()); });
    } else {
        const TagStore &ts = sharedLlc->tags();
        s->addGauge("dirtyBlocks",
                    [&ts] { return double(ts.countDirty()); });
    }
    DramController *dc = dramCtrl.get();
    s->addGauge("writeQueueDepth",
                [dc] { return double(dc->pendingWrites()); });
    s->addGauge("readQueueDepth",
                [dc] { return double(dc->pendingReads()); });
    s->addGauge("drainMode", [dc] { return dc->draining() ? 1.0 : 0.0; });
    s->addCounter("dramReads", dramCtrl->statReads);
    s->addCounter("dramWrites", dramCtrl->statWrites);
    s->addRate("readRowHitRate", dramCtrl->statReadRowHits,
               dramCtrl->statReads);
    s->addRate("writeRowHitRate", dramCtrl->statWriteRowHits,
               dramCtrl->statWrites);
    s->addCounter("llcDemandMisses", sharedLlc->statDemandMisses);
    s->addCounter("llcWbToDram", sharedLlc->statWbToDram);
}

Dbi *
System::dbi()
{
    return sharedLlc->dbiIndex();
}

void
System::onCoreWarmed(std::uint32_t)
{
    ++warmedCount;
    if (warmedCount == cfg.numCores) {
        // All cores crossed their warmup boundary: the measurement
        // window for system-wide stats starts here.
        statSet.snapshotAll();
        warmTime = eq.now();
    }
}

void
System::onCoreDone(std::uint32_t)
{
    ++doneCount;
    if (doneCount == cfg.numCores) {
        doneTime = eq.now();
        for (auto &core : cores) {
            core->halt();
        }
    }
}

SimResult
System::run()
{
    for (auto &core : cores) {
        core->start();
    }
    // The sampler is polled (one comparison) rather than event-driven:
    // scheduling sampling events would keep the queue alive and perturb
    // same-cycle FIFO ordering, breaking run/no-run identity.
    telemetry::StatSampler *sampler = telem ? telem->sampler() : nullptr;
    while (eq.step()) {
        if constexpr (telemetry::kEnabled) {
            if (sampler) {
                sampler->poll(eq.now());
            }
        }
        if (eq.now() > cfg.maxCycles) {
            fatal("simulation exceeded %llu cycles: likely deadlock",
                  static_cast<unsigned long long>(cfg.maxCycles));
        }
    }
    panic_if(doneCount != cfg.numCores,
             "event queue drained before all cores finished");

    SimResult res;
    res.windowCycles = doneTime - warmTime;
    for (auto &core : cores) {
        res.ipc.push_back(core->ipc());
        res.totalInstrs += core->measuredInstrs();
    }
    res.stats = statSet.collect();
    res.readRowHitRate = dramCtrl->readRowHitRate();
    res.writeRowHitRate = dramCtrl->writeRowHitRate();

    double kilo_instrs = static_cast<double>(res.totalInstrs) / 1000.0;
    res.tagLookupsPki =
        static_cast<double>(res.stats["llc.tagLookups"]) / kilo_instrs;
    res.wpki = static_cast<double>(res.stats["dram.writes"]) / kilo_instrs;
    res.mpki =
        static_cast<double>(res.stats["llc.demandMisses"]) / kilo_instrs;
    res.dramEnergyPj = dramCtrl->energySince(res.windowCycles).totalPj();

    if constexpr (telemetry::kEnabled) {
        if (telem) {
            telem->setTotal("dram.drainCycles",
                            dramCtrl->statDrainCycles.value());
            telem->setTotal("dram.drains", dramCtrl->statDrains.value());
            telem->finish(eq.now());
            res.telemetry = telem->summaryMetrics();
        }
    }

    for (auto &m : metaIndexes) {
        m->reportMetrics(res.metadata);
    }

    sharedLlc->checkInvariants();
    if (auditWatch) {
        // End-of-run differential: the mechanism's final dirty state
        // must reproduce the ground-truth memory image exactly.
        auditWatch->checkNow();
        panic_if(auditWatch->finalImage() !=
                     auditWatch->shadow().finalImage(),
                 "final memory image diverges from ground truth");
    }
    return res;
}

SimResult
runWorkload(const SystemConfig &config, const WorkloadMix &mix)
{
    System sys(config, mix);
    return sys.run();
}

} // namespace dbsim
