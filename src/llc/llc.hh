/**
 * @file
 * Shared last-level cache. Models the structure the paper's mechanisms
 * all modify: a set-associative tag store with serial tag+data access,
 * a single tag port whose contention is first-class (every lookup —
 * demand, writeback, or sweep — occupies it), TA-DIP/LRU/DRRIP
 * insertion, and a connection to backing memory through a BackingPort.
 *
 * The Llc is one concrete class composed from three policy components
 * (llc/policies.hh): a DirtyStore (where dirty metadata lives), a
 * WritebackPolicy (what a dirty eviction triggers), and a LookupPolicy
 * (whether reads may bypass the tag lookup). Table 2's mechanisms are
 * preset tuples over these axes (sim/mechanism.hh); arbitrary
 * combinations compose the same way. Additional per-block metadata
 * subsystems (hetero-ECC, the coherence directory) observe the block
 * lifecycle through the MetadataIndex seam (llc/metadata_index.hh).
 */

#ifndef DBSIM_LLC_LLC_HH
#define DBSIM_LLC_LLC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/tag_store.hh"
#include "common/event_queue.hh"
#include "common/shard.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "mem/backing_port.hh"
#include "llc/metadata_index.hh"
#include "llc/policies.hh"
#include "telemetry/telemetry.hh"

namespace dbsim {

/** Shared LLC parameters (Table 1). */
struct LlcConfig
{
    std::uint64_t sizeBytes = 2ull << 20;
    std::uint32_t assoc = 16;
    ReplPolicy repl = ReplPolicy::TaDip;
    std::uint32_t tagLatency = 10;   ///< serial tag access
    std::uint32_t dataLatency = 24;  ///< data access after tag
    std::uint32_t numCores = 1;
    std::uint64_t seed = 11;
};

/**
 * Observer of the LLC's dirty-state transitions (src/audit). The four
 * events below are the complete set of places a block's dirtiness or
 * residency can change; every policy composition reports through them,
 * which is what lets a shadow model replay ground truth alongside any
 * mechanism. Notifications are synchronous and must not re-enter the
 * LLC. operationEnd() fires when one externally-initiated operation
 * (writeback, fill completion, flush) has fully settled — the only
 * points where cross-structure invariants are required to hold.
 */
class LlcAuditObserver
{
  public:
    virtual ~LlcAuditObserver() = default;

    /** A writeback request carried new data into the LLC. */
    virtual void onWritebackIn(Addr block_addr, Cycle when) = 0;

    /** A block was filled (or found resident) with this dirty state. */
    virtual void onFill(Addr block_addr, bool dirty, Cycle when) = 0;

    /** A block was displaced, after the mechanism handled it. */
    virtual void onEviction(Addr block_addr, Cycle when) = 0;

    /** A block's data was written back to memory (it becomes clean). */
    virtual void onWbToDram(Addr block_addr, Cycle when) = 0;

    /** One LLC operation finished; internal state is consistent. */
    virtual void onOperationEnd() = 0;
};

/**
 * What the private cache levels see of the level below them: a demand
 * read that completes through a callback, and a fire-and-forget
 * writeback. An Llc is an LlcPort; on sliced machines the cores talk
 * to a router implementing the same interface that forwards each
 * access to the owning slice (possibly across shards).
 */
class LlcPort
{
  public:
    using Callback = std::function<void(Cycle)>;

    virtual ~LlcPort() = default;

    /** Demand read from core `core` arriving at cycle `when`. */
    virtual void read(Addr block_addr, std::uint32_t core, Cycle when,
                      Callback cb) = 0;

    /** Writeback request from a private L2 arriving at cycle `when`. */
    virtual void writeback(Addr block_addr, std::uint32_t core,
                           Cycle when) = 0;

    /**
     * Zero-time functional access for fast-forward warming: update the
     * level's tag/dirty/replacement/predictor state with no events, no
     * port contention, and no registered-counter traffic. Both kinds
     * are demand accesses (allocate-on-miss, train the predictor);
     * `is_write` additionally dirties the block, standing in for the
     * writeback the unwarmed private levels would eventually deliver.
     * Routers forward to the owning slice directly — never through the
     * fabric.
     */
    virtual void functionalAccess(Addr block_addr, std::uint32_t core,
                                  bool is_write) = 0;
};

/**
 * The shared LLC. Reads complete through a callback with the
 * completion cycle; writebacks from the private levels are
 * fire-and-forget. Policy components act on the cache through the
 * public surface below (occupyPort/fillBlock/writebackToDram/...), so
 * every port-arbitration, stat, audit, and telemetry side effect flows
 * through a single point regardless of composition.
 */
class Llc : public LlcPort
{
  public:
    using Callback = std::function<void(Cycle)>;

    /**
     * Compose a cache from policy components. Defaults (nullptr) give
     * the conventional writeback cache: in-tag dirty bits, evict-order
     * writebacks, no bypassing. Policies are bound to this cache here
     * and must be freshly constructed (not shared between caches).
     * `backing_port` is the level below this slice — a DramController
     * on single-channel machines, a ShardMemRouter on multi-channel
     * ones, or a DramCache interposed in front of either. The caller
     * keeps ownership and the port must outlive the cache.
     */
    Llc(const LlcConfig &config, BackingPort &backing_port,
        ShardContext context,
        std::unique_ptr<DirtyStore> dirty_store = nullptr,
        std::unique_ptr<WritebackPolicy> writeback_policy = nullptr,
        std::unique_ptr<LookupPolicy> lookup_policy = nullptr);
    ~Llc() override = default;

    /** Demand read from core `core` arriving at cycle `when`. */
    void read(Addr block_addr, std::uint32_t core, Cycle when,
              Callback cb) override;

    /**
     * Writeback request from a private L2 (Section 2.2.2). Accounts the
     * request and notifies the attached auditor before and after the
     * DirtyStore's writebackIn() so every composition is observable the
     * same way.
     */
    void writeback(Addr block_addr, std::uint32_t core,
                   Cycle when) override;

    /**
     * Functional-warming access (see LlcPort). Final cache/DBI state
     * matches what the timed path would produce for the same request,
     * with documented estimator exceptions: no WritebackPolicy sweeps
     * run (their proactive writebacks are a timing optimization), and
     * metadata indexes are not notified (their counters are registered
     * statistics, which warming must never move). The auditor and the
     * miss predictor ARE kept in the loop — the shadow model must track
     * warmed state, and predictor training is the point of warming.
     */
    void functionalAccess(Addr block_addr, std::uint32_t core,
                          bool is_write) override;

    /**
     * Attach (or detach, with nullptr) a dirty-state observer. The
     * observer is passive: it adds no cycles and changes no stats, so
     * audited and unaudited runs are timing-identical.
     */
    void attachAuditor(LlcAuditObserver *observer) { auditor = observer; }

    /**
     * Attach (or detach, with nullptr) the telemetry sink. Like the
     * auditor, the sink is passive: hooks record latencies and trace
     * events into telemetry-private structures without touching
     * counters, cycles, or replacement state, so instrumented and
     * plain runs are cycle- and stat-identical. Hook sites compile
     * away entirely when DBSIM_TELEMETRY is off.
     */
    void attachTelemetry(telemetry::SimTelemetry *sink) { telem = sink; }

    /**
     * Attach a metadata subsystem (hetero-ECC tracker, coherence
     * directory). Indexes are passive observers of the block lifecycle
     * — they must not perturb the cache's timing or statistics — and
     * are notified in attachment order. The caller keeps ownership.
     */
    void attachMetadata(MetadataIndex *index);

    /** Outcome of a flush or DMA-coherence operation (Section 7). */
    struct RegionOpResult
    {
        std::uint64_t lookups = 0;     ///< tag/DBI accesses spent
        std::uint64_t writebacks = 0;  ///< dirty blocks written back
        bool anyDirty = false;         ///< region had dirty blocks
    };

    /**
     * Flush a byte range: write back (and clean) every dirty block in
     * [base, base+bytes). Conventional organizations must look up every
     * block of the range in the tag store; the DBI organization answers
     * from its compact per-row dirty vectors (Section 7, "Cache
     * Flushing"). Blocks stay resident.
     */
    RegionOpResult flushRegion(Addr base, std::uint64_t bytes, Cycle when);

    /**
     * DMA coherence query (Section 7, "Direct Memory Access"): does the
     * byte range contain any dirty block? Read-only; reports the lookup
     * cost the query incurred.
     */
    RegionOpResult queryRegionDirty(Addr base, std::uint64_t bytes);

    const LlcConfig &config() const { return cfg; }
    TagStore &tags() { return store; }
    const TagStore &tags() const { return store; }

    /** The shard this slice lives on. */
    const ShardContext &context() const { return ctx; }

    /** The level below this slice. */
    BackingPort &backingPort() { return backing; }

    /**
     * Issue a block read to memory through the backing port. Every
     * memory read in every composition goes through here.
     */
    void
    dramRead(Addr block_addr, Cycle when, BackingPort::ReadCallback cb)
    {
        backing.read(block_addr, when, std::move(cb));
    }

    /** Issue a block write to memory through the backing port. */
    void
    dramWrite(Addr block_addr, Cycle when)
    {
        backing.write(block_addr, when);
    }

    /**
     * The machine's DRAM address map, as reported by the backing port
     * (the map is machine-wide, identical at every level and channel).
     */
    const DramAddrMap &addrMap() const { return backing.addrMap(); }

    DirtyStore &dirtyStore() { return *dirtyStorePtr; }
    const DirtyStore &dirtyStore() const { return *dirtyStorePtr; }
    WritebackPolicy &writebackPolicy() { return *wbPolicy; }
    LookupPolicy &lookupPolicy() { return *lookupPol; }

    /** The DBI, if the dirty store is DBI-backed (else nullptr). */
    Dbi *dbiIndex() { return dirtyStorePtr->dbiIndex(); }
    const Dbi *dbiIndex() const { return dirtyStorePtr->dbiIndex(); }

    /** Register counters for snapshotting. */
    void registerStats(StatSet &set);

    /** Sanity checks on internal invariants (debug/test aid). */
    void checkInvariants() const { dirtyStorePtr->checkInvariants(); }

    // -- Surface used by policy components ----------------------------

    /**
     * Arbitrate for the tag port at cycle `when` and account one lookup.
     * @return the cycle the lookup begins.
     */
    Cycle occupyPort(Cycle when);

    /**
     * Send one block's data to memory: enqueue the DRAM write, account
     * it, and notify the auditor. Every writeback-to-memory in every
     * composition must go through here — it is the single point where a
     * block's latest data reaches DRAM.
     */
    void writebackToDram(Addr block_addr, Cycle when);

    /**
     * Insert a block after a fill or writeback-allocate, routing any
     * displaced victim through the eviction sequence (DirtyStore,
     * WritebackPolicy, auditor, metadata indexes).
     */
    void fillBlock(Addr block_addr, std::uint32_t core, bool dirty,
                   Cycle when);

    /** The non-bypassed read path (tag lookup onward). */
    void normalRead(Addr block_addr, std::uint32_t core, Cycle when,
                    Callback cb);

    /**
     * Functional fillBlock(): insert or touch with no port, event, or
     * registered-counter traffic; evictions route through the quiet
     * DirtyStore variants and skip the WritebackPolicy.
     */
    void functionalFill(Addr block_addr, std::uint32_t core, bool dirty);

    /**
     * Functional writebackToDram(): the auditor sees the block reach
     * memory and the level below warms, but nothing is accounted.
     */
    void functionalWbToDram(Addr block_addr);

    /**
     * Wrap a read-completion callback so the request's latency lands in
     * the class-`cls` histogram when it completes. Returns `cb`
     * unchanged when no histogram would record (keeping the common path
     * free of an extra std::function hop).
     */
    Callback wrapReadLatency(telemetry::ReadClass cls, Cycle when,
                             Callback cb);

    /**
     * Dirty blocks the tag store currently holds in `block_addr`'s DRAM
     * row (telemetry only; reads tag state without touching stats or
     * replacement order).
     */
    std::uint64_t countStoreDirtyInRow(Addr block_addr) const;

    /** The attached telemetry sink (nullptr when none). */
    telemetry::SimTelemetry *telemetrySink() { return telem; }

    /** Notify metadata indexes that a resident block became clean. */
    void notifyMetaCleaned(Addr block_addr, Cycle when);

    Counter statTagLookups;   ///< all tag-store lookups (demand+wb+sweep)
    Counter statDemandHits;
    Counter statDemandMisses;
    Counter statWritebacksIn; ///< writeback requests received from L2s
    Counter statWbToDram;     ///< writebacks sent to memory
    Counter statSweepLookups; ///< tag lookups made by writeback sweeps
    Counter statBypasses;     ///< reads that skipped the tag lookup
    Counter statDbiChecks;    ///< DBI consultations on the bypass path

  protected:
    /** Notify the auditor that one operation has settled. */
    void
    endAuditOp()
    {
        if (auditor) {
            auditor->onOperationEnd();
        }
    }

    /**
     * A (possibly dirty) block was displaced from the cache at cycle
     * `when`: consult the DirtyStore for the victim's dirtiness, write
     * it back if dirty, then hand the WritebackPolicy its turn.
     */
    void handleEviction(Addr block_addr, bool tag_dirty, Cycle when);

    /** Issue the DRAM read for a demand miss, merging duplicates. */
    void missToDram(Addr block_addr, std::uint32_t core, Cycle when,
                    Callback cb);

    LlcConfig cfg;
    BackingPort &backing;
    ShardContext ctx;
    EventQueue &eq;
    TagStore store;
    Cycle portFreeAt = 0;
    LlcAuditObserver *auditor = nullptr;
    telemetry::SimTelemetry *telem = nullptr;

    std::unique_ptr<DirtyStore> dirtyStorePtr;
    std::unique_ptr<WritebackPolicy> wbPolicy;
    std::unique_ptr<LookupPolicy> lookupPol;
    std::vector<MetadataIndex *> metaIndexes;

    /** Outstanding demand reads: block -> waiting callbacks + owner. */
    struct Pending
    {
        std::uint32_t core;
        std::vector<Callback> cbs;
    };
    std::unordered_map<Addr, Pending> pendingReads;
};

} // namespace dbsim

#endif // DBSIM_LLC_LLC_HH
