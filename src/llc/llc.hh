/**
 * @file
 * Shared last-level cache base class. Models the structure the paper's
 * mechanisms all modify: a set-associative tag store with serial tag+data
 * access, a single tag port whose contention is first-class (every
 * lookup — demand, writeback, or sweep — occupies it), TA-DIP/LRU/DRRIP
 * insertion, and a connection to the DRAM controller.
 *
 * Subclasses implement the paper's mechanisms by overriding the dirty-
 * block bookkeeping and the eviction/writeback hooks:
 *   BaselineLlc  — dirty bits in the tag store, evict-order writebacks
 *   DawbLlc      — DRAM-aware writeback [27]: full row sweeps
 *   VwqLlc       — Virtual Write Queue [51]: SSV-filtered sweeps
 *   SkipLlc      — Skip Cache [44]: write-through + lookup bypass
 *   DbiLlc       — the Dirty-Block Index, with optional AWB and CLB
 */

#ifndef DBSIM_LLC_LLC_HH
#define DBSIM_LLC_LLC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/tag_store.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram_controller.hh"

namespace dbsim {

/** Shared LLC parameters (Table 1). */
struct LlcConfig
{
    std::uint64_t sizeBytes = 2ull << 20;
    std::uint32_t assoc = 16;
    ReplPolicy repl = ReplPolicy::TaDip;
    std::uint32_t tagLatency = 10;   ///< serial tag access
    std::uint32_t dataLatency = 24;  ///< data access after tag
    std::uint32_t numCores = 1;
    std::uint64_t seed = 11;
};

/**
 * Abstract shared LLC. Reads complete through a callback with the
 * completion cycle; writebacks from the private levels are
 * fire-and-forget.
 */
class Llc
{
  public:
    using Callback = std::function<void(Cycle)>;

    Llc(const LlcConfig &config, DramController &dram_ctrl,
        EventQueue &event_queue);
    virtual ~Llc() = default;

    /** Demand read from core `core` arriving at cycle `when`. */
    virtual void read(Addr block_addr, std::uint32_t core, Cycle when,
                      Callback cb);

    /** Writeback request from a private L2 (Section 2.2.2). */
    virtual void writeback(Addr block_addr, std::uint32_t core,
                           Cycle when) = 0;

    /** Outcome of a flush or DMA-coherence operation (Section 7). */
    struct RegionOpResult
    {
        std::uint64_t lookups = 0;     ///< tag/DBI accesses spent
        std::uint64_t writebacks = 0;  ///< dirty blocks written back
        bool anyDirty = false;         ///< region had dirty blocks
    };

    /**
     * Flush a byte range: write back (and clean) every dirty block in
     * [base, base+bytes). Conventional organizations must look up every
     * block of the range in the tag store; the DBI organization answers
     * from its compact per-row dirty vectors (Section 7, "Cache
     * Flushing"). Blocks stay resident.
     */
    virtual RegionOpResult flushRegion(Addr base, std::uint64_t bytes,
                                       Cycle when);

    /**
     * DMA coherence query (Section 7, "Direct Memory Access"): does the
     * byte range contain any dirty block? Read-only; reports the lookup
     * cost the query incurred.
     */
    virtual RegionOpResult queryRegionDirty(Addr base,
                                            std::uint64_t bytes);

    const LlcConfig &config() const { return cfg; }
    TagStore &tags() { return store; }
    const TagStore &tags() const { return store; }

    /** Register counters for snapshotting. */
    virtual void registerStats(StatSet &set);

    /** Sanity checks on internal invariants (debug/test aid). */
    virtual void checkInvariants() const {}

    Counter statTagLookups;   ///< all tag-store lookups (demand+wb+sweep)
    Counter statDemandHits;
    Counter statDemandMisses;
    Counter statWritebacksIn; ///< writeback requests received from L2s
    Counter statWbToDram;     ///< writebacks sent to memory
    Counter statSweepLookups; ///< tag lookups made by writeback sweeps
    Counter statBypasses;     ///< reads that skipped the tag lookup
    Counter statDbiChecks;    ///< DBI consultations on the bypass path

  protected:
    /**
     * Arbitrate for the tag port at cycle `when` and account one lookup.
     * @return the cycle the lookup begins.
     */
    Cycle occupyPort(Cycle when);

    /** Is this block dirty under the mechanism's bookkeeping? */
    virtual bool blockDirty(Addr block_addr) const = 0;

    /** Transition a resident block dirty -> clean (after writeback). */
    virtual void cleanBlock(Addr block_addr) = 0;

    /**
     * A (possibly dirty) block was displaced from the cache at cycle
     * `when`. Mechanisms generate writebacks (and sweeps) here.
     */
    virtual void handleEviction(Addr block_addr, bool tag_dirty,
                                Cycle when) = 0;

    /**
     * Hook before the normal read path; return true if the access was
     * fully handled (bypassed). Default: no bypassing.
     */
    virtual bool
    tryBypass(Addr, std::uint32_t, Cycle, Callback &)
    {
        return false;
    }

    /** Outcome feed for miss predictors. Default: none. */
    virtual void recordLookupOutcome(Addr, std::uint32_t, bool, Cycle) {}

    /**
     * Insert a block after a fill or writeback-allocate, routing any
     * displaced victim through handleEviction().
     */
    void fillBlock(Addr block_addr, std::uint32_t core, bool dirty,
                   Cycle when);

    /** Issue the DRAM read for a demand miss, merging duplicates. */
    void missToDram(Addr block_addr, std::uint32_t core, Cycle when,
                    Callback cb);

    /** The non-bypassed read path (tag lookup onward). */
    void normalRead(Addr block_addr, std::uint32_t core, Cycle when,
                    Callback cb);

    LlcConfig cfg;
    DramController &dram;
    EventQueue &eq;
    TagStore store;
    Cycle portFreeAt = 0;

    /** Outstanding demand reads: block -> waiting callbacks + owner. */
    struct Pending
    {
        std::uint32_t core;
        std::vector<Callback> cbs;
    };
    std::unordered_map<Addr, Pending> pendingReads;
};

} // namespace dbsim

#endif // DBSIM_LLC_LLC_HH
