/**
 * @file
 * Shared last-level cache base class. Models the structure the paper's
 * mechanisms all modify: a set-associative tag store with serial tag+data
 * access, a single tag port whose contention is first-class (every
 * lookup — demand, writeback, or sweep — occupies it), TA-DIP/LRU/DRRIP
 * insertion, and a connection to the DRAM controller.
 *
 * Subclasses implement the paper's mechanisms by overriding the dirty-
 * block bookkeeping and the eviction/writeback hooks:
 *   BaselineLlc  — dirty bits in the tag store, evict-order writebacks
 *   DawbLlc      — DRAM-aware writeback [27]: full row sweeps
 *   VwqLlc       — Virtual Write Queue [51]: SSV-filtered sweeps
 *   SkipLlc      — Skip Cache [44]: write-through + lookup bypass
 *   DbiLlc       — the Dirty-Block Index, with optional AWB and CLB
 */

#ifndef DBSIM_LLC_LLC_HH
#define DBSIM_LLC_LLC_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/tag_store.hh"
#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram_controller.hh"
#include "telemetry/telemetry.hh"

namespace dbsim {

/** Shared LLC parameters (Table 1). */
struct LlcConfig
{
    std::uint64_t sizeBytes = 2ull << 20;
    std::uint32_t assoc = 16;
    ReplPolicy repl = ReplPolicy::TaDip;
    std::uint32_t tagLatency = 10;   ///< serial tag access
    std::uint32_t dataLatency = 24;  ///< data access after tag
    std::uint32_t numCores = 1;
    std::uint64_t seed = 11;
};

/**
 * Observer of the LLC's dirty-state transitions (src/audit). The four
 * events below are the complete set of places a block's dirtiness or
 * residency can change; every LLC variant reports through them, which
 * is what lets a shadow model replay ground truth alongside any
 * mechanism. Notifications are synchronous and must not re-enter the
 * LLC. operationEnd() fires when one externally-initiated operation
 * (writeback, fill completion, flush) has fully settled — the only
 * points where cross-structure invariants are required to hold.
 */
class LlcAuditObserver
{
  public:
    virtual ~LlcAuditObserver() = default;

    /** A writeback request carried new data into the LLC. */
    virtual void onWritebackIn(Addr block_addr, Cycle when) = 0;

    /** A block was filled (or found resident) with this dirty state. */
    virtual void onFill(Addr block_addr, bool dirty, Cycle when) = 0;

    /** A block was displaced, after the mechanism handled it. */
    virtual void onEviction(Addr block_addr, Cycle when) = 0;

    /** A block's data was written back to memory (it becomes clean). */
    virtual void onWbToDram(Addr block_addr, Cycle when) = 0;

    /** One LLC operation finished; internal state is consistent. */
    virtual void onOperationEnd() = 0;
};

/**
 * Abstract shared LLC. Reads complete through a callback with the
 * completion cycle; writebacks from the private levels are
 * fire-and-forget.
 */
class Llc
{
  public:
    using Callback = std::function<void(Cycle)>;

    Llc(const LlcConfig &config, DramController &dram_ctrl,
        EventQueue &event_queue);
    virtual ~Llc() = default;

    /** Demand read from core `core` arriving at cycle `when`. */
    virtual void read(Addr block_addr, std::uint32_t core, Cycle when,
                      Callback cb);

    /**
     * Writeback request from a private L2 (Section 2.2.2). Non-virtual
     * entry point: aligns the address, accounts the request, and
     * notifies the attached auditor before and after the mechanism's
     * doWriteback() so every variant is observable the same way.
     */
    void writeback(Addr block_addr, std::uint32_t core, Cycle when);

    /**
     * Attach (or detach, with nullptr) a dirty-state observer. The
     * observer is passive: it adds no cycles and changes no stats, so
     * audited and unaudited runs are timing-identical.
     */
    void attachAuditor(LlcAuditObserver *observer) { auditor = observer; }

    /**
     * Attach (or detach, with nullptr) the telemetry sink. Like the
     * auditor, the sink is passive: hooks record latencies and trace
     * events into telemetry-private structures without touching
     * counters, cycles, or replacement state, so instrumented and
     * plain runs are cycle- and stat-identical. Hook sites compile
     * away entirely when DBSIM_TELEMETRY is off.
     */
    void attachTelemetry(telemetry::SimTelemetry *sink) { telem = sink; }

    /** Outcome of a flush or DMA-coherence operation (Section 7). */
    struct RegionOpResult
    {
        std::uint64_t lookups = 0;     ///< tag/DBI accesses spent
        std::uint64_t writebacks = 0;  ///< dirty blocks written back
        bool anyDirty = false;         ///< region had dirty blocks
    };

    /**
     * Flush a byte range: write back (and clean) every dirty block in
     * [base, base+bytes). Conventional organizations must look up every
     * block of the range in the tag store; the DBI organization answers
     * from its compact per-row dirty vectors (Section 7, "Cache
     * Flushing"). Blocks stay resident.
     */
    virtual RegionOpResult flushRegion(Addr base, std::uint64_t bytes,
                                       Cycle when);

    /**
     * DMA coherence query (Section 7, "Direct Memory Access"): does the
     * byte range contain any dirty block? Read-only; reports the lookup
     * cost the query incurred.
     */
    virtual RegionOpResult queryRegionDirty(Addr base,
                                            std::uint64_t bytes);

    const LlcConfig &config() const { return cfg; }
    TagStore &tags() { return store; }
    const TagStore &tags() const { return store; }

    /** Register counters for snapshotting. */
    virtual void registerStats(StatSet &set);

    /** Sanity checks on internal invariants (debug/test aid). */
    virtual void checkInvariants() const {}

    Counter statTagLookups;   ///< all tag-store lookups (demand+wb+sweep)
    Counter statDemandHits;
    Counter statDemandMisses;
    Counter statWritebacksIn; ///< writeback requests received from L2s
    Counter statWbToDram;     ///< writebacks sent to memory
    Counter statSweepLookups; ///< tag lookups made by writeback sweeps
    Counter statBypasses;     ///< reads that skipped the tag lookup
    Counter statDbiChecks;    ///< DBI consultations on the bypass path

  protected:
    /**
     * Arbitrate for the tag port at cycle `when` and account one lookup.
     * @return the cycle the lookup begins.
     */
    Cycle occupyPort(Cycle when);

    /** Mechanism-specific writeback handling (address pre-aligned). */
    virtual void doWriteback(Addr block_addr, std::uint32_t core,
                             Cycle when) = 0;

    /**
     * Send one block's data to memory: enqueue the DRAM write, account
     * it, and notify the auditor. Every writeback-to-memory in every
     * variant must go through here — it is the single point where a
     * block's latest data reaches DRAM.
     */
    void writebackToDram(Addr block_addr, Cycle when);

    /** Notify the auditor that one operation has settled. */
    void
    endAuditOp()
    {
        if (auditor) {
            auditor->onOperationEnd();
        }
    }

    /** Is this block dirty under the mechanism's bookkeeping? */
    virtual bool blockDirty(Addr block_addr) const = 0;

    /** Transition a resident block dirty -> clean (after writeback). */
    virtual void cleanBlock(Addr block_addr) = 0;

    /**
     * A (possibly dirty) block was displaced from the cache at cycle
     * `when`. Mechanisms generate writebacks (and sweeps) here.
     */
    virtual void handleEviction(Addr block_addr, bool tag_dirty,
                                Cycle when) = 0;

    /**
     * Hook before the normal read path; return true if the access was
     * fully handled (bypassed). Default: no bypassing.
     */
    virtual bool
    tryBypass(Addr, std::uint32_t, Cycle, Callback &)
    {
        return false;
    }

    /** Outcome feed for miss predictors. Default: none. */
    virtual void recordLookupOutcome(Addr, std::uint32_t, bool, Cycle) {}

    /**
     * Insert a block after a fill or writeback-allocate, routing any
     * displaced victim through handleEviction().
     */
    void fillBlock(Addr block_addr, std::uint32_t core, bool dirty,
                   Cycle when);

    /** Issue the DRAM read for a demand miss, merging duplicates. */
    void missToDram(Addr block_addr, std::uint32_t core, Cycle when,
                    Callback cb);

    /** The non-bypassed read path (tag lookup onward). */
    void normalRead(Addr block_addr, std::uint32_t core, Cycle when,
                    Callback cb);

    /**
     * Wrap a read-completion callback so the request's latency lands in
     * the class-`cls` histogram when it completes. Returns `cb`
     * unchanged when no histogram would record (keeping the common path
     * free of an extra std::function hop).
     */
    Callback wrapReadLatency(telemetry::ReadClass cls, Cycle when,
                             Callback cb);

    /**
     * Dirty blocks the tag store currently holds in `block_addr`'s DRAM
     * row (telemetry only; reads tag state without touching stats or
     * replacement order).
     */
    std::uint64_t countStoreDirtyInRow(Addr block_addr) const;

    LlcConfig cfg;
    DramController &dram;
    EventQueue &eq;
    TagStore store;
    Cycle portFreeAt = 0;
    LlcAuditObserver *auditor = nullptr;
    telemetry::SimTelemetry *telem = nullptr;

    /** Outstanding demand reads: block -> waiting callbacks + owner. */
    struct Pending
    {
        std::uint32_t core;
        std::vector<Callback> cbs;
    };
    std::unordered_map<Addr, Pending> pendingReads;
};

} // namespace dbsim

#endif // DBSIM_LLC_LLC_HH
