#include "llc/policies.hh"

#include "common/logging.hh"
#include "llc/llc.hh"

namespace dbsim {

// ---------------------------------------------------------------------
// TagDirtyStore
// ---------------------------------------------------------------------

void
TagDirtyStore::writebackIn(Addr block_addr, std::uint32_t core, Cycle when)
{
    Cycle start = llc->occupyPort(when);
    Cycle tag_done = start + llc->config().tagLatency;

    if (llc->tags().contains(block_addr)) {
        llc->tags().markDirty(block_addr);
    } else {
        // Writeback-allocate: insert the incoming dirty block.
        llc->fillBlock(block_addr, core, true, tag_done);
    }
}

void
TagDirtyStore::functionalWritebackIn(Addr block_addr, std::uint32_t core)
{
    // writebackIn() minus the port/stat traffic: mark or
    // writeback-allocate dirty.
    if (llc->tags().contains(block_addr)) {
        llc->tags().markDirty(block_addr);
    } else {
        llc->functionalFill(block_addr, core, true);
    }
}

bool
TagDirtyStore::isDirty(Addr block_addr) const
{
    const TagStore::Entry *e = llc->tags().find(block_addr);
    return e && e->dirty;
}

bool
TagDirtyStore::probeDirty(Addr block_addr) const
{
    return isDirty(block_addr);
}

void
TagDirtyStore::clean(Addr block_addr)
{
    llc->tags().markClean(block_addr);
}

bool
TagDirtyStore::victimDirty(Addr block_addr, bool tag_dirty)
{
    (void)block_addr;
    return tag_dirty;
}

std::uint64_t
TagDirtyStore::dirtyInVictimRow(Addr block_addr) const
{
    // The victim itself has already been displaced from the tag store,
    // hence the +1.
    return llc->countStoreDirtyInRow(block_addr) + 1;
}

// ---------------------------------------------------------------------
// WriteThroughStore
// ---------------------------------------------------------------------

void
WriteThroughStore::writebackIn(Addr block_addr, std::uint32_t core,
                               Cycle when)
{
    (void)core;
    // Write-through: the block (if present) is updated but stays clean,
    // and the write goes straight to memory. No write-allocate.
    Cycle start = llc->occupyPort(when);
    llc->writebackToDram(block_addr, start + llc->config().tagLatency);
}

void
WriteThroughStore::functionalWritebackIn(Addr block_addr,
                                         std::uint32_t core)
{
    (void)core;
    // Write-through: the data goes straight down; nothing allocates.
    llc->functionalWbToDram(block_addr);
}

// ---------------------------------------------------------------------
// DbiDirtyStore
// ---------------------------------------------------------------------

DbiDirtyStore::DbiDirtyStore(const DbiConfig &dbi_config) : cfg(dbi_config)
{
}

void
DbiDirtyStore::bind(Llc &owner)
{
    DirtyStore::bind(owner);
    index = std::make_unique<Dbi>(cfg, llc->tags().numBlocks());
}

void
DbiDirtyStore::registerStats(StatSet &set)
{
    index->registerStats(set);
    set.add("llc.awbWritebacks", statAwbWritebacks);
    set.add("llc.dbiEvictionWbs", statDbiEvictionWbs);
}

void
DbiDirtyStore::writebackIn(Addr block_addr, std::uint32_t core, Cycle when)
{
    Cycle start = llc->occupyPort(when);
    Cycle tag_done = start + llc->config().tagLatency;

    // 1) Insert/update the block in the cache (never via the tag store's
    //    dirty bit — the DBI is authoritative).
    if (!llc->tags().contains(block_addr)) {
        llc->fillBlock(block_addr, core, false, tag_done);
    }

    // 2) Update the DBI. A DBI eviction writes back the victim entry's
    //    blocks (which remain cached, now clean).
    std::vector<Addr> drained = index->setDirty(block_addr);
    drainDbiEviction(drained, tag_done);
}

void
DbiDirtyStore::drainDbiEviction(const std::vector<Addr> &blocks, Cycle when)
{
    Cycle cursor = when;
    Cycle last = when;
    for (Addr b : blocks) {
        panic_if(!llc->tags().contains(b),
                 "DBI invariant violated: dirty block %llx not cached",
                 static_cast<unsigned long long>(b));
        // One tag lookup per block to read its data for the writeback —
        // every lookup useful, unlike DAWB's speculative sweeps.
        Cycle start = llc->occupyPort(cursor);
        ++llc->statSweepLookups;
        cursor = start + 1;
        last = start + llc->config().tagLatency;
        llc->writebackToDram(b, last);
        ++statDbiEvictionWbs;
        llc->notifyMetaCleaned(b, last);
    }
    if constexpr (telemetry::kEnabled) {
        if (telemetry::SimTelemetry *telem = llc->telemetrySink();
            telem && !blocks.empty()) {
            telem->dbiEvictionDrain(when, last, blocks.size());
        }
    }
}

void
DbiDirtyStore::functionalWritebackIn(Addr block_addr, std::uint32_t core)
{
    // Mirror writebackIn(): allocate clean if absent, then mark dirty
    // in the DBI. A DBI eviction still drains its blocks (they become
    // clean), but with no lookups, cycles, or counters accounted.
    if (!llc->tags().contains(block_addr)) {
        llc->functionalFill(block_addr, core, false);
    }
    std::vector<Addr> drained = index->setDirty(block_addr,
                                                /*account=*/false);
    for (Addr b : drained) {
        panic_if(!llc->tags().contains(b),
                 "DBI invariant violated: dirty block %llx not cached",
                 static_cast<unsigned long long>(b));
        llc->functionalWbToDram(b);
    }
}

bool
DbiDirtyStore::isDirty(Addr block_addr) const
{
    return index->isDirty(block_addr);
}

bool
DbiDirtyStore::probeDirty(Addr block_addr) const
{
    return index->probeDirty(block_addr);
}

void
DbiDirtyStore::clean(Addr block_addr)
{
    index->clearDirty(block_addr);
}

bool
DbiDirtyStore::victimDirty(Addr block_addr, bool tag_dirty)
{
    panic_if(tag_dirty, "DBI cache must not use tag-store dirty bits");
    return index->isDirty(block_addr);
}

void
DbiDirtyStore::onVictimWrittenBack(Addr block_addr)
{
    index->clearDirty(block_addr);
}

bool
DbiDirtyStore::functionalVictimDirty(Addr block_addr, bool tag_dirty)
{
    panic_if(tag_dirty, "DBI cache must not use tag-store dirty bits");
    return index->probeDirty(block_addr);
}

void
DbiDirtyStore::functionalVictimWrittenBack(Addr block_addr)
{
    index->clearDirty(block_addr, /*account=*/false);
}

std::uint64_t
DbiDirtyStore::dirtyInVictimRow(Addr block_addr) const
{
    // Fig. 2 sample: the victim is still marked in the DBI here, so the
    // range count includes it (no +1 needed, unlike the in-tag store).
    const DramAddrMap &map = llc->addrMap();
    return index->countDirtyInRange(map.rowBase(block_addr),
                                    map.rowBytes());
}

void
DbiDirtyStore::checkInvariants() const
{
    // Every DBI-dirty block must be resident, and the tag store must
    // carry no dirty bits.
    index->forEachDirtyBlock([this](Addr b) {
        panic_if(!llc->tags().contains(b),
                 "DBI-dirty block %llx not resident",
                 static_cast<unsigned long long>(b));
    });
    panic_if(llc->tags().countDirty() != 0,
             "tag store of a DBI cache has dirty bits set");
}

// ---------------------------------------------------------------------
// DawbSweepPolicy
// ---------------------------------------------------------------------

void
DawbSweepPolicy::afterDirtyEviction(Addr block_addr, Cycle when)
{
    // Sweep every other block of the victim's DRAM row through the tag
    // store, writing back (and cleaning) the ones found dirty. Most of
    // these lookups are wasted — the blocks are clean or absent — which
    // is exactly DAWB's overhead (Section 3.1).
    const DramAddrMap &map = llc->addrMap();
    DirtyStore &ds = llc->dirtyStore();
    std::uint32_t victim_idx = map.blockInRow(block_addr);
    Cycle cursor = when;
    for (std::uint32_t i = 0; i < map.blocksPerRow(); ++i) {
        if (i == victim_idx) {
            continue;
        }
        Addr b = map.blockInRowAddr(block_addr, i);
        Cycle start = llc->occupyPort(cursor);
        ++llc->statSweepLookups;
        cursor = start + 1;
        if (llc->tags().contains(b) && ds.probeDirty(b)) {
            ds.clean(b);
            llc->writebackToDram(b, start + llc->config().tagLatency);
            llc->notifyMetaCleaned(b, start + llc->config().tagLatency);
        }
    }
}

// ---------------------------------------------------------------------
// VwqSweepPolicy
// ---------------------------------------------------------------------

VwqSweepPolicy::VwqSweepPolicy(std::uint32_t lru_ways) : lruWays(lru_ways)
{
}

void
VwqSweepPolicy::bind(Llc &owner)
{
    WritebackPolicy::bind(owner);
    fatal_if(lruWays == 0 || lruWays > llc->config().assoc,
             "VWQ LRU-way window out of range");
    fatal_if(llc->tags().numSets() < kSsvGroupSets,
             "cache too small for the SSV grouping");
}

bool
VwqSweepPolicy::setFlagged(std::uint32_t set) const
{
    const TagStore &tags = llc->tags();
    if (llc->dirtyStore().kind() == DirtyStoreKind::InTag) {
        return tags.anyDirtyInLruWays(set, lruWays);
    }
    // Generic SSV emulation for stores that keep dirtiness outside the
    // tag entries: probe the store for each LRU-way block of the set.
    const DirtyStore &ds = llc->dirtyStore();
    for (std::uint32_t way = 0; way < tags.assoc(); ++way) {
        const TagStore::Entry &e = tags.entryAt(set, way);
        if (e.valid && tags.lruRank(e.block) < lruWays &&
            ds.probeDirty(e.block)) {
            return true;
        }
    }
    return false;
}

void
VwqSweepPolicy::afterDirtyEviction(Addr block_addr, Cycle when)
{
    // Like DAWB, but consult the Set State Vector first: only sets that
    // report a dirty block among their LRU ways are looked up, and only
    // LRU-way blocks are eligible for proactive writeback.
    const DramAddrMap &map = llc->addrMap();
    DirtyStore &ds = llc->dirtyStore();
    std::uint32_t victim_idx = map.blockInRow(block_addr);
    Cycle cursor = when;
    for (std::uint32_t i = 0; i < map.blocksPerRow(); ++i) {
        if (i == victim_idx) {
            continue;
        }
        Addr b = map.blockInRowAddr(block_addr, i);
        std::uint32_t set = llc->tags().setIndex(b);
        // The SSV is coarse: one bit covers a small group of sets, so a
        // dirty LRU block anywhere in the group forces the lookup. This
        // imprecision is why VWQ is "not significantly more efficient"
        // than DAWB (Section 3.1).
        std::uint32_t group = set & ~(kSsvGroupSets - 1);
        bool flagged = false;
        for (std::uint32_t g = 0; g < kSsvGroupSets; ++g) {
            if (setFlagged(group + g)) {
                flagged = true;
                break;
            }
        }
        if (!flagged) {
            continue;  // SSV filtered: no tag lookup spent
        }
        Cycle start = llc->occupyPort(cursor);
        ++llc->statSweepLookups;
        cursor = start + 1;
        if (llc->tags().contains(b) && ds.probeDirty(b) &&
            llc->tags().lruRank(b) < lruWays) {
            ds.clean(b);
            llc->writebackToDram(b, start + llc->config().tagLatency);
            llc->notifyMetaCleaned(b, start + llc->config().tagLatency);
        }
    }
}

// ---------------------------------------------------------------------
// DbiAwbPolicy
// ---------------------------------------------------------------------

void
DbiAwbPolicy::bind(Llc &owner)
{
    WritebackPolicy::bind(owner);
    store = dynamic_cast<DbiDirtyStore *>(&llc->dirtyStore());
    fatal_if(!store, "aggressive writeback requires a DBI dirty store");
}

void
DbiAwbPolicy::afterDirtyEviction(Addr block_addr, Cycle when)
{
    // Write back every other dirty block of the victim's DBI row
    // (Section 3.1, Figure 3). The DBI lists them in one query; tag
    // lookups are spent only on blocks that are actually dirty.
    Dbi &index = *store->dbiIndex();
    std::vector<Addr> row_dirty = index.dirtyBlocksInRegion(block_addr);
    Cycle cursor = when;
    Cycle last = when;
    std::uint64_t burst = 0;
    for (Addr b : row_dirty) {
        if (b == block_addr) {
            continue;
        }
        panic_if(!llc->tags().contains(b),
                 "DBI invariant violated: dirty block %llx not cached",
                 static_cast<unsigned long long>(b));
        Cycle start = llc->occupyPort(cursor);
        ++llc->statSweepLookups;
        cursor = start + 1;
        last = start + llc->config().tagLatency;
        llc->writebackToDram(b, last);
        ++store->statAwbWritebacks;
        ++burst;
        index.clearDirty(b);
        llc->notifyMetaCleaned(b, last);
    }
    if constexpr (telemetry::kEnabled) {
        if (telemetry::SimTelemetry *telem = llc->telemetrySink();
            telem && burst > 0) {
            telem->awbBurst(when, last, burst);
        }
    }
}

// ---------------------------------------------------------------------
// SkipBypassLookup
// ---------------------------------------------------------------------

SkipBypassLookup::SkipBypassLookup(std::shared_ptr<MissPredictor> predictor)
    : pred(std::move(predictor))
{
    fatal_if(!pred, "the Skip-Cache bypass needs a miss predictor");
}

void
SkipBypassLookup::bind(Llc &owner)
{
    LookupPolicy::bind(owner);
    fatal_if(llc->dirtyStore().kind() != DirtyStoreKind::WriteThrough,
             "the Skip-Cache bypass is only safe over a write-through "
             "store (no block may ever be dirty)");
}

bool
SkipBypassLookup::tryBypass(Addr block_addr, std::uint32_t core,
                            Cycle when, Callback &cb)
{
    std::uint32_t set = llc->tags().setIndex(block_addr);
    if (!pred->predictMiss(set, core, when)) {
        return false;
    }
    // Write-through guarantees no dirty blocks, so bypassing is always
    // safe. Bypassed misses do not allocate.
    ++llc->statBypasses;
    if constexpr (telemetry::kEnabled) {
        cb = llc->wrapReadLatency(telemetry::ReadClass::Bypass, when,
                                  std::move(cb));
    }
    llc->dramRead(block_addr, when, std::move(cb));
    return true;
}

void
SkipBypassLookup::recordOutcome(Addr block_addr, std::uint32_t core,
                                bool hit, Cycle when)
{
    pred->recordOutcome(llc->tags().setIndex(block_addr), core, hit, when);
}

// ---------------------------------------------------------------------
// ClbBypassLookup
// ---------------------------------------------------------------------

ClbBypassLookup::ClbBypassLookup(std::shared_ptr<MissPredictor> predictor)
    : pred(std::move(predictor))
{
    fatal_if(!pred, "CLB requires a miss predictor");
}

void
ClbBypassLookup::bind(Llc &owner)
{
    LookupPolicy::bind(owner);
    index = llc->dbiIndex();
    fatal_if(!index, "CLB requires a DBI dirty store");
}

bool
ClbBypassLookup::tryBypass(Addr block_addr, std::uint32_t core, Cycle when,
                           Callback &cb)
{
    std::uint32_t set = llc->tags().setIndex(block_addr);
    if (!pred->predictMiss(set, core, when)) {
        return false;
    }

    // Check the (small, fast) DBI: a dirty block must take the normal
    // path; a clean predicted miss forwards straight to memory without
    // touching the tag store (Figure 4).
    ++llc->statDbiChecks;
    Cycle checked = when + index->latency();
    if (index->isDirty(block_addr)) {
        if constexpr (telemetry::kEnabled) {
            if (telemetry::SimTelemetry *telem = llc->telemetrySink()) {
                telem->clbDecision(block_addr, checked, true);
            }
        }
        llc->normalRead(block_addr, core, checked, std::move(cb));
        return true;
    }
    ++llc->statBypasses;
    if constexpr (telemetry::kEnabled) {
        if (telemetry::SimTelemetry *telem = llc->telemetrySink()) {
            telem->clbDecision(block_addr, checked, false);
        }
        cb = llc->wrapReadLatency(telemetry::ReadClass::Bypass, when,
                                  std::move(cb));
    }
    llc->dramRead(block_addr, checked, std::move(cb));
    return true;
}

void
ClbBypassLookup::recordOutcome(Addr block_addr, std::uint32_t core,
                               bool hit, Cycle when)
{
    pred->recordOutcome(llc->tags().setIndex(block_addr), core, hit, when);
}

} // namespace dbsim
