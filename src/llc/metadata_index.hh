/**
 * @file
 * MetadataIndex: the seam through which per-block metadata subsystems
 * (heterogeneous ECC, the split coherence directory — Sections 3.3 and
 * 2.3 of the paper) attach to the LLC. The paper's generalization of
 * the DBI is that *any* block metadata can live in a separate,
 * differently-organized index; this interface is the code form of that
 * claim. Implementations observe the cache's block lifecycle (fills,
 * reads, dirty transitions, evictions) without perturbing its timing
 * or statistics — like the audit and telemetry observers, a run with a
 * MetadataIndex attached must produce exactly the stats of a run
 * without one. Results are reported out of band via reportMetrics().
 */

#ifndef DBSIM_LLC_METADATA_INDEX_HH
#define DBSIM_LLC_METADATA_INDEX_HH

#include <map>
#include <string>

#include "common/stats.hh"
#include "common/types.hh"

namespace dbsim {

class MetadataIndex
{
  public:
    virtual ~MetadataIndex() = default;

    /** Short identifier, e.g. "ecc" or "dir" (used in metric keys). */
    virtual const char *name() const = 0;

    /** A block became resident (miss fill or writeback-allocate). */
    virtual void onFill(Addr block_addr, std::uint32_t core, bool dirty,
                        Cycle when) = 0;

    /** A demand read looked up the block (hit or miss). */
    virtual void
    onRead(Addr block_addr, std::uint32_t core, bool hit, Cycle when)
    {
        (void)block_addr;
        (void)core;
        (void)hit;
        (void)when;
    }

    /** The block transitioned clean -> dirty (writeback into the LLC). */
    virtual void onDirty(Addr block_addr, std::uint32_t core,
                         Cycle when) = 0;

    /** The block's dirty data was written back to DRAM (now clean). */
    virtual void onCleaned(Addr block_addr, Cycle when) = 0;

    /** The block was evicted from the cache. */
    virtual void onEviction(Addr block_addr, Cycle when) = 0;

    /** Report end-of-run metrics (keys should be prefixed with name()). */
    virtual void reportMetrics(std::map<std::string, double> &out) const = 0;

    /** Register any counters worth snapshotting. */
    virtual void registerStats(StatSet &set) { (void)set; }
};

} // namespace dbsim

#endif // DBSIM_LLC_METADATA_INDEX_HH
