#include "llc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dbsim {

Llc::Llc(const LlcConfig &config, DramController &dram_ctrl,
         EventQueue &event_queue)
    : cfg(config), dram(dram_ctrl), eq(event_queue),
      store(CacheGeometry{config.sizeBytes, config.assoc, config.repl,
                          config.numCores, config.seed})
{
}

void
Llc::registerStats(StatSet &set)
{
    set.add("llc.tagLookups", statTagLookups);
    set.add("llc.demandHits", statDemandHits);
    set.add("llc.demandMisses", statDemandMisses);
    set.add("llc.writebacksIn", statWritebacksIn);
    set.add("llc.wbToDram", statWbToDram);
    set.add("llc.sweepLookups", statSweepLookups);
    set.add("llc.bypasses", statBypasses);
    set.add("llc.dbiChecks", statDbiChecks);
}

Cycle
Llc::occupyPort(Cycle when)
{
    Cycle start = std::max(when, portFreeAt);
    portFreeAt = start + 1;  // pipelined: one lookup per cycle
    ++statTagLookups;
    return start;
}

void
Llc::writeback(Addr block_addr, std::uint32_t core, Cycle when)
{
    Addr a = blockAlign(block_addr);
    ++statWritebacksIn;
    if (auditor) {
        auditor->onWritebackIn(a, when);
    }
    doWriteback(a, core, when);
    endAuditOp();
}

void
Llc::writebackToDram(Addr block_addr, Cycle when)
{
    dram.enqueueWrite(block_addr, when);
    ++statWbToDram;
    if (auditor) {
        auditor->onWbToDram(block_addr, when);
    }
}

void
Llc::read(Addr block_addr, std::uint32_t core, Cycle when, Callback cb)
{
    Addr a = blockAlign(block_addr);

    if (tryBypass(a, core, when, cb)) {
        return;
    }
    normalRead(a, core, when, std::move(cb));
}

void
Llc::normalRead(Addr block_addr, std::uint32_t core, Cycle when,
                Callback cb)
{
    Addr a = block_addr;
    Cycle start = occupyPort(when);
    Cycle tag_done = start + cfg.tagLatency;

    TagStore::Entry *e = store.find(a);
    bool hit = e != nullptr;
    recordLookupOutcome(a, core, hit, when);

    if (hit) {
        ++statDemandHits;
        store.touch(a, core);
        Cycle done = tag_done + cfg.dataLatency;
        if constexpr (telemetry::kEnabled) {
            if (telem) {
                telem->readLatency(telemetry::ReadClass::Hit, done - when);
            }
        }
        eq.schedule(done, [cb = std::move(cb), done] { cb(done); });
        return;
    }

    ++statDemandMisses;
    if constexpr (telemetry::kEnabled) {
        cb = wrapReadLatency(telemetry::ReadClass::Miss, when,
                             std::move(cb));
    }
    missToDram(a, core, tag_done, std::move(cb));
}

Llc::Callback
Llc::wrapReadLatency(telemetry::ReadClass cls, Cycle when, Callback cb)
{
    if constexpr (telemetry::kEnabled) {
        if (telem && telem->histogramsEnabled()) {
            return [this, cls, when, cb = std::move(cb)](Cycle done) {
                telem->readLatency(cls, done > when ? done - when : 0);
                cb(done);
            };
        }
    }
    return cb;
}

std::uint64_t
Llc::countStoreDirtyInRow(Addr block_addr) const
{
    const DramAddrMap &map = dram.addrMap();
    Addr base = map.rowBase(block_addr);
    std::uint64_t dirty = 0;
    for (std::uint32_t i = 0; i < map.blocksPerRow(); ++i) {
        const TagStore::Entry *e = store.find(base + Addr{i} * kBlockBytes);
        if (e && e->dirty) {
            ++dirty;
        }
    }
    return dirty;
}

void
Llc::missToDram(Addr block_addr, std::uint32_t core, Cycle when,
                Callback cb)
{
    auto it = pendingReads.find(block_addr);
    if (it != pendingReads.end()) {
        // Merge with the in-flight request for the same block.
        it->second.cbs.push_back(std::move(cb));
        return;
    }

    Pending p;
    p.core = core;
    p.cbs.push_back(std::move(cb));
    pendingReads.emplace(block_addr, std::move(p));

    dram.enqueueRead(block_addr, when, [this, block_addr](Cycle done) {
        auto pit = pendingReads.find(block_addr);
        panic_if(pit == pendingReads.end(), "orphan DRAM completion");
        Pending p = std::move(pit->second);
        pendingReads.erase(pit);
        // Fill, then complete all merged requesters.
        fillBlock(block_addr, p.core, false, done);
        endAuditOp();
        for (auto &waiting : p.cbs) {
            waiting(done);
        }
    });
}

Llc::RegionOpResult
Llc::flushRegion(Addr base, std::uint64_t bytes, Cycle when)
{
    // Conventional organization: brute force — one tag lookup per block
    // of the range to find the dirty ones.
    RegionOpResult res;
    Addr start = blockAlign(base);
    Cycle cursor = when;
    for (Addr a = start; a < base + bytes; a += kBlockBytes) {
        Cycle t = occupyPort(cursor);
        cursor = t + 1;
        ++res.lookups;
        if (store.contains(a) && blockDirty(a)) {
            res.anyDirty = true;
            ++res.writebacks;
            writebackToDram(a, t + cfg.tagLatency);
            cleanBlock(a);
        }
    }
    endAuditOp();
    return res;
}

Llc::RegionOpResult
Llc::queryRegionDirty(Addr base, std::uint64_t bytes)
{
    RegionOpResult res;
    Addr start = blockAlign(base);
    for (Addr a = start; a < base + bytes; a += kBlockBytes) {
        ++res.lookups;
        ++statTagLookups;
        if (store.contains(a) && blockDirty(a)) {
            res.anyDirty = true;
        }
    }
    return res;
}

void
Llc::fillBlock(Addr block_addr, std::uint32_t core, bool dirty, Cycle when)
{
    if (store.contains(block_addr)) {
        // Already filled by a racing writeback-allocate: promote, and
        // merge the incoming dirty state. Dropping it here would turn a
        // dirty writeback silently clean and lose a memory update.
        store.touch(block_addr, core);
        if (dirty) {
            store.markDirty(block_addr);
        }
        if (auditor) {
            auditor->onFill(block_addr, dirty, when);
        }
        return;
    }
    TagStore::Eviction ev = store.insert(block_addr, core, dirty);
    if (auditor) {
        auditor->onFill(block_addr, dirty, when);
    }
    if (ev.valid) {
        handleEviction(ev.block, ev.dirty, when);
        if (auditor) {
            auditor->onEviction(ev.block, when);
        }
    }
}

} // namespace dbsim
