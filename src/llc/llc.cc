#include "llc.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dbsim {

Llc::Llc(const LlcConfig &config, BackingPort &backing_port,
         ShardContext context, std::unique_ptr<DirtyStore> dirty_store,
         std::unique_ptr<WritebackPolicy> writeback_policy,
         std::unique_ptr<LookupPolicy> lookup_policy)
    : cfg(config), backing(backing_port), ctx(context), eq(context.queue()),
      store(CacheGeometry{config.sizeBytes, config.assoc, config.repl,
                          config.numCores, config.seed}),
      dirtyStorePtr(dirty_store ? std::move(dirty_store)
                                : std::make_unique<TagDirtyStore>()),
      wbPolicy(writeback_policy ? std::move(writeback_policy)
                                : std::make_unique<EvictOrderPolicy>()),
      lookupPol(lookup_policy ? std::move(lookup_policy)
                              : std::make_unique<AlwaysLookup>())
{
    // Bind order matters: the DirtyStore first (it may build the DBI the
    // other components look up during their own bind).
    dirtyStorePtr->bind(*this);
    wbPolicy->bind(*this);
    lookupPol->bind(*this);
}

void
Llc::registerStats(StatSet &set)
{
    set.add("llc.tagLookups", statTagLookups);
    set.add("llc.demandHits", statDemandHits);
    set.add("llc.demandMisses", statDemandMisses);
    set.add("llc.writebacksIn", statWritebacksIn);
    set.add("llc.wbToDram", statWbToDram);
    set.add("llc.sweepLookups", statSweepLookups);
    set.add("llc.bypasses", statBypasses);
    set.add("llc.dbiChecks", statDbiChecks);
    dirtyStorePtr->registerStats(set);
    wbPolicy->registerStats(set);
    lookupPol->registerStats(set);
    for (MetadataIndex *m : metaIndexes) {
        m->registerStats(set);
    }
}

void
Llc::attachMetadata(MetadataIndex *index)
{
    fatal_if(!index, "attachMetadata: null metadata index");
    metaIndexes.push_back(index);
}

Cycle
Llc::occupyPort(Cycle when)
{
    Cycle start = std::max(when, portFreeAt);
    portFreeAt = start + 1;  // pipelined: one lookup per cycle
    ++statTagLookups;
    return start;
}

void
Llc::writeback(Addr block_addr, std::uint32_t core, Cycle when)
{
    Addr a = blockAlign(block_addr);
    ++statWritebacksIn;
    if (auditor) {
        auditor->onWritebackIn(a, when);
    }
    dirtyStorePtr->writebackIn(a, core, when);
    if (!metaIndexes.empty() &&
        dirtyStorePtr->kind() != DirtyStoreKind::WriteThrough) {
        // The block is now dirty under the store's bookkeeping (a
        // write-through store never dirties anything, so skip it there).
        for (MetadataIndex *m : metaIndexes) {
            m->onDirty(a, core, when);
        }
    }
    endAuditOp();
}

void
Llc::functionalAccess(Addr block_addr, std::uint32_t core, bool is_write)
{
    Addr a = blockAlign(block_addr);
    Cycle now = eq.now();

    // Demand access: train the predictor with the true outcome, then
    // touch or warm-fill. Misses also warm the level below.
    bool hit = store.contains(a);
    lookupPol->recordOutcome(a, core, hit, now);
    if (hit) {
        store.touch(a, core);
    } else {
        functionalFill(a, core, false);
        backing.functionalAccess(a, false);
    }

    if (is_write) {
        // A store being warmed dirties the block here directly — the
        // unwarmed L1/L2 would have delivered it as a writeback
        // eventually. functionalWritebackIn() re-allocates if the fill
        // above was itself evicted (single-set pathologies).
        if (auditor) {
            auditor->onWritebackIn(a, now);
        }
        dirtyStorePtr->functionalWritebackIn(a, core);
    }
    endAuditOp();
}

void
Llc::functionalFill(Addr block_addr, std::uint32_t core, bool dirty)
{
    Cycle now = eq.now();
    if (store.contains(block_addr)) {
        store.touch(block_addr, core);
        if (dirty) {
            store.markDirty(block_addr);
        }
        if (auditor) {
            auditor->onFill(block_addr, dirty, now);
        }
        return;
    }
    TagStore::Eviction ev = store.insert(block_addr, core, dirty);
    if (auditor) {
        auditor->onFill(block_addr, dirty, now);
    }
    if (ev.valid) {
        if (dirtyStorePtr->functionalVictimDirty(ev.block, ev.dirty)) {
            // Dirty functional eviction: the data reaches memory and
            // the metadata is dropped, exactly like the timed path —
            // minus the WritebackPolicy's proactive row sweep, which
            // is a timing optimization warming deliberately skips.
            functionalWbToDram(ev.block);
            dirtyStorePtr->functionalVictimWrittenBack(ev.block);
        }
        if (auditor) {
            auditor->onEviction(ev.block, now);
        }
    }
}

void
Llc::functionalWbToDram(Addr block_addr)
{
    if (auditor) {
        auditor->onWbToDram(block_addr, eq.now());
    }
    backing.functionalAccess(block_addr, true);
}

void
Llc::writebackToDram(Addr block_addr, Cycle when)
{
    dramWrite(block_addr, when);
    ++statWbToDram;
    if (auditor) {
        auditor->onWbToDram(block_addr, when);
    }
}

void
Llc::notifyMetaCleaned(Addr block_addr, Cycle when)
{
    for (MetadataIndex *m : metaIndexes) {
        m->onCleaned(block_addr, when);
    }
}

void
Llc::read(Addr block_addr, std::uint32_t core, Cycle when, Callback cb)
{
    Addr a = blockAlign(block_addr);

    if (lookupPol->tryBypass(a, core, when, cb)) {
        return;
    }
    normalRead(a, core, when, std::move(cb));
}

void
Llc::normalRead(Addr block_addr, std::uint32_t core, Cycle when,
                Callback cb)
{
    Addr a = block_addr;
    Cycle start = occupyPort(when);
    Cycle tag_done = start + cfg.tagLatency;

    TagStore::Entry *e = store.find(a);
    bool hit = e != nullptr;
    lookupPol->recordOutcome(a, core, hit, when);
    for (MetadataIndex *m : metaIndexes) {
        m->onRead(a, core, hit, when);
    }

    if (hit) {
        ++statDemandHits;
        store.touch(a, core);
        Cycle done = tag_done + cfg.dataLatency;
        if constexpr (telemetry::kEnabled) {
            if (telem) {
                telem->readLatency(telemetry::ReadClass::Hit, done - when);
            }
        }
        eq.schedule(done, [cb = std::move(cb), done] { cb(done); },
                    prof::Llc);
        return;
    }

    ++statDemandMisses;
    if constexpr (telemetry::kEnabled) {
        cb = wrapReadLatency(telemetry::ReadClass::Miss, when,
                             std::move(cb));
    }
    missToDram(a, core, tag_done, std::move(cb));
}

Llc::Callback
Llc::wrapReadLatency(telemetry::ReadClass cls, Cycle when, Callback cb)
{
    if constexpr (telemetry::kEnabled) {
        if (telem && telem->histogramsEnabled()) {
            return [this, cls, when, cb = std::move(cb)](Cycle done) {
                telem->readLatency(cls, done > when ? done - when : 0);
                cb(done);
            };
        }
    }
    return cb;
}

std::uint64_t
Llc::countStoreDirtyInRow(Addr block_addr) const
{
    const DramAddrMap &map = backing.addrMap();
    Addr base = map.rowBase(block_addr);
    std::uint64_t dirty = 0;
    for (std::uint32_t i = 0; i < map.blocksPerRow(); ++i) {
        const TagStore::Entry *e = store.find(base + Addr{i} * kBlockBytes);
        if (e && e->dirty) {
            ++dirty;
        }
    }
    return dirty;
}

void
Llc::missToDram(Addr block_addr, std::uint32_t core, Cycle when,
                Callback cb)
{
    auto it = pendingReads.find(block_addr);
    if (it != pendingReads.end()) {
        // Merge with the in-flight request for the same block.
        it->second.cbs.push_back(std::move(cb));
        return;
    }

    Pending p;
    p.core = core;
    p.cbs.push_back(std::move(cb));
    pendingReads.emplace(block_addr, std::move(p));

    dramRead(block_addr, when, [this, block_addr](Cycle done) {
        auto pit = pendingReads.find(block_addr);
        panic_if(pit == pendingReads.end(), "orphan DRAM completion");
        Pending p = std::move(pit->second);
        pendingReads.erase(pit);
        // Fill, then complete all merged requesters.
        fillBlock(block_addr, p.core, false, done);
        endAuditOp();
        for (auto &waiting : p.cbs) {
            waiting(done);
        }
    });
}

Llc::RegionOpResult
Llc::flushRegion(Addr base, std::uint64_t bytes, Cycle when)
{
    RegionOpResult res;
    Cycle cursor = when;
    if (Dbi *index = dbiIndex()) {
        // One DBI query per granularity-sized region; tag lookups only
        // for the blocks that are actually dirty (their data must be
        // read out).
        std::uint64_t region_bytes =
            static_cast<std::uint64_t>(index->granularity()) * kBlockBytes;
        Addr start = base - base % region_bytes;
        for (Addr r = start; r < base + bytes; r += region_bytes) {
            ++res.lookups;  // the DBI access
            std::vector<Addr> dirty = index->dirtyBlocksInRegion(r);
            for (Addr b : dirty) {
                if (b < base || b >= base + bytes) {
                    continue;  // outside the requested range
                }
                Cycle t = occupyPort(cursor);
                cursor = t + 1;
                ++res.lookups;
                res.anyDirty = true;
                ++res.writebacks;
                writebackToDram(b, t + cfg.tagLatency);
                index->clearDirty(b);
                notifyMetaCleaned(b, t + cfg.tagLatency);
            }
        }
        endAuditOp();
        return res;
    }

    // Conventional organization: brute force — one tag lookup per block
    // of the range to find the dirty ones.
    Addr start = blockAlign(base);
    for (Addr a = start; a < base + bytes; a += kBlockBytes) {
        Cycle t = occupyPort(cursor);
        cursor = t + 1;
        ++res.lookups;
        if (store.contains(a) && dirtyStorePtr->probeDirty(a)) {
            res.anyDirty = true;
            ++res.writebacks;
            writebackToDram(a, t + cfg.tagLatency);
            dirtyStorePtr->clean(a);
            notifyMetaCleaned(a, t + cfg.tagLatency);
        }
    }
    endAuditOp();
    return res;
}

Llc::RegionOpResult
Llc::queryRegionDirty(Addr base, std::uint64_t bytes)
{
    RegionOpResult res;
    if (const Dbi *index = dbiIndex()) {
        std::uint64_t region_bytes =
            static_cast<std::uint64_t>(index->granularity()) * kBlockBytes;
        Addr start = base - base % region_bytes;
        for (Addr r = start; r < base + bytes; r += region_bytes) {
            ++res.lookups;  // one DBI access answers the whole region
            for (Addr b : index->dirtyBlocksInRegion(r)) {
                if (b >= base && b < base + bytes) {
                    res.anyDirty = true;
                }
            }
        }
        return res;
    }

    Addr start = blockAlign(base);
    for (Addr a = start; a < base + bytes; a += kBlockBytes) {
        ++res.lookups;
        ++statTagLookups;
        if (store.contains(a) && dirtyStorePtr->probeDirty(a)) {
            res.anyDirty = true;
        }
    }
    return res;
}

void
Llc::handleEviction(Addr block_addr, bool tag_dirty, Cycle when)
{
    if (!dirtyStorePtr->victimDirty(block_addr, tag_dirty)) {
        return;  // clean eviction: nothing to write back
    }
    if constexpr (telemetry::kEnabled) {
        // Fig. 2 sample: dirty blocks co-resident in the victim's DRAM
        // row, including the victim itself (the store accounts for
        // whether its metadata still covers the displaced entry).
        if (telem && telem->histogramsEnabled()) {
            telem->dirtyRowWriteback(
                dirtyStorePtr->dirtyInVictimRow(block_addr));
        }
    }
    // Dirty eviction: write the victim back, drop its dirty metadata,
    // then let the writeback policy piggyback further writebacks.
    writebackToDram(block_addr, when);
    dirtyStorePtr->onVictimWrittenBack(block_addr);
    wbPolicy->afterDirtyEviction(block_addr, when);
}

void
Llc::fillBlock(Addr block_addr, std::uint32_t core, bool dirty, Cycle when)
{
    if (store.contains(block_addr)) {
        // Already filled by a racing writeback-allocate: promote, and
        // merge the incoming dirty state. Dropping it here would turn a
        // dirty writeback silently clean and lose a memory update.
        store.touch(block_addr, core);
        if (dirty) {
            store.markDirty(block_addr);
        }
        if (auditor) {
            auditor->onFill(block_addr, dirty, when);
        }
        for (MetadataIndex *m : metaIndexes) {
            m->onFill(block_addr, core, dirty, when);
        }
        return;
    }
    TagStore::Eviction ev = store.insert(block_addr, core, dirty);
    if (auditor) {
        auditor->onFill(block_addr, dirty, when);
    }
    for (MetadataIndex *m : metaIndexes) {
        m->onFill(block_addr, core, dirty, when);
    }
    if (ev.valid) {
        handleEviction(ev.block, ev.dirty, when);
        if (auditor) {
            auditor->onEviction(ev.block, when);
        }
        for (MetadataIndex *m : metaIndexes) {
            m->onEviction(ev.block, when);
        }
    }
}

} // namespace dbsim
