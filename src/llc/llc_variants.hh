/**
 * @file
 * The evaluated LLC mechanisms (Table 2): baseline/TA-DIP, DAWB, VWQ,
 * Skip Cache, and the DBI cache with its AWB and CLB optimizations.
 */

#ifndef DBSIM_LLC_LLC_VARIANTS_HH
#define DBSIM_LLC_LLC_VARIANTS_HH

#include <memory>

#include "dbi/dbi.hh"
#include "llc/llc.hh"
#include "pred/miss_predictor.hh"

namespace dbsim {

/**
 * Conventional writeback LLC: dirty bits live in the tag store; dirty
 * victims are written back in eviction order. Replacement/insertion
 * policy comes from LlcConfig (LRU for "Baseline", TA-DIP for "TA-DIP").
 */
class BaselineLlc : public Llc
{
  public:
    BaselineLlc(const LlcConfig &config, DramController &dram_ctrl,
                EventQueue &event_queue);

  protected:
    void doWriteback(Addr block_addr, std::uint32_t core,
                     Cycle when) override;
    bool blockDirty(Addr block_addr) const override;
    void cleanBlock(Addr block_addr) override;
    void handleEviction(Addr block_addr, bool tag_dirty,
                        Cycle when) override;
};

/**
 * DRAM-Aware Writeback [27]: when a dirty block is evicted, look up
 * every other block of its DRAM row in the tag store (each a full tag
 * lookup, dirty or not — the source of DAWB's 1.95x lookup overhead)
 * and write back those found dirty, cleaning them in place.
 */
class DawbLlc : public BaselineLlc
{
  public:
    DawbLlc(const LlcConfig &config, DramController &dram_ctrl,
            EventQueue &event_queue);

  protected:
    void handleEviction(Addr block_addr, bool tag_dirty,
                        Cycle when) override;
};

/**
 * Virtual Write Queue [51]: like DAWB, but a Set State Vector (SSV)
 * records whether each set holds a dirty block among its LRU ways; row
 * sweeps skip sets whose SSV bit is clear, and only write back dirty
 * blocks found in the LRU ways. Cheaper than DAWB per sweep but still
 * performs many unnecessary lookups (Section 3.1).
 */
class VwqLlc : public BaselineLlc
{
  public:
    VwqLlc(const LlcConfig &config, DramController &dram_ctrl,
           EventQueue &event_queue, std::uint32_t lru_ways = 4);

  protected:
    void handleEviction(Addr block_addr, bool tag_dirty,
                        Cycle when) override;

  private:
    /** Sets covered by one (coarse) SSV bit. */
    static constexpr std::uint32_t kSsvGroupSets = 4;

    std::uint32_t lruWays;
};

/**
 * Skip Cache [44]: a write-through LLC (so no block is ever dirty) whose
 * predicted-miss reads bypass the tag lookup entirely. Bypassed misses
 * do not allocate.
 */
class SkipLlc : public Llc
{
  public:
    SkipLlc(const LlcConfig &config, DramController &dram_ctrl,
            EventQueue &event_queue,
            std::shared_ptr<MissPredictor> predictor);

  protected:
    void doWriteback(Addr block_addr, std::uint32_t core,
                     Cycle when) override;
    bool blockDirty(Addr) const override { return false; }
    void cleanBlock(Addr) override {}
    void handleEviction(Addr, bool, Cycle) override {}
    bool tryBypass(Addr block_addr, std::uint32_t core, Cycle when,
                   Callback &cb) override;
    void recordLookupOutcome(Addr block_addr, std::uint32_t core, bool hit,
                             Cycle when) override;

  private:
    std::shared_ptr<MissPredictor> pred;
};

/**
 * The DBI cache (Sections 2 and 3): tag store carries no dirty bits; all
 * dirtiness queries go to the Dirty-Block Index. Optional optimizations:
 *
 *  - AWB: on a dirty eviction, write back all dirty blocks of the same
 *    DBI row (one DBI query lists them; tag lookups are performed only
 *    for blocks that are actually dirty).
 *  - CLB: predicted-miss reads check the small DBI instead of the tag
 *    store; clean predicted misses forward straight to memory.
 *
 * Even plain DBI gets DRAM-aware writebacks "for free": DBI evictions
 * write back a whole row's dirty blocks together (Section 6.2).
 */
class DbiLlc : public Llc
{
  public:
    DbiLlc(const LlcConfig &config, const DbiConfig &dbi_config,
           DramController &dram_ctrl, EventQueue &event_queue,
           bool enable_awb, bool enable_clb,
           std::shared_ptr<MissPredictor> predictor = nullptr);

    Dbi &dbi() { return index; }
    const Dbi &dbi() const { return index; }
    bool awbEnabled() const { return awb; }
    bool clbEnabled() const { return clb; }

    void registerStats(StatSet &set) override;
    void checkInvariants() const override;

    /**
     * DBI-accelerated flush (Section 7): one DBI query per region lists
     * the dirty blocks, so lookups are spent only on blocks that must
     * actually be written back.
     */
    RegionOpResult flushRegion(Addr base, std::uint64_t bytes,
                               Cycle when) override;

    /** DBI-accelerated DMA coherence query: one DBI access per region. */
    RegionOpResult queryRegionDirty(Addr base,
                                    std::uint64_t bytes) override;

    Counter statAwbWritebacks;  ///< extra row writebacks from AWB
    Counter statDbiEvictionWbs; ///< writebacks from DBI evictions

  protected:
    void doWriteback(Addr block_addr, std::uint32_t core,
                     Cycle when) override;
    bool blockDirty(Addr block_addr) const override;
    void cleanBlock(Addr block_addr) override;
    void handleEviction(Addr block_addr, bool tag_dirty,
                        Cycle when) override;
    bool tryBypass(Addr block_addr, std::uint32_t core, Cycle when,
                   Callback &cb) override;
    void recordLookupOutcome(Addr block_addr, std::uint32_t core, bool hit,
                             Cycle when) override;

  private:
    /** Write back the blocks a DBI eviction drained (they stay cached). */
    void drainDbiEviction(const std::vector<Addr> &blocks, Cycle when);

    Dbi index;
    bool awb;
    bool clb;
    std::shared_ptr<MissPredictor> pred;
};

} // namespace dbsim

#endif // DBSIM_LLC_LLC_VARIANTS_HH
