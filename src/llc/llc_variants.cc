#include "llc_variants.hh"

#include "common/logging.hh"

namespace dbsim {

// ---------------------------------------------------------------------
// BaselineLlc
// ---------------------------------------------------------------------

BaselineLlc::BaselineLlc(const LlcConfig &config, DramController &dram_ctrl,
                         EventQueue &event_queue)
    : Llc(config, dram_ctrl, event_queue)
{
}

void
BaselineLlc::doWriteback(Addr block_addr, std::uint32_t core, Cycle when)
{
    Cycle start = occupyPort(when);
    Cycle tag_done = start + cfg.tagLatency;

    if (store.contains(block_addr)) {
        store.markDirty(block_addr);
    } else {
        // Writeback-allocate: insert the incoming dirty block.
        fillBlock(block_addr, core, true, tag_done);
    }
}

bool
BaselineLlc::blockDirty(Addr block_addr) const
{
    const TagStore::Entry *e = store.find(block_addr);
    return e && e->dirty;
}

void
BaselineLlc::cleanBlock(Addr block_addr)
{
    store.markClean(block_addr);
}

void
BaselineLlc::handleEviction(Addr block_addr, bool tag_dirty, Cycle when)
{
    if (tag_dirty) {
        if constexpr (telemetry::kEnabled) {
            // Fig. 2 sample: dirty blocks co-resident in the victim's
            // DRAM row. The victim itself has already been displaced
            // from the tag store, hence the +1.
            if (telem && telem->histogramsEnabled()) {
                telem->dirtyRowWriteback(countStoreDirtyInRow(block_addr) +
                                         1);
            }
        }
        writebackToDram(block_addr, when);
    }
}

// ---------------------------------------------------------------------
// DawbLlc
// ---------------------------------------------------------------------

DawbLlc::DawbLlc(const LlcConfig &config, DramController &dram_ctrl,
                 EventQueue &event_queue)
    : BaselineLlc(config, dram_ctrl, event_queue)
{
}

void
DawbLlc::handleEviction(Addr block_addr, bool tag_dirty, Cycle when)
{
    BaselineLlc::handleEviction(block_addr, tag_dirty, when);
    if (!tag_dirty) {
        return;
    }
    // Sweep every other block of the victim's DRAM row through the tag
    // store, writing back (and cleaning) the ones found dirty. Most of
    // these lookups are wasted — the blocks are clean or absent — which
    // is exactly DAWB's overhead (Section 3.1).
    const DramAddrMap &map = dram.addrMap();
    std::uint32_t victim_idx = map.blockInRow(block_addr);
    Cycle cursor = when;
    for (std::uint32_t i = 0; i < map.blocksPerRow(); ++i) {
        if (i == victim_idx) {
            continue;
        }
        Addr b = map.blockInRowAddr(block_addr, i);
        Cycle start = occupyPort(cursor);
        ++statSweepLookups;
        cursor = start + 1;
        TagStore::Entry *e = store.find(b);
        if (e && e->dirty) {
            store.markClean(b);
            writebackToDram(b, start + cfg.tagLatency);
        }
    }
}

// ---------------------------------------------------------------------
// VwqLlc
// ---------------------------------------------------------------------

VwqLlc::VwqLlc(const LlcConfig &config, DramController &dram_ctrl,
               EventQueue &event_queue, std::uint32_t lru_ways)
    : BaselineLlc(config, dram_ctrl, event_queue), lruWays(lru_ways)
{
    fatal_if(lru_ways == 0 || lru_ways > config.assoc,
             "VWQ LRU-way window out of range");
    fatal_if(store.numSets() < kSsvGroupSets,
             "cache too small for the SSV grouping");
}

void
VwqLlc::handleEviction(Addr block_addr, bool tag_dirty, Cycle when)
{
    BaselineLlc::handleEviction(block_addr, tag_dirty, when);
    if (!tag_dirty) {
        return;
    }
    // Like DAWB, but consult the Set State Vector first: only sets that
    // report a dirty block among their LRU ways are looked up, and only
    // LRU-way blocks are eligible for proactive writeback.
    const DramAddrMap &map = dram.addrMap();
    std::uint32_t victim_idx = map.blockInRow(block_addr);
    Cycle cursor = when;
    for (std::uint32_t i = 0; i < map.blocksPerRow(); ++i) {
        if (i == victim_idx) {
            continue;
        }
        Addr b = map.blockInRowAddr(block_addr, i);
        std::uint32_t set = store.setIndex(b);
        // The SSV is coarse: one bit covers a small group of sets, so a
        // dirty LRU block anywhere in the group forces the lookup. This
        // imprecision is why VWQ is "not significantly more efficient"
        // than DAWB (Section 3.1).
        std::uint32_t group = set & ~(kSsvGroupSets - 1);
        bool flagged = false;
        for (std::uint32_t g = 0; g < kSsvGroupSets; ++g) {
            if (store.anyDirtyInLruWays(group + g, lruWays)) {
                flagged = true;
                break;
            }
        }
        if (!flagged) {
            continue;  // SSV filtered: no tag lookup spent
        }
        Cycle start = occupyPort(cursor);
        ++statSweepLookups;
        cursor = start + 1;
        TagStore::Entry *e = store.find(b);
        if (e && e->dirty && store.lruRank(b) < lruWays) {
            store.markClean(b);
            writebackToDram(b, start + cfg.tagLatency);
        }
    }
}

// ---------------------------------------------------------------------
// SkipLlc
// ---------------------------------------------------------------------

SkipLlc::SkipLlc(const LlcConfig &config, DramController &dram_ctrl,
                 EventQueue &event_queue,
                 std::shared_ptr<MissPredictor> predictor)
    : Llc(config, dram_ctrl, event_queue), pred(std::move(predictor))
{
    fatal_if(!pred, "SkipLlc needs a miss predictor");
}

void
SkipLlc::doWriteback(Addr block_addr, std::uint32_t core, Cycle when)
{
    (void)core;
    // Write-through: the block (if present) is updated but stays clean,
    // and the write goes straight to memory. No write-allocate.
    Cycle start = occupyPort(when);
    writebackToDram(block_addr, start + cfg.tagLatency);
}

bool
SkipLlc::tryBypass(Addr block_addr, std::uint32_t core, Cycle when,
                   Callback &cb)
{
    std::uint32_t set = store.setIndex(block_addr);
    if (!pred->predictMiss(set, core, when)) {
        return false;
    }
    // Write-through guarantees no dirty blocks, so bypassing is always
    // safe. Bypassed misses do not allocate.
    ++statBypasses;
    if constexpr (telemetry::kEnabled) {
        cb = wrapReadLatency(telemetry::ReadClass::Bypass, when,
                             std::move(cb));
    }
    dram.enqueueRead(block_addr, when, std::move(cb));
    return true;
}

void
SkipLlc::recordLookupOutcome(Addr block_addr, std::uint32_t core, bool hit,
                             Cycle when)
{
    pred->recordOutcome(store.setIndex(block_addr), core, hit, when);
}

// ---------------------------------------------------------------------
// DbiLlc
// ---------------------------------------------------------------------

DbiLlc::DbiLlc(const LlcConfig &config, const DbiConfig &dbi_config,
               DramController &dram_ctrl, EventQueue &event_queue,
               bool enable_awb, bool enable_clb,
               std::shared_ptr<MissPredictor> predictor)
    : Llc(config, dram_ctrl, event_queue),
      index(dbi_config, store.numBlocks()), awb(enable_awb),
      clb(enable_clb), pred(std::move(predictor))
{
    fatal_if(clb && !pred, "CLB requires a miss predictor");
}

void
DbiLlc::registerStats(StatSet &set)
{
    Llc::registerStats(set);
    index.registerStats(set);
    set.add("llc.awbWritebacks", statAwbWritebacks);
    set.add("llc.dbiEvictionWbs", statDbiEvictionWbs);
}

void
DbiLlc::doWriteback(Addr block_addr, std::uint32_t core, Cycle when)
{
    Cycle start = occupyPort(when);
    Cycle tag_done = start + cfg.tagLatency;

    // 1) Insert/update the block in the cache (never via the tag store's
    //    dirty bit — the DBI is authoritative).
    if (!store.contains(block_addr)) {
        fillBlock(block_addr, core, false, tag_done);
    }

    // 2) Update the DBI. A DBI eviction writes back the victim entry's
    //    blocks (which remain cached, now clean).
    std::vector<Addr> drained = index.setDirty(block_addr);
    drainDbiEviction(drained, tag_done);
}

void
DbiLlc::drainDbiEviction(const std::vector<Addr> &blocks, Cycle when)
{
    Cycle cursor = when;
    Cycle last = when;
    for (Addr b : blocks) {
        panic_if(!store.contains(b),
                 "DBI invariant violated: dirty block %llx not cached",
                 static_cast<unsigned long long>(b));
        // One tag lookup per block to read its data for the writeback —
        // every lookup useful, unlike DAWB's speculative sweeps.
        Cycle start = occupyPort(cursor);
        ++statSweepLookups;
        cursor = start + 1;
        last = start + cfg.tagLatency;
        writebackToDram(b, last);
        ++statDbiEvictionWbs;
    }
    if constexpr (telemetry::kEnabled) {
        if (telem && !blocks.empty()) {
            telem->dbiEvictionDrain(when, last, blocks.size());
        }
    }
}

bool
DbiLlc::blockDirty(Addr block_addr) const
{
    return index.isDirty(block_addr);
}

void
DbiLlc::cleanBlock(Addr block_addr)
{
    index.clearDirty(block_addr);
}

Llc::RegionOpResult
DbiLlc::flushRegion(Addr base, std::uint64_t bytes, Cycle when)
{
    // One DBI query per granularity-sized region; tag lookups only for
    // the blocks that are actually dirty (their data must be read out).
    RegionOpResult res;
    std::uint64_t region_bytes =
        static_cast<std::uint64_t>(index.granularity()) * kBlockBytes;
    Addr start = base - base % region_bytes;
    Cycle cursor = when;
    for (Addr r = start; r < base + bytes; r += region_bytes) {
        ++res.lookups;  // the DBI access
        std::vector<Addr> dirty = index.dirtyBlocksInRegion(r);
        for (Addr b : dirty) {
            if (b < base || b >= base + bytes) {
                continue;  // outside the requested range
            }
            Cycle t = occupyPort(cursor);
            cursor = t + 1;
            ++res.lookups;
            res.anyDirty = true;
            ++res.writebacks;
            writebackToDram(b, t + cfg.tagLatency);
            index.clearDirty(b);
        }
    }
    endAuditOp();
    return res;
}

Llc::RegionOpResult
DbiLlc::queryRegionDirty(Addr base, std::uint64_t bytes)
{
    RegionOpResult res;
    std::uint64_t region_bytes =
        static_cast<std::uint64_t>(index.granularity()) * kBlockBytes;
    Addr start = base - base % region_bytes;
    for (Addr r = start; r < base + bytes; r += region_bytes) {
        ++res.lookups;  // one DBI access answers the whole region
        for (Addr b : index.dirtyBlocksInRegion(r)) {
            if (b >= base && b < base + bytes) {
                res.anyDirty = true;
            }
        }
    }
    return res;
}

void
DbiLlc::handleEviction(Addr block_addr, bool tag_dirty, Cycle when)
{
    panic_if(tag_dirty, "DBI cache must not use tag-store dirty bits");

    if (!index.isDirty(block_addr)) {
        return;  // clean eviction: nothing to write back
    }

    if constexpr (telemetry::kEnabled) {
        // Fig. 2 sample: the victim is still marked in the DBI here, so
        // the range count includes it (no +1 needed, unlike Baseline).
        if (telem && telem->histogramsEnabled()) {
            const DramAddrMap &map = dram.addrMap();
            telem->dirtyRowWriteback(
                index.countDirtyInRange(map.rowBase(block_addr),
                                        map.rowBytes()));
        }
    }

    // Dirty eviction: write the victim back...
    writebackToDram(block_addr, when);
    index.clearDirty(block_addr);

    if (!awb) {
        return;
    }

    // ...and, with AWB, every other dirty block of the same DBI row
    // (Section 3.1, Figure 3). The DBI lists them in one query; tag
    // lookups are spent only on blocks that are actually dirty.
    std::vector<Addr> row_dirty = index.dirtyBlocksInRegion(block_addr);
    Cycle cursor = when;
    Cycle last = when;
    std::uint64_t burst = 0;
    for (Addr b : row_dirty) {
        if (b == block_addr) {
            continue;
        }
        panic_if(!store.contains(b),
                 "DBI invariant violated: dirty block %llx not cached",
                 static_cast<unsigned long long>(b));
        Cycle start = occupyPort(cursor);
        ++statSweepLookups;
        cursor = start + 1;
        last = start + cfg.tagLatency;
        writebackToDram(b, last);
        ++statAwbWritebacks;
        ++burst;
        index.clearDirty(b);
    }
    if constexpr (telemetry::kEnabled) {
        if (telem && burst > 0) {
            telem->awbBurst(when, last, burst);
        }
    }
}

bool
DbiLlc::tryBypass(Addr block_addr, std::uint32_t core, Cycle when,
                  Callback &cb)
{
    if (!clb) {
        return false;
    }
    std::uint32_t set = store.setIndex(block_addr);
    if (!pred->predictMiss(set, core, when)) {
        return false;
    }

    // Check the (small, fast) DBI: a dirty block must take the normal
    // path; a clean predicted miss forwards straight to memory without
    // touching the tag store (Figure 4).
    ++statDbiChecks;
    Cycle checked = when + index.latency();
    if (index.isDirty(block_addr)) {
        if constexpr (telemetry::kEnabled) {
            if (telem) {
                telem->clbDecision(block_addr, checked, true);
            }
        }
        normalRead(block_addr, core, checked, std::move(cb));
        return true;
    }
    ++statBypasses;
    if constexpr (telemetry::kEnabled) {
        if (telem) {
            telem->clbDecision(block_addr, checked, false);
        }
        cb = wrapReadLatency(telemetry::ReadClass::Bypass, when,
                             std::move(cb));
    }
    dram.enqueueRead(block_addr, checked, std::move(cb));
    return true;
}

void
DbiLlc::recordLookupOutcome(Addr block_addr, std::uint32_t core, bool hit,
                            Cycle when)
{
    if (pred) {
        pred->recordOutcome(store.setIndex(block_addr), core, hit, when);
    }
}

void
DbiLlc::checkInvariants() const
{
    // Every DBI-dirty block must be resident, and the tag store must
    // carry no dirty bits.
    index.forEachDirtyBlock([this](Addr b) {
        panic_if(!store.contains(b),
                 "DBI-dirty block %llx not resident",
                 static_cast<unsigned long long>(b));
    });
    panic_if(store.countDirty() != 0,
             "tag store of a DBI cache has dirty bits set");
}

} // namespace dbsim
