/**
 * @file
 * The three policy axes the LLC is composed from (Table 2 decomposed):
 *
 *   DirtyStore      — where dirty-block metadata lives and how writeback
 *                     requests update it: in-tag dirty bits, a
 *                     write-through store (never dirty), or the
 *                     Dirty-Block Index.
 *   WritebackPolicy — what extra writebacks a dirty eviction triggers:
 *                     none (evict order), a DAWB full-row sweep, a VWQ
 *                     SSV-filtered sweep, or DBI aggressive writeback.
 *   LookupPolicy    — whether a demand read may bypass the tag lookup:
 *                     never, Skip-Cache predicted-miss bypass, or the
 *                     DBI cache lookup bypass (CLB).
 *
 * Each Table 2 mechanism is one tuple over these axes (see
 * sim/mechanism.hh for the preset registry); the cross-product the
 * paper's Section 3 argues for (e.g. DAWB sweeps over a DBI store, or
 * CLB beside a DAWB writeback policy) falls out for free.
 *
 * Policies are constructed unbound, handed to the Llc, and bound to it
 * once in Llc's constructor. They act on the cache exclusively through
 * Llc's public surface (occupyPort/fillBlock/writebackToDram/...), so
 * every port-arbitration, stat, audit, and telemetry side effect flows
 * through the same single points it always did.
 */

#ifndef DBSIM_LLC_POLICIES_HH
#define DBSIM_LLC_POLICIES_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "dbi/dbi.hh"
#include "pred/miss_predictor.hh"

namespace dbsim {

class Llc;

/** The three dirty-metadata organizations (DirtyStore::kind()). */
enum class DirtyStoreKind : std::uint8_t
{
    InTag,        ///< conventional: dirty bits in the tag store
    WriteThrough, ///< Skip Cache: no block is ever dirty
    Dbi,          ///< the Dirty-Block Index is authoritative
};

/**
 * Where dirty-block metadata lives. The store owns the semantics of a
 * writeback request from the private levels (writebackIn) and of the
 * dirty half of an eviction (victimDirty / onVictimWrittenBack); the
 * Llc core sequences them so all stores see identical call order.
 */
class DirtyStore
{
  public:
    virtual ~DirtyStore() = default;

    /** Bind to the owning cache (called once, from Llc's ctor). */
    virtual void bind(Llc &owner) { llc = &owner; }

    virtual DirtyStoreKind kind() const = 0;
    virtual const char *name() const = 0;

    /** Handle one (block-aligned) writeback request from an L2. */
    virtual void writebackIn(Addr block_addr, std::uint32_t core,
                             Cycle when) = 0;

    /**
     * Functional (zero-time) form of writebackIn() for fast-forward
     * warming: produces the same final tag/dirty state but arbitrates
     * no port, schedules no events, and moves no registered counters.
     */
    virtual void functionalWritebackIn(Addr block_addr,
                                       std::uint32_t core) = 0;

    /**
     * Is this block dirty? Authoritative query — a DBI-backed store
     * accounts it as a DBI lookup, exactly like the access path.
     */
    virtual bool isDirty(Addr block_addr) const = 0;

    /**
     * Same answer as isDirty() but guaranteed stat-free, for sweep
     * filters and passive observers.
     */
    virtual bool probeDirty(Addr block_addr) const = 0;

    /** Transition a resident block dirty -> clean (after writeback). */
    virtual void clean(Addr block_addr) = 0;

    /**
     * Must the displaced victim be written back? `tag_dirty` is the
     * dirty bit the tag store evicted with the entry; stores that keep
     * dirtiness elsewhere consult their own metadata (and may account
     * the query).
     */
    virtual bool victimDirty(Addr block_addr, bool tag_dirty) = 0;

    /**
     * The victim's data reached memory; drop any dirty metadata still
     * held for it. (The tag entry itself is already gone.)
     */
    virtual void onVictimWrittenBack(Addr block_addr) { (void)block_addr; }

    /**
     * Stat-free victimDirty() for functional evictions. The default
     * (trust the evicted tag bit) is right for in-tag and write-through
     * stores; the DBI store probes its index quietly.
     */
    virtual bool functionalVictimDirty(Addr block_addr, bool tag_dirty)
    {
        (void)block_addr;
        return tag_dirty;
    }

    /** Stat-free onVictimWrittenBack() for functional evictions. */
    virtual void functionalVictimWrittenBack(Addr block_addr)
    {
        (void)block_addr;
    }

    /**
     * Dirty blocks in the victim's DRAM row, as sampled for telemetry's
     * Fig. 2 histogram (stat-free; includes the victim itself).
     */
    virtual std::uint64_t dirtyInVictimRow(Addr block_addr) const = 0;

    /** The DBI, if this store is DBI-backed (else nullptr). */
    virtual Dbi *dbiIndex() { return nullptr; }
    virtual const Dbi *dbiIndex() const { return nullptr; }

    virtual void registerStats(StatSet &set) { (void)set; }

    /** Sanity checks on internal invariants (debug/test aid). */
    virtual void checkInvariants() const {}

  protected:
    Llc *llc = nullptr;
};

/** Conventional organization: dirty bits live in the tag store. */
class TagDirtyStore final : public DirtyStore
{
  public:
    DirtyStoreKind kind() const override { return DirtyStoreKind::InTag; }
    const char *name() const override { return "tag"; }
    void writebackIn(Addr block_addr, std::uint32_t core,
                     Cycle when) override;
    void functionalWritebackIn(Addr block_addr,
                               std::uint32_t core) override;
    bool isDirty(Addr block_addr) const override;
    bool probeDirty(Addr block_addr) const override;
    void clean(Addr block_addr) override;
    bool victimDirty(Addr block_addr, bool tag_dirty) override;
    std::uint64_t dirtyInVictimRow(Addr block_addr) const override;
};

/**
 * Skip Cache organization [44]: write-through, so no block is ever
 * dirty; writeback requests forward straight to memory, no allocate.
 */
class WriteThroughStore final : public DirtyStore
{
  public:
    DirtyStoreKind
    kind() const override
    {
        return DirtyStoreKind::WriteThrough;
    }
    const char *name() const override { return "wt"; }
    void writebackIn(Addr block_addr, std::uint32_t core,
                     Cycle when) override;
    void functionalWritebackIn(Addr block_addr,
                               std::uint32_t core) override;
    bool isDirty(Addr) const override { return false; }
    bool probeDirty(Addr) const override { return false; }
    void clean(Addr) override {}
    bool victimDirty(Addr, bool) override { return false; }
    std::uint64_t dirtyInVictimRow(Addr) const override { return 0; }
};

/**
 * The Dirty-Block Index organization (Sections 2 and 3): the tag store
 * carries no dirty bits; all dirtiness lives in the row-organized DBI.
 * DBI evictions write back a whole entry's dirty blocks together, which
 * is how even the plain DBI gets DRAM-aware writebacks "for free"
 * (Section 6.2).
 */
class DbiDirtyStore final : public DirtyStore
{
  public:
    explicit DbiDirtyStore(const DbiConfig &dbi_config);

    void bind(Llc &owner) override;

    DirtyStoreKind kind() const override { return DirtyStoreKind::Dbi; }
    const char *name() const override { return "dbi"; }
    void writebackIn(Addr block_addr, std::uint32_t core,
                     Cycle when) override;
    void functionalWritebackIn(Addr block_addr,
                               std::uint32_t core) override;
    bool isDirty(Addr block_addr) const override;
    bool probeDirty(Addr block_addr) const override;
    void clean(Addr block_addr) override;
    bool victimDirty(Addr block_addr, bool tag_dirty) override;
    void onVictimWrittenBack(Addr block_addr) override;
    bool functionalVictimDirty(Addr block_addr, bool tag_dirty) override;
    void functionalVictimWrittenBack(Addr block_addr) override;
    std::uint64_t dirtyInVictimRow(Addr block_addr) const override;
    Dbi *dbiIndex() override { return index.get(); }
    const Dbi *dbiIndex() const override { return index.get(); }
    void registerStats(StatSet &set) override;
    void checkInvariants() const override;

    Counter statAwbWritebacks;  ///< extra row writebacks from AWB
    Counter statDbiEvictionWbs; ///< writebacks from DBI evictions

  private:
    /** Write back the blocks a DBI eviction drained (they stay cached). */
    void drainDbiEviction(const std::vector<Addr> &blocks, Cycle when);

    DbiConfig cfg;
    std::unique_ptr<Dbi> index;  ///< built at bind() (needs numBlocks)
};

/**
 * What a dirty eviction triggers beyond the victim's own writeback.
 * afterDirtyEviction() runs after the victim has been written back and
 * its dirty metadata dropped.
 */
class WritebackPolicy
{
  public:
    virtual ~WritebackPolicy() = default;

    /** Bind to the owning cache (called once, from Llc's ctor). */
    virtual void bind(Llc &owner) { llc = &owner; }

    virtual const char *name() const = 0;

    /** A dirty victim at block_addr was just written back. */
    virtual void afterDirtyEviction(Addr block_addr, Cycle when) = 0;

    virtual void registerStats(StatSet &set) { (void)set; }

  protected:
    Llc *llc = nullptr;
};

/** Write back dirty blocks only as they are evicted (the baseline). */
class EvictOrderPolicy final : public WritebackPolicy
{
  public:
    const char *name() const override { return "evict-order"; }
    void afterDirtyEviction(Addr, Cycle) override {}
};

/**
 * DRAM-Aware Writeback [27]: sweep every other block of the victim's
 * DRAM row through the tag store (each a full tag lookup, dirty or not
 * — the source of DAWB's 1.95x lookup overhead) and write back those
 * found dirty, cleaning them in place.
 */
class DawbSweepPolicy final : public WritebackPolicy
{
  public:
    const char *name() const override { return "dawb"; }
    void afterDirtyEviction(Addr block_addr, Cycle when) override;
};

/**
 * Virtual Write Queue [51]: like DAWB, but a Set State Vector (SSV)
 * records whether each set holds a dirty block among its LRU ways; row
 * sweeps skip sets whose SSV bit is clear, and only write back dirty
 * blocks found in the LRU ways. Cheaper than DAWB per sweep but still
 * performs many unnecessary lookups (Section 3.1).
 */
class VwqSweepPolicy final : public WritebackPolicy
{
  public:
    explicit VwqSweepPolicy(std::uint32_t lru_ways = 4);

    void bind(Llc &owner) override;
    const char *name() const override { return "vwq"; }
    void afterDirtyEviction(Addr block_addr, Cycle when) override;

  private:
    /** Is a dirty block present among `set`'s LRU ways? */
    bool setFlagged(std::uint32_t set) const;

    /** Sets covered by one (coarse) SSV bit. */
    static constexpr std::uint32_t kSsvGroupSets = 4;

    std::uint32_t lruWays;
};

/**
 * DBI Aggressive Writeback (Section 3.1, Figure 3): on a dirty
 * eviction, write back every other dirty block of the same DBI row.
 * The DBI lists them in one query; tag lookups are spent only on
 * blocks that are actually dirty. Requires a DBI-backed DirtyStore.
 */
class DbiAwbPolicy final : public WritebackPolicy
{
  public:
    void bind(Llc &owner) override;
    const char *name() const override { return "awb"; }
    void afterDirtyEviction(Addr block_addr, Cycle when) override;

  private:
    DbiDirtyStore *store = nullptr;  ///< the bound cache's DBI store
};

/**
 * Whether a demand read may skip the tag lookup. tryBypass() returns
 * true if it fully handled the access; recordOutcome() feeds the miss
 * predictor from the normal lookup path.
 */
class LookupPolicy
{
  public:
    using Callback = std::function<void(Cycle)>;

    virtual ~LookupPolicy() = default;

    /** Bind to the owning cache (called once, from Llc's ctor). */
    virtual void bind(Llc &owner) { llc = &owner; }

    virtual const char *name() const = 0;

    /** Hook before the normal read path; true = fully handled. */
    virtual bool tryBypass(Addr block_addr, std::uint32_t core, Cycle when,
                           Callback &cb) = 0;

    /** Outcome feed for miss predictors. Default: none. */
    virtual void recordOutcome(Addr, std::uint32_t, bool, Cycle) {}

    virtual void registerStats(StatSet &set) { (void)set; }

  protected:
    Llc *llc = nullptr;
};

/** Every read performs the tag lookup (no predictor, no bypass). */
class AlwaysLookup final : public LookupPolicy
{
  public:
    const char *name() const override { return "always"; }
    bool tryBypass(Addr, std::uint32_t, Cycle, Callback &) override
    {
        return false;
    }
};

/**
 * Skip Cache bypass [44]: predicted-miss reads go straight to memory
 * without a tag lookup and do not allocate. Safe only over a
 * write-through store (no block is ever dirty).
 */
class SkipBypassLookup final : public LookupPolicy
{
  public:
    explicit SkipBypassLookup(std::shared_ptr<MissPredictor> predictor);

    void bind(Llc &owner) override;
    const char *name() const override { return "skip"; }
    bool tryBypass(Addr block_addr, std::uint32_t core, Cycle when,
                   Callback &cb) override;
    void recordOutcome(Addr block_addr, std::uint32_t core, bool hit,
                       Cycle when) override;

  private:
    std::shared_ptr<MissPredictor> pred;
};

/**
 * DBI Cache Lookup Bypass (Section 3.2, Figure 4): predicted-miss
 * reads check the small DBI instead of the tag store; clean predicted
 * misses forward straight to memory. Requires a DBI-backed DirtyStore.
 */
class ClbBypassLookup final : public LookupPolicy
{
  public:
    explicit ClbBypassLookup(std::shared_ptr<MissPredictor> predictor);

    void bind(Llc &owner) override;
    const char *name() const override { return "clb"; }
    bool tryBypass(Addr block_addr, std::uint32_t core, Cycle when,
                   Callback &cb) override;
    void recordOutcome(Addr block_addr, std::uint32_t core, bool hit,
                       Cycle when) override;

  private:
    Dbi *index = nullptr;  ///< the bound cache's DBI
    std::shared_ptr<MissPredictor> pred;
};

} // namespace dbsim

#endif // DBSIM_LLC_POLICIES_HH
