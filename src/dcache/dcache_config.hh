/**
 * @file
 * Die-stacked DRAM-cache configuration (the first interposed
 * BackingPort level). Defaults follow the Gemini-style organization:
 * page-granular set-mapped allocation with tags stored in the stacked
 * DRAM itself, plus a small SRAM row-granular dirty index (one
 * DBI-style entry per DRAM-cache page) driving batched dirty writeback
 * to backing DDR. `dirtyInTags` is the ablation the paper's argument
 * predicts against: a single dirty bit kept with the in-DRAM page tags,
 * which forces whole-page writeback on dirty eviction.
 */

#ifndef DBSIM_DCACHE_DCACHE_CONFIG_HH
#define DBSIM_DCACHE_DCACHE_CONFIG_HH

#include <cstdint>

namespace dbsim {

struct DCacheConfig
{
    /** Off by default: the machine is bit-identical to one without the
     *  level wired in at all. */
    bool enable = false;

    /** Machine-wide data capacity; System divides it across slices the
     *  same way LLC capacity is divided. */
    std::uint64_t sizeBytes = 64ull << 20;

    /** Allocation unit (a "page"): power of two, >= one block, and it
     *  must divide dram.rowBytes so a page never straddles the
     *  DRAM-row-granular slice/channel interleave (resolveTopology
     *  enforces this). */
    std::uint32_t pageBytes = 2048;

    /** Pages per set (set-mapped placement). */
    std::uint32_t assoc = 4;

    /**
     * Ablation switch. false (default): dirty blocks are tracked
     * exactly in the SRAM dirty index and written back in row-local
     * batches. true: only a per-page dirty bit lives with the in-DRAM
     * tags, so evicting a dirty page writes back every valid block.
     */
    bool dirtyInTags = false;

    /** SRAM dirty-index rows (entries) per slice; each entry tracks one
     *  page. Power of two, >= indexAssoc. Ignored when dirtyInTags. */
    std::uint32_t indexEntries = 2048;

    /** Dirty-index associativity (power of two). */
    std::uint32_t indexAssoc = 16;

    /** Stacked-DRAM tag probe latency in cycles (tags-in-DRAM: paid by
     *  every access before hit/miss is known). */
    std::uint32_t tagLatency = 12;

    /** Stacked-DRAM data access latency after a tag hit. */
    std::uint32_t dataLatency = 12;

    std::uint64_t seed = 23;
};

} // namespace dbsim

#endif // DBSIM_DCACHE_DCACHE_CONFIG_HH
