#include "dcache.hh"

#include "common/logging.hh"

namespace dbsim {

DramCache::DramCache(const DCacheConfig &config, BackingPort &below,
                     ShardContext context)
    : cfg(config), down(below), ctx(context), eq(context.queue())
{
    fatal_if(!isPowerOf2(cfg.pageBytes) || cfg.pageBytes < kBlockBytes,
             "dcache.pageBytes (%u) must be a power of two >= one block",
             cfg.pageBytes);
    fatal_if(cfg.pageBytes > 8192,
             "dcache.pageBytes (%u) exceeds the largest supported page "
             "(8192: one 128-block dirty vector)",
             cfg.pageBytes);
    blocksPer = cfg.pageBytes / kBlockBytes;
    fatal_if(cfg.assoc == 0 || !isPowerOf2(cfg.assoc),
             "dcache.assoc (%u) must be a power of two", cfg.assoc);
    const std::uint64_t page_cap =
        std::uint64_t(cfg.pageBytes) * cfg.assoc;
    fatal_if(cfg.sizeBytes < page_cap || cfg.sizeBytes % page_cap != 0,
             "dcache slice capacity %llu is not a multiple of one "
             "%u-page set",
             static_cast<unsigned long long>(cfg.sizeBytes), cfg.assoc);
    const std::uint64_t sets = cfg.sizeBytes / page_cap;
    fatal_if(!isPowerOf2(sets),
             "dcache set count %llu must be a power of two",
             static_cast<unsigned long long>(sets));
    nSets = static_cast<std::uint32_t>(sets);
    pages.resize(std::uint64_t(nSets) * cfg.assoc);
    for (Page &pg : pages) {
        pg.blocks = BitVec(blocksPer);
    }

    if (!cfg.dirtyInTags) {
        fatal_if(!isPowerOf2(cfg.indexEntries) ||
                 !isPowerOf2(cfg.indexAssoc) ||
                 cfg.indexEntries < cfg.indexAssoc,
                 "dcache.indexEntries (%u) and indexAssoc (%u) must be "
                 "powers of two with entries >= assoc",
                 cfg.indexEntries, cfg.indexAssoc);
        // One entry per page: region granularity = blocks per page, and
        // alpha = 1 over indexEntries * blocksPer "cache blocks" sizes
        // the structure to exactly indexEntries entries.
        DbiConfig ic;
        ic.alpha = 1.0;
        ic.granularity = blocksPer;
        ic.assoc = cfg.indexAssoc;
        ic.repl = DbiReplPolicy::Lrw;
        ic.latency = 0;  // SRAM index consulted in the tag-probe shadow
        ic.seed = cfg.seed + 17;
        index = std::make_unique<Dbi>(
            ic, std::uint64_t(cfg.indexEntries) * blocksPer);
    }
}

std::uint32_t
DramCache::setOf(std::uint64_t page_tag) const
{
    return static_cast<std::uint32_t>(page_tag % nSets);
}

std::uint32_t
DramCache::blockIndexOf(Addr block_addr) const
{
    return static_cast<std::uint32_t>((block_addr % cfg.pageBytes) >>
                                      kBlockShift);
}

DramCache::Page *
DramCache::findPage(std::uint64_t page_tag)
{
    Page *base = &pages[std::uint64_t(setOf(page_tag)) * cfg.assoc];
    for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == page_tag) {
            return &base[w];
        }
    }
    return nullptr;
}

const DramCache::Page *
DramCache::findPage(std::uint64_t page_tag) const
{
    return const_cast<DramCache *>(this)->findPage(page_tag);
}

bool
DramCache::pageIsDirty(const Page &pg) const
{
    if (!index) {
        return pg.dirty;
    }
    return index->countDirtyInRange(pg.tag * cfg.pageBytes,
                                    cfg.pageBytes) > 0;
}

void
DramCache::read(Addr block_addr, Cycle when, ReadCallback cb)
{
    ++statReads;
    const std::uint64_t tag = block_addr / cfg.pageBytes;
    const Cycle probed = when + cfg.tagLatency;
    Page *pg = findPage(tag);
    if (pg && pg->blocks.test(blockIndexOf(block_addr))) {
        ++statReadHits;
        pg->lastUse = useClock++;
        const Cycle done = probed + cfg.dataLatency;
        // Hit completions are events (never synchronous) so the caller
        // sees the same asynchronous contract DramController gives it.
        eq.schedule(done, [cb = std::move(cb), done] { cb(done); },
                    prof::Dram);
        endAuditOp();
        return;
    }
    // Miss: fetch the block from backing DDR, then install it. The
    // install happens in the read-completion callback — the same
    // fill-from-callback pattern the LLC uses — so any page eviction
    // its allocation triggers issues writes at the fill cycle.
    down.read(block_addr, probed,
              [this, block_addr, cb = std::move(cb)](Cycle done) {
                  Page &fill = allocPage(block_addr / cfg.pageBytes,
                                         done);
                  const std::uint32_t bi = blockIndexOf(block_addr);
                  if (!fill.blocks.test(bi)) {
                      // A write (or a second miss) that arrived while
                      // this fetch was in flight already installed the
                      // block; its data is newer, so the stale fill is
                      // squashed rather than clobbering it.
                      ++statFills;
                      fill.blocks.set(bi);
                      if (obs) {
                          obs->onFill(block_addr, done);
                      }
                  }
                  endAuditOp();
                  cb(done);
              });
}

void
DramCache::write(Addr block_addr, Cycle when)
{
    ++statWrites;
    const std::uint64_t tag = block_addr / cfg.pageBytes;
    const Cycle probed = when + cfg.tagLatency;
    Page *pg = findPage(tag);
    if (pg) {
        ++statWriteHits;
        pg->lastUse = useClock++;
    } else {
        // Write-allocate-no-fetch: the writeback carries a full block,
        // so the page is installed without touching backing DDR.
        pg = &allocPage(tag, probed);
    }
    pg->blocks.set(blockIndexOf(block_addr));
    if (obs) {
        obs->onWritebackIn(block_addr, probed);
    }
    markDirty(block_addr, probed);
    endAuditOp();
}

DramCache::Page &
DramCache::allocPage(std::uint64_t page_tag, Cycle when)
{
    Page *base = &pages[std::uint64_t(setOf(page_tag)) * cfg.assoc];
    for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == page_tag) {
            base[w].lastUse = useClock++;
            return base[w];
        }
    }
    Page *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim || base[w].lastUse < victim->lastUse) {
            victim = &base[w];
        }
    }
    if (victim->valid) {
        evictPage(*victim, when);
    }
    ++statPageAllocs;
    victim->valid = true;
    victim->tag = page_tag;
    victim->blocks.clear();
    victim->dirty = false;
    victim->lastUse = useClock++;
    return *victim;
}

void
DramCache::evictPage(Page &pg, Cycle when)
{
    ++statPageEvictions;
    const Addr base = pg.tag * cfg.pageBytes;
    if (index) {
        // Exact dirty set from the index; writebacks are row-local by
        // construction (a page never straddles a DDR row).
        std::vector<Addr> dirty = index->dirtyBlocksInRegion(base);
        if (!dirty.empty()) {
            ++statDirtyPageEvictions;
        }
        for (Addr a : dirty) {
            index->clearDirty(a);
            down.write(a, when);
            ++statDdrWrites;
            ++statEvictionWbs;
            if (obs) {
                obs->onBlockCleaned(a, when);
            }
        }
    } else if (pg.dirty) {
        // One dirty bit for the whole page: every valid block must be
        // treated as dirty and written back.
        ++statDirtyPageEvictions;
        pg.blocks.forEachSet([&](std::uint32_t idx) {
            const Addr a = base + static_cast<Addr>(idx) * kBlockBytes;
            down.write(a, when);
            ++statDdrWrites;
            ++statEvictionWbs;
            if (obs) {
                obs->onBlockCleaned(a, when);
            }
        });
    }
    if (obs) {
        obs->onPageEvict(base, when);
    }
    pg.valid = false;
    pg.dirty = false;
    pg.blocks.clear();
}

void
DramCache::markDirty(Addr block_addr, Cycle when)
{
    if (!index) {
        Page *pg = findPage(block_addr / cfg.pageBytes);
        pg->dirty = true;
        return;
    }
    // The index may displace another page's entry: its dirty blocks are
    // written back in one batch (they stay resident, now clean) — the
    // TicToc-style scheduled cleaning the decoupled index enables.
    std::vector<Addr> spilled = index->setDirty(block_addr);
    for (Addr a : spilled) {
        down.write(a, when);
        ++statDdrWrites;
        ++statIndexWbs;
        if (obs) {
            obs->onBlockCleaned(a, when);
        }
    }
}

void
DramCache::functionalAccess(Addr block_addr, bool is_write)
{
    const Cycle now = eq.now();
    const std::uint64_t tag = block_addr / cfg.pageBytes;
    Page *pg = findPage(tag);
    if (!pg) {
        // A read miss would fetch-and-install; a write allocates
        // without fetching. Either way the page ends up resident.
        pg = &functionalAllocPage(tag);
    }
    pg->lastUse = useClock++;
    const std::uint32_t bi = blockIndexOf(block_addr);
    if (is_write) {
        pg->blocks.set(bi);
        if (obs) {
            obs->onWritebackIn(block_addr, now);
        }
        functionalMarkDirty(block_addr);
    } else if (!pg->blocks.test(bi)) {
        pg->blocks.set(bi);
        if (obs) {
            obs->onFill(block_addr, now);
        }
    }
    endAuditOp();
}

DramCache::Page &
DramCache::functionalAllocPage(std::uint64_t page_tag)
{
    Page *base = &pages[std::uint64_t(setOf(page_tag)) * cfg.assoc];
    Page *victim = nullptr;
    for (std::uint32_t w = 0; w < cfg.assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim || base[w].lastUse < victim->lastUse) {
            victim = &base[w];
        }
    }
    if (victim->valid) {
        functionalEvictPage(*victim);
    }
    victim->valid = true;
    victim->tag = page_tag;
    victim->blocks.clear();
    victim->dirty = false;
    victim->lastUse = useClock++;
    return *victim;
}

void
DramCache::functionalEvictPage(Page &pg)
{
    const Cycle now = eq.now();
    const Addr base = pg.tag * cfg.pageBytes;
    if (index) {
        for (Addr a : index->dirtyBlocksInRegion(base)) {
            index->clearDirty(a, /*account=*/false);
            if (obs) {
                obs->onBlockCleaned(a, now);
            }
        }
    } else if (pg.dirty) {
        pg.blocks.forEachSet([&](std::uint32_t idx) {
            const Addr a = base + static_cast<Addr>(idx) * kBlockBytes;
            if (obs) {
                obs->onBlockCleaned(a, now);
            }
        });
    }
    if (obs) {
        obs->onPageEvict(base, now);
    }
    pg.valid = false;
    pg.dirty = false;
    pg.blocks.clear();
}

void
DramCache::functionalMarkDirty(Addr block_addr)
{
    if (!index) {
        Page *pg = findPage(block_addr / cfg.pageBytes);
        pg->dirty = true;
        return;
    }
    std::vector<Addr> spilled = index->setDirty(block_addr,
                                                /*account=*/false);
    for (Addr a : spilled) {
        if (obs) {
            obs->onBlockCleaned(a, eq.now());
        }
    }
}

bool
DramCache::probeResident(Addr block_addr) const
{
    const Page *pg = findPage(block_addr / cfg.pageBytes);
    return pg && pg->blocks.test(blockIndexOf(block_addr));
}

bool
DramCache::probeDirty(Addr block_addr) const
{
    if (index) {
        return index->probeDirty(block_addr);
    }
    const Page *pg = findPage(block_addr / cfg.pageBytes);
    return pg && pg->dirty && pg->blocks.test(blockIndexOf(block_addr));
}

std::uint64_t
DramCache::countValidBlocks() const
{
    std::uint64_t n = 0;
    for (const Page &pg : pages) {
        if (pg.valid) {
            n += pg.blocks.count();
        }
    }
    return n;
}

std::uint64_t
DramCache::countDirtyBlocks() const
{
    if (index) {
        return index->countDirtyBlocks();
    }
    std::uint64_t n = 0;
    for (const Page &pg : pages) {
        if (pg.valid && pg.dirty) {
            n += pg.blocks.count();
        }
    }
    return n;
}

void
DramCache::registerStats(StatSet &set)
{
    set.add("dcache.reads", statReads);
    set.add("dcache.readHits", statReadHits);
    set.add("dcache.writes", statWrites);
    set.add("dcache.writeHits", statWriteHits);
    set.add("dcache.fills", statFills);
    set.add("dcache.pageAllocs", statPageAllocs);
    set.add("dcache.pageEvictions", statPageEvictions);
    set.add("dcache.dirtyPageEvictions", statDirtyPageEvictions);
    set.add("dcache.ddrWrites", statDdrWrites);
    set.add("dcache.evictionWbs", statEvictionWbs);
    set.add("dcache.indexWbs", statIndexWbs);
    if (index) {
        set.add("dcache.index.evictions", index->statEvictions);
        set.add("dcache.index.evictionWbs", index->statEvictionWbs);
        set.add("dcache.index.inserts", index->statInserts);
        set.add("dcache.index.updates", index->statUpdates);
    }
}

} // namespace dbsim
