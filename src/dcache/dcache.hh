/**
 * @file
 * Die-stacked DRAM cache: the first interposed BackingPort level,
 * sitting between an LLC slice and its backing DDR (a DramController
 * directly, or a ShardMemRouter on partitioned machines).
 *
 * Organization (Gemini-style):
 *  - set-mapped, page-granular allocation with a per-page block-valid
 *    bitmask (blocks are fetched individually; a page fill does not
 *    fetch the whole page);
 *  - tags live in the stacked DRAM: every access pays `tagLatency`
 *    before hit/miss is known, then `dataLatency` on a hit;
 *  - writebacks from the LLC are write-allocate-no-fetch: the incoming
 *    block is a full line, so a missing page is installed without
 *    reading backing DDR.
 *
 * Dirty tracking comes in two flavors (the PR's ablation):
 *  - **dirty index** (default): a small SRAM structure with one
 *    DBI-style entry per page (region granularity = blocks per page).
 *    It is authoritative and exact — a block is dcache-dirty iff its
 *    bit is set. Index-entry evictions write the victim page's dirty
 *    blocks back in one batch; since a page never straddles a DDR row,
 *    the batch is row-local at the backing controller (TicToc-style
 *    scheduled cleaning).
 *  - **dirty-in-tags** (ablation): one dirty bit per page, stored with
 *    the in-DRAM tags. Evicting a dirty page must write back every
 *    valid block — the exact overfetch the decoupled index avoids.
 */

#ifndef DBSIM_DCACHE_DCACHE_HH
#define DBSIM_DCACHE_DCACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/bitvec.hh"
#include "common/event_queue.hh"
#include "common/shard.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dbi/dbi.hh"
#include "dcache/dcache_config.hh"
#include "mem/backing_port.hh"

namespace dbsim {

/**
 * Observer of the DRAM cache's dirty-state and residency transitions
 * (src/audit) — the second dirty level the shadow model tracks. The
 * contract mirrors LlcAuditObserver: notifications are synchronous,
 * passive (no timing or stat effect), and must not re-enter the cache.
 */
class DCacheObserver
{
  public:
    virtual ~DCacheObserver() = default;

    /** A block was fetched clean from backing DDR into the cache. */
    virtual void onFill(Addr block_addr, Cycle when) = 0;

    /** A writeback from the LLC landed: the block is resident+dirty. */
    virtual void onWritebackIn(Addr block_addr, Cycle when) = 0;

    /** A block's data was written to backing DDR (it becomes clean). */
    virtual void onBlockCleaned(Addr block_addr, Cycle when) = 0;

    /**
     * A page is being evicted at `when`. Fires after the eviction's
     * writebacks (onBlockCleaned) and before residency is dropped, so
     * the shadow must hold no dirty block inside the page.
     */
    virtual void onPageEvict(Addr page_base, Cycle when) = 0;

    /** One operation (read or write) finished settling state. */
    virtual void onOperationEnd() = 0;
};

/**
 * The DRAM cache. A BackingPort toward the LLC above; issues its own
 * misses and writebacks through the BackingPort below.
 */
class DramCache : public BackingPort
{
  public:
    /**
     * @param config per-slice parameters (sizeBytes already divided).
     * @param below the level this cache fills from and cleans into.
     *        The caller keeps ownership; it must outlive the cache.
     */
    DramCache(const DCacheConfig &config, BackingPort &below,
              ShardContext context);
    ~DramCache() override = default;

    // -- BackingPort (the LLC-facing side) ----------------------------

    void read(Addr block_addr, Cycle when, ReadCallback cb) override;
    void write(Addr block_addr, Cycle when) override;
    const DramAddrMap &addrMap() const override { return down.addrMap(); }

    /**
     * Functional-warming access (see BackingPort): mirrors the state
     * change of read()/write() — residency, dirty index, LRU — with no
     * events, no backing-DDR traffic, and no registered-counter
     * movement. The audit observer stays in the loop so the shadow
     * model tracks warmed state.
     */
    void functionalAccess(Addr block_addr, bool is_write) override;

    const DCacheConfig &config() const { return cfg; }
    std::uint32_t numSets() const { return nSets; }
    std::uint32_t blocksPerPage() const { return blocksPer; }

    /** The SRAM dirty index (nullptr in dirty-in-tags mode). */
    Dbi *dirtyIndex() { return index.get(); }
    const Dbi *dirtyIndex() const { return index.get(); }

    /** True when dirty tracking is exact (index mode). */
    bool dirtyExact() const { return !cfg.dirtyInTags; }

    /** Attach (or detach, with nullptr) the passive audit observer. */
    void attachObserver(DCacheObserver *observer) { obs = observer; }

    /** Register counters for snapshotting. */
    void registerStats(StatSet &set);

    // -- Stat-free probes for passive observers -----------------------

    /** Is the block resident (page present and block valid)? */
    bool probeResident(Addr block_addr) const;

    /**
     * Is the block dirty as far as the mechanism knows? Exact in index
     * mode; in tags mode this is the page dirty bit qualified by the
     * block's valid bit (the over-approximation the ablation measures).
     */
    bool probeDirty(Addr block_addr) const;

    /** Resident blocks across the cache. */
    std::uint64_t countValidBlocks() const;

    /** Blocks the mechanism would write back on a full flush. */
    std::uint64_t countDirtyBlocks() const;

    /** Invoke fn(page_base) for every page whose mechanism dirty state
     *  is set (tags mode) or that has any dirty block (index mode). */
    template <typename Fn>
    void
    forEachDirtyPage(Fn &&fn) const
    {
        for (const Page &pg : pages) {
            if (pg.valid && pageIsDirty(pg)) {
                fn(pg.tag * cfg.pageBytes);
            }
        }
    }

    /** Invoke fn(block_addr) for every block a full flush would write
     *  back (exact dirty set in index mode; all valid blocks of dirty
     *  pages in tags mode). */
    template <typename Fn>
    void
    forEachFlushBlock(Fn &&fn) const
    {
        if (index) {
            index->forEachDirtyBlock(fn);
            return;
        }
        for (const Page &pg : pages) {
            if (!pg.valid || !pg.dirty) {
                continue;
            }
            const Addr base = pg.tag * cfg.pageBytes;
            pg.blocks.forEachSet([&](std::uint32_t idx) {
                fn(base + static_cast<Addr>(idx) * kBlockBytes);
            });
        }
    }

    Counter statReads;          ///< reads from the LLC
    Counter statReadHits;
    Counter statWrites;         ///< writebacks from the LLC
    Counter statWriteHits;      ///< writebacks that found their page
    Counter statFills;          ///< blocks fetched from backing DDR
    Counter statPageAllocs;
    Counter statPageEvictions;
    Counter statDirtyPageEvictions;
    Counter statDdrWrites;      ///< blocks written to backing DDR
    Counter statEvictionWbs;    ///< DDR writes caused by page evictions
    Counter statIndexWbs;       ///< DDR writes caused by index evictions

  private:
    struct Page
    {
        bool valid = false;
        std::uint64_t tag = 0;      ///< page number (addr / pageBytes)
        BitVec blocks{128};         ///< per-block valid bits
        bool dirty = false;         ///< tags-mode page dirty bit
        std::uint64_t lastUse = 0;  ///< LRU timestamp
    };

    std::uint32_t setOf(std::uint64_t page_tag) const;
    Page *findPage(std::uint64_t page_tag);
    const Page *findPage(std::uint64_t page_tag) const;
    std::uint32_t blockIndexOf(Addr block_addr) const;

    bool pageIsDirty(const Page &pg) const;

    /**
     * Ensure `page_tag`'s page is present, evicting the set's LRU page
     * if allocation is needed. Returns the page (touched for LRU).
     */
    Page &allocPage(std::uint64_t page_tag, Cycle when);

    /** Write back what the eviction requires and drop the page. */
    void evictPage(Page &pg, Cycle when);

    /** Record a block dirty; index evictions batch-clean here. */
    void markDirty(Addr block_addr, Cycle when);

    // Quiet twins of allocPage/evictPage/markDirty for the functional
    // path: same state transitions, no stats, no DDR writes.
    Page &functionalAllocPage(std::uint64_t page_tag);
    void functionalEvictPage(Page &pg);
    void functionalMarkDirty(Addr block_addr);

    void
    endAuditOp()
    {
        if (obs) {
            obs->onOperationEnd();
        }
    }

    DCacheConfig cfg;
    BackingPort &down;
    ShardContext ctx;
    EventQueue &eq;

    std::uint32_t blocksPer;
    std::uint32_t nSets;
    std::vector<Page> pages;         ///< nSets * assoc, set-major
    std::unique_ptr<Dbi> index;      ///< nullptr in tags mode
    std::uint64_t useClock = 1;
    DCacheObserver *obs = nullptr;
};

} // namespace dbsim

#endif // DBSIM_DCACHE_DCACHE_HH
