#include "miss_predictor.hh"

#include "common/logging.hh"

namespace dbsim {

SkipPredictor::SkipPredictor(const SkipPredictorConfig &config) : cfg(config)
{
    fatal_if(cfg.numThreads == 0, "need at least one thread");
    fatal_if(cfg.epochCycles == 0, "epoch length must be non-zero");
    sampleAccesses.assign(cfg.numThreads, 0);
    sampleMisses.assign(cfg.numThreads, 0);
    bypassNext.assign(cfg.numThreads, false);
}

bool
SkipPredictor::isSampledSet(std::uint32_t set) const
{
    return set % cfg.sampleInterval == 0;
}

void
SkipPredictor::maybeRollEpoch(Cycle now)
{
    std::uint64_t epoch = now / cfg.epochCycles;
    if (epoch == curEpoch) {
        return;
    }
    // Close out the epoch: decide next-epoch bypass per thread from the
    // sampled miss rate, then reset the sample counters.
    for (std::uint32_t t = 0; t < cfg.numThreads; ++t) {
        if (sampleAccesses[t] >= 16) {
            double rate = static_cast<double>(sampleMisses[t]) /
                          static_cast<double>(sampleAccesses[t]);
            bypassNext[t] = rate > cfg.missThreshold;
        } else {
            bypassNext[t] = false;  // not enough evidence
        }
        sampleAccesses[t] = 0;
        sampleMisses[t] = 0;
    }
    curEpoch = epoch;
    ++statEpochs;
}

bool
SkipPredictor::predictMiss(std::uint32_t set, std::uint32_t thread,
                           Cycle now)
{
    maybeRollEpoch(now);
    if (thread >= cfg.numThreads) {
        thread = 0;
    }
    if (isSampledSet(set)) {
        return false;  // sampled sets always take the normal path
    }
    if (bypassNext[thread]) {
        ++statPredictedMiss;
        return true;
    }
    return false;
}

void
SkipPredictor::recordOutcome(std::uint32_t set, std::uint32_t thread,
                             bool hit, Cycle now)
{
    maybeRollEpoch(now);
    if (thread >= cfg.numThreads) {
        thread = 0;
    }
    if (!isSampledSet(set)) {
        return;
    }
    ++sampleAccesses[thread];
    if (!hit) {
        ++sampleMisses[thread];
    }
}

bool
SkipPredictor::bypassing(std::uint32_t thread) const
{
    if (thread >= cfg.numThreads) {
        thread = 0;
    }
    return bypassNext[thread];
}

} // namespace dbsim
