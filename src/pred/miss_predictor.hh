/**
 * @file
 * Cache miss predictors for the lookup-bypass optimization (Section 3.2).
 * CLB works with any predictor; we implement the one the paper evaluates,
 * the Skip Cache predictor [44]: execution is divided into epochs, the
 * per-thread LLC miss rate is monitored on a small sample of sets, and if
 * a thread's miss rate exceeds a threshold, all of its accesses in the
 * next epoch (except those to sampled sets) are predicted to miss.
 */

#ifndef DBSIM_PRED_MISS_PREDICTOR_HH
#define DBSIM_PRED_MISS_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace dbsim {

/** Abstract miss predictor. */
class MissPredictor
{
  public:
    virtual ~MissPredictor() = default;

    /** Should this read access be predicted to miss? */
    virtual bool predictMiss(std::uint32_t set, std::uint32_t thread,
                             Cycle now) = 0;

    /** Feed the outcome of a performed lookup (hit/miss). */
    virtual void recordOutcome(std::uint32_t set, std::uint32_t thread,
                               bool hit, Cycle now) = 0;

    /** Sampled sets must always be looked up normally. */
    virtual bool isSampledSet(std::uint32_t set) const = 0;
};

/** Never predicts a miss: disables bypassing. */
class NeverMissPredictor : public MissPredictor
{
  public:
    bool
    predictMiss(std::uint32_t, std::uint32_t, Cycle) override
    {
        return false;
    }
    void recordOutcome(std::uint32_t, std::uint32_t, bool, Cycle) override
    {}
    bool isSampledSet(std::uint32_t) const override { return false; }
};

/** Configuration of the Skip Cache epoch predictor. */
struct SkipPredictorConfig
{
    double missThreshold = 0.95;        ///< paper's threshold
    Cycle epochCycles = 5'000'000;      ///< scaled from 50M (Table 2)
    std::uint32_t sampleInterval = 64;  ///< 1-in-N sets are sampled
    std::uint32_t numThreads = 1;
};

/**
 * The Skip Cache miss predictor: epoch-based, per-thread, set-sampled.
 */
class SkipPredictor : public MissPredictor
{
  public:
    explicit SkipPredictor(const SkipPredictorConfig &config);

    bool predictMiss(std::uint32_t set, std::uint32_t thread,
                     Cycle now) override;
    void recordOutcome(std::uint32_t set, std::uint32_t thread, bool hit,
                       Cycle now) override;
    bool isSampledSet(std::uint32_t set) const override;

    /** Is the thread in bypass mode for the current epoch? */
    bool bypassing(std::uint32_t thread) const;

    Counter statPredictedMiss;
    Counter statEpochs;

  private:
    /** Roll epochs forward if `now` has passed the boundary. */
    void maybeRollEpoch(Cycle now);

    SkipPredictorConfig cfg;
    std::uint64_t curEpoch = 0;
    std::vector<std::uint64_t> sampleAccesses;
    std::vector<std::uint64_t> sampleMisses;
    std::vector<bool> bypassNext;
};

} // namespace dbsim

#endif // DBSIM_PRED_MISS_PREDICTOR_HH
