/**
 * @file
 * Generic set-associative tag store with pluggable replacement and
 * insertion policies: LRU, TA-DIP (thread-aware dynamic insertion with
 * set dueling and bimodal insertion), DRRIP (SRRIP/BRRIP dueling), and
 * Random. Used for the private L1/L2 caches (LRU) and the shared LLC
 * (TA-DIP or DRRIP per Table 2 / Section 6.5).
 *
 * The tag store carries a per-entry dirty bit for conventional
 * organizations. DBI organizations never set it — the DBI is the
 * authoritative source of dirtiness (asserted by the LLC variants).
 */

#ifndef DBSIM_CACHE_TAG_STORE_HH
#define DBSIM_CACHE_TAG_STORE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace dbsim {

/** Replacement/insertion policy of a tag store. */
enum class ReplPolicy : std::uint8_t
{
    Lru,     ///< least-recently-used
    TaDip,   ///< thread-aware dynamic insertion policy [18, 42]
    Drrip,   ///< dynamic re-reference interval prediction [19]
    Random,  ///< random victim
};

/** Tag store geometry and policy. */
struct CacheGeometry
{
    std::uint64_t sizeBytes = 2ull << 20;
    std::uint32_t assoc = 16;
    ReplPolicy repl = ReplPolicy::Lru;
    std::uint32_t numThreads = 1;  ///< for TA-DIP per-thread selectors
    std::uint64_t seed = 1;        ///< for BIP/BRRIP/Random draws
};

/**
 * Set-associative tag store. Data contents are not stored — dbsim is a
 * timing simulator — but the full state needed for replacement and
 * dirtiness decisions is.
 */
class TagStore
{
  public:
    /** One tag entry. */
    struct Entry
    {
        Addr block = kInvalidAddr;  ///< aligned block address
        bool valid = false;
        bool dirty = false;
        std::uint8_t owner = 0;     ///< inserting thread
        std::uint64_t lastTouch = 0;
        std::uint8_t rrpv = 0;      ///< DRRIP re-reference value
    };

    /** Result of an insertion: the displaced entry, if any. */
    struct Eviction
    {
        bool valid = false;  ///< an entry was displaced
        Addr block = kInvalidAddr;
        bool dirty = false;
    };

    explicit TagStore(const CacheGeometry &geometry);

    std::uint32_t numSets() const { return nSets; }
    std::uint32_t assoc() const { return geo.assoc; }
    std::uint64_t numBlocks() const
    {
        return static_cast<std::uint64_t>(nSets) * geo.assoc;
    }

    /** Set index of a block address. */
    std::uint32_t setIndex(Addr block_addr) const;

    /** True if the block is present (no replacement-state update). */
    bool contains(Addr block_addr) const;

    /** Pointer to the entry holding block_addr, or nullptr. */
    Entry *find(Addr block_addr);
    const Entry *find(Addr block_addr) const;

    /** Promote on hit (updates LRU / RRPV state). */
    void touch(Addr block_addr, std::uint32_t thread);

    /**
     * Promote an entry already located via find() — same effect as
     * touch() without re-scanning the set. @pre e is valid and was
     * returned by find() on this store.
     */
    void touchEntry(Entry &e);

    /**
     * Insert a block, selecting and displacing a victim if the set is
     * full. Updates set-dueling state on this miss.
     * @param dirty initial dirty state of the inserted block.
     * @return the displaced entry (valid=false if a free way was used).
     */
    Eviction insert(Addr block_addr, std::uint32_t thread, bool dirty);

    /** Remove a block if present. */
    void invalidate(Addr block_addr);

    /** Set/clear the entry's dirty bit. @pre block present. */
    void markDirty(Addr block_addr);
    void markClean(Addr block_addr);

    /**
     * Set the dirty bit of an entry located via find(), keeping the
     * store's dirty count coherent. All dirty-bit writes outside the
     * store must go through this (a raw `e->dirty = x` would desync
     * countDirty()). @pre e was returned by find() on this store.
     */
    void setEntryDirty(Entry &e, bool dirty)
    {
        nDirty += static_cast<std::uint64_t>(dirty);
        nDirty -= static_cast<std::uint64_t>(e.dirty);
        e.dirty = dirty;
    }

    /** Dirty bit of a resident block. @pre block present. */
    bool isDirty(Addr block_addr) const;

    /**
     * LRU recency rank of the entry holding block_addr within its set:
     * 0 = LRU-most. Used by the VWQ Set State Vector.
     */
    std::uint32_t lruRank(Addr block_addr) const;

    /** True if any entry within the `ways` LRU-most ways is dirty. */
    bool anyDirtyInLruWays(std::uint32_t set, std::uint32_t ways) const;

    /** Read-only access to one way of one set (for sweeps and tests). */
    const Entry &entryAt(std::uint32_t set, std::uint32_t way) const
    {
        return at(set, way);
    }

    /**
     * Count of valid dirty entries. O(1): maintained incrementally at
     * every dirty-bit transition (the auditor cross-checks it against
     * the authoritative per-entry bits every audit interval).
     */
    std::uint64_t countDirty() const { return nDirty; }

    /** Policy actually used for the last insertion (for tests). */
    bool lastInsertUsedBimodal() const { return lastBimodal; }

    Counter statHits;
    Counter statMisses;
    Counter statInsertions;
    Counter statEvictions;

  private:
    /** Entries of one set start at set * assoc. */
    Entry &at(std::uint32_t set, std::uint32_t way);
    const Entry &at(std::uint32_t set, std::uint32_t way) const;

    /** Victim way in a full set, per the replacement policy. */
    std::uint32_t victimWay(std::uint32_t set);

    /** DIP/DRRIP set-dueling: kind of leader this set is for `thread`. */
    enum class LeaderKind { None, Primary, Bimodal };
    LeaderKind leaderKind(std::uint32_t set, std::uint32_t thread) const;

    /** Should this thread's insertion use the bimodal variant? */
    bool useBimodal(std::uint32_t set, std::uint32_t thread);

    CacheGeometry geo;
    std::uint32_t nSets;
    std::vector<Entry> entries;

    /**
     * Structure-of-arrays mirrors of the per-entry fields the hot paths
     * scan: `tags[i]` is entries[i].block for valid entries and
     * kInvalidAddr otherwise (so find() is one branchless compare per
     * way over a dense array instead of striding 32-byte Entry structs),
     * and `touches[i]` mirrors entries[i].lastTouch for the LRU victim
     * scan. entries[] stays authoritative; these are write-through.
     */
    std::vector<Addr> tags;
    std::vector<std::uint64_t> touches;

    std::uint64_t touchClock = 1;
    std::uint64_t nDirty = 0;  ///< valid entries with dirty == true
    Rng rng;

    /** Per-thread 10-bit policy selectors (TA-DIP / DRRIP dueling). */
    std::vector<std::uint32_t> psel;
    static constexpr std::uint32_t kPselMax = 1023;
    static constexpr std::uint32_t kPselInit = 512;

    /** BIP/BRRIP bimodal probability: 1/64 and 1/32 respectively. */
    static constexpr double kBipEpsilon = 1.0 / 64.0;
    static constexpr double kBrripEpsilon = 1.0 / 32.0;

    static constexpr std::uint8_t kRrpvMax = 3;  ///< 2-bit RRPV

    bool lastBimodal = false;
};

} // namespace dbsim

#endif // DBSIM_CACHE_TAG_STORE_HH
