#include "tag_store.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dbsim {

TagStore::TagStore(const CacheGeometry &geometry)
    : geo(geometry), rng(geometry.seed)
{
    fatal_if(geo.sizeBytes % (static_cast<std::uint64_t>(geo.assoc) *
                              kBlockBytes) != 0,
             "cache size not divisible by assoc * block size");
    std::uint64_t sets =
        geo.sizeBytes / (static_cast<std::uint64_t>(geo.assoc) *
                         kBlockBytes);
    fatal_if(!isPowerOf2(sets), "set count must be a power of two");
    nSets = static_cast<std::uint32_t>(sets);
    entries.resize(static_cast<std::size_t>(nSets) * geo.assoc);
    tags.assign(entries.size(), kInvalidAddr);
    touches.assign(entries.size(), 0);
    fatal_if(geo.numThreads == 0, "need at least one thread");
    psel.assign(geo.numThreads, kPselInit);
}

std::uint32_t
TagStore::setIndex(Addr block_addr) const
{
    return static_cast<std::uint32_t>(blockNumber(block_addr) &
                                      (nSets - 1));
}

TagStore::Entry &
TagStore::at(std::uint32_t set, std::uint32_t way)
{
    return entries[static_cast<std::size_t>(set) * geo.assoc + way];
}

const TagStore::Entry &
TagStore::at(std::uint32_t set, std::uint32_t way) const
{
    return entries[static_cast<std::size_t>(set) * geo.assoc + way];
}

bool
TagStore::contains(Addr block_addr) const
{
    return find(block_addr) != nullptr;
}

TagStore::Entry *
TagStore::find(Addr block_addr)
{
    Addr a = blockAlign(block_addr);
    std::size_t base =
        static_cast<std::size_t>(setIndex(a)) * geo.assoc;
    const Addr *set_tags = tags.data() + base;
    for (std::uint32_t w = 0; w < geo.assoc; ++w) {
        if (set_tags[w] == a) {
            return &entries[base + w];
        }
    }
    return nullptr;
}

const TagStore::Entry *
TagStore::find(Addr block_addr) const
{
    return const_cast<TagStore *>(this)->find(block_addr);
}

void
TagStore::touch(Addr block_addr, std::uint32_t thread)
{
    (void)thread;
    Entry *e = find(block_addr);
    panic_if(!e, "touch of absent block");
    touchEntry(*e);
}

void
TagStore::touchEntry(Entry &e)
{
    e.lastTouch = touchClock++;
    e.rrpv = 0;  // near-immediate re-reference on hit (RRIP hit promotion)
    touches[static_cast<std::size_t>(&e - entries.data())] = e.lastTouch;
    ++statHits;
}

TagStore::LeaderKind
TagStore::leaderKind(std::uint32_t set, std::uint32_t thread) const
{
    if (geo.repl != ReplPolicy::TaDip && geo.repl != ReplPolicy::Drrip) {
        return LeaderKind::None;
    }
    // Constituency-based leader selection: 32 primary-policy leader sets
    // and 32 bimodal leader sets per thread, spread across the cache.
    std::uint32_t slot = set & 63;  // 64 leader slots per 64-set region
    if (slot == 2 * thread) {
        return LeaderKind::Primary;
    }
    if (slot == 2 * thread + 1) {
        return LeaderKind::Bimodal;
    }
    return LeaderKind::None;
}

bool
TagStore::useBimodal(std::uint32_t set, std::uint32_t thread)
{
    if (thread >= psel.size()) {
        thread = 0;
    }
    switch (leaderKind(set, thread)) {
      case LeaderKind::Primary:
        // A miss in a primary-policy leader set votes against it.
        if (psel[thread] < kPselMax) {
            ++psel[thread];
        }
        return false;
      case LeaderKind::Bimodal:
        if (psel[thread] > 0) {
            --psel[thread];
        }
        return true;
      case LeaderKind::None:
        break;
    }
    return psel[thread] >= kPselInit;
}

std::uint32_t
TagStore::victimWay(std::uint32_t set)
{
    switch (geo.repl) {
      case ReplPolicy::Random:
        return static_cast<std::uint32_t>(rng.below(geo.assoc));
      case ReplPolicy::Drrip: {
        // Find an RRPV==max entry, aging the set until one appears.
        for (;;) {
            for (std::uint32_t w = 0; w < geo.assoc; ++w) {
                if (at(set, w).rrpv >= kRrpvMax) {
                    return w;
                }
            }
            for (std::uint32_t w = 0; w < geo.assoc; ++w) {
                ++at(set, w).rrpv;
            }
        }
      }
      case ReplPolicy::Lru:
      case ReplPolicy::TaDip:
      default: {
        // First-minimum in way order over the dense touch mirror (the
        // tie-break matters: BIP inserts park at lastTouch == 0).
        const std::uint64_t *set_touches =
            touches.data() + static_cast<std::size_t>(set) * geo.assoc;
        std::uint32_t victim = 0;
        std::uint64_t oldest = kCycleMax;
        for (std::uint32_t w = 0; w < geo.assoc; ++w) {
            if (set_touches[w] < oldest) {
                oldest = set_touches[w];
                victim = w;
            }
        }
        return victim;
      }
    }
}

TagStore::Eviction
TagStore::insert(Addr block_addr, std::uint32_t thread, bool dirty)
{
    Addr a = blockAlign(block_addr);
    panic_if(contains(a), "insert of resident block %llx",
             static_cast<unsigned long long>(a));
    ++statMisses;
    ++statInsertions;

    std::uint32_t set = setIndex(a);
    std::uint32_t way = geo.assoc;
    for (std::uint32_t w = 0; w < geo.assoc; ++w) {
        if (!at(set, w).valid) {
            way = w;
            break;
        }
    }

    Eviction ev;
    if (way == geo.assoc) {
        way = victimWay(set);
        Entry &v = at(set, way);
        ev.valid = true;
        ev.block = v.block;
        ev.dirty = v.dirty;
        ++statEvictions;
    }

    Entry &e = at(set, way);
    nDirty -= static_cast<std::uint64_t>(e.dirty);
    nDirty += static_cast<std::uint64_t>(dirty);
    e.block = a;
    e.valid = true;
    e.dirty = dirty;
    e.owner = static_cast<std::uint8_t>(thread);

    bool bimodal = useBimodal(set, thread);
    lastBimodal = false;
    switch (geo.repl) {
      case ReplPolicy::TaDip:
        if (bimodal && !rng.chance(kBipEpsilon)) {
            // BIP: insert at LRU position (touch time 0 = oldest).
            e.lastTouch = 0;
            lastBimodal = true;
        } else {
            e.lastTouch = touchClock++;
        }
        e.rrpv = kRrpvMax - 1;
        break;
      case ReplPolicy::Drrip:
        if (bimodal && !rng.chance(kBrripEpsilon)) {
            e.rrpv = kRrpvMax;  // BRRIP: distant re-reference
            lastBimodal = true;
        } else {
            e.rrpv = kRrpvMax - 1;  // SRRIP: long re-reference
        }
        e.lastTouch = touchClock++;
        break;
      case ReplPolicy::Lru:
      case ReplPolicy::Random:
      default:
        e.lastTouch = touchClock++;
        e.rrpv = kRrpvMax - 1;
        break;
    }
    std::size_t idx = static_cast<std::size_t>(set) * geo.assoc + way;
    tags[idx] = a;
    touches[idx] = e.lastTouch;
    return ev;
}

void
TagStore::invalidate(Addr block_addr)
{
    Entry *e = find(block_addr);
    if (e) {
        nDirty -= static_cast<std::uint64_t>(e->dirty);
        e->valid = false;
        e->block = kInvalidAddr;
        e->dirty = false;
        std::size_t idx = static_cast<std::size_t>(e - entries.data());
        tags[idx] = kInvalidAddr;
        touches[idx] = e->lastTouch;
    }
}

void
TagStore::markDirty(Addr block_addr)
{
    Entry *e = find(block_addr);
    panic_if(!e, "markDirty of absent block");
    setEntryDirty(*e, true);
}

void
TagStore::markClean(Addr block_addr)
{
    Entry *e = find(block_addr);
    panic_if(!e, "markClean of absent block");
    setEntryDirty(*e, false);
}

bool
TagStore::isDirty(Addr block_addr) const
{
    const Entry *e = find(block_addr);
    panic_if(!e, "isDirty of absent block");
    return e->dirty;
}

std::uint32_t
TagStore::lruRank(Addr block_addr) const
{
    const Entry *e = find(block_addr);
    panic_if(!e, "lruRank of absent block");
    std::uint32_t set = setIndex(blockAlign(block_addr));
    std::uint32_t rank = 0;
    for (std::uint32_t w = 0; w < geo.assoc; ++w) {
        const Entry &o = at(set, w);
        if (o.valid && &o != e && o.lastTouch < e->lastTouch) {
            ++rank;
        }
    }
    return rank;
}

bool
TagStore::anyDirtyInLruWays(std::uint32_t set, std::uint32_t ways) const
{
    // Collect touch times of valid entries and find the cutoff for the
    // `ways` least-recently-used ones.
    std::vector<std::uint64_t> touches;
    touches.reserve(geo.assoc);
    for (std::uint32_t w = 0; w < geo.assoc; ++w) {
        if (at(set, w).valid) {
            touches.push_back(at(set, w).lastTouch);
        }
    }
    if (touches.empty()) {
        return false;
    }
    std::uint32_t n = std::min<std::uint32_t>(
        ways, static_cast<std::uint32_t>(touches.size()));
    std::nth_element(touches.begin(), touches.begin() + (n - 1),
                     touches.end());
    std::uint64_t cutoff = touches[n - 1];
    for (std::uint32_t w = 0; w < geo.assoc; ++w) {
        const Entry &e = at(set, w);
        if (e.valid && e.dirty && e.lastTouch <= cutoff) {
            return true;
        }
    }
    return false;
}

} // namespace dbsim
