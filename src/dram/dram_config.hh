/**
 * @file
 * DDR3 configuration (Table 1: DDR3-1066, 1 channel, 1 rank, 8 banks,
 * 8KB row buffer, 64-entry write buffer with drain-when-full, FR-FCFS).
 * Timing parameters are expressed in memory-bus clocks; tCkCpu converts
 * to CPU cycles (2.67 GHz core, 533 MHz DDR3-1066 bus clock -> 5 CPU
 * cycles per memory clock).
 */

#ifndef DBSIM_DRAM_DRAM_CONFIG_HH
#define DBSIM_DRAM_DRAM_CONFIG_HH

#include <cstdint>

namespace dbsim {

struct DramConfig
{
    std::uint32_t numBanks = 8;
    std::uint64_t rowBytes = 8192;

    /**
     * Independent DRAM channels rows interleave over. Each channel is
     * one DramController instance; this field tells every controller
     * the machine-wide interleave so bank/row decoding stays correct.
     * 0 = derive at the System level (Table-1 style: one channel per
     * LLC slice); a standalone controller treats 0 as 1.
     */
    std::uint32_t channels = 0;

    /** CPU cycles per memory clock. */
    std::uint32_t tCkCpu = 5;

    // Timing in memory clocks (DDR3-1066: 7-7-7-20).
    std::uint32_t tCas = 7;    ///< column access (CL)
    std::uint32_t tRcd = 7;    ///< activate to column command
    std::uint32_t tRp = 7;     ///< precharge
    std::uint32_t tRas = 20;   ///< activate to precharge (minimum)
    std::uint32_t tWr = 8;     ///< write recovery
    std::uint32_t tBurst = 4;  ///< BL8 on a DDR bus = 4 clocks
    std::uint32_t tRtw = 2;    ///< read-to-write turnaround
    std::uint32_t tWtr = 4;    ///< write-to-read turnaround
    /**
     * Activate throttling. tFAW bounds activation power; with 8KB rows
     * (4-8x the charge of standard 1-2KB pages) a controller must
     * enforce a proportionally longer window, so these are set well
     * above the small-page DDR3-1066 datasheet values.
     */
    std::uint32_t tRrd = 6;    ///< activate-to-activate (different banks)
    std::uint32_t tFaw = 48;   ///< four-activate window

    /** Controller + IO + interconnect overhead (CPU cycles). */
    std::uint32_t ioLatency = 20;

    /** Write buffer capacity; reaching it triggers a drain. */
    std::uint32_t writeBufEntries = 64;

    /** Drain until this many writes remain ("drain when full" policy). */
    std::uint32_t drainLowWatermark = 0;

    /**
     * Service buffered writes opportunistically when no reads wait.
     * The paper's controller (Table 1, [27]) does not: writes wait for
     * a full-buffer drain, which is what makes write row locality
     * matter. Off by default to match.
     */
    bool writeWhenIdle = false;

    // Energy model (pJ per operation; DDR3 ballpark figures).
    double eActivatePj = 2200.0;   ///< activate + precharge pair
    double eReadPj = 1400.0;       ///< read burst incl. IO
    double eWritePj = 1500.0;      ///< write burst incl. IO
    double backgroundMw = 120.0;   ///< standby/refresh power
};

} // namespace dbsim

#endif // DBSIM_DRAM_DRAM_CONFIG_HH
