/**
 * @file
 * Event-driven DDR3 memory controller: open-row policy, row-interleaved
 * address mapping, FR-FCFS read scheduling, and a drain-when-full write
 * buffer. This is the substrate whose row-buffer behaviour the DBI's
 * aggressive writeback optimization exploits: writes that drain to the
 * same open row cost one burst each, while scattered writes pay a full
 * precharge+activate per block.
 */

#ifndef DBSIM_DRAM_DRAM_CONTROLLER_HH
#define DBSIM_DRAM_DRAM_CONTROLLER_HH

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/addr_map.hh"
#include "common/event_queue.hh"
#include "common/shard.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/dram_config.hh"
#include "mem/backing_port.hh"

namespace dbsim {

/** Aggregate energy figures derived from the controller's counters. */
struct DramEnergy
{
    double activatePj = 0.0;
    double readPj = 0.0;
    double writePj = 0.0;
    double backgroundPj = 0.0;

    double totalPj() const
    {
        return activatePj + readPj + writePj + backgroundPj;
    }
};

/**
 * Observer of the controller's write-drain windows (telemetry seam,
 * mirroring LlcAuditObserver). Notifications are synchronous, must not
 * re-enter the controller, and are strictly passive: an attached
 * observer changes no timing and no stats, so observed and unobserved
 * runs are cycle- and stat-identical.
 */
class DramObserver
{
  public:
    virtual ~DramObserver() = default;

    /** The write buffer filled and a drain window opened at `when`. */
    virtual void onDrainStart(Cycle when) = 0;

    /**
     * The drain window [start, end] closed after servicing `writes`
     * write bursts. end - start is exactly the amount credited to
     * statDrainCycles for this window.
     */
    virtual void onDrainEnd(Cycle start, Cycle end,
                            std::uint64_t writes) = 0;
};

/**
 * The memory controller: the terminal BackingPort of every hierarchy
 * composition. Reads complete through a callback carrying the
 * completion cycle; writes are fire-and-forget into the write buffer.
 */
class DramController : public BackingPort
{
  public:
    using ReadCallback = BackingPort::ReadCallback;

    /**
     * @param context the shard this channel lives on. Implicitly
     *        constructible from a bare EventQueue& for unsharded use.
     */
    DramController(const DramConfig &config, ShardContext context);
    ~DramController() override = default;

    /** Enqueue a block read arriving at cycle `when`. */
    void enqueueRead(Addr block_addr, Cycle when, ReadCallback cb);

    /** Enqueue a block writeback arriving at cycle `when`. */
    void enqueueWrite(Addr block_addr, Cycle when);

    // -- BackingPort -----------------------------------------------------

    void
    read(Addr block_addr, Cycle when, ReadCallback cb) override
    {
        enqueueRead(block_addr, when, std::move(cb));
    }

    void
    write(Addr block_addr, Cycle when) override
    {
        enqueueWrite(block_addr, when);
    }

    /** Number of buffered (unserviced) writes. */
    std::size_t pendingWrites() const override { return writeQ.size(); }

    /** Number of waiting (unserviced) reads. */
    std::size_t pendingReads() const { return readQ.size(); }

    /** True while a write drain is in progress. */
    bool draining() const override { return drainMode; }

    /** Attach (or detach, with nullptr) a passive drain observer. */
    void attachObserver(DramObserver *observer) { obs = observer; }

    const DramAddrMap &addrMap() const override { return map; }
    const DramConfig &config() const { return cfg; }

    /** Row hit rate over serviced reads since the last stat snapshot. */
    double readRowHitRate() const;

    /** Row hit rate over serviced writes since the last stat snapshot. */
    double writeRowHitRate() const;

    /** Energy consumed since the last stat snapshot, up to cycle now. */
    DramEnergy energySince(Cycle now) const;

    /** Register all counters on `set` for snapshot/collection. */
    void registerStats(StatSet &set);

    Counter statReads;
    Counter statWrites;
    Counter statReadRowHits;
    Counter statWriteRowHits;
    Counter statActivates;
    Counter statDrains;
    Counter statDrainCycles; ///< cycles spent in write-drain mode
    Counter statForwards;     ///< reads served from the write buffer
    Counter statCoalesced;    ///< writes merged into an existing entry

  private:
    struct ReadReq
    {
        Addr addr;
        Cycle arrive;
        ReadCallback cb;
    };

    struct WriteReq
    {
        Addr addr;
        Cycle arrive;
    };

    struct Bank
    {
        std::int64_t openRow = -1;  ///< -1 = precharged/closed
        Cycle rowReadyAt = 0;       ///< open row usable (post-tRCD)
        Cycle colCmdOkAt = 0;       ///< next column command (tCCD chain)
        Cycle prechargeOkAt = 0;    ///< earliest precharge (tWR/tRAS)
    };

    /** Ensure a service event is pending. */
    void scheduleService(Cycle when);

    /** Dispatch one request (called from the event queue). */
    void serviceNext();

    /** Close the current drain window and credit statDrainCycles. */
    void endDrain(Cycle now);

    /** FR-FCFS pick from a queue; returns index or -1 if empty. */
    template <typename Queue>
    int pickFrFcfs(const Queue &q) const;

    /**
     * Issue one request to its bank; returns data-end cycle.
     * @param arrive when the request entered the queue — bank
     *        preparation (precharge/activate) is modeled as starting
     *        while the request waited, so banks overlap bus transfers.
     */
    Cycle issue(Addr addr, bool is_write, Cycle arrive, Cycle now);

    DramConfig cfg;
    EventQueue &eq;
    DramAddrMap map;

    std::vector<Bank> banks;
    Cycle busFreeAt = 0;
    bool lastWasWrite = false;

    /** Recent activate times (ring) enforcing tRRD and tFAW. */
    std::array<Cycle, 4> recentActivates{};
    std::uint32_t activateIdx = 0;
    std::uint64_t numActivates = 0;

    std::deque<ReadReq> readQ;
    std::deque<WriteReq> writeQ;

    /**
     * Addresses currently in writeQ (coalescing keeps them distinct).
     * Pure membership mirror so read-forwarding and write-coalescing
     * checks are O(1) instead of scanning the buffer; never iterated,
     * so it cannot perturb determinism.
     */
    std::unordered_set<Addr> writeQAddrs;
    bool drainMode = false;
    Cycle drainStartAt = 0;
    std::uint64_t drainWrites = 0;  ///< writes serviced this window
    bool servicePending = false;
    DramObserver *obs = nullptr;
};

} // namespace dbsim

#endif // DBSIM_DRAM_DRAM_CONTROLLER_HH
