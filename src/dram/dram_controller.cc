#include "dram_controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace dbsim {

DramController::DramController(const DramConfig &config,
                               ShardContext context)
    : cfg(config), eq(context.queue()),
      map(config.rowBytes, config.numBanks,
          config.channels ? config.channels : 1),
      banks(config.numBanks)
{
    fatal_if(cfg.writeBufEntries == 0, "write buffer needs capacity");
    fatal_if(cfg.drainLowWatermark >= cfg.writeBufEntries,
             "drain low watermark must be below capacity");
}

void
DramController::registerStats(StatSet &set)
{
    set.add("dram.reads", statReads);
    set.add("dram.writes", statWrites);
    set.add("dram.readRowHits", statReadRowHits);
    set.add("dram.writeRowHits", statWriteRowHits);
    set.add("dram.activates", statActivates);
    set.add("dram.drains", statDrains);
    set.add("dram.drainCycles", statDrainCycles);
    set.add("dram.forwards", statForwards);
    set.add("dram.coalesced", statCoalesced);
}

double
DramController::readRowHitRate() const
{
    std::uint64_t n = statReads.sinceSnapshot();
    return n ? static_cast<double>(statReadRowHits.sinceSnapshot()) / n
             : 0.0;
}

double
DramController::writeRowHitRate() const
{
    std::uint64_t n = statWrites.sinceSnapshot();
    return n ? static_cast<double>(statWriteRowHits.sinceSnapshot()) / n
             : 0.0;
}

DramEnergy
DramController::energySince(Cycle now) const
{
    DramEnergy e;
    e.activatePj = cfg.eActivatePj *
                   static_cast<double>(statActivates.sinceSnapshot());
    e.readPj = cfg.eReadPj * static_cast<double>(statReads.sinceSnapshot());
    e.writePj =
        cfg.eWritePj * static_cast<double>(statWrites.sinceSnapshot());
    // background: mW * cycles / 2.67GHz -> pJ; 1 mW = 1e-3 J/s.
    double seconds = static_cast<double>(now) / 2.67e9;
    e.backgroundPj = cfg.backgroundMw * 1e-3 * seconds * 1e12;
    return e;
}

void
DramController::enqueueRead(Addr block_addr, Cycle when, ReadCallback cb)
{
    Addr a = blockAlign(block_addr);
    // Read-around-write: forward from the write buffer if present.
    if (writeQAddrs.count(a)) {
        ++statForwards;
        Cycle done = when + cfg.ioLatency;
        eq.schedule(done, [cb = std::move(cb), done] { cb(done); },
                    prof::Dram);
        return;
    }
    readQ.push_back(ReadReq{a, when, std::move(cb)});
    scheduleService(when);
}

void
DramController::enqueueWrite(Addr block_addr, Cycle when)
{
    Addr a = blockAlign(block_addr);
    if (!writeQAddrs.insert(a).second) {
        ++statCoalesced;
        return;
    }
    writeQ.push_back(WriteReq{a, when});
    if (writeQ.size() >= cfg.writeBufEntries && !drainMode) {
        drainMode = true;
        drainStartAt = std::max(when, eq.now());
        drainWrites = 0;
        ++statDrains;
        if (obs) {
            obs->onDrainStart(drainStartAt);
        }
    }
    scheduleService(when);
}

void
DramController::scheduleService(Cycle when)
{
    if (servicePending) {
        return;
    }
    servicePending = true;
    Cycle at = std::max(when, eq.now());
    eq.schedule(at, [this] {
        servicePending = false;
        serviceNext();
    }, prof::Dram);
}

template <typename Queue>
int
DramController::pickFrFcfs(const Queue &q) const
{
    // First-Ready (row hit) first; FCFS among equals. The scan stops at
    // the first row hit — it is the oldest one — and falls back to the
    // queue head (the oldest request) when no row hits.
    for (std::size_t i = 0; i < q.size(); ++i) {
        const auto &bank = banks[map.bank(q[i].addr)];
        if (bank.openRow >= 0 &&
            static_cast<std::uint64_t>(bank.openRow) ==
                map.rowId(q[i].addr)) {
            return static_cast<int>(i);
        }
    }
    return q.empty() ? -1 : 0;
}

Cycle
DramController::issue(Addr addr, bool is_write, Cycle arrive, Cycle now)
{
    Bank &bank = banks[map.bank(addr)];
    std::uint64_t row = map.rowId(addr);

    bool row_hit = bank.openRow >= 0 &&
                   static_cast<std::uint64_t>(bank.openRow) == row;

    // Bank preparation overlaps other banks' bus transfers: it may have
    // begun as soon as the request arrived and the bank was free, even
    // though the data bus only frees up later (bank-level parallelism).
    if (!row_hit) {
        // Precharge waits for write recovery (tWR) in this bank, then
        // the activate is rate-limited globally by tRRD and tFAW — this
        // is what makes row-scattered drains slower than clustered ones.
        Cycle pre = std::max({arrive, bank.prechargeOkAt,
                              bank.colCmdOkAt});
        Cycle act = pre;
        if (bank.openRow >= 0) {
            act += static_cast<Cycle>(cfg.tRp) * cfg.tCkCpu;
        }
        if (numActivates >= 1) {
            Cycle rrd_ok = recentActivates[(activateIdx + 3) % 4] +
                           static_cast<Cycle>(cfg.tRrd) * cfg.tCkCpu;
            act = std::max(act, rrd_ok);
        }
        if (numActivates >= 4) {
            Cycle faw_ok = recentActivates[activateIdx] +
                           static_cast<Cycle>(cfg.tFaw) * cfg.tCkCpu;
            act = std::max(act, faw_ok);
        }
        recentActivates[activateIdx] = act;
        activateIdx = (activateIdx + 1) % 4;
        ++numActivates;
        ++statActivates;

        bank.rowReadyAt = act + static_cast<Cycle>(cfg.tRcd) * cfg.tCkCpu;
        bank.openRow = static_cast<std::int64_t>(row);
        // tRAS floor for the next precharge.
        bank.prechargeOkAt =
            act + static_cast<Cycle>(cfg.tRas) * cfg.tCkCpu;
    }

    Cycle turnaround = 0;
    if (is_write != lastWasWrite) {
        turnaround =
            static_cast<Cycle>(is_write ? cfg.tRtw : cfg.tWtr) * cfg.tCkCpu;
    }

    Cycle col_cmd = std::max({arrive, bank.rowReadyAt, bank.colCmdOkAt});
    Cycle data_start =
        std::max({col_cmd + static_cast<Cycle>(cfg.tCas) * cfg.tCkCpu,
                  busFreeAt + turnaround, now});
    Cycle data_end =
        data_start + static_cast<Cycle>(cfg.tBurst) * cfg.tCkCpu;

    // Column commands to the same bank chain at the burst rate (tCCD);
    // the CAS latency itself pipelines behind the previous transfer.
    bank.colCmdOkAt = data_start;
    busFreeAt = data_end;
    if (is_write) {
        bank.prechargeOkAt = std::max(
            bank.prechargeOkAt,
            data_end + static_cast<Cycle>(cfg.tWr) * cfg.tCkCpu);
        ++statWrites;
        if (row_hit) {
            ++statWriteRowHits;
        }
    } else {
        bank.prechargeOkAt = std::max(bank.prechargeOkAt, data_end);
        ++statReads;
        if (row_hit) {
            ++statReadRowHits;
        }
    }
    lastWasWrite = is_write;
    return data_end;
}

void
DramController::endDrain(Cycle now)
{
    drainMode = false;
    Cycle credited = now > drainStartAt ? now - drainStartAt : 0;
    statDrainCycles += credited;
    if (obs) {
        obs->onDrainEnd(drainStartAt, drainStartAt + credited,
                        drainWrites);
    }
}

void
DramController::serviceNext()
{
    Cycle now = eq.now();

    bool do_write;
    if (drainMode) {
        do_write = !writeQ.empty();
        if (!do_write) {
            // Defensive only: the drain now ends at the dequeue that
            // crosses the watermark, so it never runs the queue empty.
            endDrain(now);
        }
    } else if (!readQ.empty()) {
        do_write = false;
    } else if (cfg.writeWhenIdle && !writeQ.empty()) {
        do_write = true;
    } else {
        return;  // nothing to do; next enqueue reschedules us
    }

    if (do_write) {
        int idx = pickFrFcfs(writeQ);
        panic_if(idx < 0, "drain with empty write queue");
        WriteReq req = writeQ[static_cast<std::size_t>(idx)];
        writeQ.erase(writeQ.begin() + idx);
        writeQAddrs.erase(req.addr);
        issue(req.addr, true, req.arrive, now);
        if (drainMode) {
            ++drainWrites;
        }
        // The drain window ends the moment this dequeue reaches the low
        // watermark. Waiting for a later service event to observe the
        // transition (as this used to) under-counts statDrainCycles —
        // a drain that empties the queue with no subsequent traffic was
        // never credited at all — and leaves drainMode latched on.
        if (drainMode && writeQ.size() <= cfg.drainLowWatermark) {
            endDrain(now);
        }
    } else {
        if (readQ.empty()) {
            return;
        }
        int idx = pickFrFcfs(readQ);
        ReadReq req = std::move(readQ[static_cast<std::size_t>(idx)]);
        readQ.erase(readQ.begin() + idx);
        Cycle data_end = issue(req.addr, false, req.arrive, now);
        Cycle done = data_end + cfg.ioLatency;
        eq.schedule(done, [cb = std::move(req.cb), done] { cb(done); },
                    prof::Dram);
    }

    if (!readQ.empty() || !writeQ.empty()) {
        // Next command can begin once the bus frees; overlap bank prep.
        scheduleService(std::max(now + 1, busFreeAt));
    }
}

} // namespace dbsim
