#include "workload/sampled_trace.hh"

#include <utility>

#include "common/logging.hh"

namespace dbsim {

SampledTrace::SampledTrace(std::unique_ptr<TraceSource> inner_,
                           const SamplingConfig &cfg_, WarmFn warm_)
    : src(std::move(inner_)), cfg(cfg_), warm(std::move(warm_))
{
    fatal_if(cfg.periodOps > 0 &&
                 (cfg.sampleOps == 0 || cfg.sampleOps > cfg.periodOps),
             "sampling: need 0 < sample-ops (%llu) <= period (%llu)",
             static_cast<unsigned long long>(cfg.sampleOps),
             static_cast<unsigned long long>(cfg.periodOps));
    fatal_if(cfg.periodOps == 0 && cfg.sampleOps > 0,
             "sampling: sample-ops without a period has no effect; "
             "set --period too");
}

void
SampledTrace::warmSpan(std::uint64_t n)
{
    for (std::uint64_t i = 0; i < n; ++i) {
        TraceOp op = src->next();
        warm(op.addr, op.isWrite);
        ++nWarmed;
    }
}

TraceOp
SampledTrace::next()
{
    if (!started) {
        started = true;
        warmSpan(cfg.ffOps);
    }
    if (cfg.periodOps > 0 && windowMeasured == cfg.sampleOps) {
        warmSpan(cfg.periodOps - cfg.sampleOps);
        windowMeasured = 0;
    }
    ++windowMeasured;
    ++nMeasured;
    return src->next();
}

} // namespace dbsim
