/**
 * @file
 * File-backed instruction traces, so users can drive the simulator with
 * real application traces (e.g. converted Pin/DynamoRIO output) instead
 * of the synthetic generators.
 *
 * Format: one record per line, `<gap> <R|W|D> <hex-addr>`, where gap is
 * the number of non-memory instructions preceding the access, R is a
 * load, W a store, and D a load that depends on the previous memory
 * access (pointer chasing). '#' starts a comment. Traces loop: when the
 * file is exhausted the source restarts from the beginning, matching
 * the infinite-trace contract of TraceSource.
 *
 * The file is streamed, never materialized: records are parsed on
 * demand from a bounded line buffer and looping rewinds the stream, so
 * memory use is independent of trace length. Construction still makes
 * one full validation pass so malformed files fatal() up front (with
 * the line number) rather than mid-simulation.
 */

#ifndef DBSIM_WORKLOAD_FILE_TRACE_HH
#define DBSIM_WORKLOAD_FILE_TRACE_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "cpu/trace.hh"

namespace dbsim {

/** TraceSource replaying a trace file (streamed from disk, looping). */
class FileTrace : public TraceSource
{
  public:
    /** Open and validate the file; fatal() on any malformed record. */
    explicit FileTrace(const std::string &path);

    /** Build from already-parsed records (testing, programmatic use). */
    explicit FileTrace(std::vector<TraceOp> records);

    TraceOp next() override;

    std::uint64_t opsEmitted() const override { return nEmitted; }

    /** Records per loop iteration. */
    std::size_t size() const { return inMemory() ? ops.size() : nRecords; }

    /**
     * Serialize records in the file format (the writer counterpart, so
     * tools can convert other formats into dbsim traces).
     */
    static void write(const std::string &path,
                      const std::vector<TraceOp> &records);

  private:
    /** Longest accepted line; longer is a malformed (over-long) record. */
    static constexpr std::size_t kMaxLine = 4096;

    bool inMemory() const { return path.empty(); }
    bool readNext(TraceOp &op);
    bool parseLine(char *line, TraceOp &op);
    void rewindFile();

    // In-memory mode (programmatic records).
    std::vector<TraceOp> ops;
    std::size_t pos = 0;

    // File-streaming mode.
    std::string path;
    std::ifstream in;
    std::size_t nRecords = 0;
    std::size_t lineNo = 0;

    std::uint64_t nEmitted = 0;
};

} // namespace dbsim

#endif // DBSIM_WORKLOAD_FILE_TRACE_HH
