/**
 * @file
 * File-backed instruction traces, so users can drive the simulator with
 * real application traces (e.g. converted Pin/DynamoRIO output) instead
 * of the synthetic generators.
 *
 * Format: one record per line, `<gap> <R|W|D> <hex-addr>`, where gap is
 * the number of non-memory instructions preceding the access, R is a
 * load, W a store, and D a load that depends on the previous memory
 * access (pointer chasing). '#' starts a comment. Traces loop: when the
 * file is exhausted the source restarts from the beginning, matching
 * the infinite-trace contract of TraceSource.
 */

#ifndef DBSIM_WORKLOAD_FILE_TRACE_HH
#define DBSIM_WORKLOAD_FILE_TRACE_HH

#include <string>
#include <vector>

#include "cpu/trace.hh"

namespace dbsim {

/** TraceSource replaying a trace file (loaded into memory, looping). */
class FileTrace : public TraceSource
{
  public:
    /** Parse the file; fatal() on unreadable files or syntax errors. */
    explicit FileTrace(const std::string &path);

    /** Build from already-parsed records (testing, programmatic use). */
    explicit FileTrace(std::vector<TraceOp> records);

    TraceOp next() override;

    /** Records per loop iteration. */
    std::size_t size() const { return ops.size(); }

    /**
     * Serialize records in the file format (the writer counterpart, so
     * tools can convert other formats into dbsim traces).
     */
    static void write(const std::string &path,
                      const std::vector<TraceOp> &records);

  private:
    std::vector<TraceOp> ops;
    std::size_t pos = 0;
};

} // namespace dbsim

#endif // DBSIM_WORKLOAD_FILE_TRACE_HH
