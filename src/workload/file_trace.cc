#include "file_trace.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/logging.hh"

namespace dbsim {

FileTrace::FileTrace(const std::string &path_) : path(path_)
{
    in.open(path);
    fatal_if(!in, "cannot open trace file '%s'", path.c_str());

    // Validation pass: stream every record once so syntax errors fatal
    // here with a line number, then rewind for replay. Nothing is
    // retained, so memory stays bounded regardless of file size.
    TraceOp op;
    while (readNext(op)) {
        ++nRecords;
    }
    fatal_if(nRecords == 0, "trace file '%s' has no records",
             path.c_str());
    rewindFile();
}

FileTrace::FileTrace(std::vector<TraceOp> records) : ops(std::move(records))
{
    fatal_if(ops.empty(), "empty trace");
}

void
FileTrace::rewindFile()
{
    in.clear();
    in.seekg(0);
    lineNo = 0;
}

bool
FileTrace::parseLine(char *line, TraceOp &op)
{
    if (char *hash = std::strchr(line, '#')) {
        *hash = '\0';
    }
    const auto skipWs = [](const char *p) {
        while (*p == ' ' || *p == '\t' || *p == '\r') {
            ++p;
        }
        return p;
    };

    const char *p = skipWs(line);
    if (*p == '\0') {
        return false; // blank or comment-only line
    }

    char *end = nullptr;
    unsigned long long gap = std::strtoull(p, &end, 10);
    fatal_if(end == p ||
                 (*end != '\0' &&
                  !std::isspace(static_cast<unsigned char>(*end))),
             "%s:%zu: expected '<gap> <R|W|D> <hex-addr>'",
             path.c_str(), lineNo);
    fatal_if(gap > std::numeric_limits<std::uint32_t>::max(),
             "%s:%zu: gap %llu exceeds the per-record limit",
             path.c_str(), lineNo, gap);

    p = skipWs(end);
    char kind = *p;
    fatal_if(kind != 'R' && kind != 'W' && kind != 'D',
             "%s:%zu: bad access kind '%c'", path.c_str(), lineNo,
             kind ? kind : ' ');
    ++p;
    fatal_if(*p != '\0' && !std::isspace(static_cast<unsigned char>(*p)),
             "%s:%zu: bad access kind '%c%c'", path.c_str(), lineNo,
             kind, *p);

    p = skipWs(p);
    end = nullptr;
    unsigned long long addr = std::strtoull(p, &end, 16);
    fatal_if(end == p, "%s:%zu: bad address '%s'", path.c_str(), lineNo,
             p);
    fatal_if(*skipWs(end) != '\0', "%s:%zu: trailing garbage '%s'",
             path.c_str(), lineNo, end);

    op.gap = static_cast<std::uint32_t>(gap);
    op.isWrite = kind == 'W';
    op.dependent = kind == 'D';
    op.addr = addr;
    return true;
}

bool
FileTrace::readNext(TraceOp &op)
{
    char buf[kMaxLine];
    while (true) {
        in.getline(buf, sizeof(buf));
        const auto got = static_cast<std::size_t>(in.gcount());
        fatal_if(in.bad(), "trace file '%s': read error", path.c_str());
        if (in.fail()) {
            // getline sets failbit either on an unterminated over-long
            // line (buffer filled) or on clean end-of-file (nothing
            // extracted).
            fatal_if(got == sizeof(buf) - 1,
                     "%s:%zu: over-long line (> %zu chars)",
                     path.c_str(), lineNo + 1, sizeof(buf) - 1);
            return false;
        }
        ++lineNo;
        if (parseLine(buf, op)) {
            return true;
        }
    }
}

TraceOp
FileTrace::next()
{
    ++nEmitted;
    if (inMemory()) {
        TraceOp op = ops[pos];
        pos = (pos + 1) % ops.size();
        return op;
    }
    TraceOp op;
    if (!readNext(op)) {
        rewindFile();
        bool ok = readNext(op);
        panic_if(!ok, "validated trace '%s' empty on rewind",
                 path.c_str());
    }
    return op;
}

void
FileTrace::write(const std::string &path,
                 const std::vector<TraceOp> &records)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write trace file '%s'", path.c_str());
    out << "# dbsim trace: <gap> <R|W|D> <hex-addr>\n";
    for (const auto &op : records) {
        const char *kind = op.isWrite ? "W" : (op.dependent ? "D" : "R");
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%u %s %llx\n", op.gap, kind,
                      static_cast<unsigned long long>(op.addr));
        out << buf;
    }
    fatal_if(!out, "error writing trace file '%s'", path.c_str());
}

} // namespace dbsim
