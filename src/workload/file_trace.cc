#include "file_trace.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace dbsim {

FileTrace::FileTrace(const std::string &path)
{
    std::ifstream in(path);
    fatal_if(!in, "cannot open trace file '%s'", path.c_str());

    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        std::size_t hash = line.find('#');
        if (hash != std::string::npos) {
            line.erase(hash);
        }
        std::istringstream ls(line);
        std::uint64_t gap;
        std::string kind;
        std::string addr_str;
        if (!(ls >> gap)) {
            continue;  // blank or comment-only line
        }
        fatal_if(!(ls >> kind >> addr_str),
                 "%s:%zu: expected '<gap> <R|W|D> <hex-addr>'",
                 path.c_str(), lineno);
        fatal_if(kind != "R" && kind != "W" && kind != "D",
                 "%s:%zu: bad access kind '%s'", path.c_str(), lineno,
                 kind.c_str());
        TraceOp op;
        op.gap = static_cast<std::uint32_t>(gap);
        op.isWrite = kind == "W";
        op.dependent = kind == "D";
        char *end = nullptr;
        op.addr = std::strtoull(addr_str.c_str(), &end, 16);
        fatal_if(end == addr_str.c_str() || *end != '\0',
                 "%s:%zu: bad address '%s'", path.c_str(), lineno,
                 addr_str.c_str());
        ops.push_back(op);
    }
    fatal_if(ops.empty(), "trace file '%s' has no records", path.c_str());
}

FileTrace::FileTrace(std::vector<TraceOp> records) : ops(std::move(records))
{
    fatal_if(ops.empty(), "empty trace");
}

TraceOp
FileTrace::next()
{
    TraceOp op = ops[pos];
    pos = (pos + 1) % ops.size();
    return op;
}

void
FileTrace::write(const std::string &path,
                 const std::vector<TraceOp> &records)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write trace file '%s'", path.c_str());
    out << "# dbsim trace: <gap> <R|W|D> <hex-addr>\n";
    for (const auto &op : records) {
        const char *kind = op.isWrite ? "W" : (op.dependent ? "D" : "R");
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%u %s %llx\n", op.gap, kind,
                      static_cast<unsigned long long>(op.addr));
        out << buf;
    }
    fatal_if(!out, "error writing trace file '%s'", path.c_str());
}

} // namespace dbsim
