/**
 * @file
 * Deterministic synthetic trace generator implementing a BenchProfile's
 * mixture model (see profiles.hh). Each core gets a disjoint address
 * space so multi-programmed workloads contend only for shared hardware,
 * not for data, matching the paper's multi-programmed methodology.
 *
 * Streaming accesses model a set of concurrently-active DRAM rows: each
 * cache block is written/read contiguously (word by word), then the
 * generator hops to another active row. With many active rows the
 * baseline cache's eviction-order writebacks interleave blocks of many
 * rows (low write row-hit rate, Figure 6b) while DBI/AWB/DAWB can
 * re-coalesce them per row.
 */

#ifndef DBSIM_WORKLOAD_SYNTHETIC_TRACE_HH
#define DBSIM_WORKLOAD_SYNTHETIC_TRACE_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "cpu/trace.hh"
#include "workload/profiles.hh"

namespace dbsim {

/** Synthetic trace source driven by a benchmark profile. */
class SyntheticTrace : public TraceSource
{
  public:
    /**
     * @param profile the benchmark's generative parameters.
     * @param core_id selects the disjoint address-space slice.
     * @param seed base RNG seed (combined with core and name hash).
     */
    SyntheticTrace(const BenchProfile &profile, std::uint32_t core_id,
                   std::uint64_t seed);

    TraceOp next() override;

  private:
    /** Multi-row streaming state for one direction (read or write). */
    struct Stream
    {
        /** Byte offset of each active row within the stream region. */
        std::vector<std::uint64_t> rowBase;
        /** Next block index to touch within each active row. */
        std::vector<std::uint32_t> rowBlock;
        std::uint32_t curRow = 0;       ///< active-row slot in use
        std::uint32_t byteInBlock = 0;  ///< word cursor within the block
        std::uint64_t nextRowOffset;    ///< allocator for fresh rows
    };

    /** Pick a byte address from a mixture for a read or write. */
    Addr pickAddr(const Mixture &mix, bool is_write);

    /** Next streaming address for one direction. */
    Addr streamNext(Stream &st, Addr region_base);

    void initStream(Stream &st, std::uint32_t rows);

    const BenchProfile &prof;
    Addr base;  ///< this core's address-space base
    Rng rng;

    Stream readStream;
    Stream writeStream;

    // Region base offsets within the core's slice.
    static constexpr Addr kHotBase = 0;
    static constexpr Addr kWarmBase = Addr{1} << 32;
    static constexpr Addr kColdBase = Addr{2} << 32;
    static constexpr Addr kStreamRBase = Addr{3} << 32;
    static constexpr Addr kStreamWBase = Addr{4} << 32;

    static constexpr std::uint64_t kRowBytes = 8192;
    static constexpr std::uint32_t kBlocksPerRow = 128;

    double meanGap;
};

} // namespace dbsim

#endif // DBSIM_WORKLOAD_SYNTHETIC_TRACE_HH
