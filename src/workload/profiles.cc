#include "profiles.hh"

#include "common/logging.hh"

namespace dbsim {

namespace {

constexpr std::uint64_t KB = 1024;
constexpr std::uint64_t MB = 1024 * 1024;

/**
 * Parameters are calibrated so the simulated baseline reproduces each
 * benchmark's character from Figure 6: the low-IPC pointer chasers
 * (mcf: high depFrac, random reads), the write-intensive streamers
 * (lbm, stream, GemsFDTD: many concurrently-active write rows, which
 * scatters the baseline's writeback order), the read-streaming
 * libquantum, and the cache-friendly tail (bzip2, astar, bwaves).
 */
std::vector<BenchProfile>
buildProfiles()
{
    using I = Intensity;
    std::vector<BenchProfile> v;

    // name, memFrac, writeFrac, depFrac,
    // readMix{hot,warm,stream,cold}, writeMix{hot,warm,stream,cold},
    // hotB, warmB, coldB, streamB, readRows, writeRows, readCls, writeCls
    v.push_back({"mcf", 0.35, 0.25, 0.75,
                 {0.61, 0.22, 0.00, 0.17}, {0.70, 0.00, 0.26, 0.04},
                 16 * KB, 2 * MB, 512 * MB, 64 * MB, 1, 12,
                 I::High, I::Medium});
    v.push_back({"lbm", 0.33, 0.45, 0.10,
                 {0.10, 0.00, 0.85, 0.05}, {0.05, 0.00, 0.95, 0.00},
                 16 * KB, 2 * MB, 256 * MB, 128 * MB, 8, 48,
                 I::High, I::High});
    v.push_back({"GemsFDTD", 0.30, 0.33, 0.15,
                 {0.30, 0.00, 0.65, 0.05}, {0.30, 0.00, 0.70, 0.00},
                 32 * KB, 3 * MB, 256 * MB, 96 * MB, 8, 32,
                 I::High, I::High});
    v.push_back({"soplex", 0.30, 0.25, 0.30,
                 {0.47, 0.25, 0.25, 0.03}, {0.63, 0.02, 0.35, 0.00},
                 32 * KB, 2 * MB, 256 * MB, 64 * MB, 4, 16,
                 I::Medium, I::Medium});
    v.push_back({"omnetpp", 0.32, 0.30, 0.50,
                 {0.70, 0.25, 0.00, 0.05}, {0.775, 0.00, 0.20, 0.025},
                 32 * KB, 1536 * KB, 256 * MB, 64 * MB, 1, 12,
                 I::Medium, I::Medium});
    v.push_back({"cactusADM", 0.28, 0.30, 0.25,
                 {0.55, 0.15, 0.28, 0.02}, {0.55, 0.00, 0.45, 0.00},
                 32 * KB, 3 * MB, 256 * MB, 64 * MB, 4, 24,
                 I::Medium, I::Medium});
    v.push_back({"stream", 0.40, 0.33, 0.00,
                 {0.25, 0.00, 0.75, 0.00}, {0.10, 0.00, 0.90, 0.00},
                 16 * KB, 2 * MB, 64 * MB, 128 * MB, 4, 16,
                 I::High, I::High});
    v.push_back({"leslie3d", 0.28, 0.28, 0.20,
                 {0.66, 0.00, 0.33, 0.01}, {0.55, 0.00, 0.45, 0.00},
                 32 * KB, 2 * MB, 64 * MB, 96 * MB, 4, 24,
                 I::Medium, I::Medium});
    v.push_back({"milc", 0.27, 0.25, 0.15,
                 {0.70, 0.04, 0.25, 0.01}, {0.50, 0.00, 0.50, 0.00},
                 32 * KB, 2 * MB, 128 * MB, 64 * MB, 4, 32,
                 I::Medium, I::Medium});
    v.push_back({"sphinx3", 0.30, 0.08, 0.20,
                 {0.56, 0.24, 0.20, 0.00}, {0.90, 0.00, 0.10, 0.00},
                 32 * KB, 1536 * KB, 64 * MB, 64 * MB, 2, 4,
                 I::Medium, I::Low});
    v.push_back({"libquantum", 0.25, 0.25, 0.05,
                 {0.42, 0.00, 0.58, 0.00}, {0.50, 0.00, 0.50, 0.00},
                 16 * KB, 2 * MB, 64 * MB, 128 * MB, 1, 4,
                 I::High, I::Medium});
    v.push_back({"bzip2", 0.28, 0.30, 0.30,
                 {0.825, 0.17, 0.00, 0.005}, {0.89, 0.01, 0.10, 0.00},
                 64 * KB, 1 * MB, 64 * MB, 32 * MB, 1, 8,
                 I::Low, I::Low});
    v.push_back({"astar", 0.30, 0.25, 0.50,
                 {0.85, 0.145, 0.00, 0.005}, {0.90, 0.00, 0.095, 0.005},
                 64 * KB, 1 * MB, 128 * MB, 32 * MB, 1, 8,
                 I::Low, I::Low});
    v.push_back({"bwaves", 0.25, 0.15, 0.10,
                 {0.94, 0.00, 0.06, 0.00}, {0.85, 0.00, 0.15, 0.00},
                 64 * KB, 2 * MB, 64 * MB, 64 * MB, 2, 4,
                 I::Low, I::Low});
    return v;
}

} // namespace

const std::vector<BenchProfile> &
allBenchmarks()
{
    static const std::vector<BenchProfile> profiles = buildProfiles();
    return profiles;
}

const BenchProfile *
findBenchmark(const std::string &name)
{
    for (const auto &p : allBenchmarks()) {
        if (p.name == name) {
            return &p;
        }
    }
    return nullptr;
}

const BenchProfile &
benchmarkByName(const std::string &name)
{
    const BenchProfile *p = findBenchmark(name);
    fatal_if(!p, "unknown benchmark '%s'", name.c_str());
    return *p;
}

} // namespace dbsim
