#include "synthetic_trace.hh"

#include <cmath>

#include "common/logging.hh"

namespace dbsim {

namespace {

std::uint64_t
hashName(const std::string &s)
{
    std::uint64_t h = 1469598103934665603ULL;
    for (char c : s) {
        h ^= static_cast<std::uint64_t>(c);
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace

SyntheticTrace::SyntheticTrace(const BenchProfile &profile,
                               std::uint32_t core_id, std::uint64_t seed)
    : prof(profile),
      base(static_cast<Addr>(core_id + 1) << 40),
      rng(seed ^ hashName(profile.name) ^
          (static_cast<std::uint64_t>(core_id) << 17))
{
    fatal_if(prof.memFrac <= 0.0 || prof.memFrac > 1.0,
             "memFrac out of range for %s", prof.name.c_str());
    fatal_if(prof.streamBytes < 2 * kRowBytes *
             (prof.readStreamRows + prof.writeStreamRows),
             "stream region too small for the active-row windows");
    meanGap = (1.0 - prof.memFrac) / prof.memFrac;
    initStream(readStream, prof.readStreamRows ? prof.readStreamRows : 1);
    initStream(writeStream,
               prof.writeStreamRows ? prof.writeStreamRows : 1);
}

void
SyntheticTrace::initStream(Stream &st, std::uint32_t rows)
{
    st.rowBase.resize(rows);
    st.rowBlock.assign(rows, 0);
    for (std::uint32_t i = 0; i < rows; ++i) {
        st.rowBase[i] = static_cast<std::uint64_t>(i) * kRowBytes;
    }
    st.nextRowOffset = static_cast<std::uint64_t>(rows) * kRowBytes;
}

Addr
SyntheticTrace::streamNext(Stream &st, Addr region_base)
{
    std::uint32_t r = st.curRow;
    Addr a = base + region_base + st.rowBase[r] +
             static_cast<Addr>(st.rowBlock[r]) * kBlockBytes +
             st.byteInBlock;

    st.byteInBlock += 8;
    if (st.byteInBlock >= kBlockBytes) {
        // Block finished: advance this row's cursor, retire the row if
        // it is fully covered, and hop to a random active row.
        st.byteInBlock = 0;
        if (++st.rowBlock[r] >= kBlocksPerRow) {
            st.rowBlock[r] = 0;
            st.rowBase[r] = st.nextRowOffset;
            st.nextRowOffset =
                (st.nextRowOffset + kRowBytes) % prof.streamBytes;
        }
        st.curRow = static_cast<std::uint32_t>(
            rng.below(st.rowBase.size()));
    }
    return a;
}

Addr
SyntheticTrace::pickAddr(const Mixture &mix, bool is_write)
{
    double r = rng.uniform();
    if (r < mix.hot) {
        return base + kHotBase + rng.below(prof.hotBytes);
    }
    r -= mix.hot;
    if (r < mix.warm) {
        return base + kWarmBase + rng.below(prof.warmBytes);
    }
    r -= mix.warm;
    if (r < mix.stream) {
        return is_write ? streamNext(writeStream, kStreamWBase)
                        : streamNext(readStream, kStreamRBase);
    }
    return base + kColdBase + rng.below(prof.coldBytes);
}

TraceOp
SyntheticTrace::next()
{
    TraceOp op;
    // Uniform jitter around the mean gap keeps memory intensity right
    // without periodic artifacts. Round, not truncate: (1-f)/f is often
    // representable just below the intended integer.
    std::uint64_t span =
        static_cast<std::uint64_t>(std::llround(2.0 * meanGap)) + 1;
    op.gap = static_cast<std::uint32_t>(rng.below(span));
    op.isWrite = rng.chance(prof.writeFrac);
    op.dependent = !op.isWrite && rng.chance(prof.depFrac);
    op.addr = pickAddr(op.isWrite ? prof.writeMix : prof.readMix,
                       op.isWrite);
    return op;
}

} // namespace dbsim
