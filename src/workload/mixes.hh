/**
 * @file
 * Multi-programmed workload construction (Section 5): benchmarks are
 * classified by read intensity and write intensity (low/medium/high) and
 * combined into N-core mixes that span the intensity grid, so the mix
 * population stresses both how much a workload suffers from write
 * interference and how much it causes.
 */

#ifndef DBSIM_WORKLOAD_MIXES_HH
#define DBSIM_WORKLOAD_MIXES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dbsim {

/** One multi-programmed workload: a benchmark name per core. */
using WorkloadMix = std::vector<std::string>;

/**
 * Generate `count` N-core mixes. Deterministic in `seed`. Benchmarks are
 * drawn class-aware: each slot picks an intensity category first, then a
 * random member, so the population covers the read/write intensity grid.
 */
std::vector<WorkloadMix> makeMixes(std::uint32_t num_cores,
                                   std::uint32_t count,
                                   std::uint64_t seed);

/** Human-readable "a+b+c" label for a mix. */
std::string mixLabel(const WorkloadMix &mix);

} // namespace dbsim

#endif // DBSIM_WORKLOAD_MIXES_HH
