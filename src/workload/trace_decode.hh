/**
 * @file
 * Compression seam for trace ingest. A TraceDecoder turns a (possibly
 * compressed) trace file into a rewindable byte stream read in bounded
 * chunks; the container format is detected from magic bytes, never from
 * the file name. Gzip rides on zlib and xz on liblzma when the build
 * found them; zstd is detected but only to fail with a clear message,
 * since the toolchain image carries no zstd headers. The seam keeps the
 * parsers (ChampSimTrace, FileTrace) codec-agnostic and is also where
 * the test suite and tools/gen_trace get their tiny compress-a-buffer
 * helper, so fuzz inputs exercise the exact decode path the simulator
 * uses.
 */

#ifndef DBSIM_WORKLOAD_TRACE_DECODE_HH
#define DBSIM_WORKLOAD_TRACE_DECODE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace dbsim {

/** Container codecs the sniffing recognises. */
enum class TraceCodec { Raw, Gzip, Xz, Zstd };

/** Human-readable codec name for messages. */
const char *traceCodecName(TraceCodec codec);

/** True if this build can decode (and encode) the codec. */
bool traceCodecAvailable(TraceCodec codec);

/** Sniff the codec from a file's leading magic bytes. */
TraceCodec sniffTraceCodec(const std::string &path);

/**
 * Rewindable chunked byte stream over a trace file. read() never
 * buffers more than a fixed-size window regardless of file size;
 * decode errors are user errors and fatal() with the file position.
 */
class TraceDecoder
{
  public:
    virtual ~TraceDecoder() = default;

    /** Read up to `n` bytes into `dst`; returns 0 at end of stream. */
    virtual std::size_t read(void *dst, std::size_t n) = 0;

    /** Seek back to the start of the decoded stream. */
    virtual void rewind() = 0;

    const std::string &path() const { return filePath; }

  protected:
    explicit TraceDecoder(std::string path) : filePath(std::move(path)) {}

    std::string filePath;
};

/**
 * Open `path` with the codec its magic bytes announce. fatal()s if the
 * file is unreadable or the codec is not compiled into this build.
 */
std::unique_ptr<TraceDecoder> openTraceDecoder(const std::string &path);

/**
 * Write `bytes` to `path` through `codec` (used by tools/gen_trace and
 * the parser tests; Raw writes the bytes verbatim). fatal()s if the
 * codec is unavailable in this build.
 */
void writeTraceFile(const std::string &path,
                    const std::vector<std::uint8_t> &bytes,
                    TraceCodec codec);

} // namespace dbsim

#endif // DBSIM_WORKLOAD_TRACE_DECODE_HH
