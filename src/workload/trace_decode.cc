#include "workload/trace_decode.hh"

#include <cstdio>
#include <cstring>

#include "common/logging.hh"

#ifdef DBSIM_HAVE_ZLIB
#include <zlib.h>
#endif
#ifdef DBSIM_HAVE_LZMA
#include <lzma.h>
#endif

namespace dbsim {

namespace {

/** Bounded staging window for compressed input (per decoder). */
constexpr std::size_t kInChunk = 1u << 16;

/** Plain uncompressed file. */
class RawDecoder : public TraceDecoder
{
  public:
    explicit RawDecoder(const std::string &path) : TraceDecoder(path)
    {
        f = std::fopen(path.c_str(), "rb");
        fatal_if(!f, "trace %s: cannot open", path.c_str());
    }

    ~RawDecoder() override { std::fclose(f); }

    std::size_t read(void *dst, std::size_t n) override
    {
        std::size_t got = std::fread(dst, 1, n, f);
        fatal_if(got < n && std::ferror(f), "trace %s: read error",
                 filePath.c_str());
        return got;
    }

    void rewind() override { std::rewind(f); }

  private:
    std::FILE *f = nullptr;
};

#ifdef DBSIM_HAVE_ZLIB
/** Gzip container via zlib's gzFile streaming API. */
class GzipDecoder : public TraceDecoder
{
  public:
    explicit GzipDecoder(const std::string &path) : TraceDecoder(path)
    {
        gz = gzopen(path.c_str(), "rb");
        fatal_if(!gz, "trace %s: cannot open", path.c_str());
        gzbuffer(gz, kInChunk);
    }

    ~GzipDecoder() override { gzclose(gz); }

    std::size_t read(void *dst, std::size_t n) override
    {
        int got = gzread(gz, dst, static_cast<unsigned>(n));
        if (got < 0) {
            int errnum = 0;
            const char *msg = gzerror(gz, &errnum);
            fatal("trace %s: gzip decode error: %s", filePath.c_str(),
                  msg ? msg : "unknown");
        }
        return static_cast<std::size_t>(got);
    }

    void rewind() override
    {
        fatal_if(gzrewind(gz) != 0, "trace %s: gzip rewind failed",
                 filePath.c_str());
    }

  private:
    gzFile gz = nullptr;
};
#endif // DBSIM_HAVE_ZLIB

#ifdef DBSIM_HAVE_LZMA
/** Xz container via liblzma's incremental stream decoder. */
class XzDecoder : public TraceDecoder
{
  public:
    explicit XzDecoder(const std::string &path) : TraceDecoder(path)
    {
        f = std::fopen(path.c_str(), "rb");
        fatal_if(!f, "trace %s: cannot open", path.c_str());
        initStream();
    }

    ~XzDecoder() override
    {
        lzma_end(&strm);
        std::fclose(f);
    }

    std::size_t read(void *dst, std::size_t n) override
    {
        strm.next_out = static_cast<std::uint8_t *>(dst);
        strm.avail_out = n;
        while (strm.avail_out > 0 && !streamEnd) {
            if (strm.avail_in == 0 && !inEof) {
                std::size_t got = std::fread(inBuf, 1, kInChunk, f);
                fatal_if(got < kInChunk && std::ferror(f),
                         "trace %s: read error", filePath.c_str());
                inEof = got == 0 && std::feof(f);
                strm.next_in = inBuf;
                strm.avail_in = got;
            }
            lzma_ret ret =
                lzma_code(&strm, inEof ? LZMA_FINISH : LZMA_RUN);
            if (ret == LZMA_STREAM_END) {
                streamEnd = true;
            } else if (ret != LZMA_OK) {
                fatal("trace %s: xz decode error (lzma_ret %d)",
                      filePath.c_str(), static_cast<int>(ret));
            }
        }
        return n - strm.avail_out;
    }

    void rewind() override
    {
        lzma_end(&strm);
        std::rewind(f);
        inEof = false;
        streamEnd = false;
        initStream();
    }

  private:
    void initStream()
    {
        strm = LZMA_STREAM_INIT;
        lzma_ret ret =
            lzma_stream_decoder(&strm, UINT64_MAX, LZMA_CONCATENATED);
        fatal_if(ret != LZMA_OK, "trace %s: cannot init xz decoder",
                 filePath.c_str());
    }

    std::FILE *f = nullptr;
    lzma_stream strm = LZMA_STREAM_INIT;
    std::uint8_t inBuf[kInChunk];
    bool inEof = false;
    bool streamEnd = false;
};
#endif // DBSIM_HAVE_LZMA

} // namespace

const char *
traceCodecName(TraceCodec codec)
{
    switch (codec) {
      case TraceCodec::Raw: return "raw";
      case TraceCodec::Gzip: return "gzip";
      case TraceCodec::Xz: return "xz";
      case TraceCodec::Zstd: return "zstd";
    }
    return "?";
}

bool
traceCodecAvailable(TraceCodec codec)
{
    switch (codec) {
      case TraceCodec::Raw:
        return true;
      case TraceCodec::Gzip:
#ifdef DBSIM_HAVE_ZLIB
        return true;
#else
        return false;
#endif
      case TraceCodec::Xz:
#ifdef DBSIM_HAVE_LZMA
        return true;
#else
        return false;
#endif
      case TraceCodec::Zstd:
        return false;
    }
    return false;
}

TraceCodec
sniffTraceCodec(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    fatal_if(!f, "trace %s: cannot open", path.c_str());
    unsigned char magic[6] = {};
    std::size_t got = std::fread(magic, 1, sizeof(magic), f);
    std::fclose(f);

    if (got >= 2 && magic[0] == 0x1f && magic[1] == 0x8b) {
        return TraceCodec::Gzip;
    }
    static const unsigned char xz[6] = {0xfd, '7', 'z', 'X', 'Z', 0x00};
    if (got >= 6 && std::memcmp(magic, xz, 6) == 0) {
        return TraceCodec::Xz;
    }
    if (got >= 4 && magic[0] == 0x28 && magic[1] == 0xb5 &&
        magic[2] == 0x2f && magic[3] == 0xfd) {
        return TraceCodec::Zstd;
    }
    return TraceCodec::Raw;
}

std::unique_ptr<TraceDecoder>
openTraceDecoder(const std::string &path)
{
    TraceCodec codec = sniffTraceCodec(path);
    fatal_if(!traceCodecAvailable(codec),
             "trace %s: %s-compressed, but %s support is not compiled "
             "into this build; recompress with gzip or xz",
             path.c_str(), traceCodecName(codec), traceCodecName(codec));
    switch (codec) {
      case TraceCodec::Raw:
        break;
      case TraceCodec::Gzip:
#ifdef DBSIM_HAVE_ZLIB
        return std::make_unique<GzipDecoder>(path);
#else
        break;
#endif
      case TraceCodec::Xz:
#ifdef DBSIM_HAVE_LZMA
        return std::make_unique<XzDecoder>(path);
#else
        break;
#endif
      case TraceCodec::Zstd:
        break;
    }
    return std::make_unique<RawDecoder>(path);
}

void
writeTraceFile(const std::string &path,
               const std::vector<std::uint8_t> &bytes, TraceCodec codec)
{
    fatal_if(!traceCodecAvailable(codec),
             "cannot write %s: %s support is not compiled in",
             path.c_str(), traceCodecName(codec));
    switch (codec) {
      case TraceCodec::Raw: {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        fatal_if(!f, "cannot write %s", path.c_str());
        std::size_t put = std::fwrite(bytes.data(), 1, bytes.size(), f);
        fatal_if(put != bytes.size(), "short write to %s", path.c_str());
        std::fclose(f);
        return;
      }
      case TraceCodec::Gzip: {
#ifdef DBSIM_HAVE_ZLIB
        gzFile gz = gzopen(path.c_str(), "wb");
        fatal_if(!gz, "cannot write %s", path.c_str());
        if (!bytes.empty()) {
            int put = gzwrite(gz, bytes.data(),
                              static_cast<unsigned>(bytes.size()));
            fatal_if(put <= 0 ||
                         static_cast<std::size_t>(put) != bytes.size(),
                     "short gzip write to %s", path.c_str());
        }
        gzclose(gz);
#endif
        return;
      }
      case TraceCodec::Xz: {
#ifdef DBSIM_HAVE_LZMA
        std::size_t bound = lzma_stream_buffer_bound(bytes.size());
        std::vector<std::uint8_t> out(bound);
        std::size_t outPos = 0;
        lzma_ret ret = lzma_easy_buffer_encode(
            6, LZMA_CHECK_CRC64, nullptr, bytes.data(), bytes.size(),
            out.data(), &outPos, out.size());
        fatal_if(ret != LZMA_OK, "xz encode for %s failed (lzma_ret %d)",
                 path.c_str(), static_cast<int>(ret));
        out.resize(outPos);
        writeTraceFile(path, out, TraceCodec::Raw);
#endif
        return;
      }
      case TraceCodec::Zstd:
        return; // unreachable: traceCodecAvailable() rejected it
    }
}

} // namespace dbsim
