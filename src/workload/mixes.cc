#include "mixes.hh"

#include "common/rng.hh"
#include "workload/profiles.hh"

namespace dbsim {

std::vector<WorkloadMix>
makeMixes(std::uint32_t num_cores, std::uint32_t count, std::uint64_t seed)
{
    // Partition benchmarks by read-intensity class.
    std::vector<std::vector<const BenchProfile *>> by_class(3);
    for (const auto &p : allBenchmarks()) {
        by_class[static_cast<std::size_t>(p.readClass)].push_back(&p);
    }

    Rng rng(seed);
    std::vector<WorkloadMix> mixes;
    mixes.reserve(count);
    for (std::uint32_t m = 0; m < count; ++m) {
        WorkloadMix mix;
        mix.reserve(num_cores);
        for (std::uint32_t c = 0; c < num_cores; ++c) {
            const auto &cls = by_class[rng.below(3)];
            mix.push_back(cls[rng.below(cls.size())]->name);
        }
        mixes.push_back(std::move(mix));
    }
    return mixes;
}

std::string
mixLabel(const WorkloadMix &mix)
{
    std::string label;
    for (std::size_t i = 0; i < mix.size(); ++i) {
        if (i) {
            label += "+";
        }
        label += mix[i];
    }
    return label;
}

} // namespace dbsim
