/**
 * @file
 * Streaming front-end for ChampSim binary instruction traces. Each
 * 64-byte wire record is one retired instruction: the ip, two branch
 * flags, the architectural destination/source register lists, and up to
 * two store plus four load addresses. The trace is decoded through the
 * TraceDecoder seam (raw/gzip/xz) one bounded chunk at a time — a
 * billion-op file is never materialized — and converted to the TraceOp
 * contract the core model consumes: records without memory operands
 * accumulate into the next op's `gap`, loads whose source registers
 * overlap the previous memory instruction's destination registers are
 * flagged `dependent` (the pointer-chase heuristic), and the stream
 * loops forever by rewinding the decoder.
 *
 * Malformed input is a user error, never UB: a truncated tail record, a
 * flag byte outside {0,1} (the cheap bit-flip detector), an empty file,
 * and a gap run longer than `maxGapInstrs` (a sparse multi-GB file with
 * no memory accesses) all fatal() with the record index.
 */

#ifndef DBSIM_WORKLOAD_CHAMPSIM_TRACE_HH
#define DBSIM_WORKLOAD_CHAMPSIM_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/trace.hh"
#include "workload/trace_decode.hh"

namespace dbsim {

/** One ChampSim wire record (exact 64-byte on-disk layout). */
struct ChampSimRecord
{
    std::uint64_t ip;
    std::uint8_t isBranch;
    std::uint8_t branchTaken;
    std::uint8_t destRegs[2];
    std::uint8_t srcRegs[4];
    std::uint64_t destMem[2]; ///< store addresses (0 = unused slot)
    std::uint64_t srcMem[4];  ///< load addresses (0 = unused slot)
};

static_assert(sizeof(ChampSimRecord) == 64,
              "ChampSim wire records are exactly 64 bytes");
static_assert(offsetof(ChampSimRecord, destMem) == 16 &&
                  offsetof(ChampSimRecord, srcMem) == 32,
              "ChampSim wire layout requires no padding");

class ChampSimTrace : public TraceSource
{
  public:
    /** Longest tolerated run of records with no memory operand. */
    static constexpr std::uint64_t kDefaultMaxGap = 4'000'000;

    explicit ChampSimTrace(const std::string &path,
                           std::uint64_t max_gap_instrs = kDefaultMaxGap);
    ~ChampSimTrace() override;

    TraceOp next() override;
    std::uint64_t opsEmitted() const override { return nOps; }

    std::uint64_t recordsParsed() const { return nRecords; }
    std::uint64_t loops() const { return nLoops; }

    /** Serialize records to the wire format (tests, gen_trace). */
    static std::vector<std::uint8_t>
    encode(const std::vector<ChampSimRecord> &records);

    /** Write records to `path` through `codec`. */
    static void write(const std::string &path,
                      const std::vector<ChampSimRecord> &records,
                      TraceCodec codec = TraceCodec::Raw);

  private:
    /** Records per decode chunk (64 KiB window — the memory bound). */
    static constexpr std::size_t kChunkRecords = 1024;

    void refill();
    void parseOneRecord();

    std::unique_ptr<TraceDecoder> dec;
    std::uint64_t maxGap;

    std::vector<ChampSimRecord> buf;
    std::size_t bufPos = 0;
    std::size_t bufCount = 0;

    /** Ops decoded from the current record, drained by next(). */
    TraceOp pending[6];
    std::size_t pendingPos = 0;
    std::size_t pendingCount = 0;

    std::uint64_t pendingGap = 0;
    std::uint8_t prevDestRegs[2] = {0, 0};

    std::uint64_t nRecords = 0;
    std::uint64_t nOps = 0;
    std::uint64_t nOpsThisPass = 0;
    std::uint64_t nLoops = 0;
};

} // namespace dbsim

#endif // DBSIM_WORKLOAD_CHAMPSIM_TRACE_HH
