/**
 * @file
 * Benchmark profiles. The paper drives its evaluation with Pinpoint
 * traces of SPEC CPU2006 and STREAM; those traces are not available, so
 * each benchmark is modeled as a parameterized synthetic generator that
 * reproduces the characteristics the evaluated mechanisms differentiate
 * on: memory intensity (MPKI), write intensity (WPKI), LLC reuse, and
 * the spatial/DRAM-row locality of the read and write streams. See
 * DESIGN.md for the substitution rationale.
 *
 * Access behaviour is a mixture over four region types:
 *  - hot:    small region that fits in L1/L2 (near hits)
 *  - warm:   region comparable to the LLC (partial LLC reuse)
 *  - stream: sequential sweep over a huge region (compulsory misses,
 *            high DRAM-row locality)
 *  - cold:   uniform random over a huge region (misses, low locality)
 */

#ifndef DBSIM_WORKLOAD_PROFILES_HH
#define DBSIM_WORKLOAD_PROFILES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dbsim {

/** Probability mixture over region types (must sum to 1). */
struct Mixture
{
    double hot = 0.0;
    double warm = 0.0;
    double stream = 0.0;
    double cold = 0.0;
};

/** Low/medium/high intensity classes (workload-mix methodology). */
enum class Intensity : std::uint8_t { Low, Medium, High };

/** One benchmark's generative parameters. */
struct BenchProfile
{
    std::string name;
    double memFrac;    ///< memory ops per instruction
    double writeFrac;  ///< stores per memory op
    double depFrac;    ///< fraction of loads dependent on the prior op
    Mixture readMix;
    Mixture writeMix;
    std::uint64_t hotBytes;
    std::uint64_t warmBytes;
    std::uint64_t coldBytes;
    std::uint64_t streamBytes;
    /**
     * Concurrently active DRAM rows in the read/write streams. 1 means
     * a pure sequential sweep; larger values interleave blocks of many
     * rows, which is what scatters the baseline's writeback order (and
     * what AWB/DBI re-coalesce).
     */
    std::uint32_t readStreamRows;
    std::uint32_t writeStreamRows;
    Intensity readClass;   ///< read intensity class (for mixes)
    Intensity writeClass;  ///< write intensity class (for mixes)
};

/** All modeled benchmarks (SPEC CPU2006 subset + STREAM, Figure 6). */
const std::vector<BenchProfile> &allBenchmarks();

/** Look up a profile by name; fatal() if unknown. */
const BenchProfile &benchmarkByName(const std::string &name);

/**
 * Non-fatal lookup: nullptr when `name` is unknown. For long-lived
 * callers (the farm service) that must reject bad input and keep
 * serving.
 */
const BenchProfile *findBenchmark(const std::string &name);

} // namespace dbsim

#endif // DBSIM_WORKLOAD_PROFILES_HH
