/**
 * @file
 * SMARTS-style sampling wrapper around any TraceSource. The wrapper
 * owns the underlying trace and splits its op stream into two regimes:
 * measured ops are handed to the detailed core model unchanged, while
 * fast-forward ops are consumed here and pushed through a functional
 * warming callback (tags/DBI/dcache/predictor state, zero events, zero
 * simulated cycles). `ffOps` ops are warmed before the first measured
 * op; with a period configured, every window of `sampleOps` measured
 * ops is followed by `periodOps - sampleOps` warmed ops. A disabled
 * config never constructs a wrapper at all, so plain runs are untouched
 * by design — the sampling differential suite then proves the composed
 * plumbing is bit-identical end to end.
 */

#ifndef DBSIM_WORKLOAD_SAMPLED_TRACE_HH
#define DBSIM_WORKLOAD_SAMPLED_TRACE_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.hh"
#include "cpu/trace.hh"

namespace dbsim {

/** Fast-forward + periodic-sampling knobs (part of SystemConfig). */
struct SamplingConfig
{
    /** Ops functionally warmed before the first measured op. */
    std::uint64_t ffOps = 0;
    /** Measured ops per sampling window (0 with periodOps=0: off). */
    std::uint64_t sampleOps = 0;
    /** Window period in ops; warms periodOps - sampleOps per window. */
    std::uint64_t periodOps = 0;

    bool enabled() const { return ffOps > 0 || periodOps > 0; }
};

class SampledTrace : public TraceSource
{
  public:
    /** Functional warming sink: (address, isWrite), zero sim time. */
    using WarmFn = std::function<void(Addr, bool)>;

    SampledTrace(std::unique_ptr<TraceSource> inner_,
                 const SamplingConfig &cfg_, WarmFn warm_);

    TraceOp next() override;

    std::uint64_t opsEmitted() const override
    {
        return nWarmed + nMeasured;
    }

    std::uint64_t opsWarmed() const { return nWarmed; }
    std::uint64_t opsMeasured() const { return nMeasured; }
    TraceSource &inner() { return *src; }

  private:
    void warmSpan(std::uint64_t n);

    std::unique_ptr<TraceSource> src;
    SamplingConfig cfg;
    WarmFn warm;

    bool started = false;
    std::uint64_t windowMeasured = 0;
    std::uint64_t nWarmed = 0;
    std::uint64_t nMeasured = 0;
};

} // namespace dbsim

#endif // DBSIM_WORKLOAD_SAMPLED_TRACE_HH
