#include "workload/champsim_trace.hh"

#include <cstring>

#include "common/logging.hh"

namespace dbsim {

ChampSimTrace::ChampSimTrace(const std::string &path,
                             std::uint64_t max_gap_instrs)
    : dec(openTraceDecoder(path)), maxGap(max_gap_instrs),
      buf(kChunkRecords)
{
    fatal_if(maxGap == 0, "trace %s: max gap must be positive",
             path.c_str());
}

ChampSimTrace::~ChampSimTrace() = default;

void
ChampSimTrace::refill()
{
    const std::size_t want = kChunkRecords * sizeof(ChampSimRecord);
    std::uint8_t *raw = reinterpret_cast<std::uint8_t *>(buf.data());
    std::size_t got = 0;
    while (got < want) {
        std::size_t r = dec->read(raw + got, want - got);
        if (r == 0) {
            break;
        }
        got += r;
    }
    if (got == 0) {
        // End of a full pass. A trace that produced no ops would loop
        // forever feeding the core nothing; make that a user error.
        fatal_if(nRecords == 0, "trace %s: empty file",
                 dec->path().c_str());
        fatal_if(nOpsThisPass == 0,
                 "trace %s: no memory accesses in %llu records; not a "
                 "usable trace", dec->path().c_str(),
                 static_cast<unsigned long long>(nRecords));
        dec->rewind();
        ++nLoops;
        nOpsThisPass = 0;
        // Reset cross-record carry so every pass decodes identically.
        pendingGap = 0;
        prevDestRegs[0] = prevDestRegs[1] = 0;
        while (got < want) {
            std::size_t r = dec->read(raw + got, want - got);
            if (r == 0) {
                break;
            }
            got += r;
        }
        fatal_if(got == 0, "trace %s: empty after rewind",
                 dec->path().c_str());
    }
    fatal_if(got % sizeof(ChampSimRecord) != 0,
             "trace %s: truncated record after %llu records (%zu "
             "trailing bytes)", dec->path().c_str(),
             static_cast<unsigned long long>(nRecords),
             got % sizeof(ChampSimRecord));
    bufCount = got / sizeof(ChampSimRecord);
    bufPos = 0;
}

void
ChampSimTrace::parseOneRecord()
{
    if (bufPos == bufCount) {
        refill();
    }
    const ChampSimRecord &rec = buf[bufPos++];
    ++nRecords;

    // Flag bytes are 0/1 by construction in every ChampSim writer; any
    // other value means corruption (bit flips, misaligned garbage).
    fatal_if(rec.isBranch > 1 || rec.branchTaken > 1,
             "trace %s: record %llu: invalid flag bytes (%u/%u); "
             "corrupt or not a ChampSim trace", dec->path().c_str(),
             static_cast<unsigned long long>(nRecords - 1),
             rec.isBranch, rec.branchTaken);

    bool any_mem = false;
    for (std::uint64_t a : rec.srcMem) {
        any_mem |= a != 0;
    }
    for (std::uint64_t a : rec.destMem) {
        any_mem |= a != 0;
    }
    if (!any_mem) {
        ++pendingGap;
        fatal_if(pendingGap > maxGap,
                 "trace %s: %llu consecutive records with no memory "
                 "access at record %llu; corrupt or unusable trace",
                 dec->path().c_str(),
                 static_cast<unsigned long long>(pendingGap),
                 static_cast<unsigned long long>(nRecords - 1));
        return;
    }

    // Pointer-chase heuristic: a load depends on the previous memory
    // instruction when one of its source registers was written by it.
    bool dep = false;
    for (std::uint8_t s : rec.srcRegs) {
        if (s != 0 && (s == prevDestRegs[0] || s == prevDestRegs[1])) {
            dep = true;
        }
    }

    pendingPos = 0;
    pendingCount = 0;
    bool first = true;
    for (std::uint64_t a : rec.srcMem) {
        if (a == 0) {
            continue;
        }
        pending[pendingCount++] = TraceOp{
            first ? static_cast<std::uint32_t>(pendingGap) : 0,
            false, dep, a};
        first = false;
    }
    for (std::uint64_t a : rec.destMem) {
        if (a == 0) {
            continue;
        }
        pending[pendingCount++] = TraceOp{
            first ? static_cast<std::uint32_t>(pendingGap) : 0,
            true, false, a};
        first = false;
    }
    pendingGap = 0;
    prevDestRegs[0] = rec.destRegs[0];
    prevDestRegs[1] = rec.destRegs[1];
}

TraceOp
ChampSimTrace::next()
{
    while (pendingPos == pendingCount) {
        parseOneRecord();
    }
    ++nOps;
    ++nOpsThisPass;
    return pending[pendingPos++];
}

std::vector<std::uint8_t>
ChampSimTrace::encode(const std::vector<ChampSimRecord> &records)
{
    std::vector<std::uint8_t> bytes(records.size() *
                                    sizeof(ChampSimRecord));
    if (!records.empty()) {
        std::memcpy(bytes.data(), records.data(), bytes.size());
    }
    return bytes;
}

void
ChampSimTrace::write(const std::string &path,
                     const std::vector<ChampSimRecord> &records,
                     TraceCodec codec)
{
    writeTraceFile(path, encode(records), codec);
}

} // namespace dbsim
