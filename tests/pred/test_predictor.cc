/** @file Tests for the Skip Cache epoch miss predictor (Section 3.2). */

#include <gtest/gtest.h>

#include "pred/miss_predictor.hh"

namespace dbsim {
namespace {

SkipPredictorConfig
testConfig()
{
    SkipPredictorConfig cfg;
    cfg.missThreshold = 0.95;
    cfg.epochCycles = 1000;
    cfg.sampleInterval = 64;
    cfg.numThreads = 2;
    return cfg;
}

TEST(SkipPredictor, NoBypassWithoutEvidence)
{
    SkipPredictor pred(testConfig());
    EXPECT_FALSE(pred.predictMiss(5, 0, 10));
}

TEST(SkipPredictor, SampledSetsNeverBypass)
{
    SkipPredictor pred(testConfig());
    // Saturate thread 0 with misses in a sampled set, cross an epoch.
    for (int i = 0; i < 100; ++i) {
        pred.recordOutcome(0, 0, /*hit=*/false, 10);
    }
    EXPECT_FALSE(pred.predictMiss(0, 0, 2000));   // sampled set
    EXPECT_TRUE(pred.predictMiss(5, 0, 2000));    // ordinary set
    EXPECT_EQ(pred.statPredictedMiss.value(), 1u);
}

TEST(SkipPredictor, HighMissRateEnablesBypassNextEpoch)
{
    SkipPredictor pred(testConfig());
    for (int i = 0; i < 50; ++i) {
        pred.recordOutcome(64, 0, false, 100);
    }
    // Still in epoch 0: no bypass yet.
    EXPECT_FALSE(pred.predictMiss(3, 0, 900));
    // Epoch 1: bypass active for thread 0 only.
    EXPECT_TRUE(pred.predictMiss(3, 0, 1100));
    EXPECT_TRUE(pred.bypassing(0));
    EXPECT_FALSE(pred.predictMiss(3, 1, 1100));
    EXPECT_FALSE(pred.bypassing(1));
}

TEST(SkipPredictor, MissRateBelowThresholdNoBypass)
{
    SkipPredictor pred(testConfig());
    // 50% miss rate < 0.95 threshold.
    for (int i = 0; i < 40; ++i) {
        pred.recordOutcome(128, 0, i % 2 == 0, 100);
    }
    EXPECT_FALSE(pred.predictMiss(3, 0, 1100));
}

TEST(SkipPredictor, BypassTurnsOffWhenHitsReturn)
{
    SkipPredictor pred(testConfig());
    for (int i = 0; i < 50; ++i) {
        pred.recordOutcome(0, 0, false, 100);
    }
    ASSERT_TRUE(pred.predictMiss(3, 0, 1100));
    // In epoch 1 the sampled sets now hit.
    for (int i = 0; i < 50; ++i) {
        pred.recordOutcome(0, 0, true, 1200);
    }
    EXPECT_FALSE(pred.predictMiss(3, 0, 2100));
}

TEST(SkipPredictor, TooFewSamplesMeansNoBypass)
{
    SkipPredictor pred(testConfig());
    for (int i = 0; i < 5; ++i) {  // below the 16-access floor
        pred.recordOutcome(0, 0, false, 100);
    }
    EXPECT_FALSE(pred.predictMiss(3, 0, 1100));
}

TEST(SkipPredictor, EpochCounterAdvances)
{
    SkipPredictor pred(testConfig());
    pred.predictMiss(0, 0, 100);
    pred.predictMiss(0, 0, 5500);
    EXPECT_GE(pred.statEpochs.value(), 1u);
}

TEST(NeverMissPredictor, NeverPredictsMiss)
{
    NeverMissPredictor pred;
    EXPECT_FALSE(pred.predictMiss(0, 0, 0));
    EXPECT_FALSE(pred.isSampledSet(0));
}

} // namespace
} // namespace dbsim
