/**
 * @file
 * Tests for the storage model — including the headline Table 4 numbers:
 * tag-store bit reduction of 44%/26% and total cache reduction of 7%/4%
 * for alpha = 1/4 and 1/2 with ECC, and 2%/1% / ~0.1% without.
 */

#include <gtest/gtest.h>

#include "model/storage_model.hh"

namespace dbsim {
namespace {

StorageParams
table4Params(double alpha, bool ecc)
{
    StorageParams p;
    p.cacheBytes = 16ull << 20;
    p.assoc = 32;
    p.physAddrBits = 40;
    p.alpha = alpha;
    p.granularity = 64;
    p.dbiAssoc = 16;
    p.withEcc = ecc;
    return p;
}

TEST(StorageModel, Table4WithEccAlphaQuarter)
{
    StorageModel m(table4Params(0.25, true));
    EXPECT_NEAR(m.tagStoreReduction(), 0.44, 0.02);
    EXPECT_NEAR(m.cacheReduction(), 0.07, 0.01);
}

TEST(StorageModel, Table4WithEccAlphaHalf)
{
    StorageModel m(table4Params(0.5, true));
    EXPECT_NEAR(m.tagStoreReduction(), 0.26, 0.02);
    EXPECT_NEAR(m.cacheReduction(), 0.04, 0.01);
}

TEST(StorageModel, Table4WithoutEccAlphaQuarter)
{
    StorageModel m(table4Params(0.25, false));
    EXPECT_NEAR(m.tagStoreReduction(), 0.02, 0.01);
    EXPECT_NEAR(m.cacheReduction(), 0.001, 0.002);
}

TEST(StorageModel, Table4WithoutEccAlphaHalf)
{
    StorageModel m(table4Params(0.5, false));
    EXPECT_NEAR(m.tagStoreReduction(), 0.01, 0.008);
    EXPECT_NEAR(m.cacheReduction(), 0.0, 0.002);
}

TEST(StorageModel, GeometryDerivation)
{
    StorageModel m(table4Params(0.25, true));
    EXPECT_EQ(m.numBlocks(), (16ull << 20) / 64);
    // alpha/4 of 256K blocks, 64 blocks per entry -> 1024 entries.
    EXPECT_EQ(m.numDbiEntries(), 1024u);
}

TEST(StorageModel, BaselineEntryLayout)
{
    // 16MB, 32-way, 40-bit: 8192 sets -> 13 set bits, 6 offset ->
    // tag 21 + valid 1 + dirty 1 + repl 5 = 28 (+64 ECC).
    StorageModel with(table4Params(0.25, true));
    EXPECT_EQ(with.baselineTagEntryBits(), 28u + 64u);
    StorageModel without(table4Params(0.25, false));
    EXPECT_EQ(without.baselineTagEntryBits(), 28u);
}

TEST(StorageModel, DbiEntryLayout)
{
    // 1024 entries / 16-way = 64 sets -> 6 set bits; region 4KB -> 12
    // offset bits; row tag = 40-12-6 = 22; +valid +64 vector +4 repl.
    StorageModel m(table4Params(0.25, false));
    EXPECT_EQ(m.dbiEntryBits(), 1u + 22u + 64u + 4u);
}

TEST(StorageModel, DbiAlwaysSmallerMetadataWithEcc)
{
    // Property: across sizes and alphas, the DBI organization never
    // costs more metadata bits than the baseline when ECC is modeled.
    for (std::uint64_t mb : {2, 4, 8, 16, 32}) {
        for (double alpha : {0.125, 0.25, 0.5}) {
            StorageParams p = table4Params(alpha, true);
            p.cacheBytes = mb << 20;
            StorageModel m(p);
            EXPECT_GT(m.tagStoreReduction(), 0.0)
                << mb << "MB alpha " << alpha;
        }
    }
}

TEST(StorageModel, DataStoreUnchanged)
{
    StorageModel m(table4Params(0.25, true));
    EXPECT_EQ(m.baseline().dataStoreBits, m.withDbi().dataStoreBits);
}

} // namespace
} // namespace dbsim
