/** @file Tests for the CACTI-lite analytical SRAM model. */

#include <gtest/gtest.h>

#include "model/cacti_lite.hh"

namespace dbsim {
namespace {

TEST(CactiLite, MonotonicInBits)
{
    CactiLite model;
    ArrayEstimate prev = model.estimate(1 << 10);
    for (std::uint64_t bits = 1 << 12; bits <= (1ull << 27); bits <<= 2) {
        ArrayEstimate cur = model.estimate(bits);
        EXPECT_GT(cur.areaMm2, prev.areaMm2);
        EXPECT_GE(cur.latencyCycles, prev.latencyCycles);
        EXPECT_GT(cur.readEnergyPj, prev.readEnergyPj);
        EXPECT_GT(cur.leakageMw, prev.leakageMw);
        prev = cur;
    }
}

TEST(CactiLite, LatencyFloor)
{
    CactiLite model;
    EXPECT_GE(model.estimate(64).latencyCycles, 2.0);
}

TEST(CactiLite, LlcTagLatenciesRoughlyTable1)
{
    // A 2MB LLC tag store is ~0.9Mbit and should read in ~10 cycles; a
    // 16MB one (~7.2Mbit) in ~14 (Table 1). DBI (~100Kbit) ~4.
    CactiLite model;
    double lat_2mb = model.estimate(900ull << 10).latencyCycles;
    double lat_16mb = model.estimate(7200ull << 10).latencyCycles;
    double lat_dbi = model.estimate(100ull << 10).latencyCycles;
    EXPECT_NEAR(lat_2mb, 10.0, 2.0);
    EXPECT_NEAR(lat_16mb, 14.0, 2.0);
    EXPECT_LT(lat_dbi, lat_2mb - 3.0);
}

TEST(CactiLite, WriteCostsMoreThanRead)
{
    CactiLite model;
    ArrayEstimate e = model.estimate(1 << 20);
    EXPECT_GT(e.writeEnergyPj, e.readEnergyPj);
}

TEST(CactiLite, SmallDbiIsSmallFractionOfCache)
{
    // Section 6.3: DBI adds marginal static power to a 16MB cache.
    CactiLite model;
    double cache_leak = model.estimate(16ull << 23).leakageMw;  // data
    double dbi_leak = model.estimate(100ull << 10).leakageMw;
    EXPECT_LT(dbi_leak / cache_leak, 0.02);
}

} // namespace
} // namespace dbsim
