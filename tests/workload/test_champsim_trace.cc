/**
 * @file
 * ChampSim streaming front-end tests: wire-format round trips through
 * every codec, the record -> TraceOp conversion rules (gap
 * accumulation, load-before-store emission, the pointer-chase
 * dependence heuristic), loop bit-identity, and the parser-robustness
 * suite — truncated tails, bit-flipped flag bytes, garbage, empty
 * files, and gap-run overflow must all fatal() cleanly, and a multi-GB
 * sparse file must stream in bounded memory, never materialize.
 */

#include <gtest/gtest.h>

#include <sys/resource.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "workload/champsim_trace.hh"
#include "workload/trace_decode.hh"

namespace dbsim {
namespace {

/** Peak RSS of this process in bytes (Linux RU_MAXRSS is in KB). */
std::uint64_t
peakRssBytes()
{
    struct rusage ru {};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
}

ChampSimRecord
loadRec(std::uint64_t addr, std::uint8_t dest_reg = 0,
        std::uint8_t src_reg = 0)
{
    ChampSimRecord r{};
    r.ip = 0x400000;
    r.destRegs[0] = dest_reg;
    r.srcRegs[0] = src_reg;
    r.srcMem[0] = addr;
    return r;
}

ChampSimRecord
storeRec(std::uint64_t addr, std::uint8_t dest_reg = 0)
{
    ChampSimRecord r{};
    r.ip = 0x400000;
    r.destRegs[0] = dest_reg;
    r.destMem[0] = addr;
    return r;
}

ChampSimRecord
nopRec(bool branch = false)
{
    ChampSimRecord r{};
    r.ip = 0x400000;
    r.isBranch = branch;
    r.branchTaken = branch;
    return r;
}

class ChampSimTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "dbsim_champsim_test.champsim";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(ChampSimTraceTest, RoundTripBasics)
{
    ChampSimTrace::write(path, {loadRec(0x1000), storeRec(0x2000),
                                loadRec(0x3000)});
    ChampSimTrace trace(path);

    TraceOp a = trace.next();
    EXPECT_FALSE(a.isWrite);
    EXPECT_EQ(a.addr, 0x1000u);
    EXPECT_EQ(a.gap, 0u);

    TraceOp b = trace.next();
    EXPECT_TRUE(b.isWrite);
    EXPECT_EQ(b.addr, 0x2000u);

    TraceOp c = trace.next();
    EXPECT_EQ(c.addr, 0x3000u);
    EXPECT_EQ(trace.opsEmitted(), 3u);
}

TEST_F(ChampSimTraceTest, NonMemoryRecordsBecomeGap)
{
    ChampSimTrace::write(path, {nopRec(), nopRec(true), nopRec(),
                                loadRec(0x1000), storeRec(0x2000)});
    ChampSimTrace trace(path);
    TraceOp a = trace.next();
    EXPECT_EQ(a.gap, 3u);
    EXPECT_EQ(a.addr, 0x1000u);
    TraceOp b = trace.next();
    EXPECT_EQ(b.gap, 0u);
    EXPECT_EQ(b.addr, 0x2000u);
}

TEST_F(ChampSimTraceTest, MultiOperandRecordEmitsLoadsThenStores)
{
    ChampSimRecord r{};
    r.ip = 0x400000;
    r.srcMem[0] = 0x1000;
    r.srcMem[2] = 0x2000;  // slot order preserved, holes skipped
    r.destMem[1] = 0x3000;
    ChampSimTrace::write(path, {nopRec(), r});
    ChampSimTrace trace(path);

    TraceOp a = trace.next();
    EXPECT_FALSE(a.isWrite);
    EXPECT_EQ(a.addr, 0x1000u);
    EXPECT_EQ(a.gap, 1u);  // only the record's first op carries gap
    TraceOp b = trace.next();
    EXPECT_FALSE(b.isWrite);
    EXPECT_EQ(b.addr, 0x2000u);
    EXPECT_EQ(b.gap, 0u);
    TraceOp c = trace.next();
    EXPECT_TRUE(c.isWrite);
    EXPECT_EQ(c.addr, 0x3000u);
    EXPECT_EQ(c.gap, 0u);
}

TEST_F(ChampSimTraceTest, PointerChaseHeuristic)
{
    // Record 0 writes register 5; record 1 loads through register 5
    // (dependent); record 2's source registers don't overlap (not);
    // register 0 never creates dependences.
    ChampSimTrace::write(path, {loadRec(0x1000, /*dest=*/5),
                                loadRec(0x2000, /*dest=*/7, /*src=*/5),
                                loadRec(0x3000, /*dest=*/0, /*src=*/5),
                                loadRec(0x4000, /*dest=*/0, /*src=*/0)});
    ChampSimTrace trace(path);
    EXPECT_FALSE(trace.next().dependent);
    EXPECT_TRUE(trace.next().dependent);
    EXPECT_FALSE(trace.next().dependent);  // prev dest was 7, src is 5
    EXPECT_FALSE(trace.next().dependent);  // register 0 excluded
}

TEST_F(ChampSimTraceTest, LoopsBitIdentically)
{
    ChampSimTrace::write(path, {nopRec(), loadRec(0x1000, 5),
                                loadRec(0x2000, 0, 5), storeRec(0x3000),
                                nopRec(), nopRec(), loadRec(0x4000)});
    ChampSimTrace trace(path);
    std::vector<TraceOp> first;
    for (int i = 0; i < 4; ++i) {
        first.push_back(trace.next());
    }
    EXPECT_EQ(trace.loops(), 0u);
    // Two more full passes must replay the same ops exactly: the gap
    // and dependence carry state resets at each rewind.
    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t i = 0; i < first.size(); ++i) {
            TraceOp got = trace.next();
            EXPECT_EQ(got.gap, first[i].gap) << "pass " << pass;
            EXPECT_EQ(got.isWrite, first[i].isWrite);
            EXPECT_EQ(got.dependent, first[i].dependent);
            EXPECT_EQ(got.addr, first[i].addr);
        }
    }
    EXPECT_EQ(trace.loops(), 2u);
}

TEST_F(ChampSimTraceTest, CompressedRoundTripsMatchRaw)
{
    std::vector<ChampSimRecord> recs;
    for (int i = 0; i < 5000; ++i) {
        recs.push_back(i % 7 == 0 ? nopRec()
                       : i % 3 == 0
                           ? storeRec(0x1000 + 64ull * i)
                           : loadRec(0x100000 + 64ull * i,
                                     static_cast<std::uint8_t>(i % 32),
                                     static_cast<std::uint8_t>(i % 29)));
    }
    ChampSimTrace::write(path, recs);
    ChampSimTrace raw(path);
    std::vector<TraceOp> want;
    for (int i = 0; i < 6000; ++i) {  // crosses the loop boundary
        want.push_back(raw.next());
    }

    for (TraceCodec codec : {TraceCodec::Gzip, TraceCodec::Xz}) {
        if (!traceCodecAvailable(codec)) {
            continue;  // build without the library: covered elsewhere
        }
        std::string cpath = path + (codec == TraceCodec::Gzip ? ".gz"
                                                              : ".xz");
        ChampSimTrace::write(cpath, recs, codec);
        ChampSimTrace trace(cpath);
        for (std::size_t i = 0; i < want.size(); ++i) {
            TraceOp got = trace.next();
            ASSERT_EQ(got.addr, want[i].addr)
                << traceCodecName(codec) << " op " << i;
            ASSERT_EQ(got.gap, want[i].gap);
            ASSERT_EQ(got.isWrite, want[i].isWrite);
            ASSERT_EQ(got.dependent, want[i].dependent);
        }
        std::remove(cpath.c_str());
    }
}

TEST_F(ChampSimTraceTest, UnavailableCodecIsCleanFatal)
{
    if (traceCodecAvailable(TraceCodec::Zstd)) {
        GTEST_SKIP() << "zstd support compiled in";
    }
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // A zstd magic header on a build without the library must refuse
    // with the recompress hint, not crash or misparse.
    std::ofstream out(path, std::ios::binary);
    const unsigned char magic[] = {0x28, 0xb5, 0x2f, 0xfd, 0, 0, 0, 0};
    out.write(reinterpret_cast<const char *>(magic), sizeof(magic));
    out.close();
    EXPECT_DEATH(ChampSimTrace trace(path),
                 "not compiled into this build");
}

// -- Parser-robustness suite -----------------------------------------

using ChampSimDeathTest = ChampSimTraceTest;

TEST_F(ChampSimDeathTest, EmptyFileIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::ofstream(path, std::ios::binary).close();
    EXPECT_DEATH(
        {
            ChampSimTrace trace(path);
            trace.next();
        },
        "empty file");
}

TEST_F(ChampSimDeathTest, TruncatedTailRecordIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    ChampSimTrace::write(path, {loadRec(0x1000), storeRec(0x2000)});
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("garbagetail", 11);  // 11 trailing bytes: not a record
    out.close();
    EXPECT_DEATH(
        {
            ChampSimTrace trace(path);
            while (true) {
                trace.next();
            }
        },
        "truncated record .*11 trailing bytes");
}

TEST_F(ChampSimDeathTest, BitFlippedFlagByteIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::vector<ChampSimRecord> recs = {loadRec(0x1000),
                                        loadRec(0x2000)};
    recs[1].isBranch = 0x40;  // flipped bit: not a boolean
    ChampSimTrace::write(path, recs);
    EXPECT_DEATH(
        {
            ChampSimTrace trace(path);
            while (true) {
                trace.next();
            }
        },
        "invalid flag bytes");
}

TEST_F(ChampSimDeathTest, GarbageBytesAreFatalNotUb)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // 4KB of non-record bytes. Every 64-byte frame has 0xbd in its
    // flag positions, so the flag check rejects the very first record.
    std::ofstream out(path, std::ios::binary);
    for (int i = 0; i < 4096; ++i) {
        out.put(static_cast<char>(0xbd));
    }
    out.close();
    EXPECT_DEATH(
        {
            ChampSimTrace trace(path);
            while (true) {
                trace.next();
            }
        },
        "corrupt or not a ChampSim trace");
}

TEST_F(ChampSimDeathTest, CorruptGzipStreamIsFatal)
{
    if (!traceCodecAvailable(TraceCodec::Gzip)) {
        GTEST_SKIP() << "no zlib in this build";
    }
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // gzip magic followed by junk: the decoder must fatal, not hand
    // garbage to the parser.
    std::ofstream out(path, std::ios::binary);
    out.put(0x1f);
    out.put(static_cast<char>(0x8b));
    for (int i = 0; i < 256; ++i) {
        out.put(static_cast<char>(i * 37));
    }
    out.close();
    EXPECT_DEATH(
        {
            ChampSimTrace trace(path);
            while (true) {
                trace.next();
            }
        },
        "trace");
}

TEST_F(ChampSimDeathTest, GapRunPastCapIsFatal)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::vector<ChampSimRecord> recs(200, nopRec());
    recs.push_back(loadRec(0x1000));
    ChampSimTrace::write(path, recs);
    EXPECT_DEATH(
        {
            ChampSimTrace trace(path, /*max_gap_instrs=*/100);
            trace.next();
        },
        "consecutive records with no memory access");
}

TEST_F(ChampSimDeathTest, AllNopTraceIsFatalNotInfiniteLoop)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    // A trace with records but no memory accesses must be rejected at
    // the first loop boundary instead of spinning forever.
    ChampSimTrace::write(path, std::vector<ChampSimRecord>(64,
                                                           nopRec()));
    EXPECT_DEATH(
        {
            ChampSimTrace trace(path);
            trace.next();
        },
        "no memory accesses in 64 records");
}

/**
 * Bounded-memory law: a multi-GB trace must stream, never materialize.
 * The file is 2GB of zero records (all-zero bytes parse as valid
 * non-memory records) with one real access every 4M records; peak RSS
 * may not grow by more than a small constant while two full passes are
 * consumed. Written in dense 64KB blocks — hole-backed sparse files
 * read pathologically slowly on some hosts, and the parser has to
 * consume every byte either way.
 */
TEST_F(ChampSimTraceTest, MultiGbFileStreamsBounded)
{
    const std::uint64_t kRecords = 32ull << 20;  // 2GB of records
    const std::uint64_t kEvery = 4ull << 20;
    const std::uint64_t kPerBlock = 1024;  // 64KB write blocks
    {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out);
        std::vector<char> block(kPerBlock * 64, 0);
        ChampSimRecord probe = loadRec(0x1000);
        for (std::uint64_t b = 0; b < kRecords / kPerBlock; ++b) {
            // Probe records land on indexes kEvery-1, 2*kEvery-1, ...
            // — always the last record of their 64KB block.
            bool has_probe = (b + 1) % (kEvery / kPerBlock) == 0;
            if (has_probe) {
                std::uint64_t i = (b + 1) * kPerBlock - 1;
                probe.srcMem[0] = 0x1000 + i * 64;
                std::memcpy(block.data() + (kPerBlock - 1) * 64, &probe,
                            64);
            }
            out.write(block.data(),
                      static_cast<std::streamsize>(block.size()));
            if (has_probe) {
                std::memset(block.data() + (kPerBlock - 1) * 64, 0, 64);
            }
        }
        ASSERT_TRUE(out);
    }

    const std::uint64_t before = peakRssBytes();
    ChampSimTrace trace(path, /*max_gap_instrs=*/kEvery);
    const std::uint64_t per_pass = kRecords / kEvery;
    for (std::uint64_t i = 0; i < 2 * per_pass; ++i) {
        TraceOp op = trace.next();
        EXPECT_EQ(op.addr % 64, 0u);
        EXPECT_GE(op.addr, 0x1000u);
    }
    EXPECT_EQ(trace.loops(), 1u);
    const std::uint64_t after = peakRssBytes();

    // The 2GB file may contribute only the 64KB decode chunk (plus
    // allocator noise). 64MB of headroom is well over an order of
    // magnitude below materializing the file.
    EXPECT_LT(after - before, 64ull << 20)
        << "streaming a 2GB trace grew peak RSS by "
        << (after - before) / (1 << 20) << " MB";
}

} // namespace
} // namespace dbsim
