/** @file Tests for file-backed traces (format, looping, round trip). */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "workload/file_trace.hh"

namespace dbsim {
namespace {

class FileTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "dbsim_trace_test.txt";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(FileTraceTest, ParsesBasicFormat)
{
    std::ofstream(path) << "# comment\n"
                           "3 R 1000\n"
                           "0 W 1040  # trailing comment\n"
                           "\n"
                           "7 D 2000\n";
    FileTrace trace(path);
    EXPECT_EQ(trace.size(), 3u);

    TraceOp a = trace.next();
    EXPECT_EQ(a.gap, 3u);
    EXPECT_FALSE(a.isWrite);
    EXPECT_FALSE(a.dependent);
    EXPECT_EQ(a.addr, 0x1000u);

    TraceOp b = trace.next();
    EXPECT_TRUE(b.isWrite);
    EXPECT_EQ(b.addr, 0x1040u);

    TraceOp c = trace.next();
    EXPECT_TRUE(c.dependent);
    EXPECT_FALSE(c.isWrite);
    EXPECT_EQ(c.addr, 0x2000u);
}

TEST_F(FileTraceTest, LoopsAtEnd)
{
    std::ofstream(path) << "1 R 100\n2 W 200\n";
    FileTrace trace(path);
    trace.next();
    trace.next();
    TraceOp again = trace.next();  // wrapped
    EXPECT_EQ(again.addr, 0x100u);
}

TEST_F(FileTraceTest, WriteReadRoundTrip)
{
    std::vector<TraceOp> records = {
        {5, false, false, 0xdeadbea0},
        {0, true, false, 0x40},
        {9, false, true, 0xabc00},
    };
    FileTrace::write(path, records);
    FileTrace trace(path);
    ASSERT_EQ(trace.size(), records.size());
    for (const auto &want : records) {
        TraceOp got = trace.next();
        EXPECT_EQ(got.gap, want.gap);
        EXPECT_EQ(got.isWrite, want.isWrite);
        EXPECT_EQ(got.dependent, want.dependent);
        EXPECT_EQ(got.addr, want.addr);
    }
}

TEST_F(FileTraceTest, ProgrammaticConstruction)
{
    FileTrace trace(std::vector<TraceOp>{{1, false, false, 0x40}});
    EXPECT_EQ(trace.next().addr, 0x40u);
    EXPECT_EQ(trace.next().addr, 0x40u);
}

TEST_F(FileTraceTest, MissingFileIsFatal)
{
    EXPECT_DEATH(FileTrace("/nonexistent/trace.txt"), "cannot open");
}

TEST_F(FileTraceTest, BadKindIsFatal)
{
    std::ofstream(path) << "1 Q 100\n";
    EXPECT_DEATH(FileTrace trace(path), "bad access kind");
}

TEST_F(FileTraceTest, BadAddressIsFatal)
{
    std::ofstream(path) << "1 R zz\n";
    EXPECT_DEATH(FileTrace trace(path), "bad address");
}

TEST_F(FileTraceTest, EmptyFileIsFatal)
{
    std::ofstream(path) << "# only a comment\n";
    EXPECT_DEATH(FileTrace trace(path), "no records");
}

} // namespace
} // namespace dbsim
