/** @file Tests for file-backed traces (format, looping, round trip). */

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "workload/file_trace.hh"

namespace dbsim {
namespace {

std::size_t
peakRssBytes()
{
    struct rusage ru{};
    getrusage(RUSAGE_SELF, &ru);
    return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
}

class FileTraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path = ::testing::TempDir() + "dbsim_trace_test.txt";
    }

    void TearDown() override { std::remove(path.c_str()); }

    std::string path;
};

TEST_F(FileTraceTest, ParsesBasicFormat)
{
    std::ofstream(path) << "# comment\n"
                           "3 R 1000\n"
                           "0 W 1040  # trailing comment\n"
                           "\n"
                           "7 D 2000\n";
    FileTrace trace(path);
    EXPECT_EQ(trace.size(), 3u);

    TraceOp a = trace.next();
    EXPECT_EQ(a.gap, 3u);
    EXPECT_FALSE(a.isWrite);
    EXPECT_FALSE(a.dependent);
    EXPECT_EQ(a.addr, 0x1000u);

    TraceOp b = trace.next();
    EXPECT_TRUE(b.isWrite);
    EXPECT_EQ(b.addr, 0x1040u);

    TraceOp c = trace.next();
    EXPECT_TRUE(c.dependent);
    EXPECT_FALSE(c.isWrite);
    EXPECT_EQ(c.addr, 0x2000u);
}

TEST_F(FileTraceTest, LoopsAtEnd)
{
    std::ofstream(path) << "1 R 100\n2 W 200\n";
    FileTrace trace(path);
    trace.next();
    trace.next();
    TraceOp again = trace.next();  // wrapped
    EXPECT_EQ(again.addr, 0x100u);
}

TEST_F(FileTraceTest, WriteReadRoundTrip)
{
    std::vector<TraceOp> records = {
        {5, false, false, 0xdeadbea0},
        {0, true, false, 0x40},
        {9, false, true, 0xabc00},
    };
    FileTrace::write(path, records);
    FileTrace trace(path);
    ASSERT_EQ(trace.size(), records.size());
    for (const auto &want : records) {
        TraceOp got = trace.next();
        EXPECT_EQ(got.gap, want.gap);
        EXPECT_EQ(got.isWrite, want.isWrite);
        EXPECT_EQ(got.dependent, want.dependent);
        EXPECT_EQ(got.addr, want.addr);
    }
}

TEST_F(FileTraceTest, ProgrammaticConstruction)
{
    FileTrace trace(std::vector<TraceOp>{{1, false, false, 0x40}});
    EXPECT_EQ(trace.next().addr, 0x40u);
    EXPECT_EQ(trace.next().addr, 0x40u);
}

TEST_F(FileTraceTest, MissingFileIsFatal)
{
    EXPECT_DEATH(FileTrace("/nonexistent/trace.txt"), "cannot open");
}

TEST_F(FileTraceTest, BadKindIsFatal)
{
    std::ofstream(path) << "1 Q 100\n";
    EXPECT_DEATH(FileTrace trace(path), "bad access kind");
}

TEST_F(FileTraceTest, BadAddressIsFatal)
{
    std::ofstream(path) << "1 R zz\n";
    EXPECT_DEATH(FileTrace trace(path), "bad address");
}

TEST_F(FileTraceTest, EmptyFileIsFatal)
{
    std::ofstream(path) << "# only a comment\n";
    EXPECT_DEATH(FileTrace trace(path), "no records");
}

TEST_F(FileTraceTest, GapOverflowIsFatal)
{
    // gap is stored in 32 bits; a larger value must refuse up front,
    // not truncate into a silently different trace.
    std::ofstream(path) << "5000000000 R 100\n";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(FileTrace trace(path), "exceeds the per-record limit");
}

TEST_F(FileTraceTest, OverLongLineIsFatal)
{
    // A line longer than the bounded parse buffer is a malformed
    // record, not an excuse to allocate.
    std::ofstream(path) << "1 R 100 # " << std::string(8192, 'x')
                        << "\n";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(FileTrace trace(path), "over-long line");
}

TEST_F(FileTraceTest, TrailingGarbageIsFatal)
{
    std::ofstream(path) << "1 R 100 xyzzy\n";
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(FileTrace trace(path), "trailing garbage");
}

TEST_F(FileTraceTest, StreamingMatchesInMemoryAcrossLoops)
{
    // Golden diff: the streamed file replay must be bit-identical to
    // the in-memory replay of the same records, including across the
    // rewind at each loop boundary.
    std::vector<TraceOp> records;
    std::mt19937_64 rng(0xf11e77ace5u);
    for (int n = 0; n < 3'000; ++n) {
        TraceOp op{};
        op.gap = static_cast<std::uint32_t>(rng() % 7);
        op.isWrite = rng() % 3 == 0;
        op.dependent = !op.isWrite && rng() % 5 == 0;
        op.addr = (rng() % (1u << 24)) * 64;
        records.push_back(op);
    }
    FileTrace::write(path, records);

    FileTrace streamed(path);
    FileTrace inMemory(records);
    ASSERT_EQ(streamed.size(), records.size());
    for (std::size_t i = 0; i < records.size() * 3 + 7; ++i) {
        TraceOp a = streamed.next();
        TraceOp b = inMemory.next();
        ASSERT_EQ(a.gap, b.gap) << "op " << i;
        ASSERT_EQ(a.isWrite, b.isWrite) << "op " << i;
        ASSERT_EQ(a.dependent, b.dependent) << "op " << i;
        ASSERT_EQ(a.addr, b.addr) << "op " << i;
    }
    EXPECT_EQ(streamed.opsEmitted(), inMemory.opsEmitted());
}

TEST_F(FileTraceTest, LargeFileStreamsBounded)
{
    // A few hundred MB of text trace must stream at O(1) memory: the
    // validation pass, the replay, and the loop rewind all reuse one
    // bounded line buffer. Write in large chunks so the test spends
    // its time streaming, not in per-line ofstream calls.
    constexpr std::size_t kLines = 24u << 20; // ~360MB of text
    {
        std::ofstream out(path, std::ios::binary);
        std::string chunk;
        chunk.reserve(1u << 20);
        char line[64];
        for (std::size_t i = 0; i < kLines; ++i) {
            int len = std::snprintf(line, sizeof(line), "%u %c %llx\n",
                                    static_cast<unsigned>(i % 5),
                                    i % 4 == 0 ? 'W' : 'R',
                                    0x1000ull + i % 4096 * 64);
            chunk.append(line, static_cast<std::size_t>(len));
            if (chunk.size() > (1u << 20) - 64) {
                out.write(chunk.data(),
                          static_cast<std::streamsize>(chunk.size()));
                chunk.clear();
            }
        }
        out.write(chunk.data(),
                  static_cast<std::streamsize>(chunk.size()));
        ASSERT_TRUE(out.good());
    }

    const std::size_t before = peakRssBytes();
    FileTrace trace(path); // validation pass streams the whole file
    ASSERT_EQ(trace.size(), kLines);
    // Stream well past one loop so the rewind path is covered too.
    for (std::size_t i = 0; i < kLines + 1'000; ++i) {
        TraceOp op = trace.next();
        ASSERT_EQ(op.addr % 64, 0u);
        ASSERT_GE(op.addr, 0x1000u);
    }
    const std::size_t after = peakRssBytes();
    EXPECT_LT(after - before, 48u << 20)
        << "streaming a ~360MB trace grew peak RSS by "
        << (after - before) << " bytes";
}

} // namespace
} // namespace dbsim
