/** @file Tests for benchmark profiles, trace generation, and mixes. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "workload/mixes.hh"
#include "workload/profiles.hh"
#include "workload/synthetic_trace.hh"

namespace dbsim {
namespace {

TEST(Profiles, FourteenBenchmarks)
{
    EXPECT_EQ(allBenchmarks().size(), 14u);
}

TEST(Profiles, MixturesSumToOne)
{
    for (const auto &p : allBenchmarks()) {
        for (const Mixture *m : {&p.readMix, &p.writeMix}) {
            double sum = m->hot + m->warm + m->stream + m->cold;
            EXPECT_NEAR(sum, 1.0, 1e-9) << p.name;
        }
        EXPECT_GT(p.memFrac, 0.0);
        EXPECT_LE(p.memFrac, 1.0);
        EXPECT_GE(p.writeFrac, 0.0);
        EXPECT_LE(p.writeFrac, 1.0);
    }
}

TEST(Profiles, LookupByName)
{
    EXPECT_EQ(benchmarkByName("mcf").name, "mcf");
    EXPECT_EQ(benchmarkByName("lbm").writeClass, Intensity::High);
}

TEST(SyntheticTrace, DeterministicForSeed)
{
    const auto &prof = benchmarkByName("soplex");
    SyntheticTrace a(prof, 0, 42), b(prof, 0, 42);
    for (int i = 0; i < 1000; ++i) {
        TraceOp x = a.next(), y = b.next();
        EXPECT_EQ(x.gap, y.gap);
        EXPECT_EQ(x.isWrite, y.isWrite);
        EXPECT_EQ(x.addr, y.addr);
        EXPECT_EQ(x.dependent, y.dependent);
    }
}

TEST(SyntheticTrace, CoresGetDisjointAddressSpaces)
{
    const auto &prof = benchmarkByName("lbm");
    SyntheticTrace t0(prof, 0, 1), t1(prof, 1, 1);
    std::set<Addr> bases0, bases1;
    for (int i = 0; i < 2000; ++i) {
        bases0.insert(t0.next().addr >> 40);
        bases1.insert(t1.next().addr >> 40);
    }
    for (Addr b : bases0) {
        EXPECT_FALSE(bases1.count(b));
    }
}

TEST(SyntheticTrace, MemoryIntensityMatchesProfile)
{
    const auto &prof = benchmarkByName("stream");
    SyntheticTrace t(prof, 0, 3);
    std::uint64_t mem_ops = 0, instrs = 0;
    for (int i = 0; i < 50000; ++i) {
        TraceOp op = t.next();
        instrs += op.gap + 1;
        ++mem_ops;
    }
    double frac = static_cast<double>(mem_ops) /
                  static_cast<double>(instrs);
    EXPECT_NEAR(frac, prof.memFrac, 0.02);
}

TEST(SyntheticTrace, WriteFractionMatchesProfile)
{
    const auto &prof = benchmarkByName("lbm");
    SyntheticTrace t(prof, 0, 3);
    std::uint64_t writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        if (t.next().isWrite) {
            ++writes;
        }
    }
    EXPECT_NEAR(static_cast<double>(writes) / n, prof.writeFrac, 0.02);
}

TEST(SyntheticTrace, StreamWritesCoverBlocksDensely)
{
    // Stream writes should touch consecutive words of a block before
    // moving on, so per-block store counts concentrate at 8.
    const auto &prof = benchmarkByName("stream");
    SyntheticTrace t(prof, 0, 9);
    std::map<Addr, int> per_block;
    for (int i = 0; i < 200000; ++i) {
        TraceOp op = t.next();
        if (op.isWrite && (op.addr >> 32 & 0xff) == 4) {  // stream-W
            per_block[blockAlign(op.addr)]++;
        }
    }
    ASSERT_FALSE(per_block.empty());
    int full = 0, total = 0;
    for (auto &[a, n] : per_block) {
        ++total;
        if (n == 8) {
            ++full;
        }
    }
    EXPECT_GT(static_cast<double>(full) / total, 0.8);
}

TEST(SyntheticTrace, DependentFractionRoughlyMatches)
{
    const auto &prof = benchmarkByName("mcf");
    SyntheticTrace t(prof, 0, 5);
    std::uint64_t dep = 0, loads = 0;
    for (int i = 0; i < 50000; ++i) {
        TraceOp op = t.next();
        if (!op.isWrite) {
            ++loads;
            dep += op.dependent;
        }
    }
    EXPECT_NEAR(static_cast<double>(dep) / loads, prof.depFrac, 0.03);
}

TEST(Mixes, CorrectShapeAndDeterminism)
{
    auto a = makeMixes(4, 10, 7);
    auto b = makeMixes(4, 10, 7);
    ASSERT_EQ(a.size(), 10u);
    EXPECT_EQ(a, b);
    for (const auto &mix : a) {
        ASSERT_EQ(mix.size(), 4u);
        for (const auto &name : mix) {
            benchmarkByName(name);  // must not fatal
        }
    }
    auto c = makeMixes(4, 10, 8);
    EXPECT_NE(a, c);
}

TEST(Mixes, CoversIntensityClasses)
{
    auto mixes = makeMixes(8, 20, 3);
    std::set<Intensity> seen;
    for (const auto &mix : mixes) {
        for (const auto &name : mix) {
            seen.insert(benchmarkByName(name).readClass);
        }
    }
    EXPECT_EQ(seen.size(), 3u);
}

TEST(Mixes, LabelJoinsNames)
{
    EXPECT_EQ(mixLabel({"a", "b"}), "a+b");
    EXPECT_EQ(mixLabel({"solo"}), "solo");
}

} // namespace
} // namespace dbsim
