/**
 * @file
 * Tests for the OoO core model and private cache hierarchy: IPC of
 * simple synthetic traces, ROB/window stalls, MSHR merging, dependent
 * loads, and writeback generation through L1/L2.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/event_queue.hh"
#include "cpu/core.hh"
#include "dram/dram_controller.hh"
#include "llc/llc.hh"

namespace dbsim {
namespace {

/** Scripted trace: replays a fixed list, then repeats the last op. */
class ScriptTrace : public TraceSource
{
  public:
    explicit ScriptTrace(std::vector<TraceOp> ops) : script(std::move(ops))
    {}

    TraceOp
    next() override
    {
        if (pos < script.size()) {
            return script[pos++];
        }
        return script.back();
    }

  private:
    std::vector<TraceOp> script;
    std::size_t pos = 0;
};

struct CoreTest : public ::testing::Test
{
    CoreTest()
        : dram(DramConfig{}, eq),
          llc(LlcConfig{2ull << 20, 16, ReplPolicy::Lru, 10, 24, 1, 1},
              dram, eq)
    {
    }

    /** Run a core over the trace; returns measured IPC. */
    double
    runCore(TraceSource &trace, CoreConfig cfg)
    {
        CoreMemory mem(CoreMemoryConfig{}, llc, 0, 1);
        Core core(0, cfg, trace, mem, eq);
        bool done = false;
        core.onDone([&](std::uint32_t) { done = true; });
        core.start();
        eq.runAll();
        EXPECT_TRUE(done);
        return core.ipc();
    }

    EventQueue eq;
    DramController dram;
    Llc llc;
};

TEST_F(CoreTest, PureComputeRunsAtOneIpc)
{
    // All non-memory instructions: single issue -> IPC ~= 1.
    ScriptTrace trace({{1000, false, false, 0}});
    CoreConfig cfg;
    cfg.warmupInstrs = 10'000;
    cfg.measureInstrs = 50'000;
    double ipc = runCore(trace, cfg);
    EXPECT_NEAR(ipc, 1.0, 0.01);
}

TEST_F(CoreTest, L1HitsBarelySlowTheCore)
{
    // Every 10th instruction loads the same block: L1 hits overlap.
    ScriptTrace trace({{9, false, false, 0x1000}});
    CoreConfig cfg;
    cfg.warmupInstrs = 10'000;
    cfg.measureInstrs = 50'000;
    double ipc = runCore(trace, cfg);
    EXPECT_GT(ipc, 0.9);
}

TEST_F(CoreTest, IndependentMissesOverlap)
{
    // Loads to distinct cold blocks: the 128-entry window should expose
    // memory-level parallelism, so IPC is far better than serialized.
    std::vector<TraceOp> ops;
    for (Addr a = 0; a < 4096; ++a) {
        ops.push_back({9, false, false, (a * 64) << 8});
    }
    ScriptTrace trace(ops);
    CoreConfig cfg;
    cfg.warmupInstrs = 1'000;
    cfg.measureInstrs = 20'000;
    double ipc_indep = runCore(trace, cfg);

    std::vector<TraceOp> dep_ops;
    for (Addr a = 0; a < 4096; ++a) {
        dep_ops.push_back({9, false, true, ((a + 8000) * 64) << 8});
    }
    ScriptTrace dep_trace(std::move(dep_ops));
    EventQueue eq2;
    // Fresh memory system so cold misses repeat.
    DramController dram2(DramConfig{}, eq2);
    Llc llc2(LlcConfig{2ull << 20, 16, ReplPolicy::Lru, 10, 24,
                               1, 1},
                     dram2, eq2);
    CoreMemory mem2(CoreMemoryConfig{}, llc2, 0, 1);
    Core core2(0, cfg, dep_trace, mem2, eq2);
    core2.start();
    eq2.runAll();
    double ipc_dep = core2.ipc();

    EXPECT_GT(ipc_indep, 2.0 * ipc_dep)
        << "dependent (pointer-chasing) loads must serialize";
}

TEST_F(CoreTest, StoresDoNotStallRetirement)
{
    // Store misses fill in the background; IPC stays near 1 while the
    // MSHRs can absorb them.
    ScriptTrace trace({{60, true, false, 0}});
    // Cycle through many store addresses via script repetition trick:
    std::vector<TraceOp> ops;
    for (Addr a = 0; a < 2048; ++a) {
        ops.push_back({60, true, false, (a * 64) << 6});
    }
    ScriptTrace trace2(std::move(ops));
    CoreConfig cfg;
    cfg.warmupInstrs = 5'000;
    cfg.measureInstrs = 30'000;
    double ipc = runCore(trace2, cfg);
    EXPECT_GT(ipc, 0.8);
}

TEST_F(CoreTest, L2WritebacksReachTheLlc)
{
    // Stream stores over a footprint far exceeding L1+L2: dirty blocks
    // must spill to the LLC as writeback requests.
    std::vector<TraceOp> ops;
    for (Addr a = 0; a < 40'000; ++a) {
        ops.push_back({3, true, false, a * 64});
    }
    ScriptTrace trace(std::move(ops));
    CoreConfig cfg;
    cfg.warmupInstrs = 50'000;
    cfg.measureInstrs = 50'000;
    runCore(trace, cfg);
    EXPECT_GT(llc.statWritebacksIn.value(), 1000u);
}

TEST_F(CoreTest, MshrMergingLimitsDramReads)
{
    // Eight consecutive word loads per block: one DRAM read per block.
    std::vector<TraceOp> ops;
    for (Addr a = 0; a < 8000; ++a) {
        ops.push_back({2, false, false, 0x400000 + a * 8});
    }
    ScriptTrace trace(std::move(ops));
    CoreConfig cfg;
    cfg.warmupInstrs = 1'000;
    cfg.measureInstrs = 20'000;
    runCore(trace, cfg);
    // ~21k instructions / 3 per op / 8 ops per block ~= 875 blocks.
    EXPECT_LT(dram.statReads.value(), 1200u);
}

TEST_F(CoreTest, MeasuredCyclesConsistentWithIpc)
{
    ScriptTrace trace({{999, false, false, 0}});
    CoreConfig cfg;
    cfg.warmupInstrs = 1'000;
    cfg.measureInstrs = 10'000;
    CoreMemory mem(CoreMemoryConfig{}, llc, 0, 1);
    Core core(0, cfg, trace, mem, eq);
    core.start();
    eq.runAll();
    EXPECT_NEAR(static_cast<double>(cfg.measureInstrs) /
                    static_cast<double>(core.measuredCycles()),
                core.ipc(), 1e-12);
}

} // namespace
} // namespace dbsim
