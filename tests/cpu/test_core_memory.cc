/**
 * @file
 * Unit tests for the private L1/L2 hierarchy in isolation: hit
 * latencies, dirty-ownership transfer between levels, writeback
 * cascades into the LLC, write-allocate store misses, and MSHR
 * bookkeeping.
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "cpu/core_memory.hh"
#include "dram/dram_controller.hh"
#include "llc/llc.hh"

namespace dbsim {
namespace {

struct CoreMemoryTest : public ::testing::Test
{
    CoreMemoryTest()
        : dram(DramConfig{}, eq),
          llc(LlcConfig{2ull << 20, 16, ReplPolicy::Lru, 10, 24, 1, 1},
              dram, eq),
          mem(CoreMemoryConfig{}, llc, 0, 1)
    {
    }

    /** Load and wait; returns total latency. */
    Cycle
    loadLatency(Addr a, Cycle when)
    {
        Cycle done_at = 0;
        auto res = mem.load(a, when, [&](Cycle c) { done_at = c; });
        if (!res.pending) {
            return res.latency;
        }
        eq.runAll();
        EXPECT_GT(done_at, when);
        return done_at - when;
    }

    EventQueue eq;
    DramController dram;
    Llc llc;
    CoreMemory mem;
};

TEST_F(CoreMemoryTest, L1HitLatencyIsTwoCycles)
{
    loadLatency(0x1000, 0);  // miss fills L1
    Cycle lat = loadLatency(0x1000, eq.now() + 1);
    EXPECT_EQ(lat, 2u);  // Table 1 L1 latency
    EXPECT_EQ(mem.statL1Hits.value(), 1u);
}

TEST_F(CoreMemoryTest, MissGoesThroughLlc)
{
    Cycle lat = loadLatency(0x2000, 0);
    EXPECT_GT(lat, 50u);  // DRAM round trip
    EXPECT_EQ(mem.statLlcAccesses.value(), 1u);
    EXPECT_TRUE(llc.tags().contains(0x2000));
}

TEST_F(CoreMemoryTest, StoreMissWriteAllocates)
{
    bool done = false;
    auto res = mem.store(0x3000, 0, [&](Cycle) { done = true; });
    EXPECT_TRUE(res.pending);
    eq.runAll();
    EXPECT_TRUE(done);
    // The block is now dirty in L1 and a subsequent load hits.
    EXPECT_EQ(loadLatency(0x3000, eq.now() + 1), 2u);
}

TEST_F(CoreMemoryTest, StoreHitIsImmediate)
{
    loadLatency(0x4000, 0);
    auto res = mem.store(0x4000, eq.now() + 1, [](Cycle) {});
    EXPECT_FALSE(res.pending);
    EXPECT_EQ(res.latency, 1u);
}

TEST_F(CoreMemoryTest, DirtyDataSpillsDownToLlcAsWriteback)
{
    // Write a footprint much larger than L1+L2 (288KB): dirty blocks
    // must cascade L1 -> L2 -> LLC writeback requests.
    for (Addr a = 0; a < (1u << 20); a += kBlockBytes) {
        mem.store(a, eq.now(), [](Cycle) {});
        eq.runAll();
    }
    EXPECT_GT(llc.statWritebacksIn.value(), 5000u);
    EXPECT_GT(llc.tags().countDirty(), 1000u);
}

TEST_F(CoreMemoryTest, MshrMergeSecondaryMisses)
{
    int completions = 0;
    mem.load(0x5000, 0, [&](Cycle) { ++completions; });
    mem.load(0x5008, 1, [&](Cycle) { ++completions; });  // same block
    mem.load(0x5010, 2, [&](Cycle) { ++completions; });
    EXPECT_EQ(mem.mshrsInUse(), 1u);
    EXPECT_EQ(mem.statMshrMerges.value(), 2u);
    eq.runAll();
    EXPECT_EQ(completions, 3);
    EXPECT_EQ(mem.mshrsInUse(), 0u);
    EXPECT_EQ(mem.statLlcAccesses.value(), 1u);
}

TEST_F(CoreMemoryTest, MergedStoreDirtiesTheFill)
{
    mem.load(0x6000, 0, [](Cycle) {});
    mem.store(0x6008, 1, [](Cycle) {});  // merges into the same MSHR
    eq.runAll();
    // After the fill, the block must be dirty (the store happened).
    // Spill it all the way down and check a writeback occurs.
    for (Addr a = 1 << 21; a < (1u << 21) + (1u << 20);
         a += kBlockBytes) {
        mem.load(a, eq.now(), [](Cycle) {});
        eq.runAll();
    }
    EXPECT_GT(llc.statWritebacksIn.value(), 0u);
}

TEST_F(CoreMemoryTest, MshrFreedHookFires)
{
    int fires = 0;
    mem.onMshrFreed([&] { ++fires; });
    mem.load(0x7000, 0, [](Cycle) {});
    mem.load(0x8000, 0, [](Cycle) {});
    eq.runAll();
    EXPECT_EQ(fires, 2);
}

TEST_F(CoreMemoryTest, L2HitFasterThanLlcSlowerThanL1)
{
    loadLatency(0x9000, 0);
    // Evict 0x9000 from L1 (2-way, 256 sets -> two conflicting fills).
    Addr conflict1 = 0x9000 + 256 * kBlockBytes;
    Addr conflict2 = 0x9000 + 512 * kBlockBytes;
    loadLatency(conflict1, eq.now() + 1);
    loadLatency(conflict2, eq.now() + 1);
    Cycle lat = loadLatency(0x9000, eq.now() + 1);
    EXPECT_EQ(lat, 2u + 14u);  // L1 miss + L2 hit
    EXPECT_EQ(mem.statL2Hits.value(), 1u);
}

} // namespace
} // namespace dbsim
