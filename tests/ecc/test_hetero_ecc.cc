/** @file Tests for the heterogeneous clean/dirty ECC store (Section 3.3). */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/hetero_ecc.hh"

namespace dbsim {
namespace {

BlockData
patternBlock(std::uint64_t seed)
{
    BlockData b;
    Rng rng(seed);
    for (auto &w : b) {
        w = rng.next();
    }
    return b;
}

class HeteroEccTest : public ::testing::Test
{
  protected:
    HeteroEccTest()
        : nextLevel(),
          store(64, [this](Addr a) {
              ++refetches;
              return nextLevel.at(a);
          })
    {
    }

    void
    fillBoth(Addr a, std::uint64_t seed)
    {
        BlockData d = patternBlock(seed);
        nextLevel[a] = d;
        store.fill(a, d);
    }

    std::map<Addr, BlockData> nextLevel;
    int refetches = 0;
    HeteroEccStore store;
};

TEST_F(HeteroEccTest, CleanReadReturnsData)
{
    fillBoth(0x1000, 1);
    BlockData out;
    EXPECT_EQ(store.read(0x1000, out), EccReadStatus::Clean);
    EXPECT_EQ(out, nextLevel[0x1000]);
    EXPECT_FALSE(store.hasEcc(0x1000));
}

TEST_F(HeteroEccTest, CorruptedCleanBlockIsRefetched)
{
    fillBoth(0x2000, 2);
    store.corrupt(0x2000, 100);
    BlockData out;
    EXPECT_EQ(store.read(0x2000, out), EccReadStatus::Refetched);
    EXPECT_EQ(out, nextLevel[0x2000]);
    EXPECT_EQ(refetches, 1);
}

TEST_F(HeteroEccTest, DirtyBlockGetsEccAndCorrects)
{
    BlockData d = patternBlock(3);
    store.writeDirty(0x3000, d);
    EXPECT_TRUE(store.hasEcc(0x3000));
    store.corrupt(0x3000, 77);
    BlockData out;
    EXPECT_EQ(store.read(0x3000, out), EccReadStatus::Corrected);
    EXPECT_EQ(out, d);
    EXPECT_EQ(refetches, 0);  // the only copy; no refetch possible
}

TEST_F(HeteroEccTest, MarkCleanReleasesEcc)
{
    store.writeDirty(0x4000, patternBlock(4));
    EXPECT_EQ(store.eccEntries(), 1u);
    store.markClean(0x4000);
    EXPECT_EQ(store.eccEntries(), 0u);
    EXPECT_TRUE(store.contains(0x4000));
}

TEST_F(HeteroEccTest, DirtyDoubleErrorInWordIsLost)
{
    store.writeDirty(0x5000, patternBlock(5));
    store.corrupt(0x5000, 10);
    store.corrupt(0x5000, 11);  // same word: SECDED-uncorrectable
    store.corrupt(0x5000, 70);  // other word: makes the EDC fire
    BlockData out;
    EXPECT_EQ(store.read(0x5000, out), EccReadStatus::DataLost);
}

TEST_F(HeteroEccTest, EvenWeightWordErrorEscapesParityEdc)
{
    // Documented limitation: a double flip within one word keeps the
    // per-word parity valid, so the EDC cannot see it and the read
    // returns corrupted data as "clean". SECDED on dirty blocks is only
    // consulted once the EDC fires.
    store.writeDirty(0x5100, patternBlock(51));
    store.corrupt(0x5100, 10);
    store.corrupt(0x5100, 11);
    BlockData out;
    EXPECT_EQ(store.read(0x5100, out), EccReadStatus::Clean);
}

TEST_F(HeteroEccTest, ErrorsInDifferentWordsAllCorrected)
{
    BlockData d = patternBlock(6);
    store.writeDirty(0x6000, d);
    for (std::uint32_t w = 0; w < 8; ++w) {
        store.corrupt(0x6000, w * 64 + w);
    }
    BlockData out;
    EXPECT_EQ(store.read(0x6000, out), EccReadStatus::Corrected);
    EXPECT_EQ(out, d);
}

TEST_F(HeteroEccTest, EvictRemovesBoth)
{
    store.writeDirty(0x7000, patternBlock(7));
    store.evict(0x7000);
    EXPECT_FALSE(store.contains(0x7000));
    EXPECT_EQ(store.eccEntries(), 0u);
}

TEST_F(HeteroEccTest, CapacityIsDbiBound)
{
    // The SECDED table is sized to what the DBI can track; the DBI
    // must clean blocks before new dirty blocks take their place.
    for (Addr a = 0; a < 64; ++a) {
        store.writeDirty(a * 64, patternBlock(a));
    }
    EXPECT_EQ(store.eccEntries(), 64u);
    store.markClean(0);  // DBI eviction writes the block back...
    store.writeDirty(64 * 64, patternBlock(99));  // ...freeing a slot
    EXPECT_EQ(store.eccEntries(), 64u);
}

} // namespace
} // namespace dbsim
