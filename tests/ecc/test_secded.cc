/** @file Unit and property tests for the SECDED(72,64) codec. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "ecc/hetero_ecc.hh"
#include "ecc/secded.hh"

namespace dbsim {
namespace {

TEST(Secded, CleanWordDecodesClean)
{
    for (std::uint64_t data : {0ull, ~0ull, 0xdeadbeefcafebabeull,
                               0x0123456789abcdefull}) {
        SecdedWord w = Secded::encode(data);
        EXPECT_EQ(Secded::decode(w), EccStatus::Clean);
        EXPECT_EQ(w.data, data);
    }
}

/** Property: every single-bit error (all 72 positions) is corrected. */
TEST(Secded, PropertyCorrectsAllSingleBitErrors)
{
    Rng rng(99);
    for (int trial = 0; trial < 30; ++trial) {
        std::uint64_t data = rng.next();
        for (std::uint32_t pos = 0; pos < 72; ++pos) {
            SecdedWord w = Secded::encode(data);
            Secded::injectError(w, pos);
            EXPECT_EQ(Secded::decode(w), EccStatus::Corrected)
                << "data " << data << " pos " << pos;
            EXPECT_EQ(w.data, data) << "pos " << pos;
        }
    }
}

/** Property: every double-bit error is detected as uncorrectable. */
TEST(Secded, PropertyDetectsDoubleBitErrors)
{
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        std::uint64_t data = rng.next();
        for (std::uint32_t a = 0; a < 72; a += 5) {
            for (std::uint32_t b = a + 1; b < 72; b += 7) {
                SecdedWord w = Secded::encode(data);
                Secded::injectError(w, a);
                Secded::injectError(w, b);
                EXPECT_EQ(Secded::decode(w), EccStatus::Uncorrectable)
                    << "bits " << a << "," << b;
            }
        }
    }
}

TEST(Secded, DoubleInjectSamePositionCancels)
{
    SecdedWord w = Secded::encode(0x1234);
    Secded::injectError(w, 17);
    Secded::injectError(w, 17);
    EXPECT_EQ(Secded::decode(w), EccStatus::Clean);
}

TEST(ParityEdc, DetectsSingleBitFlips)
{
    BlockData block{};
    for (std::uint32_t i = 0; i < 8; ++i) {
        block[i] = 0x1111111111111111ull * (i + 1);
    }
    std::uint8_t parity = ParityEdc::encode(block);
    EXPECT_TRUE(ParityEdc::check(block, parity));
    for (std::uint32_t w = 0; w < 8; ++w) {
        BlockData copy = block;
        copy[w] ^= 1ull << (7 * w);
        EXPECT_FALSE(ParityEdc::check(copy, parity)) << "word " << w;
    }
}

TEST(ParityEdc, MissesDoubleFlipInSameWord)
{
    // Known limitation of parity: even error counts pass. This is why
    // dirty blocks need full SECDED.
    BlockData block{};
    std::uint8_t parity = ParityEdc::encode(block);
    block[3] ^= 0b11;
    EXPECT_TRUE(ParityEdc::check(block, parity));
}

} // namespace
} // namespace dbsim
