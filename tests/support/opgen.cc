#include "support/opgen.hh"

#include <cinttypes>
#include <cstdio>

#include "common/rng.hh"

namespace dbsim::test {

std::vector<Op>
generateOps(const OpGenConfig &cfg)
{
    Rng rng(cfg.seed);
    std::vector<Op> ops;
    ops.reserve(cfg.count);

    // Recent-address ring the locality knob draws re-touches from.
    std::vector<Addr> pool;
    pool.reserve(cfg.hotPoolBlocks ? cfg.hotPoolBlocks : 1);
    std::size_t poolNext = 0;

    for (std::size_t i = 0; i < cfg.count; ++i) {
        Addr a;
        if (!pool.empty() && rng.chance(cfg.localityFraction)) {
            a = pool[rng.below(pool.size())];
        } else {
            a = blockAlign(rng.below(cfg.addrSpaceBytes));
            if (pool.size() < cfg.hotPoolBlocks) {
                pool.push_back(a);
            } else if (!pool.empty()) {
                pool[poolNext] = a;
                if (++poolNext == pool.size()) {
                    poolNext = 0;
                }
            }
        }
        ops.push_back({rng.chance(cfg.writebackFraction), a});
    }
    return ops;
}

namespace {

/** ops minus the window [at, at+len). */
std::vector<Op>
without(const std::vector<Op> &ops, std::size_t at, std::size_t len)
{
    std::vector<Op> out;
    out.reserve(ops.size() - len);
    out.insert(out.end(), ops.begin(),
               ops.begin() + static_cast<std::ptrdiff_t>(at));
    out.insert(out.end(),
               ops.begin() + static_cast<std::ptrdiff_t>(at + len),
               ops.end());
    return out;
}

} // namespace

std::vector<Op>
shrinkOps(std::vector<Op> ops, const OpProperty &holds,
          std::size_t maxEvals)
{
    std::size_t evals = 0;
    auto stillFails = [&](const std::vector<Op> &candidate) {
        ++evals;
        return !holds(candidate);
    };

    // Phase 1: chunk removal, largest chunks first. After a successful
    // removal rescan at the same chunk size (more of it may now go).
    std::size_t chunk = ops.size() / 2;
    while (chunk >= 1 && evals < maxEvals) {
        bool removed = false;
        for (std::size_t at = 0;
             at + chunk <= ops.size() && evals < maxEvals;) {
            std::vector<Op> candidate = without(ops, at, chunk);
            if (!candidate.empty() && stillFails(candidate)) {
                ops = std::move(candidate);
                removed = true;
                // at now indexes the ops that followed the removed
                // window; keep scanning from here.
            } else {
                at += chunk;
            }
        }
        if (!removed) {
            chunk /= 2;
        }
    }

    // Phase 2: per-op simplification — a read is simpler than a
    // writeback (it moves no dirty state), so try demoting each.
    for (std::size_t i = 0; i < ops.size() && evals < maxEvals; ++i) {
        if (!ops[i].isWriteback) {
            continue;
        }
        std::vector<Op> candidate = ops;
        candidate[i].isWriteback = false;
        if (stillFails(candidate)) {
            ops = std::move(candidate);
        }
    }
    return ops;
}

std::string
formatOps(const std::vector<Op> &ops, std::size_t maxShown)
{
    std::string out = "stream of " + std::to_string(ops.size()) +
                      " ops:\n";
    char line[64];
    std::size_t shown = ops.size() < maxShown ? ops.size() : maxShown;
    for (std::size_t i = 0; i < shown; ++i) {
        std::snprintf(line, sizeof(line), "  [%3zu] %s 0x%" PRIx64 "\n",
                      i, ops[i].isWriteback ? "WB" : "RD",
                      static_cast<std::uint64_t>(ops[i].addr));
        out += line;
    }
    if (shown < ops.size()) {
        out += "  ... (" + std::to_string(ops.size() - shown) +
               " more)\n";
    }
    return out;
}

} // namespace dbsim::test
