/**
 * @file
 * Shared harness for the randomized mechanism-composition suites: build
 * the LLC variant a '+'-spec (or Table 2 preset) names, replay a
 * generated op stream into it under the dirty-state auditor, and report
 * the observable outcome — the final memory image plus the mechanism's
 * and the shadow model's dirty counts. The differential and property
 * suites assert over these outcomes; divergence *during* the replay
 * (an invariant violation) panics with the auditor's event-trace dump.
 */

#ifndef DBSIM_TESTS_SUPPORT_COMPOSITION_HH
#define DBSIM_TESTS_SUPPORT_COMPOSITION_HH

#include <memory>
#include <string>
#include <vector>

#include "audit/auditor.hh"
#include "common/event_queue.hh"
#include "dram/dram_controller.hh"
#include "llc/llc.hh"
#include "sim/mechanism.hh"
#include "support/opgen.hh"

namespace dbsim::test {

inline LlcConfig
smallLlc()
{
    LlcConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.assoc = 4;
    cfg.repl = ReplPolicy::Lru;
    cfg.tagLatency = 10;
    cfg.dataLatency = 24;
    cfg.numCores = 1;
    return cfg;
}

inline DbiConfig
smallDbi()
{
    DbiConfig cfg;
    cfg.alpha = 0.25;
    cfg.granularity = 16;
    cfg.assoc = 4;
    cfg.repl = DbiReplPolicy::Lrw;
    return cfg;
}

/** Predictor that predicts miss outside sampled sets (enables CLB). */
class AlwaysMissPredictor : public MissPredictor
{
  public:
    bool
    predictMiss(std::uint32_t set, std::uint32_t, Cycle) override
    {
        return set % 64 != 0;
    }
    void recordOutcome(std::uint32_t, std::uint32_t, bool, Cycle) override
    {}
    bool
    isSampledSet(std::uint32_t set) const override
    {
        return set % 64 == 0;
    }
};

/** What one audited replay of a stream observably produced. */
struct CompositionOutcome
{
    audit::MemoryImage image;        ///< mechanism's final memory image
    audit::MemoryImage shadowImage;  ///< ground truth's final image
    std::size_t mechanismDirty = 0;  ///< dirty blocks per the mechanism
    std::uint64_t shadowDirty = 0;   ///< dirty blocks per ground truth
};

/**
 * Build the composition `spec_name` names and replay `ops` into it
 * under an invariant auditor checking every `check_every` events.
 */
inline CompositionOutcome
replayComposition(const std::string &spec_name, const std::vector<Op> &ops,
                  std::uint64_t check_every = 512)
{
    EventQueue eq;
    DramController dram(DramConfig{}, eq);
    MechanismSpec spec = mechanismByName(spec_name);
    std::shared_ptr<MissPredictor> pred;
    if (spec.needsPredictor()) {
        pred = std::make_shared<AlwaysMissPredictor>();
    }
    std::unique_ptr<Llc> llc_owner =
        makeLlc(spec, smallLlc(), smallDbi(), dram, eq, pred);
    Llc &llc = *llc_owner;

    audit::AuditConfig ac;
    ac.checkEvery = check_every;
    audit::InvariantAuditor aud(llc, ac);

    int i = 0;
    for (const Op &op : ops) {
        if (op.isWriteback) {
            llc.writeback(op.addr, 0, eq.now());
        } else {
            llc.read(op.addr, 0, eq.now(), [](Cycle) {});
        }
        if (++i % 256 == 0) {
            eq.runAll();
        }
    }
    eq.runAll();
    aud.checkNow();

    CompositionOutcome out;
    out.image = aud.finalImage();
    out.shadowImage = aud.shadow().finalImage();
    out.mechanismDirty = aud.mechanismDirtyBlocks().size();
    out.shadowDirty = aud.shadow().countDirty();
    return out;
}

} // namespace dbsim::test

#endif // DBSIM_TESTS_SUPPORT_COMPOSITION_HH
