/**
 * @file
 * Property-based op-stream generation for the randomized suites: a
 * seeded generator of LLC request streams with locality and dirtiness
 * knobs, plus a minimizing shrinker. A property is any predicate over a
 * stream; when a generated stream falsifies it, shrinkOps() searches
 * for a (locally) minimal sub-stream that still falsifies it, so the
 * failure report is a handful of ops instead of thousands.
 *
 * The generator is pure: the same OpGenConfig always yields the same
 * stream, so every reported seed is a standalone reproducer.
 */

#ifndef DBSIM_TESTS_SUPPORT_OPGEN_HH
#define DBSIM_TESTS_SUPPORT_OPGEN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"

namespace dbsim::test {

/** One generated LLC request. */
struct Op
{
    bool isWriteback = false;
    Addr addr = 0;

    bool operator==(const Op &o) const
    {
        return isWriteback == o.isWriteback && addr == o.addr;
    }
};

/** Stream-shape knobs. */
struct OpGenConfig
{
    std::uint64_t seed = 1;
    std::size_t count = 2000;

    /** Dirtiness: fraction of ops that are writebacks (vs reads). */
    double writebackFraction = 0.4;

    /**
     * Locality: probability that an op re-touches an address from the
     * recent pool instead of drawing a fresh one. 0 reproduces the
     * uniform streams the differential tests historically used.
     */
    double localityFraction = 0.0;

    /** Recent-address pool size the locality draws come from. */
    std::size_t hotPoolBlocks = 64;

    /** Address-space span fresh draws cover (block-aligned). */
    Addr addrSpaceBytes = 1 << 20;
};

/** Generate the stream `cfg` describes (deterministic in cfg). */
std::vector<Op> generateOps(const OpGenConfig &cfg);

/** A property: true when the invariant under test holds for `ops`. */
using OpProperty = std::function<bool(const std::vector<Op> &)>;

/**
 * Minimize a falsifying stream: `holds(ops)` must already be false.
 * Delta-debugging-style chunk removal (halving chunk sizes) followed by
 * per-op simplification (writeback -> read), re-running the property
 * after each candidate edit and keeping only edits that preserve the
 * failure. At most `maxEvals` property evaluations are spent; the
 * result is the smallest falsifying stream found within that budget.
 */
std::vector<Op> shrinkOps(std::vector<Op> ops, const OpProperty &holds,
                          std::size_t maxEvals = 400);

/** Render a stream as a compact reproducer table for failure output. */
std::string formatOps(const std::vector<Op> &ops,
                      std::size_t maxShown = 48);

} // namespace dbsim::test

#endif // DBSIM_TESTS_SUPPORT_OPGEN_HH
