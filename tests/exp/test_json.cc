/**
 * @file
 * JSON emission and parsing tests. Emission: jsonNumber must be
 * locale-independent (the historical %g/sscanf implementation honored
 * LC_NUMERIC, so a comma-decimal locale produced "0,25" — invalid
 * JSON) and shortest-round-trip. Parsing: the strict parser behind the
 * result cache, checkpoint manifests, and farm service — including
 * 64-bit integer fidelity through the raw literal.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "exp/json.hh"

namespace dbsim::exp {
namespace {

TEST(JsonNumber, ShortestRoundTripForms)
{
    EXPECT_EQ(jsonNumber(0.25), "0.25");
    EXPECT_EQ(jsonNumber(3.0), "3");
    EXPECT_EQ(jsonNumber(-0.5), "-0.5");
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(std::uint64_t(18446744073709551615ull)),
              "18446744073709551615");
}

TEST(JsonNumber, NonFiniteBecomesNull)
{
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()),
              "null");
}

TEST(JsonNumber, EveryDoubleRoundTripsExactly)
{
    for (double v : {0.25, 1.0 / 3.0, 6.02214076e23, 5e-324,
                     1.7976931348623157e308, -123.456789}) {
        JsonValue parsed;
        ASSERT_TRUE(parseJson(jsonNumber(v), parsed)) << jsonNumber(v);
        ASSERT_TRUE(parsed.isNumber());
        EXPECT_EQ(parsed.number, v) << jsonNumber(v);
    }
}

// Regression: the old "%g"-based formatter honored LC_NUMERIC. Under a
// comma-decimal locale every fractional metric serialized as "0,25" —
// a syntax error for any JSON consumer — and sscanf-based readback
// misparsed dot-decimal files. std::to_chars/from_chars never consult
// the locale.
TEST(JsonNumber, IgnoresCommaDecimalLocale)
{
    const char *old = std::setlocale(LC_NUMERIC, nullptr);
    std::string saved = old ? old : "C";
    const char *set = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
    if (!set) {
        set = std::setlocale(LC_NUMERIC, "de_DE");
    }
    if (!set) {
        GTEST_SKIP() << "no comma-decimal locale available";
    }

    std::string formatted = jsonNumber(0.25);
    JsonValue parsed;
    bool ok = parseJson("0.25", parsed);
    std::setlocale(LC_NUMERIC, saved.c_str());

    EXPECT_EQ(formatted, "0.25");
    ASSERT_TRUE(ok);
    EXPECT_EQ(parsed.number, 0.25);
}

TEST(JsonString, EscapesControlCharactersAndQuotes)
{
    EXPECT_EQ(jsonString("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}

TEST(JsonParse, ObjectsKeepMemberOrder)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(R"({"b":1,"a":{"x":[1,2,3]},"c":"s"})", v));
    ASSERT_TRUE(v.isObject());
    ASSERT_EQ(v.members.size(), 3u);
    EXPECT_EQ(v.members[0].first, "b");
    EXPECT_EQ(v.members[1].first, "a");
    EXPECT_EQ(v.members[2].first, "c");
    const JsonValue *a = v.find("a");
    ASSERT_NE(a, nullptr);
    const JsonValue *x = a->find("x");
    ASSERT_NE(x, nullptr);
    ASSERT_TRUE(x->isArray());
    ASSERT_EQ(x->elements.size(), 3u);
    EXPECT_EQ(x->elements[2].number, 3.0);
}

TEST(JsonParse, StringEscapesDecode)
{
    JsonValue v;
    ASSERT_TRUE(parseJson(R"("a\nb\tAé")", v));
    EXPECT_EQ(v.text, "a\nb\tA\xc3\xa9");

    // Surrogate pair: U+1F600.
    ASSERT_TRUE(parseJson(R"("😀")", v));
    EXPECT_EQ(v.text, "\xf0\x9f\x98\x80");
}

TEST(JsonParse, U64FidelityThroughRawLiteral)
{
    JsonValue v;
    ASSERT_TRUE(parseJson("{\"s\":18446744073709551615}", v));
    std::uint64_t out = 0;
    ASSERT_TRUE(v.find("s")->asU64(out));
    // 2^64-1 is not representable in a double; the raw literal is.
    EXPECT_EQ(out, 18446744073709551615ull);

    ASSERT_TRUE(parseJson("1.5", v));
    EXPECT_FALSE(v.asU64(out));
    ASSERT_TRUE(parseJson("-3", v));
    EXPECT_FALSE(v.asU64(out));
}

TEST(JsonParse, StrictnessRejections)
{
    JsonValue v;
    EXPECT_FALSE(parseJson("", v));
    EXPECT_FALSE(parseJson("{} trailing", v));
    EXPECT_FALSE(parseJson("{\"a\":1,}", v));
    EXPECT_FALSE(parseJson("[1,2,]", v));
    EXPECT_FALSE(parseJson("NaN", v));
    EXPECT_FALSE(parseJson("Infinity", v));
    EXPECT_FALSE(parseJson("{'a':1}", v));
    EXPECT_FALSE(parseJson("01", v));
    EXPECT_FALSE(parseJson("1.", v));
    EXPECT_FALSE(parseJson("+1", v));
    EXPECT_FALSE(parseJson("\"unterminated", v));
    EXPECT_FALSE(parseJson("{\"a\"}", v));
    EXPECT_FALSE(parseJson("tru", v));

    std::string err;
    EXPECT_FALSE(parseJson("[1,", v, &err));
    EXPECT_FALSE(err.empty());
}

TEST(JsonParse, DepthCapStopsRunawayNesting)
{
    std::string deep(100, '[');
    deep += std::string(100, ']');
    JsonValue v;
    EXPECT_FALSE(parseJson(deep, v));

    std::string ok(32, '[');
    ok += std::string(32, ']');
    EXPECT_TRUE(parseJson(ok, v));
}

TEST(JsonParse, HugeAndTinyMagnitudesClampSanely)
{
    JsonValue v;
    ASSERT_TRUE(parseJson("1e-999", v));
    EXPECT_EQ(v.number, 0.0);
    ASSERT_TRUE(parseJson("1e999", v));
    EXPECT_TRUE(std::isinf(v.number));
    ASSERT_TRUE(parseJson("-1e999", v));
    EXPECT_TRUE(std::isinf(v.number));
    EXPECT_LT(v.number, 0.0);
}

} // namespace
} // namespace dbsim::exp
