/**
 * @file
 * ThreadPool unit tests: task execution, the wait() drain barrier,
 * reuse after a drain, submissions from inside tasks, and clean
 * destruction with work still queued.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "exp/thread_pool.hh"

namespace dbsim::exp {
namespace {

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i) {
        pool.submit([&sum, i] { sum += i; });
    }
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitIsABarrier)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            ++done;
        });
    }
    pool.wait();
    // Every task observed complete at the moment wait() returns.
    EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 4; ++i) {
        pool.submit([&pool, &count] {
            ++count;
            pool.submit([&count] { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            pool.submit([&count] { ++count; });
        }
        // No wait(): the destructor must finish the queue, not drop it.
    }
    EXPECT_EQ(count.load(), 32);
}

// Regression: a task that threw used to escape the worker loop without
// decrementing the active count — std::terminate on the worker, or a
// wait() that blocked forever. Now the exception is captured and
// rethrown from wait(), with the active count maintained on every
// exit path. The test completing at all (instead of hanging) is the
// core assertion.
TEST(ThreadPool, ThrowingTaskDoesNotDeadlockWait)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    pool.submit([] { throw std::runtime_error("task failed"); });
    for (int i = 0; i < 8; ++i) {
        pool.submit([&ran] { ++ran; });
    }
    EXPECT_THROW(pool.wait(), std::runtime_error);
    // The failure did not poison the queue: every other task still ran.
    EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, FirstExceptionWinsAndWaitClearsIt)
{
    ThreadPool pool(1);
    pool.submit([] { throw std::runtime_error("first"); });
    pool.submit([] { throw std::logic_error("second"); });
    // One thread runs the tasks in order, so the runtime_error is the
    // first capture; the logic_error is dropped (first-error-wins).
    try {
        pool.wait();
        FAIL() << "wait() must rethrow the captured exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "first");
    }

    // The pool remains usable and the stored error was consumed.
    std::atomic<bool> again{false};
    pool.submit([&again] { again = true; });
    EXPECT_NO_THROW(pool.wait());
    EXPECT_TRUE(again.load());
}

} // namespace
} // namespace dbsim::exp
