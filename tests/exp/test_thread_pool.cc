/**
 * @file
 * ThreadPool unit tests: task execution, the wait() drain barrier,
 * reuse after a drain, submissions from inside tasks, and clean
 * destruction with work still queued.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "exp/thread_pool.hh"

namespace dbsim::exp {
namespace {

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int i = 1; i <= 100; ++i) {
        pool.submit([&sum, i] { sum += i; });
    }
    pool.wait();
    EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::atomic<bool> ran{false};
    pool.submit([&ran] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, WaitIsABarrier)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 8; ++i) {
        pool.submit([&done] {
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
            ++done;
        });
    }
    pool.wait();
    // Every task observed complete at the moment wait() returns.
    EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPool, ReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, TasksCanSubmitMoreTasks)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 4; ++i) {
        pool.submit([&pool, &count] {
            ++count;
            pool.submit([&count] { ++count; });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 32; ++i) {
            pool.submit([&count] { ++count; });
        }
        // No wait(): the destructor must finish the queue, not drop it.
    }
    EXPECT_EQ(count.load(), 32);
}

} // namespace
} // namespace dbsim::exp
