/**
 * @file
 * exp::AloneIpcCache tests. The contract under test: concurrent get()
 * calls for the same benchmark perform exactly one computation (the
 * first requester computes, latecomers block on its shared future), and
 * results are stable across calls.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "exp/alone_cache.hh"

namespace dbsim::exp {
namespace {

TEST(AloneIpcCache, ComputesEachBenchmarkOnce)
{
    AloneIpcCache cache({}, [](const std::string &bench) {
        return static_cast<double>(bench.size());
    });

    EXPECT_DOUBLE_EQ(cache.get("lbm"), 3.0);
    EXPECT_DOUBLE_EQ(cache.get("lbm"), 3.0);
    EXPECT_DOUBLE_EQ(cache.get("bzip2"), 5.0);
    EXPECT_EQ(cache.computeCount(), 2u);
}

TEST(AloneIpcCache, ForMixSharesEntries)
{
    AloneIpcCache cache({}, [](const std::string &bench) {
        return static_cast<double>(bench.size());
    });

    auto v = cache.forMix({"lbm", "mcf", "lbm", "mcf"});
    ASSERT_EQ(v.size(), 4u);
    EXPECT_DOUBLE_EQ(v[0], 3.0);
    EXPECT_DOUBLE_EQ(v[1], 3.0);
    EXPECT_EQ(v[0], v[2]);
    EXPECT_EQ(v[1], v[3]);
    EXPECT_EQ(cache.computeCount(), 2u);
}

TEST(AloneIpcCache, ConcurrentRequestsComputeOnce)
{
    // A slow compute function maximizes the window in which a racy
    // implementation would duplicate work.
    std::atomic<int> in_flight{0};
    std::atomic<int> max_in_flight{0};
    AloneIpcCache cache({}, [&](const std::string &bench) {
        int now = ++in_flight;
        int seen = max_in_flight.load();
        while (now > seen &&
               !max_in_flight.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        --in_flight;
        return static_cast<double>(bench.size());
    });

    std::vector<std::thread> threads;
    std::vector<double> results(8, 0.0);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back(
            [&cache, &results, t] { results[t] = cache.get("lbm"); });
    }
    for (auto &th : threads) {
        th.join();
    }

    EXPECT_EQ(cache.computeCount(), 1u);
    EXPECT_EQ(max_in_flight.load(), 1);
    for (double r : results) {
        EXPECT_DOUBLE_EQ(r, 3.0);
    }
}

TEST(AloneIpcCache, ConcurrentDistinctBenchmarksDoNotSerialize)
{
    // Different benchmarks must compute independently (one per
    // requester), not behind one global computation lock.
    AloneIpcCache cache({}, [](const std::string &bench) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return static_cast<double>(bench.size());
    });

    std::vector<std::string> benches = {"a", "bb", "ccc", "dddd"};
    std::vector<std::thread> threads;
    for (const auto &b : benches) {
        threads.emplace_back([&cache, b] {
            EXPECT_DOUBLE_EQ(cache.get(b),
                             static_cast<double>(b.size()));
        });
    }
    for (auto &th : threads) {
        th.join();
    }
    EXPECT_EQ(cache.computeCount(), 4u);
}

TEST(AloneIpcCache, RealComputeIsDeterministic)
{
    // Default compute path: 1-core Baseline runs, repeated lookups
    // bit-identical.
    SystemConfig cfg;
    cfg.core.warmupInstrs = 20'000;
    cfg.core.measureInstrs = 20'000;
    AloneIpcCache a(cfg);
    AloneIpcCache b(cfg);
    EXPECT_EQ(a.get("lbm"), b.get("lbm"));
    EXPECT_EQ(a.computeCount(), 1u);
}

TEST(AloneRunConfig, PinsTheCanonicalTopology)
{
    SystemConfig base;
    base.numCores = 64;
    base.mech = Mechanism::DbiAwb;
    base.llcSlices = 4;
    base.dram.channels = 4;
    base.shardHopLatency = 64;
    base.numShards = 8;
    base.seed = 42;
    base.core.warmupInstrs = 123;

    SystemConfig alone = aloneRunConfig(base);
    EXPECT_EQ(alone.numCores, 1u);
    EXPECT_EQ(alone.mech, MechanismSpec(Mechanism::Baseline));
    EXPECT_EQ(alone.llcSlices, 1u);
    EXPECT_EQ(alone.dram.channels, 1u);
    EXPECT_EQ(alone.shardHopLatency, 0u);
    EXPECT_EQ(alone.numShards, 0u);
    // Scalar parameters are inherited untouched.
    EXPECT_EQ(alone.seed, 42u);
    EXPECT_EQ(alone.core.warmupInstrs, 123u);
    EXPECT_EQ(alone.llcBytesPerCore, base.llcBytesPerCore);
}

// Regression: alone runs used to inherit llcSlices/dram.channels/
// shardHopLatency from the shared machine, so sweeping --slices
// silently changed the fairness-metric denominators. The alone IPC of
// a benchmark must be one number, whatever machine the mix runs on.
TEST(AloneIpcCache, AloneIpcDoesNotDriftWithSharedTopology)
{
    SystemConfig base1;
    base1.numCores = 2;
    base1.core.warmupInstrs = 20'000;
    base1.core.measureInstrs = 15'000;

    SystemConfig base4 = base1;
    base4.llcSlices = 4;
    base4.dram.channels = 4;
    base4.shardHopLatency = 64;

    AloneIpcCache at1(base1);
    AloneIpcCache at4(base4);
    EXPECT_EQ(at1.get("mcf"), at4.get("mcf"));
}

} // namespace
} // namespace dbsim::exp
