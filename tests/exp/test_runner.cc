/**
 * @file
 * ExperimentRunner integration tests. The core guarantee under test is
 * determinism by construction: the same SweepSpec and seed produce
 * bit-identical records (and JSONL lines) at --jobs 1 and --jobs 8;
 * parallelism changes completion order only, and the runner re-orders
 * records by point index before returning.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "exp/runner.hh"

namespace dbsim::exp {
namespace {

SweepSpec
smallMixSweep()
{
    SystemConfig base;
    base.numCores = 2;
    base.core.warmupInstrs = 20'000;
    base.core.measureInstrs = 15'000;

    SweepSpec spec(base);
    for (Mechanism m : {Mechanism::Baseline, Mechanism::DbiAwbClb}) {
        spec.addMixSim(m, {"lbm", "libquantum"});
        spec.addMixSim(m, {"mcf", "bzip2"});
    }
    return spec;
}

std::vector<std::string>
runToJsonLines(const SweepSpec &spec, std::uint32_t jobs)
{
    RunOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    opts.experiment = "test";
    auto records = ExperimentRunner(opts).run(spec);

    std::vector<std::string> lines;
    lines.reserve(records.size());
    for (const auto &rec : records) {
        lines.push_back(rec.toJsonLine());
    }
    return lines;
}

TEST(ExperimentRunner, RecordsComeBackInSpecOrder)
{
    RunOptions opts;
    opts.jobs = 8;
    opts.progress = false;
    SweepSpec spec;
    for (int i = 0; i < 16; ++i) {
        spec.addCustom([i](PointRecord &rec) {
            rec.mechanism = "custom";
            rec.metrics["i"] = static_cast<double>(i);
        });
    }
    auto records = ExperimentRunner(opts).run(spec);
    ASSERT_EQ(records.size(), 16u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].index, i);
        EXPECT_DOUBLE_EQ(records[i].metric("i"),
                         static_cast<double>(i));
    }
}

TEST(ExperimentRunner, ParallelRunIsBitIdenticalToSerial)
{
    auto serial = runToJsonLines(smallMixSweep(), 1);
    auto parallel = runToJsonLines(smallMixSweep(), 8);
    // Records are index-ordered on return, so this is exact equality,
    // not equality modulo ordering.
    EXPECT_EQ(serial, parallel);
}

TEST(ExperimentRunner, MixSimRecordsCarryMulticoreMetrics)
{
    RunOptions opts;
    opts.progress = false;
    auto records = ExperimentRunner(opts).run(smallMixSweep());
    ASSERT_EQ(records.size(), 4u);
    for (const auto &rec : records) {
        EXPECT_GT(rec.metric("weightedSpeedup"), 0.0);
        EXPECT_GT(rec.metric("harmonicSpeedup"), 0.0);
        EXPECT_GT(rec.metric("instructionThroughput"), 0.0);
        EXPECT_GT(rec.metric("maxSlowdown"), 0.0);
        EXPECT_GT(rec.metric("aloneIpc0"), 0.0);
        EXPECT_GT(rec.metric("aloneIpc1"), 0.0);
        EXPECT_FALSE(rec.mechanism.empty());
        EXPECT_FALSE(rec.mix.empty());
    }
    // Same mix, same alone IPCs regardless of mechanism.
    EXPECT_EQ(records[0].metric("aloneIpc0"),
              records[2].metric("aloneIpc0"));
}

TEST(ExperimentRunner, JsonlSinkStreamsEveryRecord)
{
    std::string path = ::testing::TempDir() + "dbsim_runner_test.jsonl";
    std::remove(path.c_str());

    RunOptions opts;
    opts.jobs = 4;
    opts.progress = false;
    opts.jsonlPath = path;
    opts.experiment = "sink_test";
    auto records = ExperimentRunner(opts).run(smallMixSweep());

    std::vector<std::string> file_lines;
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    while (std::getline(in, line)) {
        file_lines.push_back(line);
    }
    std::remove(path.c_str());

    // The file streams records in completion order; sorted, it must
    // match the returned records exactly.
    std::vector<std::string> expected;
    for (const auto &rec : records) {
        EXPECT_EQ(rec.experiment, "sink_test");
        expected.push_back(rec.toJsonLine());
    }
    std::sort(expected.begin(), expected.end());
    std::sort(file_lines.begin(), file_lines.end());
    EXPECT_EQ(file_lines, expected);
}

TEST(ExperimentRunner, CustomPointTagsSurviveIntoRecords)
{
    RunOptions opts;
    opts.progress = false;
    SweepSpec spec;
    auto &pt = spec.addCustom(
        [](PointRecord &rec) { rec.metrics["x"] = 1.0; });
    pt.tags["axis"] = "value";
    auto records = ExperimentRunner(opts).run(spec);
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].tags.at("axis"), "value");
}

} // namespace
} // namespace dbsim::exp
