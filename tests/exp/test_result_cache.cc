/**
 * @file
 * Content-hash result cache tests: canonical-key semantics (semantic
 * fields in, execution/observer knobs out), persistence across
 * instances, stamp-based invalidation, corruption tolerance, and the
 * end-to-end guarantee through the ExperimentRunner — a repeated sweep
 * over identical content performs zero new simulations and produces
 * bit-identical records.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "exp/result_cache.hh"
#include "exp/runner.hh"

namespace dbsim::exp {
namespace {

class ResultCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir = ::testing::TempDir() + "dbsim_result_cache_" +
              std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        std::filesystem::remove_all(dir);
        // Pin the stamp: these tests exercise persistence across
        // ResultCache instances, which requires a stable stamp.
        ::setenv("DBSIM_CACHE_STAMP", "test-stamp-1", 1);
    }

    void TearDown() override
    {
        ::unsetenv("DBSIM_CACHE_STAMP");
        std::filesystem::remove_all(dir);
    }

    std::string dir;
};

TEST(Fnv1a64, KnownVectors)
{
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
    EXPECT_EQ(keyHex(0xcbf29ce484222325ull), "cbf29ce484222325");
}

TEST(CanonicalConfig, ExecutionKnobsAndObserversAreExcluded)
{
    SystemConfig a;
    SystemConfig b = a;
    b.numShards = 8;
    b.auditEvery = 1;
    b.telemetry.histograms = true;
    b.profile = true;
    EXPECT_EQ(canonicalConfig(a), canonicalConfig(b));
}

TEST(CanonicalConfig, SemanticFieldsChangeTheKey)
{
    SystemConfig base;
    std::vector<SystemConfig> variants(7, base);
    variants[0].seed = 999;
    variants[1].numCores = 4;
    variants[2].mech = Mechanism::DbiAwb;
    variants[3].dbi.alpha = 0.5;
    variants[4].dram.tCas = 9;
    variants[5].core.measureInstrs = 1;
    variants[6].llcSlices = 4;
    const std::string canon = canonicalConfig(base);
    for (const SystemConfig &v : variants) {
        EXPECT_NE(canonicalConfig(v), canon);
    }
}

TEST(CanonicalConfig, DCacheFieldsAppearOnlyWhenEnabled)
{
    // A disabled DRAM-cache tier must keep canonical strings (and
    // content keys) byte-identical to records written before the tier
    // existed — and its parameters must be inert while disabled.
    SystemConfig off;
    const std::string off_canon = canonicalConfig(off);
    EXPECT_EQ(off_canon.find("dcache"), std::string::npos);

    SystemConfig off_tweaked = off;
    off_tweaked.dcache.pageBytes = 4096;
    off_tweaked.dcache.sizeBytes = 128ull << 20;
    EXPECT_EQ(canonicalConfig(off_tweaked), off_canon);

    SystemConfig on = off;
    on.dcache.enable = true;
    const std::string on_canon = canonicalConfig(on);
    EXPECT_NE(on_canon, off_canon);
    EXPECT_NE(on_canon.find("dcache.enable"), std::string::npos);

    // Every semantic dcache knob perturbs the enabled key.
    std::vector<SystemConfig> variants(7, on);
    variants[0].dcache.sizeBytes = 128ull << 20;
    variants[1].dcache.pageBytes = 4096;
    variants[2].dcache.assoc = 8;
    variants[3].dcache.dirtyInTags = true;
    variants[4].dcache.indexEntries = 4096;
    variants[5].dcache.tagLatency = 20;
    variants[6].dcache.seed = 77;
    for (const SystemConfig &v : variants) {
        EXPECT_NE(canonicalConfig(v), on_canon);
    }
}

TEST(CanonicalConfig, TraceAndSamplingFieldsAppearOnlyWhenInUse)
{
    // Synthetic-workload configs must keep producing the exact
    // canonical strings they produced before trace ingest existed —
    // otherwise every cached record from earlier builds goes stale.
    SystemConfig plain;
    const std::string canon = canonicalConfig(plain);
    EXPECT_EQ(canon.find("trace."), std::string::npos);
    EXPECT_EQ(canon.find("sample."), std::string::npos);

    // Disabled sampling knobs are inert, like the disabled dcache.
    SystemConfig zeroed = plain;
    zeroed.sampling = SamplingConfig{};
    EXPECT_EQ(canonicalConfig(zeroed), canon);

    SystemConfig sampled = plain;
    sampled.sampling.ffOps = 1'000'000;
    const std::string scanon = canonicalConfig(sampled);
    EXPECT_NE(scanon, canon);
    EXPECT_NE(scanon.find("sample.ff"), std::string::npos);

    // Every sampling knob perturbs the enabled key.
    SystemConfig windows = sampled;
    windows.sampling.sampleOps = 5'000;
    windows.sampling.periodOps = 50'000;
    EXPECT_NE(canonicalConfig(windows), scanon);
}

TEST(CanonicalConfig, RewritingTraceInPlaceFlipsTheKey)
{
    // The trace participates by content hash: an in-place rewrite must
    // flip the key even though path, size, and record count are all
    // unchanged — the staleness case mtime-free caches get wrong.
    const std::string trace =
        ::testing::TempDir() + "dbsim_cache_trace_key.txt";
    std::ofstream(trace) << "1 R 1000\n2 W 2000\n";

    SystemConfig cfg;
    cfg.traceFile = trace;
    const std::string before = canonicalConfig(cfg);
    EXPECT_NE(before.find("trace.hash"), std::string::npos);

    std::ofstream(trace) << "1 R 1000\n2 W 2040\n"; // same shape
    EXPECT_NE(canonicalConfig(cfg), before);

    std::ofstream(trace) << "1 R 1000\n2 W 2000\n"; // byte-identical
    EXPECT_EQ(canonicalConfig(cfg), before);
    std::remove(trace.c_str());
}

TEST(Fnv1a64, FileHashMatchesInMemoryHash)
{
    // fnv1a64File streams in chunks; it must agree with the in-memory
    // hash of the same bytes, including across its refill boundary.
    const std::string path =
        ::testing::TempDir() + "dbsim_cache_hash_file.bin";
    std::string content;
    for (int i = 0; i < 300'000; ++i) { // well past one 64KB chunk
        content.push_back(static_cast<char>(i * 131 % 251));
    }
    std::ofstream(path, std::ios::binary)
        .write(content.data(),
               static_cast<std::streamsize>(content.size()));
    EXPECT_EQ(fnv1a64File(path), fnv1a64(content));
    std::remove(path.c_str());
}

TEST(Fnv1a64, MissingTraceFileIsFatalAtKeyTime)
{
    // A vanished trace must refuse at hashing time, not produce a key
    // that aliases some other config.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(fnv1a64File("/nonexistent/trace.champsim"),
                 "cannot read trace file");
}

TEST(CanonicalPoint, MixSimFoldsInThePinnedAloneConfig)
{
    SweepSpec spec;
    spec.base().numCores = 2;
    SweepPoint &p =
        spec.addMixSim(Mechanism::Baseline, {"lbm", "mcf"});

    SystemConfig alone_a = spec.aloneBase();
    SystemConfig alone_b = alone_a;
    alone_b.dram.tCas = 9;  // a semantic field of the alone runs
    EXPECT_NE(canonicalPoint(p, alone_a), canonicalPoint(p, alone_b));

    // The alone config is pinned before canonicalization: topology
    // drift on the alone base must NOT change the key (that was the
    // alone-run topology bug).
    SystemConfig alone_c = alone_a;
    alone_c.llcSlices = 4;
    alone_c.dram.channels = 4;
    alone_c.shardHopLatency = 64;
    alone_c.numShards = 8;
    EXPECT_EQ(canonicalPoint(p, alone_a), canonicalPoint(p, alone_c));
}

TEST(CanonicalPoint, SimPointsIgnoreTheAloneBase)
{
    SweepSpec spec;
    SweepPoint &p = spec.addSim(Mechanism::Baseline, {"lbm"});
    SystemConfig alone_a = spec.aloneBase();
    SystemConfig alone_b = alone_a;
    alone_b.dram.tCas = 9;
    EXPECT_EQ(canonicalPoint(p, alone_a), canonicalPoint(p, alone_b));
}

TEST_F(ResultCacheTest, InsertThenLookupAcrossInstances)
{
    const std::string canon = "v1;some-canonical-content;";
    const std::uint64_t key = fnv1a64(canon);

    PointRecord rec;
    rec.index = 7;
    rec.experiment = "whatever";
    rec.mechanism = "DBI+AWB";
    rec.mix = "lbm+mcf";
    rec.tags["axis"] = "x";
    rec.metrics["ipc0"] = 0.25;
    rec.metrics["nan_metric"] =
        std::numeric_limits<double>::quiet_NaN();
    rec.stats["big"] = 18446744073709551615ull;

    {
        ResultCache cache(dir);
        EXPECT_EQ(cache.entryCount(), 0u);
        PointRecord out;
        EXPECT_FALSE(cache.lookup(key, canon, out));
        cache.insert(key, canon, rec);
        EXPECT_TRUE(cache.lookup(key, canon, out));
        EXPECT_EQ(out.mechanism, "DBI+AWB");
        EXPECT_EQ(cache.stats().hits, 1u);
        EXPECT_EQ(cache.stats().misses, 1u);
    }

    // A fresh instance over the same directory (same stamp) reloads
    // the entry, payload intact — including the 2^64-1 stat and the
    // NaN metric, and excluding the presentation fields.
    ResultCache cache(dir);
    EXPECT_EQ(cache.entryCount(), 1u);
    PointRecord out;
    ASSERT_TRUE(cache.lookup(key, canon, out));
    EXPECT_EQ(out.mechanism, "DBI+AWB");
    EXPECT_EQ(out.mix, "lbm+mcf");
    EXPECT_EQ(out.metrics.at("ipc0"), 0.25);
    EXPECT_TRUE(std::isnan(out.metrics.at("nan_metric")));
    EXPECT_EQ(out.stats.at("big"), 18446744073709551615ull);
    EXPECT_TRUE(out.experiment.empty());
    EXPECT_TRUE(out.tags.empty());
}

TEST_F(ResultCacheTest, HashHitWithDifferentCanonIsAMiss)
{
    const std::string canon = "v1;content;";
    const std::uint64_t key = fnv1a64(canon);
    ResultCache cache(dir);
    PointRecord rec;
    rec.mechanism = "m";
    cache.insert(key, canon, rec);

    // Same key, different canonical string — what an FNV collision
    // would look like. Must degrade to a miss, never a wrong result.
    PointRecord out;
    EXPECT_FALSE(cache.lookup(key, "v1;other-content;", out));
    EXPECT_TRUE(cache.lookup(key, canon, out));
}

TEST_F(ResultCacheTest, BuildStampChangeWipesTheStore)
{
    const std::string canon = "v1;content;";
    const std::uint64_t key = fnv1a64(canon);
    {
        ResultCache cache(dir);
        PointRecord rec;
        rec.mechanism = "m";
        cache.insert(key, canon, rec);
    }
    ::setenv("DBSIM_CACHE_STAMP", "test-stamp-2", 1);
    {
        // New stamp: simulator changed, stored results are stale.
        ResultCache cache(dir);
        EXPECT_EQ(cache.entryCount(), 0u);
        PointRecord out;
        EXPECT_FALSE(cache.lookup(key, canon, out));
    }
    ::setenv("DBSIM_CACHE_STAMP", "test-stamp-1", 1);
    // The wipe was persistent, not just a refused load.
    ResultCache cache(dir);
    EXPECT_EQ(cache.entryCount(), 0u);
}

TEST_F(ResultCacheTest, CorruptedAndTruncatedShardLinesAreDropped)
{
    const std::string canon = "v1;content;";
    const std::uint64_t key = fnv1a64(canon);
    std::string shard_file;
    {
        ResultCache cache(dir);
        PointRecord rec;
        rec.mechanism = "m";
        rec.metrics["x"] = 1.0;
        cache.insert(key, canon, rec);
    }
    // Find the one non-empty shard and vandalize it: garbage line,
    // truncated JSON, an entry whose key does not hash its canon.
    for (std::uint32_t i = 0; i < ResultCache::kNumShards; ++i) {
        char name[32];
        std::snprintf(name, sizeof(name), "shard_%02x.jsonl", i);
        std::string path = dir + "/" + name;
        std::ifstream probe(path);
        if (probe && probe.peek() != EOF) {
            shard_file = path;
        }
    }
    ASSERT_FALSE(shard_file.empty());
    {
        std::ofstream out(shard_file, std::ios::app);
        out << "not json at all\n";
        out << "{\"key\":\"0000000000000000\",\"canon\":\"v1;forged;\","
               "\"mechanism\":\"evil\",\"mix\":\"\",\"metrics\":{},"
               "\"stats\":{}}\n";
        out << "{\"key\":\"00\",\"canon\":\"trunc\n";
    }

    ResultCache cache(dir);
    // Only the legitimate entry survives; the forged/corrupt lines are
    // skipped (and will simply be recomputed by whoever needs them).
    EXPECT_EQ(cache.entryCount(), 1u);
    PointRecord out;
    EXPECT_TRUE(cache.lookup(key, canon, out));
    EXPECT_EQ(out.mechanism, "m");
    PointRecord forged;
    EXPECT_FALSE(
        cache.lookup(fnv1a64("v1;forged;"), "v1;forged;", forged));
}

TEST_F(ResultCacheTest, RepeatSweepIsAllHitsAndBitIdentical)
{
    SweepSpec spec;
    spec.base().numCores = 2;
    spec.base().core.warmupInstrs = 20'000;
    spec.base().core.measureInstrs = 15'000;
    spec.setAloneBase(spec.base());
    for (Mechanism m : {Mechanism::Baseline, Mechanism::DbiAwbClb}) {
        spec.addMixSim(m, {"lbm", "libquantum"});
        spec.addSim(m, {"mcf", "bzip2"});
    }

    RunOptions opts;
    opts.progress = false;
    opts.experiment = "cache_test";
    opts.cacheDir = dir;

    ExperimentRunner cold(opts);
    auto first = cold.run(spec);
    EXPECT_EQ(cold.lastRun().cache.hits, 0u);
    EXPECT_EQ(cold.lastRun().cache.misses, spec.points().size());

    // Second run, fresh runner, same directory: zero simulations.
    ExperimentRunner warm(opts);
    auto second = warm.run(spec);
    EXPECT_EQ(warm.lastRun().cache.hits, spec.points().size());
    EXPECT_EQ(warm.lastRun().cache.misses, 0u);

    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].toJsonLine(), second[i].toJsonLine());
    }
}

TEST_F(ResultCacheTest, CustomPointsBypass)
{
    SweepSpec spec;
    spec.addCustom([](PointRecord &rec) { rec.metrics["x"] = 1.0; });

    RunOptions opts;
    opts.progress = false;
    opts.cacheDir = dir;
    ExperimentRunner runner(opts);
    runner.run(spec);
    EXPECT_EQ(runner.lastRun().cache.bypasses, 1u);
    EXPECT_EQ(runner.lastRun().cache.hits, 0u);
    EXPECT_EQ(runner.lastRun().cache.misses, 0u);
}

TEST_F(ResultCacheTest, ProfiledSweepsBypassButStayDeterministic)
{
    // Profiling is an observer: it must never be a cache key (the
    // canonical content ignores it) AND a profiled sweep must never be
    // served from — or insert into — the cache, because a hit would
    // skip producing the attribution and a cached profile would replay
    // stale wall-clock "facts".
    SweepSpec spec;
    spec.base().core.warmupInstrs = 20'000;
    spec.base().core.measureInstrs = 15'000;
    spec.setAloneBase(spec.base());
    spec.addSim(Mechanism::Baseline, {"mcf"});
    spec.addSim(Mechanism::DbiAwbClb, {"lbm"});

    RunOptions opts;
    opts.progress = false;
    opts.experiment = "profile_bypass";
    opts.cacheDir = dir;

    ExperimentRunner cold(opts);
    auto plain = cold.run(spec);
    EXPECT_EQ(cold.lastRun().cache.misses, spec.points().size());

    RunOptions popts = opts;
    popts.profile = true;
    ExperimentRunner profiled(popts);
    auto prof = profiled.run(spec);
    EXPECT_EQ(profiled.lastRun().cache.hits, 0u);
    EXPECT_EQ(profiled.lastRun().cache.misses, 0u);
    EXPECT_EQ(profiled.lastRun().cache.bypasses, spec.points().size());

    // Same deterministic simulation either way; only the host map
    // (excluded from metrics) differs.
    ASSERT_EQ(plain.size(), prof.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].metrics, prof[i].metrics);
        EXPECT_EQ(plain[i].stats, prof[i].stats);
    }

    // The profiled run left the cache untouched: a warm plain run is
    // still all hits from the cold run's inserts.
    ExperimentRunner warm(opts);
    warm.run(spec);
    EXPECT_EQ(warm.lastRun().cache.hits, spec.points().size());
}

} // namespace
} // namespace dbsim::exp
