/**
 * @file
 * SweepSpec unit tests: point construction, base-config propagation,
 * and the cartesian expansion of addGrid (axis nesting order, tag
 * coordinates, override application).
 */

#include <gtest/gtest.h>

#include "exp/sweep.hh"

namespace dbsim::exp {
namespace {

TEST(SweepSpec, AddSimInheritsBaseConfig)
{
    SweepSpec spec;
    spec.base().seed = 42;
    spec.base().core.warmupInstrs = 123;

    auto &pt = spec.addSim(Mechanism::Dawb, {"lbm"});
    EXPECT_EQ(pt.index, 0u);
    EXPECT_EQ(pt.kind, PointKind::Sim);
    EXPECT_EQ(pt.cfg.mech, Mechanism::Dawb);
    EXPECT_EQ(pt.cfg.seed, 42u);
    EXPECT_EQ(pt.cfg.core.warmupInstrs, 123u);
    EXPECT_EQ(pt.mix, WorkloadMix{"lbm"});
    EXPECT_FALSE(spec.hasMixSim());
}

TEST(SweepSpec, AddMixSimSetsCoreCountAndKind)
{
    SweepSpec spec;
    spec.base().numCores = 4;

    auto &pt = spec.addMixSim(Mechanism::Baseline,
                              {"lbm", "mcf", "astar", "bzip2"});
    EXPECT_EQ(pt.kind, PointKind::MixSim);
    EXPECT_EQ(pt.cfg.numCores, 4u);
    EXPECT_TRUE(spec.hasMixSim());
}

TEST(SweepSpec, PointEditsAfterAddStick)
{
    SweepSpec spec;
    auto &pt = spec.addSim(Mechanism::Dbi, {"lbm"});
    pt.cfg.llcBytesPerCore = 4ull << 20;
    pt.tags["mb"] = "4";

    EXPECT_EQ(spec.points().at(0).cfg.llcBytesPerCore, 4ull << 20);
    EXPECT_EQ(spec.points().at(0).tags.at("mb"), "4");
}

TEST(SweepSpec, AloneBaseDefaultsToConstructionTimeBase)
{
    SystemConfig cfg;
    cfg.seed = 7;
    SweepSpec spec(cfg);
    spec.base().seed = 99;  // later edits must not leak into aloneBase

    EXPECT_EQ(spec.aloneBase().seed, 7u);
    spec.setAloneBase(spec.base());
    EXPECT_EQ(spec.aloneBase().seed, 99u);
}

TEST(SweepSpec, GridIsFullCartesianProductInNestingOrder)
{
    SweepSpec spec;
    std::vector<std::vector<ConfigOverride>> axes = {
        {{"alpha", "0.25", [](SystemConfig &c) { c.dbi.alpha = 0.25; }},
         {"alpha", "0.5", [](SystemConfig &c) { c.dbi.alpha = 0.5; }}},
        {{"gran", "16", [](SystemConfig &c) { c.dbi.granularity = 16; }},
         {"gran", "64", [](SystemConfig &c) { c.dbi.granularity = 64; }},
         {"gran", "128",
          [](SystemConfig &c) { c.dbi.granularity = 128; }}},
    };
    spec.addGrid({Mechanism::DbiAwb, Mechanism::Dbi},
                 {{"lbm"}, {"mcf"}}, PointKind::Sim, axes);

    // 2 alpha x 3 gran x 2 mech x 2 mix, axes outermost, mixes
    // innermost.
    ASSERT_EQ(spec.points().size(), 24u);
    const auto &first = spec.points().front();
    EXPECT_EQ(first.tags.at("alpha"), "0.25");
    EXPECT_EQ(first.tags.at("gran"), "16");
    EXPECT_EQ(first.cfg.mech, Mechanism::DbiAwb);
    EXPECT_EQ(first.mix, WorkloadMix{"lbm"});
    EXPECT_DOUBLE_EQ(first.cfg.dbi.alpha, 0.25);
    EXPECT_EQ(first.cfg.dbi.granularity, 16u);

    // Second point: innermost loop (mix) advances first.
    EXPECT_EQ(spec.points()[1].mix, WorkloadMix{"mcf"});
    EXPECT_EQ(spec.points()[1].cfg.mech, Mechanism::DbiAwb);

    // Third: mechanism advances after mixes are exhausted.
    EXPECT_EQ(spec.points()[2].cfg.mech, Mechanism::Dbi);
    EXPECT_EQ(spec.points()[2].mix, WorkloadMix{"lbm"});

    const auto &last = spec.points().back();
    EXPECT_EQ(last.tags.at("alpha"), "0.5");
    EXPECT_EQ(last.tags.at("gran"), "128");
    EXPECT_EQ(last.cfg.mech, Mechanism::Dbi);
    EXPECT_EQ(last.mix, WorkloadMix{"mcf"});
    EXPECT_DOUBLE_EQ(last.cfg.dbi.alpha, 0.5);
    EXPECT_EQ(last.cfg.dbi.granularity, 128u);

    // Indices are dense and ordered.
    for (std::size_t i = 0; i < spec.points().size(); ++i) {
        EXPECT_EQ(spec.points()[i].index, i);
    }
}

TEST(SweepSpec, GridWithoutAxesIsMechByMix)
{
    SweepSpec spec;
    spec.addGrid({Mechanism::Baseline, Mechanism::Dawb,
                  Mechanism::DbiAwbClb},
                 {{"lbm"}, {"mcf"}}, PointKind::MixSim);
    EXPECT_EQ(spec.points().size(), 6u);
    EXPECT_TRUE(spec.hasMixSim());
}

} // namespace
} // namespace dbsim::exp
