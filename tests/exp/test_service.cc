/**
 * @file
 * Farm-service protocol tests, driven through the handleConnection()
 * seam over a socketpair — no real listening socket needed. The core
 * guarantees: malformed or invalid requests produce {"type":"error"}
 * responses and leave the connection (and the would-be server process)
 * alive, sweeps stream record/progress lines before one done line, and
 * a repeated sweep over the same content is served entirely from the
 * warm cache.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "exp/json.hh"
#include "exp/service.hh"

namespace dbsim::exp {
namespace {

/** Client end of a socketpair talking JSON lines to the service. */
class FarmClient
{
  public:
    explicit FarmClient(FarmService &svc)
    {
        int sv[2];
        EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        fd = sv[0];
        int server_fd = sv[1];
        server = std::thread([&svc, server_fd] {
            svc.handleConnection(server_fd);
            ::close(server_fd);
        });
    }

    ~FarmClient()
    {
        close();
        server.join();
    }

    void send(const std::string &line)
    {
        std::string out = line + "\n";
        ASSERT_EQ(::write(fd, out.data(), out.size()),
                  static_cast<ssize_t>(out.size()));
    }

    /** Next response line parsed as JSON; fails the test on EOF. */
    JsonValue recv()
    {
        std::string line;
        EXPECT_TRUE(recvRaw(line));
        JsonValue v;
        std::string err;
        EXPECT_TRUE(parseJson(line, v, &err)) << line << ": " << err;
        return v;
    }

    /** Next raw line; false on EOF. */
    bool recvRaw(std::string &line)
    {
        std::size_t nl;
        while ((nl = buf.find('\n')) == std::string::npos) {
            char chunk[4096];
            ssize_t n = ::read(fd, chunk, sizeof(chunk));
            if (n <= 0) {
                return false;
            }
            buf.append(chunk, static_cast<std::size_t>(n));
        }
        line = buf.substr(0, nl);
        buf.erase(0, nl + 1);
        return true;
    }

    std::string type(const JsonValue &v)
    {
        const JsonValue *t = v.find("type");
        return t && t->isString() ? t->text : "<none>";
    }

    void close()
    {
        if (fd >= 0) {
            ::close(fd);
            fd = -1;
        }
    }

  private:
    int fd = -1;
    std::string buf;
    std::thread server;
};

class FarmServiceTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir = ::testing::TempDir() + "dbsim_farm_" +
              std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        std::filesystem::remove_all(dir);
        cfg.cacheDir = dir;
        cfg.jobs = 2;
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    std::string dir;
    ServiceConfig cfg;
};

TEST_F(FarmServiceTest, PingPongAndStats)
{
    FarmService svc(cfg);
    FarmClient client(svc);
    client.send(R"({"op":"ping"})");
    JsonValue pong = client.recv();
    EXPECT_EQ(client.type(pong), "pong");

    client.send(R"({"op":"stats"})");
    JsonValue stats = client.recv();
    EXPECT_EQ(client.type(stats), "stats");
    const JsonValue *cache = stats.find("cache");
    ASSERT_NE(cache, nullptr);
    ASSERT_TRUE(cache->isObject());
    std::uint64_t entries = 99;
    ASSERT_TRUE(stats.find("entries")->asU64(entries));
    EXPECT_EQ(entries, 0u);
}

TEST_F(FarmServiceTest, BadRequestsAreErrorsNotDisconnects)
{
    FarmService svc(cfg);
    FarmClient client(svc);

    const char *bad[] = {
        "this is not json",
        R"({"no_op":1})",
        R"({"op":"frobnicate"})",
        R"({"op":"sweep"})",
        R"({"op":"sweep","mechs":["NoSuchMechanism"],)"
        R"("mixes":[["lbm"]]})",
        R"({"op":"sweep","mechs":["Baseline"],)"
        R"("mixes":[["no_such_benchmark"]]})",
        R"({"op":"sweep","mechs":["Baseline"],)"
        R"("mixes":[["lbm"]],"kind":"bogus"})",
        R"({"op":"sweep","mechs":["Baseline"],)"
        R"("mixes":[["lbm"]],"seed":-1})",
        R"({"op":"sweep","mechs":["Baseline"],)"
        R"("mixes":[["lbm","mcf"]],"slices":3})",
        // hop on a mix that resolves to one slice / one channel.
        R"({"op":"sweep","mechs":["Baseline"],)"
        R"("mixes":[["lbm","mcf"]],"hop":64})",
    };
    for (const char *req : bad) {
        SCOPED_TRACE(req);
        client.send(req);
        JsonValue resp = client.recv();
        EXPECT_EQ(client.type(resp), "error");
        EXPECT_FALSE(resp.find("message")->text.empty());
    }

    // The connection survived all of it.
    client.send(R"({"op":"ping"})");
    EXPECT_EQ(client.type(client.recv()), "pong");
}

TEST_F(FarmServiceTest, FileTraceMixEntriesAreRejected)
{
    FarmService svc(cfg);
    FarmClient client(svc);
    // "@path" names open host files in the bench binaries; the server
    // must refuse them rather than read arbitrary files for clients.
    client.send(R"({"op":"sweep","mechs":["Baseline"],)"
                R"("mixes":[["@/etc/passwd"]]})");
    JsonValue resp = client.recv();
    EXPECT_EQ(client.type(resp), "error");
}

TEST_F(FarmServiceTest, SweepStreamsRecordsProgressThenDone)
{
    FarmService svc(cfg);
    FarmClient client(svc);
    client.send(
        R"({"op":"sweep","mechs":["Baseline","dbi+awb"],)"
        R"("mixes":[["lbm","libquantum"]],)"
        R"("warmup":20000,"measure":15000,"experiment":"farmtest"})");

    std::size_t records = 0, progress = 0;
    std::uint64_t last_completed = 0;
    JsonValue done;
    while (true) {
        JsonValue resp = client.recv();
        std::string t = client.type(resp);
        if (t == "record") {
            ++records;
            const JsonValue *data = resp.find("data");
            ASSERT_NE(data, nullptr);
            EXPECT_EQ(data->find("experiment")->text, "farmtest");
        } else if (t == "progress") {
            ++progress;
            ASSERT_TRUE(
                resp.find("completed")->asU64(last_completed));
        } else {
            done = resp;
            break;
        }
    }
    EXPECT_EQ(client.type(done), "done");
    EXPECT_EQ(records, 2u);
    EXPECT_EQ(progress, 2u);
    EXPECT_EQ(last_completed, 2u);
    std::uint64_t points = 0;
    ASSERT_TRUE(done.find("points")->asU64(points));
    EXPECT_EQ(points, 2u);
}

TEST_F(FarmServiceTest, RepeatSweepIsServedFromTheWarmCache)
{
    FarmService svc(cfg);
    const std::string sweep =
        R"({"op":"sweep","mechs":["Baseline"],)"
        R"("mixes":[["lbm"],["mcf"]],)"
        R"("warmup":20000,"measure":15000})";

    auto runAndCountHits = [&](std::size_t *records) {
        FarmClient client(svc);
        client.send(sweep);
        *records = 0;
        while (true) {
            JsonValue resp = client.recv();
            std::string t = client.type(resp);
            if (t == "record") {
                ++*records;
            } else if (t == "done") {
                std::uint64_t hits = 0;
                resp.find("cache")->find("hits")->asU64(hits);
                return hits;
            } else {
                EXPECT_EQ(t, "progress");
            }
        }
    };

    std::size_t first_records = 0, second_records = 0;
    EXPECT_EQ(runAndCountHits(&first_records), 0u);
    EXPECT_EQ(first_records, 2u);
    // Second client, same content: all hits, identical record count.
    EXPECT_EQ(runAndCountHits(&second_records), 2u);
    EXPECT_EQ(second_records, 2u);
}

TEST_F(FarmServiceTest, MetricsVerbEmitsPrometheusText)
{
    FarmService svc(cfg);
    FarmClient client(svc);
    client.send(R"({"op":"ping"})");
    EXPECT_EQ(client.type(client.recv()), "pong");
    client.send(R"({"op":"ping"})");
    EXPECT_EQ(client.type(client.recv()), "pong");

    client.send(R"({"op":"metrics"})");
    JsonValue resp = client.recv();
    EXPECT_EQ(client.type(resp), "metrics");
    const JsonValue *ct = resp.find("contentType");
    ASSERT_NE(ct, nullptr);
    EXPECT_EQ(ct->text, "text/plain; version=0.0.4");
    const JsonValue *body = resp.find("body");
    ASSERT_NE(body, nullptr);
    ASSERT_TRUE(body->isString());
    const std::string &text = body->text;
    EXPECT_NE(text.find("# TYPE dbsim_farm_uptime_seconds gauge"),
              std::string::npos);
    EXPECT_NE(text.find("dbsim_farm_requests_total{op=\"ping\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE dbsim_farm_requests_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("dbsim_farm_errors_total 0\n"),
              std::string::npos);
    EXPECT_NE(text.find("dbsim_farm_sweeps_in_flight 0\n"),
              std::string::npos);
    // The cache is configured, so its traffic is exported too.
    EXPECT_NE(text.find("dbsim_farm_cache_entries"), std::string::npos);
}

TEST_F(FarmServiceTest, CountersAdvanceAcrossConcurrentClients)
{
    FarmService svc(cfg);
    const std::string sweep =
        R"({"op":"sweep","mechs":["Baseline"],"mixes":[["lbm"]],)"
        R"("warmup":20000,"measure":15000})";

    // Two clients, each on its own connection thread, sweeping at the
    // same time: every counter below is touched from both threads.
    auto drain = [&](FarmClient &c) {
        while (true) {
            JsonValue resp = c.recv();
            std::string t = c.type(resp);
            if (t == "done") {
                return;
            }
            ASSERT_TRUE(t == "record" || t == "progress") << t;
        }
    };
    {
        FarmClient a(svc), b(svc);
        a.send(sweep);
        b.send(sweep);
        drain(a);
        drain(b);
    }

    FarmClient c(svc);
    c.send(R"({"op":"stats"})");
    JsonValue stats = c.recv();
    EXPECT_EQ(c.type(stats), "stats");

    const JsonValue *reqs = stats.find("requests");
    ASSERT_NE(reqs, nullptr);
    std::uint64_t sweeps = 0, errors = 99;
    ASSERT_TRUE(reqs->find("sweep")->asU64(sweeps));
    ASSERT_TRUE(reqs->find("errors")->asU64(errors));
    EXPECT_EQ(sweeps, 2u);
    EXPECT_EQ(errors, 0u);

    const JsonValue *sw = stats.find("sweeps");
    ASSERT_NE(sw, nullptr);
    std::uint64_t in_flight = 99, completed = 0, count = 0, p50 = 0;
    ASSERT_TRUE(sw->find("inFlight")->asU64(in_flight));
    ASSERT_TRUE(sw->find("completed")->asU64(completed));
    ASSERT_TRUE(sw->find("count")->asU64(count));
    ASSERT_TRUE(sw->find("wallMsP50")->asU64(p50));
    EXPECT_EQ(in_flight, 0u);
    EXPECT_EQ(completed, 2u);
    EXPECT_EQ(count, 2u);
    EXPECT_GT(p50, 0u);

    EXPECT_NE(stats.find("uptimeSec"), nullptr);

    // The same totals through the Prometheus surface.
    c.send(R"({"op":"metrics"})");
    JsonValue m = c.recv();
    const std::string &text = m.find("body")->text;
    EXPECT_NE(text.find("dbsim_farm_sweeps_completed_total 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("dbsim_farm_requests_total{op=\"sweep\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("dbsim_farm_sweep_wall_ms_count 2\n"),
              std::string::npos);
}

TEST_F(FarmServiceTest, MalformedMetricsRequestIsNonFatal)
{
    FarmService svc(cfg);
    FarmClient client(svc);

    // Truncated JSON on the metrics verb: an error line, not a dead
    // server, and the error shows up in the error counter.
    client.send(R"({"op":"metrics",)");
    EXPECT_EQ(client.type(client.recv()), "error");
    client.send(R"({"op":5})");
    EXPECT_EQ(client.type(client.recv()), "error");

    client.send(R"({"op":"metrics"})");
    JsonValue resp = client.recv();
    EXPECT_EQ(client.type(resp), "metrics");
    const std::string &text = resp.find("body")->text;
    EXPECT_NE(text.find("dbsim_farm_errors_total 2\n"),
              std::string::npos);

    // And the connection still serves other verbs.
    client.send(R"({"op":"ping"})");
    EXPECT_EQ(client.type(client.recv()), "pong");
}

TEST_F(FarmServiceTest, ShutdownSaysByeAndClosesTheConnection)
{
    FarmService svc(cfg);
    FarmClient client(svc);
    client.send(R"({"op":"shutdown"})");
    JsonValue bye = client.recv();
    EXPECT_EQ(client.type(bye), "bye");
    std::string extra;
    EXPECT_FALSE(client.recvRaw(extra));  // server hung up
}

} // namespace
} // namespace dbsim::exp
