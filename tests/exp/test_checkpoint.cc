/**
 * @file
 * Checkpoint/resume tests. The contract: a sweep killed at any point
 * and restarted with the same spec skips the completed points and
 * finishes with a JSONL file byte-identical to an uninterrupted
 * `--jobs 1` run — original bytes preserved, nothing recomputed twice,
 * nothing trusted that the manifest cannot vouch for.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/checkpoint.hh"
#include "exp/jsonl_read.hh"
#include "exp/runner.hh"

namespace dbsim::exp {
namespace {

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Keep the first `n` lines of `path` (trailing newline included). */
void
truncateToLines(const std::string &path, std::size_t n)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        lines.push_back(line);
    }
    in.close();
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < n && i < lines.size(); ++i) {
        out << lines[i] << '\n';
    }
}

SweepSpec
tinySweep()
{
    SweepSpec spec;
    spec.base().numCores = 2;
    spec.base().core.warmupInstrs = 20'000;
    spec.base().core.measureInstrs = 15'000;
    spec.setAloneBase(spec.base());
    for (Mechanism m : {Mechanism::Baseline, Mechanism::DbiAwbClb}) {
        spec.addSim(m, {"lbm", "libquantum"});
        spec.addSim(m, {"mcf", "bzip2"});
    }
    return spec;
}

class CheckpointTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir = ::testing::TempDir() + "dbsim_checkpoint_" +
              ::testing::UnitTest::GetInstance()
                  ->current_test_info()
                  ->name();
        std::filesystem::remove_all(dir);
        std::filesystem::create_directories(dir);
        jsonl = dir + "/out.jsonl";
        manifest = jsonl + ".manifest";
    }

    void TearDown() override { std::filesystem::remove_all(dir); }

    std::vector<PointRecord>
    runSweep(bool resume, std::size_t *resumed = nullptr)
    {
        RunOptions opts;
        opts.progress = false;
        opts.experiment = "ckpt";
        opts.jsonlPath = jsonl;
        opts.resume = resume;
        ExperimentRunner runner(opts);
        auto records = runner.run(tinySweep());
        if (resumed) {
            *resumed = runner.lastRun().resumedPoints;
        }
        return records;
    }

    std::string dir, jsonl, manifest;
};

TEST(SweepSpecHash, DistinguishesContentNotExecution)
{
    SweepSpec a = tinySweep();
    SweepSpec b = tinySweep();
    EXPECT_EQ(sweepSpecHash(a), sweepSpecHash(b));

    SweepSpec c = tinySweep();
    c.overrideConfigs([](SystemConfig &cfg) { cfg.seed = 99; });
    EXPECT_NE(sweepSpecHash(a), sweepSpecHash(c));

    // numShards is execution-only: same sweep, same hash.
    SweepSpec d = tinySweep();
    d.overrideConfigs([](SystemConfig &cfg) { cfg.numShards = 8; });
    EXPECT_EQ(sweepSpecHash(a), sweepSpecHash(d));
}

TEST_F(CheckpointTest, SinkWritesJsonlPlusManifest)
{
    const std::string hash = "0123456789abcdef";
    {
        CheckpointSink sink(jsonl, hash, true);
        EXPECT_EQ(sink.resumedCount(), 0u);
        sink.append(0, "{\"index\":0,\"experiment\":\"e\","
                       "\"mechanism\":\"m\",\"mix\":\"x\",\"tags\":{},"
                       "\"metrics\":{\"a\":1},\"stats\":{\"b\":2}}");
    }
    JsonlFile mf = readJsonl(manifest);
    ASSERT_EQ(mf.rows.size(), 2u);
    EXPECT_EQ(mf.rows[0].value.find("spec")->text, hash);
    std::uint64_t idx = 999;
    ASSERT_TRUE(mf.rows[1].value.find("index")->asU64(idx));
    EXPECT_EQ(idx, 0u);

    // Same hash: the completed point is restored, bytes intact.
    CheckpointSink again(jsonl, hash, true);
    EXPECT_EQ(again.resumedCount(), 1u);
    ASSERT_NE(again.rawLine(0), nullptr);
    ASSERT_NE(again.record(0), nullptr);
    EXPECT_EQ(again.record(0)->metrics.at("a"), 1.0);

    // Different hash: different sweep, nothing restored, files reset.
    CheckpointSink other(jsonl, "ffffffffffffffff", true);
    EXPECT_EQ(other.resumedCount(), 0u);
    EXPECT_EQ(slurp(jsonl), "");
}

TEST_F(CheckpointTest, OrphanJsonlLineIsNotTrusted)
{
    const std::string hash = "0123456789abcdef";
    const std::string line0 =
        "{\"index\":0,\"experiment\":\"e\",\"mechanism\":\"m\","
        "\"mix\":\"x\",\"tags\":{},\"metrics\":{},\"stats\":{}}";
    const std::string line1 =
        "{\"index\":1,\"experiment\":\"e\",\"mechanism\":\"m\","
        "\"mix\":\"x\",\"tags\":{},\"metrics\":{},\"stats\":{}}";
    {
        CheckpointSink sink(jsonl, hash, true);
        sink.append(0, line0);
        sink.append(1, line1);
    }
    // Simulate a kill between the JSONL write and the manifest write:
    // the manifest vouches only for point 0.
    truncateToLines(manifest, 2);

    CheckpointSink sink(jsonl, hash, true);
    EXPECT_EQ(sink.resumedCount(), 1u);
    EXPECT_TRUE(sink.isDone(0));
    EXPECT_FALSE(sink.isDone(1));
    // The orphan line was dropped from the file during the rewrite, so
    // recomputing point 1 cannot produce a duplicate.
    EXPECT_EQ(slurp(jsonl), line0 + "\n");
}

TEST_F(CheckpointTest, CorruptedManifestEntryMeansRecompute)
{
    const std::string hash = "0123456789abcdef";
    const std::string line0 =
        "{\"index\":0,\"experiment\":\"e\",\"mechanism\":\"m\","
        "\"mix\":\"x\",\"tags\":{},\"metrics\":{},\"stats\":{}}";
    {
        CheckpointSink sink(jsonl, hash, true);
        sink.append(0, line0);
    }
    // Corrupt the JSONL byte content (manifest hash now mismatches).
    {
        std::ofstream out(jsonl, std::ios::trunc);
        out << "{\"index\":0,\"experiment\":\"TAMPERED\","
               "\"mechanism\":\"m\",\"mix\":\"x\",\"tags\":{},"
               "\"metrics\":{},\"stats\":{}}\n";
    }
    CheckpointSink sink(jsonl, hash, true);
    EXPECT_EQ(sink.resumedCount(), 0u);
    EXPECT_EQ(slurp(jsonl), "");
}

TEST_F(CheckpointTest, KillAtKThenResumeIsByteIdentical)
{
    // Reference: one uninterrupted serial run.
    auto uninterrupted = runSweep(false);
    const std::string want_jsonl = slurp(jsonl);
    const std::string want_manifest = slurp(manifest);
    ASSERT_EQ(uninterrupted.size(), 4u);

    for (std::size_t k = 0; k <= 3; ++k) {
        SCOPED_TRACE("killed after " + std::to_string(k) + " points");
        // Simulate SIGKILL after k completed points.
        truncateToLines(jsonl, k);
        truncateToLines(manifest, 1 + k);  // header + k entries

        std::size_t resumed = 0;
        auto records = runSweep(true, &resumed);
        EXPECT_EQ(resumed, k);
        EXPECT_EQ(slurp(jsonl), want_jsonl);
        EXPECT_EQ(slurp(manifest), want_manifest);
        ASSERT_EQ(records.size(), uninterrupted.size());
        for (std::size_t i = 0; i < records.size(); ++i) {
            EXPECT_EQ(records[i].toJsonLine(),
                      uninterrupted[i].toJsonLine());
        }
    }
}

TEST_F(CheckpointTest, KillBetweenJsonlAndManifestResumesCleanly)
{
    auto uninterrupted = runSweep(false);
    const std::string want_jsonl = slurp(jsonl);

    // Kill with 3 record lines on disk but only 2 vouched for.
    truncateToLines(jsonl, 3);
    truncateToLines(manifest, 1 + 2);

    std::size_t resumed = 0;
    runSweep(true, &resumed);
    EXPECT_EQ(resumed, 2u);
    EXPECT_EQ(slurp(jsonl), want_jsonl);
    // No duplicate of point 2 despite its orphan line.
    JsonlFile jf = readJsonl(jsonl);
    EXPECT_EQ(jf.rows.size(), 4u);
}

TEST_F(CheckpointTest, NoResumeFlagRecomputesEverything)
{
    runSweep(false);
    std::size_t resumed = 99;
    auto records = runSweep(false, &resumed);
    EXPECT_EQ(resumed, 0u);
    EXPECT_EQ(records.size(), 4u);
}

} // namespace
} // namespace dbsim::exp
