/**
 * @file
 * Tests for the Section 2.3 coherence-state splitting: MOESI/MESI round
 * trips through the (pair, dirty) representation, and the directory
 * whose dirty bits live in a DBI.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "coherence/split_directory.hh"
#include "coherence/state_split.hh"
#include "common/rng.hh"

namespace dbsim {
namespace {

TEST(MoesiSplit, RoundTripAllStates)
{
    for (MoesiState s : {MoesiState::M, MoesiState::O, MoesiState::E,
                         MoesiState::S, MoesiState::I}) {
        EXPECT_EQ(MoesiSplit::decode(MoesiSplit::pairOf(s),
                                     MoesiSplit::dirtyOf(s)),
                  s)
            << toString(s);
    }
}

TEST(MoesiSplit, PairsMatchThePaper)
{
    // Section 2.3: MOESI splits into (M, E), (O, S) and (I).
    EXPECT_EQ(MoesiSplit::pairOf(MoesiState::M),
              MoesiSplit::pairOf(MoesiState::E));
    EXPECT_EQ(MoesiSplit::pairOf(MoesiState::O),
              MoesiSplit::pairOf(MoesiState::S));
    EXPECT_NE(MoesiSplit::pairOf(MoesiState::M),
              MoesiSplit::pairOf(MoesiState::S));
    EXPECT_EQ(MoesiSplit::pairOf(MoesiState::I), SplitPair::Invalid);
}

TEST(MoesiSplit, OnlyMAndOAreDirty)
{
    EXPECT_TRUE(MoesiSplit::dirtyOf(MoesiState::M));
    EXPECT_TRUE(MoesiSplit::dirtyOf(MoesiState::O));
    EXPECT_FALSE(MoesiSplit::dirtyOf(MoesiState::E));
    EXPECT_FALSE(MoesiSplit::dirtyOf(MoesiState::S));
    EXPECT_FALSE(MoesiSplit::dirtyOf(MoesiState::I));
}

TEST(MoesiSplit, CleanedDemotesWithinPair)
{
    EXPECT_EQ(MoesiSplit::cleaned(MoesiState::M), MoesiState::E);
    EXPECT_EQ(MoesiSplit::cleaned(MoesiState::O), MoesiState::S);
    EXPECT_EQ(MoesiSplit::cleaned(MoesiState::E), MoesiState::E);
    EXPECT_EQ(MoesiSplit::cleaned(MoesiState::S), MoesiState::S);
}

TEST(MesiSplit, RoundTripAllStates)
{
    for (MesiState s :
         {MesiState::M, MesiState::E, MesiState::S, MesiState::I}) {
        EXPECT_EQ(MesiSplit::decode(MesiSplit::pairOf(s),
                                    MesiSplit::dirtyOf(s)),
                  s);
    }
    EXPECT_EQ(MesiSplit::cleaned(MesiState::M), MesiState::E);
}

// ------------------------------------------------------------ directory

struct DirectoryTest : public ::testing::Test
{
    DirectoryTest()
        : dir(DbiConfig{0.25, 16, 4, DbiReplPolicy::Lrw, 4, 7}, 1024,
              [this](Addr a) { writtenBack.push_back(a); })
    {
    }

    SplitMoesiDirectory dir;
    std::vector<Addr> writtenBack;
};

TEST_F(DirectoryTest, FetchAndWriteLifecycle)
{
    EXPECT_EQ(dir.state(0x100), MoesiState::I);
    dir.fetchExclusive(0x100);
    EXPECT_EQ(dir.state(0x100), MoesiState::E);
    dir.write(0x100);
    EXPECT_EQ(dir.state(0x100), MoesiState::M);
}

TEST_F(DirectoryTest, SnoopDemotesMToOwned)
{
    dir.fetchExclusive(0x200);
    dir.write(0x200);
    dir.snoopShared(0x200);
    // Dirty + shared = Owned: the dirty bit survived in the DBI.
    EXPECT_EQ(dir.state(0x200), MoesiState::O);
    EXPECT_TRUE(writtenBack.empty());  // MOESI: no writeback on snoop
}

TEST_F(DirectoryTest, SnoopOnCleanExclusiveGivesShared)
{
    dir.fetchExclusive(0x300);
    dir.snoopShared(0x300);
    EXPECT_EQ(dir.state(0x300), MoesiState::S);
}

TEST_F(DirectoryTest, InvalidateWritesBackDirtyData)
{
    dir.fetchExclusive(0x400);
    dir.write(0x400);
    dir.invalidate(0x400);
    EXPECT_EQ(dir.state(0x400), MoesiState::I);
    ASSERT_EQ(writtenBack.size(), 1u);
    EXPECT_EQ(writtenBack[0], 0x400u);
}

TEST_F(DirectoryTest, InvalidateCleanIsSilent)
{
    dir.fetchShared(0x500);
    dir.invalidate(0x500);
    EXPECT_TRUE(writtenBack.empty());
}

TEST_F(DirectoryTest, DbiEvictionDemotesStatesImplicitly)
{
    // Dirty more regions than the DBI can track; evicted entries write
    // their blocks back, and those blocks' states silently demote
    // M -> E (their records never change — the paper's key point).
    std::uint64_t regions = dir.dbi().numEntries() + 2;
    std::uint64_t region_bytes = 16 * kBlockBytes;
    for (std::uint64_t r = 0; r < regions; ++r) {
        Addr a = r * region_bytes;
        dir.fetchExclusive(a);
        dir.write(a);
    }
    EXPECT_FALSE(writtenBack.empty());
    EXPECT_GT(dir.statDemotions.value(), 0u);
    for (Addr a : writtenBack) {
        EXPECT_EQ(dir.state(a), MoesiState::E)
            << "drained block must demote to the clean twin";
    }
}

TEST_F(DirectoryTest, OwnedDemotesToSharedOnDbiEviction)
{
    Addr victim = 0x0;
    dir.fetchExclusive(victim);
    dir.write(victim);
    dir.snoopShared(victim);
    ASSERT_EQ(dir.state(victim), MoesiState::O);

    // Force a DBI eviction of victim's entry.
    std::uint64_t regions = dir.dbi().numEntries() + 2;
    for (std::uint64_t r = 1; r < regions; ++r) {
        Addr a = r * 16 * kBlockBytes;
        dir.fetchExclusive(a);
        dir.write(a);
    }
    EXPECT_EQ(dir.state(victim), MoesiState::S);
}

/** Property: the directory's visible state always matches a reference
 *  MOESI model, with DBI evictions modeled as clean-demotions. */
TEST_F(DirectoryTest, PropertyMatchesReferenceProtocol)
{
    std::unordered_map<Addr, MoesiState> model;
    std::size_t wb_seen = 0;
    Rng rng(11);
    for (int op = 0; op < 4000; ++op) {
        Addr a = blockAlign(rng.below(1u << 16));
        MoesiState cur = model.count(a) ? model[a] : MoesiState::I;
        switch (rng.below(4)) {
          case 0:
            if (cur == MoesiState::I) {
                dir.fetchExclusive(a);
                model[a] = MoesiState::E;
            }
            break;
          case 1:
            if (cur != MoesiState::I) {
                dir.write(a);
                model[a] = MoesiState::M;
            }
            break;
          case 2:
            if (cur != MoesiState::I) {
                dir.snoopShared(a);
                model[a] = MoesiSplit::dirtyOf(model[a])
                               ? MoesiState::O
                               : MoesiState::S;
            }
            break;
          default:
            dir.invalidate(a);
            model[a] = MoesiState::I;
            break;
        }
        // Apply DBI-eviction demotions observed via the writeback log.
        for (; wb_seen < writtenBack.size(); ++wb_seen) {
            Addr b = writtenBack[wb_seen];
            if (model.count(b) && model[b] != MoesiState::I) {
                model[b] = MoesiSplit::cleaned(model[b]);
            }
        }
        MoesiState want =
            model.count(a) ? model[a] : MoesiState::I;
        ASSERT_EQ(dir.state(a), want) << "op " << op;
    }
}

} // namespace
} // namespace dbsim
