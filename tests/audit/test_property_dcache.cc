/**
 * @file
 * Property suite for the two-level dirty hierarchy: generated op
 * streams (the same locality x dirtiness knob grid the LLC property
 * suite uses) drive machines with the die-stacked DRAM cache
 * interposed between the LLC and backing DDR, in both dirty-tracking
 * modes (exact SRAM index and the per-page dirty-in-tags ablation).
 * Each level runs under its own shadow-model auditor — the LLC's
 * InvariantAuditor (I1-I4) and the DCacheAuditor (D1-D5) — which panic
 * on any divergence, so a quiet run certifies the dirty bookkeeping at
 * both levels simultaneously. The suite closes with full-System runs:
 * audited, dcache-enabled, sharded machines must stay quiet and remain
 * bit-identical across worker counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "audit/dcache_auditor.hh"
#include "dcache/dcache.hh"
#include "dram/dram_controller.hh"
#include "sim/system.hh"
#include "support/composition.hh"
#include "support/opgen.hh"

namespace dbsim {
namespace {

using test::Op;
using test::OpGenConfig;

/** Small dcache under the 64KB test LLC: 512B pages, 2-way, 16 sets,
 *  16-entry 4-way dirty index — every structure overflows under the
 *  1MB generated address space. */
DCacheConfig
propDCache(bool dirty_in_tags)
{
    DCacheConfig cfg;
    cfg.enable = true;
    cfg.pageBytes = 512;
    cfg.assoc = 2;
    cfg.sizeBytes = 512ull * 2 * 16;
    cfg.dirtyInTags = dirty_in_tags;
    cfg.indexEntries = 16;
    cfg.indexAssoc = 4;
    return cfg;
}

/** Knob grid for stream i (mirrors the LLC property suite). */
OpGenConfig
knobsFor(int i)
{
    OpGenConfig cfg;
    cfg.seed = 0xDCAC4E + static_cast<std::uint64_t>(i) * 131;
    cfg.count = 700;
    cfg.writebackFraction = 0.15 + 0.20 * (i % 4);  // 0.15 .. 0.75
    cfg.localityFraction = 0.225 * (i % 5);         // 0.0 .. 0.9
    cfg.hotPoolBlocks = (i % 3 == 0) ? 16 : 64;
    return cfg;
}

TEST(PropertyDCache, AuditedStreamsStayQuietInBothModes)
{
    // The DRAM cache alone, fed raw LLC-style traffic. The auditor
    // cross-checks every 64 operations and panics on divergence; on a
    // quiet run we additionally assert the end-of-run differential by
    // hand: the mechanism's flush set equals ground truth exactly in
    // index mode and covers it (page-footprint-equal) in tags mode.
    constexpr int kStreams = 24;
    for (int i = 0; i < kStreams; ++i) {
        const std::vector<Op> ops = test::generateOps(knobsFor(i));
        for (bool tags : {false, true}) {
            EventQueue eq;
            DramController ddr(DramConfig{}, eq);
            DramCache dc(propDCache(tags), ddr, eq);
            audit::AuditConfig ac;
            ac.checkEvery = 64;
            audit::DCacheAuditor aud(dc, ac);

            int n = 0;
            for (const Op &op : ops) {
                if (op.isWriteback) {
                    dc.write(op.addr, eq.now());
                } else {
                    dc.read(op.addr, eq.now(), [](Cycle) {});
                }
                if (++n % 256 == 0) {
                    eq.runAll();
                }
            }
            eq.runAll();
            aud.checkNow();
            aud.checkFinal();

            EXPECT_GT(aud.eventsObserved(), 0u);
            EXPECT_GT(aud.checksRun(), 0u);

            std::vector<Addr> flush = aud.mechanismFlushBlocks();
            std::vector<Addr> truth = aud.shadowDirtyBlocks();
            if (!tags) {
                EXPECT_EQ(flush, truth) << "stream " << i;
            } else {
                EXPECT_GE(flush.size(), truth.size()) << "stream " << i;
                EXPECT_TRUE(std::includes(flush.begin(), flush.end(),
                                          truth.begin(), truth.end()))
                    << "stream " << i;
            }
        }
    }
}

TEST(PropertyDCache, BothDirtyLevelsStayQuietUnderOneStream)
{
    // The composed two-level hierarchy: a DBI-organized LLC whose
    // backing port is the DRAM cache, each level under its own shadow
    // auditor. The LLC's writebacks become the dcache's writes and the
    // LLC's misses its reads, so one stream exercises I1-I4 at the LLC
    // and D1-D5 at the dcache at the same time.
    constexpr int kStreams = 12;
    const std::vector<std::string> kSpecs = {"TA-DIP", "DBI",
                                             "dbi+dawb"};
    for (int i = 0; i < kStreams; ++i) {
        const std::vector<Op> ops = test::generateOps(knobsFor(100 + i));
        for (bool tags : {false, true}) {
            for (const std::string &spec_name : kSpecs) {
                EventQueue eq;
                DramController ddr(DramConfig{}, eq);
                DramCache dc(propDCache(tags), ddr, eq);

                MechanismSpec spec = mechanismByName(spec_name);
                std::shared_ptr<MissPredictor> pred;
                if (spec.needsPredictor()) {
                    pred = std::make_shared<test::AlwaysMissPredictor>();
                }
                std::unique_ptr<Llc> llc = makeLlc(
                    spec, test::smallLlc(), test::smallDbi(), dc, eq,
                    pred);

                audit::AuditConfig ac;
                ac.checkEvery = 128;
                audit::InvariantAuditor llc_aud(*llc, ac);
                audit::DCacheAuditor dc_aud(dc, ac);

                int n = 0;
                for (const Op &op : ops) {
                    if (op.isWriteback) {
                        llc->writeback(op.addr, 0, eq.now());
                    } else {
                        llc->read(op.addr, 0, eq.now(), [](Cycle) {});
                    }
                    if (++n % 256 == 0) {
                        eq.runAll();
                    }
                }
                eq.runAll();
                llc_aud.checkNow();
                dc_aud.checkNow();
                dc_aud.checkFinal();

                const std::string what = spec_name + " stream " +
                                         std::to_string(i) +
                                         (tags ? " tags" : " index");
                EXPECT_GT(llc_aud.eventsObserved(), 0u) << what;
                EXPECT_GT(dc_aud.eventsObserved(), 0u) << what;
                // The mechanism image must match ground truth with the
                // dcache interposed, exactly as without it.
                EXPECT_TRUE(llc_aud.finalImage() ==
                            llc_aud.shadow().finalImage())
                    << what;
            }
        }
    }
}

TEST(PropertyDCache, AuditedShardedSystemsStayQuietAndThreadInvariant)
{
    // Whole-machine closure: 4 cores / 4 slices / 4 channels with the
    // dcache tier enabled, auditors on at both levels, 1 worker vs 4.
    // System::run panics on any divergence and checkFinal runs at
    // result assembly, so equality of the results is the whole claim.
    for (bool tags : {false, true}) {
        SystemConfig cfg;
        cfg.mech = mechanismByName("DBI");
        cfg.numCores = 4;
        cfg.llcSlices = 4;
        cfg.dram.channels = 4;
        cfg.core.warmupInstrs = 8'000;
        cfg.core.measureInstrs = 8'000;
        cfg.auditEvery = 256;
        // Shrink both levels so this short run drives real dirty
        // evictions all the way to backing DDR.
        cfg.llcBytesPerCore = 64 << 10;
        cfg.dcache.enable = true;
        cfg.dcache.sizeBytes = 256ull << 10;  // 64KB per slice
        cfg.dcache.indexEntries = 16;
        cfg.dcache.dirtyInTags = tags;
        WorkloadMix mix = {"mcf", "lbm", "stream", "libquantum"};

        cfg.numShards = 1;
        System serial(cfg, mix);
        SimResult a = serial.run();

        cfg.numShards = 4;
        System parallel(cfg, mix);
        SimResult b = parallel.run();

        const std::string what = tags ? "dirty-in-tags" : "dirty-index";
        EXPECT_EQ(a.stats, b.stats) << what;
        EXPECT_EQ(a.ipc, b.ipc) << what;
        EXPECT_EQ(a.windowCycles, b.windowCycles) << what;

        for (std::uint32_t s = 0; s < 4; ++s) {
            ASSERT_NE(serial.sliceAuditor(s), nullptr) << what;
            ASSERT_NE(serial.dcacheAuditor(s), nullptr) << what;
            EXPECT_GT(serial.dcacheAuditor(s)->eventsObserved(), 0u)
                << what << " slice " << s;
            EXPECT_EQ(serial.dcacheAuditor(s)->eventsObserved(),
                      parallel.dcacheAuditor(s)->eventsObserved())
                << what << " slice " << s;
        }
        EXPECT_GT(a.stats.at("dcache.ddrWrites"), 0u) << what;
    }
}

} // namespace
} // namespace dbsim
