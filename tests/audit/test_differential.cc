/**
 * @file
 * Randomized differential tests: mechanism compositions are driven with
 * an identical randomized request sequence, each under its own
 * invariant auditor. Every composition must (a) satisfy the dirty-state
 * invariants throughout, and (b) produce the exact same final memory
 * image — the paper's correctness contract: mechanisms change writeback
 * *timing*, never writeback *content*. Covers the Table 2 presets and
 * the previously-unreachable cross-product combinations the composed
 * --mech grammar opens up (DAWB/VWQ sweeps over a DBI store, CLB next
 * to a DAWB writeback policy).
 *
 * Streams come from the shared property-test generator
 * (tests/support/opgen.hh); tests/audit/test_property_streams.cc
 * sweeps the same contract across its locality/dirtiness knob grid
 * with shrink-on-failure.
 */

#include <gtest/gtest.h>

#include <vector>

#include "support/composition.hh"
#include "support/opgen.hh"

namespace dbsim {
namespace {

using test::Op;
using test::OpGenConfig;

/** One fixed request sequence every variant replays. */
std::vector<Op>
makeOps(std::uint64_t seed, std::size_t count, double locality = 0.0)
{
    OpGenConfig cfg;
    cfg.seed = seed;
    cfg.count = count;
    cfg.writebackFraction = 0.4;
    cfg.localityFraction = locality;
    return test::generateOps(cfg);
}

/** Replay under the auditor, asserting mechanism matches ground truth. */
audit::MemoryImage
runComposition(const std::string &spec_name, const std::vector<Op> &ops)
{
    test::CompositionOutcome out = test::replayComposition(spec_name, ops);
    // The mechanism's dirty set must reproduce ground truth exactly.
    EXPECT_EQ(out.image, out.shadowImage) << spec_name;
    EXPECT_EQ(out.mechanismDirty, out.shadowDirty) << spec_name;
    return out.image;
}

TEST(Differential, AllVariantsProduceIdenticalFinalMemoryImages)
{
    const std::vector<Op> ops = makeOps(1234, 30000);

    audit::MemoryImage conventional = runComposition("TA-DIP", ops);
    ASSERT_FALSE(conventional.empty());
    for (const char *name : {"DBI", "DBI+AWB", "DBI+CLB"}) {
        EXPECT_EQ(conventional, runComposition(name, ops)) << name;
    }
}

TEST(Differential, SeedsVaryButAgreementHolds)
{
    for (std::uint64_t seed : {7u, 99u, 2024u}) {
        const std::vector<Op> ops = makeOps(seed, 12000);
        audit::MemoryImage conventional = runComposition("TA-DIP", ops);
        EXPECT_EQ(conventional, runComposition("DBI+AWB", ops))
            << "seed " << seed;
    }
}

TEST(Differential, ComposedCombinationsMatchConventionalImage)
{
    // Cross-product compositions no preset reaches: a DAWB full-row
    // sweep over a DBI store, the same plus CLB (the spec's inference
    // resolves "dawb+clb" to dbi+dawb+clb), and a VWQ SSV-filtered
    // sweep over a DBI store.
    const std::vector<Op> ops = makeOps(4321, 30000);

    audit::MemoryImage conventional = runComposition("TA-DIP", ops);
    ASSERT_FALSE(conventional.empty());
    for (const char *name : {"dbi+dawb", "dawb+clb", "dbi+vwq"}) {
        EXPECT_EQ(conventional, runComposition(name, ops)) << name;
    }
}

TEST(Differential, ComposedCombinationsAcrossSeeds)
{
    for (std::uint64_t seed : {5u, 313u}) {
        const std::vector<Op> ops = makeOps(seed, 10000);
        audit::MemoryImage conventional = runComposition("TA-DIP", ops);
        for (const char *name : {"dbi+dawb", "vwq+clb"}) {
            EXPECT_EQ(conventional, runComposition(name, ops))
                << name << " seed " << seed;
        }
    }
}

TEST(Differential, HighLocalityStreamsAgree)
{
    // Row-local re-touches stress the AWB row sweep and DBI entry
    // reuse paths the uniform streams above rarely hit back-to-back.
    const std::vector<Op> ops = makeOps(777, 20000, 0.7);

    audit::MemoryImage conventional = runComposition("TA-DIP", ops);
    ASSERT_FALSE(conventional.empty());
    for (const char *name : {"DBI+AWB+CLB", "dbi+dawb"}) {
        EXPECT_EQ(conventional, runComposition(name, ops)) << name;
    }
}

} // namespace
} // namespace dbsim
