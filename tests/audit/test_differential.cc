/**
 * @file
 * Randomized differential tests: mechanism compositions are driven with
 * an identical randomized request sequence, each under its own
 * invariant auditor. Every composition must (a) satisfy the dirty-state
 * invariants throughout, and (b) produce the exact same final memory
 * image — the paper's correctness contract: mechanisms change writeback
 * *timing*, never writeback *content*. Covers the Table 2 presets and
 * the previously-unreachable cross-product combinations the composed
 * --mech grammar opens up (DAWB/VWQ sweeps over a DBI store, CLB next
 * to a DAWB writeback policy).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "audit/auditor.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "dram/dram_controller.hh"
#include "llc/llc.hh"
#include "sim/mechanism.hh"

namespace dbsim {
namespace {

LlcConfig
smallLlc()
{
    LlcConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.assoc = 4;
    cfg.repl = ReplPolicy::Lru;
    cfg.tagLatency = 10;
    cfg.dataLatency = 24;
    cfg.numCores = 1;
    return cfg;
}

DbiConfig
smallDbi()
{
    DbiConfig cfg;
    cfg.alpha = 0.25;
    cfg.granularity = 16;
    cfg.assoc = 4;
    cfg.repl = DbiReplPolicy::Lrw;
    return cfg;
}

/** Predictor that predicts miss outside sampled sets (enables CLB). */
class AlwaysMissPredictor : public MissPredictor
{
  public:
    bool
    predictMiss(std::uint32_t set, std::uint32_t, Cycle) override
    {
        return set % 64 != 0;
    }
    void recordOutcome(std::uint32_t, std::uint32_t, bool, Cycle) override
    {}
    bool
    isSampledSet(std::uint32_t set) const override
    {
        return set % 64 == 0;
    }
};

struct Op
{
    bool isWriteback;
    Addr addr;
};

/** One fixed request sequence every variant replays. */
std::vector<Op>
makeOps(std::uint64_t seed, int count)
{
    Rng rng(seed);
    std::vector<Op> ops;
    ops.reserve(count);
    for (int i = 0; i < count; ++i) {
        ops.push_back(
            {rng.chance(0.4), blockAlign(rng.below(1 << 20))});
    }
    return ops;
}

/** Build the composition `spec_name` names and replay `ops` into it. */
audit::MemoryImage
runComposition(const std::string &spec_name, const std::vector<Op> &ops)
{
    EventQueue eq;
    DramController dram(DramConfig{}, eq);
    MechanismSpec spec = mechanismByName(spec_name);
    std::shared_ptr<MissPredictor> pred;
    if (spec.needsPredictor()) {
        pred = std::make_shared<AlwaysMissPredictor>();
    }
    std::unique_ptr<Llc> llc_owner =
        makeLlc(spec, smallLlc(), smallDbi(), dram, eq, pred);
    Llc &llc = *llc_owner;

    audit::AuditConfig ac;
    ac.checkEvery = 512;
    audit::InvariantAuditor aud(llc, ac);

    int i = 0;
    for (const Op &op : ops) {
        if (op.isWriteback) {
            llc.writeback(op.addr, 0, eq.now());
        } else {
            llc.read(op.addr, 0, eq.now(), [](Cycle) {});
        }
        if (++i % 256 == 0) {
            eq.runAll();
        }
    }
    eq.runAll();
    aud.checkNow();

    // The mechanism's dirty set must reproduce ground truth exactly.
    audit::MemoryImage image = aud.finalImage();
    EXPECT_EQ(image, aud.shadow().finalImage()) << spec_name;
    EXPECT_EQ(aud.mechanismDirtyBlocks().size(), aud.shadow().countDirty())
        << spec_name;
    return image;
}

TEST(Differential, AllVariantsProduceIdenticalFinalMemoryImages)
{
    const std::vector<Op> ops = makeOps(1234, 30000);

    audit::MemoryImage conventional = runComposition("TA-DIP", ops);
    ASSERT_FALSE(conventional.empty());
    for (const char *name : {"DBI", "DBI+AWB", "DBI+CLB"}) {
        EXPECT_EQ(conventional, runComposition(name, ops)) << name;
    }
}

TEST(Differential, SeedsVaryButAgreementHolds)
{
    for (std::uint64_t seed : {7u, 99u, 2024u}) {
        const std::vector<Op> ops = makeOps(seed, 12000);
        audit::MemoryImage conventional = runComposition("TA-DIP", ops);
        EXPECT_EQ(conventional, runComposition("DBI+AWB", ops))
            << "seed " << seed;
    }
}

TEST(Differential, ComposedCombinationsMatchConventionalImage)
{
    // Cross-product compositions no preset reaches: a DAWB full-row
    // sweep over a DBI store, the same plus CLB (the spec's inference
    // resolves "dawb+clb" to dbi+dawb+clb), and a VWQ SSV-filtered
    // sweep over a DBI store.
    const std::vector<Op> ops = makeOps(4321, 30000);

    audit::MemoryImage conventional = runComposition("TA-DIP", ops);
    ASSERT_FALSE(conventional.empty());
    for (const char *name : {"dbi+dawb", "dawb+clb", "dbi+vwq"}) {
        EXPECT_EQ(conventional, runComposition(name, ops)) << name;
    }
}

TEST(Differential, ComposedCombinationsAcrossSeeds)
{
    for (std::uint64_t seed : {5u, 313u}) {
        const std::vector<Op> ops = makeOps(seed, 10000);
        audit::MemoryImage conventional = runComposition("TA-DIP", ops);
        for (const char *name : {"dbi+dawb", "vwq+clb"}) {
            EXPECT_EQ(conventional, runComposition(name, ops))
                << name << " seed " << seed;
        }
    }
}

} // namespace
} // namespace dbsim
