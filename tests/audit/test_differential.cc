/**
 * @file
 * Randomized differential test: the conventional dirty-bit LLC and the
 * DBI variants (plain, +AWB, +CLB) are driven with an identical
 * randomized request sequence, each under its own invariant auditor.
 * Every variant must (a) satisfy the dirty-state invariants throughout,
 * and (b) produce the exact same final memory image — the paper's
 * correctness contract: mechanisms change writeback *timing*, never
 * writeback *content*.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "audit/auditor.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "dram/dram_controller.hh"
#include "llc/llc_variants.hh"

namespace dbsim {
namespace {

LlcConfig
smallLlc()
{
    LlcConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.assoc = 4;
    cfg.repl = ReplPolicy::Lru;
    cfg.tagLatency = 10;
    cfg.dataLatency = 24;
    cfg.numCores = 1;
    return cfg;
}

DbiConfig
smallDbi()
{
    DbiConfig cfg;
    cfg.alpha = 0.25;
    cfg.granularity = 16;
    cfg.assoc = 4;
    cfg.repl = DbiReplPolicy::Lrw;
    return cfg;
}

/** Predictor that predicts miss outside sampled sets (enables CLB). */
class AlwaysMissPredictor : public MissPredictor
{
  public:
    bool
    predictMiss(std::uint32_t set, std::uint32_t, Cycle) override
    {
        return set % 64 != 0;
    }
    void recordOutcome(std::uint32_t, std::uint32_t, bool, Cycle) override
    {}
    bool
    isSampledSet(std::uint32_t set) const override
    {
        return set % 64 == 0;
    }
};

struct Op
{
    bool isWriteback;
    Addr addr;
};

/** One fixed request sequence every variant replays. */
std::vector<Op>
makeOps(std::uint64_t seed, int count)
{
    Rng rng(seed);
    std::vector<Op> ops;
    ops.reserve(count);
    for (int i = 0; i < count; ++i) {
        ops.push_back(
            {rng.chance(0.4), blockAlign(rng.below(1 << 20))});
    }
    return ops;
}

/** Drive one LLC through the sequence under a tight auditor. */
audit::MemoryImage
runVariant(Llc &llc, EventQueue &eq, const std::vector<Op> &ops)
{
    audit::AuditConfig ac;
    ac.checkEvery = 512;
    audit::InvariantAuditor aud(llc, ac);

    int i = 0;
    for (const Op &op : ops) {
        if (op.isWriteback) {
            llc.writeback(op.addr, 0, eq.now());
        } else {
            llc.read(op.addr, 0, eq.now(), [](Cycle) {});
        }
        if (++i % 256 == 0) {
            eq.runAll();
        }
    }
    eq.runAll();
    aud.checkNow();

    // The mechanism's dirty set must reproduce ground truth exactly.
    audit::MemoryImage image = aud.finalImage();
    EXPECT_EQ(image, aud.shadow().finalImage());
    EXPECT_EQ(aud.mechanismDirtyBlocks().size(), aud.shadow().countDirty());
    return image;
}

TEST(Differential, AllVariantsProduceIdenticalFinalMemoryImages)
{
    const std::vector<Op> ops = makeOps(1234, 30000);

    audit::MemoryImage conventional, dbi, dbi_awb, dbi_clb;
    {
        EventQueue eq;
        DramController dram(DramConfig{}, eq);
        BaselineLlc llc(smallLlc(), dram, eq);
        conventional = runVariant(llc, eq, ops);
    }
    {
        EventQueue eq;
        DramController dram(DramConfig{}, eq);
        DbiLlc llc(smallLlc(), smallDbi(), dram, eq, false, false);
        dbi = runVariant(llc, eq, ops);
    }
    {
        EventQueue eq;
        DramController dram(DramConfig{}, eq);
        DbiLlc llc(smallLlc(), smallDbi(), dram, eq, /*awb=*/true, false);
        dbi_awb = runVariant(llc, eq, ops);
    }
    {
        EventQueue eq;
        DramController dram(DramConfig{}, eq);
        auto pred = std::make_shared<AlwaysMissPredictor>();
        DbiLlc llc(smallLlc(), smallDbi(), dram, eq, false, /*clb=*/true,
                   pred);
        dbi_clb = runVariant(llc, eq, ops);
    }

    ASSERT_FALSE(conventional.empty());
    EXPECT_EQ(conventional, dbi);
    EXPECT_EQ(conventional, dbi_awb);
    EXPECT_EQ(conventional, dbi_clb);
}

TEST(Differential, SeedsVaryButAgreementHolds)
{
    for (std::uint64_t seed : {7u, 99u, 2024u}) {
        const std::vector<Op> ops = makeOps(seed, 12000);
        audit::MemoryImage conventional, dbi_awb;
        {
            EventQueue eq;
            DramController dram(DramConfig{}, eq);
            BaselineLlc llc(smallLlc(), dram, eq);
            conventional = runVariant(llc, eq, ops);
        }
        {
            EventQueue eq;
            DramController dram(DramConfig{}, eq);
            DbiLlc llc(smallLlc(), smallDbi(), dram, eq, true, false);
            dbi_awb = runVariant(llc, eq, ops);
        }
        EXPECT_EQ(conventional, dbi_awb) << "seed " << seed;
    }
}

} // namespace
} // namespace dbsim
