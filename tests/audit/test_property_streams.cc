/**
 * @file
 * Property suite over the composed '+'-spec mechanisms: for hundreds of
 * generated op streams spanning the generator's locality x dirtiness
 * knob grid, every composed dirty-store choice must produce a final
 * memory image identical to the conventional (TA-DIP tag-store) LLC
 * driven by the same stream, and must agree with the shadow model's
 * dirty count throughout (each replay runs under the invariant
 * auditor).
 *
 * On a falsified property the stream is shrunk to a (locally) minimal
 * reproducer before reporting, so the failure output is a handful of
 * ops plus the generator seed instead of a thousand-op dump. If a
 * shrink candidate trips an auditor *invariant* (not just an image
 * mismatch), the auditor panics with its event-trace dump — also a
 * useful failure report, just not a minimized one.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "support/composition.hh"
#include "support/opgen.hh"

namespace dbsim {
namespace {

using test::Op;
using test::OpGenConfig;

/** The composed dirty-store choices under test. */
const std::vector<std::string> kCompositions = {
    "dbi+dawb",
    "dawb+clb",
    "dbi+vwq",
    "vwq+clb",
};

/** Streams per composition; the knob grid cycles across them. */
constexpr int kStreams = 200;

/** Knob grid for stream i (deterministic, covers the corners). */
OpGenConfig
knobsFor(int i)
{
    OpGenConfig cfg;
    cfg.seed = 0xA5EED0 + static_cast<std::uint64_t>(i);
    cfg.count = 700;
    cfg.writebackFraction = 0.15 + 0.20 * (i % 4);   // 0.15 .. 0.75
    cfg.localityFraction = 0.225 * (i % 5);          // 0.0 .. 0.9
    cfg.hotPoolBlocks = (i % 3 == 0) ? 16 : 64;
    return cfg;
}

/** Does `name` reproduce the conventional image on `ops`? */
bool
agreesWithConventional(const std::string &name,
                       const std::vector<Op> &ops)
{
    test::CompositionOutcome ref =
        test::replayComposition("TA-DIP", ops, 256);
    test::CompositionOutcome cur = test::replayComposition(name, ops, 256);
    return cur.image == ref.image && cur.image == cur.shadowImage &&
           cur.mechanismDirty == cur.shadowDirty;
}

TEST(PropertyStreams, ComposedDirtyStoresPreserveMemoryImage)
{
    for (int i = 0; i < kStreams; ++i) {
        OpGenConfig cfg = knobsFor(i);
        const std::vector<Op> ops = test::generateOps(cfg);

        test::CompositionOutcome ref =
            test::replayComposition("TA-DIP", ops, 256);
        ASSERT_EQ(ref.image, ref.shadowImage) << "stream " << i;

        for (const std::string &name : kCompositions) {
            test::CompositionOutcome cur =
                test::replayComposition(name, ops, 256);
            bool ok = cur.image == ref.image &&
                      cur.image == cur.shadowImage &&
                      cur.mechanismDirty == cur.shadowDirty;
            if (ok) {
                continue;
            }
            // Falsified: minimize before reporting.
            std::vector<Op> minimal = test::shrinkOps(
                ops, [&](const std::vector<Op> &candidate) {
                    return agreesWithConventional(name, candidate);
                });
            FAIL() << name << " diverges from the conventional image "
                   << "(stream " << i << ", seed " << cfg.seed
                   << ", wbFrac " << cfg.writebackFraction
                   << ", locality " << cfg.localityFraction
                   << ")\nminimized reproducer:\n"
                   << test::formatOps(minimal);
        }
    }
}

TEST(PropertyStreams, ShrinkerMinimizesAFalsifyingStream)
{
    // Sanity-check the shrinker itself with a synthetic property:
    // "no writeback to block 0x4000 appears after a read of 0x8000".
    // Plant one such pair inside noise and confirm the shrinker strips
    // the noise but keeps a falsifying core (property still false,
    // substantially smaller, minimal under its own edits).
    OpGenConfig cfg;
    cfg.seed = 99;
    cfg.count = 500;
    std::vector<Op> ops = test::generateOps(cfg);
    ops.insert(ops.begin() + 120, {false, 0x8000});
    ops.insert(ops.begin() + 340, {true, 0x4000});

    auto holds = [](const std::vector<Op> &s) {
        bool seen_read = false;
        for (const Op &op : s) {
            if (!op.isWriteback && op.addr == 0x8000) {
                seen_read = true;
            } else if (op.isWriteback && op.addr == 0x4000 && seen_read) {
                return false;
            }
        }
        return true;
    };
    ASSERT_FALSE(holds(ops));

    std::vector<Op> minimal = test::shrinkOps(ops, holds);
    EXPECT_FALSE(holds(minimal));
    // The two planted ops are the minimal falsifying core.
    ASSERT_EQ(minimal.size(), 2u) << test::formatOps(minimal);
    EXPECT_EQ(minimal[0], (Op{false, 0x8000}));
    EXPECT_EQ(minimal[1], (Op{true, 0x4000}));
}

TEST(PropertyStreams, GeneratorIsDeterministicAndHonorsKnobs)
{
    OpGenConfig cfg;
    cfg.seed = 42;
    cfg.count = 10000;
    cfg.writebackFraction = 0.6;
    cfg.localityFraction = 0.5;
    cfg.hotPoolBlocks = 32;

    std::vector<Op> a = test::generateOps(cfg);
    std::vector<Op> b = test::generateOps(cfg);
    ASSERT_EQ(a, b);

    std::size_t wbs = 0;
    for (const Op &op : a) {
        wbs += op.isWriteback;
        EXPECT_EQ(op.addr % kBlockBytes, 0u);
    }
    double wb_frac = static_cast<double>(wbs) /
                     static_cast<double>(a.size());
    EXPECT_NEAR(wb_frac, 0.6, 0.05);

    // Locality concentrates mass: with re-touches at 0.5, the stream
    // must revisit addresses far more often than a uniform draw over
    // the same space would.
    std::vector<Addr> sorted;
    sorted.reserve(a.size());
    for (const Op &op : a) {
        sorted.push_back(op.addr);
    }
    std::sort(sorted.begin(), sorted.end());
    std::size_t distinct =
        static_cast<std::size_t>(std::unique(sorted.begin(),
                                             sorted.end()) -
                                 sorted.begin());
    EXPECT_LT(distinct, a.size() / 2);
}

} // namespace
} // namespace dbsim
