/**
 * @file
 * Tests for the InvariantAuditor: clean mechanisms stress-tested under
 * continuous auditing, and death tests proving the auditor catches the
 * bug classes it exists for — a re-introduced fillBlock dirty-drop and
 * an eviction that loses a dirty block.
 */

#include <gtest/gtest.h>

#include <memory>

#include "audit/auditor.hh"
#include "common/event_queue.hh"
#include "common/rng.hh"
#include "dram/dram_controller.hh"
#include "llc/llc.hh"

namespace dbsim {
namespace {

LlcConfig
smallLlc()
{
    LlcConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.assoc = 4;
    cfg.repl = ReplPolicy::Lru;
    cfg.tagLatency = 10;
    cfg.dataLatency = 24;
    cfg.numCores = 1;
    return cfg;
}

DbiConfig
smallDbi()
{
    DbiConfig cfg;
    cfg.alpha = 0.25;
    cfg.granularity = 16;
    cfg.assoc = 4;
    cfg.repl = DbiReplPolicy::Lrw;
    return cfg;
}

struct AuditTest : public ::testing::Test
{
    AuditTest() : dram(DramConfig{}, eq) {}

    /** Random read/writeback stress with periodic settling. */
    void
    stress(Llc &llc, int ops, std::uint64_t seed)
    {
        Rng rng(seed);
        for (int op = 0; op < ops; ++op) {
            Addr a = blockAlign(rng.below(1 << 20));
            if (rng.chance(0.4)) {
                llc.writeback(a, 0, eq.now());
            } else {
                llc.read(a, 0, eq.now(), [](Cycle) {});
            }
            if (op % 512 == 0) {
                eq.runAll();
            }
        }
        eq.runAll();
    }

    /** Address of way-filler i for `set` in the small LLC (256 sets). */
    static Addr
    filler(std::uint32_t set, std::uint32_t i)
    {
        return (static_cast<Addr>(i) * 256 + set) * kBlockBytes;
    }

    EventQueue eq;
    DramController dram;
};

TEST_F(AuditTest, BaselineStressPassesContinuousAudit)
{
    Llc llc(smallLlc(), dram, eq);
    audit::AuditConfig ac;
    ac.checkEvery = 256;
    audit::InvariantAuditor aud(llc, ac);

    stress(llc, 20000, 42);
    aud.checkNow();

    EXPECT_GT(aud.eventsObserved(), 0u);
    EXPECT_GT(aud.checksRun(), 1u);
    // The mechanism's dirty set reproduces the ground-truth image.
    EXPECT_EQ(aud.finalImage(), aud.shadow().finalImage());
}

TEST_F(AuditTest, DbiAwbStressPassesContinuousAudit)
{
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()),
            std::make_unique<DbiAwbPolicy>());
    audit::AuditConfig ac;
    ac.checkEvery = 256;
    audit::InvariantAuditor aud(llc, ac);

    stress(llc, 20000, 7);
    aud.checkNow();

    EXPECT_GT(aud.checksRun(), 1u);
    EXPECT_EQ(aud.finalImage(), aud.shadow().finalImage());
    // I3 held throughout: the DBI is the only dirty-state source.
    EXPECT_EQ(llc.tags().countDirty(), 0u);
    EXPECT_EQ(llc.dbiIndex()->countDirtyBlocks(), aud.shadow().countDirty());
}

TEST_F(AuditTest, SkipCacheStressPassesContinuousAudit)
{
    // Write-through: dirtiness is transient within one operation, which
    // is exactly what operation-boundary checking must tolerate.
    auto pred = std::make_shared<NeverMissPredictor>();
    Llc llc(smallLlc(), dram, eq, std::make_unique<WriteThroughStore>(),
            nullptr, std::make_unique<SkipBypassLookup>(pred));
    audit::AuditConfig ac;
    ac.checkEvery = 64;
    audit::InvariantAuditor aud(llc, ac);

    stress(llc, 10000, 11);
    aud.checkNow();
    EXPECT_EQ(aud.shadow().countDirty(), 0u);  // everything published
    EXPECT_EQ(aud.finalImage(), aud.shadow().finalImage());
}

TEST_F(AuditTest, DetachesCleanlyOnDestruction)
{
    Llc llc(smallLlc(), dram, eq);
    {
        audit::InvariantAuditor aud(llc);
        llc.writeback(0x1000, 0, 0);
        eq.runAll();
        EXPECT_GT(aud.eventsObserved(), 0u);
    }
    // No observer left behind: further traffic must not touch the
    // destroyed auditor.
    llc.writeback(0x2000, 0, eq.now());
    eq.runAll();
    EXPECT_TRUE(llc.tags().isDirty(0x2000));
}

// ------------------------------------------------------- death tests

/**
 * Re-introduces the pre-fix Llc::fillBlock bug: the resident case only
 * touch()es, silently dropping an incoming dirty flag.
 */
class BuggyFillLlc : public Llc
{
  public:
    using Llc::Llc;

    void
    fillOldBehavior(Addr a, std::uint32_t core, bool dirty, Cycle when)
    {
        if (store.contains(a)) {
            store.touch(a, core);
            if (auditor) {
                auditor->onFill(a, dirty, when);
            }
            return;
        }
        fillBlock(a, core, dirty, when);
    }
};

TEST(AuditorDeathTest, CatchesReintroducedFillBlockBug)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            EventQueue eq;
            DramController dram(DramConfig{}, eq);
            BuggyFillLlc llc(smallLlc(), dram, eq);
            audit::AuditConfig ac;
            ac.checkEvery = 1;
            audit::InvariantAuditor aud(llc, ac);

            // Demand read makes the block resident and clean...
            llc.read(0x9000, 0, 0, [](Cycle) {});
            eq.runAll();
            // ...then the racing dirty writeback-allocate fill lands,
            // and the pre-fix code loses the dirty flag.
            llc.fillOldBehavior(0x9000, 0, true, eq.now());
            aud.checkNow();
        },
        "dirty-state audit");
}

/**
 * A dirty store that lies about victims: every displaced block claims to
 * be clean, so dirty victims lose their data — the bug class the
 * per-event I4 check exists for.
 */
class LossyDirtyStore : public DirtyStore
{
  public:
    void
    bind(Llc &owner) override
    {
        DirtyStore::bind(owner);
        inner.bind(owner);
    }
    DirtyStoreKind kind() const override { return inner.kind(); }
    const char *name() const override { return "lossy-tag"; }
    void
    writebackIn(Addr a, std::uint32_t core, Cycle when) override
    {
        inner.writebackIn(a, core, when);
    }
    bool isDirty(Addr a) const override { return inner.isDirty(a); }
    bool probeDirty(Addr a) const override { return inner.probeDirty(a); }
    void clean(Addr a) override { inner.clean(a); }
    bool victimDirty(Addr, bool) override { return false; }  // the bug
    void
    functionalWritebackIn(Addr a, std::uint32_t core) override
    {
        inner.functionalWritebackIn(a, core);
    }
    std::uint64_t
    dirtyInVictimRow(Addr a) const override
    {
        return inner.dirtyInVictimRow(a);
    }

  private:
    TagDirtyStore inner;
};

TEST(AuditorDeathTest, CatchesDirtyBlockLostOnEviction)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            EventQueue eq;
            DramController dram(DramConfig{}, eq);
            Llc llc(smallLlc(), dram, eq,
                    std::make_unique<LossyDirtyStore>());
            audit::InvariantAuditor aud(llc);

            llc.writeback(AuditTest::filler(9, 0), 0, 0);
            eq.runAll();
            // Four more fills into the set evict the dirty block; the
            // per-event I4 check fires immediately.
            for (std::uint32_t i = 1; i <= 4; ++i) {
                llc.read(AuditTest::filler(9, i), 0, eq.now(),
                         [](Cycle) {});
                eq.runAll();
            }
        },
        "evicted while dirty");
}

} // namespace
} // namespace dbsim
