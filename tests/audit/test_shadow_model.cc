/**
 * @file
 * Unit tests for the shadow ground-truth model: version bookkeeping,
 * dirty tracking, lost-update detection on eviction, and the final-
 * memory-image construction the differential checks rest on.
 */

#include <gtest/gtest.h>

#include "audit/shadow_model.hh"

namespace dbsim::audit {
namespace {

TEST(ShadowModel, WritebackMakesDirtyUntilPublished)
{
    ShadowDirtyModel m;
    EXPECT_FALSE(m.isDirty(0x1000));
    m.onWritebackIn(0x1000);
    EXPECT_TRUE(m.isDirty(0x1000));
    EXPECT_EQ(m.countDirty(), 1u);

    m.onWbToDram(0x1000);
    EXPECT_FALSE(m.isDirty(0x1000));
    EXPECT_EQ(m.countDirty(), 0u);
}

TEST(ShadowModel, RewriteAfterPublishIsDirtyAgain)
{
    ShadowDirtyModel m;
    m.onWritebackIn(0x2000);
    m.onWbToDram(0x2000);
    m.onWritebackIn(0x2000);
    EXPECT_TRUE(m.isDirty(0x2000));
    // Memory holds version 1; the cache holds version 2.
    MemoryImage flushed = m.finalImage();
    EXPECT_EQ(flushed.at(0x2000), 2u);
    MemoryImage unflushed = m.finalImage({});
    EXPECT_EQ(unflushed.at(0x2000), 1u);
}

TEST(ShadowModel, FillTracksResidencyAndMergesDirty)
{
    ShadowDirtyModel m;
    m.onFill(0x3000, false);
    EXPECT_TRUE(m.isResident(0x3000));
    EXPECT_FALSE(m.isDirty(0x3000));

    // A dirty fill onto a resident block merges; a later clean fill
    // must not revert it.
    m.onFill(0x3000, true);
    EXPECT_TRUE(m.isDirty(0x3000));
    m.onFill(0x3000, false);
    EXPECT_TRUE(m.isDirty(0x3000));
}

TEST(ShadowModel, EvictionReportsLostUpdate)
{
    ShadowDirtyModel m;
    m.onFill(0x4000, false);
    EXPECT_TRUE(m.onEviction(0x4000));  // clean eviction is fine
    EXPECT_FALSE(m.isResident(0x4000));

    m.onWritebackIn(0x5000);
    m.onFill(0x5000, true);
    EXPECT_FALSE(m.onEviction(0x5000));  // dirty data never reached DRAM

    m.onWritebackIn(0x6000);
    m.onFill(0x6000, true);
    m.onWbToDram(0x6000);
    EXPECT_TRUE(m.onEviction(0x6000));  // published first: no loss
}

TEST(ShadowModel, LostDirtyBlockLeavesStaleImage)
{
    // The signature of the fillBlock bug: the mechanism forgets a block
    // is dirty, so flushing "its" dirty set leaves memory one version
    // behind ground truth.
    ShadowDirtyModel m;
    m.onWritebackIn(0x7000);
    m.onWbToDram(0x7000);
    m.onWritebackIn(0x7000);  // dirty again, version 2

    MemoryImage truth = m.finalImage();
    MemoryImage buggy = m.finalImage({});  // mechanism lost the block
    EXPECT_NE(truth, buggy);
    EXPECT_EQ(truth.at(0x7000), 2u);
    EXPECT_EQ(buggy.at(0x7000), 1u);
}

TEST(ShadowModel, ImageIgnoresNeverWrittenBlocks)
{
    ShadowDirtyModel m;
    m.onFill(0x8000, false);  // read fill only: no content change
    EXPECT_TRUE(m.finalImage().empty());
}

} // namespace
} // namespace dbsim::audit
