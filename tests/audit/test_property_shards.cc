/**
 * @file
 * Property suite for the sharded engine under the invariant auditor:
 * generated op streams (a locality x dirtiness x pointer-chasing knob
 * grid, replayed through file traces so every run sees the exact same
 * access sequence) drive a 4-shard audited System. Every stream must
 * (a) complete with all four per-slice auditors quiet — the auditors
 * panic on any dirty-state divergence, including cross-shard ordering
 * bugs that corrupt a slice's DBI — and (b) be bit-identical between
 * 1-worker and 4-worker execution, auditors and all.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/system.hh"
#include "workload/file_trace.hh"

namespace dbsim {
namespace {

struct StreamKnobs
{
    std::uint64_t seed;
    double writeFraction;
    double localityFraction;
    double chaseFraction;
};

/** Deterministic trace for one core: the op-stream generator. */
std::vector<TraceOp>
generateStream(const StreamKnobs &k, std::size_t count)
{
    Rng rng(k.seed);
    std::vector<TraceOp> ops;
    ops.reserve(count);
    std::vector<Addr> pool;
    for (std::size_t i = 0; i < count; ++i) {
        TraceOp op;
        op.gap = static_cast<std::uint32_t>(rng.below(24));
        op.isWrite = rng.chance(k.writeFraction);
        op.dependent = rng.chance(k.chaseFraction);
        if (!pool.empty() && rng.chance(k.localityFraction)) {
            op.addr = pool[rng.below(pool.size())];
        } else {
            op.addr = blockAlign(rng.below(64ull << 20));
            if (pool.size() < 128) {
                pool.push_back(op.addr);
            } else {
                pool[rng.below(pool.size())] = op.addr;
            }
        }
        ops.push_back(op);
    }
    return ops;
}

/** Knob grid point i: cycles the corners deterministically. */
StreamKnobs
knobsFor(int i)
{
    StreamKnobs k;
    k.seed = 0x5AD5EED + static_cast<std::uint64_t>(i) * 7919;
    k.writeFraction = 0.10 + 0.25 * (i % 4);      // 0.10 .. 0.85
    k.localityFraction = 0.30 * (i % 3);          // 0.0 .. 0.6
    k.chaseFraction = (i % 2) ? 0.3 : 0.0;
    return k;
}

/** Write 4 generated traces and return the "@path" workload mix. */
WorkloadMix
writeTraces(int stream, const std::string &dir)
{
    WorkloadMix mix;
    for (int core = 0; core < 4; ++core) {
        std::string path = dir + "/shardprop_" +
                           std::to_string(stream) + "_" +
                           std::to_string(core) + ".trace";
        FileTrace::write(path,
                         generateStream(knobsFor(stream * 4 + core),
                                        2'000));
        mix.push_back("@" + path);
    }
    return mix;
}

SystemConfig
auditedShardedConfig(MechanismSpec mech, std::uint32_t shards)
{
    SystemConfig cfg;
    cfg.mech = mech;
    cfg.numCores = 4;
    cfg.llcSlices = 4;
    cfg.dram.channels = 4;
    cfg.numShards = shards;
    cfg.core.warmupInstrs = 8'000;
    cfg.core.measureInstrs = 8'000;
    cfg.auditEvery = 256;  // aggressive: cross-check every 256 events
    return cfg;
}

/** The mechanisms whose dirty-state plumbing differs structurally. */
const std::vector<std::string> kMechanisms = {
    "TA-DIP",
    "DBI",
    "DBI+AWB+CLB",
    "dbi+vwq",
    "dawb+clb",
};

TEST(PropertyShards, AuditedShardedRunsStayQuietAndThreadInvariant)
{
    const std::string dir = ::testing::TempDir();
    constexpr int kStreams = 6;
    for (int i = 0; i < kStreams; ++i) {
        WorkloadMix mix = writeTraces(i, dir);
        for (const std::string &name : kMechanisms) {
            SystemConfig cfg =
                auditedShardedConfig(mechanismByName(name), 1);
            System serial(cfg, mix);
            SimResult a = serial.run();  // auditor panics on divergence

            cfg.numShards = 4;
            System parallel(cfg, mix);
            SimResult b = parallel.run();

            const std::string what =
                name + " stream " + std::to_string(i);
            EXPECT_EQ(a.stats, b.stats) << what;
            EXPECT_EQ(a.ipc, b.ipc) << what;
            EXPECT_EQ(a.windowCycles, b.windowCycles) << what;

            // The auditors observed real traffic on every slice, and
            // saw the exact same event stream at both thread counts.
            for (std::uint32_t s = 0; s < 4; ++s) {
                ASSERT_NE(serial.sliceAuditor(s), nullptr);
                EXPECT_EQ(serial.sliceAuditor(s)->eventsObserved(),
                          parallel.sliceAuditor(s)->eventsObserved())
                    << what << " slice " << s;
                EXPECT_GT(serial.sliceAuditor(s)->checksRun(), 0u)
                    << what << " slice " << s;
            }
        }
    }
}

TEST(PropertyShards, FinalImagesAreThreadCountInvariantPerSlice)
{
    // The run itself already enforces mechanism-vs-shadow image
    // equality per slice (System panics otherwise). On top of that,
    // the image each slice ends with must not depend on the worker
    // count — the strongest per-slice statement of determinism.
    const std::string dir = ::testing::TempDir();
    WorkloadMix mix = writeTraces(97, dir);

    for (const std::string &name : {std::string("DBI"),
                                    std::string("DBI+AWB+CLB")}) {
        SystemConfig cfg = auditedShardedConfig(mechanismByName(name), 1);
        System serial(cfg, mix);
        serial.run();
        cfg.numShards = 4;
        System parallel(cfg, mix);
        parallel.run();
        for (std::uint32_t s = 0; s < 4; ++s) {
            EXPECT_TRUE(serial.sliceAuditor(s)->finalImage() ==
                        parallel.sliceAuditor(s)->finalImage())
                << name << " slice " << s;
        }
    }
}

} // namespace
} // namespace dbsim
