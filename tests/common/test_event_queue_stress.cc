/**
 * @file
 * Event-queue storm tests: drive the kernel with millions of events in
 * adversarial tie/reschedule patterns and assert the three properties
 * the simulator's determinism and speed rest on:
 *
 *   1. dispatch order is exactly (cycle, schedule order) — same-cycle
 *      ties run FIFO, including events appended to the active cycle
 *      mid-dispatch and cycles whose bucket was displaced from the
 *      direct-mapped cache (which get a second bucket; the (when, seq)
 *      heap order must splice the two back into FIFO);
 *   2. no event ever runs before its scheduled cycle;
 *   3. the steady-state schedule/dispatch path never touches the heap
 *      allocator — once the slabs reach their high-water mark, a
 *      TU-local operator new/delete instrumentation hook must count
 *      zero allocations across millions of further events.
 *
 * This binary owns the allocator hook, so it is its own test target —
 * the hook must not instrument unrelated suites.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <unordered_map>

#include "common/event_queue.hh"
#include "common/rng.hh"

namespace {

/** TU-local allocation instrumentation (test 3). */
std::uint64_t gAllocs = 0;
std::uint64_t gFrees = 0;

} // namespace

void *
operator new(std::size_t size)
{
    ++gAllocs;
    if (void *p = std::malloc(size)) {
        return p;
    }
    throw std::bad_alloc{};
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void
operator delete(void *p) noexcept
{
    ++gFrees;
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    operator delete(p);
}

void
operator delete[](void *p) noexcept
{
    operator delete(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    operator delete(p);
}

namespace dbsim {
namespace {

constexpr std::uint64_t kStormEvents = 10'000'000;

/**
 * Self-perpetuating storm: shared context kept behind one pointer so
 * every scheduled closure fits the queue's inline callback storage.
 */
struct StormCtx
{
    EventQueue eq;
    Rng rng{0xBEEF};

    std::uint64_t dispatchedOk = 0;
    std::uint64_t scheduled = 0;

    /** Per-pending-cycle schedule counters; erased once a cycle ends. */
    std::unordered_map<Cycle, std::uint64_t> tieIndex;

    Cycle runningCycle = kCycleMax;   ///< cycle currently dispatching
    std::uint64_t nextExpectedTie = 0;

    /** FNV-1a over the dispatch order, for cross-run determinism. */
    std::uint64_t orderHash = 1469598103934665603ull;

    bool failed = false;
};

struct StormEvent
{
    StormCtx *ctx;
    Cycle when;            ///< cycle this event was scheduled for
    std::uint64_t tieSeq;  ///< its FIFO position within that cycle

    void
    operator()() const
    {
        StormCtx &c = *ctx;
        // Property 2: never before its scheduled cycle (and the kernel
        // may never run it after — ties all happen at `when` itself).
        if (c.eq.now() != when) {
            c.failed = true;
        }
        // Property 1: FIFO among same-cycle ties.
        if (when != c.runningCycle) {
            if (c.runningCycle != kCycleMax) {
                c.tieIndex.erase(c.runningCycle);
            }
            c.runningCycle = when;
            c.nextExpectedTie = 0;
        }
        if (tieSeq != c.nextExpectedTie++) {
            c.failed = true;
        }
        c.orderHash ^= when * 0x100000001b3ull + tieSeq;
        c.orderHash *= 1099511628211ull;
        ++c.dispatchedOk;

        // Keep the storm alive: usually one successor, sometimes a
        // burst of ties (same cycle or a displaced-cache collision
        // cycle), occasionally none so the population breathes.
        std::uint64_t roll = c.rng.below(100);
        if (c.scheduled >= kStormEvents) {
            return;
        }
        if (roll < 8) {
            return;  // die out; other lineages keep running
        }
        int successors = roll < 20 ? 2 : 1;
        for (int i = 0; i < successors; ++i) {
            Cycle delta;
            std::uint64_t kind = c.rng.below(10);
            if (kind < 3) {
                delta = 0;  // same-cycle append while dispatching
            } else if (kind < 5) {
                delta = 2048;  // direct-mapped cache-slot collision
            } else {
                delta = 1 + c.rng.below(300);
            }
            scheduleOne(c, c.eq.now() + delta);
        }
    }

    static void
    scheduleOne(StormCtx &c, Cycle when)
    {
        std::uint64_t tie = c.tieIndex[when]++;
        c.eq.schedule(when, StormEvent{&c, when, tie});
        ++c.scheduled;
    }
};

std::uint64_t
runStorm()
{
    auto ctx = std::make_unique<StormCtx>();
    // Seed lineages; enough that die-outs don't extinguish the storm.
    for (int i = 0; i < 64; ++i) {
        StormEvent::scheduleOne(*ctx, 1 + ctx->rng.below(100));
    }
    while (ctx->scheduled < kStormEvents && !ctx->eq.empty()) {
        ctx->eq.step();
        if (ctx->eq.empty()) {
            // Re-seed a died-out storm and keep counting.
            for (int i = 0; i < 64; ++i) {
                StormEvent::scheduleOne(*ctx,
                                        ctx->eq.now() + 1 +
                                            ctx->rng.below(100));
            }
        }
    }
    ctx->eq.runAll();

    EXPECT_FALSE(ctx->failed)
        << "tie-order or past-execution violation during the storm";
    EXPECT_GE(ctx->scheduled, kStormEvents);
    EXPECT_EQ(ctx->dispatchedOk, ctx->scheduled);
    EXPECT_TRUE(ctx->eq.empty());
    return ctx->orderHash;
}

TEST(EventQueueStress, TenMillionEventStormKeepsFifoTieOrder)
{
    std::uint64_t hash = runStorm();
    // Cross-run determinism: an identical storm replays the identical
    // dispatch order, bit for bit.
    EXPECT_EQ(hash, runStorm());
}

/**
 * Steady-state closure for the allocation test: must do no heap work
 * of its own (no map bookkeeping — tie order is exercised above).
 */
struct QuietEvent
{
    EventQueue *eq;
    Rng *rng;
    std::uint64_t *left;

    void
    operator()() const
    {
        if (*left == 0) {
            return;
        }
        --*left;
        // Mix of same-cycle ties, short hops, and cache collisions, so
        // the steady state exercises every schedule path.
        std::uint64_t kind = rng->below(10);
        Cycle delta = kind < 2 ? 0 : kind < 4 ? 2048 : 1 + rng->below(64);
        eq->schedule(eq->now() + delta, QuietEvent{eq, rng, left});
    }
};

TEST(EventQueueStress, SteadyStatePathIsAllocationFree)
{
    EventQueue eq;
    Rng rng(0xF00D);

    // Prime to the high-water mark: a population burst large enough
    // that the node/bucket slabs and the heap vector reach their final
    // capacity before measurement starts.
    std::uint64_t primeLeft = 200'000;
    for (int i = 0; i < 4096; ++i) {
        eq.schedule(1 + rng.below(512), QuietEvent{&eq, &rng, &primeLeft});
    }
    eq.runAll();
    ASSERT_EQ(primeLeft, 0u);

    // Measure: two million further schedule/dispatch round trips must
    // perform zero heap allocations — the slab count must not move and
    // the TU-global allocator hook must see nothing.
    std::uint64_t steadyLeft = 2'000'000;
    for (int i = 0; i < 1024; ++i) {
        eq.schedule(eq.now() + 1 + rng.below(512),
                    QuietEvent{&eq, &rng, &steadyLeft});
    }
    std::uint64_t slabsBefore = eq.slabAllocations();
    std::uint64_t allocsBefore = gAllocs;
    eq.runAll();
    std::uint64_t allocsAfter = gAllocs;
    std::uint64_t slabsAfter = eq.slabAllocations();

    EXPECT_EQ(steadyLeft, 0u);
    EXPECT_EQ(slabsAfter, slabsBefore) << "slabs grew in steady state";
    EXPECT_EQ(allocsAfter, allocsBefore)
        << "steady-state schedule/dispatch touched the heap allocator";
}

} // namespace
} // namespace dbsim
