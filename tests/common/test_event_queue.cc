/** @file Unit tests for the discrete-event kernel. */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"

namespace dbsim {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameCycleFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i) {
        eq.schedule(7, [&order, i] { order.push_back(i); });
    }
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbackCanScheduleMore)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(5, [&] {
            ++fired;
            eq.schedule(9, [&] { ++fired; });
        });
    });
    eq.runAll();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.now(), 9u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(15, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 10u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runAll();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NextTimeAndEmpty)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextTime(), kCycleMax);
    eq.schedule(100, [] {});
    EXPECT_EQ(eq.nextTime(), 100u);
    EXPECT_FALSE(eq.empty());
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueueDeath, PastSchedulingPanicCarriesFull64BitCycles)
{
    // Regression: the panic formatted cycles with a 32-bit conversion,
    // so beyond 2^32 cycles the "scheduled in the past" message named
    // truncated times, pointing debugging at the wrong cycle entirely.
    EventQueue eq;
    const Cycle big = (1ull << 40) + 5;  // 1099511627781
    eq.schedule(big, [] {});
    eq.runAll();
    EXPECT_EQ(eq.now(), big);
    EXPECT_DEATH(eq.schedule(7, [] {}), "7 < 1099511627781");
}

} // namespace
} // namespace dbsim
