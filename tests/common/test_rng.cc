/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace dbsim {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) {
            ++same;
        }
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    for (int i = 0; i < 100000; ++i) {
        if (rng.chance(0.3)) {
            ++hits;
        }
    }
    EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(Rng, ZeroSeedStillWorks)
{
    Rng rng(0);
    EXPECT_NE(rng.next(), rng.next());
}

} // namespace
} // namespace dbsim
