/** @file Unit tests for the DRAM address map and DBI region map. */

#include <gtest/gtest.h>

#include "common/addr_map.hh"
#include "common/rng.hh"

namespace dbsim {
namespace {

TEST(DramAddrMap, Geometry)
{
    DramAddrMap map(8192, 8);
    EXPECT_EQ(map.rowBytes(), 8192u);
    EXPECT_EQ(map.numBanks(), 8u);
    EXPECT_EQ(map.blocksPerRow(), 128u);
}

TEST(DramAddrMap, RowInterleavingRotatesBanks)
{
    DramAddrMap map(8192, 8);
    // Consecutive rows land in consecutive banks.
    for (std::uint64_t row = 0; row < 16; ++row) {
        Addr a = row * 8192;
        EXPECT_EQ(map.rowId(a), row);
        EXPECT_EQ(map.bank(a), row % 8);
        EXPECT_EQ(map.rowInBank(a), row / 8);
    }
}

TEST(DramAddrMap, BlocksWithinRowShareRow)
{
    DramAddrMap map(8192, 8);
    Addr row_base = 42 * 8192;
    for (std::uint32_t i = 0; i < 128; ++i) {
        Addr a = row_base + i * 64;
        EXPECT_EQ(map.rowId(a), 42u);
        EXPECT_EQ(map.blockInRow(a), i);
        EXPECT_EQ(map.rowBase(a), row_base);
        EXPECT_EQ(map.blockInRowAddr(a, i), a);
    }
}

TEST(DramAddrMap, RoundTripProperty)
{
    DramAddrMap map(8192, 8);
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        Addr a = blockAlign(rng.next() & ((Addr{1} << 44) - 1));
        std::uint32_t idx = map.blockInRow(a);
        EXPECT_EQ(map.blockInRowAddr(a, idx), a);
    }
}

TEST(DbiRegionMap, FullRowGranularity)
{
    DbiRegionMap map(128);
    EXPECT_EQ(map.granularity(), 128u);
    Addr a = 5 * 8192 + 3 * 64;
    EXPECT_EQ(map.regionTag(a), 5u);
    EXPECT_EQ(map.blockIndex(a), 3u);
    EXPECT_EQ(map.blockAddr(5, 3), a);
}

TEST(DbiRegionMap, HalfRowGranularitySplitsRows)
{
    // granularity 64 = half an 8KB row: two regions per DRAM row.
    DbiRegionMap map(64);
    Addr first_half = 10 * 8192;
    Addr second_half = 10 * 8192 + 64 * 64;
    EXPECT_NE(map.regionTag(first_half), map.regionTag(second_half));
    EXPECT_EQ(map.blockIndex(second_half), 0u);
}

TEST(DbiRegionMap, RoundTripProperty)
{
    for (std::uint32_t gran : {16u, 32u, 64u, 128u}) {
        DbiRegionMap map(gran);
        Rng rng(gran);
        for (int i = 0; i < 500; ++i) {
            Addr a = blockAlign(rng.next() & ((Addr{1} << 40) - 1));
            EXPECT_EQ(map.blockAddr(map.regionTag(a), map.blockIndex(a)),
                      a);
        }
    }
}

} // namespace
} // namespace dbsim
