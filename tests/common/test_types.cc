/** @file Unit tests for fundamental types and address helpers. */

#include <gtest/gtest.h>

#include "common/types.hh"

namespace dbsim {
namespace {

TEST(Types, BlockAlignStripsOffset)
{
    EXPECT_EQ(blockAlign(0x1000), 0x1000u);
    EXPECT_EQ(blockAlign(0x103F), 0x1000u);
    EXPECT_EQ(blockAlign(0x1040), 0x1040u);
    EXPECT_EQ(blockAlign(0), 0u);
}

TEST(Types, BlockNumber)
{
    EXPECT_EQ(blockNumber(0), 0u);
    EXPECT_EQ(blockNumber(63), 0u);
    EXPECT_EQ(blockNumber(64), 1u);
    EXPECT_EQ(blockNumber(0x1000), 0x40u);
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(std::uint64_t{1} << 40), 40u);
}

TEST(Types, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(4097));
}

TEST(Types, BlockConstantsConsistent)
{
    EXPECT_EQ(std::uint32_t{1} << kBlockShift, kBlockBytes);
}

} // namespace
} // namespace dbsim
