/** @file Unit tests for the statistics counters. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace dbsim {
namespace {

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c += 10;
    EXPECT_EQ(c.value(), 12u);
}

TEST(Counter, SnapshotDelta)
{
    Counter c;
    c += 5;
    c.snapshot();
    EXPECT_EQ(c.sinceSnapshot(), 0u);
    c += 3;
    EXPECT_EQ(c.sinceSnapshot(), 3u);
    EXPECT_EQ(c.value(), 8u);
}

TEST(StatSet, CollectsSinceSnapshot)
{
    StatSet set("test");
    Counter a, b;
    set.add("a", a);
    set.add("b", b);
    a += 7;
    b += 2;
    set.snapshotAll();
    a += 4;
    auto m = set.collect();
    EXPECT_EQ(m["a"], 4u);
    EXPECT_EQ(m["b"], 0u);
    EXPECT_EQ(set.ownerName(), "test");
}

} // namespace
} // namespace dbsim
