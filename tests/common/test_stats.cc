/** @file Unit tests for the statistics counters. */

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace dbsim {
namespace {

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c += 10;
    EXPECT_EQ(c.value(), 12u);
}

TEST(Counter, SnapshotDelta)
{
    Counter c;
    c += 5;
    c.snapshot();
    EXPECT_EQ(c.sinceSnapshot(), 0u);
    c += 3;
    EXPECT_EQ(c.sinceSnapshot(), 3u);
    EXPECT_EQ(c.value(), 8u);
}

TEST(StatSet, CollectsSinceSnapshot)
{
    StatSet set("test");
    Counter a, b;
    set.add("a", a);
    set.add("b", b);
    a += 7;
    b += 2;
    set.snapshotAll();
    a += 4;
    auto m = set.collect();
    EXPECT_EQ(m["a"], 4u);
    EXPECT_EQ(m["b"], 0u);
    EXPECT_EQ(set.ownerName(), "test");
}

TEST(StatSet, DuplicateNamesSumAcrossRegistrants)
{
    // One counter per core registered under one name: collect() must
    // report the system-wide aggregate, not the last registrant.
    StatSet set("test");
    Counter core0, core1, core2;
    set.add("mem.loads", core0);
    set.add("mem.loads", core1);
    set.add("mem.loads", core2);
    core0 += 3;
    core1 += 5;
    core2 += 11;
    auto m = set.collect();
    EXPECT_EQ(m["mem.loads"], 19u);
    EXPECT_EQ(m.size(), 1u);
}

TEST(StatSet, DuplicateNamesSumWindowDeltasOnly)
{
    // The measurement-window math must hold per registrant even when
    // names collide: each counter contributes its own since-snapshot
    // delta to the shared name.
    StatSet set("test");
    Counter a, b;
    set.add("x", a);
    set.add("x", b);
    a += 100;  // warmup activity, later snapshot away
    b += 7;
    set.snapshotAll();
    a += 2;
    b += 3;
    EXPECT_EQ(set.collect()["x"], 5u);
}

TEST(StatSet, SnapshotThenCollectIsZero)
{
    // A snapshot directly followed by collect must report an empty
    // window regardless of prior totals.
    StatSet set("test");
    Counter a;
    set.add("a", a);
    a += 42;
    set.snapshotAll();
    auto m = set.collect();
    EXPECT_EQ(m["a"], 0u);
    EXPECT_EQ(a.value(), 42u);
    EXPECT_EQ(a.sinceSnapshot(), 0u);
}

TEST(StatSet, ResnapshotMovesTheWindow)
{
    // Snapshotting again re-opens the window at the current totals;
    // collect() must never see activity before the newest snapshot.
    StatSet set("test");
    Counter a;
    set.add("a", a);
    a += 10;
    set.snapshotAll();
    a += 4;
    set.snapshotAll();
    a += 1;
    EXPECT_EQ(set.collect()["a"], 1u);
}

} // namespace
} // namespace dbsim
