/**
 * @file
 * ShardFabric unit tests: delivery timing (always send time + hop, so a
 * message lands strictly after the epoch it was sent in), deterministic
 * total ordering of same-cycle messages regardless of which lane they
 * arrived on, and a randomized no-message-loss property whose failures
 * are ddmin-shrunk to a minimal reproducing message set.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "common/shard.hh"

namespace dbsim {
namespace {

/** N queues + a fabric, with the epoch plumbing tests drive by hand. */
struct Mesh
{
    explicit Mesh(std::uint32_t n, Cycle hop) : fab(n, hop)
    {
        for (std::uint32_t i = 0; i < n; ++i) {
            queues.push_back(std::make_unique<EventQueue>());
            ptrs.push_back(queues.back().get());
        }
    }

    /** One conservative epoch: run every queue to `limit`, then flush. */
    void
    epoch(Cycle limit)
    {
        for (EventQueue *q : ptrs) {
            q->runUntil(limit);
        }
        fab.deliverAll(ptrs);
    }

    std::vector<std::unique_ptr<EventQueue>> queues;
    std::vector<EventQueue *> ptrs;
    ShardFabric fab;
};

TEST(ShardFabric, DeliversAtSendTimePlusHop)
{
    Mesh mesh(2, 10);
    Cycle delivered = 0;
    mesh.fab.send(0, 1, 5, [&](Cycle at) { delivered = at; });
    EXPECT_EQ(mesh.fab.inFlight(), 1u);

    mesh.epoch(9);  // epoch [0, 10): the send happened inside it
    EXPECT_EQ(mesh.fab.inFlight(), 0u);
    mesh.epoch(19);
    EXPECT_EQ(delivered, 15u);
    EXPECT_EQ(mesh.queues[1]->now(), 19u);
    EXPECT_EQ(mesh.fab.statMessages.value(), 1u);
}

TEST(ShardFabric, DeliveryIsNeverInsideTheSendingEpoch)
{
    // The conservative-window contract: with hop == W, a message sent
    // at any t in [B, B+W) delivers at t+W in [B+W, B+2W) — strictly
    // after the barrier, so no destination can have advanced past it.
    const Cycle W = 8;
    Mesh mesh(3, W);
    std::vector<Cycle> deliveries;
    for (Cycle base = 0; base < 5 * W; base += W) {
        const Cycle limit = base + W - 1;
        for (Cycle t = base; t <= limit; t += 3) {
            mesh.fab.send(0, 2, t, [&, base](Cycle at) {
                deliveries.push_back(at);
                EXPECT_GE(at, base + W) << "delivered in its own epoch";
            });
        }
        mesh.epoch(limit);
    }
    mesh.epoch(6 * W - 1);
    EXPECT_EQ(deliveries.size(), 15u);
    EXPECT_TRUE(std::is_sorted(deliveries.begin(), deliveries.end()));
}

TEST(ShardFabric, SameCycleMessagesOrderBySeqThenSourceLane)
{
    // Three sources hit shard 3 at the same delivery cycle. The merged
    // order must be a pure function of (deliverAt, per-lane seq, src) —
    // the lanes were filled in an arbitrary host order, but the result
    // interleaves round-robin by sequence number with source id
    // breaking ties, matching the documented total order.
    Mesh mesh(4, 4);
    std::vector<std::string> order;
    auto tag = [&](std::string label) {
        return [&order, label = std::move(label)](Cycle) {
            order.push_back(label);
        };
    };
    // Fill lanes deliberately out of source order.
    mesh.fab.send(2, 3, 0, tag("c0"));
    mesh.fab.send(2, 3, 0, tag("c1"));
    mesh.fab.send(0, 3, 0, tag("a0"));
    mesh.fab.send(1, 3, 0, tag("b0"));
    mesh.fab.send(0, 3, 0, tag("a1"));

    mesh.epoch(3);
    mesh.epoch(7);
    EXPECT_EQ(order, (std::vector<std::string>{"a0", "b0", "c0", "a1",
                                               "c1"}));
}

TEST(ShardFabric, LaterSendCycleAlwaysDeliversLater)
{
    Mesh mesh(2, 16);
    std::vector<int> order;
    mesh.fab.send(0, 1, 9, [&](Cycle) { order.push_back(2); });
    mesh.fab.send(1, 1, 3, [&](Cycle) { order.push_back(1); });
    mesh.epoch(15);
    mesh.epoch(31);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// ---- randomized no-loss property with ddmin shrinking ---------------

struct Msg
{
    std::uint32_t src;
    std::uint32_t dst;
    Cycle sendAt;  ///< relative to the start of the epoch that sends it
    std::uint32_t epoch;
};

/**
 * Replay `msgs` through a 4-shard mesh, one conservative epoch at a
 * time, and report how many were delivered. Correct fabrics deliver
 * every message exactly once, at sendAt + hop.
 */
std::size_t
deliveredCount(const std::vector<Msg> &msgs, Cycle hop)
{
    Mesh mesh(4, hop);
    std::size_t delivered = 0;
    std::uint32_t lastEpoch = 0;
    for (const Msg &m : msgs) {
        lastEpoch = std::max(lastEpoch, m.epoch);
    }
    for (std::uint32_t e = 0; e <= lastEpoch + 2; ++e) {
        const Cycle base = static_cast<Cycle>(e) * hop;
        for (const Msg &m : msgs) {
            if (m.epoch == e) {
                Cycle at = base + (m.sendAt % hop);
                mesh.fab.send(m.src, m.dst, at,
                              [&delivered, at, hop](Cycle when) {
                                  ++delivered;
                                  EXPECT_EQ(when, at + hop);
                              });
            }
        }
        mesh.epoch(base + hop - 1);
    }
    EXPECT_EQ(mesh.fab.inFlight(), 0u);
    return delivered;
}

/** ddmin: smallest subsequence of `msgs` still losing a message. */
std::vector<Msg>
shrinkLoss(std::vector<Msg> msgs, Cycle hop)
{
    std::size_t window = msgs.size() / 2;
    while (window >= 1) {
        bool shrunk = false;
        for (std::size_t at = 0; at + window <= msgs.size();) {
            std::vector<Msg> cand;
            cand.insert(cand.end(), msgs.begin(),
                        msgs.begin() + static_cast<std::ptrdiff_t>(at));
            cand.insert(cand.end(),
                        msgs.begin() +
                            static_cast<std::ptrdiff_t>(at + window),
                        msgs.end());
            if (deliveredCount(cand, hop) != cand.size()) {
                msgs = std::move(cand);  // still failing: keep it small
                shrunk = true;
            } else {
                at += window;
            }
        }
        if (!shrunk && window == 1) {
            break;
        }
        window = std::max<std::size_t>(1, window / 2);
    }
    return msgs;
}

TEST(ShardFabric, NoMessageLossUnderRandomTraffic)
{
    const Cycle hop = 16;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        Rng rng(0x5AB1E + seed);
        std::vector<Msg> msgs;
        for (int i = 0; i < 300; ++i) {
            Msg m;
            m.src = static_cast<std::uint32_t>(rng.below(4));
            m.dst = static_cast<std::uint32_t>(rng.below(4));
            m.sendAt = rng.below(hop);
            m.epoch = static_cast<std::uint32_t>(rng.below(12));
            msgs.push_back(m);
        }
        std::size_t got = deliveredCount(msgs, hop);
        if (got != msgs.size()) {
            std::vector<Msg> minimal = shrinkLoss(msgs, hop);
            std::string repro;
            for (const Msg &m : minimal) {
                repro += "  {" + std::to_string(m.src) + " -> " +
                         std::to_string(m.dst) + ", epoch " +
                         std::to_string(m.epoch) + ", +"+
                         std::to_string(m.sendAt) + "}\n";
            }
            FAIL() << "lost " << (msgs.size() - got) << "/"
                   << msgs.size() << " messages (seed " << seed
                   << "); minimal reproducer (" << minimal.size()
                   << " msgs):\n"
                   << repro;
        }
    }
}

// ---- flow-observer (flight recorder) accounting ---------------------

/** Records every flow id seen on both sides of the fabric seam. */
struct CollectObserver : FlowObserver
{
    struct Flow
    {
        std::uint32_t src, dst;
        Cycle sendAt, deliverAt;
        std::string kind;
    };
    std::map<std::uint64_t, Flow> sent;
    std::map<std::uint64_t, Flow> delivered;
    std::uint64_t duplicateSends = 0;
    std::uint64_t duplicateDeliveries = 0;

    void
    onSend(std::uint32_t src, std::uint32_t dst, Cycle send_time,
           Cycle deliver_time, std::uint64_t flow_id,
           const char *kind) override
    {
        if (!sent.emplace(flow_id,
                          Flow{src, dst, send_time, deliver_time, kind})
                 .second) {
            ++duplicateSends;
        }
    }

    void
    onDeliver(std::uint32_t src, std::uint32_t dst, Cycle deliver_time,
              std::uint64_t flow_id, const char *kind) override
    {
        if (!delivered
                 .emplace(flow_id,
                          Flow{src, dst, deliver_time, deliver_time,
                               kind})
                 .second) {
            ++duplicateDeliveries;
        }
    }
};

TEST(ShardFabric, FlowObserverSeesEveryMessageExactlyOnce)
{
    const Cycle hop = 16;
    CollectObserver obs;
    Rng rng(0xF10);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        std::vector<Msg> msgs;
        for (int i = 0; i < 200; ++i) {
            Msg m;
            m.src = static_cast<std::uint32_t>(rng.below(4));
            m.dst = static_cast<std::uint32_t>(rng.below(4));
            m.sendAt = rng.below(hop);
            m.epoch = static_cast<std::uint32_t>(rng.below(10));
            msgs.push_back(m);
        }

        Mesh mesh(4, hop);
        mesh.fab.attachFlowObserver(&obs);
        obs = CollectObserver{};
        std::size_t deliveredCbs = 0;
        std::uint32_t lastEpoch = 0;
        for (const Msg &m : msgs) {
            lastEpoch = std::max(lastEpoch, m.epoch);
        }
        for (std::uint32_t e = 0; e <= lastEpoch + 2; ++e) {
            const Cycle base = static_cast<Cycle>(e) * hop;
            for (const Msg &m : msgs) {
                if (m.epoch == e) {
                    mesh.fab.send(m.src, m.dst, base + (m.sendAt % hop),
                                  [&deliveredCbs](Cycle) {
                                      ++deliveredCbs;
                                  },
                                  "test");
                }
            }
            mesh.epoch(base + hop - 1);
        }

        // Every message begun exactly one flow and bound exactly one.
        EXPECT_EQ(obs.duplicateSends, 0u);
        EXPECT_EQ(obs.duplicateDeliveries, 0u);
        EXPECT_EQ(obs.sent.size(), msgs.size());
        EXPECT_EQ(obs.delivered.size(), deliveredCbs);
        ASSERT_EQ(deliveredCbs, msgs.size());

        for (const auto &[id, send] : obs.sent) {
            auto it = obs.delivered.find(id);
            ASSERT_NE(it, obs.delivered.end())
                << "flow " << id << " begun but never bound";
            // deliverAll recovers src from the id alone; it must agree
            // with what the sender reported, as must everything else.
            EXPECT_EQ(it->second.src, send.src);
            EXPECT_EQ(it->second.dst, send.dst);
            EXPECT_EQ(it->second.deliverAt, send.deliverAt);
            EXPECT_EQ(it->second.deliverAt, send.sendAt + hop);
            EXPECT_EQ(it->second.kind, "test");
        }
    }
}

TEST(ShardFabric, FlowIdsEncodeSourceAndDestination)
{
    Mesh mesh(4, 8);
    CollectObserver obs;
    mesh.fab.attachFlowObserver(&obs);
    for (std::uint32_t src = 0; src < 4; ++src) {
        for (std::uint32_t dst = 0; dst < 4; ++dst) {
            mesh.fab.send(src, dst, 0, [](Cycle) {});
        }
    }
    ASSERT_EQ(obs.sent.size(), 16u);
    for (const auto &[id, f] : obs.sent) {
        EXPECT_EQ((id / 4) % 4, f.src) << "id " << id;
        EXPECT_EQ(id % 4, f.dst) << "id " << id;
    }
    mesh.epoch(7);
    mesh.epoch(15);
    EXPECT_EQ(obs.delivered.size(), 16u);
}

TEST(ShardFabric, SingleShardHopStillDelaysSelfMessages)
{
    // A 1-shard fabric is degenerate but legal: self-sends still pay
    // the hop, so epoch maths stay uniform.
    Mesh mesh(1, 32);
    Cycle delivered = 0;
    mesh.fab.send(0, 0, 7, [&](Cycle at) { delivered = at; });
    mesh.epoch(31);
    mesh.epoch(63);
    EXPECT_EQ(delivered, 39u);
}

} // namespace
} // namespace dbsim
