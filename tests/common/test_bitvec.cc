/** @file Unit and property tests for BitVec. */

#include <gtest/gtest.h>

#include <set>

#include "common/bitvec.hh"
#include "common/rng.hh"

namespace dbsim {
namespace {

TEST(BitVec, StartsEmpty)
{
    BitVec v(64);
    EXPECT_TRUE(v.none());
    EXPECT_FALSE(v.any());
    EXPECT_EQ(v.count(), 0u);
    for (std::uint32_t i = 0; i < 64; ++i) {
        EXPECT_FALSE(v.test(i));
    }
}

TEST(BitVec, SetTestReset)
{
    BitVec v(128);
    v.set(0);
    v.set(63);
    v.set(64);
    v.set(127);
    EXPECT_TRUE(v.test(0));
    EXPECT_TRUE(v.test(63));
    EXPECT_TRUE(v.test(64));
    EXPECT_TRUE(v.test(127));
    EXPECT_EQ(v.count(), 4u);
    v.reset(63);
    EXPECT_FALSE(v.test(63));
    EXPECT_EQ(v.count(), 3u);
}

TEST(BitVec, ClearResetsAll)
{
    BitVec v(100);
    for (std::uint32_t i = 0; i < 100; i += 7) {
        v.set(i);
    }
    v.clear();
    EXPECT_TRUE(v.none());
}

TEST(BitVec, ForEachSetVisitsAscending)
{
    BitVec v(128);
    std::set<std::uint32_t> want = {3, 17, 63, 64, 99, 127};
    for (auto b : want) {
        v.set(b);
    }
    std::vector<std::uint32_t> got;
    v.forEachSet([&](std::uint32_t b) { got.push_back(b); });
    EXPECT_EQ(got.size(), want.size());
    EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
    for (auto b : got) {
        EXPECT_TRUE(want.count(b));
    }
}

TEST(BitVec, Equality)
{
    BitVec a(32), b(32), c(64);
    a.set(5);
    b.set(5);
    EXPECT_EQ(a, b);
    b.set(6);
    EXPECT_FALSE(a == b);
    EXPECT_FALSE(a == c);
}

/** Property: count() always equals the number of set() minus reset(). */
TEST(BitVec, PropertyCountMatchesModel)
{
    Rng rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        std::uint32_t width =
            static_cast<std::uint32_t>(1 + rng.below(128));
        BitVec v(width);
        std::set<std::uint32_t> model;
        for (int op = 0; op < 300; ++op) {
            std::uint32_t bit =
                static_cast<std::uint32_t>(rng.below(width));
            if (rng.chance(0.5)) {
                v.set(bit);
                model.insert(bit);
            } else {
                v.reset(bit);
                model.erase(bit);
            }
            ASSERT_EQ(v.count(), model.size());
        }
        for (std::uint32_t b = 0; b < width; ++b) {
            ASSERT_EQ(v.test(b), model.count(b) != 0);
        }
    }
}

} // namespace
} // namespace dbsim
