/** @file Unit tests for the telemetry Histogram primitive. */

#include <gtest/gtest.h>

#include "telemetry/histogram.hh"

namespace dbsim::telemetry {
namespace {

TEST(Histogram, BucketIndexBoundaries)
{
    EXPECT_EQ(Histogram::bucketIndex(0), 0u);
    EXPECT_EQ(Histogram::bucketIndex(1), 1u);
    EXPECT_EQ(Histogram::bucketIndex(2), 2u);
    EXPECT_EQ(Histogram::bucketIndex(3), 2u);
    EXPECT_EQ(Histogram::bucketIndex(4), 3u);
    EXPECT_EQ(Histogram::bucketIndex(1023), 10u);
    EXPECT_EQ(Histogram::bucketIndex(1024), 11u);
}

TEST(Histogram, BucketBoundsRoundTrip)
{
    // Every value must fall inside [bucketLow, bucketHigh) of its
    // bucket.
    for (std::uint64_t v : {0ull, 1ull, 2ull, 5ull, 64ull, 1000ull,
                            (1ull << 40) + 7}) {
        std::uint32_t b = Histogram::bucketIndex(v);
        EXPECT_GE(v, Histogram::bucketLow(b)) << v;
        EXPECT_LT(v, Histogram::bucketHigh(b)) << v;
    }
}

TEST(Histogram, EmptyHistogramIsInert)
{
    Histogram h{"empty"};
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(50), 0u);
}

TEST(Histogram, RecordTracksMoments)
{
    Histogram h{"lat"};
    for (std::uint64_t v : {10ull, 20ull, 30ull, 40ull}) {
        h.record(v);
    }
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 40u);
    EXPECT_EQ(h.sum(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 25.0);
}

TEST(Histogram, BucketCountsMatchRecords)
{
    Histogram h;
    h.record(0);   // bucket 0
    h.record(1);   // bucket 1
    h.record(2);   // bucket 2
    h.record(3);   // bucket 2
    h.record(8);   // bucket 4
    const auto &b = h.buckets();
    ASSERT_GE(b.size(), 5u);
    EXPECT_EQ(b[0], 1u);
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[2], 2u);
    EXPECT_EQ(b[3], 0u);
    EXPECT_EQ(b[4], 1u);
}

TEST(Histogram, PercentilesAreExactNearestRank)
{
    Histogram h;
    // 1..100: nearest-rank p is exactly p for 100 samples.
    for (std::uint64_t v = 1; v <= 100; ++v) {
        h.record(v);
    }
    EXPECT_EQ(h.percentile(50), 50u);
    EXPECT_EQ(h.percentile(95), 95u);
    EXPECT_EQ(h.percentile(99), 99u);
    EXPECT_EQ(h.percentile(100), 100u);
    EXPECT_EQ(h.percentile(0), 1u);
}

TEST(Histogram, PercentileAfterInterleavedRecords)
{
    // Lazy sorting must survive query-record-query interleavings.
    Histogram h;
    h.record(30);
    h.record(10);
    EXPECT_EQ(h.percentile(100), 30u);
    h.record(20);
    EXPECT_EQ(h.percentile(50), 20u);
    EXPECT_EQ(h.percentile(100), 30u);
}

TEST(Histogram, SingleSampleIsEveryPercentile)
{
    Histogram h;
    h.record(7);
    EXPECT_EQ(h.percentile(1), 7u);
    EXPECT_EQ(h.percentile(50), 7u);
    EXPECT_EQ(h.percentile(99), 7u);
}

TEST(Histogram, SummaryLineAndReportMentionTheStats)
{
    Histogram h{"lat.readHit"};
    for (std::uint64_t v = 1; v <= 10; ++v) {
        h.record(v);
    }
    std::string s = h.summaryLine();
    EXPECT_NE(s.find("count=10"), std::string::npos) << s;
    EXPECT_NE(s.find("p50="), std::string::npos) << s;
    EXPECT_NE(s.find("p99="), std::string::npos) << s;
    std::string r = h.report();
    EXPECT_NE(r.find("lat.readHit"), std::string::npos) << r;
    EXPECT_FALSE(r.empty());
}

} // namespace
} // namespace dbsim::telemetry
