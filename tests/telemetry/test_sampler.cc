/** @file Unit tests for the epoch StatSampler. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/stats.hh"
#include "telemetry/sampler.hh"

namespace dbsim::telemetry {
namespace {

TEST(StatSampler, ClosesEpochsOnGridCrossings)
{
    StatSampler s(100);
    int reads = 0;
    s.addGauge("g", [&reads] { return double(reads); });

    reads = 1;
    s.poll(50);  // inside epoch 0: nothing closes
    EXPECT_EQ(s.epochsClosed(), 0u);

    reads = 2;
    s.poll(100);  // boundary: epoch 0 closes with the current value
    ASSERT_EQ(s.epochsClosed(), 1u);
    EXPECT_EQ(s.ring()[0].start, 0u);
    EXPECT_EQ(s.ring()[0].end, 100u);
    EXPECT_DOUBLE_EQ(s.ring()[0].values[0], 2.0);
}

TEST(StatSampler, EventGapsSubsumeEmptyEpochs)
{
    // Event-driven time can jump several grid epochs at once; the next
    // sample covers the whole gap and the boundary resets forward.
    StatSampler s(100);
    s.addGauge("g", [] { return 1.0; });
    s.poll(350);
    ASSERT_EQ(s.epochsClosed(), 1u);
    EXPECT_EQ(s.ring()[0].start, 0u);
    EXPECT_EQ(s.ring()[0].end, 350u);
    s.poll(399);  // still inside the re-gridded epoch [350, 400)
    EXPECT_EQ(s.epochsClosed(), 1u);
    s.poll(400);
    EXPECT_EQ(s.epochsClosed(), 2u);
    EXPECT_EQ(s.ring()[1].start, 350u);
    EXPECT_EQ(s.ring()[1].end, 400u);
}

TEST(StatSampler, CounterChannelReportsPerEpochDeltas)
{
    StatSampler s(10);
    Counter c;
    c += 5;  // pre-registration counts never appear in epochs
    s.addCounter("c", c);
    c += 3;
    s.poll(10);
    c += 4;
    s.poll(20);
    ASSERT_EQ(s.epochsClosed(), 2u);
    EXPECT_DOUBLE_EQ(s.ring()[0].values[0], 3.0);
    EXPECT_DOUBLE_EQ(s.ring()[1].values[0], 4.0);
}

TEST(StatSampler, SamplingNeverTouchesCounterSnapshots)
{
    // The sampler keeps private last-value bookkeeping; the StatSet
    // measurement-window math must be unaffected by sampling.
    StatSampler s(10);
    Counter c;
    s.addCounter("c", c);
    c += 7;
    c.snapshot();
    c += 2;
    s.poll(10);
    s.poll(20);
    EXPECT_EQ(c.sinceSnapshot(), 2u);
    EXPECT_EQ(c.value(), 9u);
}

TEST(StatSampler, RateChannelDividesEpochDeltas)
{
    StatSampler s(10);
    Counter hits, total;
    s.addRate("rate", hits, total);
    hits += 1;
    total += 4;
    s.poll(10);
    s.poll(20);  // no movement: rate reports 0, not NaN
    hits += 3;
    total += 3;
    s.poll(30);
    ASSERT_EQ(s.epochsClosed(), 3u);
    EXPECT_DOUBLE_EQ(s.ring()[0].values[0], 0.25);
    EXPECT_DOUBLE_EQ(s.ring()[1].values[0], 0.0);
    EXPECT_DOUBLE_EQ(s.ring()[2].values[0], 1.0);
}

TEST(StatSampler, RingDropsOldestBeyondCapacity)
{
    StatSampler s(10, 3);
    s.addGauge("g", [] { return 0.0; });
    for (Cycle t = 10; t <= 60; t += 10) {
        s.poll(t);
    }
    EXPECT_EQ(s.epochsClosed(), 6u);
    ASSERT_EQ(s.ring().size(), 3u);
    EXPECT_EQ(s.ring().front().epoch, 3u);
    EXPECT_EQ(s.ring().back().epoch, 5u);
}

TEST(StatSampler, FinishClosesThePartialEpoch)
{
    StatSampler s(100);
    s.addGauge("g", [] { return 4.0; });
    s.poll(100);
    s.finish(130);  // partial [100, 130] epoch
    ASSERT_EQ(s.epochsClosed(), 2u);
    EXPECT_EQ(s.ring()[1].start, 100u);
    EXPECT_EQ(s.ring()[1].end, 130u);
}

TEST(StatSampler, FinishOnEmptyRunStillEmitsOneEpoch)
{
    StatSampler s(100);
    s.addGauge("g", [] { return 1.0; });
    s.finish(0);
    EXPECT_EQ(s.epochsClosed(), 1u);
}

TEST(StatSampler, JsonlStreamHasOneParseableRowPerEpoch)
{
    std::string path = ::testing::TempDir() + "sampler_test.jsonl";
    {
        StatSampler s(10);
        s.openJsonl(path);
        Counter c;
        s.addCounter("dramReads", c);
        s.addGauge("depth", [] { return 2.5; });
        c += 6;
        s.poll(10);
        s.finish(15);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        ++rows;
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"epoch\":"), std::string::npos);
        EXPECT_NE(line.find("\"dramReads\":"), std::string::npos);
        EXPECT_NE(line.find("\"depth\":"), std::string::npos);
    }
    EXPECT_EQ(rows, 2u);
    std::remove(path.c_str());
}

TEST(StatSampler, ChannelNamesPreserveRegistrationOrder)
{
    StatSampler s(10);
    Counter c;
    s.addGauge("a", [] { return 0.0; });
    s.addCounter("b", c);
    s.addRate("c", c, c);
    std::vector<std::string> names = s.channelNames();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "a");
    EXPECT_EQ(names[1], "b");
    EXPECT_EQ(names[2], "c");
}

} // namespace
} // namespace dbsim::telemetry
