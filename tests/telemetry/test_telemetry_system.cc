/**
 * @file
 * System-level telemetry tests: attaching the sampler, histograms, and
 * trace writer must not perturb the simulation (cycle- and
 * stat-identical runs), the drain-window durations traced through the
 * DramObserver seam must sum exactly to the controller's own
 * statDrainCycles, and the emitted artifacts must be well-formed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/prof.hh"
#include "sim/system.hh"

namespace dbsim {
namespace {

SystemConfig
quickConfig(Mechanism m, std::uint32_t cores = 1)
{
    SystemConfig cfg;
    cfg.mech = m;
    cfg.numCores = cores;
    cfg.core.warmupInstrs = 200'000;
    cfg.core.measureInstrs = 200'000;
    return cfg;
}

TEST(TelemetrySystem, SamplingAndHistogramsDoNotPerturbTheRun)
{
    SystemConfig plain = quickConfig(Mechanism::DbiAwbClb);
    SimResult a = runWorkload(plain, {"lbm"});

    SystemConfig telem = plain;
    telem.telemetry.sampleEvery = 10'000;
    telem.telemetry.histograms = true;
    SimResult b = runWorkload(telem, {"lbm"});

    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.windowCycles, b.windowCycles);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_TRUE(a.telemetry.empty());
    EXPECT_FALSE(b.telemetry.empty());
}

TEST(TelemetrySystem, SampleZeroAndSampleNAreStatIdentical)
{
    for (Mechanism m : {Mechanism::TaDip, Mechanism::Dawb,
                        Mechanism::SkipCache, Mechanism::DbiAwbClb}) {
        SystemConfig off = quickConfig(m);
        SystemConfig on = off;
        on.telemetry.sampleEvery = 5'000;
        SimResult a = runWorkload(off, {"mcf"});
        SimResult b = runWorkload(on, {"mcf"});
        EXPECT_EQ(a.stats, b.stats) << mechanismName(m);
        EXPECT_EQ(a.windowCycles, b.windowCycles) << mechanismName(m);
    }
}

TEST(TelemetrySystem, TracedDrainWindowsSumToDrainCycles)
{
    // The observer seam credits exactly what endDrain credits, so the
    // sum of traced window durations equals the lifetime drain-cycle
    // counter. A small LLC under write-heavy lbm evicts dirty blocks
    // fast enough to fill the DRAM write queue and force drain windows.
    SystemConfig cfg = quickConfig(Mechanism::TaDip);
    cfg.llcBytesPerCore = 256 << 10;
    cfg.telemetry.histograms = true;
    System sys(cfg, {"lbm"});
    sys.run();

    ASSERT_NE(sys.telemetry(), nullptr);
    EXPECT_GT(sys.telemetry()->drainWindowsTraced(), 0u);
    EXPECT_EQ(sys.telemetry()->drainCyclesTraced(),
              sys.dram().statDrainCycles.value());
    EXPECT_EQ(sys.telemetry()->drainWindowsTraced(),
              sys.dram().statDrains.value());
    // The burst-length histogram saw every window.
    EXPECT_EQ(sys.telemetry()->drainBurstWrites().count(),
              sys.dram().statDrains.value());
}

TEST(TelemetrySystem, DirtyPerRowHistogramShowsRowLocality)
{
    // Paper Fig. 2: at writeback time, the victim's DRAM row usually
    // holds several other dirty blocks. lbm (streaming writes) must
    // show samples well above 1 dirty block per row; a small LLC keeps
    // the short run eviction-heavy.
    SystemConfig cfg = quickConfig(Mechanism::TaDip);
    cfg.llcBytesPerCore = 256 << 10;
    cfg.telemetry.histograms = true;
    System sys(cfg, {"lbm"});
    sys.run();

    const telemetry::Histogram &h = sys.telemetry()->dirtyPerRowWb();
    ASSERT_GT(h.count(), 100u);
    EXPECT_GE(h.min(), 1u);  // the victim itself is always counted
    EXPECT_GT(h.percentile(50), 1u);
    // Row can't hold more dirty blocks than it has blocks.
    EXPECT_LE(h.max(), sys.dram().addrMap().blocksPerRow());
}

TEST(TelemetrySystem, ReadLatencyHistogramsSplitByClass)
{
    SystemConfig cfg = quickConfig(Mechanism::DbiAwbClb);
    cfg.pred.epochCycles = 100'000;
    cfg.telemetry.histograms = true;
    System sys(cfg, {"milc"});
    sys.run();

    telemetry::SimTelemetry *t = sys.telemetry();
    EXPECT_GT(t->latReadHit().count(), 0u);
    EXPECT_GT(t->latReadMiss().count(), 0u);
    // Hits are tag+data latency; misses must be slower on average.
    EXPECT_LT(t->latReadHit().mean(), t->latReadMiss().mean());
    // With CLB trained, some predicted misses bypassed the tag store.
    std::uint64_t bypasses = sys.llc().statBypasses.value();
    EXPECT_EQ(t->latBypass().count(), bypasses);
}

TEST(TelemetrySystem, EpochRingCoversTheRun)
{
    SystemConfig cfg = quickConfig(Mechanism::Dbi);
    cfg.telemetry.sampleEvery = 20'000;
    System sys(cfg, {"libquantum"});
    sys.run();

    telemetry::StatSampler *s = sys.telemetry()->sampler();
    ASSERT_NE(s, nullptr);
    ASSERT_GT(s->epochsClosed(), 2u);
    // Epochs tile the run: contiguous, strictly increasing.
    const auto &ring = s->ring();
    for (std::size_t i = 1; i < ring.size(); ++i) {
        EXPECT_EQ(ring[i].start, ring[i - 1].end);
        EXPECT_GT(ring[i].end, ring[i].start);
    }
    // DBI gauges are registered for DBI mechanisms.
    std::vector<std::string> names = s->channelNames();
    EXPECT_NE(std::find(names.begin(), names.end(), "dbiValidEntries"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "writeQueueDepth"),
              names.end());
}

TEST(TelemetrySystem, TraceFileIsWellFormedJson)
{
    std::string path = ::testing::TempDir() + "telemetry_test.trace.json";
    {
        SystemConfig cfg = quickConfig(Mechanism::DbiAwb);
        cfg.telemetry.tracePath = path;
        cfg.telemetry.sampleEvery = 50'000;
        System sys(cfg, {"lbm"});
        sys.run();
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string doc = ss.str();
    while (!doc.empty() && doc.back() == '\n') {
        doc.pop_back();
    }
    // Structural checks (full parse is tools/check_trace.py's job).
    ASSERT_FALSE(doc.empty());
    EXPECT_EQ(doc.front(), '{');
    EXPECT_EQ(doc.back(), '}');
    EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(doc.find("\"otherData\":{"), std::string::npos);
    EXPECT_NE(doc.find("\"telemetry.drainCyclesTraced\":"),
              std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);
    std::remove(path.c_str());
}

TEST(TelemetrySystem, PointSuffixSplicesBeforeExtension)
{
    telemetry::TelemetryConfig tc;
    tc.timeseriesPath = "out/run_ts.jsonl";
    tc.tracePath = "run.trace.json";
    telemetry::TelemetryConfig p3 = tc.withPointSuffix(3);
    EXPECT_EQ(p3.timeseriesPath, "out/run_ts.pt3.jsonl");
    EXPECT_EQ(p3.tracePath, "run.trace.pt3.json");

    telemetry::TelemetryConfig bare;
    bare.tracePath = "noext";
    EXPECT_EQ(bare.withPointSuffix(0).tracePath, "noext.pt0");
    EXPECT_EQ(bare.withPointSuffix(0).timeseriesPath, "");
}

TEST(TelemetrySystem, ShardedFlightRecorderIsAnObserver)
{
    // The full flight recorder on a 4-shard machine — per-shard trace
    // streams, cross-shard flow events, the sampler, histograms, and
    // the host profiler all attached — must leave the simulation
    // bit-identical to a bare run of the same machine.
    SystemConfig plain = quickConfig(Mechanism::DbiAwbClb, 4);
    plain.core.warmupInstrs = 60'000;
    plain.core.measureInstrs = 60'000;
    plain.llcSlices = 4;
    plain.dram.channels = 4;
    plain.numShards = 4;
    WorkloadMix mix{"lbm", "libquantum", "mcf", "stream"};
    SimResult a = runWorkload(plain, mix);

    std::string trace = ::testing::TempDir() + "fr_neutral.trace.json";
    SystemConfig observed = plain;
    observed.telemetry.tracePath = trace;
    observed.telemetry.sampleEvery = 10'000;
    observed.telemetry.histograms = true;
    observed.profile = true;
    SimResult b = runWorkload(observed, mix);

    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.windowCycles, b.windowCycles);
    EXPECT_EQ(a.stats, b.stats);

    // The observers did report: flow totals in the trace-run telemetry,
    // host attribution in hostProfile (when the profiler is built in),
    // and the *merged* trace document at the base path.
    EXPECT_TRUE(a.hostProfile.empty());
    if (prof::kEnabled) {
        EXPECT_FALSE(b.hostProfile.empty());
        EXPECT_EQ(b.hostProfile.at("shards"), 4.0);
        EXPECT_GT(b.hostProfile.at("runMs"), 0.0);
        for (int s = 0; s < 4; ++s) {
            std::string k = "s" + std::to_string(s);
            EXPECT_GE(b.hostProfile.at(k + ".workMs"), 0.0);
            EXPECT_GE(b.hostProfile.at(k + ".stallMs"), 0.0);
            EXPECT_GT(b.hostProfile.at(k + ".epochs"), 0.0);
        }
    } else {
        EXPECT_TRUE(b.hostProfile.empty());
    }

    std::ifstream merged(trace);
    ASSERT_TRUE(merged.good());
    std::stringstream ss;
    ss << merged.rdbuf();
    std::string doc = ss.str();
    // Flow begin/end events and every shard's process track made it
    // into the single merged document.
    EXPECT_NE(doc.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(doc.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\":\"process_name\""), std::string::npos);
    EXPECT_NE(doc.find("shard 3"), std::string::npos);
    EXPECT_NE(doc.find("\"s0.telemetry.fabricFlowsBegun\""),
              std::string::npos);

    std::remove(trace.c_str());
    for (int s = 0; s < 4; ++s) {
        std::string shard_path = telemetry::suffixedPath(
            trace, "s" + std::to_string(s));
        std::remove(shard_path.c_str());
    }
}

TEST(TelemetrySystem, ProfileAloneKeepsResultsAndSkipsTelemetry)
{
    // --profile without telemetry: results identical, no telemetry
    // metrics, hostProfile populated iff the profiler is compiled in.
    SystemConfig plain = quickConfig(Mechanism::TaDip);
    SimResult a = runWorkload(plain, {"mcf"});

    SystemConfig prof_cfg = plain;
    prof_cfg.profile = true;
    SimResult b = runWorkload(prof_cfg, {"mcf"});

    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.windowCycles, b.windowCycles);
    EXPECT_EQ(a.stats, b.stats);
    EXPECT_TRUE(b.telemetry.empty());
    if (prof::kEnabled) {
        EXPECT_FALSE(b.hostProfile.empty());
        // Single-partition machine: one lane, all epochs in shard 0.
        EXPECT_EQ(b.hostProfile.at("shards"), 1.0);
        EXPECT_GT(b.hostProfile.at("s0.events"), 0.0);
    }
}

TEST(TelemetrySystem, DisabledConfigAttachesNothing)
{
    SystemConfig cfg = quickConfig(Mechanism::TaDip);
    System sys(cfg, {"stream"});
    EXPECT_EQ(sys.telemetry(), nullptr);
    sys.run();
}

} // namespace
} // namespace dbsim
