/**
 * @file
 * Tests for the composed LLC policy behaviors: the conventional
 * writeback path, DAWB's full-row sweeps, VWQ's SSV filtering, Skip
 * Cache write-through + bypass, and the DBI organization's semantics
 * (dirtiness lives only in the DBI; AWB and DBI evictions write back
 * whole rows; CLB bypasses clean predicted misses).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "dram/dram_controller.hh"
#include "llc/llc.hh"

namespace dbsim {
namespace {

/** Small LLC so evictions are easy to force: 64KB, 4-way, 256 sets. */
LlcConfig
smallLlc()
{
    LlcConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.assoc = 4;
    cfg.repl = ReplPolicy::Lru;
    cfg.tagLatency = 10;
    cfg.dataLatency = 24;
    cfg.numCores = 1;
    return cfg;
}

DbiConfig
smallDbi()
{
    DbiConfig cfg;
    cfg.alpha = 0.25;
    cfg.granularity = 16;  // 1024 blocks * 0.25 / 16 = 16 entries
    cfg.assoc = 4;
    cfg.repl = DbiReplPolicy::Lrw;
    return cfg;
}

struct LlcTest : public ::testing::Test
{
    LlcTest() : dram(DramConfig{}, eq) {}

    /** The DBI-backed store's own counters (AWB / DBI-eviction wbs). */
    static DbiDirtyStore &
    dbiStore(Llc &llc)
    {
        return static_cast<DbiDirtyStore &>(llc.dirtyStore());
    }

    /** Blocking read helper. */
    Cycle
    readDone(Llc &llc, Addr a, Cycle when, std::uint32_t core = 0)
    {
        Cycle done = 0;
        llc.read(a, core, when, [&](Cycle c) { done = c; });
        eq.runAll();
        return done;
    }

    /** Address of way-filler i for `set` in the small LLC (256 sets). */
    static Addr
    filler(std::uint32_t set, std::uint32_t i)
    {
        return (static_cast<Addr>(i) * 256 + set) * kBlockBytes;
    }

    EventQueue eq;
    DramController dram;
};

// ---------------------------------------------------------------- base

TEST_F(LlcTest, ReadMissFillsAndHits)
{
    Llc llc(smallLlc(), dram, eq);
    Cycle miss_done = readDone(llc, 0x1000, 0);
    EXPECT_GT(miss_done, 50u);  // went to DRAM
    EXPECT_EQ(llc.statDemandMisses.value(), 1u);

    Cycle t = eq.now() + 1;
    Cycle hit_done = readDone(llc, 0x1000, t);
    EXPECT_EQ(hit_done, t + 10 + 24);  // serial tag + data
    EXPECT_EQ(llc.statDemandHits.value(), 1u);
}

TEST_F(LlcTest, DuplicateMissesMergeToOneDramRead)
{
    Llc llc(smallLlc(), dram, eq);
    int completions = 0;
    llc.read(0x2000, 0, 0, [&](Cycle) { ++completions; });
    llc.read(0x2000, 0, 1, [&](Cycle) { ++completions; });
    eq.runAll();
    EXPECT_EQ(completions, 2);
    EXPECT_EQ(dram.statReads.value(), 1u);
}

TEST_F(LlcTest, WritebackMarksResidentBlockDirty)
{
    Llc llc(smallLlc(), dram, eq);
    readDone(llc, 0x3000, 0);
    llc.writeback(0x3000, 0, eq.now());
    EXPECT_TRUE(llc.tags().isDirty(0x3000));
    EXPECT_EQ(llc.statWritebacksIn.value(), 1u);
}

TEST_F(LlcTest, WritebackAllocatesWhenAbsent)
{
    Llc llc(smallLlc(), dram, eq);
    llc.writeback(0x4000, 0, 0);
    eq.runAll();
    EXPECT_TRUE(llc.tags().contains(0x4000));
    EXPECT_TRUE(llc.tags().isDirty(0x4000));
}

TEST_F(LlcTest, DirtyEvictionWritesToDram)
{
    Llc llc(smallLlc(), dram, eq);
    llc.writeback(filler(9, 0), 0, 0);
    for (std::uint32_t i = 1; i <= 4; ++i) {
        readDone(llc, filler(9, i), eq.now() + 1);
    }
    EXPECT_FALSE(llc.tags().contains(filler(9, 0)));
    EXPECT_EQ(llc.statWbToDram.value(), 1u);
}

TEST_F(LlcTest, CleanEvictionIsSilent)
{
    Llc llc(smallLlc(), dram, eq);
    for (std::uint32_t i = 0; i <= 4; ++i) {
        readDone(llc, filler(9, i), eq.now() + 1);
    }
    EXPECT_EQ(llc.statWbToDram.value(), 0u);
}

// ---------------------------------------------------------------- DAWB

TEST_F(LlcTest, DawbSweepsWholeRowOnDirtyEviction)
{
    Llc llc(smallLlc(), dram, eq, nullptr,
            std::make_unique<DawbSweepPolicy>());
    // Dirty the victim and two of its DRAM-row mates (other sets).
    Addr victim = filler(9, 0);
    std::uint32_t row_mate1 = dram.addrMap().blockInRow(victim) + 1;
    std::uint32_t row_mate2 = dram.addrMap().blockInRow(victim) + 2;
    Addr mate1 = dram.addrMap().blockInRowAddr(victim, row_mate1);
    Addr mate2 = dram.addrMap().blockInRowAddr(victim, row_mate2);
    llc.writeback(victim, 0, 0);
    llc.writeback(mate1, 0, 1);
    llc.writeback(mate2, 0, 2);
    eq.runAll();
    std::uint64_t sweeps_before = llc.statSweepLookups.value();

    for (std::uint32_t i = 1; i <= 4; ++i) {
        readDone(llc, filler(9, i), eq.now() + 1);
    }
    // One dirty eviction -> sweep of the other 127 row blocks.
    EXPECT_EQ(llc.statSweepLookups.value() - sweeps_before,
              dram.addrMap().blocksPerRow() - 1);
    // The row mates were proactively written back and cleaned.
    EXPECT_FALSE(llc.tags().isDirty(mate1));
    EXPECT_FALSE(llc.tags().isDirty(mate2));
    EXPECT_TRUE(llc.tags().contains(mate1));  // data stays cached
    EXPECT_EQ(llc.statWbToDram.value(), 3u);
}

// ----------------------------------------------------------------- VWQ

TEST_F(LlcTest, VwqSweepsLessThanDawbWhenCleanButWritesBackLruDirty)
{
    Llc llc(smallLlc(), dram, eq, nullptr,
            std::make_unique<VwqSweepPolicy>(/*lru_ways=*/2));
    Addr victim = filler(9, 0);
    Addr mate = dram.addrMap().blockInRowAddr(
        victim, dram.addrMap().blockInRow(victim) + 1);
    llc.writeback(victim, 0, 0);
    llc.writeback(mate, 0, 1);
    eq.runAll();
    for (std::uint32_t i = 1; i <= 4; ++i) {
        readDone(llc, filler(9, i), eq.now() + 1);
    }
    // The SSV filtered most sets, but the dirty LRU row-mate was found.
    EXPECT_LT(llc.statSweepLookups.value(),
              dram.addrMap().blocksPerRow() - 1);
    EXPECT_GT(llc.statSweepLookups.value(), 0u);
    EXPECT_FALSE(llc.tags().isDirty(mate));
    EXPECT_EQ(llc.statWbToDram.value(), 2u);
}

// ---------------------------------------------------------- Skip Cache

TEST_F(LlcTest, SkipCacheIsWriteThrough)
{
    auto pred = std::make_shared<NeverMissPredictor>();
    Llc llc(smallLlc(), dram, eq, std::make_unique<WriteThroughStore>(),
            nullptr, std::make_unique<SkipBypassLookup>(pred));
    llc.writeback(0x5000, 0, 0);
    eq.runAll();
    // The write went straight to memory and did not allocate.
    EXPECT_EQ(llc.statWbToDram.value(), 1u);
    EXPECT_FALSE(llc.tags().contains(0x5000));
    EXPECT_EQ(llc.tags().countDirty(), 0u);
}

namespace {

/** Predictor that always predicts miss (outside sampled sets). */
class AlwaysMissPredictor : public MissPredictor
{
  public:
    bool
    predictMiss(std::uint32_t set, std::uint32_t, Cycle) override
    {
        return set % 64 != 0;
    }
    void recordOutcome(std::uint32_t, std::uint32_t, bool, Cycle) override
    {}
    bool
    isSampledSet(std::uint32_t set) const override
    {
        return set % 64 == 0;
    }
};

} // namespace

TEST_F(LlcTest, SkipCacheBypassesPredictedMisses)
{
    auto pred = std::make_shared<AlwaysMissPredictor>();
    Llc llc(smallLlc(), dram, eq, std::make_unique<WriteThroughStore>(),
            nullptr, std::make_unique<SkipBypassLookup>(pred));
    readDone(llc, filler(9, 0), 0);
    EXPECT_EQ(llc.statBypasses.value(), 1u);
    EXPECT_EQ(llc.statTagLookups.value(), 0u);
    EXPECT_FALSE(llc.tags().contains(filler(9, 0)));  // no allocation

    // Sampled sets still take the normal path.
    readDone(llc, filler(0, 0), eq.now() + 1);
    EXPECT_EQ(llc.statTagLookups.value(), 1u);
    EXPECT_TRUE(llc.tags().contains(filler(0, 0)));
}

// ----------------------------------------------------------------- DBI

TEST_F(LlcTest, DbiWritebackSetsDbiNotTagDirty)
{
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()));
    llc.writeback(0x6000, 0, 0);
    eq.runAll();
    EXPECT_TRUE(llc.tags().contains(0x6000));
    EXPECT_EQ(llc.tags().countDirty(), 0u);  // tag store has no dirty bits
    EXPECT_TRUE(llc.dbiIndex()->isDirty(0x6000));
    llc.checkInvariants();
}

TEST_F(LlcTest, DbiDirtyEvictionWritesBackAndClears)
{
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()));
    llc.writeback(filler(9, 0), 0, 0);
    for (std::uint32_t i = 1; i <= 4; ++i) {
        readDone(llc, filler(9, i), eq.now() + 1);
    }
    EXPECT_EQ(llc.statWbToDram.value(), 1u);
    EXPECT_FALSE(llc.dbiIndex()->isDirty(filler(9, 0)));
    llc.checkInvariants();
}

TEST_F(LlcTest, DbiAwbWritesBackRowMates)
{
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()),
            std::make_unique<DbiAwbPolicy>());
    Addr victim = filler(9, 0);
    // Row mates within the same DBI region (granularity 16).
    Addr mate1 = victim + kBlockBytes;
    Addr mate2 = victim + 2 * kBlockBytes;
    llc.writeback(victim, 0, 0);
    llc.writeback(mate1, 0, 1);
    llc.writeback(mate2, 0, 2);
    eq.runAll();
    std::uint64_t sweeps_before = llc.statSweepLookups.value();
    for (std::uint32_t i = 1; i <= 4; ++i) {
        readDone(llc, filler(9, i), eq.now() + 1);
    }
    // AWB looked up ONLY the two actually-dirty mates (vs DAWB's 127).
    EXPECT_EQ(llc.statSweepLookups.value() - sweeps_before, 2u);
    EXPECT_EQ(dbiStore(llc).statAwbWritebacks.value(), 2u);
    EXPECT_EQ(llc.statWbToDram.value(), 3u);
    EXPECT_FALSE(llc.dbiIndex()->isDirty(mate1));
    EXPECT_TRUE(llc.tags().contains(mate1));  // stays cached, clean
    llc.checkInvariants();
}

TEST_F(LlcTest, DbiEvictionDrainsEntryButKeepsBlocksCached)
{
    // Fill the DBI (16 entries of granularity 16) with distinct regions
    // so an extra region forces a DBI eviction.
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()));
    std::uint64_t entries = llc.dbiIndex()->numEntries();
    for (std::uint64_t r = 0; r <= entries; ++r) {
        // One dirty block per region; regions spaced by granularity.
        llc.writeback(r * 16 * kBlockBytes, 0, r);
    }
    eq.runAll();
    EXPECT_EQ(dbiStore(llc).statDbiEvictionWbs.value(), 1u);
    EXPECT_EQ(llc.statWbToDram.value(), 1u);
    // The drained block is still cached, now clean.
    EXPECT_TRUE(llc.tags().contains(0));
    EXPECT_FALSE(llc.dbiIndex()->isDirty(0));
    llc.checkInvariants();
}

TEST_F(LlcTest, DbiClbBypassesCleanPredictedMiss)
{
    auto pred = std::make_shared<AlwaysMissPredictor>();
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()), nullptr,
            std::make_unique<ClbBypassLookup>(pred));
    readDone(llc, filler(9, 0), 0);
    EXPECT_EQ(llc.statBypasses.value(), 1u);
    EXPECT_EQ(llc.statDbiChecks.value(), 1u);
    EXPECT_EQ(llc.statTagLookups.value(), 0u);
    EXPECT_FALSE(llc.tags().contains(filler(9, 0)));
}

TEST_F(LlcTest, DbiClbDirtyBlockTakesNormalPath)
{
    auto pred = std::make_shared<AlwaysMissPredictor>();
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()), nullptr,
            std::make_unique<ClbBypassLookup>(pred));
    llc.writeback(filler(9, 0), 0, 0);
    eq.runAll();
    std::uint64_t dram_reads = dram.statReads.value();
    Cycle t = eq.now() + 1;
    Cycle done = readDone(llc, filler(9, 0), t);
    // Dirty: must be served from the cache, not memory (Figure 4).
    EXPECT_EQ(llc.statBypasses.value(), 0u);
    EXPECT_EQ(dram.statReads.value(), dram_reads);
    EXPECT_EQ(done, t + smallDbi().latency + 10 + 24);
}

// ------------------------------------------------------ fill semantics

TEST_F(LlcTest, FillMergesDirtyIntoResidentBlock)
{
    // Racing writeback-allocate: a dirty fill can land after a demand
    // read already made the block resident (and clean). The dirty state
    // must merge — dropping it silently loses a memory update.
    Llc llc(smallLlc(), dram, eq);
    readDone(llc, 0x7000, 0);
    ASSERT_TRUE(llc.tags().contains(0x7000));
    ASSERT_FALSE(llc.tags().isDirty(0x7000));

    llc.fillBlock(0x7000, 0, true, eq.now());
    EXPECT_TRUE(llc.tags().isDirty(0x7000));

    // And a later clean fill must not revert it.
    llc.fillBlock(0x7000, 0, false, eq.now());
    EXPECT_TRUE(llc.tags().isDirty(0x7000));
}

TEST_F(LlcTest, DbiStressInvariantsHold)
{
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()),
            std::make_unique<DbiAwbPolicy>());
    Rng rng(42);
    for (int op = 0; op < 20000; ++op) {
        Addr a = blockAlign(rng.below(1 << 20));
        if (rng.chance(0.4)) {
            llc.writeback(a, 0, eq.now());
        } else {
            llc.read(a, 0, eq.now(), [](Cycle) {});
        }
        if (op % 512 == 0) {
            eq.runAll();
            llc.checkInvariants();
        }
    }
    eq.runAll();
    llc.checkInvariants();
    // The DBI bounds the number of dirty blocks (Section 2.1 property).
    EXPECT_LE(llc.dbiIndex()->countDirtyBlocks(), llc.dbiIndex()->trackableBlocks());
}

} // namespace
} // namespace dbsim
