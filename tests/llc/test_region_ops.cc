/**
 * @file
 * Tests for the Section 7 region operations: flushRegion (cache
 * flushing for power-down / persistence) and queryRegionDirty (bulk DMA
 * coherence), across the conventional and DBI organizations.
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "dram/dram_controller.hh"
#include <memory>

#include "llc/llc.hh"

namespace dbsim {
namespace {

LlcConfig
smallLlc()
{
    LlcConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.assoc = 4;
    cfg.repl = ReplPolicy::Lru;
    cfg.tagLatency = 10;
    cfg.dataLatency = 24;
    cfg.numCores = 1;
    return cfg;
}

DbiConfig
smallDbi()
{
    DbiConfig cfg;
    cfg.alpha = 0.25;
    cfg.granularity = 16;
    cfg.assoc = 4;
    return cfg;
}

struct RegionOpsTest : public ::testing::Test
{
    RegionOpsTest() : dram(DramConfig{}, eq) {}

    EventQueue eq;
    DramController dram;
};

TEST_F(RegionOpsTest, BaselineFlushSweepsEveryBlock)
{
    Llc llc(smallLlc(), dram, eq);
    llc.writeback(0x0, 0, 0);
    llc.writeback(0x40, 0, 1);
    eq.runAll();
    auto res = llc.flushRegion(0, 64 * kBlockBytes, eq.now());
    EXPECT_EQ(res.lookups, 64u);  // brute force: one per block
    EXPECT_EQ(res.writebacks, 2u);
    EXPECT_TRUE(res.anyDirty);
    EXPECT_EQ(llc.tags().countDirty(), 0u);
    // Blocks remain resident, just clean.
    EXPECT_TRUE(llc.tags().contains(0x0));
}

TEST_F(RegionOpsTest, DbiFlushTouchesOnlyDirtyBlocks)
{
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()));
    llc.writeback(0x0, 0, 0);
    llc.writeback(0x40, 0, 1);
    eq.runAll();
    auto res = llc.flushRegion(0, 64 * kBlockBytes, eq.now());
    // 4 regions of 16 blocks (one DBI access each) + 2 dirty lookups.
    EXPECT_EQ(res.lookups, 4u + 2u);
    EXPECT_EQ(res.writebacks, 2u);
    EXPECT_EQ(llc.dbiIndex()->countDirtyBlocks(), 0u);
    EXPECT_TRUE(llc.tags().contains(0x0));
    llc.checkInvariants();
}

TEST_F(RegionOpsTest, FlushIsIdempotent)
{
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()));
    llc.writeback(0x0, 0, 0);
    eq.runAll();
    auto first = llc.flushRegion(0, 16 * kBlockBytes, eq.now());
    auto second = llc.flushRegion(0, 16 * kBlockBytes, eq.now());
    EXPECT_EQ(first.writebacks, 1u);
    EXPECT_EQ(second.writebacks, 0u);
    EXPECT_FALSE(second.anyDirty);
}

TEST_F(RegionOpsTest, FlushRespectsRangeBounds)
{
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()));
    llc.writeback(0x0, 0, 0);                 // inside the range
    llc.writeback(32 * kBlockBytes, 0, 1);    // outside
    eq.runAll();
    auto res = llc.flushRegion(0, 16 * kBlockBytes, eq.now());
    EXPECT_EQ(res.writebacks, 1u);
    EXPECT_TRUE(llc.dbiIndex()->isDirty(32 * kBlockBytes));
    llc.checkInvariants();
}

TEST_F(RegionOpsTest, DmaQueryDoesNotModifyState)
{
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()));
    llc.writeback(0x80, 0, 0);
    eq.runAll();
    auto res = llc.queryRegionDirty(0, 16 * kBlockBytes);
    EXPECT_TRUE(res.anyDirty);
    EXPECT_EQ(res.lookups, 1u);  // one DBI access for the region
    EXPECT_TRUE(llc.dbiIndex()->isDirty(0x80));

    auto clean = llc.queryRegionDirty(16 * kBlockBytes,
                                      16 * kBlockBytes);
    EXPECT_FALSE(clean.anyDirty);
}

TEST_F(RegionOpsTest, BaselineDmaQueryCostsOnePerBlock)
{
    Llc llc(smallLlc(), dram, eq);
    llc.writeback(0x80, 0, 0);
    eq.runAll();
    auto res = llc.queryRegionDirty(0, 16 * kBlockBytes);
    EXPECT_TRUE(res.anyDirty);
    EXPECT_EQ(res.lookups, 16u);
}

TEST_F(RegionOpsTest, SkipCacheFlushFindsNothing)
{
    auto pred = std::make_shared<NeverMissPredictor>();
    Llc llc(smallLlc(), dram, eq, std::make_unique<WriteThroughStore>(),
            nullptr, std::make_unique<SkipBypassLookup>(pred));
    llc.writeback(0x0, 0, 0);  // write-through: nothing stays dirty
    eq.runAll();
    auto res = llc.flushRegion(0, 64 * kBlockBytes, eq.now());
    EXPECT_EQ(res.writebacks, 0u);
    EXPECT_FALSE(res.anyDirty);
}

TEST_F(RegionOpsTest, FlushedBlocksReachDram)
{
    Llc llc(smallLlc(), dram, eq,
            std::make_unique<DbiDirtyStore>(smallDbi()));
    for (Addr a = 0; a < 8 * kBlockBytes; a += kBlockBytes) {
        llc.writeback(a, 0, a);
    }
    eq.runAll();
    std::uint64_t before = dram.statWrites.value() + dram.pendingWrites();
    llc.flushRegion(0, 8 * kBlockBytes, eq.now());
    eq.runAll();
    std::uint64_t after = dram.statWrites.value() + dram.pendingWrites();
    EXPECT_EQ(after - before, 8u);
}

} // namespace
} // namespace dbsim
