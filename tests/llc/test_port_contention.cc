/**
 * @file
 * Tests for the LLC tag-port contention model — the phenomenon that
 * separates DBI from DAWB in the paper's multi-core results: DAWB's
 * speculative row sweeps occupy the port and delay demand lookups,
 * while the DBI's sweeps touch only actually-dirty blocks.
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "dram/dram_controller.hh"
#include <memory>

#include "llc/llc.hh"

namespace dbsim {
namespace {

LlcConfig
smallLlc()
{
    LlcConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.assoc = 4;
    cfg.repl = ReplPolicy::Lru;
    cfg.tagLatency = 10;
    cfg.dataLatency = 24;
    cfg.numCores = 1;
    return cfg;
}

Addr
filler(std::uint32_t set, std::uint32_t i)
{
    return (static_cast<Addr>(i) * 256 + set) * kBlockBytes;
}

/** Latency of a demand hit issued at `when`, given a prepared LLC. */
template <typename LlcT>
Cycle
hitLatency(LlcT &llc, EventQueue &eq, Addr a, Cycle when)
{
    Cycle done = 0;
    llc.read(a, 0, when, [&](Cycle c) { done = c; });
    eq.runAll();
    return done - when;
}

TEST(PortContention, DawbSweepDelaysDemandHits)
{
    EventQueue eq;
    DramController dram(DramConfig{}, eq);
    Llc llc(smallLlc(), dram, eq, nullptr,
            std::make_unique<DawbSweepPolicy>());

    // Warm a hit target and a dirty victim.
    Cycle t = 0;
    Cycle done = 0;
    llc.read(filler(100, 0), 0, t, [&](Cycle c) { done = c; });
    eq.runAll();
    llc.writeback(filler(9, 0), 0, eq.now() + 1);
    eq.runAll();
    Cycle quiet_hit = hitLatency(llc, eq, filler(100, 0), eq.now() + 1);

    // Trigger the dirty eviction (127-lookup sweep), then immediately
    // issue a demand hit: it must queue behind the sweep.
    Cycle evict_at = eq.now() + 1;
    for (std::uint32_t i = 1; i <= 4; ++i) {
        llc.read(filler(9, i), 0, evict_at, [](Cycle) {});
    }
    eq.runAll();
    // Reconstruct: sweep happened at the fill completing the eviction;
    // issue a hit 1 cycle after a fresh eviction to observe queuing.
    llc.writeback(filler(10, 0), 0, eq.now() + 1);
    eq.runAll();
    Cycle base_now = eq.now();
    // Fill set 10 to evict the dirty block: the final fill triggers the
    // sweep; race a demand hit right behind it.
    Cycle contended = 0;
    std::uint32_t fills = 0;
    for (std::uint32_t i = 1; i <= 4; ++i) {
        llc.read(filler(10, i), 0, base_now + 1, [&](Cycle) { ++fills; });
    }
    llc.read(filler(100, 0), 0, base_now + 2,
             [&](Cycle c) { contended = c - (base_now + 2); });
    eq.runAll();
    EXPECT_EQ(fills, 4u);
    // The contended hit pays extra port-queue delay vs the quiet hit.
    EXPECT_GT(contended, quiet_hit);
}

TEST(PortContention, DbiAwbSweepIsCheap)
{
    EventQueue eq;
    DramController dram(DramConfig{}, eq);
    DbiConfig dbi;
    dbi.alpha = 0.25;
    dbi.granularity = 16;
    dbi.assoc = 4;
    Llc llc(smallLlc(), dram, eq, std::make_unique<DbiDirtyStore>(dbi),
            std::make_unique<DbiAwbPolicy>());

    llc.read(filler(100, 0), 0, 0, [](Cycle) {});
    eq.runAll();
    llc.writeback(filler(9, 0), 0, eq.now() + 1);
    eq.runAll();

    std::uint64_t lookups_before = llc.statTagLookups.value();
    for (std::uint32_t i = 1; i <= 4; ++i) {
        llc.read(filler(9, i), 0, eq.now() + 1, [](Cycle) {});
    }
    eq.runAll();
    // The eviction's AWB "sweep" covered only the victim (1 dirty
    // block, no row mates): demand fills (4) + zero wasted lookups.
    EXPECT_LE(llc.statTagLookups.value() - lookups_before, 4u);
}

TEST(PortContention, BackToBackLookupsPipelinedOnePerCycle)
{
    EventQueue eq;
    DramController dram(DramConfig{}, eq);
    Llc llc(smallLlc(), dram, eq);

    // Two hits issued at the same cycle: the second starts one cycle
    // later (single pipelined port).
    llc.read(filler(1, 0), 0, 0, [](Cycle) {});
    llc.read(filler(2, 0), 0, 0, [](Cycle) {});
    eq.runAll();
    Cycle t = eq.now() + 1;
    Cycle d1 = 0, d2 = 0;
    llc.read(filler(1, 0), 0, t, [&](Cycle c) { d1 = c; });
    llc.read(filler(2, 0), 0, t, [&](Cycle c) { d2 = c; });
    eq.runAll();
    EXPECT_EQ(d2, d1 + 1);
}

} // namespace
} // namespace dbsim
