/**
 * @file
 * Parameterized stress tests across every LLC mechanism: under random
 * mixed read/writeback traffic each variant must terminate, keep its
 * internal invariants, conserve dirty data (every block made dirty is
 * either still dirty in the cache or was written back to memory), and
 * never lose a read completion.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "dram/dram_controller.hh"
#include "llc/llc.hh"
#include "sim/mechanism.hh"

namespace dbsim {
namespace {

class LlcMechanism : public ::testing::TestWithParam<Mechanism>
{
  protected:
    LlcMechanism() : dram(DramConfig{}, eq) {}

    std::unique_ptr<Llc>
    build()
    {
        LlcConfig cfg;
        cfg.sizeBytes = 64 * 1024;
        cfg.assoc = 4;
        cfg.repl = ReplPolicy::TaDip;
        cfg.tagLatency = 10;
        cfg.dataLatency = 24;
        cfg.numCores = 1;

        DbiConfig dbi;
        dbi.alpha = 0.25;
        dbi.granularity = 16;
        dbi.assoc = 4;

        SkipPredictorConfig pc;
        pc.epochCycles = 20'000;
        MechanismSpec spec(GetParam());
        std::shared_ptr<MissPredictor> pred;
        if (spec.needsPredictor()) {
            pred = std::make_shared<SkipPredictor>(pc);
        }
        return makeLlc(spec, cfg, dbi, dram, eq, pred);
    }

    EventQueue eq;
    DramController dram;
};

TEST_P(LlcMechanism, RandomTrafficStressSurvives)
{
    auto llc = build();
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 100);
    std::uint64_t completions = 0, reads = 0;

    for (int op = 0; op < 15000; ++op) {
        Addr a = blockAlign(rng.below(1u << 19));
        if (rng.chance(0.35)) {
            llc->writeback(a, 0, eq.now());
        } else {
            ++reads;
            llc->read(a, 0, eq.now(), [&](Cycle) { ++completions; });
        }
        if (op % 256 == 0) {
            eq.runAll();
        }
    }
    eq.runAll();
    EXPECT_EQ(completions, reads) << "lost read completions";
    llc->checkInvariants();
}

TEST_P(LlcMechanism, DirtyDataIsConserved)
{
    auto llc = build();
    Rng rng(static_cast<std::uint64_t>(GetParam()) + 7);
    std::set<Addr> dirtied;

    for (int op = 0; op < 8000; ++op) {
        Addr a = blockAlign(rng.below(1u << 19));
        llc->writeback(a, 0, eq.now());
        dirtied.insert(a);
        if (rng.chance(0.5)) {
            llc->read(blockAlign(rng.below(1u << 19)), 0, eq.now(),
                      [](Cycle) {});
        }
        if (op % 256 == 0) {
            eq.runAll();
        }
    }
    eq.runAll();

    // Every dirtied block is accounted for: either written to memory
    // (serviced or still buffered) or still dirty-resident. Flush the
    // remainder and verify total writebacks cover the dirty set.
    std::uint64_t wb_out = llc->statWbToDram.value();
    auto flush = llc->flushRegion(0, 1u << 19, eq.now());
    eq.runAll();
    std::uint64_t total_wb = wb_out + flush.writebacks;
    // Write-through SkipCache forwards every writeback immediately, so
    // it can exceed |dirtied| (rewrites); others must cover it.
    EXPECT_GE(total_wb, dirtied.empty() ? 0 : 1u);
    if (GetParam() != Mechanism::SkipCache) {
        llc->checkInvariants();
        // After the flush nothing in range is dirty.
        auto q = llc->queryRegionDirty(0, 1u << 19);
        EXPECT_FALSE(q.anyDirty);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, LlcMechanism,
    ::testing::ValuesIn(allMechanisms()),
    [](const ::testing::TestParamInfo<Mechanism> &info) {
        std::string name = mechanismName(info.param);
        for (char &c : name) {
            if (c == '-' || c == '+') {
                c = '_';
            }
        }
        return name;
    });

} // namespace
} // namespace dbsim
