/**
 * @file
 * Unit tests for the die-stacked DRAM cache (src/dcache): tags-in-DRAM
 * hit/miss timing, write-allocate-no-fetch installs, the two dirty
 * tracking modes (exact SRAM index vs per-page dirty-in-tags bit), the
 * batched writebacks on index-entry eviction, probe/census coherence,
 * constructor validation, and the headline differential — on any
 * stream, the exact index never issues more backing-DDR writes than
 * the per-page ablation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "dcache/dcache.hh"
#include "dram/dram_controller.hh"

namespace dbsim {
namespace {

/**
 * Small geometry so evictions are easy to force: 512B pages (8 blocks),
 * 2-way, 4 sets; a 4-entry 2-way dirty index (2 index sets).
 */
DCacheConfig
smallCfg(bool dirty_in_tags = false)
{
    DCacheConfig cfg;
    cfg.enable = true;
    cfg.pageBytes = 512;
    cfg.assoc = 2;
    cfg.sizeBytes = 512ull * 2 * 4;
    cfg.dirtyInTags = dirty_in_tags;
    cfg.indexEntries = 4;
    cfg.indexAssoc = 2;
    cfg.tagLatency = 4;
    cfg.dataLatency = 6;
    return cfg;
}

/** Address of block `blk` in the page with tag `tag` (512B pages). */
Addr
blockIn(std::uint64_t tag, std::uint32_t blk)
{
    return tag * 512 + static_cast<Addr>(blk) * kBlockBytes;
}

struct DCacheTest : public ::testing::Test
{
    DCacheTest() : dram(DramConfig{}, eq) {}

    Cycle
    readDone(DramCache &dc, Addr a, Cycle when)
    {
        Cycle done = 0;
        dc.read(a, when, [&](Cycle c) { done = c; });
        eq.runAll();
        return done;
    }

    EventQueue eq;
    DramController dram;
};

// ------------------------------------------------------------- basics

TEST_F(DCacheTest, ReadMissFillsFromDdrThenHits)
{
    DramCache dc(smallCfg(), dram, eq);
    Cycle miss_done = readDone(dc, blockIn(0, 0), 0);
    EXPECT_GT(miss_done, 4u);  // paid the tag probe plus a DDR access
    EXPECT_EQ(dc.statReads.value(), 1u);
    EXPECT_EQ(dc.statFills.value(), 1u);
    EXPECT_EQ(dram.statReads.value(), 1u);
    EXPECT_TRUE(dc.probeResident(blockIn(0, 0)));
    EXPECT_FALSE(dc.probeDirty(blockIn(0, 0)));

    Cycle t = eq.now() + 1;
    Cycle hit_done = readDone(dc, blockIn(0, 0), t);
    EXPECT_EQ(hit_done, t + 4 + 6);  // serial tag probe + data access
    EXPECT_EQ(dc.statReadHits.value(), 1u);
    EXPECT_EQ(dram.statReads.value(), 1u);  // no second DDR read
}

TEST_F(DCacheTest, PageFillIsBlockGranular)
{
    // Filling one block must not make its page-mates resident.
    DramCache dc(smallCfg(), dram, eq);
    readDone(dc, blockIn(0, 3), 0);
    EXPECT_TRUE(dc.probeResident(blockIn(0, 3)));
    EXPECT_FALSE(dc.probeResident(blockIn(0, 2)));
    EXPECT_EQ(dc.countValidBlocks(), 1u);

    readDone(dc, blockIn(0, 2), eq.now() + 1);
    EXPECT_EQ(dc.statPageAllocs.value(), 1u);  // same page, no realloc
    EXPECT_EQ(dc.countValidBlocks(), 2u);
}

TEST_F(DCacheTest, WriteAllocateNoFetchInstallsDirtyBlock)
{
    DramCache dc(smallCfg(), dram, eq);
    dc.write(blockIn(1, 0), 0);
    eq.runAll();
    EXPECT_TRUE(dc.probeResident(blockIn(1, 0)));
    EXPECT_TRUE(dc.probeDirty(blockIn(1, 0)));
    EXPECT_EQ(dc.statPageAllocs.value(), 1u);
    EXPECT_EQ(dram.statReads.value(), 0u);  // no fetch for the install
    EXPECT_EQ(dram.pendingWrites(), 0u);    // and nothing written yet
    EXPECT_EQ(dc.countDirtyBlocks(), 1u);
}

TEST_F(DCacheTest, WriteToResidentPageCountsAsHit)
{
    DramCache dc(smallCfg(), dram, eq);
    dc.write(blockIn(1, 0), 0);
    dc.write(blockIn(1, 5), 1);
    eq.runAll();
    EXPECT_EQ(dc.statWrites.value(), 2u);
    EXPECT_EQ(dc.statWriteHits.value(), 1u);
    EXPECT_EQ(dc.statPageAllocs.value(), 1u);
    EXPECT_EQ(dc.countDirtyBlocks(), 2u);
}

// ------------------------------------------------- eviction writebacks

TEST_F(DCacheTest, IndexModeEvictionWritesBackExactDirtySet)
{
    DramCache dc(smallCfg(false), dram, eq);
    // Page tag 0: one dirty block, one clean fill.
    dc.write(blockIn(0, 0), 0);
    readDone(dc, blockIn(0, 1), eq.now() + 1);
    // Tags 4 and 8 share set 0 (4 sets, 2 ways): the third page evicts
    // LRU tag 0.
    dc.write(blockIn(4, 0), eq.now() + 1);
    dc.write(blockIn(8, 0), eq.now() + 2);
    eq.runAll();

    EXPECT_EQ(dc.statPageEvictions.value(), 1u);
    EXPECT_EQ(dc.statDirtyPageEvictions.value(), 1u);
    // Only the dirty block went to DDR; the clean resident one did not.
    // (Writes sit in the controller's write buffer until a drain, so
    // count buffered + serviced.)
    EXPECT_EQ(dc.statEvictionWbs.value(), 1u);
    EXPECT_EQ(dc.statDdrWrites.value(), 1u);
    EXPECT_EQ(dram.pendingWrites() + dram.statWrites.value(), 1u);
    EXPECT_FALSE(dc.probeResident(blockIn(0, 0)));
    EXPECT_FALSE(dc.probeResident(blockIn(0, 1)));
}

TEST_F(DCacheTest, TagsModeEvictionWritesBackAllValidBlocks)
{
    DramCache dc(smallCfg(true), dram, eq);
    EXPECT_EQ(dc.dirtyIndex(), nullptr);
    EXPECT_FALSE(dc.dirtyExact());
    dc.write(blockIn(0, 0), 0);
    readDone(dc, blockIn(0, 1), eq.now() + 1);
    dc.write(blockIn(4, 0), eq.now() + 1);
    dc.write(blockIn(8, 0), eq.now() + 2);
    eq.runAll();

    EXPECT_EQ(dc.statDirtyPageEvictions.value(), 1u);
    // One page-level dirty bit: the clean-but-valid block is written
    // back too — the overfetch the decoupled index avoids.
    EXPECT_EQ(dc.statEvictionWbs.value(), 2u);
    EXPECT_EQ(dram.pendingWrites() + dram.statWrites.value(), 2u);
}

TEST_F(DCacheTest, CleanPageEvictionIsSilent)
{
    for (bool tags : {false, true}) {
        EventQueue q;
        DramController ddr(DramConfig{}, q);
        DramCache dc(smallCfg(tags), ddr, q);
        Cycle done = 0;
        dc.read(blockIn(0, 0), 0, [&](Cycle c) { done = c; });
        q.runAll();
        dc.read(blockIn(4, 0), done, [&](Cycle c) { done = c; });
        q.runAll();
        dc.read(blockIn(8, 0), done, [&](Cycle c) { done = c; });
        q.runAll();
        EXPECT_EQ(dc.statPageEvictions.value(), 1u) << tags;
        EXPECT_EQ(dc.statDirtyPageEvictions.value(), 0u) << tags;
        EXPECT_EQ(ddr.pendingWrites() + ddr.statWrites.value(), 0u)
            << tags;
    }
}

TEST_F(DCacheTest, IndexEvictionBatchCleansResidentBlocks)
{
    // 4-entry 2-way index: region tags 0, 2, 4 all land in index set 0
    // while pages 0 and 4 fit in dcache set 0 and page 2 in set 2, so
    // the third dirty page overflows the index without any page
    // eviction: the LRW victim's dirty blocks are written back in one
    // batch and stay resident, now clean.
    DramCache dc(smallCfg(false), dram, eq);
    dc.write(blockIn(0, 0), 0);
    dc.write(blockIn(0, 1), 1);
    dc.write(blockIn(2, 0), 2);
    dc.write(blockIn(4, 0), 3);
    eq.runAll();

    EXPECT_EQ(dc.statPageEvictions.value(), 0u);
    EXPECT_EQ(dc.statIndexWbs.value(), 2u);  // page 0's two dirty blocks
    EXPECT_EQ(dc.statDdrWrites.value(), 2u);
    EXPECT_TRUE(dc.probeResident(blockIn(0, 0)));
    EXPECT_TRUE(dc.probeResident(blockIn(0, 1)));
    EXPECT_FALSE(dc.probeDirty(blockIn(0, 0)));
    EXPECT_FALSE(dc.probeDirty(blockIn(0, 1)));
    EXPECT_TRUE(dc.probeDirty(blockIn(2, 0)));
    EXPECT_TRUE(dc.probeDirty(blockIn(4, 0)));
    EXPECT_EQ(dc.countDirtyBlocks(), 2u);
}

TEST_F(DCacheTest, FlushEnumerationMatchesDirtyCensus)
{
    for (bool tags : {false, true}) {
        EventQueue q;
        DramController ddr(DramConfig{}, q);
        DramCache dc(smallCfg(tags), ddr, q);
        Rng rng(7);
        for (int i = 0; i < 400; ++i) {
            Addr a = blockAlign(rng.below(64 * 1024));
            if (rng.chance(0.5)) {
                dc.write(a, q.now());
            } else {
                dc.read(a, q.now(), [](Cycle) {});
            }
            q.runAll();
        }
        std::uint64_t flush_blocks = 0;
        dc.forEachFlushBlock([&](Addr a) {
            ++flush_blocks;
            EXPECT_TRUE(dc.probeResident(a));
            EXPECT_TRUE(dc.probeDirty(a));
        });
        EXPECT_EQ(flush_blocks, dc.countDirtyBlocks()) << tags;
    }
}

// ------------------------------------------------- the ablation's claim

TEST_F(DCacheTest, IndexModeNeverWritesMoreDdrThanTagsMode)
{
    // The exact index can only remove writes relative to the per-page
    // bit (D5: it never writes back a clean block); drive identical
    // streams through both modes and compare DDR write counts.
    for (std::uint64_t seed : {1ull, 9ull, 23ull, 101ull}) {
        std::uint64_t wrote[2];
        for (int mode = 0; mode < 2; ++mode) {
            EventQueue q;
            DramController ddr(DramConfig{}, q);
            DramCache dc(smallCfg(mode == 1), ddr, q);
            Rng rng(seed);
            for (int i = 0; i < 1500; ++i) {
                Addr a = blockAlign(rng.below(128 * 1024));
                if (rng.chance(0.4)) {
                    dc.write(a, q.now());
                } else {
                    dc.read(a, q.now(), [](Cycle) {});
                }
                q.runAll();
            }
            wrote[mode] = dc.statDdrWrites.value();
        }
        EXPECT_LE(wrote[0], wrote[1]) << "seed " << seed;
    }
}

// -------------------------------------------------------- construction

TEST(DCacheDeath, RejectsBadGeometry)
{
    EventQueue eq;
    DramController dram(DramConfig{}, eq);

    DCacheConfig bad = smallCfg();
    bad.pageBytes = 96;
    EXPECT_DEATH(DramCache(bad, dram, eq), "power of two");

    bad = smallCfg();
    bad.pageBytes = 16384;
    EXPECT_DEATH(DramCache(bad, dram, eq), "largest supported page");

    bad = smallCfg();
    bad.sizeBytes = 512ull * 2 * 4 + 512;
    EXPECT_DEATH(DramCache(bad, dram, eq), "not a multiple");

    bad = smallCfg();
    bad.indexEntries = 3;
    EXPECT_DEATH(DramCache(bad, dram, eq), "powers of two");
}

TEST(DCacheIndex, SizesToExactlyIndexEntries)
{
    EventQueue eq;
    DramController dram(DramConfig{}, eq);
    DramCache dc(smallCfg(false), dram, eq);
    ASSERT_NE(dc.dirtyIndex(), nullptr);
    EXPECT_EQ(dc.dirtyIndex()->numEntries(), 4u);
    EXPECT_EQ(dc.blocksPerPage(), 8u);
    EXPECT_EQ(dc.numSets(), 4u);
}

} // namespace
} // namespace dbsim
