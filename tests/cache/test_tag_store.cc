/** @file Unit and property tests for the set-associative tag store. */

#include <gtest/gtest.h>

#include <set>

#include "cache/tag_store.hh"
#include "common/rng.hh"

namespace dbsim {
namespace {

CacheGeometry
smallLru()
{
    // 4KB, 4-way, 64B blocks -> 16 sets.
    return CacheGeometry{4096, 4, ReplPolicy::Lru, 1, 5};
}

Addr
addrForSet(std::uint32_t set, std::uint32_t i, std::uint32_t num_sets = 16)
{
    return (static_cast<Addr>(i) * num_sets + set) * kBlockBytes;
}

TEST(TagStore, InsertAndFind)
{
    TagStore ts(smallLru());
    EXPECT_FALSE(ts.contains(0x1000));
    auto ev = ts.insert(0x1000, 0, false);
    EXPECT_FALSE(ev.valid);
    EXPECT_TRUE(ts.contains(0x1000));
    EXPECT_TRUE(ts.contains(0x1004));  // same block, sub-block address
    EXPECT_FALSE(ts.contains(0x1040));
}

TEST(TagStore, LruEvictsOldest)
{
    TagStore ts(smallLru());
    for (std::uint32_t i = 0; i < 4; ++i) {
        ts.insert(addrForSet(3, i), 0, false);
    }
    // Touch the oldest so the second-oldest becomes the victim.
    ts.touch(addrForSet(3, 0), 0);
    auto ev = ts.insert(addrForSet(3, 4), 0, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.block, addrForSet(3, 1));
}

TEST(TagStore, EvictionReportsDirty)
{
    TagStore ts(smallLru());
    for (std::uint32_t i = 0; i < 4; ++i) {
        ts.insert(addrForSet(1, i), 0, false);
    }
    ts.markDirty(addrForSet(1, 0));
    auto ev = ts.insert(addrForSet(1, 4), 0, false);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.block, addrForSet(1, 0));
    EXPECT_TRUE(ev.dirty);
}

TEST(TagStore, DirtyBitRoundTrip)
{
    TagStore ts(smallLru());
    ts.insert(0x2000, 0, false);
    EXPECT_FALSE(ts.isDirty(0x2000));
    ts.markDirty(0x2000);
    EXPECT_TRUE(ts.isDirty(0x2000));
    ts.markClean(0x2000);
    EXPECT_FALSE(ts.isDirty(0x2000));
}

TEST(TagStore, InsertWithDirtyFlag)
{
    TagStore ts(smallLru());
    ts.insert(0x3000, 0, true);
    EXPECT_TRUE(ts.isDirty(0x3000));
    EXPECT_EQ(ts.countDirty(), 1u);
}

TEST(TagStore, InvalidateRemoves)
{
    TagStore ts(smallLru());
    ts.insert(0x4000, 0, true);
    ts.invalidate(0x4000);
    EXPECT_FALSE(ts.contains(0x4000));
    EXPECT_EQ(ts.countDirty(), 0u);
}

TEST(TagStore, LruRankOrdersByRecency)
{
    TagStore ts(smallLru());
    for (std::uint32_t i = 0; i < 4; ++i) {
        ts.insert(addrForSet(2, i), 0, false);
    }
    EXPECT_EQ(ts.lruRank(addrForSet(2, 0)), 0u);
    EXPECT_EQ(ts.lruRank(addrForSet(2, 3)), 3u);
    ts.touch(addrForSet(2, 0), 0);
    EXPECT_EQ(ts.lruRank(addrForSet(2, 0)), 3u);
    EXPECT_EQ(ts.lruRank(addrForSet(2, 1)), 0u);
}

TEST(TagStore, AnyDirtyInLruWays)
{
    TagStore ts(smallLru());
    for (std::uint32_t i = 0; i < 4; ++i) {
        ts.insert(addrForSet(5, i), 0, false);
    }
    // Dirty the MRU block only: not visible in the 2 LRU ways.
    ts.markDirty(addrForSet(5, 3));
    EXPECT_FALSE(ts.anyDirtyInLruWays(5, 2));
    EXPECT_TRUE(ts.anyDirtyInLruWays(5, 4));
    ts.markDirty(addrForSet(5, 0));
    EXPECT_TRUE(ts.anyDirtyInLruWays(5, 2));
}

TEST(TagStore, StatsCountHitsAndMisses)
{
    TagStore ts(smallLru());
    ts.insert(0x5000, 0, false);
    ts.touch(0x5000, 0);
    ts.touch(0x5000, 0);
    EXPECT_EQ(ts.statHits.value(), 2u);
    EXPECT_EQ(ts.statMisses.value(), 1u);
}

/** Property: contents always match a model set under random ops. */
TEST(TagStore, PropertyMatchesReferenceModel)
{
    TagStore ts(smallLru());
    Rng rng(77);
    std::set<Addr> model;
    for (int op = 0; op < 5000; ++op) {
        Addr a = blockAlign(rng.below(1 << 16));
        if (ts.contains(a)) {
            ts.touch(a, 0);
            ASSERT_TRUE(model.count(a));
        } else {
            auto ev = ts.insert(a, 0, rng.chance(0.3));
            model.insert(a);
            if (ev.valid) {
                ASSERT_TRUE(model.count(ev.block));
                model.erase(ev.block);
            }
        }
        ASSERT_LE(model.size(), 64u);  // capacity bound
    }
    for (Addr a : model) {
        ASSERT_TRUE(ts.contains(a));
    }
}

// --- TA-DIP behaviour ---

TEST(TagStoreDip, BimodalLeaderSetsInsertAtLru)
{
    CacheGeometry geo{64 * 1024, 4, ReplPolicy::TaDip, 1, 5};
    TagStore ts(geo);  // 256 sets
    // Set 1 is thread 0's bimodal leader (slot == 2*0+1).
    std::uint32_t set = 1;
    int bimodal_count = 0;
    for (std::uint32_t i = 0; i < 200; ++i) {
        ts.insert(addrForSet(set, i, ts.numSets()), 0, false);
        if (ts.lastInsertUsedBimodal()) {
            ++bimodal_count;
        }
    }
    // BIP inserts at LRU except with probability 1/64.
    EXPECT_GT(bimodal_count, 150);
}

TEST(TagStoreDip, PrimaryLeaderSetsNeverBimodal)
{
    CacheGeometry geo{64 * 1024, 4, ReplPolicy::TaDip, 1, 5};
    TagStore ts(geo);
    std::uint32_t set = 0;  // thread 0's primary (LRU) leader
    for (std::uint32_t i = 0; i < 100; ++i) {
        ts.insert(addrForSet(set, i, ts.numSets()), 0, false);
        EXPECT_FALSE(ts.lastInsertUsedBimodal());
    }
}

TEST(TagStoreDip, ThrashingWorkloadFlipsToBip)
{
    // A cyclic working set larger than the cache: LRU leader sets miss
    // every access, pushing PSEL toward BIP in follower sets.
    CacheGeometry geo{64 * 1024, 4, ReplPolicy::TaDip, 1, 5};
    TagStore ts(geo);
    std::uint32_t sets = ts.numSets();
    for (int round = 0; round < 30; ++round) {
        for (std::uint32_t i = 0; i < 8; ++i) {  // 8 > 4 ways: thrash
            Addr a = addrForSet(0, i, sets);     // LRU leader set
            if (ts.contains(a)) {
                ts.touch(a, 0);
            } else {
                ts.insert(a, 0, false);
            }
        }
    }
    // Now a follower set should use bimodal insertion most of the time.
    int bimodal = 0;
    for (std::uint32_t i = 0; i < 64; ++i) {
        ts.insert(addrForSet(40, i, sets), 0, false);  // follower set
        if (ts.lastInsertUsedBimodal()) {
            ++bimodal;
        }
    }
    EXPECT_GT(bimodal, 48);
}

// --- DRRIP behaviour ---

TEST(TagStoreDrrip, VictimHasMaxRrpv)
{
    CacheGeometry geo{4096, 4, ReplPolicy::Drrip, 1, 5};
    TagStore ts(geo);
    for (std::uint32_t i = 0; i < 4; ++i) {
        ts.insert(addrForSet(7, i), 0, false);
    }
    // Promote one block; it must survive the next two insertions.
    ts.touch(addrForSet(7, 2), 0);
    ts.insert(addrForSet(7, 4), 0, false);
    ts.insert(addrForSet(7, 5), 0, false);
    EXPECT_TRUE(ts.contains(addrForSet(7, 2)));
}

TEST(TagStoreRandom, EvictsSomethingValid)
{
    CacheGeometry geo{4096, 4, ReplPolicy::Random, 1, 5};
    TagStore ts(geo);
    for (std::uint32_t i = 0; i < 4; ++i) {
        ts.insert(addrForSet(7, i), 0, false);
    }
    auto ev = ts.insert(addrForSet(7, 9), 0, false);
    EXPECT_TRUE(ev.valid);
}

} // namespace
} // namespace dbsim
