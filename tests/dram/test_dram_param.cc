/**
 * @file
 * Parameterized DRAM-controller properties across geometry and timing
 * configurations: completion monotonicity/ordering guarantees, row-hit
 * accounting, and conservation of requests.
 */

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "dram/dram_controller.hh"

namespace dbsim {
namespace {

/** (numBanks, rowBytes, writeBufEntries) */
using DramParam = std::tuple<std::uint32_t, std::uint64_t, std::uint32_t>;

class DramGeometry : public ::testing::TestWithParam<DramParam>
{
  protected:
    DramConfig
    config() const
    {
        auto [banks, row_bytes, wbuf] = GetParam();
        DramConfig cfg;
        cfg.numBanks = banks;
        cfg.rowBytes = row_bytes;
        cfg.writeBufEntries = wbuf;
        return cfg;
    }
};

TEST_P(DramGeometry, AllReadsCompleteAfterArrival)
{
    EventQueue eq;
    DramController ctrl(config(), eq);
    Rng rng(std::get<0>(GetParam()));
    std::vector<std::pair<Cycle, Cycle>> arrive_done;

    for (int i = 0; i < 500; ++i) {
        Cycle when = eq.now() + rng.below(50);
        Addr a = blockAlign(rng.below(1u << 28));
        ctrl.enqueueRead(a, when, [&, when](Cycle done) {
            arrive_done.emplace_back(when, done);
        });
        if (i % 32 == 0) {
            eq.runAll();
        }
    }
    eq.runAll();
    ASSERT_EQ(arrive_done.size(), 500u);
    for (auto [arrive, done] : arrive_done) {
        EXPECT_GT(done, arrive);
    }
}

TEST_P(DramGeometry, RowHitAccountingNeverExceedsRequests)
{
    EventQueue eq;
    DramController ctrl(config(), eq);
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        Addr a = blockAlign(rng.below(1u << 26));
        if (rng.chance(0.4)) {
            ctrl.enqueueWrite(a, eq.now());
        } else {
            ctrl.enqueueRead(a, eq.now(), [](Cycle) {});
        }
        if (i % 64 == 0) {
            eq.runAll();
        }
    }
    eq.runAll();
    EXPECT_LE(ctrl.statReadRowHits.value(), ctrl.statReads.value());
    EXPECT_LE(ctrl.statWriteRowHits.value(), ctrl.statWrites.value());
    EXPECT_GE(ctrl.readRowHitRate(), 0.0);
    EXPECT_LE(ctrl.readRowHitRate(), 1.0);
}

TEST_P(DramGeometry, WritesConserved)
{
    EventQueue eq;
    DramController ctrl(config(), eq);
    Rng rng(5);
    std::uint64_t unique_writes = 0;
    std::set<Addr> seen;
    for (int i = 0; i < 1000; ++i) {
        Addr a = blockAlign(rng.below(1u << 22));
        ctrl.enqueueWrite(a, eq.now());
        if (i % 64 == 0) {
            eq.runAll();
            seen.clear();  // serviced; coalescing window resets
        }
        (void)unique_writes;
    }
    eq.runAll();
    EXPECT_EQ(ctrl.statWrites.value() + ctrl.pendingWrites() +
                  ctrl.statCoalesced.value(),
              1000u);
}

TEST_P(DramGeometry, SequentialRowReadsAreMostlyHits)
{
    EventQueue eq;
    DramController ctrl(config(), eq);
    std::uint64_t blocks = config().rowBytes / kBlockBytes;
    for (std::uint64_t i = 0; i < blocks; ++i) {
        ctrl.enqueueRead(i * kBlockBytes, eq.now(), [](Cycle) {});
        eq.runAll();
    }
    EXPECT_EQ(ctrl.statReads.value(), blocks);
    EXPECT_EQ(ctrl.statReadRowHits.value(), blocks - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DramGeometry,
    ::testing::Combine(::testing::Values(4u, 8u, 16u),
                       ::testing::Values(4096ull, 8192ull, 16384ull),
                       ::testing::Values(16u, 64u)));

} // namespace
} // namespace dbsim
