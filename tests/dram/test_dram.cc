/**
 * @file
 * Tests for the DDR3 controller: row buffer behaviour, FR-FCFS
 * scheduling, the drain-when-full write buffer, forwarding, and the
 * row-locality cost asymmetry that the AWB optimization exploits.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.hh"
#include "dram/dram_controller.hh"

namespace dbsim {
namespace {

struct DramTest : public ::testing::Test
{
    DramTest() : ctrl(DramConfig{}, eq) {}

    /** Issue a read and run to completion; returns the latency. */
    Cycle
    readLatency(Addr a, Cycle when)
    {
        Cycle done = 0;
        ctrl.enqueueRead(a, when, [&](Cycle c) { done = c; });
        eq.runAll();
        EXPECT_GT(done, when);
        return done - when;
    }

    EventQueue eq;
    DramController ctrl;
};

TEST_F(DramTest, RowHitFasterThanRowMiss)
{
    const DramAddrMap &map = ctrl.addrMap();
    Addr row0_b0 = 0;
    Addr row0_b1 = map.blockInRowAddr(0, 1);
    // Same bank, different row: rows stride by numBanks in the map.
    Addr other_row_same_bank = map.rowBytes() * map.numBanks();

    Cycle first = readLatency(row0_b0, 0);       // closed bank
    Cycle hit = readLatency(row0_b1, 10000);     // open row
    Cycle conflict = readLatency(other_row_same_bank, 20000);
    EXPECT_LT(hit, first);
    EXPECT_LT(first, conflict);
}

TEST_F(DramTest, RowHitRateTracksLocality)
{
    // 16 reads to the same row: 1 activate, 15 hits.
    for (std::uint32_t i = 0; i < 16; ++i) {
        ctrl.enqueueRead(i * kBlockBytes, i, [](Cycle) {});
    }
    eq.runAll();
    EXPECT_EQ(ctrl.statReads.value(), 16u);
    EXPECT_EQ(ctrl.statReadRowHits.value(), 15u);
    EXPECT_NEAR(ctrl.readRowHitRate(), 15.0 / 16.0, 1e-9);
}

TEST_F(DramTest, FrFcfsPrefersRowHits)
{
    const DramAddrMap &map = ctrl.addrMap();
    // Open row 0 in bank 0.
    readLatency(0, 0);
    Cycle t = eq.now();
    std::vector<int> order;
    // Queue a conflict (same bank, other row) then a hit to row 0: the
    // hit should be serviced first despite arriving later.
    ctrl.enqueueRead(map.rowBytes() * map.numBanks(), t + 1,
                     [&](Cycle) { order.push_back(1); });
    ctrl.enqueueRead(kBlockBytes, t + 1,
                     [&](Cycle) { order.push_back(2); });
    eq.runAll();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 2);
}

TEST_F(DramTest, WritesWaitForDrain)
{
    ctrl.enqueueWrite(0, 0);
    eq.runAll();
    // writeWhenIdle is off by default: the write sits in the buffer.
    EXPECT_EQ(ctrl.statWrites.value(), 0u);
    EXPECT_EQ(ctrl.pendingWrites(), 1u);
}

TEST_F(DramTest, DrainTriggersWhenFull)
{
    std::uint32_t cap = ctrl.config().writeBufEntries;
    for (std::uint32_t i = 0; i < cap; ++i) {
        ctrl.enqueueWrite(i * kBlockBytes * 131, i);  // scattered rows
    }
    eq.runAll();
    EXPECT_EQ(ctrl.statDrains.value(), 1u);
    EXPECT_EQ(ctrl.statWrites.value(), cap);
    EXPECT_EQ(ctrl.pendingWrites(), 0u);
}

TEST_F(DramTest, DrainCyclesCreditedWhenDrainEndsQuietly)
{
    // A drain that empties the buffer with no subsequent traffic must
    // still close its accounting window: the cycles are credited at the
    // dequeue that crosses the watermark, not at some later service
    // event that may never come.
    std::uint32_t cap = ctrl.config().writeBufEntries;
    for (std::uint32_t i = 0; i < cap; ++i) {
        ctrl.enqueueWrite(i * kBlockBytes * 131, i);  // scattered rows
    }
    eq.runAll();
    EXPECT_EQ(ctrl.statDrains.value(), 1u);
    EXPECT_EQ(ctrl.pendingWrites(), 0u);
    EXPECT_FALSE(ctrl.draining());
    EXPECT_GT(ctrl.statDrainCycles.value(), 0u);
}

TEST_F(DramTest, DrainStopsAndIsAccountedAtLowWatermark)
{
    DramConfig cfg;
    cfg.writeBufEntries = 8;
    cfg.drainLowWatermark = 4;
    EventQueue q;
    DramController c(cfg, q);
    for (std::uint32_t i = 0; i < cfg.writeBufEntries; ++i) {
        c.enqueueWrite(i * kBlockBytes * 131, i);
    }
    q.runAll();
    // Drained exactly down to the watermark, then stopped; the window
    // was credited when the crossing dequeue happened.
    EXPECT_FALSE(c.draining());
    EXPECT_EQ(c.statWrites.value(), 4u);
    EXPECT_EQ(c.pendingWrites(), 4u);
    EXPECT_EQ(c.statDrains.value(), 1u);
    EXPECT_GT(c.statDrainCycles.value(), 0u);
}

TEST_F(DramTest, ConsecutiveDrainsAccumulateDrainCycles)
{
    std::uint32_t cap = ctrl.config().writeBufEntries;
    for (std::uint32_t i = 0; i < cap; ++i) {
        ctrl.enqueueWrite(i * kBlockBytes * 131, i);
    }
    eq.runAll();
    std::uint64_t first = ctrl.statDrainCycles.value();
    EXPECT_GT(first, 0u);
    for (std::uint32_t i = 0; i < cap; ++i) {
        ctrl.enqueueWrite((cap + i) * kBlockBytes * 131, eq.now());
    }
    eq.runAll();
    EXPECT_EQ(ctrl.statDrains.value(), 2u);
    EXPECT_GT(ctrl.statDrainCycles.value(), first);
}

TEST_F(DramTest, RowClusteredDrainFasterThanScattered)
{
    // The heart of AWB: a buffer of same-row writes drains much faster
    // than a buffer of row-scattered writes.
    DramConfig cfg;
    EventQueue eq1, eq2;
    DramController clustered(cfg, eq1), scattered(cfg, eq2);

    const DramAddrMap &map = clustered.addrMap();
    for (std::uint32_t i = 0; i < cfg.writeBufEntries; ++i) {
        clustered.enqueueWrite(map.blockInRowAddr(0, i), 0);
        scattered.enqueueWrite(
            static_cast<Addr>(i) * map.rowBytes() * map.numBanks() * 3,
            0);
    }
    eq1.runAll();
    eq2.runAll();
    EXPECT_GE(clustered.writeRowHitRate(), 0.9);
    EXPECT_LE(scattered.writeRowHitRate(), 0.1);
    EXPECT_LT(eq1.now() * 2, eq2.now())
        << "clustered drain should be at least 2x faster";
}

TEST_F(DramTest, ReadsBlockedDuringDrain)
{
    std::uint32_t cap = ctrl.config().writeBufEntries;
    for (std::uint32_t i = 0; i < cap; ++i) {
        ctrl.enqueueWrite(i * kBlockBytes * 257, 0);
    }
    Cycle read_done = 0;
    ctrl.enqueueRead(0x777000, 1, [&](Cycle c) { read_done = c; });
    eq.runAll();
    // The read completes only after the drain finishes.
    EventQueue eq_alone;
    DramController ctrl_alone(DramConfig{}, eq_alone);
    Cycle alone_done = 0;
    ctrl_alone.enqueueRead(0x777000, 1,
                           [&](Cycle c) { alone_done = c; });
    eq_alone.runAll();
    EXPECT_GT(read_done, alone_done * 4);
}

TEST_F(DramTest, ReadForwardedFromWriteBuffer)
{
    ctrl.enqueueWrite(0x4000, 0);
    Cycle done = 0;
    ctrl.enqueueRead(0x4000, 5, [&](Cycle c) { done = c; });
    eq.runAll();
    EXPECT_EQ(ctrl.statForwards.value(), 1u);
    EXPECT_EQ(done, 5 + ctrl.config().ioLatency);
}

TEST_F(DramTest, DuplicateWritesCoalesce)
{
    ctrl.enqueueWrite(0x8000, 0);
    ctrl.enqueueWrite(0x8000, 1);
    ctrl.enqueueWrite(0x8040, 2);
    EXPECT_EQ(ctrl.pendingWrites(), 2u);
    EXPECT_EQ(ctrl.statCoalesced.value(), 1u);
}

TEST_F(DramTest, BankParallelismOverlapsActivates)
{
    // N reads to N different banks should finish far sooner than N
    // serialized row activations.
    DramConfig cfg;
    const DramAddrMap map(cfg.rowBytes, cfg.numBanks);
    std::vector<Cycle> dones;
    for (std::uint32_t b = 0; b < cfg.numBanks; ++b) {
        ctrl.enqueueRead(static_cast<Addr>(b) * map.rowBytes(), 0,
                         [&](Cycle c) { dones.push_back(c); });
    }
    eq.runAll();
    ASSERT_EQ(dones.size(), cfg.numBanks);
    Cycle serial_estimate = cfg.numBanks *
                            (cfg.tRcd + cfg.tCas + cfg.tBurst) *
                            cfg.tCkCpu;
    EXPECT_LT(dones.back(), serial_estimate);
}

TEST_F(DramTest, EnergyGrowsWithActivity)
{
    auto before = ctrl.energySince(eq.now());
    readLatency(0, 0);
    readLatency(1 << 20, 10000);
    auto after = ctrl.energySince(eq.now());
    EXPECT_GT(after.activatePj, before.activatePj);
    EXPECT_GT(after.readPj, before.readPj);
    EXPECT_GT(after.totalPj(), 0.0);
}

TEST_F(DramTest, StatsSnapshotResetsRates)
{
    readLatency(0, 0);
    StatSet set("dram");
    ctrl.registerStats(set);
    set.snapshotAll();
    EXPECT_EQ(ctrl.statReads.sinceSnapshot(), 0u);
    readLatency(kBlockBytes, eq.now() + 1);
    EXPECT_EQ(ctrl.statReads.sinceSnapshot(), 1u);
    EXPECT_NEAR(ctrl.readRowHitRate(), 1.0, 1e-9);
}

} // namespace
} // namespace dbsim
